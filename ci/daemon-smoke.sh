#!/bin/sh
# daemon-smoke: end-to-end gate for the simd daemon (doc/DAEMON.md).
#
# Builds simd/simctl/benchdiff, starts a daemon on a fresh store, runs
# every baseline-gated suite THROUGH the daemon and diffs each artifact
# against the committed baseline (0 drift required — the daemon path must
# be observationally identical to the one-shot tools), checks that a warm
# memoized re-run is at least 5x faster than the cold compute, and
# finally SIGTERMs the daemon mid-flight to assert the graceful drain:
# the in-flight request completes and the process exits 0.
set -eu

GO="${GO:-go}"
BIN="$(mktemp -d /tmp/daemon-smoke.XXXXXX)"
SOCK="$BIN/simd.sock"
STORE="$BIN/store"
trap 'kill "$SIMD_PID" 2>/dev/null || true; rm -rf "$BIN"' EXIT

$GO build -o "$BIN/simd" ./cmd/simd
$GO build -o "$BIN/simctl" ./cmd/simctl
$GO build -o "$BIN/benchdiff" ./cmd/benchdiff
$GO build -o "$BIN/reproduce" ./cmd/reproduce

"$BIN/simd" -socket "$SOCK" -store "$STORE" -q 2>"$BIN/simd.log" &
SIMD_PID=$!
"$BIN/simctl" wait -socket "$SOCK" -timeout 30s > /dev/null

# Gate 1: every baseline suite served by the daemon diffs clean against
# the committed baselines (benchdiff -watch maps baseline -> RunSpec).
"$BIN/benchdiff" -watch -count 1 -socket "$SOCK" ci/baseline.json
"$BIN/benchdiff" -watch -count 1 -socket "$SOCK" -seed 1 ci/chaos-baseline.json
"$BIN/benchdiff" -watch -count 1 -socket "$SOCK" -seed 1 ci/attack-baseline.json
"$BIN/benchdiff" -watch -count 1 -socket "$SOCK" -seed 1 ci/tenant-baseline.json
"$BIN/benchdiff" -watch -count 1 -socket "$SOCK" ci/scale-baseline.json

# Gate 2: cold vs warm. The suite above already computed the reproduce
# artifact, so a fresh request must be a pure store hit — require >= 5x
# over the cold compute (in practice it is orders of magnitude).
now_ms() { echo $(( $(date +%s%N) / 1000000 )); }
t0=$(now_ms)
"$BIN/simctl" run -socket "$SOCK" -tool reproduce -window 1 \
	-skip-sensitivity -no-cache -q > /dev/null
cold_ms=$(( $(now_ms) - t0 ))
t0=$(now_ms)
"$BIN/reproduce" -daemon "$SOCK" -window 1 \
	-skip-sensitivity -json "$BIN/warm.json" > /dev/null
warm_ms=$(( $(now_ms) - t0 ))
[ "$warm_ms" -lt 1 ] && warm_ms=1
speedup=$((cold_ms / warm_ms))
echo "daemon-smoke: cold ${cold_ms}ms, warm memoized ${warm_ms}ms (${speedup}x)"
if [ "$speedup" -lt 5 ]; then
	echo "daemon-smoke: warm path only ${speedup}x faster than cold (need >= 5x)" >&2
	exit 1
fi

# The memoized artifact must byte-match a second request for the same spec.
"$BIN/reproduce" -daemon "$SOCK" -window 1 -skip-sensitivity -json "$BIN/warm2.json" > /dev/null
cmp "$BIN/warm.json" "$BIN/warm2.json"

# Gate 3: graceful drain. Start a slow run, SIGTERM the daemon while it
# is in flight, and require (a) the request completes successfully and
# (b) the daemon exits 0 after draining.
"$BIN/simctl" run -socket "$SOCK" -tool chaosbench -seed 7 -window 4 \
	-no-cache -q > "$BIN/drain.json" &
RUN_PID=$!
sleep 0.3
kill -TERM "$SIMD_PID"
if ! wait "$RUN_PID"; then
	echo "daemon-smoke: in-flight request failed during drain" >&2
	exit 1
fi
if ! wait "$SIMD_PID"; then
	echo "daemon-smoke: daemon did not exit cleanly on SIGTERM" >&2
	exit 1
fi
[ -s "$BIN/drain.json" ] || { echo "daemon-smoke: drained artifact is empty" >&2; exit 1; }

echo "daemon-smoke: all gates 0-drift through the daemon; warm path ${speedup}x; drain clean"
