package main

import (
	"os"
	"path/filepath"
	"testing"
)

func write(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCheckLinks(t *testing.T) {
	root := t.TempDir()
	write(t, filepath.Join(root, "doc", "GUIDE.md"),
		"[up](../README.md) [anchor](../README.md#quick-start) "+
			"[web](https://example.com/x.md) [self](#here)\n")
	write(t, filepath.Join(root, "README.md"), "[guide](doc/GUIDE.md)\n")
	if bad := checkLinks(root); bad != 0 {
		t.Fatalf("clean tree: %d violations, want 0", bad)
	}
	write(t, filepath.Join(root, "README.md"), "[gone](doc/MISSING.md)\n")
	if bad := checkLinks(root); bad != 1 {
		t.Fatalf("broken link: %d violations, want 1", bad)
	}
}

func TestCheckPackageComments(t *testing.T) {
	root := t.TempDir()
	write(t, filepath.Join(root, "internal", "good", "good.go"),
		"// Package good is documented.\npackage good\n")
	write(t, filepath.Join(root, "internal", "testonly", "x_test.go"),
		"// Package testonly has its comment in a test file only.\npackage testonly\n")
	write(t, filepath.Join(root, "internal", "bare", "bare.go"),
		"package bare\n")
	// good passes; testonly (no non-test files) and bare (no comment) fail.
	if bad := checkPackageComments(root); bad != 2 {
		t.Fatalf("violations = %d, want 2", bad)
	}
}

// TestRepoIsClean runs both checks against the actual repository, the
// same invocation `make doc-check` performs.
func TestRepoIsClean(t *testing.T) {
	root := "../.."
	if bad := checkLinks(root); bad != 0 {
		t.Errorf("repo markdown links: %d broken", bad)
	}
	if bad := checkPackageComments(root); bad != 0 {
		t.Errorf("repo package comments: %d missing", bad)
	}
}
