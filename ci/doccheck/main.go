// Command doccheck is the `make doc-check` gate: it keeps the repository's
// documentation from rotting by verifying two invariants that are cheap to
// break silently —
//
//  1. every relative link in the markdown files resolves to a file or
//     directory that actually exists (anchors after '#' are ignored), and
//  2. every internal/ package carries a package comment in a non-test file,
//     so `go doc repro/internal/<pkg>` always says something.
//
// It prints one line per violation and exits 1 if there are any.
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// mdLink matches inline markdown links and images: [text](target).
// Reference-style definitions and autolinks are rare in this repo and
// external (http) targets are skipped below anyway.
var mdLink = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)[^)]*\)`)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	bad := 0
	bad += checkLinks(root)
	bad += checkPackageComments(root)
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doc-check: %d problem(s)\n", bad)
		os.Exit(1)
	}
	fmt.Println("doc-check: all markdown links resolve; all internal packages documented")
}

// checkLinks walks every .md file and verifies each relative link target
// exists on disk, resolved against the file's own directory.
func checkLinks(root string) int {
	bad := 0
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".md") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue
			}
			target = strings.SplitN(target, "#", 2)[0]
			if target == "" { // pure in-page anchor
				continue
			}
			resolved := filepath.Join(filepath.Dir(path), target)
			if _, err := os.Stat(resolved); err != nil {
				fmt.Fprintf(os.Stderr, "%s: broken link %q (%s does not exist)\n",
					path, m[1], resolved)
				bad++
			}
		}
		return nil
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "doc-check: walk: %v\n", err)
		return bad + 1
	}
	return bad
}

// checkPackageComments parses each internal/<pkg> directory (non-test
// files only, comments retained) and requires a package doc comment.
func checkPackageComments(root string) int {
	dirs, err := os.ReadDir(filepath.Join(root, "internal"))
	if err != nil {
		fmt.Fprintf(os.Stderr, "doc-check: %v\n", err)
		return 1
	}
	bad := 0
	fset := token.NewFileSet()
	for _, d := range dirs {
		if !d.IsDir() {
			continue
		}
		dir := filepath.Join(root, "internal", d.Name())
		pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments|parser.PackageClauseOnly)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: parse: %v\n", dir, err)
			bad++
			continue
		}
		documented := false
		any := false
		for _, pkg := range pkgs {
			for _, f := range pkg.Files {
				any = true
				if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
					documented = true
				}
			}
		}
		if !any {
			fmt.Fprintf(os.Stderr, "%s: no non-test Go files — add a doc.go\n", dir)
			bad++
		} else if !documented {
			fmt.Fprintf(os.Stderr, "%s: missing package comment\n", dir)
			bad++
		}
	}
	return bad
}
