GO ?= go

.PHONY: build vet test race smoke baseline ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Fast end-to-end check: regenerate the full evaluation at a 1 ms window,
# write the machine-readable artifact, and gate it against the committed
# baseline. Per-point simulations are deterministic, so identical code
# must diff clean (exit 0); a regression or who-wins flip fails the make.
smoke:
	$(GO) run ./cmd/reproduce -window 1 -skip-sensitivity -json /tmp/BENCH_smoke.json > /dev/null
	$(GO) run ./cmd/benchdiff ci/baseline.json /tmp/BENCH_smoke.json

# Regenerate the committed baseline (run after an intentional change to
# the cost model or experiments; review the diff before committing).
baseline:
	$(GO) run ./cmd/reproduce -window 1 -skip-sensitivity -json ci/baseline.json > /dev/null

ci: vet test race smoke
