GO ?= go

.PHONY: build vet test race smoke baseline bench profile ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Fast end-to-end check: regenerate the full evaluation at a 1 ms window,
# write the machine-readable artifact, and gate it against the committed
# baseline. Per-point simulations are deterministic, so identical code
# must diff clean (exit 0); a regression or who-wins flip fails the make.
smoke:
	$(GO) run ./cmd/reproduce -window 1 -skip-sensitivity -json /tmp/BENCH_smoke.json > /dev/null
	$(GO) run ./cmd/benchdiff ci/baseline.json /tmp/BENCH_smoke.json

# Regenerate the committed baseline (run after an intentional change to
# the cost model or experiments; review the diff before committing).
baseline:
	$(GO) run ./cmd/reproduce -window 1 -skip-sensitivity -json ci/baseline.json > /dev/null

# Host-side microbenchmarks of the simulation substrate (scheduler fence
# path, page store, DMA translation). Results are host-dependent — they
# are written to bench-host.txt for eyeballing, not gated.
bench:
	$(GO) test -run '^$$' -bench . -benchmem \
		./internal/sim/ ./internal/mem/ ./internal/iommu/ | tee bench-host.txt

# Profile the smoke workload: writes cpu.prof and mem.prof to /tmp.
# Inspect with: go tool pprof -http=: /tmp/cpu.prof
profile:
	$(GO) run ./cmd/reproduce -window 1 -skip-sensitivity \
		-cpuprofile /tmp/cpu.prof -memprofile /tmp/mem.prof > /dev/null
	@echo "wrote /tmp/cpu.prof /tmp/mem.prof"

ci: vet test race smoke
