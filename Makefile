GO ?= go

.PHONY: build vet test race race-smoke smoke baseline scale-smoke scale-baseline bench-json chaos-smoke chaos-baseline attack-smoke attack-baseline tenant-smoke tenant-baseline daemon-smoke bench profile fuzz fuzz-smoke cover doc-check ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short farm-parallel smoke under the race detector: the tests that fan
# real sweep points across multi-worker farms (bench sections, chaos
# variant triples, magazine stats counters), so any cross-engine data
# race on shared state fails fast without the cost of `make race`.
race-smoke:
	$(GO) test -race -count=1 \
		-run 'Farm|RunSuite|PointSeed|MagazineStatsRace|Fig1Extended|ParallelHost|Campaign|Tenant|Store|Daemon' \
		./internal/bench/ ./internal/chaos/ ./internal/iova/ ./internal/shadow/ ./internal/campaign/ ./internal/tenant/ ./internal/store/ ./internal/daemon/

# Fast end-to-end check: regenerate the full evaluation at a 1 ms window,
# write the machine-readable artifact, and gate it against the committed
# baseline. Per-point simulations are deterministic, so identical code
# must diff clean (exit 0); a regression or who-wins flip fails the make.
smoke:
	$(GO) run ./cmd/reproduce -window 1 -skip-sensitivity -json /tmp/BENCH_smoke.json > /dev/null
	$(GO) run ./cmd/benchdiff ci/baseline.json /tmp/BENCH_smoke.json

# Regenerate the committed baseline (run after an intentional change to
# the cost model or experiments; review the diff before committing).
baseline:
	$(GO) run ./cmd/reproduce -window 1 -skip-sensitivity -json ci/baseline.json > /dev/null

# Many-core scale gate: regenerate the Figure 1 extension (six systems x
# {1,4,16,64,128} cores, farmed) and diff it against the committed scale
# baseline. Simulated metrics are deterministic at any -parallel, so
# identical code must diff clean; only the farm.* host stats may differ
# (diff-exempt).
scale-smoke:
	$(GO) run ./cmd/reproduce -window 2 -skip-sensitivity -experiment fig1ext -json /tmp/SCALE_smoke.json > /dev/null
	$(GO) run ./cmd/benchdiff ci/scale-baseline.json /tmp/SCALE_smoke.json

# Regenerate the committed scale baseline (after an intentional change to
# the cost model or the fig1ext experiment; review the diff first).
scale-baseline:
	$(GO) run ./cmd/reproduce -window 2 -skip-sensitivity -experiment fig1ext -json ci/scale-baseline.json > /dev/null

# Host-side scale benchmark artifact: engine dispatch ns/op at 16/64/128
# procs plus wall time and allocs/op for the 16/64/128-core strict-RX
# simulation points. Host-dependent (never gated); committed each PR as
# BENCH_scale.json so the dispatch/allocation trend is tracked in-repo.
bench-json:
	$(GO) run ./cmd/scalebench -json BENCH_scale.json

# Resilience smoke: run the fault-injection scenarios (fault storm, IOVA
# scan, queue stall, pool squeeze) at fixed seed and gate the artifact
# against the committed chaos baseline, exactly like `smoke` does for the
# paper figures. Catches regressions in containment (goodput under
# attack), quarantine behaviour, and graceful-degradation accounting.
chaos-smoke:
	$(GO) run ./cmd/chaosbench -seed 1 -q -json /tmp/CHAOS_smoke.json
	$(GO) run ./cmd/benchdiff ci/chaos-baseline.json /tmp/CHAOS_smoke.json

# Regenerate the committed chaos baseline (after an intentional change to
# the scenarios, policies, or cost model; review the diff first).
chaos-baseline:
	$(GO) run ./cmd/chaosbench -seed 1 -q -json ci/chaos-baseline.json

# Attack-campaign smoke: run every payload in the malicious-device
# library against every protection backend at fixed seed and gate the
# success-matrix artifact against the committed attack baseline. Any
# cell flip — a defense newly broken or newly effective — fails the
# build and must be investigated, not re-baselined away.
attack-smoke:
	$(GO) run ./cmd/attackbench -seed 1 -q -json /tmp/ATTACK_smoke.json
	$(GO) run ./cmd/benchdiff ci/attack-baseline.json /tmp/ATTACK_smoke.json

# Regenerate the committed attack baseline (only after an intentional,
# reviewed change to a payload or a protection model).
attack-baseline:
	$(GO) run ./cmd/attackbench -seed 1 -q -json ci/attack-baseline.json

# Multi-tenant datapath smoke: run the hostile-tenant isolation matrix
# (3 attacks x 3 schemes) and the isolation-vs-throughput sweep (up to
# 1024 tenant queues) at fixed seed and gate the artifact against the
# committed tenant baseline. An isolation-cell flip — a scheme newly
# breached or newly containing — or goodput drift fails the build.
tenant-smoke:
	$(GO) run ./cmd/tenantbench -seed 1 -q -json /tmp/TENANT_smoke.json
	$(GO) run ./cmd/benchdiff ci/tenant-baseline.json /tmp/TENANT_smoke.json

# Regenerate the committed tenant baseline (only after an intentional,
# reviewed change to a scheme, a hostile program, or the cost model).
tenant-baseline:
	$(GO) run ./cmd/tenantbench -seed 1 -q -json ci/tenant-baseline.json

# Daemon smoke: start a simd on a fresh store, serve every baseline
# suite through it (benchdiff -watch; 0 drift vs the committed gates),
# require the warm memoized path to be >= 5x faster than a cold compute,
# and SIGTERM mid-flight to assert the graceful drain (doc/DAEMON.md).
daemon-smoke:
	sh ci/daemon-smoke.sh

# Host-side microbenchmarks of the simulation substrate (scheduler fence
# path, page store, DMA translation). Results are host-dependent — they
# are written to bench-host.txt for eyeballing, not gated.
bench:
	$(GO) test -run '^$$' -bench . -benchmem \
		./internal/sim/ ./internal/mem/ ./internal/iommu/ | tee bench-host.txt

# Profile the smoke workload: writes cpu.prof and mem.prof to /tmp.
# Inspect with: go tool pprof -http=: /tmp/cpu.prof
profile:
	$(GO) run ./cmd/reproduce -window 1 -skip-sensitivity \
		-cpuprofile /tmp/cpu.prof -memprofile /tmp/mem.prof > /dev/null
	@echo "wrote /tmp/cpu.prof /tmp/mem.prof"

# Native coverage-guided fuzzing of the two lowest-level contracts
# (IOMMU translation vs. a model page table; mem access vs. a model
# byte store), seeded from dmafuzz-generated corpora. Short budgets —
# this is a smoke pass; raise -fuzztime for a real fuzzing session.
fuzz:
	$(GO) test ./internal/iommu/ -run '^$$' -fuzz '^FuzzTranslate$$' -fuzztime 10s
	$(GO) test ./internal/mem/ -run '^$$' -fuzz '^FuzzAccess$$' -fuzztime 10s

# Deterministic differential-fuzzing smoke for CI (~10 s): fixed seeds
# through every backend and all three oracle families, a byte-identical
# determinism check, and a canary that the harness still catches the
# reintroduced deferred-window bug (strict unmap skipping invalidation).
fuzz-smoke:
	$(GO) run ./cmd/dmafuzz -seed 1 -n 500 > /dev/null
	$(GO) run ./cmd/dmafuzz -seed 2 -n 500 > /dev/null
	$(GO) run ./cmd/dmafuzz -seed 3 -n 300 -alloc-fail-every 7 > /dev/null
	$(GO) run ./cmd/dmafuzz -seed 1 -n 500 -json > /tmp/dmafuzz-a.json
	$(GO) run ./cmd/dmafuzz -seed 1 -n 500 -json > /tmp/dmafuzz-b.json
	cmp /tmp/dmafuzz-a.json /tmp/dmafuzz-b.json
	@if $(GO) run ./cmd/dmafuzz -seed 1 -n 200 -backends strict \
		-inject-bug skipinval -no-minimize > /dev/null 2>&1; then \
		echo "fuzz-smoke: reintroduced skipinval bug NOT caught"; exit 1; \
	fi
	@echo "fuzz-smoke: oracles pass on fixed seeds; injected bug caught"

# Coverage gate: total statement coverage must not drop below the
# committed floor in ci/coverage-baseline.txt. Raise the floor when
# coverage improves; never lower it to make CI pass.
cover:
	$(GO) test -count=1 -coverprofile=/tmp/coverage.out ./... > /dev/null
	@total=$$($(GO) tool cover -func=/tmp/coverage.out | tail -1 | awk '{gsub(/%/,""); print $$3}'); \
	floor=$$(cat ci/coverage-baseline.txt); \
	awk -v t="$$total" -v f="$$floor" 'BEGIN { \
		if (t+0 < f+0) { printf "coverage gate: %.1f%% < baseline %.1f%%\n", t, f; exit 1 } \
		printf "coverage gate: %.1f%% >= baseline %.1f%%\n", t, f }'

# Documentation gate: every relative markdown link must resolve and every
# internal/ package must carry a package comment (see ci/doccheck).
doc-check:
	$(GO) run ./ci/doccheck

ci: vet test race race-smoke smoke scale-smoke chaos-smoke attack-smoke tenant-smoke daemon-smoke fuzz-smoke cover doc-check
