package main

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestSplitList(t *testing.T) {
	if got := splitList("all"); got != nil {
		t.Errorf("splitList(all) = %v, want nil", got)
	}
	if got := splitList(""); got != nil {
		t.Errorf("splitList(\"\") = %v, want nil", got)
	}
	want := []string{"strict", "copy"}
	if got := splitList(" strict , copy "); !reflect.DeepEqual(got, want) {
		t.Errorf("splitList = %v, want %v", got, want)
	}
}

func TestRunSubsetWritesArtifact(t *testing.T) {
	out := filepath.Join(t.TempDir(), "attacks.json")
	var stdout, stderr bytes.Buffer
	opts := options{
		seed:     1,
		payloads: "replay-window,stale-read",
		systems:  "strict,defer,copy",
		parallel: 1,
		jsonOut:  out,
	}
	if err := run(opts, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"replay-window", "stale-read", "BREACH", "breached by"} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("stdout missing %q:\n%s", want, stdout.String())
		}
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("artifact not written: %v", err)
	}
	for _, want := range []string{`"tool": "attackbench"`, `"campaign"`, `"success"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("artifact missing %q", want)
		}
	}
}

func TestRunQuietSuppressesMatrix(t *testing.T) {
	var stdout, stderr bytes.Buffer
	opts := options{seed: 1, payloads: "stale-read", systems: "copy", parallel: 1, quiet: true}
	if err := run(opts, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v", err)
	}
	if stdout.Len() != 0 {
		t.Errorf("-q still wrote to stdout:\n%s", stdout.String())
	}
}

func TestRunRejectsUnknownNames(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run(options{seed: 1, payloads: "no-such-payload", systems: "all", parallel: 1},
		&stdout, &stderr); err == nil {
		t.Error("unknown payload accepted")
	}
	if err := run(options{seed: 1, payloads: "all", systems: "no-such-system", parallel: 1},
		&stdout, &stderr); err == nil {
		t.Error("unknown system accepted")
	}
}
