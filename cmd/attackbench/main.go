// Command attackbench runs the attack-campaign engine: every payload in
// internal/campaign's library — sub-page harvest, post-unmap replay,
// blind window discovery, descriptor-ring overrun, fault storm, hot-plug
// surprise removal, ATS-style spoof, allocator-reuse race, stale-data
// read, arbitrary scan — against every protection backend, and prints
// the resulting success matrix (the paper's Table 1 generalized to
// ~10 x 8).
//
// Usage:
//
//	attackbench [-seed 1] [-payloads replay-window,fault-storm] [-systems strict,copy]
//	attackbench -json attacks.json     # machine-readable artifact
//	attackbench -parallel 4            # cells fan out across a farm
//
// Every cell is an independent deterministic simulation, so the JSON
// artifact is byte-identical at any -parallel setting and is
// regression-gated in CI with cmd/benchdiff against
// ci/attack-baseline.json (`make attack-smoke`): any cell flip — a
// defense newly broken or newly effective — fails the build.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/bench"
	"repro/internal/campaign"
	"repro/internal/report"
)

type options struct {
	seed     int64
	payloads string
	systems  string
	parallel int
	jsonOut  string
	quiet    bool
}

func splitList(s string) []string {
	if s == "" || s == "all" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func run(opts options, stdout, stderr io.Writer) error {
	cfg := campaign.MatrixConfig{
		Seed:     opts.seed,
		Payloads: splitList(opts.payloads),
		Systems:  splitList(opts.systems),
	}
	if opts.parallel != 1 {
		farm := bench.NewFarm(opts.parallel)
		defer farm.Close()
		cfg.Farm = farm
	}
	tb, results, err := campaign.Matrix(cfg)
	if err != nil {
		return err
	}
	systems := cfg.Systems
	if len(systems) == 0 {
		systems = bench.ExtendedSystems
	}
	if !opts.quiet {
		fmt.Fprintln(stdout, tb.String())
		breaches := make(map[string]int)
		for i, r := range results {
			if r.Success {
				breaches[systems[i%len(systems)]]++
			}
		}
		for _, sys := range systems {
			fmt.Fprintf(stdout, "%-10s breached by %d/%d payloads\n",
				sys, breaches[sys], len(results)/len(systems))
		}
	}
	if opts.jsonOut != "" {
		art := report.New("attackbench", campaign.CellWindowMs, nil)
		art.Add(tb.Experiment())
		if err := art.WriteFile(opts.jsonOut); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "attackbench: wrote %s (%d cells)\n", opts.jsonOut, len(results))
	}
	return nil
}

func main() {
	var opts options
	flag.Int64Var(&opts.seed, "seed", 1, "deterministic campaign seed")
	flag.StringVar(&opts.payloads, "payloads", "all", "comma-separated payload names, or 'all'")
	flag.StringVar(&opts.systems, "systems", "all", "comma-separated protection backends, or 'all'")
	flag.IntVar(&opts.parallel, "parallel", 1, "farm workers for cell parallelism (<=0 = GOMAXPROCS, 1 = serial)")
	flag.StringVar(&opts.jsonOut, "json", "", "write a machine-readable artifact (internal/report schema) to this path")
	flag.BoolVar(&opts.quiet, "q", false, "suppress the text matrix")
	flag.Parse()

	if err := run(opts, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "attackbench: %v\n", err)
		os.Exit(1)
	}
}
