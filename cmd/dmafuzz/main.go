// Command dmafuzz runs the differential DMA fuzzing harness: a seeded
// random DMA workload is executed against every protection backend, and
// three oracle families check the results — differential (benign traces
// look identical through every backend), security-invariant (malicious
// probes never exceed granted authority, except in the paper-predicted
// windows, which must be positively observed), and resource (allocators
// and pools return to baseline after teardown).
//
// On failure the trace is minimized with ddmin and written as a
// replayable JSON repro file; the exit status is nonzero.
//
//	dmafuzz -seed 1 -n 500                  # one fuzzing run, all backends
//	dmafuzz -seed 1 -n 500 -json            # machine-readable report on stdout
//	dmafuzz -seeds 16 -parallel 4           # 16 derived seeds across a farm
//	dmafuzz -inject-bug skipinval -backends strict
//	dmafuzz -replay repro.json -inject-bug skipinval
//
// With -seeds N, seed i is derived as bench.PointSeed(-seed, i) — a
// splitmix64 mix, so campaign results depend only on the base seed and
// position, never on -parallel or completion order. Reports print in
// seed order; the first failing trace is minimized.
//
// -timeout bounds the run: on expiry the trace that was executing (or the
// first trace the campaign never finished) is written to -repro as a
// replayable diagnostic, and the process exits 1.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/dmafuzz"
)

func main() {
	seed := flag.Int64("seed", 1, "workload generator seed (base seed with -seeds > 1)")
	n := flag.Int("n", 500, "number of trace operations")
	seedCount := flag.Int("seeds", 1, "run this many traces with seeds derived from -seed")
	parallel := flag.Int("parallel", 1, "farm workers for the multi-seed campaign (<=0 = GOMAXPROCS, 1 = serial)")
	jsonOut := flag.Bool("json", false, "print the full report as JSON instead of a summary")
	backendsFlag := flag.String("backends", "", "comma-separated backend subset (default: all)")
	replay := flag.String("replay", "", "replay a repro file instead of generating a trace")
	reproOut := flag.String("repro", "dmafuzz-repro.json", "where to write the minimized repro on failure")
	injectBug := flag.String("inject-bug", "", "reintroduce a bug: skipinval (strict unmap skips IOTLB invalidation) or spillnoinval (copy-degraded spill unmap skips invalidation)")
	allocFail := flag.Int("alloc-fail-every", 0, "fail every Nth page allocation (fault injection)")
	stall := flag.Uint64("stall-cycles", 0, "extra invalidation-queue latency per command (fault injection)")
	invTimeout := flag.Uint64("inv-timeout", 0, "arm the ITE model: invalidation waits past this many cycles time out and recover (fault injection)")
	noMinimize := flag.Bool("no-minimize", false, "skip trace minimization on failure")
	timeout := flag.Duration("timeout", 0, "abort after this wall-clock duration; the interrupted trace is written to -repro for replay (0 = unbounded)")
	flag.Parse()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	plan := dmafuzz.FaultPlan{AllocFailEvery: *allocFail, StallCycles: *stall, InvTimeout: *invTimeout}
	switch *injectBug {
	case "":
	case "skipinval":
		plan.SkipInval = true
	case "spillnoinval":
		plan.SpillNoInval = true
	default:
		fmt.Fprintf(os.Stderr, "dmafuzz: unknown -inject-bug %q (want: skipinval, spillnoinval)\n", *injectBug)
		os.Exit(2)
	}

	backends := dmafuzz.Backends
	if *backendsFlag != "" {
		backends = strings.Split(*backendsFlag, ",")
	}

	if *seedCount > 1 {
		if *replay != "" {
			fatal(fmt.Errorf("-seeds and -replay are mutually exclusive"))
		}
		runCampaign(ctx, *seed, *seedCount, *n, *parallel, backends, plan,
			*jsonOut, *noMinimize, *reproOut, *timeout)
		return
	}

	var tr *dmafuzz.Trace
	if *replay != "" {
		blob, err := os.ReadFile(*replay)
		if err != nil {
			fatal(err)
		}
		tr, err = dmafuzz.UnmarshalRepro(blob)
		if err != nil {
			fatal(fmt.Errorf("parse %s: %w", *replay, err))
		}
		fmt.Fprintf(os.Stderr, "dmafuzz: replaying %s (%d ops, seed %d)\n", *replay, len(tr.Ops), tr.Seed)
	} else {
		tr = dmafuzz.Generate(*seed, *n)
	}

	// RunTrace has no internal cancellation point, so the timeout races it
	// from outside: on expiry the generated trace itself is the diagnostic —
	// written replayable, so the hang reproduces under -replay.
	type traceOut struct {
		rep *dmafuzz.Report
		err error
	}
	resc := make(chan traceOut, 1)
	go func() {
		rep, err := dmafuzz.RunTrace(tr, backends, plan)
		resc <- traceOut{rep, err}
	}()
	var rep *dmafuzz.Report
	select {
	case r := <-resc:
		if r.err != nil {
			fatal(r.err)
		}
		rep = r.rep
	case <-ctx.Done():
		writeHungTrace(tr, *reproOut, *timeout)
		os.Exit(1)
	}

	if *jsonOut {
		j, err := rep.JSON()
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(j)
		os.Stdout.Write([]byte("\n"))
	} else {
		printSummary(rep)
	}

	if !rep.Failed() {
		return
	}
	fmt.Fprintf(os.Stderr, "\ndmafuzz: FAILED — %d violation(s)\n", len(rep.Failures()))
	for _, f := range rep.Failures() {
		fmt.Fprintf(os.Stderr, "  %s\n", f)
	}
	if !*noMinimize && *replay == "" {
		min, runs, err := dmafuzz.Minimize(tr, backends, plan)
		if err != nil {
			fatal(err)
		}
		blob, err := min.MarshalRepro()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*reproOut, blob, 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "dmafuzz: minimized %d -> %d ops (%d oracle runs); repro written to %s\n",
			len(tr.Ops), len(min.Ops), runs, *reproOut)
	}
	os.Exit(1)
}

// runCampaign fuzzes `count` derived seeds, fanned across a farm. The
// merge is in seed order (reports, output, exit status) regardless of
// which worker finished first, and each trace's seed depends only on
// (base, index), so a campaign is reproducible at any -parallel.
func runCampaign(ctx context.Context, base int64, count, n, parallel int, backends []string,
	plan dmafuzz.FaultPlan, jsonOut, noMinimize bool, reproOut string, timeout time.Duration) {
	var farm *bench.Farm
	if parallel != 1 {
		farm = bench.NewFarm(parallel)
		defer farm.Close()
	}
	traces := make([]*dmafuzz.Trace, count)
	reps := make([]*dmafuzz.Report, count)
	err := farm.WithContext(ctx).Map(count, func(i int) error {
		tr := dmafuzz.Generate(bench.PointSeed(base, i), n)
		rep, err := dmafuzz.RunTrace(tr, backends, plan)
		if err != nil {
			return fmt.Errorf("seed[%d]=%d: %w", i, tr.Seed, err)
		}
		traces[i], reps[i] = tr, rep
		return nil
	})
	if err != nil {
		if ctx.Err() == nil {
			fatal(err)
		}
		// Timed out: report how far the campaign got and leave a replayable
		// trace for the first seed that never finished. Generate is
		// deterministic in (base, index), so the regenerated trace is
		// exactly the one that was cut off.
		done := 0
		hung := -1
		for i, r := range reps {
			if r != nil {
				done++
			} else if hung < 0 {
				hung = i
			}
		}
		fmt.Fprintf(os.Stderr, "dmafuzz: campaign timed out after %s: %d/%d seeds completed\n",
			timeout, done, count)
		if hung >= 0 {
			writeHungTrace(dmafuzz.Generate(bench.PointSeed(base, hung), n), reproOut, timeout)
		}
		os.Exit(1)
	}
	failed := -1
	var totalViolations int
	for i, rep := range reps {
		if jsonOut {
			j, err := rep.JSON()
			if err != nil {
				fatal(err)
			}
			os.Stdout.Write(j)
			os.Stdout.Write([]byte("\n"))
		} else {
			fmt.Printf("=== campaign %d/%d ===\n", i+1, count)
			printSummary(rep)
			fmt.Println()
		}
		if rep.Failed() {
			totalViolations += len(rep.Failures())
			if failed < 0 {
				failed = i
			}
		}
	}
	if failed < 0 {
		fmt.Fprintf(os.Stderr, "dmafuzz: campaign PASS — %d seeds, 0 violations\n", count)
		return
	}
	fmt.Fprintf(os.Stderr, "\ndmafuzz: campaign FAILED — %d violation(s) across %d seeds; first at seed[%d]=%d\n",
		totalViolations, count, failed, traces[failed].Seed)
	for _, f := range reps[failed].Failures() {
		fmt.Fprintf(os.Stderr, "  %s\n", f)
	}
	if !noMinimize {
		min, runs, err := dmafuzz.Minimize(traces[failed], backends, plan)
		if err != nil {
			fatal(err)
		}
		blob, err := min.MarshalRepro()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(reproOut, blob, 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "dmafuzz: minimized %d -> %d ops (%d oracle runs); repro written to %s\n",
			len(traces[failed].Ops), len(min.Ops), runs, reproOut)
	}
	os.Exit(1)
}

func printSummary(rep *dmafuzz.Report) {
	fmt.Printf("dmafuzz seed=%d ops=%d backends=%d\n\n", rep.Seed, rep.Ops, len(rep.Backends))
	fmt.Printf("%-12s %5s %5s %4s  %11s %11s %9s %8s  %s\n",
		"backend", "exec", "skip", "err", "stale", "subpage", "arbitrary", "final", "verdict")
	for _, br := range rep.Backends {
		sec := br.Security
		verdict := "ok"
		if len(br.Violations) > 0 {
			verdict = fmt.Sprintf("%d VIOLATIONS", len(br.Violations))
		}
		fmt.Printf("%-12s %5d %5d %4d  %5d/%-5d %5d/%-5d %4d/%-4d %3d/%-4d  %s\n",
			br.Backend, br.Executed, br.SkippedOps, br.Errors,
			sec.StaleObserved, sec.StaleEligible,
			sec.SubPageObserved, sec.SubPageEligible,
			sec.ArbitraryLeaks+sec.ProberLeaks, sec.ArbitraryProbes+sec.ProberReads,
			sec.FinalObserved, sec.FinalProbes,
			verdict)
	}
	if len(rep.Diffs) > 0 {
		fmt.Printf("\ndifferential diffs:\n")
		for _, d := range rep.Diffs {
			fmt.Printf("  %s\n", d)
		}
	}
	if rep.Pass {
		fmt.Printf("\nPASS — windows observed exactly where the paper predicts them\n")
	}
}

// writeHungTrace persists the trace a timed-out run was working on, so
// the hang can be reproduced with -replay.
func writeHungTrace(tr *dmafuzz.Trace, reproOut string, timeout time.Duration) {
	blob, err := tr.MarshalRepro()
	if err != nil {
		fmt.Fprintf(os.Stderr, "dmafuzz: timed out after %s; marshaling interrupted trace: %v\n", timeout, err)
		return
	}
	if err := os.WriteFile(reproOut, blob, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "dmafuzz: timed out after %s; writing interrupted trace: %v\n", timeout, err)
		return
	}
	fmt.Fprintf(os.Stderr, "dmafuzz: timed out after %s; interrupted trace (seed %d, %d ops) written to %s — replay with -replay %s\n",
		timeout, tr.Seed, len(tr.Ops), reproOut, reproOut)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dmafuzz:", err)
	os.Exit(1)
}
