package main

import (
	"context"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dmafuzz"
)

// runMain invokes main with a fresh flag set, as the shell would.
func runMain(t *testing.T, args ...string) {
	t.Helper()
	flag.CommandLine = flag.NewFlagSet("dmafuzz", flag.ExitOnError)
	os.Args = append([]string{"dmafuzz"}, args...)
	main()
}

func TestMainSingleTrace(t *testing.T) {
	repro := filepath.Join(t.TempDir(), "repro.json")
	runMain(t, "-seed", "1", "-n", "60", "-repro", repro)
	if _, err := os.Stat(repro); err == nil {
		t.Error("passing run wrote a repro file")
	}
}

func TestMainSingleTraceJSON(t *testing.T) {
	runMain(t, "-seed", "2", "-n", "40", "-json",
		"-backends", strings.Join(dmafuzz.Backends[:2], ","))
}

func TestMainReplay(t *testing.T) {
	dir := t.TempDir()
	tr := dmafuzz.Generate(3, 30)
	blob, err := tr.MarshalRepro()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "trace.json")
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	runMain(t, "-replay", path, "-repro", filepath.Join(dir, "out.json"))
}

func TestRunCampaignPass(t *testing.T) {
	repro := filepath.Join(t.TempDir(), "repro.json")
	runCampaign(context.Background(), 5, 2, 40, 1, dmafuzz.Backends,
		dmafuzz.FaultPlan{}, false, true, repro, 0)
	runCampaign(context.Background(), 5, 2, 40, 1, dmafuzz.Backends,
		dmafuzz.FaultPlan{}, true, true, repro, 0)
}

func TestWriteHungTrace(t *testing.T) {
	tr := dmafuzz.Generate(1, 20)
	path := filepath.Join(t.TempDir(), "hung.json")
	writeHungTrace(tr, path, 0)
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	got, err := dmafuzz.UnmarshalRepro(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seed != tr.Seed || len(got.Ops) != len(tr.Ops) {
		t.Errorf("round-tripped trace: seed %d, %d ops", got.Seed, len(got.Ops))
	}
	// An unwritable path must degrade to a diagnostic, not a crash.
	writeHungTrace(tr, filepath.Join(t.TempDir(), "no/such/dir/x.json"), 0)
}
