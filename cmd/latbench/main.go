// Command latbench regenerates the latency experiments: Figure 9 (netperf
// TCP_RR latency and CPU across message sizes) and, with -breakdown,
// Figure 10 (the CPU-utilization breakdown at 64 KiB messages).
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/bench"
)

func main() {
	window := flag.Float64("window", 20, "simulated milliseconds per data point")
	breakdown := flag.Bool("breakdown", false, "also print the Figure 10 CPU breakdown")
	jsonOut := flag.String("json", "", "also write a machine-readable artifact (internal/report schema) to this path")
	cycleReport := flag.Bool("cyclereport", false, "append the RR cycle-attribution table (simulated-cycle profiler, doc/OBSERVABILITY.md)")
	traceFile := flag.String("tracefile", "", "write a Chrome trace-event JSON (Perfetto-loadable) of the strict RR workload to this path")
	flag.Parse()

	opt := bench.Options{WindowMs: *window}
	t, _, err := bench.Fig9(opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(t)
	tables := []*bench.Table{t}
	if *breakdown {
		t10, err := bench.Fig10(opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(t10)
		tables = append(tables, t10)
	}
	if *cycleReport {
		ct, err := bench.CycleReportRR(opt)
		if err != nil {
			log.Fatalf("cycle report: %v", err)
		}
		fmt.Println(ct)
		tables = append(tables, ct)
	}
	if *traceFile != "" {
		cfg := bench.DefaultConfig(bench.SysLinuxStrict, bench.RR, 1, 65536)
		if _, err := bench.WriteTrace(cfg, *traceFile); err != nil {
			log.Fatalf("trace: %v", err)
		}
		fmt.Printf("Chrome trace written to %s (load at https://ui.perfetto.dev)\n", *traceFile)
	}
	if *jsonOut != "" {
		if err := bench.WriteArtifact(*jsonOut, "latbench", *window, nil, tables...); err != nil {
			log.Fatal(err)
		}
	}
}
