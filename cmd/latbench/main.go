// Command latbench regenerates the latency experiments: Figure 9 (netperf
// TCP_RR latency and CPU across message sizes) and, with -breakdown,
// Figure 10 (the CPU-utilization breakdown at 64 KiB messages).
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/bench"
)

func main() {
	window := flag.Float64("window", 20, "simulated milliseconds per data point")
	breakdown := flag.Bool("breakdown", false, "also print the Figure 10 CPU breakdown")
	jsonOut := flag.String("json", "", "also write a machine-readable artifact (internal/report schema) to this path")
	flag.Parse()

	opt := bench.Options{WindowMs: *window}
	t, _, err := bench.Fig9(opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(t)
	tables := []*bench.Table{t}
	if *breakdown {
		t10, err := bench.Fig10(opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(t10)
		tables = append(tables, t10)
	}
	if *jsonOut != "" {
		if err := bench.WriteArtifact(*jsonOut, "latbench", *window, nil, tables...); err != nil {
			log.Fatal(err)
		}
	}
}
