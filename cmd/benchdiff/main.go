// Command benchdiff compares two benchmark artifacts (written by
// cmd/reproduce -json or any cmd/* tool) and fails when the candidate
// regresses beyond tolerance or flips a who-wins claim.
//
//	benchdiff baseline.json candidate.json
//
// With -watch it becomes an incremental gate: the candidate is requested
// from a running simd daemon (doc/DAEMON.md) instead of read from disk.
// The daemon memoizes per (seed, config, code-fingerprint), so an
// unchanged tree re-verifies from cache in milliseconds and only a
// rebuilt binary triggers recomputation.
//
//	benchdiff -watch ci/baseline.json                   # poll forever
//	benchdiff -watch -count 1 ci/chaos-baseline.json    # one-shot gate
//
// Exit status: 0 = pass, 1 = regression or claim flip, 2 = usage/load error.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/daemon"
	"repro/internal/report"
)

type metricTolFlag map[string]float64

func (m metricTolFlag) String() string {
	var parts []string
	for k, v := range m {
		parts = append(parts, fmt.Sprintf("%s=%g", k, v))
	}
	return strings.Join(parts, ",")
}

func (m metricTolFlag) Set(s string) error {
	k, v, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("want metric=tol, got %q", s)
	}
	t, err := strconv.ParseFloat(v, 64)
	if err != nil || t < 0 {
		return fmt.Errorf("bad tolerance in %q", s)
	}
	m[k] = t
	return nil
}

func main() {
	tol := flag.Float64("tol", 0.10, "default relative tolerance per metric")
	tie := flag.Float64("tie", 0.02, "suppress winner flips when contenders are within this relative margin")
	absFloor := flag.Float64("abs-floor", 0, "ignore changes smaller than this absolute magnitude")
	allowMissing := flag.Bool("allow-missing", false, "missing experiments/series/metrics are notes, not failures")
	quiet := flag.Bool("q", false, "print only the verdict line")
	watch := flag.Bool("watch", false, "fetch the candidate from a simd daemon and re-gate on an interval")
	socket := flag.String("socket", "/tmp/simd.sock", "simd daemon socket (-watch mode)")
	interval := flag.Duration("interval", 30*time.Second, "delay between gates (-watch mode)")
	count := flag.Int("count", 0, "stop after this many gates, 0 = forever (-watch mode)")
	seed := flag.Int64("seed", 0, "seed for daemon runs, 0 = tool default (-watch mode)")
	metricTol := metricTolFlag{}
	flag.Var(metricTol, "metric-tol", "per-metric tolerance override, metric=tol (repeatable)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: benchdiff [flags] baseline.json candidate.json\n"+
				"       benchdiff -watch [flags] baseline.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	opts := report.DiffOptions{
		Tol:           *tol,
		MetricTol:     metricTol,
		TieMargin:     *tie,
		AbsFloor:      *absFloor,
		IgnoreMissing: *allowMissing,
	}
	if *watch {
		if flag.NArg() != 1 {
			flag.Usage()
			os.Exit(2)
		}
		watchLoop(flag.Arg(0), *socket, *interval, *count, *seed, opts, *quiet)
		return
	}
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}

	a, err := report.Load(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: baseline: %v\n", err)
		os.Exit(2)
	}
	b, err := report.Load(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: candidate: %v\n", err)
		os.Exit(2)
	}
	diffAndPrint(a, b, opts, *quiet, true)
}

// diffAndPrint runs one comparison; when exit is true it terminates the
// process with the gate's status, otherwise it reports pass/fail.
func diffAndPrint(a, b *report.Artifact, opts report.DiffOptions, quiet, exit bool) bool {
	r, err := report.Diff(a, b, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		if exit {
			os.Exit(2)
		}
		return false
	}
	out := r.String()
	if quiet {
		lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
		out = lines[len(lines)-1] + "\n"
	}
	fmt.Print(out)
	if exit && !r.OK() {
		os.Exit(1)
	}
	return r.OK()
}

// watchLoop re-gates the baseline against daemon-served candidates. Each
// round asks simd for the run the baseline describes; the daemon's store
// makes an unchanged tree a cache hit, so the loop is cheap enough to
// leave running next to an edit-build cycle.
func watchLoop(baselinePath, socket string, interval time.Duration, count int, seed int64, opts report.DiffOptions, quiet bool) {
	base, err := report.Load(baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: baseline: %v\n", err)
		os.Exit(2)
	}
	spec, err := specFromArtifact(base, seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	c := &daemon.Client{Socket: socket}
	failed := false
	for round := 1; count == 0 || round <= count; round++ {
		// noDegrade: a reduced-window preview must never be graded as the
		// real candidate.
		resp, err := c.Run(spec, 0, false, true)
		ok := false
		switch {
		case err != nil:
			fmt.Fprintf(os.Stderr, "benchdiff: daemon: %v\n", err)
		case !resp.OK:
			fmt.Fprintf(os.Stderr, "benchdiff: daemon: %s: %s\n", resp.ErrKind, resp.Err)
		default:
			cand, derr := report.Decode(bytes.NewReader(resp.Artifact))
			if derr != nil {
				fmt.Fprintf(os.Stderr, "benchdiff: daemon artifact: %v\n", derr)
				break
			}
			state := "computed"
			if resp.Cached {
				state = "cached"
			}
			fmt.Printf("watch %s: %s candidate (%s, key %.12s)\n",
				time.Now().Format("15:04:05"), state, spec.Tool, resp.Key)
			ok = diffAndPrint(base, cand, opts, quiet, false)
		}
		if !ok {
			failed = true
		}
		if count == 0 || round < count {
			time.Sleep(interval)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// specFromArtifact reconstructs the daemon run that regenerates a
// baseline artifact: the tool and window come from the artifact itself,
// the experiment/scenario list from its experiment names. Attack and
// tenant baselines always cover the full matrix, so they map to "all".
func specFromArtifact(a *report.Artifact, seed int64) (daemon.RunSpec, error) {
	spec := daemon.RunSpec{Tool: a.Tool, Seed: seed, WindowMs: a.WindowMs}
	switch a.Tool {
	case "reproduce":
		var names []string
		for _, e := range a.Experiments {
			if e.Name == "farm" { // runtime telemetry, not a requestable experiment
				continue
			}
			names = append(names, e.Name)
		}
		spec.Experiments = strings.Join(names, ",")
	case "chaosbench":
		var names []string
		for _, e := range a.Experiments {
			names = append(names, strings.TrimPrefix(e.Name, "chaos-"))
		}
		spec.Scenarios = strings.Join(names, ",")
	case "attackbench", "tenantbench":
		// Full-matrix tools; the daemon defaults cover the baseline shape.
	default:
		return spec, fmt.Errorf("baseline tool %q has no daemon mapping", a.Tool)
	}
	return spec, nil
}
