// Command benchdiff compares two benchmark artifacts (written by
// cmd/reproduce -json or any cmd/* tool) and fails when the candidate
// regresses beyond tolerance or flips a who-wins claim.
//
//	benchdiff baseline.json candidate.json
//
// Exit status: 0 = pass, 1 = regression or claim flip, 2 = usage/load error.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/report"
)

type metricTolFlag map[string]float64

func (m metricTolFlag) String() string {
	var parts []string
	for k, v := range m {
		parts = append(parts, fmt.Sprintf("%s=%g", k, v))
	}
	return strings.Join(parts, ",")
}

func (m metricTolFlag) Set(s string) error {
	k, v, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("want metric=tol, got %q", s)
	}
	t, err := strconv.ParseFloat(v, 64)
	if err != nil || t < 0 {
		return fmt.Errorf("bad tolerance in %q", s)
	}
	m[k] = t
	return nil
}

func main() {
	tol := flag.Float64("tol", 0.10, "default relative tolerance per metric")
	tie := flag.Float64("tie", 0.02, "suppress winner flips when contenders are within this relative margin")
	absFloor := flag.Float64("abs-floor", 0, "ignore changes smaller than this absolute magnitude")
	allowMissing := flag.Bool("allow-missing", false, "missing experiments/series/metrics are notes, not failures")
	quiet := flag.Bool("q", false, "print only the verdict line")
	metricTol := metricTolFlag{}
	flag.Var(metricTol, "metric-tol", "per-metric tolerance override, metric=tol (repeatable)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: benchdiff [flags] baseline.json candidate.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}

	a, err := report.Load(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: baseline: %v\n", err)
		os.Exit(2)
	}
	b, err := report.Load(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: candidate: %v\n", err)
		os.Exit(2)
	}
	r, err := report.Diff(a, b, report.DiffOptions{
		Tol:           *tol,
		MetricTol:     metricTol,
		TieMargin:     *tie,
		AbsFloor:      *absFloor,
		IgnoreMissing: *allowMissing,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	out := r.String()
	if *quiet {
		lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
		out = lines[len(lines)-1] + "\n"
	}
	fmt.Print(out)
	if !r.OK() {
		os.Exit(1)
	}
}
