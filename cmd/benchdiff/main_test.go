package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/daemon"
	"repro/internal/report"
)

func art(tool string, window float64, names ...string) *report.Artifact {
	a := report.New(tool, window, nil)
	for _, n := range names {
		a.Add(report.Experiment{Name: n})
	}
	return a
}

func TestSpecFromArtifact(t *testing.T) {
	spec, err := specFromArtifact(art("reproduce", 1, "table1", "fig3", "farm"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Experiments != "table1,fig3" || spec.WindowMs != 1 {
		t.Errorf("reproduce spec = %+v (farm must be dropped)", spec)
	}

	spec, err = specFromArtifact(art("chaosbench", 2, "chaos-faultstorm", "chaos-iovascan"), 7)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Scenarios != "faultstorm,iovascan" || spec.Seed != 7 {
		t.Errorf("chaos spec = %+v (chaos- prefix must be stripped)", spec)
	}

	if spec, err = specFromArtifact(art("attackbench", 50, "campaign"), 1); err != nil || spec.Payloads != "" {
		t.Errorf("attack spec = %+v, %v (full-matrix tools use daemon defaults)", spec, err)
	}

	if _, err := specFromArtifact(art("netbench", 1), 0); err == nil {
		t.Error("unmapped tool accepted")
	}
}

func TestDiffAndPrint(t *testing.T) {
	a := art("reproduce", 1, "fig3")
	if !diffAndPrint(a, a, report.DiffOptions{}, true, false) {
		t.Error("identical artifacts failed the gate")
	}
	// A candidate missing a baseline experiment fails the gate; with
	// exit=false that is a reported failure, not a process exit.
	if diffAndPrint(a, art("reproduce", 1), report.DiffOptions{}, false, false) {
		t.Error("missing experiment passed the gate")
	}
}

func TestWatchLoopAgainstDaemon(t *testing.T) {
	dir := t.TempDir()
	sock := filepath.Join(dir, "d.sock")
	d, err := daemon.New(daemon.Config{
		Socket:      sock,
		StoreDir:    filepath.Join(dir, "store"),
		Parallel:    2,
		Fingerprint: "test",
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	go d.Serve()
	t.Cleanup(d.Shutdown)
	c := &daemon.Client{Socket: sock}
	if err := c.WaitReady(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Compute the baseline through the daemon, then re-gate it with
	// watchLoop: the same spec is a store hit and must diff clean (a
	// failing round would os.Exit(1) and abort the test binary).
	spec := daemon.RunSpec{Tool: "chaosbench", Seed: 1, WindowMs: 1, Scenarios: "faultstorm"}
	resp, err := c.Run(spec, 0, false, true)
	if err != nil || !resp.OK {
		t.Fatalf("seeding baseline: %v %+v", err, resp)
	}
	baseline := filepath.Join(dir, "baseline.json")
	if err := os.WriteFile(baseline, resp.Artifact, 0o644); err != nil {
		t.Fatal(err)
	}
	watchLoop(baseline, sock, 0, 2, 1, report.DiffOptions{Tol: 0.1}, true)
}

