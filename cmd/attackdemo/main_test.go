package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/bench"
)

// TestPartialFailureSurfacesErrorAndKeepsGoing is the regression test for
// the bug where the first failing system aborted the whole demo: the
// error of one system must not hide the others' results, and must still
// make run() fail (so main exits non-zero).
func TestPartialFailureSurfacesErrorAndKeepsGoing(t *testing.T) {
	var out bytes.Buffer
	err := run(options{
		window:  3,
		systems: []string{bench.SysLinuxDefer, "no-such-system", bench.SysCopy},
	}, &out)
	if err == nil {
		t.Fatal("run succeeded despite a failing system")
	}
	if !strings.Contains(err.Error(), "no-such-system") {
		t.Errorf("error does not name the failing system: %v", err)
	}
	got := out.String()
	// The systems after the failure still ran and printed their outcomes.
	for _, want := range []string{bench.SysLinuxDefer, bench.SysCopy, "sub-page leak"} {
		if !strings.Contains(got, want) {
			t.Errorf("partial results missing %q:\n%s", want, got)
		}
	}
	if !strings.Contains(got, "FAILED") {
		t.Errorf("failing system's error not surfaced inline:\n%s", got)
	}
}

func TestRunAllSystemsSucceeds(t *testing.T) {
	var out bytes.Buffer
	if err := run(options{window: 3, systems: bench.ExtendedSystems}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, sys := range bench.ExtendedSystems {
		if !strings.Contains(out.String(), sys) {
			t.Errorf("output missing system %q", sys)
		}
	}
	if !strings.Contains(out.String(), "leaked co-located secret") {
		t.Error("no leaked-secret line for any vulnerable system")
	}
}
