// Command attackdemo runs the DMA attack suite against every protection
// strategy and prints the resulting security matrix (the paper's Table 1).
// With -window-sweep it additionally sweeps the replay delay after
// dma_unmap to chart the deferred-protection vulnerability window (§3:
// buffers can remain device-writable for up to 10 ms).
//
// A failed scenario no longer aborts the whole demo: the remaining
// systems still run and print, the failure is reported per-system, and
// the process exits non-zero.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/attack"
	"repro/internal/bench"
	"repro/internal/trace"
)

type options struct {
	sweep     bool
	window    float64
	showTrace bool
	jsonOut   string
	systems   []string
}

// run executes the demo and returns an error if any scenario failed —
// after printing every system's (possibly partial) outcome, so one bad
// cell does not hide the rest of the matrix.
func run(opts options, stdout io.Writer) error {
	if opts.showTrace {
		if err := dumpAttackTrace(stdout); err != nil {
			return err
		}
	}

	fmt.Fprintln(stdout, "Attacking every protection strategy with a compromised device...")
	fmt.Fprintln(stdout, "(includes the related-work designs: swiotlb bounce buffers and the")
	fmt.Fprintln(stdout, " Basu et al. self-invalidating IOMMU with a 20us entry TTL)")
	fmt.Fprintln(stdout)
	var failures []string
	for _, sys := range opts.systems {
		out, err := attack.Run(sys)
		if err != nil {
			// Partial failure: surface the error, keep the partial outcome
			// visible, and keep going — the other systems' results matter.
			failures = append(failures, fmt.Sprintf("%s: %v", sys, err))
			fmt.Fprintf(stdout, "%-10s FAILED: %v\n", sys, err)
			continue
		}
		fmt.Fprintf(stdout, "%-10s sub-page leak: %-5v  post-unmap write landed: %-5v  arbitrary DMA: %-5v  faults blocked: %d\n",
			sys, out.SubPageLeak, out.WindowWrite, out.ArbitraryRead, out.Faults)
		if out.SubPageLeak {
			fmt.Fprintf(stdout, "           leaked co-located secret: %q\n", out.LeakedBytes)
		}
	}
	fmt.Fprintln(stdout)

	rows, table, err := attack.Table1(opts.window)
	if err != nil {
		return err
	}
	fmt.Fprintln(stdout, table)
	if opts.jsonOut != "" {
		a := bench.Artifact("attackdemo", opts.window, nil, []*bench.Table{table})
		a.CreatedAt = time.Now().UTC().Format(time.RFC3339)
		a.Attacks = attack.Verdicts(rows)
		if err := a.WriteFile(opts.jsonOut); err != nil {
			return err
		}
	}

	if opts.sweep {
		delays := []float64{1, 10, 100, 1000, 5000, 9000, 11000, 20000}
		for _, sys := range []string{bench.SysLinuxDefer, bench.SysIdentityDefer, bench.SysSelfInval, bench.SysLinuxStrict, bench.SysCopy} {
			samples, err := attack.WindowSweep(sys, delays)
			if err != nil {
				return err
			}
			fmt.Fprintf(stdout, "replay-after-unmap sweep, %s:\n", sys)
			for _, s := range samples {
				verdict := "blocked"
				if s.Landed {
					verdict = "WRITE LANDED"
				}
				fmt.Fprintf(stdout, "  +%8.0f us: %s\n", s.DelayUs, verdict)
			}
			fmt.Fprintln(stdout)
		}
	}

	if len(failures) > 0 {
		return fmt.Errorf("%d of %d systems failed:\n  %s",
			len(failures), len(opts.systems), strings.Join(failures, "\n  "))
	}
	return nil
}

func main() {
	var opts options
	flag.BoolVar(&opts.sweep, "window-sweep", false, "sweep post-unmap replay delays")
	flag.Float64Var(&opts.window, "window", 10, "simulated ms per perf measurement")
	flag.BoolVar(&opts.showTrace, "trace", false, "dump the IOMMU event trace of one attack run")
	flag.StringVar(&opts.jsonOut, "json", "", "also write a machine-readable artifact (internal/report schema) to this path")
	systems := flag.String("systems", "", "comma-separated systems to attack (default: all)")
	flag.Parse()

	opts.systems = bench.ExtendedSystems
	if *systems != "" {
		opts.systems = strings.Split(*systems, ",")
	}
	if err := run(opts, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "attackdemo: %v\n", err)
		os.Exit(1)
	}
}

// dumpAttackTrace replays the deferred-window attack against Linux
// deferred protection with IOMMU tracing on, showing the map, the unmap,
// the attacker's writes slipping through, and the batched invalidation.
func dumpAttackTrace(stdout io.Writer) error {
	fmt.Fprintln(stdout, "IOMMU event trace of the deferred-window attack (system: defer):")
	tr := trace.New(64)
	out, err := attack.RunTraced(bench.SysLinuxDefer, tr)
	if err != nil {
		return err
	}
	tr.Dump(stdout)
	fmt.Fprintf(stdout, "(attack outcome: post-unmap write landed = %v)\n\n", out.WindowWrite)
	return nil
}
