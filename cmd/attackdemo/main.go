// Command attackdemo runs the DMA attack suite against every protection
// strategy and prints the resulting security matrix (the paper's Table 1).
// With -window-sweep it additionally sweeps the replay delay after
// dma_unmap to chart the deferred-protection vulnerability window (§3:
// buffers can remain device-writable for up to 10 ms).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/attack"
	"repro/internal/bench"
	"repro/internal/trace"
)

func main() {
	sweep := flag.Bool("window-sweep", false, "sweep post-unmap replay delays")
	window := flag.Float64("window", 10, "simulated ms per perf measurement")
	showTrace := flag.Bool("trace", false, "dump the IOMMU event trace of one attack run")
	jsonOut := flag.String("json", "", "also write a machine-readable artifact (internal/report schema) to this path")
	flag.Parse()

	if *showTrace {
		dumpAttackTrace()
	}

	fmt.Println("Attacking every protection strategy with a compromised device...")
	fmt.Println("(includes the related-work designs: swiotlb bounce buffers and the")
	fmt.Println(" Basu et al. self-invalidating IOMMU with a 20us entry TTL)")
	fmt.Println()
	for _, sys := range bench.ExtendedSystems {
		out, err := attack.Run(sys)
		if err != nil {
			log.Fatalf("%s: %v", sys, err)
		}
		fmt.Printf("%-10s sub-page leak: %-5v  post-unmap write landed: %-5v  arbitrary DMA: %-5v  faults blocked: %d\n",
			sys, out.SubPageLeak, out.WindowWrite, out.ArbitraryRead, out.Faults)
		if out.SubPageLeak {
			fmt.Printf("           leaked co-located secret: %q\n", out.LeakedBytes)
		}
	}
	fmt.Println()

	rows, table, err := attack.Table1(*window)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(table)
	if *jsonOut != "" {
		a := bench.Artifact("attackdemo", *window, nil, []*bench.Table{table})
		a.CreatedAt = time.Now().UTC().Format(time.RFC3339)
		a.Attacks = attack.Verdicts(rows)
		if err := a.WriteFile(*jsonOut); err != nil {
			log.Fatal(err)
		}
	}

	if *sweep {
		delays := []float64{1, 10, 100, 1000, 5000, 9000, 11000, 20000}
		for _, sys := range []string{bench.SysLinuxDefer, bench.SysIdentityDefer, bench.SysSelfInval, bench.SysLinuxStrict, bench.SysCopy} {
			samples, err := attack.WindowSweep(sys, delays)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("replay-after-unmap sweep, %s:\n", sys)
			for _, s := range samples {
				verdict := "blocked"
				if s.Landed {
					verdict = "WRITE LANDED"
				}
				fmt.Printf("  +%8.0f us: %s\n", s.DelayUs, verdict)
			}
			fmt.Println()
		}
	}
}

// dumpAttackTrace replays the deferred-window attack against Linux
// deferred protection with IOMMU tracing on, showing the map, the unmap,
// the attacker's writes slipping through, and the batched invalidation.
func dumpAttackTrace() {
	fmt.Println("IOMMU event trace of the deferred-window attack (system: defer):")
	tr := trace.New(64)
	out, err := attack.RunTraced(bench.SysLinuxDefer, tr)
	if err != nil {
		log.Fatal(err)
	}
	tr.Dump(os.Stdout)
	fmt.Printf("(attack outcome: post-unmap write landed = %v)\n\n", out.WindowWrite)
}
