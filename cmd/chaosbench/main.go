// Command chaosbench runs the fault-injection scenarios of
// internal/chaos — fault storm, IOVA scan, invalidation-queue stall,
// shadow-pool squeeze — each as a baseline / resilience / unprotected
// triple, and reports goodput-under-attack and recovery metrics.
//
// Usage:
//
//	chaosbench [-seed 1] [-window 2] [-scenarios faultstorm,poolsqueeze]
//	chaosbench -json chaos.json        # machine-readable artifact
//
// Every scenario is deterministic for a given seed, so the JSON artifact
// is regression-gated in CI with cmd/benchdiff against
// ci/chaos-baseline.json (`make chaos-smoke`).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/chaos"
	"repro/internal/report"
)

func main() {
	seed := flag.Int64("seed", 1, "deterministic scenario seed")
	window := flag.Float64("window", 2, "simulated milliseconds per variant")
	cores := flag.Int("cores", 2, "victim cores / NIC queues")
	system := flag.String("system", "strict", "victim protection strategy (strict|copy|identity+|...)")
	scenarios := flag.String("scenarios", "all", "comma-separated scenario names, or 'all'")
	jsonOut := flag.String("json", "", "write a machine-readable artifact (internal/report schema) to this path")
	quiet := flag.Bool("q", false, "suppress the text tables")
	flag.Parse()

	cfg := chaos.Config{Seed: *seed, WindowMs: *window, Cores: *cores, System: *system}

	var run []chaos.Scenario
	if *scenarios == "all" {
		run = chaos.Scenarios
	} else {
		for _, name := range strings.Split(*scenarios, ",") {
			s, err := chaos.Find(strings.TrimSpace(name))
			if err != nil {
				log.Fatal(err)
			}
			run = append(run, s)
		}
	}

	art := report.New("chaosbench", *window, cfg.Costs)
	for _, s := range run {
		t, err := s.Run(cfg)
		if err != nil {
			log.Fatalf("chaosbench: %s: %v", s.Name, err)
		}
		if !*quiet {
			fmt.Println(t.String())
		}
		art.Add(t.Experiment())
	}
	if *jsonOut != "" {
		if err := art.WriteFile(*jsonOut); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "chaosbench: wrote %s (%d experiments)\n", *jsonOut, len(art.Experiments))
	}
}
