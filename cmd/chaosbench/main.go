// Command chaosbench runs the fault-injection scenarios of
// internal/chaos — fault storm, IOVA scan, invalidation-queue stall,
// shadow-pool squeeze — each as a baseline / resilience / unprotected
// triple, and reports goodput-under-attack and recovery metrics.
//
// Usage:
//
//	chaosbench [-seed 1] [-window 2] [-scenarios faultstorm,poolsqueeze]
//	chaosbench -json chaos.json        # machine-readable artifact
//	chaosbench -parallel 4             # variants fan out across a farm
//
// Every scenario is deterministic for a given seed — the farm changes
// when variants run, never their numbers (doc/FARM.md) — so the JSON
// artifact is regression-gated in CI with cmd/benchdiff against
// ci/chaos-baseline.json (`make chaos-smoke`).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"sync"

	"repro/internal/bench"
	"repro/internal/chaos"
	"repro/internal/report"
)

func main() {
	seed := flag.Int64("seed", 1, "deterministic scenario seed")
	window := flag.Float64("window", 2, "simulated milliseconds per variant")
	cores := flag.Int("cores", 2, "victim cores / NIC queues")
	system := flag.String("system", "strict", "victim protection strategy (strict|copy|identity+|...)")
	scenarios := flag.String("scenarios", "all", "comma-separated scenario names, or 'all'")
	parallel := flag.Int("parallel", 1, "farm workers for variant parallelism (<=0 = GOMAXPROCS, 1 = serial)")
	jsonOut := flag.String("json", "", "write a machine-readable artifact (internal/report schema) to this path")
	quiet := flag.Bool("q", false, "suppress the text tables")
	flag.Parse()

	cfg := chaos.Config{Seed: *seed, WindowMs: *window, Cores: *cores, System: *system}
	if *parallel != 1 {
		farm := bench.NewFarm(*parallel)
		defer farm.Close()
		cfg.Farm = farm
	}

	var run []chaos.Scenario
	if *scenarios == "all" {
		run = chaos.Scenarios
	} else {
		for _, name := range strings.Split(*scenarios, ",") {
			s, err := chaos.Find(strings.TrimSpace(name))
			if err != nil {
				log.Fatal(err)
			}
			run = append(run, s)
		}
	}

	// Scenarios run on coordinator goroutines sharing the one farm; the
	// tables land in scenario order so output and artifact are identical
	// at every -parallel setting.
	tables := make([]*bench.Table, len(run))
	errs := make([]error, len(run))
	var wg sync.WaitGroup
	for i, s := range run {
		i, s := i, s
		wg.Add(1)
		go func() {
			defer wg.Done()
			t, err := s.Run(cfg)
			if err != nil {
				errs[i] = fmt.Errorf("%s: %v", s.Name, err)
				return
			}
			tables[i] = t
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			log.Fatalf("chaosbench: %v", err)
		}
	}

	art := report.New("chaosbench", *window, cfg.Costs)
	for _, t := range tables {
		if !*quiet {
			fmt.Println(t.String())
		}
		art.Add(t.Experiment())
	}
	if *jsonOut != "" {
		if err := art.WriteFile(*jsonOut); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "chaosbench: wrote %s (%d experiments)\n", *jsonOut, len(art.Experiments))
	}
}
