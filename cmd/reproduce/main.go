// Command reproduce regenerates the paper's ENTIRE evaluation — every
// table and figure, the attack matrix, the memory measurement — plus this
// reproduction's extension studies, as one self-contained report. With no
// flags it takes a few minutes of wall clock (the simulation itself covers
// a fraction of a second of virtual time per data point).
//
//	go run ./cmd/reproduce > report.txt
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/attack"
	"repro/internal/bench"
)

func main() {
	window := flag.Float64("window", 10, "simulated milliseconds per data point")
	skipSensitivity := flag.Bool("skip-sensitivity", false, "skip the (slow) sensitivity analysis")
	flag.Parse()

	opt := bench.Options{WindowMs: *window}
	start := time.Now()
	fmt.Println("Reproduction report: True IOMMU Protection from DMA Attacks (ASPLOS'16)")
	fmt.Printf("window: %.0f simulated ms per data point\n\n", *window)

	section := func(name string, fn func() (*bench.Table, error)) {
		t, err := fn()
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Println(t)
	}

	// Security first: Table 1, decided by real attacks.
	_, t1, err := attack.Table1(*window)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(t1)

	section("fig1", func() (*bench.Table, error) { return bench.Fig1(opt) })
	section("fig3", func() (*bench.Table, error) { return bench.Fig3(opt) })
	section("fig4", func() (*bench.Table, error) { return bench.Fig4(opt) })
	section("fig5a", func() (*bench.Table, error) {
		t, _, err := bench.Breakdown(bench.RX, 1, opt)
		return t, err
	})
	section("fig5b", func() (*bench.Table, error) {
		t, _, err := bench.Breakdown(bench.TX, 1, opt)
		return t, err
	})
	section("fig6", func() (*bench.Table, error) { return bench.Fig6(opt) })
	section("fig7", func() (*bench.Table, error) { return bench.Fig7(opt) })
	section("fig8a", func() (*bench.Table, error) {
		t, _, err := bench.Breakdown(bench.RX, 16, opt)
		return t, err
	})
	section("fig9", func() (*bench.Table, error) {
		t, _, err := bench.Fig9(opt)
		return t, err
	})
	section("fig10", func() (*bench.Table, error) { return bench.Fig10(opt) })
	section("fig11", func() (*bench.Table, error) { return bench.Fig11(opt) })
	section("memory", func() (*bench.Table, error) { return bench.MemoryConsumption(opt) })

	// Extension studies.
	section("api-micro", func() (*bench.Table, error) {
		return bench.APIMicro(bench.Options{Systems: bench.ExtendedSystems})
	})
	section("storage", func() (*bench.Table, error) { return bench.StorageStudy(opt) })
	section("mixed-io", func() (*bench.Table, error) { return bench.MixedStudy(opt) })
	if !*skipSensitivity {
		section("sensitivity", func() (*bench.Table, error) {
			t, violations, err := bench.Sensitivity(bench.Options{WindowMs: *window / 2})
			if err != nil {
				return nil, err
			}
			t.Note = fmt.Sprintf("claim flips: %d", violations)
			return t, nil
		})
	}
	fmt.Printf("report complete in %s (wall clock)\n", time.Since(start).Round(time.Second))
}
