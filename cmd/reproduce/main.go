// Command reproduce regenerates the paper's ENTIRE evaluation — every
// table and figure, the attack matrix, the memory measurement — plus this
// reproduction's extension studies, as one self-contained report. The
// figure families are independent simulations, so they run concurrently
// (bounded by -parallel); the printed report order is unchanged.
//
//	go run ./cmd/reproduce > report.txt
//	go run ./cmd/reproduce -window 1 -json BENCH_smoke.json
//
// With -json the same results are also written as a machine-readable
// artifact (internal/report schema) for the cmd/benchdiff regression gate.
// "-json auto" derives the filename as BENCH_<YYYY-MM-DD>.json.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/attack"
	"repro/internal/bench"
	"repro/internal/prof"
)

func main() {
	window := flag.Float64("window", 10, "simulated milliseconds per data point")
	skipSensitivity := flag.Bool("skip-sensitivity", false, "skip the (slow) sensitivity analysis")
	jsonOut := flag.String("json", "", "also write a machine-readable artifact to this path (\"auto\" = BENCH_<date>.json)")
	parallel := flag.Int("parallel", 0, "max concurrent sections (<=0 = GOMAXPROCS)")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	cycleReport := flag.Bool("cyclereport", false, "append the cycle-attribution tables (simulated-cycle profiler, doc/OBSERVABILITY.md)")
	traceFile := flag.String("tracefile", "", "write a Chrome trace-event JSON (Perfetto-loadable) of the 16-core RX workload to this path")
	flag.Parse()

	stop, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		log.Fatal(err)
	}
	defer stop()

	opt := bench.Options{WindowMs: *window}
	start := time.Now()
	fmt.Println("Reproduction report: True IOMMU Protection from DMA Attacks (ASPLOS'16)")
	fmt.Printf("window: %.0f simulated ms per data point\n\n", *window)

	// Table 1 (attacks + its own benchmarks) runs concurrently with the
	// figure sections; security still leads the printed report.
	type table1Out struct {
		rows []attack.Table1Row
		tbl  *bench.Table
		err  error
	}
	t1ch := make(chan table1Out, 1)
	go func() {
		rows, tbl, err := attack.Table1(*window)
		t1ch <- table1Out{rows, tbl, err}
	}()

	sections := bench.Suite(!*skipSensitivity)
	tables, err := bench.RunSuite(sections, opt, *parallel)
	if err != nil {
		log.Fatal(err)
	}
	t1 := <-t1ch
	if t1.err != nil {
		log.Fatal(t1.err)
	}

	fmt.Println(t1.tbl)
	for _, t := range tables {
		fmt.Println(t)
	}
	if *cycleReport {
		cts, err := bench.CycleReport(bench.Options{WindowMs: *window})
		if err != nil {
			log.Fatalf("cycle report: %v", err)
		}
		for _, t := range cts {
			fmt.Println(t)
			tables = append(tables, t)
		}
	}
	if *traceFile != "" {
		cfg := bench.DefaultConfig(bench.SysLinuxStrict, bench.RX, 16, 1500)
		cfg.WindowMs = *window
		if _, err := bench.WriteTrace(cfg, *traceFile); err != nil {
			log.Fatalf("trace: %v", err)
		}
		fmt.Printf("Chrome trace written to %s (load at https://ui.perfetto.dev)\n\n", *traceFile)
	}
	fmt.Printf("report complete in %s (wall clock)\n", time.Since(start).Round(time.Second))

	if *jsonOut != "" {
		path := *jsonOut
		if path == "auto" {
			path = fmt.Sprintf("BENCH_%s.json", time.Now().Format("2006-01-02"))
		}
		a := bench.Artifact("reproduce", *window, nil, append([]*bench.Table{t1.tbl}, tables...))
		a.CreatedAt = time.Now().UTC().Format(time.RFC3339)
		a.Attacks = attack.Verdicts(t1.rows)
		if err := a.WriteFile(path); err != nil {
			log.Fatalf("writing artifact: %v", err)
		}
		fmt.Printf("artifact written to %s\n", path)
	}
}
