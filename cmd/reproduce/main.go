// Command reproduce regenerates the paper's ENTIRE evaluation — every
// table and figure, the attack matrix, the memory measurement — plus this
// reproduction's extension studies, as one self-contained report. Every
// section's individual data points fan out across one shared bench.Farm
// (bounded by -parallel); the printed report order and every number are
// unchanged at any worker count (see doc/FARM.md).
//
//	go run ./cmd/reproduce > report.txt
//	go run ./cmd/reproduce -window 1 -json BENCH_smoke.json
//	go run ./cmd/reproduce -experiment fig3,storage -parallel 4
//
// With -json the same results are also written as a machine-readable
// artifact (internal/report schema) for the cmd/benchdiff regression gate.
// "-json auto" derives the filename as BENCH_<YYYY-MM-DD>.json. When a
// section fails, the completed sections are still written to the -json
// path as a partial diagnostic artifact.
//
// -timeout bounds the whole run: on expiry the farm cancels queued data
// points, the completed sections land in the partial artifact, and the
// process exits 1 (a hard watchdog force-exits at 2x if cancellation
// wedges). -daemon <socket> skips in-process computation entirely and
// requests the artifact from a running simd (doc/DAEMON.md), which serves
// memoized results instantly when the tree hasn't changed.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/attack"
	"repro/internal/bench"
	"repro/internal/daemon"
	"repro/internal/prof"
	"repro/internal/report"
)

func artifactPath(jsonOut string) string {
	if jsonOut == "auto" {
		return fmt.Sprintf("BENCH_%s.json", time.Now().Format("2006-01-02"))
	}
	return jsonOut
}

func main() {
	window := flag.Float64("window", 10, "simulated milliseconds per data point")
	skipSensitivity := flag.Bool("skip-sensitivity", false, "skip the (slow) sensitivity analysis")
	jsonOut := flag.String("json", "", "also write a machine-readable artifact to this path (\"auto\" = BENCH_<date>.json)")
	parallel := flag.Int("parallel", 0, "farm workers for data-point parallelism (<=0 = GOMAXPROCS)")
	experiment := flag.String("experiment", "all", "comma-separated experiment names (fig1,fig3,...,table1), or 'all'")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	cycleReport := flag.Bool("cyclereport", false, "append the cycle-attribution tables (simulated-cycle profiler, doc/OBSERVABILITY.md)")
	traceFile := flag.String("tracefile", "", "write a Chrome trace-event JSON (Perfetto-loadable) of the 16-core RX workload to this path")
	timeout := flag.Duration("timeout", 0, "abort after this wall-clock duration; completed sections become a partial diagnostic artifact (0 = unbounded)")
	daemonSock := flag.String("daemon", "", "request the artifact from a running simd daemon at this unix socket instead of computing in-process")
	flag.Parse()

	if *daemonSock != "" {
		runViaDaemon(*daemonSock, *window, *skipSensitivity, *experiment, *timeout, *jsonOut)
		return
	}

	stop, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		log.Fatal(err)
	}
	defer stop()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
		// Hard watchdog: cooperative cancellation drains the farm queue but
		// lets executing points finish; if one wedges, force the exit at 2x.
		time.AfterFunc(2*(*timeout), func() {
			fmt.Fprintf(os.Stderr, "reproduce: watchdog: run still alive %s after the %s timeout, force-exiting\n",
				*timeout, *timeout)
			os.Exit(1)
		})
	}

	farm := bench.NewFarm(*parallel)
	defer farm.Close()
	opt := bench.Options{WindowMs: *window, Farm: farm.WithContext(ctx)}
	start := time.Now()

	sections := bench.Suite(!*skipSensitivity)
	runTable1 := true
	if *experiment != "all" {
		want := map[string]bool{}
		for _, n := range strings.Split(*experiment, ",") {
			if n = strings.TrimSpace(n); n != "" {
				want[n] = true
			}
		}
		runTable1 = want["table1"]
		delete(want, "table1")
		var filtered []bench.Section
		for _, s := range sections {
			if want[s.Name] {
				filtered = append(filtered, s)
				delete(want, s.Name)
			}
		}
		if len(want) > 0 {
			var unknown []string
			for n := range want {
				unknown = append(unknown, n)
			}
			sort.Strings(unknown)
			var known []string
			for _, s := range bench.Suite(true) {
				known = append(known, s.Name)
			}
			log.Fatalf("reproduce: unknown experiment(s) %s (have: table1,%s)",
				strings.Join(unknown, ","), strings.Join(known, ","))
		}
		sections = filtered
	}

	fmt.Println("Reproduction report: True IOMMU Protection from DMA Attacks (ASPLOS'16)")
	fmt.Printf("window: %.0f simulated ms per data point\n\n", *window)

	// Table 1 (attacks + its own benchmarks) runs concurrently with the
	// figure sections; security still leads the printed report.
	type table1Out struct {
		rows []attack.Table1Row
		tbl  *bench.Table
		err  error
	}
	t1ch := make(chan table1Out, 1)
	if runTable1 {
		go func() {
			rows, tbl, err := attack.Table1(*window)
			t1ch <- table1Out{rows, tbl, err}
		}()
	}

	tables, err := bench.RunSuite(sections, opt, *parallel)
	if err != nil {
		// The completed sections are still worth a record when a long run
		// dies near the end: write them as a partial diagnostic artifact.
		if ctx.Err() != nil {
			// err is an errors.Join over every canceled point — hundreds of
			// identical lines; the timeout itself is the whole story.
			log.Printf("reproduce: timed out after %s, queued data points canceled", *timeout)
		} else {
			log.Printf("reproduce: %v", err)
		}
		if *jsonOut != "" {
			path := artifactPath(*jsonOut)
			a := bench.Artifact("reproduce", *window, nil, tables)
			a.CreatedAt = time.Now().UTC().Format(time.RFC3339)
			if werr := a.WriteFile(path); werr != nil {
				log.Printf("reproduce: writing partial artifact: %v", werr)
			} else {
				fmt.Fprintf(os.Stderr, "reproduce: partial diagnostic artifact written to %s\n", path)
			}
		}
		os.Exit(1)
	}
	var t1 table1Out
	if runTable1 {
		t1 = <-t1ch
		if t1.err != nil {
			log.Fatal(t1.err)
		}
		fmt.Println(t1.tbl)
	}
	for _, t := range tables {
		fmt.Println(t)
	}
	if *cycleReport {
		cts, err := bench.CycleReport(bench.Options{WindowMs: *window})
		if err != nil {
			log.Fatalf("cycle report: %v", err)
		}
		for _, t := range cts {
			fmt.Println(t)
			tables = append(tables, t)
		}
	}
	if *traceFile != "" {
		cfg := bench.DefaultConfig(bench.SysLinuxStrict, bench.RX, 16, 1500)
		cfg.WindowMs = *window
		if _, err := bench.WriteTrace(cfg, *traceFile); err != nil {
			log.Fatalf("trace: %v", err)
		}
		fmt.Printf("Chrome trace written to %s (load at https://ui.perfetto.dev)\n\n", *traceFile)
	}
	// Farm scheduling stats go to stderr for humans, and into the artifact
	// as diff-exempt farm.* metrics (report.Diff ignores them, like
	// wall_*/host_*) so a stored artifact records how it was produced.
	fs := farm.Stats()
	var util float64
	for _, u := range fs.UtilPct {
		util += u
	}
	if len(fs.UtilPct) > 0 {
		util /= float64(len(fs.UtilPct))
	}
	fmt.Fprintf(os.Stderr, "farm: %d workers, %d points, %d steals, queue hwm %d, mean util %.0f%%, wall %s\n",
		fs.Workers, fs.Executed, fs.Steals, fs.QueueHWM, util,
		time.Since(start).Round(time.Millisecond))
	fmt.Printf("report complete in %s (wall clock)\n", time.Since(start).Round(time.Second))

	if *jsonOut != "" {
		path := artifactPath(*jsonOut)
		all := tables
		if runTable1 {
			all = append([]*bench.Table{t1.tbl}, tables...)
		}
		all = append(all, bench.FarmTable(fs))
		a := bench.Artifact("reproduce", *window, nil, all)
		a.CreatedAt = time.Now().UTC().Format(time.RFC3339)
		if runTable1 {
			a.Attacks = attack.Verdicts(t1.rows)
		}
		if err := a.WriteFile(path); err != nil {
			log.Fatalf("writing artifact: %v", err)
		}
		fmt.Printf("artifact written to %s\n", path)
	}
}

// runViaDaemon delegates the whole run to a simd daemon. The daemon
// computes with its warm farm (or serves the memoized artifact when the
// same binary already ran this spec) and returns the identical
// internal/report artifact the in-process path would have written.
func runViaDaemon(socket string, window float64, skipSensitivity bool, experiment string, timeout time.Duration, jsonOut string) {
	spec := daemon.RunSpec{
		Tool:            "reproduce",
		WindowMs:        window,
		SkipSensitivity: skipSensitivity,
		Experiments:     experiment,
	}
	c := &daemon.Client{Socket: socket}
	start := time.Now()
	// noDegrade: the caller asked for the real report, never a preview.
	resp, err := c.Run(spec, timeout, false, true)
	if err != nil {
		log.Fatalf("reproduce: daemon: %v", err)
	}
	if !resp.OK {
		log.Fatalf("reproduce: daemon: %s: %s", resp.ErrKind, resp.Err)
	}
	a, err := report.Decode(bytes.NewReader(resp.Artifact))
	if err != nil {
		log.Fatalf("reproduce: daemon artifact: %v", err)
	}
	state := "computed"
	if resp.Cached {
		state = "memoized"
	}
	fmt.Fprintf(os.Stderr, "reproduce: %s by daemon in %s: %d experiments, %d bytes, key %.12s\n",
		state, time.Since(start).Round(time.Millisecond), len(a.Experiments), len(resp.Artifact), resp.Key)
	if jsonOut != "" {
		path := artifactPath(jsonOut)
		if err := os.WriteFile(path, resp.Artifact, 0o644); err != nil {
			log.Fatalf("reproduce: writing artifact: %v", err)
		}
		fmt.Printf("artifact written to %s\n", path)
		return
	}
	os.Stdout.Write(resp.Artifact)
}
