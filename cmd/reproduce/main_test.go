package main

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/daemon"
	"repro/internal/report"
)

// runMain invokes main with a fresh flag set, as the shell would.
func runMain(t *testing.T, args ...string) {
	t.Helper()
	flag.CommandLine = flag.NewFlagSet("reproduce", flag.ExitOnError)
	os.Args = append([]string{"reproduce"}, args...)
	main()
}

func TestMainWritesArtifact(t *testing.T) {
	out := filepath.Join(t.TempDir(), "out.json")
	runMain(t, "-window", "0.5", "-skip-sensitivity",
		"-experiment", "table1,fig3", "-json", out)
	a, err := report.Load(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Experiments) != 3 || a.Experiments[0].Name != "table1" ||
		a.Experiments[2].Name != "farm" {
		names := make([]string, len(a.Experiments))
		for i, e := range a.Experiments {
			names[i] = e.Name
		}
		t.Fatalf("experiments = %v, want [table1 fig3 farm]", names)
	}
	if len(a.Attacks) == 0 {
		t.Error("table1 run recorded no attack verdicts")
	}
	if a.CreatedAt == "" {
		t.Error("artifact missing created_at")
	}
}

func TestMainViaDaemon(t *testing.T) {
	dir := t.TempDir()
	sock := filepath.Join(dir, "d.sock")
	d, err := daemon.New(daemon.Config{
		Socket:      sock,
		StoreDir:    filepath.Join(dir, "store"),
		Parallel:    2,
		Fingerprint: "test",
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	go d.Serve()
	t.Cleanup(d.Shutdown)
	c := &daemon.Client{Socket: sock}
	if err := c.WaitReady(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	out := filepath.Join(dir, "cold.json")
	runMain(t, "-daemon", sock, "-window", "0.5", "-skip-sensitivity",
		"-experiment", "fig3", "-json", out)
	a, err := report.Load(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Experiments) != 2 || a.Experiments[0].Name != "fig3" {
		t.Fatalf("daemon artifact has %d experiments", len(a.Experiments))
	}

	// Second request for the same spec must be served memoized and
	// byte-identical.
	warm := filepath.Join(dir, "warm.json")
	runMain(t, "-daemon", sock, "-window", "0.5", "-skip-sensitivity",
		"-experiment", "fig3", "-json", warm)
	b1, _ := os.ReadFile(out)
	b2, err := os.ReadFile(warm)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Error("memoized daemon artifact differs from the computed one")
	}
}

func TestArtifactPath(t *testing.T) {
	if p := artifactPath("x.json"); p != "x.json" {
		t.Errorf("artifactPath passthrough = %q", p)
	}
	if p := artifactPath("auto"); filepath.Ext(p) != ".json" || len(p) != len("BENCH_2006-01-02.json") {
		t.Errorf("artifactPath(auto) = %q", p)
	}
}
