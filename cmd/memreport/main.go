// Command memreport reproduces the paper's §6 memory-consumption
// measurement: the shadow DMA buffer pool footprint under the 16-core
// workloads, compared against the worst-case bound (~2.1 GB), and the
// per-size-class composition.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/cycles"
	"repro/internal/netstack"
	"repro/internal/nic"
	"repro/internal/sim"
)

func main() {
	window := flag.Float64("window", 20, "simulated milliseconds")
	jsonOut := flag.String("json", "", "also write a machine-readable artifact (internal/report schema) to this path")
	cycleReport := flag.Bool("cyclereport", false, "append the copy strategy's cycle-attribution tables (simulated-cycle profiler, doc/OBSERVABILITY.md)")
	traceFile := flag.String("tracefile", "", "write a Chrome trace-event JSON (Perfetto-loadable) of the copy-strategy 16-core RX workload to this path")
	flag.Parse()

	t, err := bench.MemoryConsumption(bench.Options{WindowMs: *window})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(t)

	// Per-class detail for the RX workload.
	cfg := bench.DefaultConfig(bench.SysCopy, bench.RX, 16, 65536)
	cfg.WindowMs = *window
	mach, err := bench.NewMachine(cfg)
	if err != nil {
		log.Fatal(err)
	}
	for c := 0; c < cfg.Cores; c++ {
		c := c
		mach.Eng.Spawn(fmt.Sprintf("rx%d", c), c, 0, func(p *sim.Proc) {
			if err := mach.Driver.SetupQueue(p, c); err != nil {
				return
			}
			var st netstack.RxStats
			_ = mach.Driver.RunRxStream(p, c, cfg.MsgSize, &st)
		})
		src := nic.NewSource(mach.Eng, mach.NIC.Queue(c), cfg.Costs, cfg.MsgSize, cfg.MTU, true)
		src.Start(0)
	}
	mach.Eng.Run(cycles.FromMillis(*window))
	sm := mach.Mapper.(*core.ShadowMapper)
	ps := sm.Pool().Stats()
	mach.Eng.Stop()

	detail := &bench.Table{
		Name:    "memdetail",
		Title:   "shadow pool composition (16-core RX)",
		Columns: []string{"class", "MB"},
	}
	fmt.Println("shadow pool composition (16-core RX):")
	for i, b := range ps.BytesByClass {
		fmt.Printf("  class %d: %8.2f MB\n", i, float64(b)/(1<<20))
		detail.AddRow(fmt.Sprintf("%d", i), fmt.Sprintf("%.2f", float64(b)/(1<<20)))
		detail.Point(bench.SysCopy, fmt.Sprintf("class %d", i),
			map[string]float64{"mb": float64(b) / (1 << 20)})
	}
	fmt.Printf("  acquires %d  releases %d  grows %d  fallback buffers %d\n",
		ps.Acquires, ps.Releases, ps.Grows, ps.FallbackBuffers)
	fmt.Printf("  total: %.2f MB (worst-case bound: ~2.1 GB; paper observed < 256 MB)\n",
		float64(ps.TotalBytes())/(1<<20))
	tlb := mach.IOMMU.TLB()
	fmt.Printf("IOTLB: %.1f%% hit rate (%d hits / %d misses / %d evictions) — permanent\n"+
		"mappings keep locality; no invalidations were ever submitted (%d)\n",
		100*tlb.HitRate(), tlb.Hits, tlb.Misses, tlb.Evictions, mach.IOMMU.Queue.Submitted)
	detail.Point(bench.SysCopy, "total", map[string]float64{
		"mb":               float64(ps.TotalBytes()) / (1 << 20),
		"grows":            float64(ps.Grows),
		"fallback_buffers": float64(ps.FallbackBuffers),
		"iotlb_hit_rate":   tlb.HitRate(),
	})
	tables := []*bench.Table{t, detail}
	if *cycleReport {
		cts, err := bench.CycleReport(bench.Options{
			WindowMs: *window, Systems: []string{bench.SysCopy},
		})
		if err != nil {
			log.Fatalf("cycle report: %v", err)
		}
		for _, ct := range cts {
			fmt.Println(ct)
			tables = append(tables, ct)
		}
	}
	if *traceFile != "" {
		tcfg := bench.DefaultConfig(bench.SysCopy, bench.RX, 16, 65536)
		if _, err := bench.WriteTrace(tcfg, *traceFile); err != nil {
			log.Fatalf("trace: %v", err)
		}
		fmt.Printf("Chrome trace written to %s (load at https://ui.perfetto.dev)\n", *traceFile)
	}
	if *jsonOut != "" {
		if err := bench.WriteArtifact(*jsonOut, "memreport", *window, nil, tables...); err != nil {
			log.Fatal(err)
		}
	}
}
