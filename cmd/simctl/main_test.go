package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/daemon"
	"repro/internal/report"
)

// startDaemon brings up an in-process simd for the CLI to talk to.
func startDaemon(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	sock := filepath.Join(dir, "d.sock")
	d, err := daemon.New(daemon.Config{
		Socket:      sock,
		StoreDir:    filepath.Join(dir, "store"),
		Parallel:    2,
		Fingerprint: "test",
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	go d.Serve()
	t.Cleanup(d.Shutdown)
	c := &daemon.Client{Socket: sock}
	if err := c.WaitReady(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	return sock
}

// runCtl invokes main exactly as the shell would. Every subcommand uses
// its own FlagSet, so repeated calls in one process are safe.
func runCtl(args ...string) {
	os.Args = append([]string{"simctl"}, args...)
	main()
}

func TestCLIAgainstDaemon(t *testing.T) {
	sock := startDaemon(t)
	runCtl("ping", "-socket", sock)
	runCtl("wait", "-socket", sock, "-timeout", "5s")
	runCtl("health", "-socket", sock)

	out := filepath.Join(t.TempDir(), "chaos.json")
	runCtl("run", "-socket", sock, "-tool", "chaosbench", "-seed", "1",
		"-window", "1", "-scenarios", "faultstorm", "-json", out)
	a, err := report.Load(out)
	if err != nil {
		t.Fatal(err)
	}
	if a.Tool != "chaosbench" || len(a.Experiments) == 0 {
		t.Fatalf("run artifact: tool %q, %d experiments", a.Tool, len(a.Experiments))
	}

	// Same spec again: the cached branch of the status line.
	runCtl("run", "-socket", sock, "-tool", "chaosbench", "-seed", "1",
		"-window", "1", "-scenarios", "faultstorm", "-json", out)
}
