// Command simctl is the control client for the simd daemon
// (internal/daemon, doc/DAEMON.md).
//
//	simctl ping   [-socket /tmp/simd.sock]
//	simctl wait   [-timeout 30s]            # block until the daemon answers
//	simctl health                           # watchdog surface as JSON
//	simctl run -tool reproduce -window 1 -skip-sensitivity -json out.json
//	simctl run -tool chaosbench -seed 1
//	simctl run -tool attackbench -seed 1 -no-cache
//
// run exits 0 on success (the response notes whether the artifact was
// served from cache or degraded), 1 on a typed daemon error (overload,
// deadline, ...), and 2 on usage errors.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"flag"

	"repro/internal/daemon"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "ping":
		fs := flag.NewFlagSet("ping", flag.ExitOnError)
		socket := sockFlag(fs)
		fs.Parse(args)
		c := &daemon.Client{Socket: *socket}
		if err := c.Ping(); err != nil {
			fatal(err)
		}
		fmt.Println("ok")
	case "wait":
		fs := flag.NewFlagSet("wait", flag.ExitOnError)
		socket := sockFlag(fs)
		timeout := fs.Duration("timeout", 30*time.Second, "give up after this long")
		fs.Parse(args)
		c := &daemon.Client{Socket: *socket}
		if err := c.WaitReady(*timeout); err != nil {
			fatal(err)
		}
		fmt.Println("ready")
	case "health":
		fs := flag.NewFlagSet("health", flag.ExitOnError)
		socket := sockFlag(fs)
		fs.Parse(args)
		c := &daemon.Client{Socket: *socket}
		h, err := c.Health()
		if err != nil {
			fatal(err)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(h); err != nil {
			fatal(err)
		}
	case "run":
		runCmd(args)
	default:
		usage()
	}
}

func runCmd(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	socket := sockFlag(fs)
	var spec daemon.RunSpec
	fs.StringVar(&spec.Tool, "tool", "reproduce", "tool to run: reproduce|chaosbench|attackbench|tenantbench")
	fs.Int64Var(&spec.Seed, "seed", 0, "deterministic seed (chaosbench/attackbench/tenantbench; 0 = tool default)")
	fs.Float64Var(&spec.WindowMs, "window", 0, "simulated ms per data point (reproduce/chaosbench; 0 = tool default)")
	fs.BoolVar(&spec.SkipSensitivity, "skip-sensitivity", false, "reproduce: skip the sensitivity analysis")
	fs.StringVar(&spec.Experiments, "experiment", "all", "reproduce: comma-separated experiment names, or 'all'")
	fs.IntVar(&spec.Cores, "cores", 0, "chaosbench: victim cores (0 = default)")
	fs.StringVar(&spec.System, "system", "", "chaosbench: victim protection strategy (default strict)")
	fs.StringVar(&spec.Scenarios, "scenarios", "all", "chaosbench: comma-separated scenario names, or 'all'")
	fs.StringVar(&spec.Payloads, "payloads", "all", "attackbench: comma-separated payload names, or 'all'")
	fs.StringVar(&spec.Systems, "systems", "all", "attackbench: comma-separated backends, or 'all'")
	fs.StringVar(&spec.Schemes, "schemes", "all", "tenantbench: comma-separated schemes, or 'all'")
	fs.StringVar(&spec.Attacks, "attacks", "all", "tenantbench: comma-separated hostile programs, or 'all'")
	fs.StringVar(&spec.Tenants, "tenants", "", "tenantbench: comma-separated tenant counts (default library sweep)")
	fs.StringVar(&spec.Frames, "frames", "", "tenantbench: comma-separated frame sizes (default library sweep)")
	deadline := fs.Duration("deadline", 0, "per-request deadline (0 = daemon default)")
	noCache := fs.Bool("no-cache", false, "force recomputation (result is still stored)")
	noDegrade := fs.Bool("no-degrade", false, "reject under overload instead of serving a reduced-window preview")
	jsonOut := fs.String("json", "", "write the artifact to this path (default: stdout)")
	quiet := fs.Bool("q", false, "suppress the status line")
	fs.Parse(args)

	c := &daemon.Client{Socket: *socket}
	resp, err := c.Run(spec, *deadline, *noCache, *noDegrade)
	if err != nil {
		fatal(err)
	}
	if !resp.OK {
		fmt.Fprintf(os.Stderr, "simctl: %s: %s\n", resp.ErrKind, resp.Err)
		os.Exit(1)
	}
	if !*quiet {
		state := "computed"
		if resp.Cached {
			state = "cached"
		}
		if resp.Degraded {
			state += " (degraded preview)"
		}
		fmt.Fprintf(os.Stderr, "simctl: %s %s, %d bytes, key %.12s\n",
			spec.Tool, state, len(resp.Artifact), resp.Key)
	}
	if *jsonOut != "" {
		if err := os.WriteFile(*jsonOut, resp.Artifact, 0o644); err != nil {
			fatal(err)
		}
		return
	}
	os.Stdout.Write(resp.Artifact)
}

func sockFlag(fs *flag.FlagSet) *string {
	return fs.String("socket", "/tmp/simd.sock", "daemon unix socket")
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "simctl: %v\n", err)
	os.Exit(1)
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: simctl <ping|wait|health|run> [flags]  (simctl <cmd> -h for flags)")
	os.Exit(2)
}
