// Command simd is the always-on simulation daemon (internal/daemon,
// doc/DAEMON.md): it keeps a warm bench.Farm across requests, serves
// cmd/simctl / cmd/benchdiff -watch / cmd/reproduce -daemon clients over
// a unix socket, and memoizes (tool, seed, config, code-fingerprint) →
// artifact in a crash-safe content-addressed store. SIGTERM/SIGINT drain
// gracefully: in-flight requests complete and flush before exit.
//
//	simd -socket /tmp/simd.sock -store /tmp/simd-store
//	simd -parallel 4 -max-inflight 2
//	simd -inject panic-every=3,corrupt-store-every=5   # chaos mode
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/daemon"
)

// parseInject decodes the -inject knob list, e.g.
// "panic-every=3,corrupt-store-every=5,fail-store-read-every=7".
func parseInject(s string) (daemon.Inject, error) {
	var inj daemon.Inject
	if s == "" {
		return inj, nil
	}
	for _, part := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return inj, fmt.Errorf("bad -inject entry %q (want key=value)", part)
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			return inj, fmt.Errorf("bad -inject value %q: %v", part, err)
		}
		switch k {
		case "panic-every":
			inj.PanicEvery = n
		case "corrupt-store-every":
			inj.StoreCorruptEvery = n
		case "fail-store-read-every":
			inj.StoreFailReadEvery = n
		default:
			return inj, fmt.Errorf("unknown -inject knob %q (have panic-every, corrupt-store-every, fail-store-read-every)", k)
		}
	}
	return inj, nil
}

func main() {
	socket := flag.String("socket", "/tmp/simd.sock", "unix socket to listen on")
	storeDir := flag.String("store", "/tmp/simd-store", "result-store directory")
	parallel := flag.Int("parallel", 0, "farm workers (<=0 = GOMAXPROCS)")
	maxInflight := flag.Int("max-inflight", 0, "concurrently executing run requests (0 = default 2)")
	queueBound := flag.Int("queue-bound", 0, "max requests waiting for admission before load-shedding (0 = default 8)")
	previewWindow := flag.Float64("preview-window", 0, "degraded-preview window in simulated ms (0 = default 0.5)")
	retries := flag.Int("retries", 0, "bounded retries for transient failures (0 = default 2)")
	deadline := flag.Duration("deadline", 0, "default per-request deadline (0 = 10m)")
	inject := flag.String("inject", "", "fault-injection knobs: panic-every=N,corrupt-store-every=N,fail-store-read-every=N")
	quiet := flag.Bool("q", false, "suppress the per-event log")
	flag.Parse()

	inj, err := parseInject(*inject)
	if err != nil {
		log.Fatalf("simd: %v", err)
	}
	cfg := daemon.Config{
		Socket:          *socket,
		StoreDir:        *storeDir,
		Parallel:        *parallel,
		MaxInflight:     *maxInflight,
		QueueBound:      *queueBound,
		PreviewWindowMs: *previewWindow,
		Retries:         *retries,
		DefaultDeadline: *deadline,
		Inject:          inj,
	}
	if !*quiet {
		cfg.Logf = log.Printf
	}
	d, err := daemon.New(cfg)
	if err != nil {
		log.Fatalf("simd: %v", err)
	}
	fmt.Fprintf(os.Stderr, "simd: listening on %s (store %s)\n", *socket, *storeDir)

	drained := make(chan struct{})
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	go func() {
		sig := <-sigc
		fmt.Fprintf(os.Stderr, "simd: %v: draining in-flight requests\n", sig)
		start := time.Now()
		d.Shutdown()
		fmt.Fprintf(os.Stderr, "simd: drained in %s, exiting\n", time.Since(start).Round(time.Millisecond))
		close(drained)
	}()

	if err := d.Serve(); err != nil {
		log.Fatalf("simd: %v", err)
	}
	// Serve returns nil only on the graceful path; wait for the drain to
	// finish flushing responses before the process exits.
	<-drained
}
