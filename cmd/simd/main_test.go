package main

import "testing"

func TestParseInject(t *testing.T) {
	inj, err := parseInject("panic-every=3, corrupt-store-every=5,fail-store-read-every=7")
	if err != nil {
		t.Fatal(err)
	}
	if inj.PanicEvery != 3 || inj.StoreCorruptEvery != 5 || inj.StoreFailReadEvery != 7 {
		t.Errorf("parsed %+v", inj)
	}
	if inj, err := parseInject(""); err != nil || inj.PanicEvery != 0 {
		t.Errorf("empty spec: %+v, %v", inj, err)
	}
	for _, bad := range []string{"panic-every", "panic-every=x", "frob=1"} {
		if _, err := parseInject(bad); err == nil {
			t.Errorf("parseInject(%q) accepted", bad)
		}
	}
}
