// Command apibench runs the DMA-API microbenchmark: the isolated cost of
// map+unmap pairs under every protection strategy, with no datapath around
// them. It distills the paper's core insight to one table — for MTU-sized
// buffers, a copy-based pair costs ~4-5x less than a strict zero-copy pair
// whose unmap must invalidate the IOTLB.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/bench"
)

func main() {
	extended := flag.Bool("extended", false, "include swiotlb and selfinval")
	format := flag.String("format", "text", "output format: text|csv|json")
	jsonOut := flag.String("json", "", "also write a machine-readable artifact (internal/report schema) to this path")
	cycleReport := flag.Bool("cyclereport", false, "append the microbenchmark cycle-attribution table (simulated-cycle profiler, doc/OBSERVABILITY.md)")
	traceFile := flag.String("tracefile", "", "write a Chrome trace-event JSON (Perfetto-loadable) of the strict map/unmap microbenchmark to this path")
	flag.Parse()

	opt := bench.Options{}
	if *extended {
		opt.Systems = bench.ExtendedSystems
	} else {
		opt.Systems = bench.AllSystems
	}
	t, err := bench.APIMicro(opt)
	if err != nil {
		log.Fatal(err)
	}
	out, err := t.Render(*format)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(out)
	tables := []*bench.Table{t}
	if *cycleReport {
		ct, err := bench.CycleReportMicro(opt)
		if err != nil {
			log.Fatalf("cycle report: %v", err)
		}
		cout, err := ct.Render(*format)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(cout)
		tables = append(tables, ct)
	}
	if *traceFile != "" {
		if _, err := bench.WriteTraceMicro(bench.SysLinuxStrict, *traceFile); err != nil {
			log.Fatalf("trace: %v", err)
		}
		fmt.Printf("Chrome trace written to %s (load at https://ui.perfetto.dev)\n", *traceFile)
	}
	if *jsonOut != "" {
		if err := bench.WriteArtifact(*jsonOut, "apibench", 0, nil, tables...); err != nil {
			log.Fatal(err)
		}
	}
}
