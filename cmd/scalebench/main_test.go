package main

import "testing"

// Tiny-window sanity runs of both measurement kernels: the numbers are
// host-dependent, so the test only checks structural invariants — work
// happened, rates are finite and positive, and the sim point reports the
// deterministic throughput.
func TestDispatchPoint(t *testing.T) {
	ns, allocs, dispatches := dispatchPoint(8, 5_000)
	if dispatches == 0 {
		t.Fatal("no dispatches executed")
	}
	if ns <= 0 {
		t.Errorf("ns/dispatch = %v, want > 0", ns)
	}
	if allocs < 0 || allocs > 100 {
		t.Errorf("allocs/dispatch = %v, want small and non-negative", allocs)
	}
}

func TestSimPoint(t *testing.T) {
	wallMs, allocsPerOp, gbps, err := simPoint(2, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if wallMs <= 0 {
		t.Errorf("wall ms = %v, want > 0", wallMs)
	}
	if allocsPerOp < 0 {
		t.Errorf("allocs/op = %v, want >= 0", allocsPerOp)
	}
	if gbps <= 0 {
		t.Errorf("gbps = %v, want > 0 (strict RX delivers frames)", gbps)
	}
}
