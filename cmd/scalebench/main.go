// Command scalebench measures HOST-side performance of the simulation
// substrate at many-core scale: the engine's cross-proc dispatch cost (a
// pure scheduler microbenchmark at 64/128 procs) and the wall clock + heap
// allocations of full single-point simulations at 16/64/128 simulated
// cores. Its artifact (BENCH_scale.json, written by `make bench-json`) is
// committed each PR so the cross-PR host-performance trajectory is visible
// in git history; every metric is host_-prefixed and therefore diff-exempt
// (report.Diff skips host time), so committing it can never gate CI.
//
//	go run ./cmd/scalebench -json BENCH_scale.json
//
// Simulated throughputs are included (gbps) purely as context: they are
// deterministic and change only with the cost model, never with host load.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/bench"
	"repro/internal/sim"
)

// dispatchPoint runs a pure scheduler workload: procs simulated cores,
// each doing interleaved Work slices so (nearly) every yield is a
// cross-proc dispatch, the pattern that dominates many-core simulations.
// Returns host ns and heap allocations per engine dispatch.
func dispatchPoint(procs int, windowCycles uint64) (nsPerDispatch, allocsPerDispatch float64, dispatches uint64) {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	e := sim.NewEngine()
	for c := 0; c < procs; c++ {
		d := uint64(7 + c%13) // co-prime-ish slice lengths: timestamps interleave
		e.Spawn(fmt.Sprintf("w%d", c), c, 0, func(p *sim.Proc) {
			for {
				p.Work("w", d)
			}
		})
	}
	e.Run(windowCycles)
	wall := time.Since(start)
	e.Stop()
	runtime.ReadMemStats(&after)
	dispatches = e.Dispatches()
	if dispatches == 0 {
		return 0, 0, 0
	}
	return float64(wall.Nanoseconds()) / float64(dispatches),
		float64(after.Mallocs-before.Mallocs) / float64(dispatches),
		dispatches
}

// simPoint runs one full benchmark machine (strict zero-copy RX — the
// paper's most scheduler- and allocator-intensive system) at the given
// simulated core count and returns host wall ms, allocations per simulated
// DMA op, and the simulated throughput for context.
func simPoint(cores int, windowMs float64) (wallMs, allocsPerOp, gbps float64, err error) {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	cfg := bench.DefaultConfig(bench.SysLinuxStrict, bench.RX, cores, 16384)
	cfg.WindowMs = windowMs
	r, err := bench.Run(cfg)
	if err != nil {
		return 0, 0, 0, err
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	ops := r.Ops
	if ops == 0 {
		ops = 1
	}
	return float64(wall.Microseconds()) / 1000,
		float64(after.Mallocs-before.Mallocs) / float64(ops),
		r.Gbps, nil
}

func main() {
	jsonOut := flag.String("json", "BENCH_scale.json", "artifact output path")
	window := flag.Float64("window", 0.5, "simulated ms per sim point")
	reps := flag.Int("reps", 3, "repetitions per point (best wall clock wins)")
	flag.Parse()

	t := &bench.Table{
		Name:  "scale",
		Title: "Host-side scale trajectory: engine dispatch cost and many-core sim points",
		Note: fmt.Sprintf("host metrics (host_*) are machine-dependent and diff-exempt; window %.2f ms; best of %d reps",
			*window, *reps),
		Columns: []string{"point", "host ns/dispatch", "host allocs/dispatch", "host wall ms", "host allocs/op", "Gb/s"},
	}

	for _, procs := range []int{64, 128} {
		bestNs, bestAllocs := 0.0, 0.0
		var disp uint64
		for i := 0; i < *reps; i++ {
			ns, al, d := dispatchPoint(procs, 100_000)
			if i == 0 || ns < bestNs {
				bestNs, bestAllocs, disp = ns, al, d
			}
		}
		label := fmt.Sprintf("%d procs", procs)
		t.AddRow("dispatch "+label, fmt.Sprintf("%.1f", bestNs), fmt.Sprintf("%.3f", bestAllocs), "-", "-", "-")
		t.Point("dispatch", label, map[string]float64{
			"host_ns_per_dispatch":     bestNs,
			"host_allocs_per_dispatch": bestAllocs,
			"host_dispatches":          float64(disp),
		})
		fmt.Printf("dispatch %-9s %8.1f ns/dispatch  %6.3f allocs/dispatch  (%d dispatches)\n",
			label, bestNs, bestAllocs, disp)
	}

	for _, cores := range []int{16, 64, 128} {
		bestWall, bestAllocs, gbps := 0.0, 0.0, 0.0
		for i := 0; i < *reps; i++ {
			w, al, g, err := simPoint(cores, *window)
			if err != nil {
				fmt.Fprintf(os.Stderr, "scalebench: %d cores: %v\n", cores, err)
				os.Exit(1)
			}
			if i == 0 || w < bestWall {
				bestWall, bestAllocs, gbps = w, al, g
			}
		}
		label := fmt.Sprintf("%d cores", cores)
		t.AddRow("strict-rx "+label, "-", "-", fmt.Sprintf("%.1f", bestWall), fmt.Sprintf("%.1f", bestAllocs), fmt.Sprintf("%.2f", gbps))
		t.Point("strict-rx", label, map[string]float64{
			"host_wall_ms":       bestWall,
			"host_allocs_per_op": bestAllocs,
			"gbps":               gbps,
		})
		fmt.Printf("strict-rx %-9s %8.1f ms wall  %8.1f allocs/op  %6.2f Gb/s\n",
			label, bestWall, bestAllocs, gbps)
	}

	if *jsonOut != "" {
		if err := bench.WriteArtifact(*jsonOut, "scalebench", *window, nil, t); err != nil {
			fmt.Fprintf(os.Stderr, "scalebench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("artifact written to %s\n", *jsonOut)
	}
}
