// Command storagebench runs the storage extension study (paper §5.5): a
// fio-style random read/write workload against a simulated NVMe-class SSD
// under each protection strategy. It quantifies the paper's argument that
// huge DMA buffers come with operation rates low enough to make zero-copy
// mapping with strict invalidation affordable — the regime where DMA
// shadowing's hybrid path engages.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/bench"
)

func main() {
	window := flag.Float64("window", 20, "simulated milliseconds per data point")
	mixed := flag.Bool("mixed", false, "also run the NIC+SSD shared-IOMMU interference study")
	jsonOut := flag.String("json", "", "also write a machine-readable artifact (internal/report schema) to this path")
	flag.Parse()

	t, err := bench.StorageStudy(bench.Options{WindowMs: *window})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(t)
	tables := []*bench.Table{t}

	if *mixed {
		mt, err := bench.MixedStudy(bench.Options{WindowMs: *window})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(mt)
		tables = append(tables, mt)
	}
	if *jsonOut != "" {
		if err := bench.WriteArtifact(*jsonOut, "storagebench", *window, nil, tables...); err != nil {
			log.Fatal(err)
		}
	}
}
