// Command kvbench regenerates Figure 11: aggregated memcached transaction
// throughput for 16 instances under memslap-style load (64-byte keys, 1 KiB
// values, 90%/10% GET/SET).
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/bench"
)

func main() {
	window := flag.Float64("window", 20, "simulated milliseconds")
	cores := flag.Int("cores", 16, "memcached instances (one per core)")
	flag.Parse()

	if *cores == 16 {
		t, err := bench.Fig11(bench.Options{WindowMs: *window})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(t)
		return
	}
	for _, sys := range bench.FigureSystems {
		r, err := bench.RunMemcached(sys, *cores, *window)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %6.2f Mtx/s  cpu %5.1f%%  errors %d\n",
			sys, r.TransactionsPS/1e6, r.CPUPct, r.Errors)
	}
}
