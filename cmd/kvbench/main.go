// Command kvbench regenerates Figure 11: aggregated memcached transaction
// throughput for 16 instances under memslap-style load (64-byte keys, 1 KiB
// values, 90%/10% GET/SET).
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/bench"
)

func main() {
	window := flag.Float64("window", 20, "simulated milliseconds")
	cores := flag.Int("cores", 16, "memcached instances (one per core)")
	jsonOut := flag.String("json", "", "also write a machine-readable artifact (internal/report schema) to this path")
	cycleReport := flag.Bool("cyclereport", false, "append the memcached cycle-attribution table (simulated-cycle profiler, doc/OBSERVABILITY.md)")
	traceFile := flag.String("tracefile", "", "write a Chrome trace-event JSON (Perfetto-loadable) of the strict memcached workload to this path")
	flag.Parse()

	var t *bench.Table
	if *cores == 16 {
		var err error
		t, err = bench.Fig11(bench.Options{WindowMs: *window})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(t)
	} else {
		t = &bench.Table{
			Name:    "kvbench",
			Title:   fmt.Sprintf("memcached aggregated throughput (%d instances)", *cores),
			Columns: []string{"system", "Mtx/s", "cpu%", "errors"},
		}
		t.SetWinner("mtx_per_sec", false)
		label := fmt.Sprintf("%d cores", *cores)
		for _, sys := range bench.FigureSystems {
			r, err := bench.RunMemcached(sys, *cores, *window)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-10s %6.2f Mtx/s  cpu %5.1f%%  errors %d\n",
				sys, r.TransactionsPS/1e6, r.CPUPct, r.Errors)
			t.AddRow(sys, fmt.Sprintf("%.2f", r.TransactionsPS/1e6),
				fmt.Sprintf("%.1f", r.CPUPct), fmt.Sprintf("%d", r.Errors))
			t.Point(sys, label, map[string]float64{
				"mtx_per_sec": r.TransactionsPS / 1e6,
				"cpu_pct":     r.CPUPct,
			})
		}
	}
	tables := []*bench.Table{t}
	if *cycleReport {
		ct, err := bench.CycleReportKV(*cores, bench.Options{WindowMs: *window})
		if err != nil {
			log.Fatalf("cycle report: %v", err)
		}
		fmt.Println(ct)
		tables = append(tables, ct)
	}
	if *traceFile != "" {
		if _, err := bench.WriteTraceKV(bench.SysLinuxStrict, *cores, *traceFile); err != nil {
			log.Fatalf("trace: %v", err)
		}
		fmt.Printf("Chrome trace written to %s (load at https://ui.perfetto.dev)\n", *traceFile)
	}
	if *jsonOut != "" {
		if err := bench.WriteArtifact(*jsonOut, "kvbench", *window, nil, tables...); err != nil {
			log.Fatal(err)
		}
	}
}
