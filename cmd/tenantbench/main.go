// Command tenantbench benchmarks the multi-tenant kernel-bypass
// datapath (internal/tenant): three protection schemes — the
// unprotected shared-queue baseline, CAPIO-style capability-checked
// descriptors, and per-tenant shadow-copy rings — against a hostile
// tenant mounted from the attack-program library, producing both the
// isolation matrix (which schemes contain arbitrary-scan / ring-overrun
// / stale-replay) and the isolation-vs-throughput sweep across tenant
// counts up to 1024 queues.
//
// Usage:
//
//	tenantbench [-seed 1] [-schemes capability,shadow-copy] [-attacks stale-replay]
//	tenantbench -tenants 16,256,1024 -frames 1500,256,128
//	tenantbench -parallel 4 -json tenants.json
//
// Every cell is an independent deterministic simulation, so the JSON
// artifact is byte-identical at any -parallel setting and is
// regression-gated in CI with cmd/benchdiff against
// ci/tenant-baseline.json (`make tenant-smoke`): any isolation-cell flip
// or goodput drift fails the build.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/bench"
	"repro/internal/tenant"
)

type options struct {
	seed     int64
	schemes  string
	attacks  string
	tenants  string
	frames   string
	parallel int
	jsonOut  string
	quiet    bool
}

func splitList(s string) []string {
	if s == "" || s == "all" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func splitInts(s string) ([]int, error) {
	var out []int
	for _, part := range splitList(s) {
		n, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad count %q: %w", part, err)
		}
		out = append(out, n)
	}
	return out, nil
}

func run(opts options, stdout, stderr io.Writer) error {
	counts, err := splitInts(opts.tenants)
	if err != nil {
		return err
	}
	frames, err := splitInts(opts.frames)
	if err != nil {
		return err
	}
	cfg := tenant.BenchConfig{
		Seed:         opts.seed,
		Schemes:      splitList(opts.schemes),
		Attacks:      splitList(opts.attacks),
		TenantCounts: counts,
		FrameSizes:   frames,
	}
	if opts.parallel != 1 {
		farm := bench.NewFarm(opts.parallel)
		defer farm.Close()
		cfg.Farm = farm
	}
	art, tables, err := tenant.Bench(cfg)
	if err != nil {
		return err
	}
	if !opts.quiet {
		for _, tb := range tables {
			fmt.Fprintln(stdout, tb.String())
		}
	}
	if opts.jsonOut != "" {
		if err := art.WriteFile(opts.jsonOut); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "tenantbench: wrote %s (%d experiments)\n",
			opts.jsonOut, len(art.Experiments))
	}
	return nil
}

func main() {
	var opts options
	flag.Int64Var(&opts.seed, "seed", 1, "deterministic sweep seed")
	flag.StringVar(&opts.schemes, "schemes", "all", "comma-separated protection schemes, or 'all'")
	flag.StringVar(&opts.attacks, "attacks", "all", "comma-separated hostile programs for the matrix, or 'all'")
	flag.StringVar(&opts.tenants, "tenants", "", "comma-separated tenant counts for the sweep (default 16,256,1024)")
	flag.StringVar(&opts.frames, "frames", "", "comma-separated frame sizes for the sweep (default 1500,256,128)")
	flag.IntVar(&opts.parallel, "parallel", 1, "farm workers for cell parallelism (<=0 = GOMAXPROCS, 1 = serial)")
	flag.StringVar(&opts.jsonOut, "json", "", "write a machine-readable artifact (internal/report schema) to this path")
	flag.BoolVar(&opts.quiet, "q", false, "suppress the text tables")
	flag.Parse()

	if err := run(opts, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "tenantbench: %v\n", err)
		os.Exit(1)
	}
}
