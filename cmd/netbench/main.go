// Command netbench regenerates the paper's netperf TCP_STREAM experiments:
// Figure 1 (motivation), Figures 3/4 (single-core RX/TX), Figures 6/7
// (16-core RX/TX) and the per-packet breakdowns of Figures 5 and 8.
//
// Usage:
//
//	netbench -experiment fig3 [-window 20] [-sizes 64,1024,65536]
//	netbench -experiment all
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"repro/internal/bench"
	"repro/internal/cycles"
	"repro/internal/prof"
)

func main() {
	experiment := flag.String("experiment", "all", "fig1|fig3|fig4|fig5|fig6|fig7|fig8|sensitivity|all|none")
	window := flag.Float64("window", 20, "simulated milliseconds per data point")
	sizes := flag.String("sizes", "", "comma-separated message sizes (default: the paper's 64B..64KB sweep)")
	format := flag.String("format", "text", "output format: text|csv|json")
	costsFile := flag.String("costs", "", "JSON cost-model override file (see internal/cycles)")
	jsonOut := flag.String("json", "", "also write a machine-readable artifact (internal/report schema) to this path")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this path")
	memProfile := flag.String("memprofile", "", "write an allocation profile to this path at exit")
	cycleReport := flag.Bool("cyclereport", false, "append the cycle-attribution tables (simulated-cycle profiler, doc/OBSERVABILITY.md)")
	traceFile := flag.String("tracefile", "", "write a Chrome trace-event JSON (Perfetto-loadable) of the 16-core RX 1500B strict workload to this path")
	flag.Parse()

	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		log.Fatal(err)
	}
	defer stopProf()

	opt := bench.Options{WindowMs: *window}
	if *costsFile != "" {
		f, err := os.Open(*costsFile)
		if err != nil {
			log.Fatal(err)
		}
		c, err := cycles.LoadJSON(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		opt.Costs = c
	}
	if *sizes != "" {
		for _, s := range strings.Split(*sizes, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				log.Fatalf("bad size %q: %v", s, err)
			}
			opt.Sizes = append(opt.Sizes, n)
		}
	}

	one := func(fn func(bench.Options) (*bench.Table, error)) func(bench.Options) ([]*bench.Table, error) {
		return func(o bench.Options) ([]*bench.Table, error) {
			t, err := fn(o)
			if err != nil {
				return nil, err
			}
			return []*bench.Table{t}, nil
		}
	}
	experiments := []struct {
		name string
		run  func(bench.Options) ([]*bench.Table, error)
	}{
		{"fig1", one(bench.Fig1)},
		{"fig3", one(bench.Fig3)},
		{"fig4", one(bench.Fig4)},
		{"fig5", func(o bench.Options) ([]*bench.Table, error) {
			return breakdownBoth(o, 1)
		}},
		{"fig6", one(bench.Fig6)},
		{"fig7", one(bench.Fig7)},
		{"fig8", func(o bench.Options) ([]*bench.Table, error) {
			return breakdownBoth(o, 16)
		}},
		{"sensitivity", one(func(o bench.Options) (*bench.Table, error) {
			t, violations, err := bench.Sensitivity(o)
			if err != nil {
				return nil, err
			}
			t.Note = fmt.Sprintf("claim flips under perturbation: %d", violations)
			return t, nil
		})},
	}
	ran := *experiment == "none" || *cycleReport || *traceFile != ""
	var tables []*bench.Table
	for _, e := range experiments {
		if *experiment == "none" || (*experiment != "all" && *experiment != e.name) {
			continue
		}
		ran = true
		ts, err := e.run(opt)
		if err != nil {
			log.Fatalf("%s: %v", e.name, err)
		}
		for _, t := range ts {
			out, err := t.Render(*format)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(out)
			tables = append(tables, t)
		}
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *experiment)
		flag.Usage()
		os.Exit(2)
	}
	if *cycleReport {
		cts, err := bench.CycleReport(opt)
		if err != nil {
			log.Fatalf("cycle report: %v", err)
		}
		for _, t := range cts {
			out, err := t.Render(*format)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(out)
			tables = append(tables, t)
		}
	}
	if *traceFile != "" {
		cfg := bench.DefaultConfig(bench.SysLinuxStrict, bench.RX, 16, 1500)
		if opt.Costs != nil {
			c := *opt.Costs
			cfg.Costs = &c
		}
		if _, err := bench.WriteTrace(cfg, *traceFile); err != nil {
			log.Fatalf("trace: %v", err)
		}
		fmt.Printf("Chrome trace written to %s (load at https://ui.perfetto.dev)\n", *traceFile)
	}
	if *jsonOut != "" {
		if err := bench.WriteArtifact(*jsonOut, "netbench", *window, opt.Costs, tables...); err != nil {
			log.Fatal(err)
		}
	}
}

// breakdownBoth runs the RX and TX panels of a breakdown figure.
func breakdownBoth(opt bench.Options, cores int) ([]*bench.Table, error) {
	rx, _, err := bench.Breakdown(bench.RX, cores, opt)
	if err != nil {
		return nil, err
	}
	tx, _, err := bench.Breakdown(bench.TX, cores, opt)
	if err != nil {
		return nil, err
	}
	return []*bench.Table{rx, tx}, nil
}
