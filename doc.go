// Package repro is a from-scratch Go reproduction of "True IOMMU
// Protection from DMA Attacks: When Copy Is Faster Than Zero Copy"
// (Markuze, Morrison, Tsafrir — ASPLOS 2016).
//
// The paper's contribution — intra-OS protection via DMA shadowing — and
// every substrate it depends on (physical memory and slab allocation, a
// VT-d-style IOMMU with IOTLB and invalidation queue, IOVA allocators, the
// Linux-style DMA API with strict/deferred/identity baselines, a 40 Gb/s
// NIC, a network datapath, and netperf/memcached workload generators) are
// implemented as a discrete-event simulation with a cycle-cost model
// calibrated to the paper's measurements.
//
// See ARCHITECTURE.md for the package map and layer diagram, DESIGN.md
// for the system inventory and per-experiment index, EXPERIMENTS.md for
// paper-vs-measured results, doc/README.md for the full document index,
// and the benchmarks in bench_test.go (one per table and figure).
package repro
