package repro

// One testing.B benchmark per table and figure of the paper (DESIGN.md §4
// maps each to its workload). Simulated results are reported through
// b.ReportMetric; wall-clock ns/op reflects simulator speed only.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// The cmd/ binaries print the same experiments as full tables with longer
// simulation windows.

import (
	"strings"
	"testing"

	"repro/internal/attack"
	"repro/internal/bench"
	"repro/internal/cycles"
)

// benchWindowMs keeps bench runtimes moderate; the shapes are stable well
// below this window.
const benchWindowMs = 8

func metricName(sys, unit string) string {
	return strings.ReplaceAll(sys, " ", "_") + "_" + unit
}

func runOne(b *testing.B, sys string, dir bench.Direction, cores, msg int) bench.Result {
	b.Helper()
	cfg := bench.DefaultConfig(sys, dir, cores, msg)
	cfg.WindowMs = benchWindowMs
	r, err := bench.Run(cfg)
	if err != nil {
		b.Fatalf("%s: %v", sys, err)
	}
	return r
}

func streamBench(b *testing.B, dir bench.Direction, cores, msg int) {
	for i := 0; i < b.N; i++ {
		for _, sys := range bench.FigureSystems {
			r := runOne(b, sys, dir, cores, msg)
			b.ReportMetric(r.Gbps, metricName(sys, "Gbps"))
			b.ReportMetric(r.CPUPct, metricName(sys, "cpu%"))
		}
	}
}

// BenchmarkFig1Motivation regenerates Figure 1: RX throughput of all six
// systems at 1 and 16 cores with MSS-sized packets.
func BenchmarkFig1Motivation(b *testing.B) {
	for _, cores := range []int{1, 16} {
		name := map[int]string{1: "1core", 16: "16core"}[cores]
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, sys := range bench.AllSystems {
					r := runOne(b, sys, bench.RX, cores, 16384)
					b.ReportMetric(r.Gbps, metricName(sys, "Gbps"))
				}
			}
		})
	}
}

// BenchmarkFig3RxSingleCore regenerates Figure 3 at the plateau point.
func BenchmarkFig3RxSingleCore(b *testing.B) { streamBench(b, bench.RX, 1, 16384) }

// BenchmarkFig4TxSingleCore regenerates Figure 4 at 64 KiB messages (the
// TSO-dominated regime where copy pays for 64 KiB copies).
func BenchmarkFig4TxSingleCore(b *testing.B) { streamBench(b, bench.TX, 1, 65536) }

// BenchmarkFig5Breakdown regenerates Figure 5: the single-core per-packet
// component breakdown at 64 KiB messages.
func BenchmarkFig5Breakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, sys := range bench.FigureSystems {
			r := runOne(b, sys, bench.RX, 1, 65536)
			for _, comp := range []string{cycles.TagMemcpy, cycles.TagInvalidate, cycles.TagPTMgmt, cycles.TagCopyMgmt} {
				b.ReportMetric(r.PerOp[comp], metricName(sys, strings.ReplaceAll(comp, " ", "_")+"_us"))
			}
		}
	}
}

// BenchmarkFig6RxMultiCore regenerates Figure 6 (the identity+ collapse).
func BenchmarkFig6RxMultiCore(b *testing.B) { streamBench(b, bench.RX, 16, 16384) }

// BenchmarkFig7TxMultiCore regenerates Figure 7 at small messages (the
// regime where identity+ is ~5x worse).
func BenchmarkFig7TxMultiCore(b *testing.B) { streamBench(b, bench.TX, 16, 1024) }

// BenchmarkFig8BreakdownMulti regenerates Figure 8: 16-core breakdown,
// dominated by identity+'s invalidation-queue spinlock.
func BenchmarkFig8BreakdownMulti(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, sys := range []string{bench.SysCopy, bench.SysIdentityStrict} {
			r := runOne(b, sys, bench.RX, 16, 65536)
			b.ReportMetric(r.PerOp[cycles.TagSpinlock], metricName(sys, "spinlock_us"))
			b.ReportMetric(r.Gbps, metricName(sys, "Gbps"))
		}
	}
}

// BenchmarkFig9Latency regenerates Figure 9: request/response latency.
func BenchmarkFig9Latency(b *testing.B) {
	for _, msg := range []int{64, 65536} {
		name := map[int]string{64: "64B", 65536: "64KB"}[msg]
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, sys := range bench.FigureSystems {
					r := runOne(b, sys, bench.RR, 1, msg)
					b.ReportMetric(r.LatencyUs, metricName(sys, "lat_us"))
				}
			}
		})
	}
}

// BenchmarkFig10LatencyBreakdown regenerates Figure 10: RR CPU use.
func BenchmarkFig10LatencyBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, sys := range bench.FigureSystems {
			r := runOne(b, sys, bench.RR, 1, 65536)
			b.ReportMetric(r.CPUPct, metricName(sys, "cpu%"))
			b.ReportMetric(r.PerOp[cycles.TagInvalidate], metricName(sys, "inval_us_per_tx"))
		}
	}
}

// BenchmarkFig11Memcached regenerates Figure 11.
func BenchmarkFig11Memcached(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, sys := range bench.FigureSystems {
			r, err := bench.RunMemcached(sys, 16, benchWindowMs)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(r.TransactionsPS/1e6, metricName(sys, "Mtx/s"))
		}
	}
}

// BenchmarkTable1SecurityMatrix regenerates Table 1 (attacks + perf).
func BenchmarkTable1SecurityMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, err := attack.Table1(4)
		if err != nil {
			b.Fatal(err)
		}
		secure := 0.0
		for _, r := range rows {
			if r.System == bench.SysCopy {
				if r.SubPageProtect && r.NoVulnWindow && r.SingleCorePerf && r.MultiCorePerf {
					secure = 1
				}
			}
		}
		b.ReportMetric(secure, "copy_all_columns_pass")
	}
}

// BenchmarkMemoryConsumption regenerates the §6 footprint measurement.
func BenchmarkMemoryConsumption(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, dir := range []bench.Direction{bench.RX, bench.TX} {
			r := runOne(b, bench.SysCopy, dir, 16, 65536)
			b.ReportMetric(float64(r.PoolBytes)/(1<<20), dir.String()+"_pool_MB")
		}
	}
}

// BenchmarkStorageStudy runs the §5.5 extension: NVMe-class SSD I/O under
// each strategy, where the hybrid path engages for 256 KiB buffers.
func BenchmarkStorageStudy(b *testing.B) {
	for _, sz := range []int{4096, 262144} {
		name := map[int]string{4096: "4KB", 262144: "256KB"}[sz]
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, sys := range []string{bench.SysNoIOMMU, bench.SysCopy, bench.SysIdentityStrict} {
					r, err := bench.RunStorage(sys, 4, sz, 70, benchWindowMs)
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(r.IOPS/1e3, metricName(sys, "KIOPS"))
					b.ReportMetric(r.CPUPct, metricName(sys, "cpu%"))
				}
			}
		})
	}
}

// BenchmarkMixedIOInterference runs the shared-IOMMU NIC+SSD study: the
// per-IOMMU invalidation queue couples the devices under strict zero-copy
// protection; DMA shadowing is immune.
func BenchmarkMixedIOInterference(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, sys := range []string{bench.SysCopy, bench.SysIdentityStrict} {
			r, err := bench.RunMixed(sys, 4, 4, benchWindowMs)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(r.NetGbps, metricName(sys, "net_Gbps"))
			b.ReportMetric(float64(r.InvWaits), metricName(sys, "invq_contention"))
		}
	}
}

// BenchmarkAblationMemcpy is the §5.4 "smart memcpy" study as a cost-model
// ablation: copy throughput under faster/slower memcpy engines. The paper
// found SIMD/non-temporal variants gave no overall benefit over REP MOVSB.
func BenchmarkAblationMemcpy(b *testing.B) {
	variants := map[string]uint64{"fast_simd": 33, "rep_movsb": 44, "slow": 66}
	for name, perByte := range variants {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := bench.DefaultConfig(bench.SysCopy, bench.RX, 1, 16384)
				cfg.WindowMs = benchWindowMs
				c := cycles.Default()
				c.MemcpyPerByte = perByte
				cfg.Costs = c
				r, err := bench.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(r.Gbps, "copy_Gbps")
			}
		})
	}
}

// BenchmarkAblationInvalidationCost sweeps the IOTLB-invalidation hardware
// latency: the copy design is insensitive to it (it never invalidates),
// while identity+ scales directly with it — the paper's core insight.
func BenchmarkAblationInvalidationCost(b *testing.B) {
	for _, hw := range []uint64{732, 1464, 2928} {
		name := map[uint64]string{732: "0.3us", 1464: "0.61us", 2928: "1.2us"}[hw]
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, sys := range []string{bench.SysCopy, bench.SysIdentityStrict} {
					cfg := bench.DefaultConfig(sys, bench.RX, 1, 16384)
					cfg.WindowMs = benchWindowMs
					c := cycles.Default()
					c.IOTLBInvalidateHW = hw
					cfg.Costs = c
					r, err := bench.Run(cfg)
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(r.Gbps, metricName(sys, "Gbps"))
				}
			}
		})
	}
}

// BenchmarkAblationNUMARemote quantifies what shadow-buffer stickiness
// saves: copy costs with and without the cross-NUMA penalty applied to
// every copy.
func BenchmarkAblationNUMARemote(b *testing.B) {
	for _, pct := range []uint64{100, 140, 200} {
		name := map[uint64]string{100: "local", 140: "remote_1.4x", 200: "remote_2x"}[pct]
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := bench.DefaultConfig(bench.SysCopy, bench.TX, 1, 65536)
				cfg.WindowMs = benchWindowMs
				c := cycles.Default()
				// Force every copy to pay the remote factor by folding
				// it into the base memcpy cost.
				c.MemcpyPerByte = c.MemcpyPerByte * pct / 100
				cfg.Costs = c
				r, err := bench.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(r.Gbps, "copy_Gbps")
			}
		})
	}
}
