package daemon

import (
	"bytes"
	"testing"

	"repro/internal/report"
)

// decodeArt decodes a served artifact or fails the test.
func decodeArt(t *testing.T, raw []byte) *report.Artifact {
	t.Helper()
	a, err := report.Decode(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("decoding daemon artifact: %v", err)
	}
	return a
}

// expNames lists an artifact's experiment names in order.
func expNames(a *report.Artifact) []string {
	out := make([]string, len(a.Experiments))
	for i, e := range a.Experiments {
		out[i] = e.Name
	}
	return out
}

func TestDaemonExecReproduce(t *testing.T) {
	_, c := testDaemon(t, nil)
	spec := RunSpec{Tool: "reproduce", WindowMs: 0.5, SkipSensitivity: true, Experiments: "fig3"}
	resp := mustRun(t, c, spec, false)
	a := decodeArt(t, resp.Artifact)
	got := expNames(a)
	if len(got) != 2 || got[0] != "fig3" || got[1] != "farm" {
		t.Fatalf("experiments = %v, want [fig3 farm]", got)
	}
	if a.CreatedAt == "" {
		t.Error("reproduce artifact missing created_at stamp")
	}
	// Determinism through the daemon: a recompute produces the same
	// simulated metrics (created_at and farm.* are the documented
	// diff-exempt fields).
	resp2 := mustRun(t, c, spec, true)
	r, err := report.Diff(a, decodeArt(t, resp2.Artifact), report.DiffOptions{Tol: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !r.OK() {
		t.Fatalf("recomputed reproduce artifact drifted:\n%s", r)
	}
}

func TestDaemonExecReproduceWithTable1(t *testing.T) {
	_, c := testDaemon(t, nil)
	spec := RunSpec{Tool: "reproduce", WindowMs: 0.5, SkipSensitivity: true, Experiments: "table1,fig3"}
	resp := mustRun(t, c, spec, false)
	a := decodeArt(t, resp.Artifact)
	got := expNames(a)
	if len(got) != 3 || got[0] != "table1" {
		t.Fatalf("experiments = %v, want table1 leading [table1 fig3 farm]", got)
	}
	if len(a.Attacks) == 0 {
		t.Error("table1 run produced no attack verdicts")
	}
}

func TestDaemonExecAttack(t *testing.T) {
	_, c := testDaemon(t, nil)
	spec := RunSpec{Tool: "attackbench", Seed: 1,
		Payloads: "subpage-harvest", Systems: "strict,no iommu"}
	resp := mustRun(t, c, spec, false)
	a := decodeArt(t, resp.Artifact)
	if got := expNames(a); len(got) != 1 || got[0] != "campaign" {
		t.Fatalf("experiments = %v, want [campaign]", got)
	}
	if a.Tool != "attackbench" {
		t.Errorf("tool = %q", a.Tool)
	}
}

func TestDaemonExecTenant(t *testing.T) {
	_, c := testDaemon(t, nil)
	spec := RunSpec{Tool: "tenantbench", Seed: 1, Tenants: "2", Frames: "1500"}
	resp := mustRun(t, c, spec, false)
	a := decodeArt(t, resp.Artifact)
	if a.Tool != "tenantbench" || len(a.Experiments) == 0 {
		t.Fatalf("tenant artifact: tool %q, %d experiments", a.Tool, len(a.Experiments))
	}
}

func TestDaemonExecTenantBadCounts(t *testing.T) {
	_, c := testDaemon(t, nil)
	resp, err := c.Run(RunSpec{Tool: "tenantbench", Tenants: "two"}, 0, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK {
		t.Fatal("malformed tenant counts accepted")
	}
}
