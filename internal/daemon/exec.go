package daemon

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/attack"
	"repro/internal/bench"
	"repro/internal/campaign"
	"repro/internal/chaos"
	"repro/internal/report"
	"repro/internal/tenant"
)

// exec runs one normalized spec on the daemon's warm farm, reproducing
// the same-named cmd/* tool's artifact construction exactly — same
// experiment order, same metrics — so daemon-served artifacts diff clean
// against one-shot runs (the farm table and created_at stamp are the
// documented diff-exempt exceptions). The context cancels queued sweep
// points; points already executing finish (simulations are not
// interruptible mid-point), so cancellation is prompt but not instant.
func (d *Daemon) exec(ctx context.Context, spec RunSpec) (*report.Artifact, error) {
	farm := d.farm.WithContext(ctx)
	switch spec.Tool {
	case "reproduce":
		return execReproduce(farm, spec)
	case "chaosbench":
		return execChaos(farm, spec)
	case "attackbench":
		return execAttack(farm, spec)
	case "tenantbench":
		return execTenant(farm, spec)
	}
	return nil, fmt.Errorf("unknown tool %q", spec.Tool)
}

// execReproduce mirrors cmd/reproduce: suite sections (filtered by the
// experiment list) concurrent with Table 1, then the farm table.
func execReproduce(farm *bench.Farm, spec RunSpec) (*report.Artifact, error) {
	opt := bench.Options{WindowMs: spec.WindowMs, Farm: farm}
	sections := bench.Suite(!spec.SkipSensitivity)
	runTable1 := true
	if spec.Experiments != "all" {
		want := map[string]bool{}
		for _, n := range strings.Split(spec.Experiments, ",") {
			want[n] = true
		}
		runTable1 = want["table1"]
		var filtered []bench.Section
		for _, s := range sections {
			if want[s.Name] {
				filtered = append(filtered, s)
			}
		}
		sections = filtered
	}

	type table1Out struct {
		rows []attack.Table1Row
		tbl  *bench.Table
		err  error
	}
	t1ch := make(chan table1Out, 1)
	if runTable1 {
		go func() {
			rows, tbl, err := attack.Table1(spec.WindowMs)
			t1ch <- table1Out{rows, tbl, err}
		}()
	}
	tables, err := bench.RunSuite(sections, opt, 0)
	if err != nil {
		return nil, err
	}
	var t1 table1Out
	if runTable1 {
		t1 = <-t1ch
		if t1.err != nil {
			return nil, t1.err
		}
		tables = append([]*bench.Table{t1.tbl}, tables...)
	}
	tables = append(tables, bench.FarmTable(farm.Stats()))
	a := bench.Artifact("reproduce", spec.WindowMs, nil, tables)
	a.CreatedAt = time.Now().UTC().Format(time.RFC3339)
	if runTable1 {
		a.Attacks = attack.Verdicts(t1.rows)
	}
	return a, nil
}

// execChaos mirrors cmd/chaosbench: scenarios on coordinator goroutines
// over the shared farm, tables in scenario order.
func execChaos(farm *bench.Farm, spec RunSpec) (*report.Artifact, error) {
	cfg := chaos.Config{Seed: spec.Seed, WindowMs: spec.WindowMs,
		Cores: spec.Cores, System: spec.System, Farm: farm}
	var run []chaos.Scenario
	if spec.Scenarios == "all" {
		run = chaos.Scenarios
	} else {
		for _, name := range strings.Split(spec.Scenarios, ",") {
			s, err := chaos.Find(name)
			if err != nil {
				return nil, err
			}
			run = append(run, s)
		}
	}
	tables := make([]*bench.Table, len(run))
	errs := make([]error, len(run))
	var wg sync.WaitGroup
	for i, s := range run {
		i, s := i, s
		wg.Add(1)
		go func() {
			defer wg.Done()
			t, err := s.Run(cfg)
			if err != nil {
				errs[i] = fmt.Errorf("%s: %v", s.Name, err)
				return
			}
			tables[i] = t
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	art := report.New("chaosbench", spec.WindowMs, cfg.Costs)
	for _, t := range tables {
		art.Add(t.Experiment())
	}
	return art, nil
}

// execAttack mirrors cmd/attackbench: the payload x backend success
// matrix as one experiment.
func execAttack(farm *bench.Farm, spec RunSpec) (*report.Artifact, error) {
	cfg := campaign.MatrixConfig{
		Seed:     spec.Seed,
		Payloads: splitList(spec.Payloads),
		Systems:  splitList(spec.Systems),
		Farm:     farm,
	}
	tb, _, err := campaign.Matrix(cfg)
	if err != nil {
		return nil, err
	}
	art := report.New("attackbench", campaign.CellWindowMs, nil)
	art.Add(tb.Experiment())
	return art, nil
}

// execTenant mirrors cmd/tenantbench: tenant.Bench builds the artifact
// (isolation matrix + tenant-count sweep) itself.
func execTenant(farm *bench.Farm, spec RunSpec) (*report.Artifact, error) {
	counts, err := splitInts(spec.Tenants)
	if err != nil {
		return nil, err
	}
	frames, err := splitInts(spec.Frames)
	if err != nil {
		return nil, err
	}
	cfg := tenant.BenchConfig{
		Seed:         spec.Seed,
		Schemes:      splitList(spec.Schemes),
		Attacks:      splitList(spec.Attacks),
		TenantCounts: counts,
		FrameSizes:   frames,
		Farm:         farm,
	}
	art, _, err := tenant.Bench(cfg)
	return art, err
}

func splitInts(s string) ([]int, error) {
	var out []int
	for _, part := range splitList(s) {
		n, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad count %q: %w", part, err)
		}
		out = append(out, n)
	}
	return out, nil
}
