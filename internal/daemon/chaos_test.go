// The daemon chaos suite: every failure mode the ISSUE names — worker
// panics, corrupted store entries, slow and disconnecting clients,
// overload floods, deadlines, graceful drain — injected against a live
// in-process daemon. The invariants held throughout: the daemon never
// exits, never serves a corrupt or wrong artifact, every rejected
// request carries a typed error kind, and served artifacts stay
// identical to the one-shot tools for the same (seed, config).
package daemon

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/report"
)

// testDaemon starts an in-process daemon on a short socket path (sun_path
// is ~108 bytes; t.TempDir can exceed it) and tears it down with the
// graceful drain.
func testDaemon(t *testing.T, mut func(*Config)) (*Daemon, *Client) {
	t.Helper()
	dir, err := os.MkdirTemp("", "simd")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(dir) })
	cfg := Config{
		Socket:      dir + "/d.sock",
		StoreDir:    dir + "/store",
		Parallel:    2,
		RetryBase:   time.Millisecond,
		Fingerprint: "test",
		Logf:        t.Logf,
	}
	if mut != nil {
		mut(&cfg)
	}
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- d.Serve() }()
	t.Cleanup(func() {
		d.Shutdown()
		if err := <-serveDone; err != nil {
			t.Errorf("Serve returned %v", err)
		}
	})
	return d, &Client{Socket: cfg.Socket}
}

// fastSpec is a cheap deterministic run (~tens of ms of host time).
func fastSpec() RunSpec {
	return RunSpec{Tool: "chaosbench", Seed: 1, WindowMs: 2, Scenarios: "faultstorm"}
}

// slowSpec is the same run stretched to a window long enough to overlap
// requests on a 1-CPU host.
func slowSpec(windowMs float64) RunSpec {
	return RunSpec{Tool: "chaosbench", Seed: 1, WindowMs: windowMs, Scenarios: "faultstorm"}
}

// mustRun sends a run request and requires OK.
func mustRun(t *testing.T, c *Client, spec RunSpec, noCache bool) *Response {
	t.Helper()
	resp, err := c.Run(spec, 0, noCache, false)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK {
		t.Fatalf("run failed: %s: %s", resp.ErrKind, resp.Err)
	}
	return resp
}

// oneShotChaos replicates cmd/chaosbench's serial artifact construction
// for the byte-identity oracle.
func oneShotChaos(t *testing.T, spec RunSpec) []byte {
	t.Helper()
	cfg := chaos.Config{Seed: spec.Seed, WindowMs: spec.WindowMs, Cores: 2, System: "strict"}
	s, err := chaos.Find("faultstorm")
	if err != nil {
		t.Fatal(err)
	}
	tb, err := s.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	art := report.New("chaosbench", spec.WindowMs, cfg.Costs)
	art.Add(tb.Experiment())
	var buf bytes.Buffer
	if err := art.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestDaemonServesByteIdenticalToOneShot(t *testing.T) {
	_, c := testDaemon(t, nil)
	want := oneShotChaos(t, fastSpec())
	resp := mustRun(t, c, fastSpec(), false)
	if !bytes.Equal(resp.Artifact, want) {
		t.Fatalf("daemon artifact differs from one-shot tool (%d vs %d bytes)",
			len(resp.Artifact), len(want))
	}
	// Second request: byte-identical again, this time from the store.
	resp2 := mustRun(t, c, fastSpec(), false)
	if !resp2.Cached {
		t.Error("second identical request not served from cache")
	}
	if !bytes.Equal(resp2.Artifact, want) {
		t.Fatal("cached artifact differs from one-shot tool")
	}
}

func TestDaemonNormalizationSharesCacheEntries(t *testing.T) {
	_, c := testDaemon(t, nil)
	mustRun(t, c, fastSpec(), false)
	// Spelled differently, same normalized run → cache hit.
	same := RunSpec{Tool: "chaosbench", Seed: 1, WindowMs: 2,
		Cores: 2, System: "strict", Scenarios: " faultstorm ,faultstorm"}
	if resp := mustRun(t, c, same, false); !resp.Cached {
		t.Error("equivalent spelling missed the cache")
	}
}

func TestDaemonWorkerPanicIsRetriedThenServed(t *testing.T) {
	d, c := testDaemon(t, func(cfg *Config) { cfg.Inject.PanicEvery = 2 })
	want := oneShotChaos(t, fastSpec())
	resp := mustRun(t, c, fastSpec(), false) // attempt 1 panics, retry succeeds
	if !bytes.Equal(resp.Artifact, want) {
		t.Fatal("artifact served after panic-retry differs from one-shot tool")
	}
	if d.panicsRecovered.Load() == 0 || d.retries.Load() == 0 {
		t.Errorf("panicsRecovered=%d retries=%d, want both > 0",
			d.panicsRecovered.Load(), d.retries.Load())
	}
}

func TestDaemonPanicExhaustionIsTypedNotFatal(t *testing.T) {
	_, c := testDaemon(t, func(cfg *Config) { cfg.Inject.PanicEvery = 1 })
	resp, err := c.Run(fastSpec(), 0, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK || resp.ErrKind != ErrKindInternal {
		t.Fatalf("resp = %+v, want internal error after retry exhaustion", resp)
	}
	// The daemon must still be alive and serving.
	if err := c.Ping(); err != nil {
		t.Fatalf("daemon dead after panic exhaustion: %v", err)
	}
}

func TestDaemonCorruptEntryQuarantinedAndRecomputed(t *testing.T) {
	d, c := testDaemon(t, nil)
	first := mustRun(t, c, fastSpec(), false)
	if err := d.Store().CorruptEntry(first.Key); err != nil {
		t.Fatal(err)
	}
	resp := mustRun(t, c, fastSpec(), false)
	if resp.Cached {
		t.Error("corrupt entry served from cache")
	}
	if !bytes.Equal(resp.Artifact, first.Artifact) {
		t.Fatal("recomputed artifact differs — corrupt bytes leaked through")
	}
	if d.corruptRecomputed.Load() != 1 {
		t.Errorf("corruptRecomputed = %d, want 1", d.corruptRecomputed.Load())
	}
	if n := d.Store().QuarantinedCount(); n != 1 {
		t.Errorf("quarantined entries = %d, want 1", n)
	}
	// The key is healed: next request hits the recomputed entry.
	if resp := mustRun(t, c, fastSpec(), false); !resp.Cached {
		t.Error("healed key missed the cache")
	}
}

func TestDaemonStoreReadFailureRetriedToCacheHit(t *testing.T) {
	d, c := testDaemon(t, func(cfg *Config) { cfg.Inject.StoreFailReadEvery = 2 })
	mustRun(t, c, fastSpec(), false) // get#1 miss, computed, stored
	resp := mustRun(t, c, fastSpec(), false)
	if !resp.Cached {
		t.Error("read-failure retry did not reach the cache hit")
	}
	if d.retries.Load() == 0 {
		t.Error("no retry recorded for the injected store read failure")
	}
}

func TestDaemonOverloadFloodShedsWithTypedErrors(t *testing.T) {
	d, c := testDaemon(t, func(cfg *Config) {
		cfg.MaxInflight = 1
		cfg.QueueBound = 1
		cfg.PreviewWindowMs = 0.5
	})
	const flood = 8
	var wg sync.WaitGroup
	var mu sync.Mutex
	var ok, degraded, overload int
	for i := 0; i < flood; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := c.Run(slowSpec(20), 0, true, false)
			if err != nil {
				t.Errorf("transport error under flood: %v", err)
				return
			}
			mu.Lock()
			defer mu.Unlock()
			switch {
			case resp.OK && resp.Degraded:
				degraded++
			case resp.OK:
				ok++
			case resp.ErrKind == ErrKindOverload:
				overload++
			default:
				t.Errorf("untyped rejection under flood: %q %q", resp.ErrKind, resp.Err)
			}
		}()
	}
	wg.Wait()
	if ok == 0 || overload == 0 {
		t.Errorf("flood outcomes ok=%d degraded=%d overload=%d; want served and shed both > 0",
			ok, degraded, overload)
	}
	if ok+degraded+overload != flood {
		t.Errorf("outcomes don't add up: %d+%d+%d != %d", ok, degraded, overload, flood)
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("daemon dead after flood: %v", err)
	}
	if got := int(d.overloads.Load()); got != overload {
		t.Errorf("daemon.overloads = %d, clients saw %d", got, overload)
	}
}

func TestDaemonDegradedPreviewUnderOverload(t *testing.T) {
	d, c := testDaemon(t, func(cfg *Config) {
		cfg.MaxInflight = 1
		cfg.QueueBound = 1
		cfg.PreviewWindowMs = 0.5
	})
	// Saturate the single execution slot and the single admission seat
	// with slow runs, then probe: the ladder must serve a preview.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.Run(slowSpec(50), 0, true, true)
		}()
	}
	// Wait until the daemon itself reports slot + seat both occupied —
	// a fixed sleep races request arrival on a loaded host.
	deadline := time.Now().Add(10 * time.Second)
	for !(len(d.sem) == 1 && d.waiters.Load() >= 1) {
		if time.Now().After(deadline) {
			t.Fatal("flood never saturated the daemon")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// NoCache keeps the probe on the admission path (a cache hit would
	// bypass the ladder); past the queue bound it must shed to a preview.
	resp, err := c.Run(slowSpec(50), 0, true, false)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if !resp.OK || !resp.Degraded {
		t.Errorf("probe past the queue bound = %+v, want degraded preview", resp)
	}
}

func TestDaemonClientDisconnectCancelsRun(t *testing.T) {
	d, c := testDaemon(t, nil)
	conn, err := net.Dial("unix", c.Socket)
	if err != nil {
		t.Fatal(err)
	}
	req := Request{Op: "run", Spec: slowSpec(100), NoCache: true}
	if err := json.NewEncoder(conn).Encode(req); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let the run start
	conn.Close()                      // client dies mid-run

	deadline := time.Now().Add(15 * time.Second)
	for d.canceled.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("disconnect never cancelled the run")
		}
		time.Sleep(20 * time.Millisecond)
	}
	// Daemon healthy, farm drained of the abandoned request's points.
	if err := c.Ping(); err != nil {
		t.Fatalf("daemon dead after disconnect: %v", err)
	}
	for d.farm.QueueDepth() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("abandoned points still queued: %d", d.farm.QueueDepth())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestDaemonDeadlineIsTyped(t *testing.T) {
	_, c := testDaemon(t, nil)
	resp, err := c.Run(slowSpec(100), time.Millisecond, true, true)
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK || resp.ErrKind != ErrKindDeadline {
		t.Fatalf("resp = %+v, want typed deadline error", resp)
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("daemon dead after deadline: %v", err)
	}
}

func TestDaemonSlowClientIsBounded(t *testing.T) {
	_, c := testDaemon(t, func(cfg *Config) { cfg.IOTimeout = 100 * time.Millisecond })
	conn, err := net.Dial("unix", c.Socket)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Send nothing: the daemon's read bound must close us out instead of
	// pinning a handler goroutine forever.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 512)
	if _, err := conn.Read(buf); err == nil {
		// A bad_request response is also acceptable; either way the
		// connection terminates promptly.
		conn.Read(buf)
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("daemon wedged by slow client: %v", err)
	}
}

func TestDaemonBadRequestsAreTyped(t *testing.T) {
	_, c := testDaemon(t, nil)
	for name, spec := range map[string]RunSpec{
		"unknown-tool":       {Tool: "frobnicate"},
		"unknown-experiment": {Tool: "reproduce", Experiments: "fig99"},
		"unknown-scenario":   {Tool: "chaosbench", Scenarios: "nope"},
	} {
		resp, err := c.Run(spec, 0, false, false)
		if err != nil {
			t.Fatal(err)
		}
		if resp.OK || resp.ErrKind != ErrKindBadRequest {
			t.Errorf("%s: resp = %+v, want bad_request", name, resp)
		}
	}
	// Protocol garbage gets a typed response too.
	conn, err := net.Dial("unix", c.Socket)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintln(conn, "this is not json")
	var resp Response
	if err := json.NewDecoder(conn).Decode(&resp); err != nil {
		t.Fatalf("no response to garbage: %v", err)
	}
	if resp.OK || resp.ErrKind != ErrKindBadRequest {
		t.Errorf("garbage: resp = %+v, want bad_request", resp)
	}
}

func TestDaemonGracefulDrainCompletesInflight(t *testing.T) {
	dir, err := os.MkdirTemp("", "simd")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)
	d, err := New(Config{
		Socket: dir + "/d.sock", StoreDir: dir + "/store",
		Parallel: 2, RetryBase: time.Millisecond, Fingerprint: "test",
	})
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- d.Serve() }()
	c := &Client{Socket: dir + "/d.sock"}
	if err := c.WaitReady(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	respc := make(chan *Response, 1)
	go func() {
		resp, err := c.Run(slowSpec(100), 0, true, true)
		if err != nil {
			t.Errorf("in-flight request failed during drain: %v", err)
			respc <- nil
			return
		}
		respc <- resp
	}()
	time.Sleep(100 * time.Millisecond) // the run is in flight
	d.Shutdown()                       // SIGTERM path

	if err := <-serveDone; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	resp := <-respc
	if resp == nil || !resp.OK {
		t.Fatalf("in-flight request not completed by drain: %+v", resp)
	}
	// After the drain the socket is gone: new clients are refused.
	if err := c.Ping(); err == nil {
		t.Error("daemon still serving after Shutdown")
	}
}

func TestDaemonHealthSurface(t *testing.T) {
	_, c := testDaemon(t, nil)
	mustRun(t, c, fastSpec(), false)
	mustRun(t, c, fastSpec(), false)
	h, err := c.Health()
	if err != nil {
		t.Fatal(err)
	}
	if h.PID != os.Getpid() {
		t.Errorf("health PID = %d, want %d", h.PID, os.Getpid())
	}
	m := h.Metrics.Counters
	if m["daemon.runs"] != 1 || m["daemon.cache_hits"] != 1 {
		t.Errorf("daemon.runs=%d daemon.cache_hits=%d, want 1/1",
			m["daemon.runs"], m["daemon.cache_hits"])
	}
	if m["farm.executed"] == 0 {
		t.Error("farm.* metrics missing from health surface")
	}
	if h.Store.Puts != 1 || h.Store.Hits != 1 {
		t.Errorf("store stats = %+v, want 1 put 1 hit", h.Store)
	}
}
