package daemon

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bench"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/store"
)

// Inject are the daemon's chaos knobs (cmd/simd -inject, chaos_test.go).
// All zero in production.
type Inject struct {
	// PanicEvery makes every Nth execution panic at start (recovered by
	// the per-request panic barrier, then retried).
	PanicEvery int
	// StoreCorruptEvery / StoreFailReadEvery forward to the store's
	// fault-injection knobs.
	StoreCorruptEvery  int
	StoreFailReadEvery int
}

// Config parameterizes a daemon.
type Config struct {
	// Socket is the unix socket path to listen on.
	Socket string
	// StoreDir roots the result store.
	StoreDir string
	// Parallel sizes the warm farm (<=0 = GOMAXPROCS).
	Parallel int
	// MaxInflight bounds concurrently executing run requests (default 2);
	// QueueBound bounds requests waiting for admission (default 8) —
	// beyond it the degradation ladder engages immediately.
	MaxInflight int
	QueueBound  int
	// PreviewWindowMs is the reduced window of the degraded rung
	// (default 0.5).
	PreviewWindowMs float64
	// Retries bounds re-attempts after transient failures (default 2,
	// i.e. up to 3 attempts); RetryBase is the first backoff (default
	// 50ms), doubled per attempt with up to 50% jitter.
	Retries   int
	RetryBase time.Duration
	// DefaultDeadline bounds requests that carry none (default 10min).
	DefaultDeadline time.Duration
	// IOTimeout bounds reading the request and writing the response, so
	// a stalled client cannot pin a handler goroutine (default 30s).
	IOTimeout time.Duration
	// Fingerprint overrides the code fingerprint in store keys (tests;
	// default BinaryFingerprint()).
	Fingerprint string
	Inject      Inject
	// Logf, when set, receives one line per notable event.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.MaxInflight <= 0 {
		c.MaxInflight = 2
	}
	if c.QueueBound <= 0 {
		c.QueueBound = 8
	}
	if c.PreviewWindowMs <= 0 {
		c.PreviewWindowMs = 0.5
	}
	if c.Retries < 0 {
		c.Retries = 0
	} else if c.Retries == 0 {
		c.Retries = 2
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 50 * time.Millisecond
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 10 * time.Minute
	}
	if c.IOTimeout <= 0 {
		c.IOTimeout = 30 * time.Second
	}
	if c.Fingerprint == "" {
		c.Fingerprint = store.BinaryFingerprint()
	}
	return c
}

// Daemon is one running service instance.
type Daemon struct {
	cfg  Config
	farm *bench.Farm
	st   *store.Store
	ln   net.Listener

	sem        chan struct{} // admission: executing run requests
	previewSem chan struct{} // the single degraded-preview slot
	waiters    atomic.Int64

	started  time.Time
	draining atomic.Bool
	conns    sync.WaitGroup

	// daemon.* counters (health endpoint / obs.PublishDaemon)
	requests, runs, cacheHits    atomic.Uint64
	degraded, overloads          atomic.Uint64
	retries, panicsRecovered     atomic.Uint64
	canceled, deadlines          atomic.Uint64
	badRequests, internalErrors  atomic.Uint64
	corruptRecomputed, execCount atomic.Uint64
}

// New opens the store and socket and starts the warm farm. Call Serve to
// accept requests and Shutdown to drain.
func New(cfg Config) (*Daemon, error) {
	cfg = cfg.withDefaults()
	st, err := store.Open(cfg.StoreDir)
	if err != nil {
		return nil, err
	}
	st.CorruptEvery = cfg.Inject.StoreCorruptEvery
	st.FailReadEvery = cfg.Inject.StoreFailReadEvery
	os.Remove(cfg.Socket) // a previous instance's stale socket
	ln, err := net.Listen("unix", cfg.Socket)
	if err != nil {
		return nil, fmt.Errorf("daemon: listen: %w", err)
	}
	d := &Daemon{
		cfg:        cfg,
		farm:       bench.NewFarm(cfg.Parallel),
		st:         st,
		ln:         ln,
		sem:        make(chan struct{}, cfg.MaxInflight),
		previewSem: make(chan struct{}, 1),
		started:    time.Now(),
	}
	return d, nil
}

// Store exposes the result store (chaos tests corrupt entries through it).
func (d *Daemon) Store() *store.Store { return d.st }

func (d *Daemon) logf(format string, args ...any) {
	if d.cfg.Logf != nil {
		d.cfg.Logf(format, args...)
	}
}

// Serve accepts connections until Shutdown closes the listener. Each
// connection is one request; handler goroutines are tracked so Shutdown
// can drain them.
func (d *Daemon) Serve() error {
	for {
		conn, err := d.ln.Accept()
		if err != nil {
			if d.draining.Load() || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("daemon: accept: %w", err)
		}
		d.conns.Add(1)
		go func() {
			defer d.conns.Done()
			d.handle(conn)
		}()
	}
}

// Shutdown is the graceful SIGTERM path: stop accepting, let every
// in-flight request complete and flush its response, then stop the farm.
func (d *Daemon) Shutdown() {
	if d.draining.Swap(true) {
		return
	}
	d.ln.Close()
	d.conns.Wait()
	d.farm.Close()
	os.Remove(d.cfg.Socket)
	d.logf("daemon: drained and stopped")
}

// handle serves one connection = one request.
func (d *Daemon) handle(conn net.Conn) {
	defer conn.Close()
	d.requests.Add(1)

	// A stalled or malicious client may never send a full request: bound
	// the read so the handler goroutine cannot be pinned.
	conn.SetReadDeadline(time.Now().Add(d.cfg.IOTimeout))
	dec := json.NewDecoder(conn)
	var req Request
	if err := dec.Decode(&req); err != nil {
		d.badRequests.Add(1)
		d.respond(conn, &Response{OK: false, Err: fmt.Sprintf("bad request: %v", err), ErrKind: ErrKindBadRequest})
		return
	}
	conn.SetReadDeadline(time.Time{})

	switch req.Op {
	case "ping":
		d.respond(conn, &Response{OK: true})
	case "health":
		d.respond(conn, &Response{OK: true, Health: d.health()})
	case "run":
		d.respond(conn, d.serveRun(conn, req))
	default:
		d.badRequests.Add(1)
		d.respond(conn, &Response{OK: false, Err: fmt.Sprintf("unknown op %q", req.Op), ErrKind: ErrKindBadRequest})
	}
}

// respond writes the single response under the slow-client write bound.
func (d *Daemon) respond(conn net.Conn, resp *Response) {
	conn.SetWriteDeadline(time.Now().Add(d.cfg.IOTimeout))
	if err := json.NewEncoder(conn).Encode(resp); err != nil {
		d.logf("daemon: response write: %v", err)
	}
}

// serveRun is the full run path: normalize → memoized artifact →
// admission → compute (with retry) → store → respond.
func (d *Daemon) serveRun(conn net.Conn, req Request) *Response {
	spec, err := req.Spec.Normalize()
	if err != nil {
		d.badRequests.Add(1)
		return &Response{OK: false, Err: err.Error(), ErrKind: ErrKindBadRequest}
	}

	deadline := d.cfg.DefaultDeadline
	if req.DeadlineMs > 0 {
		deadline = time.Duration(req.DeadlineMs) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()
	// One request per connection means any further read activity is the
	// client vanishing (EOF/reset) or violating the protocol; both cancel
	// the request so its queued sweep points are abandoned.
	go func() {
		var b [1]byte
		conn.Read(b[:])
		cancel()
	}()

	key, err := spec.Key(d.cfg.Fingerprint)
	if err != nil {
		d.internalErrors.Add(1)
		return &Response{OK: false, Err: err.Error(), ErrKind: ErrKindInternal}
	}

	// Rung 1 of the ladder: the memoized artifact. A corrupt entry has
	// been quarantined by the store; recompute below re-heals the key.
	if !req.NoCache {
		if payload, err := d.storeGet(ctx, key); err == nil {
			d.cacheHits.Add(1)
			return &Response{OK: true, Cached: true, Key: key, Artifact: payload}
		} else if errors.Is(err, store.ErrCorrupt) {
			d.corruptRecomputed.Add(1)
			d.logf("daemon: corrupt entry %s quarantined; recomputing", key[:8])
		}
	}

	// Admission: bounded wait for an execution slot. Past the queue
	// bound, shed immediately down the ladder.
	if int(d.waiters.Load()) >= d.cfg.QueueBound {
		return d.shed(ctx, req, spec)
	}
	d.waiters.Add(1)
	select {
	case d.sem <- struct{}{}:
		d.waiters.Add(-1)
	case <-ctx.Done():
		d.waiters.Add(-1)
		return d.ctxResponse(ctx)
	}
	defer func() { <-d.sem }()

	if ctx.Err() != nil {
		return d.ctxResponse(ctx)
	}
	return d.computeAndStore(ctx, spec, key, false)
}

// shed is rungs 2–3 of the degradation ladder: a reduced-window preview
// on its own single slot, else a typed overload rejection.
func (d *Daemon) shed(ctx context.Context, req Request, spec RunSpec) *Response {
	overload := &Response{OK: false, ErrKind: ErrKindOverload,
		Err: fmt.Sprintf("overloaded: %d executing, %d waiting", len(d.sem), d.waiters.Load())}
	if req.NoDegrade || !spec.SupportsPreview() || spec.WindowMs <= d.cfg.PreviewWindowMs {
		d.overloads.Add(1)
		return overload
	}
	preview := spec
	preview.WindowMs = d.cfg.PreviewWindowMs
	key, err := preview.Key(d.cfg.Fingerprint)
	if err != nil {
		d.overloads.Add(1)
		return overload
	}
	// A memoized preview is free — serve it without even taking the slot.
	if payload, err := d.storeGet(ctx, key); err == nil {
		d.cacheHits.Add(1)
		d.degraded.Add(1)
		return &Response{OK: true, Cached: true, Degraded: true, Key: key, Artifact: payload}
	}
	select {
	case d.previewSem <- struct{}{}:
		defer func() { <-d.previewSem }()
	default:
		d.overloads.Add(1)
		return overload
	}
	resp := d.computeAndStore(ctx, preview, key, true)
	if resp.OK {
		d.degraded.Add(1)
	}
	return resp
}

// computeAndStore executes the spec with bounded retry, memoizes the
// artifact, and builds the response.
func (d *Daemon) computeAndStore(ctx context.Context, spec RunSpec, key string, degraded bool) *Response {
	art, err := d.computeWithRetry(ctx, spec)
	if err != nil {
		if ctx.Err() != nil {
			return d.ctxResponse(ctx)
		}
		d.internalErrors.Add(1)
		return &Response{OK: false, Err: err.Error(), ErrKind: ErrKindInternal}
	}
	var buf bytes.Buffer
	if err := art.Encode(&buf); err != nil {
		d.internalErrors.Add(1)
		return &Response{OK: false, Err: err.Error(), ErrKind: ErrKindInternal}
	}
	payload := buf.Bytes()
	if err := d.st.Put(key, payload); err != nil {
		// A failed Put degrades the cache, not the response.
		d.logf("daemon: store put %s: %v", key[:8], err)
	}
	d.runs.Add(1)
	return &Response{OK: true, Degraded: degraded, Key: key, Artifact: payload}
}

// recoveredPanic marks a panic caught by the per-request barrier (as
// opposed to one recovered inside the farm, which surfaces as a
// bench.IsPanic error).
type recoveredPanic struct{ msg string }

func (e *recoveredPanic) Error() string { return e.msg }

// computeWithRetry runs the spec, retrying transient failures — worker
// panics (farm-recovered or barrier-recovered) and store I/O errors —
// with exponential backoff plus jitter, bounded by cfg.Retries.
func (d *Daemon) computeWithRetry(ctx context.Context, spec RunSpec) (art *report.Artifact, err error) {
	var lastErr error
	for attempt := 0; attempt <= d.cfg.Retries; attempt++ {
		if attempt > 0 {
			d.retries.Add(1)
			backoff := d.cfg.RetryBase << (attempt - 1)
			backoff += time.Duration(rand.Int63n(int64(backoff)/2 + 1))
			d.logf("daemon: retry %d/%d for %s after %v: %v",
				attempt, d.cfg.Retries, spec.Tool, backoff, lastErr)
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		art, err := d.execProtected(ctx, spec)
		if err == nil {
			return art, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		lastErr = err
		if !retryable(err) {
			return nil, err
		}
	}
	return nil, fmt.Errorf("daemon: giving up after %d attempts: %w", d.cfg.Retries+1, lastErr)
}

func retryable(err error) bool {
	if bench.IsPanic(err) {
		return true
	}
	var rp *recoveredPanic
	if errors.As(err, &rp) {
		return true
	}
	return strings.Contains(err.Error(), "store:")
}

// execProtected is the per-request panic barrier: a panic anywhere in
// the coordinator path becomes an error on this request, never a daemon
// exit. Farm-task panics are already converted by the farm itself.
func (d *Daemon) execProtected(ctx context.Context, spec RunSpec) (art *report.Artifact, err error) {
	defer func() {
		if r := recover(); r != nil {
			d.panicsRecovered.Add(1)
			err = &recoveredPanic{msg: fmt.Sprintf("daemon: recovered exec panic: %v", r)}
		}
	}()
	// panic-every=1 fails every attempt (retry exhaustion); N>1 panics on
	// attempts 1, N+1, 2N+1, ... so the first retry of a request succeeds.
	if n := d.cfg.Inject.PanicEvery; n > 0 {
		if c := d.execCount.Add(1); n == 1 || c%uint64(n) == 1 {
			panic("daemon: injected exec panic")
		}
	}
	return d.exec(ctx, spec)
}

// storeGet reads a key with a short bounded retry over transient I/O
// errors (miss and corruption are definitive, not retried).
func (d *Daemon) storeGet(ctx context.Context, key string) ([]byte, error) {
	var lastErr error
	for attempt := 0; attempt <= d.cfg.Retries; attempt++ {
		payload, err := d.st.Get(key)
		if err == nil {
			return payload, nil
		}
		if errors.Is(err, store.ErrMiss) || errors.Is(err, store.ErrCorrupt) {
			return nil, err
		}
		lastErr = err
		d.retries.Add(1)
		backoff := d.cfg.RetryBase << attempt
		backoff += time.Duration(rand.Int63n(int64(backoff)/2 + 1))
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return nil, lastErr
}

// ctxResponse maps a finished context to its typed response.
func (d *Daemon) ctxResponse(ctx context.Context) *Response {
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		d.deadlines.Add(1)
		return &Response{OK: false, Err: "deadline exceeded", ErrKind: ErrKindDeadline}
	}
	d.canceled.Add(1)
	return &Response{OK: false, Err: "canceled (client gone)", ErrKind: ErrKindCanceled}
}

// health snapshots liveness and the daemon.*/farm.* metric surface.
func (d *Daemon) health() *Health {
	r := obs.NewRegistry()
	obs.PublishDaemon(r, d.stats())
	d.farm.Publish(r)
	return &Health{
		PID:      os.Getpid(),
		UptimeMs: time.Since(d.started).Milliseconds(),
		Draining: d.draining.Load(),
		Metrics:  r.Snapshot(),
		Store:    d.st.Stats(),
	}
}

// stats assembles the daemon's obs.DaemonStats snapshot.
func (d *Daemon) stats() obs.DaemonStats {
	ss := d.st.Stats()
	return obs.DaemonStats{
		Requests:          d.requests.Load(),
		Runs:              d.runs.Load(),
		CacheHits:         d.cacheHits.Load(),
		Degraded:          d.degraded.Load(),
		Overloads:         d.overloads.Load(),
		Retries:           d.retries.Load(),
		PanicsRecovered:   d.panicsRecovered.Load(),
		Canceled:          d.canceled.Load(),
		Deadlines:         d.deadlines.Load(),
		BadRequests:       d.badRequests.Load(),
		InternalErrors:    d.internalErrors.Load(),
		CorruptRecomputed: d.corruptRecomputed.Load(),
		Executing:         len(d.sem),
		Waiting:           int(d.waiters.Load()),
		StoreHits:         ss.Hits,
		StoreMisses:       ss.Misses,
		StorePuts:         ss.Puts,
		StoreCorrupt:      ss.Corrupt,
		StoreReadErrors:   ss.ReadErrors,
		UptimeMs:          time.Since(d.started).Milliseconds(),
	}
}
