// Package daemon is the always-on simulation service behind cmd/simd: it
// keeps one warm bench.Farm across requests, serves run requests from
// concurrent clients over a JSON-over-unix-socket protocol, and memoizes
// (tool, seed, normalized config, code-fingerprint) → artifact in a
// crash-safe internal/store. Robustness is the design center (see
// doc/DAEMON.md): every request is deadline-bounded and cancellable,
// admission control bounds the queue over the farm and sheds load down a
// degradation ladder (memoized artifact → reduced-window preview → typed
// overload), transient failures retry with exponential backoff + jitter,
// worker panics are recovered per-request, and SIGTERM drains in-flight
// requests before exit. The daemon chaos suite (chaos_test.go) injects
// panics, store corruption, disconnects and overload floods and holds
// the daemon to: never crash, never serve corrupt bytes, stay 0-drift
// with the one-shot tools.
package daemon

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/bench"
	"repro/internal/chaos"
	"repro/internal/obs"
	"repro/internal/store"
)

// Error kinds carried in Response.ErrKind so clients can react without
// string-matching messages.
const (
	ErrKindOverload   = "overload"    // admission control shed the request
	ErrKindDeadline   = "deadline"    // request deadline expired
	ErrKindCanceled   = "canceled"    // client disconnected mid-run
	ErrKindBadRequest = "bad_request" // malformed/unknown spec
	ErrKindInternal   = "internal"    // retries exhausted or unexpected failure
)

// Tools the daemon can run. Each replicates the artifact construction of
// the same-named cmd/* one-shot tool exactly.
var Tools = []string{"reproduce", "chaosbench", "attackbench", "tenantbench"}

// RunSpec names one deterministic benchmark run. The normalized spec
// (Normalize) plus the serving binary's fingerprint is the store key:
// everything that changes the artifact is in here, and nothing else.
type RunSpec struct {
	Tool string `json:"tool"`
	// Seed seeds chaosbench/attackbench/tenantbench (reproduce has no
	// seed; its experiments are fully determined by window/sections).
	Seed int64 `json:"seed,omitempty"`
	// WindowMs is the simulated window per data point (reproduce,
	// chaosbench; the other tools have fixed windows).
	WindowMs float64 `json:"window_ms,omitempty"`

	// reproduce
	SkipSensitivity bool   `json:"skip_sensitivity,omitempty"`
	Experiments     string `json:"experiments,omitempty"` // comma list or "all"

	// chaosbench
	Cores     int    `json:"cores,omitempty"`
	System    string `json:"system,omitempty"`
	Scenarios string `json:"scenarios,omitempty"` // comma list or "all"

	// attackbench
	Payloads string `json:"payloads,omitempty"` // comma list or "all"
	Systems  string `json:"systems,omitempty"`  // comma list or "all"

	// tenantbench
	Schemes string `json:"schemes,omitempty"` // comma list or "all"
	Attacks string `json:"attacks,omitempty"` // comma list or "all"
	Tenants string `json:"tenants,omitempty"` // comma list of counts, "" = library default
	Frames  string `json:"frames,omitempty"`  // comma list of sizes, "" = library default
}

// Request is one client message. The protocol is one request per
// connection: the client dials, sends a Request, reads one Response. A
// closed connection before the response is the cancellation signal.
type Request struct {
	Op string `json:"op"` // "run" | "health" | "ping"

	Spec RunSpec `json:"spec,omitempty"`
	// DeadlineMs bounds the run (0 = daemon default). On expiry queued
	// sweep points are abandoned and the client gets ErrKindDeadline.
	DeadlineMs int64 `json:"deadline_ms,omitempty"`
	// NoCache forces recomputation (the artifact is still stored).
	NoCache bool `json:"no_cache,omitempty"`
	// NoDegrade disables the reduced-window preview rung: under overload
	// the request is rejected rather than served degraded.
	NoDegrade bool `json:"no_degrade,omitempty"`
}

// Response is the daemon's single reply.
type Response struct {
	OK      bool   `json:"ok"`
	Err     string `json:"err,omitempty"`
	ErrKind string `json:"err_kind,omitempty"`
	// Cached is true when the artifact came out of the store; Degraded
	// when it is a reduced-window preview served under overload.
	Cached   bool   `json:"cached,omitempty"`
	Degraded bool   `json:"degraded,omitempty"`
	Key      string `json:"key,omitempty"` // store key of the artifact
	// Artifact is the raw internal/report JSON (op "run").
	Artifact []byte `json:"artifact,omitempty"`
	// Health is set for op "health".
	Health *Health `json:"health,omitempty"`
}

// Health is the watchdog surface: liveness plus the daemon.*, farm.* and
// store counters, exactly as obs publishes them.
type Health struct {
	PID      int          `json:"pid"`
	UptimeMs int64        `json:"uptime_ms"`
	Draining bool         `json:"draining"`
	Metrics  obs.Snapshot `json:"metrics"`
	Store    store.Stats  `json:"store"`
}

// keyDesc is the canonical store-key descriptor: the normalized spec and
// the code fingerprint, nothing volatile (deadline, cache flags).
type keyDesc struct {
	Fingerprint string  `json:"fingerprint"`
	Spec        RunSpec `json:"spec"`
}

// Key derives the content address for a normalized spec under a code
// fingerprint.
func (s RunSpec) Key(fingerprint string) (string, error) {
	return store.Key(keyDesc{Fingerprint: fingerprint, Spec: s})
}

// Normalize validates a spec and fills tool defaults, returning the
// canonical form under which results are memoized: two requests that
// mean the same run always normalize to the same bytes. Errors are
// ErrKindBadRequest material.
func (s RunSpec) Normalize() (RunSpec, error) {
	n := RunSpec{Tool: s.Tool}
	switch s.Tool {
	case "reproduce":
		n.WindowMs = defFloat(s.WindowMs, 10)
		n.SkipSensitivity = s.SkipSensitivity
		var err error
		if n.Experiments, err = canonExperiments(s.Experiments); err != nil {
			return n, err
		}
	case "chaosbench":
		n.Seed = defInt64(s.Seed, 1)
		n.WindowMs = defFloat(s.WindowMs, 2)
		n.Cores = defInt(s.Cores, 2)
		n.System = defStr(s.System, "strict")
		var err error
		if n.Scenarios, err = canonScenarios(s.Scenarios); err != nil {
			return n, err
		}
	case "attackbench":
		n.Seed = defInt64(s.Seed, 1)
		n.Payloads = canonList(s.Payloads)
		n.Systems = canonList(s.Systems)
	case "tenantbench":
		n.Seed = defInt64(s.Seed, 1)
		n.Schemes = canonList(s.Schemes)
		n.Attacks = canonList(s.Attacks)
		n.Tenants = canonList(s.Tenants)
		n.Frames = canonList(s.Frames)
	default:
		return n, fmt.Errorf("unknown tool %q (have %s)", s.Tool, strings.Join(Tools, ","))
	}
	return n, nil
}

// SupportsPreview reports whether the tool has a window knob the
// degradation ladder can shrink.
func (s RunSpec) SupportsPreview() bool {
	return s.Tool == "reproduce" || s.Tool == "chaosbench"
}

func defFloat(v, d float64) float64 {
	if v <= 0 {
		return d
	}
	return v
}

func defInt64(v, d int64) int64 {
	if v == 0 {
		return d
	}
	return v
}

func defInt(v, d int) int {
	if v <= 0 {
		return d
	}
	return v
}

func defStr(v, d string) string {
	if v == "" {
		return d
	}
	return v
}

// canonList canonicalizes a comma list: trimmed, deduped, sorted. "all"
// and "" both mean the library default and normalize to "all".
func canonList(s string) string {
	if s == "" || s == "all" {
		return "all"
	}
	seen := map[string]bool{}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" && !seen[part] {
			seen[part] = true
			out = append(out, part)
		}
	}
	if len(out) == 0 {
		return "all"
	}
	sort.Strings(out)
	return strings.Join(out, ",")
}

// canonExperiments canonicalizes and validates a reproduce experiment
// list against the suite (plus "table1").
func canonExperiments(s string) (string, error) {
	c := canonList(s)
	if c == "all" {
		return c, nil
	}
	known := map[string]bool{"table1": true}
	for _, sec := range bench.Suite(true) {
		known[sec.Name] = true
	}
	for _, name := range strings.Split(c, ",") {
		if !known[name] {
			return "", fmt.Errorf("unknown experiment %q", name)
		}
	}
	return c, nil
}

// canonScenarios canonicalizes and validates a chaosbench scenario list.
func canonScenarios(s string) (string, error) {
	c := canonList(s)
	if c == "all" {
		return c, nil
	}
	for _, name := range strings.Split(c, ",") {
		if _, err := chaos.Find(name); err != nil {
			return "", err
		}
	}
	return c, nil
}

// splitList expands a canonical comma list for the library configs, where
// nil means "all".
func splitList(s string) []string {
	if s == "" || s == "all" {
		return nil
	}
	return strings.Split(s, ",")
}
