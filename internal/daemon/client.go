package daemon

import (
	"encoding/json"
	"fmt"
	"net"
	"time"
)

// Client talks the one-request-per-connection protocol to a simd daemon.
// The zero value with just Socket set is usable.
type Client struct {
	// Socket is the daemon's unix socket path.
	Socket string
	// DialTimeout bounds connection establishment (default 5s).
	DialTimeout time.Duration
}

// Do sends one request and reads the single response. Closing the
// connection early (client death) is the daemon's cancellation signal,
// so callers that want to abandon a run can simply stop waiting.
func (c *Client) Do(req Request) (*Response, error) {
	dt := c.DialTimeout
	if dt <= 0 {
		dt = 5 * time.Second
	}
	conn, err := net.DialTimeout("unix", c.Socket, dt)
	if err != nil {
		return nil, fmt.Errorf("daemon client: dial %s: %w", c.Socket, err)
	}
	defer conn.Close()
	if err := json.NewEncoder(conn).Encode(req); err != nil {
		return nil, fmt.Errorf("daemon client: send: %w", err)
	}
	var resp Response
	if err := json.NewDecoder(conn).Decode(&resp); err != nil {
		return nil, fmt.Errorf("daemon client: read response: %w", err)
	}
	return &resp, nil
}

// Run submits a run request for spec.
func (c *Client) Run(spec RunSpec, deadline time.Duration, noCache, noDegrade bool) (*Response, error) {
	return c.Do(Request{
		Op:         "run",
		Spec:       spec,
		DeadlineMs: deadline.Milliseconds(),
		NoCache:    noCache,
		NoDegrade:  noDegrade,
	})
}

// Ping checks liveness.
func (c *Client) Ping() error {
	resp, err := c.Do(Request{Op: "ping"})
	if err != nil {
		return err
	}
	if !resp.OK {
		return fmt.Errorf("daemon client: ping: %s", resp.Err)
	}
	return nil
}

// Health fetches the watchdog surface.
func (c *Client) Health() (*Health, error) {
	resp, err := c.Do(Request{Op: "health"})
	if err != nil {
		return nil, err
	}
	if !resp.OK || resp.Health == nil {
		return nil, fmt.Errorf("daemon client: health: %s", resp.Err)
	}
	return resp.Health, nil
}

// WaitReady polls Ping until the daemon answers or the timeout expires —
// the startup handshake for scripts that just forked simd.
func (c *Client) WaitReady(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if err := c.Ping(); err == nil {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("daemon client: %s not ready after %v", c.Socket, timeout)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
