package mem_test

import (
	"bytes"
	"testing"

	"repro/internal/dmafuzz"
	"repro/internal/mem"
)

// FuzzAccess drives random alloc/free/read/write/copy sequences through
// the simulated physical memory and checks every byte against a plain
// []byte model: writes round-trip, never-written pages read as zeros,
// accesses to unallocated frames fail without partial effects, and
// freeing everything returns the in-use accounting to baseline.
func FuzzAccess(f *testing.F) {
	f.Add(dmafuzz.Generate(1, 64).Encode())
	f.Add(dmafuzz.Generate(3, 128).Encode())
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 250, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		m := mem.New(2)
		baseline := []uint64{m.InUseBytes(0), m.InUseBytes(1)}

		type region struct {
			base  mem.Phys
			pages int
			model []byte
		}
		var regions []region
		pick := func(b byte) *region {
			if len(regions) == 0 {
				return nil
			}
			return &regions[int(b)%len(regions)]
		}

		for i := 0; i+3 < len(data); i += 4 {
			op, a, b, c := data[i]%6, data[i+1], data[i+2], data[i+3]
			switch op {
			case 0: // alloc 1..4 pages on domain a%2
				if len(regions) >= 16 {
					continue
				}
				pages := int(b)%4 + 1
				p, err := m.AllocPages(int(a)%2, pages)
				if err != nil {
					t.Fatalf("alloc %d pages: %v", pages, err)
				}
				regions = append(regions, region{base: p, pages: pages, model: make([]byte, pages*mem.PageSize)})
			case 1: // free a region
				if r := pick(a); r != nil {
					if err := m.FreePages(r.base, r.pages); err != nil {
						t.Fatalf("free: %v", err)
					}
					idx := int(a) % len(regions)
					regions = append(regions[:idx], regions[idx+1:]...)
				}
			case 2: // write a span
				r := pick(a)
				if r == nil {
					continue
				}
				off := int(b) * len(r.model) / 256
				n := int(c)%256 + 1
				if off+n > len(r.model) {
					n = len(r.model) - off
				}
				if n <= 0 {
					continue
				}
				span := make([]byte, n)
				for j := range span {
					span[j] = c ^ byte(j)
				}
				if err := m.Write(r.base+mem.Phys(off), span); err != nil {
					t.Fatalf("write: %v", err)
				}
				copy(r.model[off:off+n], span)
			case 3: // read a span and compare to the model
				r := pick(a)
				if r == nil {
					continue
				}
				off := int(b) * len(r.model) / 256
				n := int(c)%512 + 1
				if off+n > len(r.model) {
					n = len(r.model) - off
				}
				if n <= 0 {
					continue
				}
				got := make([]byte, n)
				if err := m.Read(r.base+mem.Phys(off), got); err != nil {
					t.Fatalf("read: %v", err)
				}
				if !bytes.Equal(got, r.model[off:off+n]) {
					t.Fatalf("read mismatch at region off %d len %d", off, n)
				}
			case 4: // copy between two regions (non-overlapping by construction)
				src, dst := pick(a), pick(b)
				if src == nil || dst == nil || src.base == dst.base {
					continue
				}
				n := int(c)%256 + 1
				if n > len(src.model) {
					n = len(src.model)
				}
				if n > len(dst.model) {
					n = len(dst.model)
				}
				if err := m.Copy(dst.base, src.base, n); err != nil {
					t.Fatalf("copy: %v", err)
				}
				copy(dst.model[:n], src.model[:n])
			case 5: // access far outside any allocation must fail cleanly
				bogus := mem.Phys(1) << 40
				if err := m.Write(bogus, []byte{1}); err == nil {
					t.Fatal("write to unallocated frame succeeded")
				}
				if err := m.Read(bogus, make([]byte, 8)); err == nil {
					t.Fatal("read of unallocated frame succeeded")
				}
			}
		}

		// Verify every region once more, then tear down to baseline.
		for i := range regions {
			r := &regions[i]
			got := make([]byte, len(r.model))
			if err := m.Read(r.base, got); err != nil {
				t.Fatalf("final read: %v", err)
			}
			if !bytes.Equal(got, r.model) {
				t.Fatal("final read mismatch")
			}
			if err := m.FreePages(r.base, r.pages); err != nil {
				t.Fatalf("final free: %v", err)
			}
		}
		for d, want := range baseline {
			if got := m.InUseBytes(d); got != want {
				t.Fatalf("domain %d: %d bytes in use after teardown, baseline %d", d, got, want)
			}
		}
	})
}
