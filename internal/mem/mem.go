// Package mem simulates host physical memory: a sparse page store with a
// NUMA-aware page-frame allocator and a slab-style kmalloc that co-locates
// small allocations on shared pages — the property that makes sub-page DMA
// exposure possible (paper §4).
package mem

import (
	"fmt"
)

const (
	// PageSize is the 4 KiB page size used throughout (x86, and the
	// granularity of IOMMU protection in the paper).
	PageSize = 4096
	// PageShift is log2(PageSize).
	PageShift = 12
)

// Phys is a simulated physical address.
type Phys uint64

// PFN returns the page frame number containing the address.
func (p Phys) PFN() uint64 { return uint64(p) >> PageShift }

// Offset returns the offset of the address within its page.
func (p Phys) Offset() int { return int(uint64(p) & (PageSize - 1)) }

// PageBase returns the address of the start of the containing page.
func (p Phys) PageBase() Phys { return Phys(p.PFN() << PageShift) }

// Buf describes a physical buffer (address + length).
type Buf struct {
	Addr Phys
	Size int
}

// End returns the first address past the buffer.
func (b Buf) End() Phys { return b.Addr + Phys(b.Size) }

// domainSpan is the number of page frames reserved per NUMA domain
// (2^22 frames = 16 GiB of address space per domain).
const domainSpan = 1 << 22

// Page frames live in fixed-size chunks materialized on demand, so the
// store is flat (two array indexings per lookup, no hashing), frame
// pointers are stable, and the chunks — pure byte arrays — are invisible
// to the garbage collector. Allocation liveness is tracked in a separate
// bitmap, not in the frames: AllocPages/FreePages never touch a chunk, so
// a chunk only exists once a page in it is actually written. Pages that
// are allocated, DMA-mapped and freed without a payload byte ever written
// — the majority in the simulated workloads — cost no frame storage and
// no zeroing at all; reads from them are served as zeros. The previous
// map[uint64]*page store allocated a fresh GC-tracked 4 KiB object on
// every AllocPages, which dominated benchmark wall clock.
const (
	chunkShift  = 8 // 256 frames (1 MiB of data) per chunk
	chunkFrames = 1 << chunkShift
)

type frame struct {
	data [PageSize]byte
	// dirty is the high-water mark of bytes ever written to the frame
	// since it was last zeroed. Recycling a freed frame only needs to
	// clear data[:dirty]; bytes beyond the watermark are zero by
	// invariant.
	dirty int32
}

// wrote widens the dirty watermark after a write of [po, po+n).
func (f *frame) wrote(po, n int) {
	if end := int32(po + n); end > f.dirty {
		f.dirty = end
	}
}

type frameChunk [chunkFrames]frame

type domainStore struct {
	chunks   []*frameChunk
	usedBits []uint64 // allocation bitmap, one bit per frame
	free     []uint64 // recyclable single frames (PFNs), LIFO
	nextPFN  uint64
	inUse    uint64 // allocated frames
}

func (ds *domainStore) isUsed(idx uint64) bool {
	w := idx >> 6
	return w < uint64(len(ds.usedBits)) && ds.usedBits[w]&(1<<(idx&63)) != 0
}

func (ds *domainStore) setUsed(idx uint64) {
	w := idx >> 6
	for uint64(len(ds.usedBits)) <= w {
		ds.usedBits = append(ds.usedBits, 0)
	}
	ds.usedBits[w] |= 1 << (idx & 63)
}

func (ds *domainStore) clearUsed(idx uint64) {
	ds.usedBits[idx>>6] &^= 1 << (idx & 63)
}

// frame returns the frame at the domain-relative index, or nil if its chunk
// was never materialized (the page, if allocated, reads as zeros).
func (ds *domainStore) frame(idx uint64) *frame {
	ci := idx >> chunkShift
	if ci >= uint64(len(ds.chunks)) || ds.chunks[ci] == nil {
		return nil
	}
	return &ds.chunks[ci][idx&(chunkFrames-1)]
}

// ensure returns the frame at idx, materializing its chunk if needed.
func (ds *domainStore) ensure(idx uint64) *frame {
	ci := idx >> chunkShift
	for uint64(len(ds.chunks)) <= ci {
		ds.chunks = append(ds.chunks, nil)
	}
	if ds.chunks[ci] == nil {
		ds.chunks[ci] = new(frameChunk)
	}
	return &ds.chunks[ci][idx&(chunkFrames-1)]
}

// Memory is the simulated physical memory of one machine.
type Memory struct {
	domains int
	doms    []domainStore

	// AllocFail, when non-nil, is consulted before every AllocPages call;
	// returning true makes the allocation fail with ErrInjectedAllocFail.
	// It is a fault-injection hook (internal/dmafuzz) for exercising
	// allocation-failure unwind paths; production code never sets it.
	AllocFail func(domain, pages int) bool

	// One-entry translation cache for access(): DMA copies touch the same
	// page repeatedly (a 64 KiB transfer is 16 page-sized accesses, rings
	// poll the same descriptor page), so remembering the last frame skips
	// the domain/chunk indexing on the hottest path. Only materialized
	// frames are cached.
	cachePFN uint64
	cacheF   *frame
}

// New creates a machine memory with the given number of NUMA domains.
func New(domains int) *Memory {
	if domains < 1 {
		domains = 1
	}
	m := &Memory{
		domains: domains,
		doms:    make([]domainStore, domains),
	}
	for d := 0; d < domains; d++ {
		// PFN 0 is never allocated so that Phys(0) can mean "nil".
		m.doms[d].nextPFN = uint64(d)*domainSpan + 1
	}
	return m
}

// Domains returns the number of NUMA domains.
func (m *Memory) Domains() int { return m.domains }

// DomainOf returns the NUMA domain an address belongs to.
func (m *Memory) DomainOf(p Phys) int {
	return int(p.PFN() / domainSpan)
}

// store returns the domain store holding pfn and the domain-relative index.
func (m *Memory) store(pfn uint64) (*domainStore, uint64, bool) {
	d := pfn / domainSpan
	if d >= uint64(m.domains) {
		return nil, 0, false
	}
	return &m.doms[d], pfn % domainSpan, true
}

// allocated reports whether pfn is an allocated page.
func (m *Memory) allocated(pfn uint64) bool {
	ds, rel, ok := m.store(pfn)
	return ok && ds.isUsed(rel)
}

// peek returns the materialized frame for pfn, or nil — either because the
// page is unallocated or because it was never written (check allocated()
// to tell the two apart; in the latter case the page reads as zeros).
func (m *Memory) peek(pfn uint64) *frame {
	ds, rel, ok := m.store(pfn)
	if !ok || !ds.isUsed(rel) {
		return nil
	}
	return ds.frame(rel)
}

// mut returns the frame for pfn for writing, materializing its chunk.
// ok is false if the page is unallocated.
func (m *Memory) mut(pfn uint64) (*frame, bool) {
	ds, rel, ok := m.store(pfn)
	if !ok || !ds.isUsed(rel) {
		return nil, false
	}
	return ds.ensure(rel), true
}

// ErrInjectedAllocFail is the sentinel returned when the AllocFail hook
// vetoes an allocation.
var ErrInjectedAllocFail = fmt.Errorf("mem: injected allocation failure")

// AllocPages allocates n physically contiguous pages on the given NUMA
// domain and returns the base address. Pages are zeroed.
func (m *Memory) AllocPages(domain, n int) (Phys, error) {
	if domain < 0 || domain >= m.domains {
		return 0, fmt.Errorf("mem: bad domain %d", domain)
	}
	if n <= 0 {
		return 0, fmt.Errorf("mem: bad page count %d", n)
	}
	if m.AllocFail != nil && m.AllocFail(domain, n) {
		return 0, ErrInjectedAllocFail
	}
	ds := &m.doms[domain]
	var base uint64
	if n == 1 && len(ds.free) > 0 {
		base = ds.free[len(ds.free)-1]
		ds.free = ds.free[:len(ds.free)-1]
		rel := base - uint64(domain)*domainSpan
		// A fresh allocation reads as zeros; only bytes actually written
		// since the frame was last zeroed can be stale, and only if the
		// frame was ever materialized at all.
		if f := ds.frame(rel); f != nil && f.dirty > 0 {
			clear(f.data[:f.dirty])
			f.dirty = 0
		}
		ds.setUsed(rel)
	} else {
		base = ds.nextPFN
		if base+uint64(n) > uint64(domain+1)*domainSpan {
			return 0, fmt.Errorf("mem: domain %d exhausted", domain)
		}
		ds.nextPFN += uint64(n)
		rel := base - uint64(domain)*domainSpan
		for i := uint64(0); i < uint64(n); i++ {
			ds.setUsed(rel + i)
		}
	}
	ds.inUse += uint64(n)
	return Phys(base << PageShift), nil
}

// FreePages releases n pages starting at base (which must be page-aligned
// and previously allocated).
func (m *Memory) FreePages(base Phys, n int) error {
	if base.Offset() != 0 {
		return fmt.Errorf("mem: FreePages of unaligned %#x", uint64(base))
	}
	pfn := base.PFN()
	ds, rel, ok := m.store(pfn)
	if !ok {
		return fmt.Errorf("mem: FreePages outside any domain: %#x", uint64(base))
	}
	m.cacheF = nil // the cached frame may be in the freed range
	for i := uint64(0); i < uint64(n); i++ {
		if !ds.isUsed(rel + i) {
			return fmt.Errorf("mem: double free of pfn %#x", pfn+i)
		}
		ds.clearUsed(rel + i)
		ds.free = append(ds.free, pfn+i)
	}
	ds.inUse -= uint64(n)
	return nil
}

// InUseBytes returns the number of allocated bytes on a domain.
func (m *Memory) InUseBytes(domain int) uint64 {
	return m.doms[domain].inUse * PageSize
}

// Read copies memory starting at addr into b. It fails if any touched page
// is unallocated.
func (m *Memory) Read(addr Phys, b []byte) error {
	return m.access(addr, b, false)
}

// Write copies b into memory starting at addr. It fails (without partial
// effects) if any touched page is unallocated.
func (m *Memory) Write(addr Phys, b []byte) error {
	return m.access(addr, b, true)
}

func (m *Memory) access(addr Phys, b []byte, write bool) error {
	if len(b) == 0 {
		// Explicit early return: the last-page computation below would
		// underflow for a zero-length access at address zero.
		return nil
	}
	first := addr.PFN()
	last := (addr + Phys(len(b)) - 1).PFN()
	if first == last {
		// Single-page access: the common case — iommu.dma splits DMA
		// bursts at page boundaries, so every DMA copy lands here.
		po := addr.Offset()
		if f := m.cacheF; f != nil && m.cachePFN == first {
			if write {
				copy(f.data[po:po+len(b)], b)
				f.wrote(po, len(b))
			} else {
				copy(b, f.data[po:po+len(b)])
			}
			return nil
		}
		if write {
			f, ok := m.mut(first)
			if !ok {
				return fmt.Errorf("mem: access to unallocated pfn %#x", first)
			}
			m.cachePFN, m.cacheF = first, f
			copy(f.data[po:po+len(b)], b)
			f.wrote(po, len(b))
			return nil
		}
		f := m.peek(first)
		if f == nil {
			if !m.allocated(first) {
				return fmt.Errorf("mem: access to unallocated pfn %#x", first)
			}
			clear(b) // allocated but never written: reads as zeros
			return nil
		}
		m.cachePFN, m.cacheF = first, f
		copy(b, f.data[po:po+len(b)])
		return nil
	}
	// Validate the whole range first so failures have no partial effects.
	for pfn := first; pfn <= last; pfn++ {
		if !m.allocated(pfn) {
			return fmt.Errorf("mem: access to unallocated pfn %#x", pfn)
		}
	}
	off := 0
	for off < len(b) {
		a := addr + Phys(off)
		po := a.Offset()
		n := PageSize - po
		if n > len(b)-off {
			n = len(b) - off
		}
		if write {
			f, _ := m.mut(a.PFN())
			copy(f.data[po:po+n], b[off:off+n])
			f.wrote(po, n)
		} else if f := m.peek(a.PFN()); f != nil {
			copy(b[off:off+n], f.data[po:po+n])
		} else {
			clear(b[off : off+n])
		}
		off += n
	}
	return nil
}

// Copy transfers n bytes from src to dst inside simulated memory without
// staging through a host-heap buffer (the shadow-copy hot path). Both
// ranges are validated first, so failures have no partial effects. The
// ranges must not overlap.
func (m *Memory) Copy(dst, src Phys, n int) error {
	if n <= 0 {
		if n == 0 {
			return nil
		}
		return fmt.Errorf("mem: copy of %d bytes", n)
	}
	for pfn := src.PFN(); pfn <= (src + Phys(n) - 1).PFN(); pfn++ {
		if !m.allocated(pfn) {
			return fmt.Errorf("mem: access to unallocated pfn %#x", pfn)
		}
	}
	for pfn := dst.PFN(); pfn <= (dst + Phys(n) - 1).PFN(); pfn++ {
		if !m.allocated(pfn) {
			return fmt.Errorf("mem: access to unallocated pfn %#x", pfn)
		}
	}
	for off := 0; off < n; {
		s := src + Phys(off)
		d := dst + Phys(off)
		chunk := PageSize - s.Offset()
		if c := PageSize - d.Offset(); c < chunk {
			chunk = c
		}
		if c := n - off; c < chunk {
			chunk = c
		}
		do := d.Offset()
		if sf := m.peek(s.PFN()); sf != nil {
			df, _ := m.mut(d.PFN())
			copy(df.data[do:do+chunk], sf.data[s.Offset():s.Offset()+chunk])
			df.wrote(do, chunk)
		} else if df := m.peek(d.PFN()); df != nil {
			// Source page was never written: it reads as zeros. Clearing
			// the destination keeps its dirty watermark conservative but
			// correct, and skips materializing anything when the
			// destination was never written either.
			clear(df.data[do : do+chunk])
		}
		off += chunk
	}
	return nil
}

// Allocated reports whether the page containing addr is allocated.
func (m *Memory) Allocated(addr Phys) bool {
	return m.allocated(addr.PFN())
}

// Fill writes the byte v over the buffer without staging through a
// host-heap buffer (test/attack convenience, and allocation-free). Like
// Write, it fails without partial effects if any touched page is
// unallocated.
func (m *Memory) Fill(b Buf, v byte) error {
	if b.Size <= 0 {
		if b.Size == 0 {
			return nil
		}
		return fmt.Errorf("mem: fill of %d bytes", b.Size)
	}
	for pfn := b.Addr.PFN(); pfn <= (b.End() - 1).PFN(); pfn++ {
		if !m.allocated(pfn) {
			return fmt.Errorf("mem: access to unallocated pfn %#x", pfn)
		}
	}
	for off := 0; off < b.Size; {
		a := b.Addr + Phys(off)
		po := a.Offset()
		n := PageSize - po
		if n > b.Size-off {
			n = b.Size - off
		}
		if v == 0 {
			// Filling with zeros only needs work where the page was ever
			// written; an unmaterialized page already reads as zeros.
			if f := m.peek(a.PFN()); f != nil {
				clear(f.data[po : po+n])
			}
		} else {
			f, _ := m.mut(a.PFN())
			memset(f.data[po:po+n], v)
			f.wrote(po, n)
		}
		off += n
	}
	return nil
}

// memset fills dst with v (doubling copies; the zero case compiles to a
// memclr-speed loop either way).
func memset(dst []byte, v byte) {
	if len(dst) == 0 {
		return
	}
	dst[0] = v
	for filled := 1; filled < len(dst); filled *= 2 {
		copy(dst[filled:], dst[:filled])
	}
}

// Snapshot reads the buffer's current contents into a fresh slice.
func (m *Memory) Snapshot(b Buf) ([]byte, error) {
	data := make([]byte, b.Size)
	if err := m.Read(b.Addr, data); err != nil {
		return nil, err
	}
	return data, nil
}
