// Package mem simulates host physical memory: a sparse page store with a
// NUMA-aware page-frame allocator and a slab-style kmalloc that co-locates
// small allocations on shared pages — the property that makes sub-page DMA
// exposure possible (paper §4).
package mem

import (
	"fmt"
)

const (
	// PageSize is the 4 KiB page size used throughout (x86, and the
	// granularity of IOMMU protection in the paper).
	PageSize = 4096
	// PageShift is log2(PageSize).
	PageShift = 12
)

// Phys is a simulated physical address.
type Phys uint64

// PFN returns the page frame number containing the address.
func (p Phys) PFN() uint64 { return uint64(p) >> PageShift }

// Offset returns the offset of the address within its page.
func (p Phys) Offset() int { return int(uint64(p) & (PageSize - 1)) }

// PageBase returns the address of the start of the containing page.
func (p Phys) PageBase() Phys { return Phys(p.PFN() << PageShift) }

// Buf describes a physical buffer (address + length).
type Buf struct {
	Addr Phys
	Size int
}

// End returns the first address past the buffer.
func (b Buf) End() Phys { return b.Addr + Phys(b.Size) }

// domainSpan is the number of page frames reserved per NUMA domain
// (2^22 frames = 16 GiB of address space per domain).
const domainSpan = 1 << 22

// Memory is the simulated physical memory of one machine.
type Memory struct {
	domains int
	pages   map[uint64]*page
	nextPFN []uint64
	freeOne [][]uint64 // per-domain free single frames
	inUse   []uint64   // per-domain allocated frames
}

type page struct {
	data   [PageSize]byte
	domain int
}

// New creates a machine memory with the given number of NUMA domains.
func New(domains int) *Memory {
	if domains < 1 {
		domains = 1
	}
	m := &Memory{
		domains: domains,
		pages:   make(map[uint64]*page),
		nextPFN: make([]uint64, domains),
		freeOne: make([][]uint64, domains),
		inUse:   make([]uint64, domains),
	}
	for d := 0; d < domains; d++ {
		// PFN 0 is never allocated so that Phys(0) can mean "nil".
		m.nextPFN[d] = uint64(d)*domainSpan + 1
	}
	return m
}

// Domains returns the number of NUMA domains.
func (m *Memory) Domains() int { return m.domains }

// DomainOf returns the NUMA domain an address belongs to.
func (m *Memory) DomainOf(p Phys) int {
	return int(p.PFN() / domainSpan)
}

// AllocPages allocates n physically contiguous pages on the given NUMA
// domain and returns the base address.
func (m *Memory) AllocPages(domain, n int) (Phys, error) {
	if domain < 0 || domain >= m.domains {
		return 0, fmt.Errorf("mem: bad domain %d", domain)
	}
	if n <= 0 {
		return 0, fmt.Errorf("mem: bad page count %d", n)
	}
	var base uint64
	if n == 1 && len(m.freeOne[domain]) > 0 {
		fl := m.freeOne[domain]
		base = fl[len(fl)-1]
		m.freeOne[domain] = fl[:len(fl)-1]
	} else {
		base = m.nextPFN[domain]
		if base+uint64(n) > uint64(domain+1)*domainSpan {
			return 0, fmt.Errorf("mem: domain %d exhausted", domain)
		}
		m.nextPFN[domain] += uint64(n)
	}
	for i := uint64(0); i < uint64(n); i++ {
		m.pages[base+i] = &page{domain: domain}
	}
	m.inUse[domain] += uint64(n)
	return Phys(base << PageShift), nil
}

// FreePages releases n pages starting at base (which must be page-aligned
// and previously allocated).
func (m *Memory) FreePages(base Phys, n int) error {
	if base.Offset() != 0 {
		return fmt.Errorf("mem: FreePages of unaligned %#x", uint64(base))
	}
	pfn := base.PFN()
	domain := m.DomainOf(base)
	for i := uint64(0); i < uint64(n); i++ {
		if _, ok := m.pages[pfn+i]; !ok {
			return fmt.Errorf("mem: double free of pfn %#x", pfn+i)
		}
		delete(m.pages, pfn+i)
		m.freeOne[domain] = append(m.freeOne[domain], pfn+i)
	}
	m.inUse[domain] -= uint64(n)
	return nil
}

// InUseBytes returns the number of allocated bytes on a domain.
func (m *Memory) InUseBytes(domain int) uint64 {
	return m.inUse[domain] * PageSize
}

// Read copies memory starting at addr into b. It fails if any touched page
// is unallocated.
func (m *Memory) Read(addr Phys, b []byte) error {
	return m.access(addr, b, false)
}

// Write copies b into memory starting at addr. It fails (without partial
// effects) if any touched page is unallocated.
func (m *Memory) Write(addr Phys, b []byte) error {
	return m.access(addr, b, true)
}

func (m *Memory) access(addr Phys, b []byte, write bool) error {
	// Validate the whole range first so failures have no partial effects.
	for pfn := addr.PFN(); pfn <= (addr + Phys(len(b)) - 1).PFN(); pfn++ {
		if len(b) == 0 {
			break
		}
		if _, ok := m.pages[pfn]; !ok {
			return fmt.Errorf("mem: access to unallocated pfn %#x", pfn)
		}
	}
	off := 0
	for off < len(b) {
		a := addr + Phys(off)
		pg := m.pages[a.PFN()]
		po := a.Offset()
		n := PageSize - po
		if n > len(b)-off {
			n = len(b) - off
		}
		if write {
			copy(pg.data[po:po+n], b[off:off+n])
		} else {
			copy(b[off:off+n], pg.data[po:po+n])
		}
		off += n
	}
	return nil
}

// Allocated reports whether the page containing addr is allocated.
func (m *Memory) Allocated(addr Phys) bool {
	_, ok := m.pages[addr.PFN()]
	return ok
}

// Fill writes the byte v over the buffer (test/attack convenience).
func (m *Memory) Fill(b Buf, v byte) error {
	data := make([]byte, b.Size)
	for i := range data {
		data[i] = v
	}
	return m.Write(b.Addr, data)
}

// Snapshot reads the buffer's current contents into a fresh slice.
func (m *Memory) Snapshot(b Buf) ([]byte, error) {
	data := make([]byte, b.Size)
	if err := m.Read(b.Addr, data); err != nil {
		return nil, err
	}
	return data, nil
}
