package mem

import (
	"fmt"
	"sort"
)

// Kmalloc is a slab-style kernel memory allocator over simulated physical
// memory. Like the Linux slab allocator (Bonwick '94, cited by the paper),
// it satisfies multiple small allocations from the same page — which is
// exactly why DMA-mapping a kmalloc'ed buffer at page granularity exposes
// co-located kernel data to the device (paper §4, "No sub-page protection").
type Kmalloc struct {
	mem     *Memory
	classes []int
	// caches[domain][classIdx]
	caches [][]*slabCache
	// bySlabBase maps a slab's base PFN to its slab, for Free.
	bySlab map[uint64]*slab

	// Slab headers are carved from chunked arenas: pointers stay stable
	// (chunks are never reallocated) while the per-grow header allocation
	// amortizes to 1/slabChunk. A 1500-byte buffer lands in the 2048
	// class — two objects per page — so many-core RX setup grows
	// thousands of slabs.
	slabArena []slab
	arenaUsed int

	// Stats
	Allocs, Frees uint64
}

const slabChunk = 256

func (k *Kmalloc) newSlab() *slab {
	if k.arenaUsed == len(k.slabArena) {
		k.slabArena = make([]slab, slabChunk)
		k.arenaUsed = 0
	}
	s := &k.slabArena[k.arenaUsed]
	k.arenaUsed++
	return s
}

type slabCache struct {
	objSize int
	partial []*slab // slabs with at least one free object
}

type slab struct {
	cache   *slabCache
	base    Phys
	pages   int
	objSize int
	free    []int // free object indices (LIFO; backed by inline when small)
	inuse   int
	// inline backs free for classes with few objects per page (≥512
	// bytes), avoiding a heap slice per slab.
	inline [8]int
}

// DefaultClasses mirrors common kmalloc size classes.
var DefaultClasses = []int{32, 64, 128, 256, 512, 1024, 2048, 4096}

// NewKmalloc creates a slab allocator over m with the given size classes
// (nil for DefaultClasses). Classes must be sorted, each ≤ PageSize.
func NewKmalloc(m *Memory, classes []int) *Kmalloc {
	if classes == nil {
		classes = DefaultClasses
	}
	if !sort.IntsAreSorted(classes) {
		panic("mem: kmalloc classes must be sorted")
	}
	k := &Kmalloc{
		mem:     m,
		classes: classes,
		caches:  make([][]*slabCache, m.Domains()),
		bySlab:  make(map[uint64]*slab),
	}
	for d := range k.caches {
		k.caches[d] = make([]*slabCache, len(classes))
		for i, sz := range classes {
			k.caches[d][i] = &slabCache{objSize: sz}
		}
	}
	return k
}

// Alloc allocates size bytes on the given NUMA domain. Allocations larger
// than the biggest class fall back to whole pages.
func (k *Kmalloc) Alloc(domain, size int) (Buf, error) {
	if size <= 0 {
		return Buf{}, fmt.Errorf("mem: kmalloc of %d bytes", size)
	}
	k.Allocs++
	maxClass := k.classes[len(k.classes)-1]
	if size > maxClass {
		pages := (size + PageSize - 1) / PageSize
		addr, err := k.mem.AllocPages(domain, pages)
		if err != nil {
			return Buf{}, err
		}
		return Buf{Addr: addr, Size: size}, nil
	}
	ci := sort.SearchInts(k.classes, size)
	cache := k.caches[domain][ci]
	if len(cache.partial) == 0 {
		if err := k.grow(domain, cache); err != nil {
			return Buf{}, err
		}
	}
	s := cache.partial[len(cache.partial)-1]
	idx := s.free[len(s.free)-1]
	s.free = s.free[:len(s.free)-1]
	s.inuse++
	if len(s.free) == 0 {
		cache.partial = cache.partial[:len(cache.partial)-1]
	}
	return Buf{Addr: s.base + Phys(idx*s.objSize), Size: size}, nil
}

func (k *Kmalloc) grow(domain int, cache *slabCache) error {
	base, err := k.mem.AllocPages(domain, 1)
	if err != nil {
		return err
	}
	n := PageSize / cache.objSize
	s := k.newSlab()
	*s = slab{cache: cache, base: base, pages: 1, objSize: cache.objSize}
	if n <= len(s.inline) {
		s.free = s.inline[:0]
	} else {
		s.free = make([]int, 0, n)
	}
	// Hand out low indices first so consecutive allocations are adjacent
	// (worst case for sub-page exposure, as in a real slab).
	for i := n - 1; i >= 0; i-- {
		s.free = append(s.free, i)
	}
	cache.partial = append(cache.partial, s)
	k.bySlab[base.PFN()] = s
	return nil
}

// Free releases an allocation made by Alloc. size must match the original
// request.
func (k *Kmalloc) Free(b Buf) error {
	k.Frees++
	maxClass := k.classes[len(k.classes)-1]
	if b.Size > maxClass {
		pages := (b.Size + PageSize - 1) / PageSize
		return k.mem.FreePages(b.Addr, pages)
	}
	s, ok := k.bySlab[b.Addr.PFN()]
	if !ok {
		return fmt.Errorf("mem: kfree of unknown address %#x", uint64(b.Addr))
	}
	idx := int(b.Addr-s.base) / s.objSize
	if b.Addr != s.base+Phys(idx*s.objSize) {
		return fmt.Errorf("mem: kfree of misaligned address %#x", uint64(b.Addr))
	}
	for _, f := range s.free {
		if f == idx {
			return fmt.Errorf("mem: double kfree of %#x", uint64(b.Addr))
		}
	}
	if len(s.free) == 0 {
		s.cache.partial = append(s.cache.partial, s)
	}
	s.free = append(s.free, idx)
	s.inuse--
	return nil
}

// SamePage reports whether two buffers share at least one physical page —
// the co-location condition for the sub-page attack.
func SamePage(a, b Buf) bool {
	return a.Addr.PFN() <= (b.End()-1).PFN() && b.Addr.PFN() <= (a.End()-1).PFN()
}
