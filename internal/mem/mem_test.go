package mem

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAllocReadWriteRoundTrip(t *testing.T) {
	m := New(1)
	addr, err := m.AllocPages(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte("hello physical world")
	if err := m.Write(addr+100, want); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(want))
	if err := m.Read(addr+100, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("got %q want %q", got, want)
	}
}

func TestAccessSpansPages(t *testing.T) {
	m := New(1)
	addr, _ := m.AllocPages(0, 2)
	want := make([]byte, 1000)
	for i := range want {
		want[i] = byte(i)
	}
	// Straddle the page boundary.
	at := addr + Phys(PageSize-500)
	if err := m.Write(at, want); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 1000)
	if err := m.Read(at, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("page-spanning access corrupted data")
	}
}

func TestAccessUnallocatedFails(t *testing.T) {
	m := New(1)
	b := make([]byte, 10)
	if err := m.Read(Phys(123456<<PageShift), b); err == nil {
		t.Error("read of unallocated memory should fail")
	}
	addr, _ := m.AllocPages(0, 1)
	// Write that runs off the end of the allocation must fail with no
	// partial effects.
	big := make([]byte, PageSize+10)
	if err := m.Write(addr, big); err == nil {
		t.Error("overrun write should fail")
	}
	probe := make([]byte, 4)
	if err := m.Read(addr, probe); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(probe, []byte{0, 0, 0, 0}) {
		t.Error("failed write had partial effects")
	}
}

func TestFreeAndReuse(t *testing.T) {
	m := New(1)
	a, _ := m.AllocPages(0, 1)
	if err := m.FreePages(a, 1); err != nil {
		t.Fatal(err)
	}
	if m.Allocated(a) {
		t.Error("freed page still allocated")
	}
	b, _ := m.AllocPages(0, 1)
	if a != b {
		t.Errorf("single-page alloc should reuse freed frame: %#x vs %#x", a, b)
	}
	if err := m.FreePages(b+4096, 1); err == nil {
		t.Error("double/invalid free should fail")
	}
	if err := m.FreePages(b+1, 1); err == nil {
		t.Error("unaligned free should fail")
	}
}

func TestNUMADomains(t *testing.T) {
	m := New(2)
	a, _ := m.AllocPages(0, 1)
	b, _ := m.AllocPages(1, 1)
	if m.DomainOf(a) != 0 || m.DomainOf(b) != 1 {
		t.Errorf("domains: %d %d", m.DomainOf(a), m.DomainOf(b))
	}
	if m.InUseBytes(0) != PageSize || m.InUseBytes(1) != PageSize {
		t.Error("in-use accounting wrong")
	}
	if _, err := m.AllocPages(2, 1); err == nil {
		t.Error("bad domain should fail")
	}
	if _, err := m.AllocPages(0, 0); err == nil {
		t.Error("zero pages should fail")
	}
}

func TestPhysHelpers(t *testing.T) {
	p := Phys(5<<PageShift + 123)
	if p.PFN() != 5 || p.Offset() != 123 || p.PageBase() != Phys(5<<PageShift) {
		t.Errorf("helpers wrong: %d %d %#x", p.PFN(), p.Offset(), uint64(p.PageBase()))
	}
	b := Buf{Addr: p, Size: 10}
	if b.End() != p+10 {
		t.Error("End wrong")
	}
}

func TestZeroLengthAccess(t *testing.T) {
	// Regression: a zero-length access at address zero used to compute
	// last = (0 + 0 - 1) >> PageShift, underflowing to a huge PFN. It must
	// be a successful no-op, even on unallocated addresses.
	m := New(1)
	if err := m.Read(0, nil); err != nil {
		t.Errorf("Read(0, nil) = %v, want nil", err)
	}
	if err := m.Write(0, nil); err != nil {
		t.Errorf("Write(0, nil) = %v, want nil", err)
	}
	if err := m.Read(0, []byte{}); err != nil {
		t.Errorf("Read(0, empty) = %v, want nil", err)
	}
	if err := m.Copy(0, 0, 0); err != nil {
		t.Errorf("Copy(0, 0, 0) = %v, want nil", err)
	}
	if err := m.Fill(Buf{}, 0xff); err != nil {
		t.Errorf("Fill(empty) = %v, want nil", err)
	}
	// Non-empty access at unallocated address zero must still fail.
	if err := m.Read(0, make([]byte, 1)); err == nil {
		t.Error("Read of unallocated page should fail")
	}
}

func TestRecycledPageReadsZero(t *testing.T) {
	// A freed-and-reallocated page must read as zeros no matter what was
	// written before the free (the dirty-watermark zeroing path).
	m := New(1)
	addr, err := m.AllocPages(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fill(Buf{Addr: addr, Size: PageSize}, 0xde); err != nil {
		t.Fatal(err)
	}
	if err := m.FreePages(addr, 1); err != nil {
		t.Fatal(err)
	}
	again, err := m.AllocPages(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if again != addr {
		t.Fatalf("expected LIFO recycling of %#x, got %#x", uint64(addr), uint64(again))
	}
	got := make([]byte, PageSize)
	for i := range got {
		got[i] = 0x55 // poison: Read must overwrite every byte
	}
	if err := m.Read(again, got); err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		if b != 0 {
			t.Fatalf("recycled page byte %d = %#x, want 0", i, b)
		}
	}
}

func TestNeverWrittenPageReadsZero(t *testing.T) {
	// Allocated pages whose frames were never materialized read as zeros,
	// including when copied into a materialized destination.
	m := New(1)
	src, err := m.AllocPages(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := m.AllocPages(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 100)
	for i := range got {
		got[i] = 0x55
	}
	if err := m.Read(src+20, got); err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		if b != 0 {
			t.Fatalf("fresh page byte %d = %#x, want 0", i, b)
		}
	}
	// Write then overwrite-by-copy from a never-written source.
	if err := m.Fill(Buf{Addr: dst, Size: PageSize}, 0xaa); err != nil {
		t.Fatal(err)
	}
	if err := m.Copy(dst, src, PageSize); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, PageSize)
	if err := m.Read(dst, out); err != nil {
		t.Fatal(err)
	}
	for i, b := range out {
		if b != 0 {
			t.Fatalf("copied-from-fresh byte %d = %#x, want 0", i, b)
		}
	}
}

func TestRandomReadWriteProperty(t *testing.T) {
	m := New(1)
	base, _ := m.AllocPages(0, 16)
	shadow := make([]byte, 16*PageSize)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		off := rng.Intn(16*PageSize - 200)
		n := 1 + rng.Intn(199)
		data := make([]byte, n)
		rng.Read(data)
		if err := m.Write(base+Phys(off), data); err != nil {
			t.Fatal(err)
		}
		copy(shadow[off:], data)
	}
	got := make([]byte, len(shadow))
	if err := m.Read(base, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, shadow) {
		t.Error("memory diverged from reference model")
	}
}

func TestKmallocCoLocatesOnPage(t *testing.T) {
	// The security-critical property: consecutive small allocations share
	// a page, so page-granularity IOMMU mapping exposes neighbours.
	m := New(1)
	k := NewKmalloc(m, nil)
	a, err := k.Alloc(0, 100)
	if err != nil {
		t.Fatal(err)
	}
	b, err := k.Alloc(0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !SamePage(a, b) {
		t.Error("consecutive kmallocs should share a page (slab co-location)")
	}
	if a.End() > b.Addr && b.End() > a.Addr {
		t.Error("allocations overlap")
	}
}

func TestKmallocClassRounding(t *testing.T) {
	m := New(1)
	k := NewKmalloc(m, nil)
	a, _ := k.Alloc(0, 100) // class 128
	c, _ := k.Alloc(0, 128) // same class
	if a.Addr.PFN() != c.Addr.PFN() {
		t.Error("same-class allocations should pack onto the same slab page")
	}
	if got := int(c.Addr - a.Addr); got != 128 {
		t.Errorf("object stride = %d, want 128", got)
	}
}

func TestKmallocLargeFallsBackToPages(t *testing.T) {
	m := New(1)
	k := NewKmalloc(m, nil)
	b, err := k.Alloc(0, 3*PageSize+5)
	if err != nil {
		t.Fatal(err)
	}
	if b.Addr.Offset() != 0 {
		t.Error("large alloc should be page aligned")
	}
	if err := k.Free(b); err != nil {
		t.Fatal(err)
	}
}

func TestKmallocFreeAndReuse(t *testing.T) {
	m := New(1)
	k := NewKmalloc(m, nil)
	a, _ := k.Alloc(0, 64)
	if err := k.Free(a); err != nil {
		t.Fatal(err)
	}
	b, _ := k.Alloc(0, 64)
	if a.Addr != b.Addr {
		t.Error("freed object should be reused first (use-after-free realism)")
	}
	if err := k.Free(b); err != nil {
		t.Fatal(err)
	}
	if err := k.Free(b); err == nil {
		t.Error("double free should fail")
	}
	if err := k.Free(Buf{Addr: 0xdead000, Size: 64}); err == nil {
		t.Error("free of unknown address should fail")
	}
}

func TestKmallocManyAllocationsDistinct(t *testing.T) {
	m := New(1)
	k := NewKmalloc(m, nil)
	seen := map[Phys]bool{}
	for i := 0; i < 1000; i++ {
		b, err := k.Alloc(0, 256)
		if err != nil {
			t.Fatal(err)
		}
		if seen[b.Addr] {
			t.Fatalf("duplicate address %#x", uint64(b.Addr))
		}
		seen[b.Addr] = true
	}
}

func TestKmallocZeroSizeFails(t *testing.T) {
	m := New(1)
	k := NewKmalloc(m, nil)
	if _, err := k.Alloc(0, 0); err == nil {
		t.Error("zero-size alloc should fail")
	}
}

func TestSamePageProperty(t *testing.T) {
	f := func(aOff, bOff uint16, aLen, bLen uint8) bool {
		a := Buf{Addr: Phys(1<<PageShift) + Phys(aOff), Size: int(aLen) + 1}
		b := Buf{Addr: Phys(1<<PageShift) + Phys(bOff), Size: int(bLen) + 1}
		got := SamePage(a, b)
		// Reference: enumerate pages.
		pages := map[uint64]bool{}
		for p := a.Addr.PFN(); p <= (a.End() - 1).PFN(); p++ {
			pages[p] = true
		}
		want := false
		for p := b.Addr.PFN(); p <= (b.End() - 1).PFN(); p++ {
			if pages[p] {
				want = true
			}
		}
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
