package mem

import (
	"testing"
)

// BenchmarkMemAccess4K measures the single-page access fast path (one
// write + one read of a full page), which every DMA burst lands on. Must
// be allocation-free.
func BenchmarkMemAccess4K(b *testing.B) {
	m := New(1)
	addr, err := m.AllocPages(0, 1)
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, PageSize)
	b.SetBytes(2 * PageSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Write(addr, buf); err != nil {
			b.Fatal(err)
		}
		if err := m.Read(addr, buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMemCopy64K measures the in-simulation copy primitive behind
// the shadow-buffer data path (16 pages, page-chunked).
func BenchmarkMemCopy64K(b *testing.B) {
	m := New(1)
	src, err := m.AllocPages(0, 16)
	if err != nil {
		b.Fatal(err)
	}
	dst, err := m.AllocPages(0, 16)
	if err != nil {
		b.Fatal(err)
	}
	if err := m.Fill(Buf{Addr: src, Size: 16 * PageSize}, 0xab); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(16 * PageSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Copy(dst, src, 16*PageSize); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMemFill64K measures the allocation-free fill path.
func BenchmarkMemFill64K(b *testing.B) {
	m := New(1)
	addr, err := m.AllocPages(0, 16)
	if err != nil {
		b.Fatal(err)
	}
	buf := Buf{Addr: addr, Size: 16 * PageSize}
	b.SetBytes(16 * PageSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Fill(buf, byte(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMemAllocFree measures single-page allocate/free recycling (the
// kmalloc backing-page churn of the simulated workloads).
func BenchmarkMemAllocFree(b *testing.B) {
	m := New(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr, err := m.AllocPages(0, 1)
		if err != nil {
			b.Fatal(err)
		}
		if err := m.FreePages(addr, 1); err != nil {
			b.Fatal(err)
		}
	}
}
