package netstack

import (
	"testing"

	"repro/internal/cycles"
	"repro/internal/iommu"
	"repro/internal/mem"
	"repro/internal/nic"
	"repro/internal/sim"
)

// The host pays for IOMMU faults in interrupt context: every RX IRQ drains
// the fault ring and charges FaultServiceCost per record. A second device's
// fault storm therefore taxes the victim's datapath — exactly the damage
// channel quarantine cuts off (see internal/chaos).
func TestFaultServiceChargesPerRecord(t *testing.T) {
	run := func(cost uint64, storm int) (RxStats, uint64, uint64) {
		r := newRig(t, "strict", 1)
		r.d.FaultServiceCost = cost
		var st RxStats
		r.eng.Spawn("rx", 0, 0, func(p *sim.Proc) {
			if err := r.d.SetupQueue(p, 0); err != nil {
				t.Error(err)
				return
			}
			_ = r.d.RunRxStream(p, 0, 4096, &st)
		})
		src := nic.NewSource(r.eng, r.n.Queue(0), r.costs, 4096, 1500, true)
		src.Start(0)
		// A neighbour device (dev 9, no domain) faults in a burst
		// mid-window; each attempt leaves one record in the ring.
		for i := 0; i < storm; i++ {
			at := cycles.FromMicros(200) + uint64(i)*2000
			r.eng.Schedule(at, func(uint64) {
				r.u.DMAWrite(9, iommu.IOVA(0x9000+i)<<mem.PageShift, []byte{1})
			})
		}
		r.eng.Run(cycles.FromMillis(2))
		r.eng.Stop()
		return st, r.d.FaultsServiced, r.u.FaultRing().Recorded()
	}

	st, serviced, recorded := run(1500, 200)
	if recorded != 200 {
		t.Fatalf("recorded = %d, want 200", recorded)
	}
	if serviced != 200 {
		t.Errorf("serviced = %d, want all 200 records drained by the IRQ path", serviced)
	}
	quiet, serviced0, _ := run(1500, 0)
	if serviced0 != 0 {
		t.Errorf("no faults, but serviced = %d", serviced0)
	}
	if st.Bytes >= quiet.Bytes {
		t.Errorf("fault servicing must cost goodput: stormy %d bytes >= quiet %d", st.Bytes, quiet.Bytes)
	}
	// Zero cost disables the path entirely (stock-run bit-identity).
	_, servicedOff, _ := run(0, 200)
	if servicedOff != 0 {
		t.Errorf("FaultServiceCost=0 must not touch the ring (serviced=%d)", servicedOff)
	}
}
