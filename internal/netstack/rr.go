package netstack

import (
	"repro/internal/cycles"
	"repro/internal/dmaapi"
	"repro/internal/mem"
	"repro/internal/nic"
	"repro/internal/sim"
)

// Request/response (netperf TCP_RR) support: a remote client sends a
// message of msgSize bytes and measures the time until it receives a
// response of the same size, with a single transaction outstanding
// (paper Figure 9).

// RRServerStats accumulates server-side results.
type RRServerStats struct {
	Rx RxStats
	Tx TxStats
}

// RunRRServer runs the server side on one core: receive a full request,
// transmit an equal-sized response, repeat.
func (d *Driver) RunRRServer(p *sim.Proc, qi, msgSize int, st *RRServerStats) error {
	q := d.n.Queue(qi)
	co := d.env.Costs
	maxSkb := d.n.MaxTxBuf()
	domain := d.env.DomainOfCore(p.Core())
	pool := &TxPool{}
	for i := 0; i < 8; i++ {
		b, err := d.k.Alloc(domain, maxSkb)
		if err != nil {
			return err
		}
		pool.free = append(pool.free, b)
	}
	msgAcc := 0
	for {
		// Receive one full request.
		start := st.Rx.Messages
		for st.Rx.Messages == start {
			if !q.HasRx() {
				q.RxCond.WaitUntil(p, q.HasRx)
				p.Sleep(co.SchedLatency)
			}
			p.ChargeSpan("rx/irq", cycles.TagOther, co.InterruptEntry)
			for _, c := range q.DrainRx() {
				if err := d.handleRx(p, q, c, msgSize, &msgAcc, &st.Rx); err != nil {
					return err
				}
			}
		}
		// Send the response.
		if err := d.SendMessage(p, q, pool, msgSize, &st.Tx); err != nil {
			return err
		}
	}
}

// SendMessage performs one socket write of msgSize bytes: copy from user,
// segment into skbs, dma_map and post each.
func (d *Driver) SendMessage(p *sim.Proc, q *nic.Queue, pool *TxPool, msgSize int, st *TxStats) error {
	return d.sendMessage(p, q, pool, msgSize, nil, st)
}

// SendMessageData is SendMessage with real payload bytes: the data is
// written into the transmit buffers, so the device (and through it the
// remote machine) observes actual content — required by the key-value
// store and the attack scenarios.
func (d *Driver) SendMessageData(p *sim.Proc, q *nic.Queue, pool *TxPool, data []byte, st *TxStats) error {
	return d.sendMessage(p, q, pool, len(data), data, st)
}

func (d *Driver) sendMessage(p *sim.Proc, q *nic.Queue, pool *TxPool, msgSize int, data []byte, st *TxStats) error {
	if p.Observed() {
		p.SpanEnter("tx")
		defer p.SpanExit()
	}
	co := d.env.Costs
	maxSkb := d.n.MaxTxBuf()
	p.ChargeSpan("msg", cycles.TagOther, co.MsgOther)
	p.ChargeSpan("copy-user", cycles.TagCopyUser, co.CopyUser(msgSize))
	st.Messages++
	drain := func() error {
		for _, dd := range q.DrainTx() {
			used := dd.Tag
			if err := d.mapper.Unmap(p, dd.Addr, used.Size, dmaapi.ToDevice); err != nil {
				return err
			}
			st.Bytes += uint64(used.Size)
			st.Skbs++
			pool.free = append(pool.free, mem.Buf{Addr: used.Addr, Size: maxSkb})
		}
		return nil
	}
	remaining := msgSize
	for remaining > 0 {
		skb := remaining
		if skb > maxSkb {
			skb = maxSkb
		}
		if err := drain(); err != nil {
			return err
		}
		for len(pool.free) == 0 {
			q.TxCond.WaitUntil(p, q.HasTx)
			p.Sleep(co.SchedLatency)
			if err := drain(); err != nil {
				return err
			}
		}
		b := pool.free[len(pool.free)-1]
		pool.free = pool.free[:len(pool.free)-1]
		use := mem.Buf{Addr: b.Addr, Size: skb}
		if data != nil {
			off := msgSize - remaining
			if err := d.env.Mem.Write(use.Addr, data[off:off+skb]); err != nil {
				return err
			}
		}
		addr, err := d.mapper.Map(p, use, dmaapi.ToDevice)
		if err != nil {
			return err
		}
		p.ChargeSpan("skb", cycles.TagOther, co.TxSkb(skb))
		for !q.PostTx(p, nic.Desc{Addr: addr, Len: skb, Tag: use}) {
			q.TxCond.WaitUntil(p, q.HasTx)
			p.Sleep(co.SchedLatency)
			if err := drain(); err != nil {
				return err
			}
		}
		remaining -= skb
	}
	return nil
}

// RRClient is the remote netperf TCP_RR client: one outstanding
// transaction, latency measured from request start to the arrival of the
// response's last byte.
type RRClient struct {
	eng     *sim.Engine
	src     *nic.Source
	costs   *cycles.Costs
	msgSize int
	qi      int

	respAcc int
	sentAt  uint64

	Samples      []uint64
	Transactions uint64
}

// NewRRClient builds the client for queue qi and installs its response
// observer on the NIC.
func NewRRClient(eng *sim.Engine, n *nic.NIC, qi int, costs *cycles.Costs, msgSize int) *RRClient {
	c := &RRClient{
		eng:     eng,
		costs:   costs,
		msgSize: msgSize,
		qi:      qi,
	}
	c.src = nic.NewSource(eng, n.Queue(qi), costs, msgSize, n.Config().MTU, false)
	prev := n.TxDeliveredHook
	n.TxDeliveredHook = func(q int, at uint64, b int) {
		if prev != nil {
			prev(q, at, b)
		}
		if q == qi {
			c.onResponseBytes(at, b)
		}
	}
	return c
}

// Start issues the first request at time t.
func (c *RRClient) Start(t uint64) {
	c.sentAt = t
	c.eng.Schedule(t, func(now uint64) { c.src.EnqueueMessage(now) })
}

func (c *RRClient) onResponseBytes(at uint64, b int) {
	c.respAcc += b
	if c.respAcc < c.msgSize {
		return
	}
	c.respAcc -= c.msgSize
	c.Samples = append(c.Samples, at-c.sentAt)
	c.Transactions++
	next := at + c.costs.ClientOverhead
	c.sentAt = next
	c.eng.Schedule(next, func(now uint64) { c.src.EnqueueMessage(now) })
}

// MeanLatency returns the average round-trip time in cycles.
func (c *RRClient) MeanLatency() uint64 {
	if len(c.Samples) == 0 {
		return 0
	}
	var sum uint64
	for _, s := range c.Samples {
		sum += s
	}
	return sum / uint64(len(c.Samples))
}
