package netstack

import (
	"testing"

	"repro/internal/core"
	"repro/internal/cycles"
	"repro/internal/dmaapi"
	"repro/internal/iommu"
	"repro/internal/mem"
	"repro/internal/nic"
	"repro/internal/sim"
)

type rig struct {
	eng    *sim.Engine
	m      *mem.Memory
	u      *iommu.IOMMU
	env    *dmaapi.Env
	n      *nic.NIC
	k      *mem.Kmalloc
	d      *Driver
	mapper dmaapi.Mapper
	costs  *cycles.Costs
}

func newRig(t *testing.T, system string, cores int) *rig {
	t.Helper()
	eng := sim.NewEngine()
	m := mem.New(2)
	costs := cycles.Default()
	u := iommu.New(eng, m, costs)
	env := &dmaapi.Env{Eng: eng, Mem: m, IOMMU: u, Costs: costs, Dev: 1, Cores: cores}
	var mapper dmaapi.Mapper
	var err error
	switch system {
	case "copy":
		mapper, err = core.NewShadowMapper(env, core.WithHint(PacketLenHint))
	case "noiommu":
		mapper = dmaapi.NewNoIOMMU(env)
	case "strict":
		mapper = dmaapi.NewLinux(env, false)
	default:
		t.Fatalf("unknown system %s", system)
	}
	if err != nil {
		t.Fatal(err)
	}
	n := nic.New(eng, u, nic.Config{Dev: 1, Queues: cores, RingSize: 64, MTU: 1500, TSO: true, Costs: costs})
	k := mem.NewKmalloc(m, nil)
	d := NewDriver(env, mapper, n, k, 2048)
	return &rig{eng: eng, m: m, u: u, env: env, n: n, k: k, d: d, mapper: mapper, costs: costs}
}

func TestRxStreamDeliversTraffic(t *testing.T) {
	for _, sys := range []string{"noiommu", "copy", "strict"} {
		r := newRig(t, sys, 1)
		var st RxStats
		r.eng.Spawn("rx", 0, 0, func(p *sim.Proc) {
			if err := r.d.SetupQueue(p, 0); err != nil {
				t.Error(err)
				return
			}
			_ = r.d.RunRxStream(p, 0, 4096, &st)
		})
		src := nic.NewSource(r.eng, r.n.Queue(0), r.costs, 4096, 1500, true)
		src.Start(0)
		r.eng.Run(cycles.FromMillis(2))
		r.eng.Stop()
		if st.Frames == 0 || st.Bytes == 0 || st.Messages == 0 {
			t.Errorf("%s: no traffic delivered: %+v", sys, st)
		}
		if r.n.RxNoBufDrops != 0 {
			t.Errorf("%s: buffer recycling failed, %d no-buf drops", sys, r.n.RxNoBufDrops)
		}
		if r.n.RxFaults != 0 {
			t.Errorf("%s: benign traffic faulted %d times", sys, r.n.RxFaults)
		}
	}
}

func TestTxStreamCompletesSkbs(t *testing.T) {
	for _, sys := range []string{"noiommu", "copy", "strict"} {
		r := newRig(t, sys, 1)
		var st TxStats
		r.eng.Spawn("tx", 0, 0, func(p *sim.Proc) {
			_ = r.d.RunTxStream(p, 0, 65536, &st)
		})
		r.eng.Run(cycles.FromMillis(3))
		r.eng.Stop()
		if st.Skbs == 0 || st.Bytes == 0 {
			t.Errorf("%s: no transmit completions: %+v", sys, st)
		}
		// TSO: 64 KiB messages become one skb each.
		if st.Skbs > st.Messages {
			t.Errorf("%s: %d skbs for %d messages (TSO should give 1:1)", sys, st.Skbs, st.Messages)
		}
		if r.n.TxFaults != 0 {
			t.Errorf("%s: TX faulted %d times", sys, r.n.TxFaults)
		}
	}
}

func TestPacketLenHintParsesAndClamps(t *testing.T) {
	m := mem.New(1)
	addr, _ := m.AllocPages(0, 1)
	sh := mem.Buf{Addr: addr, Size: 2048}
	m.Write(addr, []byte{0x01, 0x2c}) // length 300
	if got := PacketLenHint(m, sh, 2048); got != 300 {
		t.Errorf("hint = %d, want 300", got)
	}
	// Hostile length beyond the mapping: fall back to full copy.
	m.Write(addr, []byte{0xff, 0xff})
	if got := PacketLenHint(m, sh, 2048); got != 2048 {
		t.Errorf("oversize hint = %d, want clamp to 2048", got)
	}
	// Degenerate values.
	m.Write(addr, []byte{0x00, 0x01})
	if got := PacketLenHint(m, sh, 2048); got != 2048 {
		t.Errorf("undersize hint = %d, want 2048", got)
	}
	if got := PacketLenHint(m, mem.Buf{Addr: addr, Size: 1}, 2048); got != 2048 {
		t.Error("tiny shadow buffer should fall back")
	}
}

func TestFirewallDropsPackets(t *testing.T) {
	r := newRig(t, "copy", 1)
	var st RxStats
	r.d.Firewall = func(p *sim.Proc, pkt []byte) bool {
		return len(pkt) > 0 && pkt[len(pkt)-1] != 0xBD // drop marked packets
	}
	r.eng.Spawn("rx", 0, 0, func(p *sim.Proc) {
		if err := r.d.SetupQueue(p, 0); err != nil {
			t.Error(err)
			return
		}
		_ = r.d.RunRxStream(p, 0, 1000, &st)
	})
	src := nic.NewSource(r.eng, r.n.Queue(0), r.costs, 1000, 1500, true)
	src.SetPayload(func(seq, _ int, b []byte) {
		b[0] = byte(len(b) >> 8)
		b[1] = byte(len(b))
		if seq%2 == 0 {
			b[len(b)-1] = 0xBD
		} else {
			b[len(b)-1] = 0
		}
	})
	src.Start(0)
	r.eng.Run(cycles.FromMillis(2))
	r.eng.Stop()
	if r.d.FirewallDrops == 0 {
		t.Error("firewall never dropped")
	}
	if st.Frames == 0 {
		t.Error("firewall dropped everything")
	}
	total := r.d.FirewallDrops + st.Frames
	ratio := float64(r.d.FirewallDrops) / float64(total)
	if ratio < 0.4 || ratio > 0.6 {
		t.Errorf("drop ratio = %.2f, want ~0.5", ratio)
	}
}

func TestOnDeliverSeesPayloadBytes(t *testing.T) {
	r := newRig(t, "copy", 1)
	var st RxStats
	seen := 0
	r.d.OnDeliver = func(p *sim.Proc, pkt []byte) {
		// Default source payload: 2-byte length header then zeros.
		if len(pkt) >= 2 && int(pkt[0])<<8|int(pkt[1]) == len(pkt) {
			seen++
		}
	}
	r.eng.Spawn("rx", 0, 0, func(p *sim.Proc) {
		if err := r.d.SetupQueue(p, 0); err != nil {
			t.Error(err)
			return
		}
		_ = r.d.RunRxStream(p, 0, 1000, &st)
	})
	src := nic.NewSource(r.eng, r.n.Queue(0), r.costs, 1000, 1500, true)
	src.Start(0)
	r.eng.Run(cycles.FromMillis(1))
	r.eng.Stop()
	if seen == 0 {
		t.Error("OnDeliver never saw a valid payload")
	}
	if uint64(seen) != st.Frames {
		t.Errorf("OnDeliver saw %d of %d frames with intact headers", seen, st.Frames)
	}
}

func TestRRRoundTrips(t *testing.T) {
	r := newRig(t, "copy", 1)
	var st RRServerStats
	r.eng.Spawn("rr", 0, 0, func(p *sim.Proc) {
		if err := r.d.SetupQueue(p, 0); err != nil {
			t.Error(err)
			return
		}
		_ = r.d.RunRRServer(p, 0, 1024, &st)
	})
	client := NewRRClient(r.eng, r.n, 0, r.costs, 1024)
	client.Start(cycles.FromMicros(50))
	r.eng.Run(cycles.FromMillis(5))
	r.eng.Stop()
	if client.Transactions < 10 {
		t.Fatalf("transactions = %d", client.Transactions)
	}
	lat := cycles.Micros(client.MeanLatency())
	if lat <= 0 || lat > 100 {
		t.Errorf("mean latency = %.1f us", lat)
	}
	if st.Rx.Messages != st.Tx.Messages {
		t.Errorf("server rx %d / tx %d messages mismatch", st.Rx.Messages, st.Tx.Messages)
	}
}

func TestSendMessageDataCarriesRealBytes(t *testing.T) {
	r := newRig(t, "copy", 1)
	payload := []byte("response-payload-with-real-content")
	var captured []byte
	r.n.TxDMAHook = func(q int, addr iommu.IOVA, n int) {
		buf := make([]byte, n)
		if res := r.u.DMARead(99, addr, buf); res.Fault == nil {
			captured = buf
		}
	}
	// Device 99 is a second observer with passthrough? No: read via the
	// real device id so the shadow mapping applies.
	r.n.TxDMAHook = func(q int, addr iommu.IOVA, n int) {
		buf := make([]byte, n)
		if res := r.u.DMARead(1, addr, buf); res.Fault == nil {
			captured = buf
		}
	}
	var st TxStats
	r.eng.Spawn("tx", 0, 0, func(p *sim.Proc) {
		pool, err := r.d.NewTxPool(p, 4)
		if err != nil {
			t.Error(err)
			return
		}
		if err := r.d.SendMessageData(p, r.n.Queue(0), pool, payload, &st); err != nil {
			t.Error(err)
		}
	})
	r.eng.Run(cycles.FromMillis(1))
	r.eng.Stop()
	if string(captured) != string(payload) {
		t.Errorf("device read %q, want %q", captured, payload)
	}
}

func TestStopMidTrafficIsClean(t *testing.T) {
	r := newRig(t, "strict", 2)
	for c := 0; c < 2; c++ {
		c := c
		r.eng.Spawn("rx", c, 0, func(p *sim.Proc) {
			if err := r.d.SetupQueue(p, c); err != nil {
				t.Error(err)
				return
			}
			var st RxStats
			_ = r.d.RunRxStream(p, c, 1500, &st)
		})
		src := nic.NewSource(r.eng, r.n.Queue(c), r.costs, 1500, 1500, true)
		src.Start(0)
	}
	r.eng.Run(cycles.FromMicros(500))
	r.eng.Stop() // must not hang or panic with procs blocked in waits
}
