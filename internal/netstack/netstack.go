// Package netstack implements the network datapath of the evaluation: a
// NIC driver (receive buffer management, transmit queuing, interrupt
// handling) and netperf-style workloads (TCP_STREAM receive/transmit,
// TCP_RR request/response) whose per-packet costs follow the component
// breakdown of the paper's Figure 5 (rx parsing, copy_user, other) on top
// of whatever the configured DMA-protection strategy charges.
//
// The driver code is strategy-agnostic: it calls the dmaapi.Mapper
// interface exactly as a Linux driver calls the DMA API, which is the
// transparency property of the paper's design (§5.1).
package netstack

import (
	"errors"
	"fmt"

	"repro/internal/cycles"
	"repro/internal/dmaapi"
	"repro/internal/iommu"
	"repro/internal/mem"
	"repro/internal/nic"
	"repro/internal/sim"
)

// Driver is the simulated NIC driver for one machine/device pair.
type Driver struct {
	env    *dmaapi.Env
	mapper dmaapi.Mapper
	n      *nic.NIC
	k      *mem.Kmalloc

	rxBufSize int

	// Firewall, if set, inspects every received packet after dma_unmap
	// (the packet-filter position the paper's TOCTOU example targets).
	// Returning false drops the packet.
	Firewall func(p *sim.Proc, pkt []byte) bool
	// OnDeliver, if set, receives the packet payload at the point the
	// application consumes it (after copy_to_user).
	OnDeliver func(p *sim.Proc, pkt []byte)

	// RemoteBufs forces DMA buffers onto the far NUMA domain (ablation:
	// what the shadow pool's sticky NUMA-local buffers save).
	RemoteBufs bool

	// FaultServiceCost, when non-zero, models the host's IOMMU
	// fault-interrupt handler: each interrupt entry drains the pending
	// records from the fault ring (iommu.FaultRing().Consume) and charges
	// this many cycles per record on the servicing core (the ring capacity
	// bounds the batch). This is the
	// channel a fault storm uses to spend victim CPU — and what device
	// quarantine (internal/resilience) shuts off at the root. Zero (the
	// default) leaves fault records for the harness to inspect, keeping
	// stock benchmark runs bit-identical.
	FaultServiceCost uint64

	// Stats
	FirewallDrops uint64
	// BackpressureDrops counts receive buffers the driver shed because
	// the mapper refused the map with dmaapi.ErrBackpressure: the buffer
	// is freed, the RX ring runs one credit shallower, and the source's
	// credit gating turns the shortage into flow control instead of a
	// datapath failure.
	BackpressureDrops uint64
	// FaultsServiced counts fault records drained from the IOMMU fault
	// ring by the interrupt path (only when FaultServiceCost is set).
	FaultsServiced uint64

	coherent []ringArea
}

type ringArea struct {
	addr iommu.IOVA
	buf  mem.Buf
}

// NewDriver creates a driver using the given protection strategy.
func NewDriver(env *dmaapi.Env, mapper dmaapi.Mapper, n *nic.NIC, k *mem.Kmalloc, rxBufSize int) *Driver {
	if rxBufSize <= 0 {
		rxBufSize = 2048
	}
	return &Driver{env: env, mapper: mapper, n: n, k: k, rxBufSize: rxBufSize}
}

// Mapper returns the protection strategy in use.
func (d *Driver) Mapper() dmaapi.Mapper { return d.mapper }

// Env returns the machine environment the driver runs on.
func (d *Driver) Env() *dmaapi.Env { return d.env }

// bufDomain picks the NUMA domain for DMA buffers owned by a core,
// honouring the RemoteBufs ablation flag.
func (d *Driver) bufDomain(core int) int {
	dom := d.env.DomainOfCore(core)
	if d.RemoteBufs {
		dom = (dom + 1) % d.env.Mem.Domains()
	}
	return dom
}

// NIC returns the device.
func (d *Driver) NIC() *nic.NIC { return d.n }

// SetupQueue initializes queue qi from proc context: it allocates the
// descriptor ring area with dma_alloc_coherent (exercising the coherent
// path every strategy implements with strict protection) and fills the
// receive ring with freshly mapped kmalloc'ed buffers — which, being slab
// allocations, may share pages with unrelated kernel data (the sub-page
// hazard).
func (d *Driver) SetupQueue(p *sim.Proc, qi int) error {
	q := d.n.Queue(qi)
	ringBytes := q.RxRing.Size() * 16 * 2 // rx+tx descriptors, 16 B each
	addr, buf, err := d.mapper.AllocCoherent(p, ringBytes)
	if err != nil {
		return fmt.Errorf("netstack: ring alloc: %w", err)
	}
	d.coherent = append(d.coherent, ringArea{addr: addr, buf: buf})
	domain := d.bufDomain(p.Core())
	for i := 0; i < q.RxRing.Size(); i++ {
		buf, err := d.k.Alloc(domain, d.rxBufSize)
		if err != nil {
			return err
		}
		if err := d.postRxBuf(p, q, buf); err != nil {
			return err
		}
	}
	return nil
}

func (d *Driver) postRxBuf(p *sim.Proc, q *nic.Queue, buf mem.Buf) error {
	addr, err := d.mapper.Map(p, buf, dmaapi.FromDevice)
	if err != nil {
		if errors.Is(err, dmaapi.ErrBackpressure) {
			// Shed load instead of failing the datapath: free the buffer
			// and let the ring run shallower until pressure clears.
			d.BackpressureDrops++
			_ = d.k.Free(buf)
			return nil
		}
		return err
	}
	if !q.PostRx(p, nic.Desc{Addr: addr, Len: buf.Size, Tag: buf}) {
		return fmt.Errorf("netstack: rx ring overflow")
	}
	return nil
}

// PacketLenHint is the copying hint (§5.4) the evaluation installs for the
// copy strategy: it parses the 2-byte length header of the simulated wire
// format (standing in for the IP total-length field) from the untrusted,
// device-written shadow buffer, defensively clamping to the mapped size.
func PacketLenHint(m *mem.Memory, shadowBuf mem.Buf, mapped int) int {
	var hdr [2]byte
	if shadowBuf.Size < 2 || m.Read(shadowBuf.Addr, hdr[:]) != nil {
		return mapped
	}
	n := int(hdr[0])<<8 | int(hdr[1])
	if n < 2 || n > mapped {
		return mapped // untrusted input: fall back to the full copy
	}
	return n
}

// RxStats accumulates receive-side results.
type RxStats struct {
	Bytes    uint64
	Frames   uint64
	Messages uint64
}

// handleRx processes one receive completion: dma_unmap, protocol parsing,
// optional firewall, copy to userspace, buffer recycle.
func (d *Driver) handleRx(p *sim.Proc, q *nic.Queue, c nic.RxCompletion, msgSize int, msgAcc *int, st *RxStats) error {
	if p.Observed() {
		p.SpanEnter("rx")
		defer p.SpanExit()
	}
	buf := c.Desc.Tag
	if err := d.mapper.Unmap(p, c.Desc.Addr, buf.Size, dmaapi.FromDevice); err != nil {
		return err
	}
	co := d.env.Costs
	p.ChargeSpan("parse", cycles.TagRxParse, co.RxParse)
	p.ChargeSpan("stack", cycles.TagOther, co.PktCost(c.Len))

	dropped := false
	var payload []byte
	if d.Firewall != nil || d.OnDeliver != nil {
		payload = make([]byte, c.Len)
		if err := d.env.Mem.Read(buf.Addr, payload); err != nil {
			return err
		}
	}
	if d.Firewall != nil && !d.Firewall(p, payload) {
		d.FirewallDrops++
		dropped = true
	}
	if !dropped {
		// copy_to_user; Work (not Charge) so device-side events can
		// interleave with packet consumption, as on real hardware.
		p.WorkSpan("copy-user", cycles.TagCopyUser, co.CopyUser(c.Len))
		if d.OnDeliver != nil {
			// The application reads the buffer NOW — if a malicious
			// device modified it after the firewall check, this is
			// where the corruption bites.
			if err := d.env.Mem.Read(buf.Addr, payload); err != nil {
				return err
			}
			d.OnDeliver(p, payload)
		}
		st.Bytes += uint64(c.Len)
		st.Frames++
		*msgAcc += c.Len
		for *msgAcc >= msgSize {
			*msgAcc -= msgSize
			st.Messages++
			p.ChargeSpan("msg", cycles.TagOther, co.MsgOther)
		}
	}
	// Recycle the buffer: remap and repost.
	return d.postRxBuf(p, q, buf)
}

// RunRxStream is the netperf TCP_STREAM receive loop for one core: wait
// for interrupts, drain completions, process, repost. It runs until the
// engine stops it.
func (d *Driver) RunRxStream(p *sim.Proc, qi, msgSize int, st *RxStats) error {
	q := d.n.Queue(qi)
	msgAcc := 0
	co := d.env.Costs
	for {
		if !q.HasRx() {
			q.RxCond.WaitUntil(p, q.HasRx)
			p.Sleep(co.SchedLatency)
		}
		p.ChargeSpan("rx/irq", cycles.TagOther, co.InterruptEntry)
		d.serviceFaults(p)
		for _, c := range q.DrainRx() {
			if err := d.handleRx(p, q, c, msgSize, &msgAcc, st); err != nil {
				return err
			}
		}
	}
}

// serviceFaults models the DMAR fault interrupt: drain a bounded batch of
// fault records (bounded by the ring capacity) and pay the handler cost
// for each. Runs in the datapath
// core's interrupt context, which is exactly why unquarantined fault
// storms hurt — the records are another device's, the cycles are ours.
func (d *Driver) serviceFaults(p *sim.Proc) {
	if d.FaultServiceCost == 0 {
		return
	}
	n := len(d.env.IOMMU.FaultRing().Consume(0))
	if n == 0 {
		return
	}
	d.FaultsServiced += uint64(n)
	p.ChargeSpan("fault-irq", cycles.TagOther, uint64(n)*d.FaultServiceCost)
}

// TxStats accumulates transmit-side results.
type TxStats struct {
	Bytes    uint64 // completed (acknowledged) payload bytes
	Skbs     uint64
	Messages uint64
}

// TxPool is the driver's per-queue pool of transmit buffers.
type TxPool struct {
	free []mem.Buf
}

// NewTxPool allocates n transmit buffers of the NIC's maximum skb size on
// the calling core's NUMA domain.
func (d *Driver) NewTxPool(p *sim.Proc, n int) (*TxPool, error) {
	pool := &TxPool{}
	domain := d.bufDomain(p.Core())
	for i := 0; i < n; i++ {
		b, err := d.k.Alloc(domain, d.n.MaxTxBuf())
		if err != nil {
			return nil, err
		}
		pool.free = append(pool.free, b)
	}
	return pool, nil
}

// HandleRxRaw processes one receive completion for request-oriented
// servers (e.g. the key-value store): dma_unmap, per-packet stack costs,
// payload extraction, buffer recycle. It returns the packet payload.
func (d *Driver) HandleRxRaw(p *sim.Proc, qi int, c nic.RxCompletion) ([]byte, error) {
	if p.Observed() {
		p.SpanEnter("rx")
		defer p.SpanExit()
	}
	q := d.n.Queue(qi)
	buf := c.Desc.Tag
	if err := d.mapper.Unmap(p, c.Desc.Addr, buf.Size, dmaapi.FromDevice); err != nil {
		return nil, err
	}
	co := d.env.Costs
	p.ChargeSpan("parse", cycles.TagRxParse, co.RxParse)
	p.ChargeSpan("stack", cycles.TagOther, co.PktCost(c.Len))
	payload := make([]byte, c.Len)
	if err := d.env.Mem.Read(buf.Addr, payload); err != nil {
		return nil, err
	}
	p.WorkSpan("copy-user", cycles.TagCopyUser, co.CopyUser(c.Len))
	if err := d.postRxBuf(p, q, buf); err != nil {
		return nil, err
	}
	return payload, nil
}

// RunTxStream is the netperf TCP_STREAM transmit loop for one core:
// repeatedly write msgSize bytes to the socket, segment into TSO-sized
// skbs, dma_map and post each, recycling buffers as completions arrive.
func (d *Driver) RunTxStream(p *sim.Proc, qi, msgSize int, st *TxStats) error {
	q := d.n.Queue(qi)
	maxSkb := d.n.MaxTxBuf()
	domain := d.bufDomain(p.Core())
	pool := &TxPool{}
	// The in-flight skb budget models the socket send buffer / qdisc
	// limit, not the full hardware ring.
	bufs := q.TxRing.Size()
	if bufs > 64 {
		bufs = 64
	}
	for i := 0; i < bufs; i++ {
		b, err := d.k.Alloc(domain, maxSkb)
		if err != nil {
			return err
		}
		pool.free = append(pool.free, b)
	}
	for {
		if err := d.SendMessage(p, q, pool, msgSize, st); err != nil {
			return err
		}
	}
}
