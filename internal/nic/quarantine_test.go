package nic

import (
	"testing"

	"repro/internal/iommu"
	"repro/internal/mem"
	"repro/internal/sim"
)

func TestRingWraparound(t *testing.T) {
	r := NewRing(4)
	next, want := 0, 0
	// Cycle far past capacity so head/tail wrap several times, with the
	// ring held partially full the whole way.
	for i := 0; i < 3; i++ {
		for r.Len() < 3 {
			if !r.Post(Desc{Len: next}) {
				t.Fatalf("post %d failed with len %d", next, r.Len())
			}
			next++
		}
		for r.Len() > 1 {
			d, ok := r.Pop()
			if !ok || d.Len != want {
				t.Fatalf("pop = %+v ok=%v, want Len %d", d, ok, want)
			}
			want++
		}
	}
	// Fill to capacity: the 5th post must fail, FIFO order must survive
	// the wrap.
	for !r.Full() {
		r.Post(Desc{Len: next})
		next++
	}
	if r.Post(Desc{Len: 999}) {
		t.Error("post into a full ring must fail")
	}
	if r.Len() != 4 || r.Size() != 4 {
		t.Fatalf("len=%d size=%d", r.Len(), r.Size())
	}
	for r.Len() > 0 {
		d, _ := r.Pop()
		if d.Len != want {
			t.Fatalf("pop after wrap = %d, want %d", d.Len, want)
		}
		want++
	}
	if _, ok := r.Pop(); ok {
		t.Error("pop from empty ring must fail")
	}
}

func TestRxQuarantineDropPreservesCredits(t *testing.T) {
	r := newNICRig(1, false)
	q := r.n.Queue(0)
	buf, _ := r.m.AllocPages(0, 2)
	r.eng.Spawn("drv", 0, 0, func(p *sim.Proc) {
		q.PostRx(p, Desc{Addr: iommu.IOVA(buf), Len: 2048})
		q.PostRx(p, Desc{Addr: iommu.IOVA(buf) + mem.PageSize, Len: 2048})
	})
	payload := make([]byte, 1000)
	r.eng.Schedule(100, func(now uint64) {
		// Quarantined: the frame is dropped before the ring — no
		// descriptor consumed, no translation attempted, no fault logged.
		r.u.Block(7)
		q.DeliverFrame(now, payload)
	})
	r.eng.Schedule(200, func(now uint64) {
		// Readmitted: the surviving credits carry traffic immediately.
		r.u.Unblock(7)
		q.DeliverFrame(now, payload)
	})
	r.eng.Run(1 << 30)
	r.eng.Stop()
	if r.n.RxQuarantineDrops != 1 {
		t.Errorf("RxQuarantineDrops = %d, want 1", r.n.RxQuarantineDrops)
	}
	if r.u.FaultCount != 0 || r.u.Translations != 1 {
		t.Errorf("faults=%d translations=%d; quarantine drop must be pre-translation",
			r.u.FaultCount, r.u.Translations)
	}
	if q.RxRing.Len() != 1 {
		t.Errorf("ring len = %d, want 1 (one credit consumed post-readmit, one survived the drop)", q.RxRing.Len())
	}
	if r.n.RxFrames != 1 || !q.HasRx() {
		t.Errorf("frames=%d hasRx=%v; post-readmit delivery should complete", r.n.RxFrames, q.HasRx())
	}
}

func TestRxNoBufDropOnEmptyRing(t *testing.T) {
	r := newNICRig(1, false)
	q := r.n.Queue(0)
	r.eng.Schedule(0, func(now uint64) {
		q.DeliverFrame(now, make([]byte, 500))
	})
	r.eng.Run(1 << 30)
	r.eng.Stop()
	if r.n.RxNoBufDrops != 1 || r.n.RxFrames != 0 {
		t.Errorf("nobuf=%d frames=%d, want 1/0", r.n.RxNoBufDrops, r.n.RxFrames)
	}
	if r.u.FaultCount != 0 {
		t.Errorf("an empty-ring drop must not fault (faults=%d)", r.u.FaultCount)
	}
}
