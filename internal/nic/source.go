package nic

import (
	"repro/internal/cycles"
	"repro/internal/sim"
)

// Source models the remote traffic-generator machine for receive-side
// tests. It is not a simulated CPU (the generator "runs with its IOMMU
// disabled" and is never the bottleneck, per the paper's methodology),
// but it respects three real limits:
//
//   - the shared 40 Gb/s wire,
//   - the receiver's posted-buffer credit (lossless TCP flow control), and
//   - its own syscall rate for small messages (paper footnote 6: "the
//     limiting factor is the sender's system call execution rate").
type Source struct {
	eng   *sim.Engine
	q     *Queue
	wire  *Wire
	costs *cycles.Costs

	msgSize  int
	mtu      int
	interval uint64 // min cycles between message starts (syscall cap)
	openLoop bool   // stream mode: always have a message to send
	payload  func(msgSeq, frameIdx int, b []byte)
	sizeFn   func(msgSeq int) int // optional per-message size override
	curSize  int                  // size of the in-progress message

	nextMsgAt   uint64
	msgSeq      int
	frameOffset int // bytes of the current message already sent
	inflight    int // frames on the wire not yet delivered
	pendingMsgs int // manual mode: messages queued by EnqueueMessage
	stopped     bool
	timerArmed  bool

	// Stats
	MessagesSent uint64
	FramesSent   uint64
	BytesSent    uint64

	scratch []byte
}

// NewSource creates a traffic source feeding queue q.
func NewSource(eng *sim.Engine, q *Queue, costs *cycles.Costs, msgSize, mtu int, openLoop bool) *Source {
	s := &Source{
		eng:      eng,
		q:        q,
		wire:     q.nic.rxWire,
		costs:    costs,
		msgSize:  msgSize,
		mtu:      mtu,
		openLoop: openLoop,
		scratch:  make([]byte, mtu),
	}
	if costs.RemoteSyscallsPerSec > 0 {
		s.interval = cycles.Hz / costs.RemoteSyscallsPerSec
	}
	q.SetCreditHook(func(now uint64) { s.pump(now) })
	return s
}

// SetPayload installs a payload generator (for firewall/attack scenarios).
func (s *Source) SetPayload(fn func(msgSeq, frameIdx int, b []byte)) { s.payload = fn }

// SetSizeFn installs a per-message size override (for mixed workloads such
// as memslap's GET/SET traffic).
func (s *Source) SetSizeFn(fn func(msgSeq int) int) { s.sizeFn = fn }

// Start begins open-loop transmission at time t.
func (s *Source) Start(t uint64) {
	s.nextMsgAt = t
	s.eng.Schedule(t, s.pump)
}

// Stop halts the source.
func (s *Source) Stop() { s.stopped = true }

// EnqueueMessage queues one message for manual (request/response) mode.
func (s *Source) EnqueueMessage(now uint64) {
	s.pendingMsgs++
	s.pump(now)
}

// pump advances the source state machine (engine context). It sends as
// many frames as wire+credit+rate allow, then either goes dormant (resumed
// by the credit hook) or re-arms a timer for the next permitted message.
func (s *Source) pump(now uint64) {
	if s.stopped {
		return
	}
	for {
		if s.frameOffset == 0 {
			// Need to start a new message.
			if !s.openLoop && s.pendingMsgs == 0 {
				return
			}
			if now < s.nextMsgAt {
				s.armTimer(s.nextMsgAt)
				return
			}
		}
		if s.q.RxCredits()-s.inflight <= 0 {
			return // receiver-limited; credit hook will resume us
		}
		if s.frameOffset == 0 {
			// Commit to the new message.
			if !s.openLoop {
				s.pendingMsgs--
			}
			s.curSize = s.msgSize
			if s.sizeFn != nil {
				s.curSize = s.sizeFn(s.msgSeq)
			}
			s.MessagesSent++
			next := s.nextMsgAt + s.interval
			if now > s.nextMsgAt {
				next = now + s.interval
			}
			s.nextMsgAt = next
		}
		frame := s.curSize - s.frameOffset
		if frame > s.mtu {
			frame = s.mtu
		}
		frameIdx := s.frameOffset / s.mtu
		seq := s.msgSeq
		s.frameOffset += frame
		if s.frameOffset >= s.curSize {
			s.frameOffset = 0
			s.msgSeq++
		}
		payload := s.scratch[:frame]
		if s.payload != nil {
			s.payload(seq, frameIdx, payload)
		} else {
			for i := range payload {
				payload[i] = 0
			}
			// Default wire format: a 2-byte length header, standing in
			// for the IP total-length field that the paper's copying
			// hint parses (§5.4).
			if frame >= 2 {
				payload[0] = byte(frame >> 8)
				payload[1] = byte(frame)
			}
		}
		// Copy for the in-flight frame (DeliverFrame runs later).
		data := make([]byte, frame)
		copy(data, payload)
		end := s.wire.Reserve(now, frame) + s.costs.DMALatency
		s.inflight++
		s.FramesSent++
		s.BytesSent += uint64(frame)
		s.eng.Schedule(end, func(at uint64) {
			s.inflight--
			s.q.DeliverFrame(at, data)
			s.pump(at)
		})
	}
}

func (s *Source) armTimer(at uint64) {
	if s.timerArmed {
		return
	}
	s.timerArmed = true
	s.eng.Schedule(at, func(now uint64) {
		s.timerArmed = false
		s.pump(now)
	})
}
