package nic

import (
	"repro/internal/cycles"
	"repro/internal/sim"
)

// Source models the remote traffic-generator machine for receive-side
// tests. It is not a simulated CPU (the generator "runs with its IOMMU
// disabled" and is never the bottleneck, per the paper's methodology),
// but it respects three real limits:
//
//   - the shared 40 Gb/s wire,
//   - the receiver's posted-buffer credit (lossless TCP flow control), and
//   - its own syscall rate for small messages (paper footnote 6: "the
//     limiting factor is the sender's system call execution rate").
type Source struct {
	eng   *sim.Engine
	q     *Queue
	wire  *Wire
	costs *cycles.Costs

	msgSize  int
	mtu      int
	interval uint64 // min cycles between message starts (syscall cap)
	openLoop bool   // stream mode: always have a message to send
	payload  func(msgSeq, frameIdx int, b []byte)
	sizeFn   func(msgSeq int) int // optional per-message size override
	curSize  int                  // size of the in-progress message

	nextMsgAt   uint64
	msgSeq      int
	frameOffset int // bytes of the current message already sent
	inflight    int // frames on the wire not yet delivered
	pendingMsgs int // manual mode: messages queued by EnqueueMessage
	stopped     bool
	timerArmed  bool

	// Stats
	MessagesSent uint64
	FramesSent   uint64
	BytesSent    uint64

	scratch []byte

	// In-flight frames, delivered FIFO: per source the scheduled delivery
	// times are monotonic (Wire.Reserve is) and the engine is FIFO for
	// equal timestamps, so one cached callback popping from the front
	// replaces a fresh closure per frame. Default-payload frames (zeros
	// plus a 2-byte length header) carry data == nil and are regenerated
	// at delivery from deliverBuf — a credit-limited source can hold tens
	// of thousands of frames in flight, and materializing each one was
	// the single largest item in the host heap profile. Frames from a
	// payload hook are copied as before, into recycled buffers.
	pending    []pendingFrame
	pendingAt  int
	free       [][]byte
	deliverBuf []byte // all-zero past byte 1; headers patched in place
	deliverCb  func(at uint64)
	timerCb    func(now uint64)
}

// pendingFrame is one frame on the wire. data == nil means default
// payload, reconstructed at delivery time from ln alone.
type pendingFrame struct {
	ln   int
	data []byte
}

// NewSource creates a traffic source feeding queue q.
func NewSource(eng *sim.Engine, q *Queue, costs *cycles.Costs, msgSize, mtu int, openLoop bool) *Source {
	s := &Source{
		eng:      eng,
		q:        q,
		wire:     q.nic.rxWire,
		costs:    costs,
		msgSize:  msgSize,
		mtu:      mtu,
		openLoop: openLoop,
		scratch:  make([]byte, mtu),
	}
	if costs.RemoteSyscallsPerSec > 0 {
		s.interval = cycles.Hz / costs.RemoteSyscallsPerSec
	}
	s.deliverCb = s.deliver
	s.timerCb = func(now uint64) {
		s.timerArmed = false
		s.pump(now)
	}
	q.SetCreditHook(func(now uint64) { s.pump(now) })
	return s
}

// SetPayload installs a payload generator (for firewall/attack scenarios).
func (s *Source) SetPayload(fn func(msgSeq, frameIdx int, b []byte)) { s.payload = fn }

// SetSizeFn installs a per-message size override (for mixed workloads such
// as memslap's GET/SET traffic).
func (s *Source) SetSizeFn(fn func(msgSeq int) int) { s.sizeFn = fn }

// Start begins open-loop transmission at time t.
func (s *Source) Start(t uint64) {
	s.nextMsgAt = t
	s.eng.Schedule(t, s.pump)
}

// Stop halts the source.
func (s *Source) Stop() { s.stopped = true }

// EnqueueMessage queues one message for manual (request/response) mode.
func (s *Source) EnqueueMessage(now uint64) {
	s.pendingMsgs++
	s.pump(now)
}

// pump advances the source state machine (engine context). It sends as
// many frames as wire+credit+rate allow, then either goes dormant (resumed
// by the credit hook) or re-arms a timer for the next permitted message.
func (s *Source) pump(now uint64) {
	if s.stopped {
		return
	}
	for {
		if s.frameOffset == 0 {
			// Need to start a new message.
			if !s.openLoop && s.pendingMsgs == 0 {
				return
			}
			if now < s.nextMsgAt {
				s.armTimer(s.nextMsgAt)
				return
			}
		}
		if s.q.RxCredits()-s.inflight <= 0 {
			return // receiver-limited; credit hook will resume us
		}
		if s.frameOffset == 0 {
			// Commit to the new message.
			if !s.openLoop {
				s.pendingMsgs--
			}
			s.curSize = s.msgSize
			if s.sizeFn != nil {
				s.curSize = s.sizeFn(s.msgSeq)
			}
			s.MessagesSent++
			next := s.nextMsgAt + s.interval
			if now > s.nextMsgAt {
				next = now + s.interval
			}
			s.nextMsgAt = next
		}
		frame := s.curSize - s.frameOffset
		if frame > s.mtu {
			frame = s.mtu
		}
		frameIdx := s.frameOffset / s.mtu
		seq := s.msgSeq
		s.frameOffset += frame
		if s.frameOffset >= s.curSize {
			s.frameOffset = 0
			s.msgSeq++
		}
		pf := pendingFrame{ln: frame}
		if s.payload != nil {
			// Hook-generated content must be captured at send time (the
			// hook may be stateful); copy it into a recycled buffer. The
			// bytes match a fresh allocation because copy overwrites the
			// whole slice.
			payload := s.scratch[:frame]
			s.payload(seq, frameIdx, payload)
			if n := len(s.free); n > 0 {
				pf.data = s.free[n-1][:frame]
				s.free = s.free[:n-1]
			} else {
				pf.data = make([]byte, frame, s.mtu)
			}
			copy(pf.data, payload)
		}
		end := s.wire.Reserve(now, frame) + s.costs.DMALatency
		s.inflight++
		s.FramesSent++
		s.BytesSent += uint64(frame)
		s.pending = append(s.pending, pf)
		s.eng.Schedule(end, s.deliverCb)
	}
}

// deliver completes the oldest in-flight frame (engine context). One
// scheduled deliverCb exists per pending entry and per-source delivery is
// FIFO, so popping the front is always the frame this callback was
// scheduled for. DeliverFrame consumes the payload synchronously (the DMA
// write copies it into simulated memory), so buffers are shared/recycled
// immediately after.
func (s *Source) deliver(at uint64) {
	pf := s.pending[s.pendingAt]
	s.pending[s.pendingAt] = pendingFrame{}
	s.pendingAt++
	if s.pendingAt == len(s.pending) {
		s.pending = s.pending[:0]
		s.pendingAt = 0
	}
	s.inflight--
	data := pf.data
	if data == nil {
		// Default wire format: a 2-byte length header, standing in for
		// the IP total-length field that the paper's copying hint parses
		// (§5.4), over an all-zero body. deliverBuf is zero past byte 1
		// by construction, so only the header needs patching.
		if s.deliverBuf == nil {
			s.deliverBuf = make([]byte, s.mtu)
		}
		data = s.deliverBuf[:pf.ln]
		if pf.ln >= 2 {
			data[0] = byte(pf.ln >> 8)
			data[1] = byte(pf.ln)
		} else if pf.ln == 1 {
			data[0] = 0
		}
	}
	s.q.DeliverFrame(at, data)
	if pf.data != nil {
		s.free = append(s.free, pf.data[:cap(pf.data)])
	}
	s.pump(at)
}

func (s *Source) armTimer(at uint64) {
	if s.timerArmed {
		return
	}
	s.timerArmed = true
	s.eng.Schedule(at, s.timerCb)
}
