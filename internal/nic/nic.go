// Package nic simulates a 40 Gb/s NIC in the mold of the paper's Intel
// Fortville XL710: per-core receive/transmit descriptor rings, TCP
// segmentation offload (TSO) for buffers up to 64 KiB, a shared full-duplex
// wire, and a DMA engine that reads and writes host memory exclusively
// through the IOMMU. Hooks expose every DMA the device performs so the
// attack suite can model a compromised NIC replaying or scanning IOVAs.
package nic

import (
	"repro/internal/cycles"
	"repro/internal/iommu"
	"repro/internal/sim"
)

// Config parameterizes the simulated NIC.
type Config struct {
	Dev      iommu.DeviceID
	Queues   int // one queue pair per core, as in the paper's methodology
	RingSize int
	MTU      int  // wire MSS payload (1500 in the paper)
	TSO      bool // segment up to 64 KiB TX buffers in hardware
	Costs    *cycles.Costs
}

// NIC is the simulated device.
type NIC struct {
	eng *sim.Engine
	u   *iommu.IOMMU
	cfg Config

	queues []*Queue
	rxWire *Wire // traffic-generator -> us
	txWire *Wire // us -> traffic-generator

	// RxDMAHook observes every receive DMA the device performs (queue,
	// IOVA, bytes). A compromised NIC (internal/attack) uses it to
	// remember IOVAs for replay.
	RxDMAHook func(q int, addr iommu.IOVA, n int)
	// TxDMAHook observes every transmit DMA (payload fetch).
	TxDMAHook func(q int, addr iommu.IOVA, n int)
	// TxDeliveredHook fires when a transmitted frame's last bit reaches
	// the remote machine (for request/response latency measurement).
	TxDeliveredHook func(q int, at uint64, payloadBytes int)
	// RxPostHook observes every RX descriptor the driver posts (queue,
	// IOVA, buffer length). Descriptors are device-visible by design, so
	// this is the legitimate channel through which a compromised device
	// learns DMA addresses; internal/campaign's attacker notebook rides
	// on it.
	RxPostHook func(q int, addr iommu.IOVA, n int)

	// Stats
	RxFrames, TxFrames uint64
	RxDrops            uint64
	RxFaults, TxFaults uint64
	RxBytes, TxBytes   uint64
	TxSkbs             uint64
	RxNoBufDrops       uint64
	// Quarantine drops: frames/descriptors rejected because the device
	// is blocked at the IOMMU root (internal/resilience). RX drops
	// consume no descriptor — posted credits survive the quarantine — so
	// readmission resumes with a full ring.
	RxQuarantineDrops uint64
	TxQuarantineDrops uint64
}

// Queue is one RX/TX queue pair with its completion queues and interrupt
// conditions.
type Queue struct {
	nic *NIC
	idx int

	RxRing *Ring[Desc]
	TxRing *Ring[Desc]

	rxComp []RxCompletion
	RxCond *sim.Cond

	txComp        []Desc
	TxCond        *sim.Cond
	txOutstanding int // posted but not yet completed (bounds in-flight)

	txBusyTill uint64 // per-queue DMA engine availability

	// onCredit is invoked (engine context) whenever the driver posts a
	// new RX buffer; traffic sources use it to resume when the receiver
	// was the bottleneck.
	onCredit func(now uint64)
}

// RxCompletion reports one received frame.
type RxCompletion struct {
	Desc Desc
	Len  int
}

// New creates the NIC.
func New(eng *sim.Engine, u *iommu.IOMMU, cfg Config) *NIC {
	if cfg.Queues < 1 {
		cfg.Queues = 1
	}
	if cfg.MTU <= 0 {
		cfg.MTU = 1500
	}
	if cfg.RingSize <= 0 {
		cfg.RingSize = 256
	}
	n := &NIC{
		eng:    eng,
		u:      u,
		cfg:    cfg,
		rxWire: NewWire(cfg.Costs),
		txWire: NewWire(cfg.Costs),
	}
	for i := 0; i < cfg.Queues; i++ {
		n.queues = append(n.queues, &Queue{
			nic:    n,
			idx:    i,
			RxRing: NewRing(cfg.RingSize),
			TxRing: NewRing(cfg.RingSize),
			RxCond: sim.NewCond("rx"),
			TxCond: sim.NewCond("tx"),
		})
		// Attach-time interrupt setup: the OS grants one MSI vector per
		// queue pair, programming the IOMMU's interrupt-remapping table.
		// Anything else the device signals is spurious (iommu/msi.go).
		u.GrantMSI(cfg.Dev, msiVector(i))
	}
	return n
}

// msiVector is queue i's granted interrupt vector.
func msiVector(q int) uint32 { return 32 + uint32(q) }

// Queue returns queue pair i.
func (n *NIC) Queue(i int) *Queue { return n.queues[i] }

// Config returns the NIC configuration.
func (n *NIC) Config() Config { return n.cfg }

// RxWire and TxWire expose the two wire directions.
func (n *NIC) RxWire() *Wire { return n.rxWire }

// TxWire returns the transmit-direction wire.
func (n *NIC) TxWire() *Wire { return n.txWire }

// MaxTxBuf returns the largest transmit buffer the driver may post: 64 KiB
// with TSO, one MTU without.
func (n *NIC) MaxTxBuf() int {
	if n.cfg.TSO {
		return 64 * 1024
	}
	return n.cfg.MTU
}

// ---- Receive path (device side, engine context) ----

// SetCreditHook registers the traffic source's resume callback for queue q.
func (q *Queue) SetCreditHook(fn func(now uint64)) { q.onCredit = fn }

// PostRx posts a receive buffer (driver context). It notifies the traffic
// source that receive credit is available.
func (q *Queue) PostRx(p *sim.Proc, d Desc) bool {
	if !q.RxRing.Post(d) {
		return false
	}
	if q.nic.RxPostHook != nil {
		q.nic.RxPostHook(q.idx, d.Addr, d.Len)
	}
	if q.onCredit != nil {
		q.onCredit(p.Now())
	}
	return true
}

// RxCredits returns the number of posted receive buffers (the flow-control
// window the traffic generator sees).
func (q *Queue) RxCredits() int { return q.RxRing.Len() }

// DeliverFrame lands one wire frame into the queue (engine context, called
// by a traffic source at wire-arrival time). The payload is DMA-written
// through the IOMMU into the next posted buffer; translation faults drop
// the frame (and are visible in the IOMMU fault log).
func (q *Queue) DeliverFrame(now uint64, payload []byte) {
	n := q.nic
	if n.u.Blocked(n.cfg.Dev) {
		// Quarantined: the root port would reject the DMA, so don't even
		// consume a descriptor — the drop costs nothing, no translation
		// is attempted, and the posted buffers survive for readmission.
		n.RxQuarantineDrops++
		return
	}
	d, ok := q.RxRing.Pop()
	if !ok {
		n.RxNoBufDrops++
		return
	}
	ln := len(payload)
	if ln > d.Len {
		ln = d.Len
	}
	if n.RxDMAHook != nil {
		n.RxDMAHook(q.idx, d.Addr, ln)
	}
	res := n.u.DMAWrite(n.cfg.Dev, d.Addr, payload[:ln])
	if res.Fault != nil {
		n.RxFaults++
		n.RxDrops++
		return
	}
	n.RxFrames++
	n.RxBytes += uint64(ln)
	q.rxComp = append(q.rxComp, RxCompletion{Desc: d, Len: ln})
	// Interrupt after the IRQ delivery latency; NAPI-style batching
	// happens naturally because the driver drains everything pending.
	// The doorbell write is the MSI that carries it (accounting only —
	// no simulated time, no gated metrics).
	n.u.MSIWrite(n.cfg.Dev, iommu.MSIBase, msiVector(q.idx))
	q.RxCond.SignalAt(now+res.Latency+n.cfg.Costs.IRQLatency, 1)
}

// DrainRx takes all pending receive completions (driver context).
func (q *Queue) DrainRx() []RxCompletion {
	out := q.rxComp
	q.rxComp = nil
	return out
}

// HasRx reports whether receive completions are pending.
func (q *Queue) HasRx() bool { return len(q.rxComp) > 0 }

// ---- Transmit path ----

// PostTx posts a transmit descriptor and rings the doorbell (driver
// context). It reports false when the ring is full.
func (q *Queue) PostTx(p *sim.Proc, d Desc) bool {
	if d.Len > q.nic.MaxTxBuf() {
		return false
	}
	if q.txOutstanding >= q.TxRing.Size() {
		return false // hardware owns the whole ring; wait for completions
	}
	if !q.TxRing.Post(d) {
		return false
	}
	q.txOutstanding++
	q.nic.eng.Schedule(p.Now(), q.deviceTx)
	return true
}

// deviceTx is the device-side transmit engine for this queue: it fetches
// descriptors, DMA-reads payloads through the IOMMU, segments (TSO) and
// puts frames on the shared wire.
func (q *Queue) deviceTx(now uint64) {
	n := q.nic
	for {
		d, ok := q.TxRing.Pop()
		if !ok {
			return
		}
		if n.u.Blocked(n.cfg.Dev) {
			// Quarantined: skip the payload fetch entirely and complete
			// the descriptor as an error, so the driver never wedges on
			// a ring the hardware will not drain.
			n.TxQuarantineDrops++
			q.completeTx(now, d)
			continue
		}
		if n.TxDMAHook != nil {
			n.TxDMAHook(q.idx, d.Addr, d.Len)
		}
		buf := make([]byte, d.Len)
		res := n.u.DMARead(n.cfg.Dev, d.Addr, buf)
		start := now
		if q.txBusyTill > start {
			start = q.txBusyTill
		}
		// Payload fetch latency is pipelined with transmission (the DMA
		// engine prefetches ahead of the serializer), so it does not
		// delay the wire.
		if res.Fault != nil {
			n.TxFaults++
			// The DMA aborted: complete the descriptor with an error
			// (drivers see it as a TX hang/error completion).
			q.completeTx(start, d)
			continue
		}
		// Segment and transmit.
		last := start
		qi := q.idx
		for off := 0; off < d.Len; off += n.cfg.MTU {
			seg := d.Len - off
			if seg > n.cfg.MTU {
				seg = n.cfg.MTU
			}
			last = n.txWire.Reserve(last, seg)
			n.TxFrames++
			n.TxBytes += uint64(seg)
			if n.TxDeliveredHook != nil {
				hookAt := last + n.cfg.Costs.DMALatency
				segLen := seg
				n.eng.Schedule(hookAt, func(at uint64) {
					n.TxDeliveredHook(qi, at, segLen)
				})
			}
		}
		n.TxSkbs++
		q.txBusyTill = last
		q.completeTx(last, d)
	}
}

func (q *Queue) completeTx(at uint64, d Desc) {
	n := q.nic
	n.u.MSIWrite(n.cfg.Dev, iommu.MSIBase, msiVector(q.idx))
	n.eng.Schedule(at+n.cfg.Costs.IRQLatency, func(now uint64) {
		q.txOutstanding--
		q.txComp = append(q.txComp, d)
		q.TxCond.SignalAt(now, 1)
	})
}

// DrainTx takes all pending transmit completions (driver context).
func (q *Queue) DrainTx() []Desc {
	out := q.txComp
	q.txComp = nil
	return out
}

// HasTx reports whether transmit completions are pending.
func (q *Queue) HasTx() bool { return len(q.txComp) > 0 }

// TxInFlight returns the number of posted-but-uncompleted TX descriptors.
func (q *Queue) TxInFlight() int { return q.txOutstanding }
