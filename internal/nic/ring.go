package nic

import (
	"repro/internal/iommu"
	"repro/internal/mem"
)

// Desc is a DMA descriptor: an IOVA handed to the device plus a length.
type Desc struct {
	Addr iommu.IOVA
	Len  int
	// Tag carries the driver-private backing buffer for the descriptor;
	// the device never interprets it. It is a concrete mem.Buf rather
	// than interface{} so posting a descriptor never boxes (one heap
	// allocation per posted buffer at interface{}).
	Tag mem.Buf
}

// Ring is a fixed-size circular ring, generic over the slot type. The
// producer posts at the tail; the consumer pops from the head. With the
// engine's run-one-at-a-time semantics no internal locking is needed,
// mirroring the single-producer/single-consumer discipline of real
// per-queue rings. The NIC queues use Ring[Desc]; internal/tenant reuses
// the same structure for per-tenant application descriptor rings and
// shadow-slot free lists.
type Ring[T any] struct {
	slots []T
	head  int // next to consume (device)
	tail  int // next to fill (driver)
	count int
}

// NewRing creates a descriptor ring with the given number of slots (the
// historical, Desc-typed constructor).
func NewRing(size int) *Ring[Desc] { return NewRingOf[Desc](size) }

// NewRingOf creates a ring of any slot type with the given capacity.
func NewRingOf[T any](size int) *Ring[T] {
	if size <= 0 {
		size = 256
	}
	return &Ring[T]{slots: make([]T, size)}
}

// Size returns the ring capacity.
func (r *Ring[T]) Size() int { return len(r.slots) }

// Len returns the number of posted, unconsumed slots.
func (r *Ring[T]) Len() int { return r.count }

// Full reports whether no slots are free.
func (r *Ring[T]) Full() bool { return r.count == len(r.slots) }

// Post adds an entry at the tail; it reports false when full.
func (r *Ring[T]) Post(d T) bool {
	if r.Full() {
		return false
	}
	r.slots[r.tail] = d
	r.tail = (r.tail + 1) % len(r.slots)
	r.count++
	return true
}

// Pop consumes the head entry; ok is false when the ring is empty.
func (r *Ring[T]) Pop() (T, bool) {
	if r.count == 0 {
		var zero T
		return zero, false
	}
	d := r.slots[r.head]
	r.head = (r.head + 1) % len(r.slots)
	r.count--
	return d, true
}
