package nic

import (
	"repro/internal/iommu"
	"repro/internal/mem"
)

// Desc is a DMA descriptor: an IOVA handed to the device plus a length.
type Desc struct {
	Addr iommu.IOVA
	Len  int
	// Tag carries the driver-private backing buffer for the descriptor;
	// the device never interprets it. It is a concrete mem.Buf rather
	// than interface{} so posting a descriptor never boxes (one heap
	// allocation per posted buffer at interface{}).
	Tag mem.Buf
}

// Ring is a fixed-size circular descriptor ring. The driver posts at the
// tail; the device consumes from the head. With the engine's run-one-
// at-a-time semantics no internal locking is needed, mirroring the
// single-producer/single-consumer discipline of real per-queue rings.
type Ring struct {
	slots []Desc
	head  int // next to consume (device)
	tail  int // next to fill (driver)
	count int
}

// NewRing creates a ring with the given number of descriptor slots.
func NewRing(size int) *Ring {
	if size <= 0 {
		size = 256
	}
	return &Ring{slots: make([]Desc, size)}
}

// Size returns the ring capacity.
func (r *Ring) Size() int { return len(r.slots) }

// Len returns the number of posted, unconsumed descriptors.
func (r *Ring) Len() int { return r.count }

// Full reports whether no slots are free.
func (r *Ring) Full() bool { return r.count == len(r.slots) }

// Post adds a descriptor at the tail; it reports false when full.
func (r *Ring) Post(d Desc) bool {
	if r.Full() {
		return false
	}
	r.slots[r.tail] = d
	r.tail = (r.tail + 1) % len(r.slots)
	r.count++
	return true
}

// Pop consumes the head descriptor; ok is false when the ring is empty.
func (r *Ring) Pop() (Desc, bool) {
	if r.count == 0 {
		return Desc{}, false
	}
	d := r.slots[r.head]
	r.head = (r.head + 1) % len(r.slots)
	r.count--
	return d, true
}
