package nic

import (
	"bytes"
	"testing"

	"repro/internal/cycles"
	"repro/internal/iommu"
	"repro/internal/mem"
	"repro/internal/sim"
)

func TestRingFIFO(t *testing.T) {
	r := NewRing(3)
	for i := 0; i < 3; i++ {
		if !r.Post(Desc{Addr: iommu.IOVA(i), Len: 100}) {
			t.Fatalf("post %d failed", i)
		}
	}
	if r.Post(Desc{}) {
		t.Error("post to full ring should fail")
	}
	if !r.Full() || r.Len() != 3 {
		t.Error("ring state wrong")
	}
	for i := 0; i < 3; i++ {
		d, ok := r.Pop()
		if !ok || d.Addr != iommu.IOVA(i) {
			t.Fatalf("pop %d = %+v ok=%v", i, d, ok)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Error("pop from empty ring should fail")
	}
	// Wraparound.
	for i := 0; i < 10; i++ {
		if !r.Post(Desc{Addr: iommu.IOVA(100 + i)}) {
			t.Fatal("wrap post failed")
		}
		d, _ := r.Pop()
		if d.Addr != iommu.IOVA(100+i) {
			t.Fatal("wraparound order broken")
		}
	}
}

func TestWireSerializes(t *testing.T) {
	c := cycles.Default()
	w := NewWire(c)
	e1 := w.Reserve(0, 1500)
	e2 := w.Reserve(0, 1500)
	if e2 <= e1 {
		t.Error("second frame must queue behind the first")
	}
	per := c.WireCycles(1500 + frameOverhead)
	if e2-e1 != per {
		t.Errorf("spacing = %d, want %d", e2-e1, per)
	}
	// Line rate: 40 Gb/s of 1500 B payload frames.
	gbps := cycles.Gbps(1500, per)
	if gbps < 37 || gbps > 40 {
		t.Errorf("payload throughput at line rate = %.1f Gb/s", gbps)
	}
}

type nicRig struct {
	eng *sim.Engine
	m   *mem.Memory
	u   *iommu.IOMMU
	n   *NIC
}

func newNICRig(queues int, tso bool) *nicRig {
	eng := sim.NewEngine()
	m := mem.New(1)
	u := iommu.New(eng, m, cycles.Default())
	u.SetPassthrough(7, true)
	n := New(eng, u, Config{Dev: 7, Queues: queues, RingSize: 16, MTU: 1500, TSO: tso, Costs: cycles.Default()})
	return &nicRig{eng: eng, m: m, u: u, n: n}
}

func TestRxDeliveryThroughDMA(t *testing.T) {
	r := newNICRig(1, false)
	q := r.n.Queue(0)
	buf, _ := r.m.AllocPages(0, 1)
	var got []RxCompletion
	r.eng.Spawn("drv", 0, 0, func(p *sim.Proc) {
		q.PostRx(p, Desc{Addr: iommu.IOVA(buf), Len: 2048})
		q.RxCond.WaitUntil(p, q.HasRx)
		got = q.DrainRx()
	})
	src := NewSource(r.eng, q, cycles.Default(), 1000, 1500, false)
	src.SetPayload(func(_, _ int, b []byte) {
		for i := range b {
			b[i] = 0xCD
		}
	})
	r.eng.Schedule(100, func(now uint64) { src.EnqueueMessage(now) })
	r.eng.Run(1 << 30)
	r.eng.Stop()
	if len(got) != 1 || got[0].Len != 1000 {
		t.Fatalf("completions: %+v", got)
	}
	data := make([]byte, 1000)
	r.m.Read(buf, data)
	if !bytes.Equal(data, bytes.Repeat([]byte{0xCD}, 1000)) {
		t.Error("payload did not land in the posted buffer")
	}
	if r.n.RxFrames != 1 || r.n.RxBytes != 1000 {
		t.Errorf("stats: %d frames %d bytes", r.n.RxFrames, r.n.RxBytes)
	}
}

func TestRxFaultDropsFrame(t *testing.T) {
	r := newNICRig(1, false)
	r.u.SetPassthrough(7, false) // no mappings: every DMA faults
	q := r.n.Queue(0)
	r.eng.Spawn("drv", 0, 0, func(p *sim.Proc) {
		q.PostRx(p, Desc{Addr: 0xdead000, Len: 2048})
	})
	src := NewSource(r.eng, q, cycles.Default(), 500, 1500, false)
	r.eng.Schedule(0, func(now uint64) { src.EnqueueMessage(now) })
	r.eng.Run(1 << 30)
	r.eng.Stop()
	if r.n.RxFaults != 1 || r.n.RxDrops != 1 {
		t.Errorf("faults=%d drops=%d, want 1/1", r.n.RxFaults, r.n.RxDrops)
	}
	if q.HasRx() {
		t.Error("faulted frame must not complete")
	}
}

func TestSourceRespectsCredits(t *testing.T) {
	r := newNICRig(1, false)
	q := r.n.Queue(0)
	buf, _ := r.m.AllocPages(0, 4)
	src := NewSource(r.eng, q, cycles.Default(), 1500, 1500, true) // open loop
	src.Start(0)
	delivered := 0
	r.eng.Spawn("drv", 0, 0, func(p *sim.Proc) {
		// Post only 3 buffers and never repost.
		for i := 0; i < 3; i++ {
			q.PostRx(p, Desc{Addr: iommu.IOVA(buf) + iommu.IOVA(i*2048), Len: 2048})
		}
		for delivered < 3 {
			q.RxCond.WaitUntil(p, q.HasRx)
			delivered += len(q.DrainRx())
		}
	})
	r.eng.Run(cycles.FromMillis(5))
	src.Stop()
	r.eng.Stop()
	if delivered != 3 {
		t.Fatalf("delivered = %d", delivered)
	}
	// Open-loop source with zero credit must stall, not drop.
	if r.n.RxNoBufDrops != 0 {
		t.Errorf("credit-based source should never hit an empty ring, drops=%d", r.n.RxNoBufDrops)
	}
	if src.FramesSent != 3 {
		t.Errorf("frames sent = %d, want 3 (stalled on credit)", src.FramesSent)
	}
}

func TestSourceSyscallRateCap(t *testing.T) {
	r := newNICRig(1, false)
	q := r.n.Queue(0)
	buf, _ := r.m.AllocPages(0, 1)
	c := cycles.Default()
	src := NewSource(r.eng, q, c, 64, 1500, true)
	src.Start(0)
	count := 0
	r.eng.Spawn("drv", 0, 0, func(p *sim.Proc) {
		q.PostRx(p, Desc{Addr: iommu.IOVA(buf), Len: 2048})
		for {
			q.RxCond.WaitUntil(p, q.HasRx)
			count += len(q.DrainRx())
			q.PostRx(p, Desc{Addr: iommu.IOVA(buf), Len: 2048})
		}
	})
	window := cycles.FromMillis(10)
	r.eng.Run(window)
	src.Stop()
	r.eng.Stop()
	rate := cycles.PerSec(uint64(count), window)
	// 64 B messages: capped by the sender's ~1M syscalls/s, not the wire.
	if rate > 1.1e6 || rate < 0.5e6 {
		t.Errorf("64B message rate = %.0f/s, want ~1M (syscall cap)", rate)
	}
}

func TestTxTSOSegmentsAndCompletes(t *testing.T) {
	r := newNICRig(1, true)
	q := r.n.Queue(0)
	buf, _ := r.m.AllocPages(0, 16)
	size := 64 * 1024
	var comps []Desc
	var deliveredBytes int
	r.n.TxDeliveredHook = func(qi int, at uint64, n int) { deliveredBytes += n }
	r.eng.Spawn("drv", 0, 0, func(p *sim.Proc) {
		if !q.PostTx(p, Desc{Addr: iommu.IOVA(buf), Len: size}) {
			t.Error("post failed")
			return
		}
		q.TxCond.WaitUntil(p, q.HasTx)
		comps = q.DrainTx()
	})
	r.eng.Run(1 << 32)
	r.eng.Stop()
	if len(comps) != 1 {
		t.Fatalf("completions = %d", len(comps))
	}
	wantFrames := (size + 1499) / 1500
	if int(r.n.TxFrames) != wantFrames {
		t.Errorf("TSO produced %d frames, want %d", r.n.TxFrames, wantFrames)
	}
	if deliveredBytes != size {
		t.Errorf("delivered %d bytes, want %d", deliveredBytes, size)
	}
	if r.n.TxSkbs != 1 {
		t.Errorf("skbs = %d", r.n.TxSkbs)
	}
}

func TestTxWithoutTSORejectsBigBuffers(t *testing.T) {
	r := newNICRig(1, false)
	q := r.n.Queue(0)
	r.eng.Spawn("drv", 0, 0, func(p *sim.Proc) {
		if q.PostTx(p, Desc{Addr: 0x1000, Len: 64 * 1024}) {
			t.Error("non-TSO NIC must reject 64 KiB buffers")
		}
		if r.n.MaxTxBuf() != 1500 {
			t.Errorf("MaxTxBuf = %d", r.n.MaxTxBuf())
		}
	})
	r.eng.Run(1 << 20)
	r.eng.Stop()
}

func TestTxFaultCompletesWithError(t *testing.T) {
	r := newNICRig(1, true)
	r.u.SetPassthrough(7, false)
	q := r.n.Queue(0)
	done := false
	r.eng.Spawn("drv", 0, 0, func(p *sim.Proc) {
		q.PostTx(p, Desc{Addr: 0xbad000, Len: 1000})
		q.TxCond.WaitUntil(p, q.HasTx)
		done = true
	})
	r.eng.Run(1 << 32)
	r.eng.Stop()
	if !done {
		t.Fatal("faulted TX must still complete (error completion)")
	}
	if r.n.TxFaults != 1 {
		t.Errorf("TxFaults = %d", r.n.TxFaults)
	}
	if r.n.TxFrames != 0 {
		t.Error("faulted skb must not reach the wire")
	}
}

func TestRxDMAHookObservesIOVAs(t *testing.T) {
	r := newNICRig(1, false)
	q := r.n.Queue(0)
	buf, _ := r.m.AllocPages(0, 1)
	var seen []iommu.IOVA
	r.n.RxDMAHook = func(qi int, a iommu.IOVA, n int) { seen = append(seen, a) }
	src := NewSource(r.eng, q, cycles.Default(), 100, 1500, false)
	r.eng.Spawn("drv", 0, 0, func(p *sim.Proc) {
		q.PostRx(p, Desc{Addr: iommu.IOVA(buf), Len: 2048})
	})
	r.eng.Schedule(10, func(now uint64) { src.EnqueueMessage(now) })
	r.eng.Run(1 << 30)
	r.eng.Stop()
	if len(seen) != 1 || seen[0] != iommu.IOVA(buf) {
		t.Errorf("hook saw %v", seen)
	}
}

func TestWireAggregatesMultipleQueues(t *testing.T) {
	// Two queues share the TX wire: total throughput is wire-capped.
	r := newNICRig(2, true)
	buf, _ := r.m.AllocPages(0, 32)
	for qi := 0; qi < 2; qi++ {
		q := r.n.Queue(qi)
		r.eng.Spawn("drv", qi, 0, func(p *sim.Proc) {
			for {
				for !q.PostTx(p, Desc{Addr: iommu.IOVA(buf), Len: 16 * 1024}) {
					q.TxCond.WaitUntil(p, q.HasTx)
					q.DrainTx()
				}
				if q.HasTx() {
					q.DrainTx()
				}
				p.Work("w", 100)
			}
		})
	}
	window := cycles.FromMillis(5)
	r.eng.Run(window)
	r.eng.Stop()
	gbps := cycles.Gbps(r.n.TxBytes, window)
	if gbps > 40.5 {
		t.Errorf("aggregate TX %.1f Gb/s exceeds the 40 Gb/s wire", gbps)
	}
	if gbps < 30 {
		t.Errorf("aggregate TX %.1f Gb/s too low for saturating senders", gbps)
	}
}
