package nic

import (
	"repro/internal/cycles"
)

// Wire models one direction of the 40 Gb/s link: frames occupy the wire
// serially for their serialization delay, shared by all queues.
type Wire struct {
	costs    *cycles.Costs
	busyTill uint64

	// Stats
	Frames uint64
	Bytes  uint64
}

// NewWire creates a wire using the cost model's link speed.
func NewWire(costs *cycles.Costs) *Wire {
	return &Wire{costs: costs}
}

// frameOverhead is the per-frame protocol overhead on the wire beyond the
// TCP payload (ethernet + IP + TCP headers).
const frameOverhead = 58

// Reserve schedules an n-payload-byte frame onto the wire at or after
// `now`, returning the time its last bit leaves.
func (w *Wire) Reserve(now uint64, n int) uint64 {
	start := now
	if w.busyTill > start {
		start = w.busyTill
	}
	end := start + w.costs.WireCycles(n+frameOverhead)
	w.busyTill = end
	w.Frames++
	w.Bytes += uint64(n)
	return end
}

// BusyUntil returns the time the wire frees up (for tests).
func (w *Wire) BusyUntil() uint64 { return w.busyTill }

// Utilization returns the fraction of the window the wire was busy,
// assuming back-to-back reservation from time zero.
func (w *Wire) Utilization(window uint64) float64 {
	if window == 0 {
		return 0
	}
	// Bytes ever sent times per-byte wire time, over the window.
	busy := (w.Bytes + w.Frames*frameOverhead) * 8 * cycles.Hz / (w.costs.WireGbps * 1_000_000_000)
	u := float64(busy) / float64(window)
	if u > 1 {
		u = 1
	}
	return u
}
