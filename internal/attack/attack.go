// Package attack implements the DMA attacks the paper defends against and
// evaluates every protection strategy against them. Outcomes are not
// scripted: a "compromised device" issues real DMAs through the simulated
// IOMMU, and an attack succeeds or fails according to the page-table and
// IOTLB state the strategy produced (see DESIGN.md §6).
//
// Three scenarios cover the two weaknesses of §4 plus a baseline probe:
//
//   - SubPageTheft: read kernel data co-located on the page of a mapped
//     DMA buffer (the "no sub-page protection" weakness).
//   - DeferredWindowWrite: replay a just-unmapped IOVA and corrupt reused
//     OS memory (the "deferred protection" weakness; §3 notes a write
//     within 10us of dma_unmap crashed Linux).
//   - ArbitraryScan: DMA to an address the OS never authorized at all.
package attack

import (
	"bytes"
	"fmt"

	"repro/internal/bench"
	"repro/internal/cycles"
	"repro/internal/dmaapi"
	"repro/internal/iommu"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Outcome reports what a compromised device achieved against one strategy.
type Outcome struct {
	System string

	// SubPageLeak: the device recovered secret bytes co-located with a
	// mapped buffer.
	SubPageLeak bool
	LeakedBytes []byte

	// WindowWrite: a device write issued after dma_unmap returned
	// modified OS-visible memory (vulnerability window).
	WindowWrite bool
	// WindowClosedAfterFlush: the same replay faults once deferred
	// invalidations flush.
	WindowClosedAfterFlush bool

	// ArbitraryRead: a DMA to a never-authorized address succeeded.
	ArbitraryRead bool

	Faults uint64
	Err    error
}

// newMachine assembles a quiet machine (no traffic) for attack scenarios.
func newMachine(system string) (*bench.Machine, error) {
	cfg := bench.DefaultConfig(system, bench.RX, 1, 1500)
	return bench.NewMachine(cfg)
}

// Run executes all three scenarios against one protection strategy.
func Run(system string) (Outcome, error) {
	return RunTraced(system, nil)
}

// RunTraced is Run with an optional IOMMU event tracer attached, so the
// attack's map/unmap/fault/invalidation sequence can be inspected.
func RunTraced(system string, tr *trace.Tracer) (Outcome, error) {
	out := Outcome{System: system}
	mach, err := newMachine(system)
	if err != nil {
		return out, err
	}
	mach.IOMMU.Trace = tr
	var scenarioErr error
	mach.Eng.Spawn("victim", 0, 0, func(p *sim.Proc) {
		scenarioErr = runScenarios(p, mach, &out)
	})
	mach.Eng.Run(cycles.FromMillis(50))
	out.Faults = mach.IOMMU.FaultCount
	mach.Eng.Stop()
	if scenarioErr != nil {
		out.Err = scenarioErr
	}
	return out, out.Err
}

func runScenarios(p *sim.Proc, mach *bench.Machine, out *Outcome) error {
	if err := subPageTheft(p, mach, out); err != nil {
		return fmt.Errorf("sub-page theft: %w", err)
	}
	if err := deferredWindowWrite(p, mach, out); err != nil {
		return fmt.Errorf("window write: %w", err)
	}
	if err := arbitraryScan(p, mach, out); err != nil {
		return fmt.Errorf("arbitrary scan: %w", err)
	}
	return nil
}

// secret is the co-located kernel data the device tries to steal.
var secret = []byte("TLS-PRIVATE-KEY:0xDEADBEEFCAFEBABE")

// subPageTheft maps a small kmalloc'ed buffer for device reads and then
// probes the rest of its page, where the slab allocator placed a secret.
func subPageTheft(p *sim.Proc, mach *bench.Machine, out *Outcome) error {
	m := mach.Mapper
	// Two consecutive slab allocations share a page (mem.Kmalloc is a
	// real slab): buffer first, secret second.
	dmaBuf, err := mach.Kmal.Alloc(0, 256)
	if err != nil {
		return err
	}
	secBuf, err := mach.Kmal.Alloc(0, 256)
	if err != nil {
		return err
	}
	if !mem.SamePage(dmaBuf, secBuf) {
		return fmt.Errorf("setup: buffers not co-located")
	}
	if err := mach.Mem.Write(secBuf.Addr, secret); err != nil {
		return err
	}
	addr, err := m.Map(p, dmaBuf, dmaapi.ToDevice)
	if err != nil {
		return err
	}
	// The device knows only `addr`. It computes where the secret would
	// sit if the whole page were mapped: same page, secret's offset.
	target := addr - iommu.IOVA(addr.Offset()) + iommu.IOVA(secBuf.Addr.Offset())
	got := make([]byte, len(secret))
	res := mach.IOMMU.DMARead(mach.Env.Dev, target, got)
	if res.Fault == nil && bytes.Equal(got, secret) {
		out.SubPageLeak = true
		out.LeakedBytes = got
	}
	if err := m.Unmap(p, addr, dmaBuf.Size, dmaapi.ToDevice); err != nil {
		return err
	}
	m.Quiesce(p)
	return nil
}

// deferredWindowWrite performs the §3 attack: use a mapping, let the OS
// unmap and reuse the buffer, then replay a write to the stale IOVA.
func deferredWindowWrite(p *sim.Proc, mach *bench.Machine, out *Outcome) error {
	m := mach.Mapper
	buf, err := mach.Kmal.Alloc(0, 1500)
	if err != nil {
		return err
	}
	addr, err := m.Map(p, buf, dmaapi.FromDevice)
	if err != nil {
		return err
	}
	// Legitimate use: the device delivers a packet (and thereby caches
	// the translation in the IOTLB).
	if res := mach.IOMMU.DMAWrite(mach.Env.Dev, addr, []byte("legitimate packet")); res.Fault != nil {
		return fmt.Errorf("benign DMA failed: %v", res.Fault)
	}
	if err := m.Unmap(p, addr, buf.Size, dmaapi.FromDevice); err != nil {
		return err
	}
	// The OS reuses the memory for sensitive data.
	reused := []byte("fs-metadata:inode-table-root")
	if err := mach.Mem.Write(buf.Addr, reused); err != nil {
		return err
	}
	// Replay within microseconds of the unmap (well inside the paper's
	// observed 10us crash window and the 10ms flush deadline).
	p.Sleep(cycles.FromMicros(2))
	mach.IOMMU.DMAWrite(mach.Env.Dev, addr, []byte("EVIL-OVERWRITE-OF-INODES"))
	now, _ := mach.Mem.Snapshot(buf)
	out.WindowWrite = !bytes.Equal(now[:len(reused)], reused)

	// Restore, flush deferred state, and replay again: the window must
	// close for every strategy (for copy there is nothing to flush; the
	// write lands in a quarantined shadow buffer either way).
	if err := mach.Mem.Write(buf.Addr, reused); err != nil {
		return err
	}
	m.Quiesce(p)
	p.Sleep(cycles.FromMicros(10)) // let invalidation hardware drain
	mach.IOMMU.DMAWrite(mach.Env.Dev, addr, []byte("EVIL-OVERWRITE-OF-INODES"))
	now, _ = mach.Mem.Snapshot(buf)
	out.WindowClosedAfterFlush = bytes.Equal(now[:len(reused)], reused)
	return nil
}

// arbitraryScan probes memory the OS never authorized at all: the physical
// address of a fresh kernel allocation, used directly as an IOVA.
func arbitraryScan(p *sim.Proc, mach *bench.Machine, out *Outcome) error {
	kernel, err := mach.Kmal.Alloc(0, 4096)
	if err != nil {
		return err
	}
	if err := mach.Mem.Write(kernel.Addr, []byte("unmapped kernel memory")); err != nil {
		return err
	}
	got := make([]byte, 22)
	res := mach.IOMMU.DMARead(mach.Env.Dev, iommu.IOVA(kernel.Addr), got)
	out.ArbitraryRead = res.Fault == nil && bytes.Equal(got, []byte("unmapped kernel memory"))
	return nil
}
