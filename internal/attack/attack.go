// Package attack implements the DMA attacks the paper defends against and
// evaluates every protection strategy against them. Outcomes are not
// scripted: a "compromised device" issues real DMAs through the simulated
// IOMMU, and an attack succeeds or fails according to the page-table and
// IOTLB state the strategy produced (see DESIGN.md §6).
//
// The three scenarios cover the two weaknesses of §4 plus a baseline
// probe, and run on internal/campaign's payload engine (which generalizes
// them into the full ~10-payload success matrix of cmd/attackbench):
//
//   - SubPageTheft ("subpage-harvest"): read kernel data co-located on the
//     page of a mapped DMA buffer (the "no sub-page protection" weakness).
//   - DeferredWindowWrite ("replay-window"): replay a just-unmapped IOVA
//     and corrupt reused OS memory (the "deferred protection" weakness;
//     §3 notes a write within 10us of dma_unmap crashed Linux).
//   - ArbitraryScan ("arbitrary-scan"): DMA to an address the OS never
//     authorized at all.
package attack

import (
	"repro/internal/campaign"
	"repro/internal/cycles"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Outcome reports what a compromised device achieved against one strategy.
type Outcome struct {
	System string

	// SubPageLeak: the device recovered secret bytes co-located with a
	// mapped buffer.
	SubPageLeak bool
	LeakedBytes []byte

	// WindowWrite: a device write issued after dma_unmap returned
	// modified OS-visible memory (vulnerability window).
	WindowWrite bool
	// WindowClosedAfterFlush: the same replay faults once deferred
	// invalidations flush.
	WindowClosedAfterFlush bool

	// ArbitraryRead: a DMA to a never-authorized address succeeded.
	ArbitraryRead bool

	Faults uint64
	Err    error
}

// Run executes all three scenarios against one protection strategy.
func Run(system string) (Outcome, error) {
	return RunTraced(system, nil)
}

// RunTraced is Run with an optional IOMMU event tracer attached, so the
// attack's map/unmap/fault/invalidation sequence can be inspected. The
// scenarios are campaign payloads executed back-to-back on one target
// machine, in proc context.
func RunTraced(system string, tr *trace.Tracer) (Outcome, error) {
	out := Outcome{System: system}
	t, err := campaign.NewTarget(system, 1)
	if err != nil {
		return out, err
	}
	t.Mach.IOMMU.Trace = tr
	var results [3]campaign.Result
	var scenarioErr error
	t.Mach.Eng.Spawn("victim", 0, 0, func(p *sim.Proc) {
		payloads := []campaign.Payload{
			mustFind("subpage-harvest"),
			campaign.NewReplayWindow(2, true),
			mustFind("arbitrary-scan"),
		}
		for i, pl := range payloads {
			if scenarioErr = campaign.Execute(p, t, pl, &results[i]); scenarioErr != nil {
				return
			}
		}
	})
	t.Mach.Eng.Run(cycles.FromMillis(50))
	out.Faults = t.Mach.IOMMU.FaultCount
	t.Mach.Eng.Stop()

	out.SubPageLeak = results[0].Success
	out.LeakedBytes = results[0].Leaked
	out.WindowWrite = results[1].Success
	out.WindowClosedAfterFlush = results[1].Metrics["closed_after_flush"] == 1
	out.ArbitraryRead = results[2].Success
	if scenarioErr != nil {
		out.Err = scenarioErr
	}
	return out, out.Err
}

// mustFind resolves a library payload; the names are compile-time
// constants of this package, so a miss is a programming error.
func mustFind(name string) campaign.Payload {
	pl, err := campaign.Find(name)
	if err != nil {
		panic(err)
	}
	return pl
}

// secret is the co-located kernel data the device tries to steal.
var secret = campaign.Secret
