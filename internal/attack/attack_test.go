package attack

import (
	"testing"

	"repro/internal/bench"
)

// expected encodes the paper's Table 1 security columns.
var expected = map[string]struct {
	subPageLeak  bool
	windowWrite  bool
	arbitrary    bool
	closesWindow bool
}{
	bench.SysNoIOMMU:        {subPageLeak: true, windowWrite: true, arbitrary: true, closesWindow: false},
	bench.SysLinuxStrict:    {subPageLeak: true, windowWrite: false, arbitrary: false, closesWindow: true},
	bench.SysLinuxDefer:     {subPageLeak: true, windowWrite: true, arbitrary: false, closesWindow: true},
	bench.SysIdentityStrict: {subPageLeak: true, windowWrite: false, arbitrary: false, closesWindow: true},
	bench.SysIdentityDefer:  {subPageLeak: true, windowWrite: true, arbitrary: false, closesWindow: true},
	bench.SysCopy:           {subPageLeak: false, windowWrite: false, arbitrary: false, closesWindow: true},
	// Related work (§7): SWIOTLB copies like the paper's design but the
	// device is unconstrained (passthrough), so arbitrary DMA succeeds —
	// "no protection from DMA attacks". Its copying does keep the
	// specific replayed-IOVA write inside the bounce arena.
	bench.SysSWIOTLB: {subPageLeak: false, windowWrite: false, arbitrary: true, closesWindow: true},
	// Self-invalidating hardware: page-granular (leaks sub-page data)
	// with a window bounded by the TTL — still open at the ~12us probe
	// point, hence windowWrite true and "closed after flush" false (no
	// software flush exists; see TestSelfInvalWindowClosesAtTTL).
	bench.SysSelfInval: {subPageLeak: true, windowWrite: true, arbitrary: false, closesWindow: false},
}

func TestAttackMatrixMatchesTable1(t *testing.T) {
	for sys, want := range expected {
		out, err := Run(sys)
		if err != nil {
			t.Fatalf("%s: %v", sys, err)
		}
		if out.SubPageLeak != want.subPageLeak {
			t.Errorf("%s: sub-page leak = %v, want %v", sys, out.SubPageLeak, want.subPageLeak)
		}
		if out.WindowWrite != want.windowWrite {
			t.Errorf("%s: window write = %v, want %v", sys, out.WindowWrite, want.windowWrite)
		}
		if out.ArbitraryRead != want.arbitrary {
			t.Errorf("%s: arbitrary read = %v, want %v", sys, out.ArbitraryRead, want.arbitrary)
		}
		if out.WindowClosedAfterFlush != want.closesWindow {
			t.Errorf("%s: window closed after flush = %v, want %v", sys, out.WindowClosedAfterFlush, want.closesWindow)
		}
	}
}

func TestSelfInvalWindowClosesAtTTL(t *testing.T) {
	// The Basu et al. hardware bounds the replay window to the entry TTL
	// (default 20us here): a 10us replay lands, a 100us replay faults —
	// without any software invalidation.
	samples, err := WindowSweep(bench.SysSelfInval, []float64{10, 100, 1000})
	if err != nil {
		t.Fatal(err)
	}
	if !samples[0].Landed {
		t.Error("10us replay should land (inside TTL)")
	}
	if samples[1].Landed || samples[2].Landed {
		t.Error("replays past the TTL must fault")
	}
}

func TestDeferredWindowSweepClosesAtTimer(t *testing.T) {
	// Paper §3: deferred buffers stay accessible for up to 10ms.
	samples, err := WindowSweep(bench.SysLinuxDefer, []float64{10, 9000, 11000})
	if err != nil {
		t.Fatal(err)
	}
	if !samples[0].Landed || !samples[1].Landed {
		t.Error("replays before the 10ms flush should land")
	}
	if samples[2].Landed {
		t.Error("replay after the 10ms timer flush must fault")
	}
}

func TestOnlyCopyIsFullySecure(t *testing.T) {
	out, err := Run(bench.SysCopy)
	if err != nil {
		t.Fatal(err)
	}
	if out.SubPageLeak || out.WindowWrite || out.ArbitraryRead {
		t.Errorf("copy must block every attack: %+v", out)
	}
	if len(out.LeakedBytes) != 0 {
		t.Error("copy leaked bytes")
	}
	// Every attack attempt against copy should have faulted or landed in
	// quarantined shadow memory; the arbitrary scan must fault.
	if out.Faults == 0 {
		t.Error("expected at least the arbitrary-scan fault to be recorded")
	}
}

func TestTable1CopyIsTheOnlyAllYesRow(t *testing.T) {
	rows, table, err := Table1(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(bench.AllSystems) {
		t.Fatalf("rows = %d", len(rows))
	}
	allYes := 0
	for _, r := range rows {
		ok := r.SubPageProtect && r.NoVulnWindow && r.SingleCorePerf && r.MultiCorePerf
		if ok {
			allYes++
			if r.System != bench.SysCopy {
				t.Errorf("%s unexpectedly passes every column", r.System)
			}
		}
		if r.System == bench.SysCopy && !ok {
			t.Errorf("copy must pass every Table 1 column: %+v", r)
		}
		// Strict designs close the window; deferred ones do not.
		switch r.System {
		case bench.SysIdentityStrict, bench.SysLinuxStrict:
			if !r.NoVulnWindow || r.MultiCorePerf {
				t.Errorf("%s: want window closed + multicore collapse: %+v", r.System, r)
			}
		case bench.SysIdentityDefer, bench.SysLinuxDefer:
			if r.NoVulnWindow || r.SubPageProtect {
				t.Errorf("%s: deferred page-granular design misclassified: %+v", r.System, r)
			}
		}
	}
	if allYes != 1 {
		t.Errorf("exactly one all-yes row expected (copy), got %d", allYes)
	}
	if len(table.Rows) != len(rows) {
		t.Error("rendered table row count mismatch")
	}
}

func TestNoIOMMUIsDefenseless(t *testing.T) {
	out, err := Run(bench.SysNoIOMMU)
	if err != nil {
		t.Fatal(err)
	}
	if !out.SubPageLeak || !out.WindowWrite || !out.ArbitraryRead {
		t.Errorf("no-iommu must fail every attack: %+v", out)
	}
	if string(out.LeakedBytes) != string(secret) {
		t.Errorf("leak should recover the exact secret, got %q", out.LeakedBytes)
	}
	if out.Faults != 0 {
		t.Errorf("no-iommu should never fault, got %d", out.Faults)
	}
}
