package attack

import (
	"repro/internal/campaign"
	"repro/internal/cycles"
	"repro/internal/sim"
)

// WindowSample is one point of the vulnerability-window sweep: did a
// device write replayed delayUs after dma_unmap reach OS memory?
type WindowSample struct {
	DelayUs float64
	Landed  bool
}

// WindowSweep measures how long after dma_unmap a replayed device write
// still lands, for a given protection strategy. Under Linux-style deferred
// protection the window extends to the earlier of the 250-unmap batch or
// the 10 ms timer — the paper (§3) observed that corrupting a buffer
// within 10us of its unmap crashes Linux, and notes buffers can stay
// accessible "for up to 10 milliseconds".
func WindowSweep(system string, delaysUs []float64) ([]WindowSample, error) {
	var out []WindowSample
	for _, d := range delaysUs {
		landed, err := windowProbe(system, d)
		if err != nil {
			return nil, err
		}
		out = append(out, WindowSample{DelayUs: d, Landed: landed})
	}
	return out, nil
}

// windowProbe runs the replay-window payload once at the given delay on a
// fresh machine (no flush check: the sweep charts the raw window).
func windowProbe(system string, delayUs float64) (bool, error) {
	t, err := campaign.NewTarget(system, 1)
	if err != nil {
		return false, err
	}
	w := campaign.NewReplayWindow(delayUs, false)
	var r campaign.Result
	var probeErr error
	t.Mach.Eng.Spawn("victim", 0, 0, func(p *sim.Proc) {
		probeErr = campaign.Execute(p, t, w, &r)
	})
	t.Mach.Eng.Run(cycles.FromMillis(delayUs/1000 + 30))
	t.Mach.Eng.Stop()
	return w.Landed(), probeErr
}
