package attack

import (
	"bytes"

	"repro/internal/cycles"
	"repro/internal/dmaapi"
	"repro/internal/sim"
)

// WindowSample is one point of the vulnerability-window sweep: did a
// device write replayed delayUs after dma_unmap reach OS memory?
type WindowSample struct {
	DelayUs float64
	Landed  bool
}

// WindowSweep measures how long after dma_unmap a replayed device write
// still lands, for a given protection strategy. Under Linux-style deferred
// protection the window extends to the earlier of the 250-unmap batch or
// the 10 ms timer — the paper (§3) observed that corrupting a buffer
// within 10us of its unmap crashes Linux, and notes buffers can stay
// accessible "for up to 10 milliseconds".
func WindowSweep(system string, delaysUs []float64) ([]WindowSample, error) {
	var out []WindowSample
	for _, d := range delaysUs {
		landed, err := windowProbe(system, d)
		if err != nil {
			return nil, err
		}
		out = append(out, WindowSample{DelayUs: d, Landed: landed})
	}
	return out, nil
}

func windowProbe(system string, delayUs float64) (bool, error) {
	mach, err := newMachine(system)
	if err != nil {
		return false, err
	}
	landed := false
	var probeErr error
	mach.Eng.Spawn("victim", 0, 0, func(p *sim.Proc) {
		m := mach.Mapper
		buf, err := mach.Kmal.Alloc(0, 1500)
		if err != nil {
			probeErr = err
			return
		}
		addr, err := m.Map(p, buf, dmaapi.FromDevice)
		if err != nil {
			probeErr = err
			return
		}
		mach.IOMMU.DMAWrite(mach.Env.Dev, addr, []byte("benign"))
		if err := m.Unmap(p, addr, buf.Size, dmaapi.FromDevice); err != nil {
			probeErr = err
			return
		}
		clean := []byte("reused-kernel-data")
		if err := mach.Mem.Write(buf.Addr, clean); err != nil {
			probeErr = err
			return
		}
		p.Sleep(cycles.FromMicros(delayUs))
		mach.IOMMU.DMAWrite(mach.Env.Dev, addr, []byte("EVIL-REPLAYED-WRITE"))
		now, err := mach.Mem.Snapshot(buf)
		if err != nil {
			probeErr = err
			return
		}
		landed = !bytes.Equal(now[:len(clean)], clean)
	})
	mach.Eng.Run(cycles.FromMillis(delayUs/1000 + 30))
	mach.Eng.Stop()
	return landed, probeErr
}
