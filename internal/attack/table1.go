package attack

import (
	"repro/internal/bench"
	"repro/internal/report"
)

// Table1Row is one line of the paper's Table 1: the security properties
// come from running the attack scenarios, the performance columns from
// measuring RX throughput against the no-iommu baseline.
type Table1Row struct {
	System          string
	SubPageProtect  bool
	NoVulnWindow    bool
	SingleCorePerf  bool
	MultiCorePerf   bool
	SingleCoreRatio float64
	MultiCoreRatio  float64
}

// perfThreshold is the fraction of no-iommu throughput below which a
// system is considered to have unacceptable overhead (the paper's ✗).
const perfThreshold = 0.65

// Table1 reproduces Table 1: it attacks and benchmarks every system.
func Table1(windowMs float64) ([]Table1Row, *bench.Table, error) {
	// Baseline throughputs.
	base := map[int]float64{}
	for _, cores := range []int{1, 16} {
		cfg := bench.DefaultConfig(bench.SysNoIOMMU, bench.RX, cores, 16384)
		cfg.WindowMs = windowMs
		r, err := bench.Run(cfg)
		if err != nil {
			return nil, nil, err
		}
		base[cores] = r.Gbps
	}
	var rows []Table1Row
	for _, sys := range bench.AllSystems {
		out, err := Run(sys)
		if err != nil {
			return nil, nil, err
		}
		row := Table1Row{
			System:         sys,
			SubPageProtect: !out.SubPageLeak && !out.ArbitraryRead,
			NoVulnWindow:   !out.WindowWrite && !out.ArbitraryRead,
		}
		for _, cores := range []int{1, 16} {
			cfg := bench.DefaultConfig(sys, bench.RX, cores, 16384)
			cfg.WindowMs = windowMs
			r, err := bench.Run(cfg)
			if err != nil {
				return nil, nil, err
			}
			ratio := 0.0
			if base[cores] > 0 {
				ratio = r.Gbps / base[cores]
			}
			if cores == 1 {
				row.SingleCoreRatio = ratio
				row.SingleCorePerf = ratio >= perfThreshold
			} else {
				row.MultiCoreRatio = ratio
				row.MultiCorePerf = ratio >= perfThreshold
			}
		}
		rows = append(rows, row)
	}
	return rows, renderTable1(rows), nil
}

func mark(ok bool) string {
	if ok {
		return "yes"
	}
	return "NO"
}

func renderTable1(rows []Table1Row) *bench.Table {
	t := &bench.Table{
		Name:  "table1",
		Title: "Table 1: protection model comparison (security from attacks, perf from RX benchmarks)",
		Columns: []string{"model", "sub-page protect", "no vulnerability window",
			"single-core perf", "multi-core perf"},
	}
	for _, r := range rows {
		t.AddRow(r.System, mark(r.SubPageProtect), mark(r.NoVulnWindow),
			mark(r.SingleCorePerf), mark(r.MultiCorePerf))
		t.Point(r.System, "vs no-iommu", map[string]float64{
			"single_core_ratio": r.SingleCoreRatio,
			"multi_core_ratio":  r.MultiCoreRatio,
		})
	}
	return t
}

// Verdicts converts Table1 rows into the artifact's attack-matrix form.
func Verdicts(rows []Table1Row) []report.AttackVerdict {
	out := make([]report.AttackVerdict, 0, len(rows))
	for _, r := range rows {
		out = append(out, report.AttackVerdict{
			System:          r.System,
			SubPageProtect:  r.SubPageProtect,
			NoVulnWindow:    r.NoVulnWindow,
			SingleCorePerf:  r.SingleCorePerf,
			MultiCorePerf:   r.MultiCorePerf,
			SingleCoreRatio: r.SingleCoreRatio,
			MultiCoreRatio:  r.MultiCoreRatio,
		})
	}
	return out
}
