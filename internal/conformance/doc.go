// Package conformance pins the DMA API's cross-strategy contract by
// driving the differential fuzzing harness (internal/dmafuzz) over fixed
// seeds: whatever the protection model, the same driver workload must
// produce identical OS-visible outcomes (the paper's transparency
// property, §5.1), malicious probes must stay within granted authority
// except in the paper-predicted windows, and teardown must return every
// allocator to baseline.
//
// The verification logic itself — per-op differential comparison,
// security-invariant checks with positive window observation, and
// resource baselines — lives in dmafuzz's oracles; this package just
// pins a wider seed matrix than the harness's own tests and documents
// the conformance contract. See doc/FUZZING.md for the op model and
// oracle details.
//
// The package contains only tests; this file exists so the package has a
// buildable, documented identity outside the test binary.
package conformance
