// Package conformance pins the DMA API's cross-strategy contract by
// driving the differential fuzzing harness (internal/dmafuzz) over fixed
// seeds: whatever the protection model, the same driver workload must
// produce identical OS-visible outcomes (the paper's transparency
// property, §5.1), malicious probes must stay within granted authority
// except in the paper-predicted windows, and teardown must return every
// allocator to baseline.
//
// The verification logic itself — per-op differential comparison,
// security-invariant checks with positive window observation, and
// resource baselines — lives in dmafuzz's oracles; this package just
// pins a wider seed matrix than the harness's own tests and documents
// the conformance contract.
package conformance

import (
	"fmt"
	"testing"

	"repro/internal/dmafuzz"
)

// TestAllMappersFunctionallyEquivalent: benign traces through every
// backend produce identical per-op outcomes (skip decisions, errors,
// faults, transfer sizes, and content checksums). The differential
// oracle compares each backend against the first, so one subtest failure
// names the exact diverging op.
func TestAllMappersFunctionallyEquivalent(t *testing.T) {
	for seed := int64(10); seed <= 14; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rep, err := dmafuzz.Run(dmafuzz.Config{Seed: seed, NumOps: 250})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Failed() {
				t.Fatalf("conformance violated:\n%v", rep.Failures())
			}
			for _, br := range rep.Backends {
				if br.Executed == 0 {
					t.Errorf("%s: workload executed nothing", br.Backend)
				}
			}
		})
	}
}

// TestSecurityProfilesHold: each strategy's probes observe exactly the
// authority the paper predicts — deferred windows on deferred designs,
// sub-page leaks on page-granular zero-copy designs, arbitrary access on
// swiotlb, nothing on copy — and the eligibility counters prove the
// probes actually ran rather than passing vacuously.
func TestSecurityProfilesHold(t *testing.T) {
	rep, err := dmafuzz.Run(dmafuzz.Config{Seed: 20, NumOps: 300})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("security profiles violated:\n%v", rep.Failures())
	}
	for _, br := range rep.Backends {
		sec := br.Security
		if sec.StaleProbes == 0 || sec.SubPageEligible == 0 || sec.ArbitraryProbes == 0 {
			t.Errorf("%s: probes under-exercised: %+v", br.Backend, sec)
		}
	}
}

// TestUnmappedIOVAsEventuallyProtected: dmafuzz's teardown-containment
// probes re-issue DMA on every formerly mapped IOVA after quiesce plus a
// settle period past all TTLs; the security oracle fails any backend —
// including the deferred ones — where such a write still reaches OS
// memory. Requiring FinalProbes > 0 keeps the check non-vacuous.
func TestUnmappedIOVAsEventuallyProtected(t *testing.T) {
	rep, err := dmafuzz.Run(dmafuzz.Config{Seed: 30, NumOps: 200})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("containment violated:\n%v", rep.Failures())
	}
	for _, br := range rep.Backends {
		if br.Security.FinalProbes == 0 {
			t.Errorf("%s: no teardown containment probes ran", br.Backend)
		}
		if br.Security.FinalObserved != 0 {
			t.Errorf("%s: %d stale IOVAs reached OS memory after teardown",
				br.Backend, br.Security.FinalObserved)
		}
	}
}

// TestConformanceUnderFaultInjection: with allocation failures striking
// every 5th page allocation, functional differential comparison is
// suspended (failures land at backend-dependent points) but the security
// and accounting invariants must still hold on every backend.
func TestConformanceUnderFaultInjection(t *testing.T) {
	rep, err := dmafuzz.Run(dmafuzz.Config{
		Seed: 40, NumOps: 200,
		Plan: dmafuzz.FaultPlan{AllocFailEvery: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("fault-injected conformance violated:\n%v", rep.Failures())
	}
}
