// Package conformance differentially tests every DMA-protection strategy
// against the same randomized benign driver workload: whatever the
// protection model, the DMA API contract must produce identical functional
// outcomes (device reads see mapped data, device writes appear in the OS
// buffer after unmap, benign DMAs never fault). This pins down the
// transparency property the paper's design depends on (§5.1): drivers
// cannot tell the strategies apart.
package conformance

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/cycles"
	"repro/internal/dmaapi"
	"repro/internal/iommu"
	"repro/internal/mem"
	"repro/internal/sim"
)

var systems = []string{
	"no iommu", "copy", "identity-", "identity+", "strict", "defer",
	"swiotlb", "selfinval",
}

func newMapper(t *testing.T, name string, env *dmaapi.Env) dmaapi.Mapper {
	t.Helper()
	switch name {
	case "no iommu":
		return dmaapi.NewNoIOMMU(env)
	case "copy":
		m, err := core.NewShadowMapper(env) // no hint: full-fidelity copies
		if err != nil {
			t.Fatal(err)
		}
		return m
	case "identity-":
		return dmaapi.NewIdentity(env, true)
	case "identity+":
		return dmaapi.NewIdentity(env, false)
	case "strict":
		return dmaapi.NewLinux(env, false)
	case "defer":
		return dmaapi.NewLinux(env, true)
	case "swiotlb":
		return dmaapi.NewSWIOTLB(env)
	case "selfinval":
		return dmaapi.NewSelfInval(env, cycles.FromMillis(50))
	}
	t.Fatalf("unknown system %s", name)
	return nil
}

type mapping struct {
	addr    iommu.IOVA
	buf     mem.Buf
	dir     dmaapi.Dir
	orig    []byte // OS buffer content at map time
	written []byte // device-written content (FromDevice/Bidirectional)
}

func TestAllMappersFunctionallyEquivalent(t *testing.T) {
	for _, sys := range systems {
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", sys, seed), func(t *testing.T) {
				runWorkload(t, sys, seed)
			})
		}
	}
}

func runWorkload(t *testing.T, sys string, seed int64) {
	eng := sim.NewEngine()
	m := mem.New(2)
	u := iommu.New(eng, m, cycles.Default())
	env := &dmaapi.Env{Eng: eng, Mem: m, IOMMU: u, Costs: cycles.Default(), Dev: 1, Cores: 2}
	mapper := newMapper(t, sys, env)
	k := mem.NewKmalloc(m, nil)
	rng := rand.New(rand.NewSource(seed))

	dirs := []dmaapi.Dir{dmaapi.ToDevice, dmaapi.FromDevice, dmaapi.Bidirectional}
	eng.Spawn("driver", 0, 0, func(p *sim.Proc) {
		var live []*mapping
		unmapOne := func(i int) {
			mp := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			if err := mapper.Unmap(p, mp.addr, mp.buf.Size, mp.dir); err != nil {
				t.Errorf("unmap: %v", err)
				return
			}
			snap, err := m.Snapshot(mp.buf)
			if err != nil {
				t.Error(err)
				return
			}
			switch mp.dir {
			case dmaapi.ToDevice:
				// The CPU-side buffer must be untouched.
				if !bytes.Equal(snap, mp.orig) {
					t.Errorf("ToDevice buffer modified across map/unmap")
				}
			case dmaapi.FromDevice, dmaapi.Bidirectional:
				want := append([]byte{}, mp.orig...)
				copy(want, mp.written)
				if mp.written != nil && !bytes.Equal(snap[:len(mp.written)], mp.written) {
					t.Errorf("device-written data missing after unmap (dir %v)", mp.dir)
				}
				_ = want
			}
		}
		for op := 0; op < 250; op++ {
			if len(live) > 0 && (len(live) >= 12 || rng.Intn(100) < 40) {
				unmapOne(rng.Intn(len(live)))
				continue
			}
			size := 1 + rng.Intn(64*1024-1)
			buf, err := k.Alloc(rng.Intn(2), size)
			if err != nil {
				t.Fatal(err)
			}
			orig := make([]byte, size)
			rng.Read(orig)
			if err := m.Write(buf.Addr, orig); err != nil {
				t.Fatal(err)
			}
			dir := dirs[rng.Intn(len(dirs))]
			addr, err := mapper.Map(p, buf, dir)
			if err != nil {
				t.Fatalf("map(%d bytes, %v): %v", size, dir, err)
			}
			mp := &mapping{addr: addr, buf: buf, dir: dir, orig: orig}
			// Exercise the device side.
			if dir == dmaapi.ToDevice || dir == dmaapi.Bidirectional {
				got := make([]byte, size)
				res := u.DMARead(1, addr, got)
				if res.Fault != nil {
					t.Fatalf("benign device read faulted: %v", res.Fault)
				}
				if !bytes.Equal(got, orig) {
					t.Fatalf("device read wrong data (dir %v size %d)", dir, size)
				}
			}
			if dir == dmaapi.FromDevice || dir == dmaapi.Bidirectional {
				n := 1 + rng.Intn(size)
				payload := make([]byte, n)
				rng.Read(payload)
				res := u.DMAWrite(1, addr, payload)
				if res.Fault != nil {
					t.Fatalf("benign device write faulted: %v", res.Fault)
				}
				mp.written = payload
				// dma_sync_single_for_cpu mid-mapping: every strategy
				// must make the device's writes CPU-visible.
				if rng.Intn(100) < 30 {
					if err := mapper.SyncForCPU(p, addr, size, dir); err != nil {
						t.Fatalf("sync_for_cpu: %v", err)
					}
					snap, err := m.Snapshot(mem.Buf{Addr: buf.Addr, Size: n})
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(snap, payload) {
						t.Fatalf("sync_for_cpu did not expose device writes (%s, %d bytes)", sys, n)
					}
				}
			}
			live = append(live, mp)
			p.Work("think", uint64(rng.Intn(2000)))
		}
		for len(live) > 0 {
			unmapOne(len(live) - 1)
		}
		mapper.Quiesce(p)

		// Scatter/gather path, same contract.
		bufs := make([]mem.Buf, 3)
		conts := make([][]byte, 3)
		for i := range bufs {
			b, err := k.Alloc(0, 256+rng.Intn(2048))
			if err != nil {
				t.Fatal(err)
			}
			conts[i] = make([]byte, b.Size)
			rng.Read(conts[i])
			m.Write(b.Addr, conts[i])
			bufs[i] = b
		}
		addrs, err := mapper.MapSG(p, bufs, dmaapi.ToDevice)
		if err != nil {
			t.Fatal(err)
		}
		for i, a := range addrs {
			got := make([]byte, bufs[i].Size)
			if res := u.DMARead(1, a, got); res.Fault != nil || !bytes.Equal(got, conts[i]) {
				t.Errorf("SG element %d wrong through %s", i, sys)
			}
		}
		sizes := []int{bufs[0].Size, bufs[1].Size, bufs[2].Size}
		if err := mapper.UnmapSG(p, addrs, sizes, dmaapi.ToDevice); err != nil {
			t.Fatal(err)
		}

		// Coherent path, same contract.
		caddr, cbuf, err := mapper.AllocCoherent(p, 3000)
		if err != nil {
			t.Fatal(err)
		}
		if res := u.DMAWrite(1, caddr, []byte("ring-entry")); res.Fault != nil {
			t.Errorf("coherent write faulted: %v", res.Fault)
		}
		snap := make([]byte, 10)
		m.Read(cbuf.Addr, snap)
		if string(snap) != "ring-entry" {
			t.Error("coherent buffer not shared")
		}
		if err := mapper.FreeCoherent(p, caddr, cbuf); err != nil {
			t.Fatal(err)
		}
	})
	eng.Run(1 << 50)
	eng.Stop()
}

// TestUnmappedIOVAsEventuallyProtected verifies the end-state security
// contract that all IOMMU-backed strategies share: once all mappings are
// released, flushed and (for selfinval) expired, none of the previously
// used IOVAs may accept a device write to OS-visible memory.
func TestUnmappedIOVAsEventuallyProtected(t *testing.T) {
	for _, sys := range systems {
		if sys == "no iommu" || sys == "swiotlb" {
			continue // these provide no containment by design
		}
		t.Run(sys, func(t *testing.T) {
			eng := sim.NewEngine()
			m := mem.New(1)
			u := iommu.New(eng, m, cycles.Default())
			env := &dmaapi.Env{Eng: eng, Mem: m, IOMMU: u, Costs: cycles.Default(), Dev: 1, Cores: 1}
			mapper := newMapper(t, sys, env)
			k := mem.NewKmalloc(m, nil)
			eng.Spawn("driver", 0, 0, func(p *sim.Proc) {
				var addrs []iommu.IOVA
				var bufs []mem.Buf
				for i := 0; i < 20; i++ {
					b, _ := k.Alloc(0, 1500)
					a, err := mapper.Map(p, b, dmaapi.FromDevice)
					if err != nil {
						t.Fatal(err)
					}
					u.DMAWrite(1, a, []byte("benign"))
					addrs = append(addrs, a)
					bufs = append(bufs, b)
				}
				for i, a := range addrs {
					if err := mapper.Unmap(p, a, bufs[i].Size, dmaapi.FromDevice); err != nil {
						t.Fatal(err)
					}
				}
				mapper.Quiesce(p)
				p.Sleep(cycles.FromMillis(60)) // past TTLs and hw drains
				for i, a := range addrs {
					before, _ := m.Snapshot(bufs[i])
					u.DMAWrite(1, a, []byte("EVIL"))
					after, _ := m.Snapshot(bufs[i])
					if !bytes.Equal(before, after) {
						t.Errorf("stale IOVA %#x still reaches OS memory under %s", uint64(a), sys)
						return
					}
				}
			})
			eng.Run(1 << 50)
			eng.Stop()
		})
	}
}
