package sim

// Proc is a simulated core thread. All methods must be called from within
// the proc's own goroutine (i.e. from the fn passed to Spawn), except the
// read-only stats accessors, which are safe once the engine is idle.
type Proc struct {
	eng  *Engine
	name string
	core int

	clock uint64 // local virtual time
	busy  uint64 // cycles spent doing work (incl. spinning)

	// Per-component busy-cycle accounting. Tags are interned into slots:
	// tagVals[tagIdx[tag]] holds the cycles for tag, and tagCache is a
	// tiny direct cache in front of the map so the hot Charge path costs
	// a short pointer-compare scan instead of a string hash. (Charge is
	// the single hottest proc-local operation; at 128 simulated cores
	// the map hashing dominated host CPU.)
	tagIdx   map[string]int
	tagNames []string
	tagVals  []uint64
	tagCache [8]tagCacheEntry
	tagHand  uint8 // round-robin victim pointer into tagCache

	resume   chan struct{}
	done     bool
	panicVal interface{}

	wakeAt     uint64 // set by the engine before resuming
	wakeBusy   bool   // whether the jump to wakeAt counts as busy
	wakeTag    string
	blockStart uint64

	// Observability (see obs.go). obs is captured from the engine at
	// Spawn; nil means every span call is a bare nil check.
	obs   SpanSink
	spans []spanFrame
}

// tagCacheEntry maps one tag string to its slot in tagVals. slot stores
// index+1 so the zero value can never alias slot 0.
type tagCacheEntry struct {
	tag  string
	slot uint32
}

// Name returns the proc's name.
func (p *Proc) Name() string { return p.name }

// Core returns the simulated core index this proc runs on.
func (p *Proc) Core() int { return p.core }

// Now returns the proc's local virtual time.
func (p *Proc) Now() uint64 { return p.clock }

// Busy returns the total busy cycles accumulated so far.
func (p *Proc) Busy() uint64 { return p.busy }

// Tagged returns a snapshot of the per-component busy-cycle accounting.
// The returned map is freshly built per call; mutating it has no effect on
// the proc.
func (p *Proc) Tagged() map[string]uint64 {
	m := make(map[string]uint64, len(p.tagNames))
	for i, n := range p.tagNames {
		m[n] = p.tagVals[i]
	}
	return m
}

// TaggedCycles returns busy cycles attributed to one component tag.
func (p *Proc) TaggedCycles(tag string) uint64 {
	if i, ok := p.tagIdx[tag]; ok {
		return p.tagVals[i]
	}
	return 0
}

// tagSlot resolves tag to its slot index in tagVals, interning it on first
// use. The cache scan hits on pointer equality for the constant tag
// strings used by all hot paths, avoiding the map's string hash.
func (p *Proc) tagSlot(tag string) int {
	for i := range p.tagCache {
		e := &p.tagCache[i]
		if e.slot != 0 && e.tag == tag {
			return int(e.slot - 1)
		}
	}
	return p.tagSlotSlow(tag)
}

func (p *Proc) tagSlotSlow(tag string) int {
	idx, ok := p.tagIdx[tag]
	if !ok {
		idx = len(p.tagVals)
		p.tagIdx[tag] = idx
		p.tagVals = append(p.tagVals, 0)
		p.tagNames = append(p.tagNames, tag)
	}
	e := &p.tagCache[p.tagHand]
	p.tagHand = (p.tagHand + 1) & 7
	e.tag, e.slot = tag, uint32(idx+1)
	return idx
}

// park hands control back to the engine and blocks until resumed. On resume
// the proc's clock jumps to the wake time; the jump is counted busy (with
// wakeTag) if wakeBusy is set (spinlock handoffs), idle otherwise.
//
// On the default path the "engine" is the baton dispatch loop run by this
// very goroutine (Engine.dispatch): the proc dispatches its successor
// itself and only blocks when another proc truly runs next. noFastYield
// selects the reference central scheduler instead, which costs the classic
// two channel handoffs per switch.
func (p *Proc) park() {
	e := p.eng
	if e.noFastYield {
		e.parked <- struct{}{}
		<-p.resume
	} else {
		e.dispatch(p)
	}
	if e.stopping {
		panic(errStopped)
	}
	if p.wakeAt > p.clock {
		delta := p.wakeAt - p.clock
		if p.wakeBusy {
			p.busy += delta
			p.tagVals[p.tagSlot(p.wakeTag)] += delta
		}
		p.clock = p.wakeAt
	}
	p.wakeBusy = false
	p.wakeTag = ""
}

// fence re-synchronizes the proc with global virtual time: it parks and is
// re-dispatched once every other pending item at an earlier timestamp has
// run. Shared-resource operations (locks, conditions) fence first so that
// locally accumulated Charge costs cannot reorder cross-core interactions.
//
// Fast path: when every other pending item is strictly later than this
// proc's clock, the engine would dispatch the proc straight back, so the
// heap round-trip is skipped entirely and the proc keeps running.
func (p *Proc) fence() {
	if p.eng.tryFastYield(p.clock) {
		return
	}
	p.eng.push(wakeItem{at: p.clock, p: p})
	p.park()
}

// block parks without a scheduled wake; some other party must Wake the proc.
func (p *Proc) block() {
	p.blockStart = p.clock
	p.park()
}

// wake schedules a blocked proc to resume at time at. If busy is true the
// waiting interval counts as busy time under tag (spin-waiting).
func (p *Proc) wake(at uint64, busy bool, tag string) {
	if at < p.clock {
		at = p.clock
	}
	p.wakeBusy = busy
	p.wakeTag = tag
	p.eng.push(wakeItem{at: at, p: p})
}

// Charge accounts c busy cycles under tag and advances the local clock
// WITHOUT yielding to the engine. Use for sequences of purely core-local
// work; any shared-resource operation re-synchronizes via fence.
func (p *Proc) Charge(tag string, c uint64) {
	p.busy += c
	p.clock += c
	p.tagVals[p.tagSlot(tag)] += c
}

// Work is Charge followed by a yield, making the elapsed work visible to
// the rest of the simulation.
func (p *Proc) Work(tag string, c uint64) {
	p.Charge(tag, c)
	p.fence()
}

// Sleep advances the local clock by c cycles of idle (non-busy) time.
func (p *Proc) Sleep(c uint64) {
	at := p.clock + c
	if p.eng.tryFastYield(at) {
		p.clock = at // idle jump: busy is untouched
		return
	}
	p.eng.push(wakeItem{at: at, p: p})
	p.park()
}

// SpinUntil busy-waits until absolute virtual time t, accounting the wait
// under tag. If t is in the past it is a no-op.
func (p *Proc) SpinUntil(tag string, t uint64) {
	if t <= p.clock {
		return
	}
	delta := t - p.clock
	p.busy += delta
	p.tagVals[p.tagSlot(tag)] += delta
	p.clock = t
	p.fence()
}

// Yield gives other procs at the same or earlier virtual time a chance to
// run without advancing the clock.
func (p *Proc) Yield() { p.fence() }
