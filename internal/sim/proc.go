package sim

// Proc is a simulated core thread. All methods must be called from within
// the proc's own goroutine (i.e. from the fn passed to Spawn), except the
// read-only stats accessors, which are safe once the engine is idle.
type Proc struct {
	eng  *Engine
	name string
	core int

	clock uint64 // local virtual time
	busy  uint64 // cycles spent doing work (incl. spinning)

	tagged map[string]uint64 // busy cycles per component tag

	resume   chan struct{}
	done     bool
	panicVal interface{}

	wakeAt     uint64 // set by the engine before resuming
	wakeBusy   bool   // whether the jump to wakeAt counts as busy
	wakeTag    string
	blockStart uint64

	// Observability (see obs.go). obs is captured from the engine at
	// Spawn; nil means every span call is a bare nil check.
	obs   SpanSink
	spans []spanFrame
}

// Name returns the proc's name.
func (p *Proc) Name() string { return p.name }

// Core returns the simulated core index this proc runs on.
func (p *Proc) Core() int { return p.core }

// Now returns the proc's local virtual time.
func (p *Proc) Now() uint64 { return p.clock }

// Busy returns the total busy cycles accumulated so far.
func (p *Proc) Busy() uint64 { return p.busy }

// Tagged returns the per-component busy-cycle accounting. The returned map
// is live; callers must not mutate it.
func (p *Proc) Tagged() map[string]uint64 { return p.tagged }

// TaggedCycles returns busy cycles attributed to one component tag.
func (p *Proc) TaggedCycles(tag string) uint64 { return p.tagged[tag] }

// park hands control back to the engine and blocks until resumed. On resume
// the proc's clock jumps to the wake time; the jump is counted busy (with
// wakeTag) if wakeBusy is set (spinlock handoffs), idle otherwise.
func (p *Proc) park() {
	p.eng.parked <- struct{}{}
	<-p.resume
	if p.eng.stopping {
		panic(errStopped)
	}
	if p.wakeAt > p.clock {
		delta := p.wakeAt - p.clock
		if p.wakeBusy {
			p.busy += delta
			p.tagged[p.wakeTag] += delta
		}
		p.clock = p.wakeAt
	}
	p.wakeBusy = false
	p.wakeTag = ""
}

// fence re-synchronizes the proc with global virtual time: it parks and is
// re-dispatched once every other pending item at an earlier timestamp has
// run. Shared-resource operations (locks, conditions) fence first so that
// locally accumulated Charge costs cannot reorder cross-core interactions.
//
// Fast path: when every other pending item is strictly later than this
// proc's clock, the engine would dispatch the proc straight back, so the
// park/resume channel round-trip (two goroutine handoffs) is skipped
// entirely and the proc keeps running.
func (p *Proc) fence() {
	if p.eng.tryFastYield(p.clock) {
		return
	}
	p.eng.push(wakeItem{at: p.clock, p: p})
	p.park()
}

// block parks without a scheduled wake; some other party must Wake the proc.
func (p *Proc) block() {
	p.blockStart = p.clock
	p.park()
}

// wake schedules a blocked proc to resume at time at. If busy is true the
// waiting interval counts as busy time under tag (spin-waiting).
func (p *Proc) wake(at uint64, busy bool, tag string) {
	if at < p.clock {
		at = p.clock
	}
	p.wakeBusy = busy
	p.wakeTag = tag
	p.eng.push(wakeItem{at: at, p: p})
}

// Charge accounts c busy cycles under tag and advances the local clock
// WITHOUT yielding to the engine. Use for sequences of purely core-local
// work; any shared-resource operation re-synchronizes via fence.
func (p *Proc) Charge(tag string, c uint64) {
	p.busy += c
	p.tagged[tag] += c
	p.clock += c
}

// Work is Charge followed by a yield, making the elapsed work visible to
// the rest of the simulation.
func (p *Proc) Work(tag string, c uint64) {
	p.Charge(tag, c)
	p.fence()
}

// Sleep advances the local clock by c cycles of idle (non-busy) time.
func (p *Proc) Sleep(c uint64) {
	at := p.clock + c
	if p.eng.tryFastYield(at) {
		p.clock = at // idle jump: busy is untouched
		return
	}
	p.eng.push(wakeItem{at: at, p: p})
	p.park()
}

// SpinUntil busy-waits until absolute virtual time t, accounting the wait
// under tag. If t is in the past it is a no-op.
func (p *Proc) SpinUntil(tag string, t uint64) {
	if t <= p.clock {
		return
	}
	delta := t - p.clock
	p.busy += delta
	p.tagged[tag] += delta
	p.clock = t
	p.fence()
}

// Yield gives other procs at the same or earlier virtual time a chance to
// run without advancing the clock.
func (p *Proc) Yield() { p.fence() }
