package sim

// Cond is a condition variable for simulated procs. Because the engine runs
// one proc at a time there are no data races, but virtual-time lost-wakeup
// hazards remain; WaitUntil re-checks its predicate after every wake (and
// after the initial fence), which makes the standard predicate-loop pattern
// safe.
type Cond struct {
	name    string
	waiters []*Proc

	// Stats
	Waits   uint64
	Signals uint64
}

// NewCond creates a condition variable.
func NewCond(name string) *Cond { return &Cond{name: name} }

// WaitUntil blocks p (idle, not busy) until pred() is true. pred is
// evaluated with the proc synchronized to global virtual time.
func (c *Cond) WaitUntil(p *Proc, pred func() bool) {
	p.fence()
	for !pred() {
		c.Waits++
		c.waiters = append(c.waiters, p)
		p.block()
	}
}

// SignalAt wakes up to n waiters at virtual time at (idle wake: the time a
// waiter spent blocked does not count as busy). Use n < 0 for broadcast.
func (c *Cond) SignalAt(at uint64, n int) {
	c.Signals++
	for len(c.waiters) > 0 && n != 0 {
		w := c.waiters[0]
		c.waiters = c.waiters[1:]
		w.wake(at, false, "")
		n--
	}
}

// Signal wakes one waiter at proc p's current time (for proc-to-proc
// notification).
func (c *Cond) Signal(p *Proc) { c.SignalAt(p.Now(), 1) }

// Broadcast wakes all waiters at proc p's current time.
func (c *Cond) Broadcast(p *Proc) { c.SignalAt(p.Now(), -1) }

// HasWaiters reports whether any proc is blocked on the condition.
func (c *Cond) HasWaiters() bool { return len(c.waiters) > 0 }
