package sim

import (
	"testing"
)

// BenchmarkEngineFence measures the fence hot path: one proc doing
// Work+yield with nothing else pending, which should take the same-proc
// fast path (no park/resume channel round-trip, no heap traffic, zero
// allocations per op).
func BenchmarkEngineFence(b *testing.B) {
	e := NewEngine()
	e.Spawn("w", 0, 0, func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Work("bench", 10)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	e.Run(^uint64(0))
}

// BenchmarkEngineFenceContended measures the slow path: two procs at
// interleaved timestamps, so every fence goes through the wake queue and
// the park/resume handshake.
func BenchmarkEngineFenceContended(b *testing.B) {
	e := NewEngine()
	for c := 0; c < 2; c++ {
		e.Spawn("w", c, 0, func(p *Proc) {
			for i := 0; i < b.N; i++ {
				p.Work("bench", 10)
			}
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	e.Run(^uint64(0))
}

// BenchmarkEngineTimerChurn measures the arm/cancel pattern of the
// flush-queue timers (dmaapi deferred invalidation): every op schedules a
// timer, cancels it, and lets lazy deletion discard it.
func BenchmarkEngineTimerChurn(b *testing.B) {
	e := NewEngine()
	e.Spawn("w", 0, 0, func(p *Proc) {
		for i := 0; i < b.N; i++ {
			t := e.ScheduleTimer(p.Now()+1000, func(uint64) {})
			t.Cancel()
			p.Sleep(10)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	e.Run(^uint64(0))
}
