package sim

import (
	"fmt"
	"testing"
)

// BenchmarkEngineFence measures the fence hot path: one proc doing
// Work+yield with nothing else pending, which should take the same-proc
// fast path (no park/resume channel round-trip, no heap traffic, zero
// allocations per op).
func BenchmarkEngineFence(b *testing.B) {
	e := NewEngine()
	e.Spawn("w", 0, 0, func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Work("bench", 10)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	e.Run(^uint64(0))
}

// BenchmarkEngineFenceContended measures the slow path: two procs at
// interleaved timestamps, so every fence goes through the wake queue and
// the park/resume handshake.
func BenchmarkEngineFenceContended(b *testing.B) {
	e := NewEngine()
	for c := 0; c < 2; c++ {
		e.Spawn("w", c, 0, func(p *Proc) {
			for i := 0; i < b.N; i++ {
				p.Work("bench", 10)
			}
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	e.Run(^uint64(0))
}

// BenchmarkEngineDispatch measures the many-proc scheduling cost that
// dominates 64/128-core simulations: P procs at interleaved timestamps,
// every fence a cross-proc handoff through the baton dispatch (one
// channel send per switch, timer heap at depth P). ns/op is per fence of
// one proc; the b.N work is split across procs so total dispatches stay
// comparable between sizes.
func BenchmarkEngineDispatch(b *testing.B) {
	for _, procs := range []int{16, 64, 128} {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			e := NewEngine()
			per := b.N/procs + 1
			for c := 0; c < procs; c++ {
				e.Spawn("w", c, 0, func(p *Proc) {
					for i := 0; i < per; i++ {
						p.Work("bench", 10)
					}
				})
			}
			b.ReportAllocs()
			b.ResetTimer()
			e.Run(^uint64(0))
		})
	}
}

// BenchmarkEngineTimerChurn measures the arm/cancel pattern of the
// flush-queue timers (dmaapi deferred invalidation): every op schedules a
// timer, cancels it, and lets lazy deletion discard it.
func BenchmarkEngineTimerChurn(b *testing.B) {
	e := NewEngine()
	e.Spawn("w", 0, 0, func(p *Proc) {
		for i := 0; i < b.N; i++ {
			t := e.ScheduleTimer(p.Now()+1000, func(uint64) {})
			t.Cancel()
			p.Sleep(10)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	e.Run(^uint64(0))
}
