package sim

// LockCosts parameterizes the spinlock contention model.
type LockCosts struct {
	// Uncontended is the cost of an uncontended acquire+release pair.
	Uncontended uint64
	// HandoffBase is the fixed cost of transferring a contended lock's
	// cache line to the next owner.
	HandoffBase uint64
	// HandoffPerWaiter is the additional coherence-traffic cost per
	// core still spinning on the lock at handoff time. This superlinear
	// term reproduces the collapse of strict (identity+) protection at
	// 16 cores (paper Figs 6 and 8a: ~69us of spinlock time per packet).
	HandoffPerWaiter uint64
}

// Spinlock models a kernel spinlock: waiters burn CPU while spinning, and
// contended handoffs pay coherence-traffic costs that grow with the number
// of spinners. Acquisition order is FIFO (ticket-lock behaviour).
type Spinlock struct {
	name     string
	spanName string // "spin:"+name, precomputed so hot paths allocate nothing
	costs    LockCosts
	tag      string

	owner   *Proc
	waiters []*Proc

	// Stats
	Acquires      uint64
	Contended     uint64
	WaitCycles    uint64
	MaxWaiters    int
	HandoffCycles uint64
}

// NewSpinlock creates a spinlock. Spin-wait time is accounted under tag
// (normally cycles.TagSpinlock).
func NewSpinlock(name, tag string, costs LockCosts) *Spinlock {
	return &Spinlock{name: name, spanName: "spin:" + name, costs: costs, tag: tag}
}

// Name returns the lock's name.
func (l *Spinlock) Name() string { return l.name }

// Held reports whether the lock is currently owned (for tests/invariants).
func (l *Spinlock) Held() bool { return l.owner != nil }

// Waiters returns the number of procs currently spinning on the lock.
func (l *Spinlock) Waiters() int { return len(l.waiters) }

// Lock acquires the spinlock, spinning (busy) if it is contended. When a
// span sink is attached the acquisition — uncontended charge or contended
// spin, including the handoff penalty accrued on wake — is reported as a
// "spin:<name>" span.
func (l *Spinlock) Lock(p *Proc) {
	if p.obs != nil {
		p.SpanEnter(l.spanName)
		defer p.SpanExit()
	}
	p.fence()
	l.Acquires++
	if l.owner == nil {
		l.owner = p
		p.Charge(l.tag, l.costs.Uncontended)
		return
	}
	if l.owner == p {
		panic("sim: recursive Lock on " + l.name + " by " + p.name)
	}
	l.Contended++
	l.waiters = append(l.waiters, p)
	if len(l.waiters) > l.MaxWaiters {
		l.MaxWaiters = len(l.waiters)
	}
	start := p.clock
	p.block() // woken by Unlock with ownership already transferred
	l.WaitCycles += p.clock - start
}

// Unlock releases the spinlock and hands it to the oldest waiter, if any,
// charging the contended-handoff penalty to the new owner's spin time.
func (l *Spinlock) Unlock(p *Proc) {
	if l.owner != p {
		panic("sim: Unlock of " + l.name + " by non-owner " + p.name)
	}
	if len(l.waiters) == 0 {
		l.owner = nil
		return
	}
	next := l.waiters[0]
	l.waiters = l.waiters[1:]
	penalty := l.costs.HandoffBase + l.costs.HandoffPerWaiter*uint64(len(l.waiters)+1)
	l.HandoffCycles += penalty
	l.owner = next
	at := p.clock
	if next.clock > at {
		at = next.clock
	}
	next.wake(at+penalty, true, l.tag)
}
