package sim

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestWorkAdvancesClockAndBusy(t *testing.T) {
	e := NewEngine()
	var p1 *Proc
	p1 = e.Spawn("w", 0, 0, func(p *Proc) {
		p.Work("a", 100)
		p.Work("b", 50)
		p.Charge("a", 25)
	})
	e.Run(1_000_000)
	if p1.Now() != 175 {
		t.Errorf("clock = %d, want 175", p1.Now())
	}
	if p1.Busy() != 175 {
		t.Errorf("busy = %d, want 175", p1.Busy())
	}
	if p1.TaggedCycles("a") != 125 || p1.TaggedCycles("b") != 50 {
		t.Errorf("tags = %v", p1.Tagged())
	}
}

func TestSleepIsIdle(t *testing.T) {
	e := NewEngine()
	p1 := e.Spawn("s", 0, 0, func(p *Proc) {
		p.Work("w", 10)
		p.Sleep(1000)
		p.Work("w", 10)
	})
	e.Run(1_000_000)
	if p1.Now() != 1020 {
		t.Errorf("clock = %d, want 1020", p1.Now())
	}
	if p1.Busy() != 20 {
		t.Errorf("busy = %d, want 20 (sleep must not count)", p1.Busy())
	}
}

func TestProcsInterleaveInTimestampOrder(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Spawn("a", 0, 0, func(p *Proc) {
		p.Work("w", 100)
		order = append(order, "a@100")
		p.Work("w", 200) // now at 300
		order = append(order, "a@300")
	})
	e.Spawn("b", 1, 0, func(p *Proc) {
		p.Work("w", 150)
		order = append(order, "b@150")
		p.Work("w", 250) // now at 400
		order = append(order, "b@400")
	})
	e.Run(1_000_000)
	want := []string{"a@100", "b@150", "a@300", "b@400"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Errorf("order[%d] = %s, want %s (full: %v)", i, order[i], want[i], order)
		}
	}
}

func TestRunStopsAtLimit(t *testing.T) {
	e := NewEngine()
	steps := 0
	e.Spawn("loop", 0, 0, func(p *Proc) {
		for {
			p.Work("w", 100)
			steps++
		}
	})
	end := e.Run(1000)
	if end != 1000 {
		t.Errorf("end = %d", end)
	}
	if steps < 9 || steps > 11 {
		t.Errorf("steps = %d, want ~10", steps)
	}
	e.Stop()
}

func TestScheduleCallbacks(t *testing.T) {
	e := NewEngine()
	var fired []uint64
	e.Schedule(500, func(now uint64) { fired = append(fired, now) })
	e.Schedule(100, func(now uint64) {
		fired = append(fired, now)
		e.Schedule(now+50, func(now2 uint64) { fired = append(fired, now2) })
	})
	e.Run(1_000_000)
	if len(fired) != 3 || fired[0] != 100 || fired[1] != 150 || fired[2] != 500 {
		t.Errorf("fired = %v", fired)
	}
}

func TestTimerCancel(t *testing.T) {
	e := NewEngine()
	ran := false
	tm := e.ScheduleTimer(100, func(uint64) { ran = true })
	e.Schedule(50, func(uint64) { tm.Cancel() })
	e.Run(1000)
	if ran || tm.Fired() {
		t.Error("cancelled timer fired")
	}
	if !tm.Cancelled() {
		t.Error("timer should report cancelled")
	}
}

func TestSpinlockUncontended(t *testing.T) {
	e := NewEngine()
	l := NewSpinlock("l", "spinlock", LockCosts{Uncontended: 30, HandoffBase: 100, HandoffPerWaiter: 200})
	p1 := e.Spawn("a", 0, 0, func(p *Proc) {
		l.Lock(p)
		p.Work("crit", 50)
		l.Unlock(p)
	})
	e.Run(1_000_000)
	if p1.TaggedCycles("spinlock") != 30 {
		t.Errorf("spinlock cycles = %d, want 30", p1.TaggedCycles("spinlock"))
	}
	if l.Acquires != 1 || l.Contended != 0 {
		t.Errorf("stats: %+v", l)
	}
	if l.Held() {
		t.Error("lock should be free")
	}
}

func TestSpinlockContentionSerializesAndCharges(t *testing.T) {
	e := NewEngine()
	l := NewSpinlock("l", "spinlock", LockCosts{Uncontended: 0, HandoffBase: 10, HandoffPerWaiter: 0})
	var critEnd []uint64
	worker := func(p *Proc) {
		l.Lock(p)
		p.Work("crit", 100)
		critEnd = append(critEnd, p.Now())
		l.Unlock(p)
	}
	procs := make([]*Proc, 4)
	for i := 0; i < 4; i++ {
		procs[i] = e.Spawn("w", i, 0, worker)
	}
	e.Run(1_000_000)
	// Critical sections must not overlap: ends at 100, 210, 320, 430
	// (100 crit + 10 handoff each).
	want := []uint64{100, 210, 320, 430}
	if len(critEnd) != 4 {
		t.Fatalf("critEnd = %v", critEnd)
	}
	for i, w := range want {
		if critEnd[i] != w {
			t.Errorf("critEnd[%d] = %d, want %d", i, critEnd[i], w)
		}
	}
	// Waiters spin: their wait time is busy, tagged "spinlock".
	totalSpin := uint64(0)
	for _, p := range procs {
		totalSpin += p.TaggedCycles("spinlock")
	}
	// w1 spins 110, w2 spins 220, w3 spins 330.
	if totalSpin != 660 {
		t.Errorf("total spin = %d, want 660", totalSpin)
	}
	if l.MaxWaiters != 3 {
		t.Errorf("MaxWaiters = %d, want 3", l.MaxWaiters)
	}
}

func TestSpinlockHandoffPenaltyGrowsWithWaiters(t *testing.T) {
	run := func(n int) uint64 {
		e := NewEngine()
		l := NewSpinlock("l", "spin", LockCosts{Uncontended: 0, HandoffBase: 0, HandoffPerWaiter: 100})
		var last uint64
		for i := 0; i < n; i++ {
			e.Spawn("w", i, 0, func(p *Proc) {
				l.Lock(p)
				p.Work("crit", 10)
				l.Unlock(p)
				if p.Now() > last {
					last = p.Now()
				}
			})
		}
		e.Run(10_000_000)
		return last
	}
	t2, t8 := run(2), run(8)
	// With superlinear handoff the 8-core run should take much more than
	// 4x the 2-core run.
	if t8 < t2*6 {
		t.Errorf("8-core completion %d not superlinear vs 2-core %d", t8, t2)
	}
}

func TestRecursiveLockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	e := NewEngine()
	l := NewSpinlock("l", "spin", LockCosts{})
	e.Spawn("w", 0, 0, func(p *Proc) {
		l.Lock(p)
		l.Lock(p)
	})
	e.Run(1000)
}

func TestCondWaitUntil(t *testing.T) {
	e := NewEngine()
	c := NewCond("c")
	ready := false
	var sawAt uint64
	p1 := e.Spawn("waiter", 0, 0, func(p *Proc) {
		c.WaitUntil(p, func() bool { return ready })
		sawAt = p.Now()
	})
	e.Schedule(5000, func(now uint64) {
		ready = true
		c.SignalAt(now, 1)
	})
	e.Run(1_000_000)
	if sawAt != 5000 {
		t.Errorf("woke at %d, want 5000", sawAt)
	}
	if p1.Busy() != 0 {
		t.Errorf("cond wait must be idle, busy = %d", p1.Busy())
	}
}

func TestCondNoLostWakeupWhenPredAlreadyTrue(t *testing.T) {
	e := NewEngine()
	c := NewCond("c")
	ready := true // already true before the waiter ever runs
	done := false
	e.Spawn("waiter", 0, 100, func(p *Proc) {
		c.WaitUntil(p, func() bool { return ready })
		done = true
	})
	e.Run(1_000_000)
	if !done {
		t.Error("waiter stuck despite predicate true")
	}
}

func TestCondSpuriousSignalRechecksPredicate(t *testing.T) {
	e := NewEngine()
	c := NewCond("c")
	ready := false
	done := false
	e.Spawn("waiter", 0, 0, func(p *Proc) {
		c.WaitUntil(p, func() bool { return ready })
		done = true
	})
	// Spurious signal: predicate still false; waiter must go back to sleep.
	e.Schedule(100, func(now uint64) { c.SignalAt(now, 1) })
	e.Schedule(200, func(now uint64) {
		if done {
			t.Error("waiter woke on spurious signal")
		}
		ready = true
		c.SignalAt(now, -1)
	})
	e.Run(1_000_000)
	if !done {
		t.Error("waiter never completed")
	}
}

func TestSpinUntil(t *testing.T) {
	e := NewEngine()
	p1 := e.Spawn("w", 0, 0, func(p *Proc) {
		p.Work("w", 100)
		p.SpinUntil("inval", 600)
		p.SpinUntil("inval", 10) // past: no-op
	})
	e.Run(1_000_000)
	if p1.Now() != 600 {
		t.Errorf("clock = %d", p1.Now())
	}
	if p1.TaggedCycles("inval") != 500 {
		t.Errorf("inval spin = %d, want 500", p1.TaggedCycles("inval"))
	}
}

func TestStopKillsBlockedProcs(t *testing.T) {
	e := NewEngine()
	c := NewCond("never")
	e.Spawn("stuck", 0, 0, func(p *Proc) {
		c.WaitUntil(p, func() bool { return false })
	})
	e.Spawn("loop", 1, 0, func(p *Proc) {
		for {
			p.Work("w", 10)
		}
	})
	e.Run(1000)
	e.Stop() // must not deadlock
	for _, p := range e.Procs() {
		if !p.done {
			t.Errorf("proc %s not done after Stop", p.Name())
		}
	}
}

func TestBusyNeverExceedsElapsed(t *testing.T) {
	// Property: a proc's busy cycles can never exceed its elapsed virtual
	// time, whatever mix of work, sleeps, locks and cond waits it runs.
	e := NewEngine()
	l := NewSpinlock("l", "spin", LockCosts{Uncontended: 10, HandoffBase: 50, HandoffPerWaiter: 100})
	c := NewCond("c")
	var procs []*Proc
	for i := 0; i < 5; i++ {
		d := uint64(7 + i*13)
		procs = append(procs, e.Spawn("w", i, 0, func(p *Proc) {
			for j := 0; j < 50; j++ {
				p.Work("w", d)
				l.Lock(p)
				p.Work("crit", 20)
				l.Unlock(p)
				if j%10 == 3 {
					p.Sleep(500)
				}
				if j%17 == 5 {
					c.WaitUntil(p, func() bool { return true })
				}
			}
		}))
	}
	e.Run(100_000_000)
	e.Stop()
	for _, p := range procs {
		if p.Busy() > p.Now() {
			t.Errorf("%s: busy %d > elapsed %d", p.Name(), p.Busy(), p.Now())
		}
		var tagged uint64
		for _, v := range p.Tagged() {
			tagged += v
		}
		if tagged != p.Busy() {
			t.Errorf("%s: tagged sum %d != busy %d", p.Name(), tagged, p.Busy())
		}
	}
}

func TestSpawnDuringRun(t *testing.T) {
	e := NewEngine()
	ran := false
	e.Schedule(100, func(now uint64) {
		e.Spawn("late", 0, now+50, func(p *Proc) {
			if p.Now() != 150 {
				t.Errorf("late proc started at %d, want 150", p.Now())
			}
			ran = true
		})
	})
	e.Run(1_000_000)
	e.Stop()
	if !ran {
		t.Error("late-spawned proc never ran")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []uint64 {
		e := NewEngine()
		l := NewSpinlock("l", "spin", LockCosts{Uncontended: 5, HandoffBase: 7, HandoffPerWaiter: 11})
		var ends []uint64
		for i := 0; i < 6; i++ {
			d := uint64(10 + i*3)
			e.Spawn("w", i, 0, func(p *Proc) {
				for j := 0; j < 20; j++ {
					p.Work("w", d)
					l.Lock(p)
					p.Work("crit", 13)
					l.Unlock(p)
				}
				ends = append(ends, p.Now())
			})
		}
		e.Run(100_000_000)
		return ends
	}
	a, b := run(), run()
	if len(a) != len(b) || len(a) != 6 {
		t.Fatalf("lens: %d %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("nondeterministic: run1[%d]=%d run2[%d]=%d", i, a[i], i, b[i])
		}
	}
}

func TestCancelledTimerNeverDispatches(t *testing.T) {
	// A cancelled timer must be discarded lazily: no callback invocation,
	// no dispatch counted, and the drop visible in LazyDrops.
	e := NewEngine()
	calls := 0
	kept := e.ScheduleTimer(500, func(now uint64) { calls++ })
	dropped := e.ScheduleTimer(100, func(now uint64) { calls += 100 })
	dropped.Cancel()
	e.Run(1_000)
	if calls != 1 {
		t.Fatalf("callback calls = %d, want 1 (cancelled timer must not run)", calls)
	}
	if dropped.Fired() || !dropped.Cancelled() {
		t.Error("cancelled timer reports fired")
	}
	if !kept.Fired() {
		t.Error("live timer did not fire")
	}
	if e.Dispatches() != 1 {
		t.Errorf("dispatches = %d, want 1 (lazy drop must not count)", e.Dispatches())
	}
	if e.LazyDrops() != 1 {
		t.Errorf("lazy drops = %d, want 1", e.LazyDrops())
	}
}

func TestCancelAfterFireIsHarmless(t *testing.T) {
	e := NewEngine()
	fired := false
	tm := e.ScheduleTimer(10, func(now uint64) { fired = true })
	e.Run(100)
	tm.Cancel()
	if !fired || !tm.Fired() {
		t.Error("timer should have fired before the late cancel")
	}
}

// TestFastYieldEquivalence is the determinism guard for the same-proc fast
// path: a randomized (fixed-seed) mix of work, sleeps, lock contention,
// timers and cond signals must produce bit-identical per-proc clocks, busy
// cycles and tagged totals whether the fast path is enabled (default) or
// every yield is forced through the park/resume slow path. Run with
// -count=10 to check stability across goroutine schedules.
func TestFastYieldEquivalence(t *testing.T) {
	type result struct {
		clock, busy uint64
		tagged      map[string]uint64
		final       uint64
	}
	script := func(noFast bool, seed int64) []result {
		e := NewEngine()
		e.noFastYield = noFast
		rng := rand.New(rand.NewSource(seed))
		l := NewSpinlock("l", "spin", LockCosts{Uncontended: 9, HandoffBase: 31, HandoffPerWaiter: 57})
		procs := make([]*Proc, 4)
		for i := range procs {
			// Per-proc deterministic sub-seed so the script does not
			// depend on cross-proc rng interleaving.
			sub := rand.New(rand.NewSource(seed ^ int64(i*7919)))
			procs[i] = e.Spawn(fmt.Sprintf("w%d", i), i, uint64(rng.Intn(50)), func(p *Proc) {
				for j := 0; j < 300; j++ {
					switch sub.Intn(5) {
					case 0:
						p.Work("w", uint64(1+sub.Intn(40)))
					case 1:
						p.Sleep(uint64(sub.Intn(120)))
					case 2:
						l.Lock(p)
						p.Work("crit", uint64(1+sub.Intn(15)))
						l.Unlock(p)
					case 3:
						tm := e.ScheduleTimer(p.Now()+uint64(sub.Intn(200)), func(uint64) {})
						if sub.Intn(2) == 0 {
							tm.Cancel()
						}
						p.Yield()
					case 4:
						p.Charge("local", uint64(sub.Intn(25)))
					}
				}
			})
		}
		final := e.Run(10_000_000)
		e.Stop()
		out := make([]result, len(procs))
		for i, p := range procs {
			tagged := make(map[string]uint64, len(p.Tagged()))
			for k, v := range p.Tagged() {
				tagged[k] = v
			}
			out[i] = result{clock: p.Now(), busy: p.Busy(), tagged: tagged, final: final}
		}
		return out
	}
	for seed := int64(1); seed <= 3; seed++ {
		fast, slow := script(false, seed), script(true, seed)
		for i := range fast {
			if fast[i].clock != slow[i].clock || fast[i].busy != slow[i].busy {
				t.Errorf("seed %d proc %d: fast clock/busy %d/%d != slow %d/%d",
					seed, i, fast[i].clock, fast[i].busy, slow[i].clock, slow[i].busy)
			}
			if fast[i].final != slow[i].final {
				t.Errorf("seed %d: final time %d != %d", seed, fast[i].final, slow[i].final)
			}
			for k, v := range fast[i].tagged {
				if slow[i].tagged[k] != v {
					t.Errorf("seed %d proc %d tag %q: fast %d != slow %d",
						seed, i, k, v, slow[i].tagged[k])
				}
			}
			for k, v := range slow[i].tagged {
				if fast[i].tagged[k] != v {
					t.Errorf("seed %d proc %d tag %q: slow-only value %d", seed, i, k, v)
				}
			}
		}
	}
}
