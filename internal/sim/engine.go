// Package sim implements a conservative discrete-event simulator with
// coroutine-style simulated cores (Procs), virtual cycle clocks, contended
// spinlock modeling and condition variables.
//
// Exactly one Proc (or engine callback) executes at a time; the engine
// always dispatches the pending item with the smallest virtual timestamp, so
// cross-core interactions (lock handoffs, ring notifications, hardware
// completions) are globally ordered and deterministic.
package sim

import (
	"fmt"
)

// Engine is the simulation scheduler. Create one with NewEngine, add Procs
// with Spawn and hardware callbacks with Schedule, then call Run.
//
// Dispatch is baton-passing: whichever goroutine currently runs (the Run
// caller or a simulated proc) pops the next wake item and either executes
// it inline (callbacks, or the proc's own re-wake) or hands the baton to
// the target proc with a single channel send. A cross-proc switch
// therefore costs one goroutine handoff instead of the classic two
// (proc->scheduler, scheduler->proc), which dominates many-core runs where
// nearly every yield switches procs. Dispatch order is identical to a
// central scheduler popping the same heap, so virtual-time results are
// bit-identical; noFastYield selects the retained central scheduler
// (runReference) to prove it.
type Engine struct {
	now      uint64
	seq      uint64
	pq       []wakeItem // 4-ary min-heap ordered by (at, seq)
	far      []wakeItem // items beyond the current window's horizon
	limit    uint64     // current Run's `until` (valid while running)
	parked   chan struct{}
	procs    []*Proc
	panicked *Proc // proc whose panic must propagate out of Run
	stopping bool
	running  bool

	// noFastYield forces every fence/sleep through the park/resume slow
	// path and every dispatch through the central reference scheduler
	// (the pre-optimization semantics). Tests use it to prove the
	// baton/fast paths cannot reorder the simulation.
	noFastYield bool

	// obs, when set via SetObserver before Spawn, is handed to every
	// spawned proc as its span sink (see obs.go).
	obs SpanSink

	// Scheduler statistics (informational; virtual-time results never
	// depend on them).
	dispatches uint64
	fastYields uint64
	lazyDrops  uint64
}

// NewEngine returns an empty engine at virtual time zero.
func NewEngine() *Engine {
	return &Engine{parked: make(chan struct{})}
}

// Now returns the engine's current virtual time in cycles.
func (e *Engine) Now() uint64 { return e.now }

// Procs returns a snapshot of all spawned procs (for stats collection).
// The slice is a copy; mutating it cannot alias engine state.
func (e *Engine) Procs() []*Proc {
	out := make([]*Proc, len(e.procs))
	copy(out, e.procs)
	return out
}

// Dispatches returns how many queue items the engine dispatched (proc
// resumes and callback invocations; lazily dropped cancelled timers and
// fast-path yields are not dispatches).
func (e *Engine) Dispatches() uint64 { return e.dispatches }

// FastYields returns how many fence/sleep operations took the same-proc
// fast path, skipping the park/resume channel round-trip.
func (e *Engine) FastYields() uint64 { return e.fastYields }

// LazyDrops returns how many cancelled timers were discarded from the wake
// queue without being dispatched.
func (e *Engine) LazyDrops() uint64 { return e.lazyDrops }

type wakeItem struct {
	at  uint64
	seq uint64
	p   *Proc            // either p
	fn  func(now uint64) // or fn is set
	t   *Timer           // set for cancellable timers (lazy deletion)
}

// The wake queue is a hand-inlined 4-ary min-heap over []wakeItem keyed by
// (at, seq). Compared to container/heap this avoids the interface{} boxing
// allocation on every push/pop and the indirect Less/Swap calls; the wider
// fanout halves the tree depth, which matters because the queue is touched
// on every fence of every proc. Items that cannot fire inside the current
// Run window (at > limit) are parked in the flat `far` list instead, so
// long-TTL timers never dilute the hot heap; mergeFar moves them back when
// a later window can reach them.

func wakeLess(a, b *wakeItem) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// pushRaw inserts an item that already carries its seq (heap re-insertion).
func (e *Engine) pushRaw(it wakeItem) {
	pq := append(e.pq, it)
	i := len(pq) - 1
	for i > 0 {
		parent := (i - 1) >> 2
		if !wakeLess(&pq[i], &pq[parent]) {
			break
		}
		pq[i], pq[parent] = pq[parent], pq[i]
		i = parent
	}
	e.pq = pq
}

func (e *Engine) push(it wakeItem) {
	it.seq = e.seq
	e.seq++
	if e.running && it.at > e.limit {
		e.far = append(e.far, it)
		return
	}
	e.pushRaw(it)
}

// mergeFar moves far-horizon items the new window can reach back into the
// wake heap, discarding timers cancelled while parked there. Heap order is
// restored exactly because items keep their original seq.
func (e *Engine) mergeFar() {
	if len(e.far) == 0 {
		return
	}
	old := e.far
	kept := old[:0]
	for i := range old {
		it := old[i]
		if it.t != nil && it.t.cancelled {
			e.lazyDrops++
			continue
		}
		if it.at <= e.limit {
			e.pushRaw(it)
			continue
		}
		kept = append(kept, it)
	}
	for i := len(kept); i < len(old); i++ {
		old[i] = wakeItem{} // release *Proc / fn references
	}
	e.far = kept
}

// popMin removes and returns the earliest item. The queue must be non-empty.
func (e *Engine) popMin() wakeItem {
	pq := e.pq
	min := pq[0]
	n := len(pq) - 1
	pq[0] = pq[n]
	pq[n] = wakeItem{} // release *Proc / fn references
	pq = pq[:n]
	e.pq = pq
	i := 0
	for {
		first := i<<2 + 1
		if first >= n {
			break
		}
		best := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if wakeLess(&pq[c], &pq[best]) {
				best = c
			}
		}
		if !wakeLess(&pq[best], &pq[i]) {
			break
		}
		pq[i], pq[best] = pq[best], pq[i]
		i = best
	}
	return min
}

// pruneTop discards cancelled timers sitting at the head of the queue so
// they never influence dispatch decisions (lazy deletion).
func (e *Engine) pruneTop() {
	for len(e.pq) > 0 && e.pq[0].t != nil && e.pq[0].t.cancelled {
		e.popMin()
		e.lazyDrops++
	}
}

// tryFastYield reports whether a proc yielding until virtual time at may
// simply continue running: the engine is mid-Run, at is within the run
// limit, and every other pending item is strictly later — so the slow path
// would pop the proc's own item right back. Same-timestamp items keep FIFO
// priority (they hold smaller seqs), hence the strict comparison.
func (e *Engine) tryFastYield(at uint64) bool {
	if !e.running || e.stopping || e.noFastYield || at > e.limit {
		return false
	}
	e.pruneTop()
	if len(e.pq) > 0 && e.pq[0].at <= at {
		return false
	}
	if at > e.now {
		e.now = at
	}
	e.fastYields++
	return true
}

// Schedule registers a callback to run at virtual time at. Callbacks run in
// engine context: they may signal conditions, schedule further callbacks and
// wake procs, but must not block. With baton dispatch "engine context"
// means "on whichever goroutine holds the baton"; callbacks cannot tell
// the difference.
func (e *Engine) Schedule(at uint64, fn func(now uint64)) {
	if fn == nil {
		panic("sim: Schedule with nil fn")
	}
	if at < e.now {
		at = e.now
	}
	e.push(wakeItem{at: at, fn: fn})
}

// Timer is a cancellable scheduled callback.
type Timer struct {
	cancelled bool
	fired     bool
}

// Cancelled reports whether Cancel was called before the timer fired.
func (t *Timer) Cancelled() bool { return t.cancelled }

// Fired reports whether the callback ran.
func (t *Timer) Fired() bool { return t.fired }

// Cancel prevents the callback from running if it has not fired yet. The
// queue entry is deleted lazily: a cancelled timer is discarded when it
// reaches the head of the wake queue (or when the far list is merged),
// without dispatching or advancing any engine bookkeeping.
func (t *Timer) Cancel() { t.cancelled = true }

// ScheduleTimer is Schedule with cancellation support.
func (e *Engine) ScheduleTimer(at uint64, fn func(now uint64)) *Timer {
	if fn == nil {
		panic("sim: ScheduleTimer with nil fn")
	}
	t := &Timer{}
	if at < e.now {
		at = e.now
	}
	e.push(wakeItem{at: at, fn: fn, t: t})
	return t
}

// Spawn creates a simulated core thread. fn runs in its own goroutine but
// under strict engine scheduling: it must interact with virtual time only
// through the Proc's methods. The proc starts at virtual time start.
func (e *Engine) Spawn(name string, core int, start uint64, fn func(p *Proc)) *Proc {
	if start < e.now {
		start = e.now
	}
	p := &Proc{
		eng:    e,
		name:   name,
		core:   core,
		clock:  start,
		resume: make(chan struct{}),
		tagIdx: make(map[string]int),
		obs:    e.obs,
	}
	e.procs = append(e.procs, p)
	go func() {
		<-p.resume
		defer func() {
			if r := recover(); r != nil && r != errStopped {
				// Real bug in simulated code: hand it to the Run
				// caller's goroutine so tests can catch it.
				p.panicVal = r
				e.panicked = p
			}
			p.done = true
			e.parked <- struct{}{}
		}()
		if !e.stopping {
			fn(p)
		}
	}()
	e.push(wakeItem{at: start, p: p})
	return p
}

// dispatch runs the scheduler loop on the yielding proc's own goroutine —
// the baton. It returns when cur's own wake item is next (cur simply keeps
// running: the cross-proc generalization of the same-proc fast yield);
// otherwise it hands the baton to the successor proc (one channel send) or
// back to the Run goroutine (window exhausted / queue drained) and blocks
// until a later baton holder pops cur's item and resumes it.
func (e *Engine) dispatch(cur *Proc) {
	for {
		e.pruneTop()
		if len(e.pq) == 0 || e.pq[0].at > e.limit {
			e.parked <- struct{}{}
			<-cur.resume
			return
		}
		it := e.popMin()
		if it.at > e.now {
			e.now = it.at
		}
		if it.fn != nil {
			e.dispatches++
			if it.t != nil {
				it.t.fired = true
			}
			it.fn(e.now)
			continue
		}
		p := it.p
		if p.done {
			continue
		}
		e.dispatches++
		p.wakeAt = it.at
		if p == cur {
			return
		}
		p.resume <- struct{}{}
		<-cur.resume
		return
	}
}

// Run executes the simulation until virtual time `until` or until there is
// no pending work. It returns the final virtual time.
//
// The Run goroutine only performs the first handoff of each baton chain:
// it pops the earliest item, hands the baton to that proc, and blocks
// until the baton comes back (window exhausted, queue drained, or a proc
// exited or panicked). Procs dispatch each other directly in between.
func (e *Engine) Run(until uint64) uint64 {
	if e.running {
		panic("sim: re-entrant Run")
	}
	e.running = true
	e.limit = until
	defer func() { e.running = false }()
	e.mergeFar()
	if e.noFastYield {
		return e.runReference(until)
	}
	for {
		e.pruneTop()
		if len(e.pq) == 0 {
			break
		}
		if e.pq[0].at > until {
			e.now = until
			return e.now
		}
		it := e.popMin()
		if it.at > e.now {
			e.now = it.at
		}
		if it.fn != nil {
			e.dispatches++
			if it.t != nil {
				it.t.fired = true
			}
			it.fn(e.now)
			continue
		}
		p := it.p
		if p.done {
			continue
		}
		e.dispatches++
		p.wakeAt = it.at
		p.resume <- struct{}{}
		<-e.parked
		if pp := e.panicked; pp != nil {
			e.panicked = nil
			panic(pp.panicVal)
		}
	}
	if e.now < until {
		e.now = until
	}
	return e.now
}

// runReference is the pre-baton central scheduler: every proc switch goes
// proc -> Run goroutine -> proc, two channel handoffs per dispatch. It is
// retained, selected by noFastYield, as the semantic reference the
// equivalence tests compare the baton/fast-yield paths against.
func (e *Engine) runReference(until uint64) uint64 {
	for len(e.pq) > 0 {
		it := e.popMin()
		if it.t != nil && it.t.cancelled {
			e.lazyDrops++
			continue
		}
		if it.at > until {
			e.pushRaw(it)
			e.now = until
			return e.now
		}
		if it.at > e.now {
			e.now = it.at
		}
		if it.fn != nil {
			e.dispatches++
			if it.t != nil {
				it.t.fired = true
			}
			it.fn(e.now)
			continue
		}
		p := it.p
		if p.done {
			continue
		}
		e.dispatches++
		p.wakeAt = it.at
		p.resume <- struct{}{}
		<-e.parked
		if pp := e.panicked; pp != nil {
			e.panicked = nil
			panic(pp.panicVal)
		}
	}
	if e.now < until {
		e.now = until
	}
	return e.now
}

// Stop terminates all live procs. After Stop the engine must not be reused.
func (e *Engine) Stop() {
	e.stopping = true
	for _, p := range e.procs {
		if p.done {
			continue
		}
		p.resume <- struct{}{}
		<-e.parked
	}
}

var errStopped = fmt.Errorf("sim: engine stopped")
