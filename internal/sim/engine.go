// Package sim implements a conservative discrete-event simulator with
// coroutine-style simulated cores (Procs), virtual cycle clocks, contended
// spinlock modeling and condition variables.
//
// Exactly one Proc (or engine callback) executes at a time; the engine
// always dispatches the pending item with the smallest virtual timestamp, so
// cross-core interactions (lock handoffs, ring notifications, hardware
// completions) are globally ordered and deterministic.
package sim

import (
	"container/heap"
	"fmt"
)

// Engine is the simulation scheduler. Create one with NewEngine, add Procs
// with Spawn and hardware callbacks with Schedule, then call Run.
type Engine struct {
	now      uint64
	seq      uint64
	pq       wakeHeap
	parked   chan struct{}
	procs    []*Proc
	stopping bool
	running  bool
}

// NewEngine returns an empty engine at virtual time zero.
func NewEngine() *Engine {
	return &Engine{parked: make(chan struct{})}
}

// Now returns the engine's current virtual time in cycles.
func (e *Engine) Now() uint64 { return e.now }

// Procs returns all spawned procs (for stats collection).
func (e *Engine) Procs() []*Proc { return e.procs }

type wakeItem struct {
	at  uint64
	seq uint64
	p   *Proc            // either p
	fn  func(now uint64) // or fn is set
}

type wakeHeap []wakeItem

func (h wakeHeap) Len() int { return len(h) }
func (h wakeHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h wakeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *wakeHeap) Push(x interface{}) { *h = append(*h, x.(wakeItem)) }
func (h *wakeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

func (e *Engine) push(it wakeItem) {
	it.seq = e.seq
	e.seq++
	heap.Push(&e.pq, it)
}

// Schedule registers a callback to run at virtual time at. Callbacks run in
// engine context: they may signal conditions, schedule further callbacks and
// wake procs, but must not block.
func (e *Engine) Schedule(at uint64, fn func(now uint64)) {
	if fn == nil {
		panic("sim: Schedule with nil fn")
	}
	if at < e.now {
		at = e.now
	}
	e.push(wakeItem{at: at, fn: fn})
}

// Timer is a cancellable scheduled callback.
type Timer struct {
	cancelled bool
	fired     bool
}

// Cancelled reports whether Cancel was called before the timer fired.
func (t *Timer) Cancelled() bool { return t.cancelled }

// Fired reports whether the callback ran.
func (t *Timer) Fired() bool { return t.fired }

// Cancel prevents the callback from running if it has not fired yet.
func (t *Timer) Cancel() { t.cancelled = true }

// ScheduleTimer is Schedule with cancellation support.
func (e *Engine) ScheduleTimer(at uint64, fn func(now uint64)) *Timer {
	t := &Timer{}
	e.Schedule(at, func(now uint64) {
		if t.cancelled {
			return
		}
		t.fired = true
		fn(now)
	})
	return t
}

// Spawn creates a simulated core thread. fn runs in its own goroutine but
// under strict engine scheduling: it must interact with virtual time only
// through the Proc's methods. The proc starts at virtual time start.
func (e *Engine) Spawn(name string, core int, start uint64, fn func(p *Proc)) *Proc {
	if start < e.now {
		start = e.now
	}
	p := &Proc{
		eng:    e,
		name:   name,
		core:   core,
		clock:  start,
		resume: make(chan struct{}),
		tagged: make(map[string]uint64),
	}
	e.procs = append(e.procs, p)
	go func() {
		<-p.resume
		defer func() {
			if r := recover(); r != nil && r != errStopped {
				// Real bug in simulated code: hand it to the Run
				// caller's goroutine so tests can catch it.
				p.panicVal = r
			}
			p.done = true
			e.parked <- struct{}{}
		}()
		if !e.stopping {
			fn(p)
		}
	}()
	e.push(wakeItem{at: start, p: p})
	return p
}

// Run executes the simulation until virtual time `until` or until there is
// no pending work. It returns the final virtual time.
func (e *Engine) Run(until uint64) uint64 {
	if e.running {
		panic("sim: re-entrant Run")
	}
	e.running = true
	defer func() { e.running = false }()
	for e.pq.Len() > 0 {
		it := heap.Pop(&e.pq).(wakeItem)
		if it.at > until {
			heap.Push(&e.pq, it)
			e.now = until
			return e.now
		}
		if it.at > e.now {
			e.now = it.at
		}
		if it.fn != nil {
			it.fn(e.now)
			continue
		}
		p := it.p
		if p.done {
			continue
		}
		p.wakeAt = it.at
		p.resume <- struct{}{}
		<-e.parked
		if p.panicVal != nil {
			panic(p.panicVal)
		}
	}
	if e.now < until {
		e.now = until
	}
	return e.now
}

// Stop terminates all live procs. After Stop the engine must not be reused.
func (e *Engine) Stop() {
	e.stopping = true
	for _, p := range e.procs {
		if p.done {
			continue
		}
		p.resume <- struct{}{}
		<-e.parked
	}
}

var errStopped = fmt.Errorf("sim: engine stopped")
