package sim

import "testing"

// recSink records every span and instant it receives.
type recSink struct {
	spans []recSpan
	insts []recInstant
}

type recSpan struct {
	path                    string
	self, total, start, end uint64
}

type recInstant struct {
	name string
	at   uint64
}

func (s *recSink) SpanEnd(p *Proc, path string, self, total, start, end uint64) {
	s.spans = append(s.spans, recSpan{path, self, total, start, end})
}
func (s *recSink) SpanInstant(p *Proc, name string, at uint64) {
	s.insts = append(s.insts, recInstant{name, at})
}

func (s *recSink) find(t *testing.T, path string) recSpan {
	t.Helper()
	for _, sp := range s.spans {
		if sp.path == path {
			return sp
		}
	}
	t.Fatalf("no span %q recorded (have %v)", path, s.spans)
	return recSpan{}
}

// TestSpanAttribution checks the exactness contract: a parent's self
// cycles exclude its children, paths nest with slashes, and spans charge
// nothing beyond what Charge/Work already accounted.
func TestSpanAttribution(t *testing.T) {
	e := NewEngine()
	sink := &recSink{}
	e.SetObserver(sink)
	var busy uint64
	e.Spawn("w", 0, 0, func(p *Proc) {
		if !p.Observed() {
			t.Error("Observed() = false with a sink installed")
		}
		p.SpanEnter("unmap")
		p.Charge("sw", 100)
		p.SpanEnter("inval")
		p.Charge("inval", 40)
		p.SpanExit()
		p.Charge("sw", 10)
		p.SpanExit()
		p.ChargeSpan("ptes", "iommu", 25)
		p.WorkSpan("copy", "copy", 30)
		p.SpanInstant("fault")
		busy = p.Busy()
	})
	e.Run(1 << 30)
	e.Stop()

	if busy != 205 {
		t.Fatalf("busy = %d, want 205", busy)
	}
	inner := sink.find(t, "unmap/inval")
	if inner.self != 40 || inner.total != 40 {
		t.Errorf("unmap/inval self/total = %d/%d, want 40/40", inner.self, inner.total)
	}
	outer := sink.find(t, "unmap")
	if outer.self != 110 || outer.total != 150 {
		t.Errorf("unmap self/total = %d/%d, want 110/150", outer.self, outer.total)
	}
	if outer.end-outer.start != 150 {
		t.Errorf("unmap wall interval = %d, want 150", outer.end-outer.start)
	}
	if sp := sink.find(t, "ptes"); sp.self != 25 {
		t.Errorf("ptes self = %d, want 25", sp.self)
	}
	if sp := sink.find(t, "copy"); sp.self != 30 {
		t.Errorf("copy self = %d, want 30", sp.self)
	}
	if len(sink.insts) != 1 || sink.insts[0].name != "fault" {
		t.Errorf("instants = %v, want one %q", sink.insts, "fault")
	}
	// Sum of self cycles over all spans equals total busy: nothing double
	// counted, nothing lost.
	var self uint64
	for _, sp := range sink.spans {
		self += sp.self
	}
	if self != busy {
		t.Errorf("sum of self cycles = %d, busy = %d", self, busy)
	}
}

// TestSpansDisabledAreNoOps pins the zero-overhead disabled path: with no
// sink, span calls neither panic nor change accounting, and the
// ChargeSpan/WorkSpan wrappers still charge.
func TestSpansDisabledAreNoOps(t *testing.T) {
	e := NewEngine()
	var busy uint64
	e.Spawn("w", 0, 0, func(p *Proc) {
		if p.Observed() {
			t.Error("Observed() = true with no sink")
		}
		p.SpanEnter("unmap")
		p.ChargeSpan("ptes", "iommu", 25)
		p.WorkSpan("copy", "copy", 30)
		p.SpanInstant("fault")
		p.SpanExit()
		p.SpanExit() // unbalanced exit must be harmless too
		busy = p.Busy()
	})
	e.Run(1 << 30)
	e.Stop()
	if busy != 55 {
		t.Fatalf("busy = %d, want 55 (wrappers must still charge)", busy)
	}
}

// TestSpinlockEmitsSpinSpan: contended acquisition is attributed to an
// automatic "spin:<name>" span.
func TestSpinlockEmitsSpinSpan(t *testing.T) {
	e := NewEngine()
	sink := &recSink{}
	e.SetObserver(sink)
	l := NewSpinlock("invq", "sw", LockCosts{Uncontended: 4, HandoffBase: 8, HandoffPerWaiter: 2})
	for i := 0; i < 2; i++ {
		e.Spawn("w", i, 0, func(p *Proc) {
			l.Lock(p)
			p.Work("sw", 100)
			l.Unlock(p)
		})
	}
	e.Run(1 << 30)
	e.Stop()
	found := false
	for _, sp := range sink.spans {
		if sp.path == "spin:invq" && sp.self > 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no spin:invq span with nonzero self cycles; spans: %v", sink.spans)
	}
}
