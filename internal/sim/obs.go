package sim

// Span instrumentation: procs can carry a stack of named, nested spans
// whose busy-cycle consumption is reported to a SpanSink (implemented by
// internal/obs). The design goal is a zero-overhead disabled path — when no
// sink is installed every span call is a single nil check, no allocation,
// no clock or cost-model interaction — so instrumentation stays compiled
// into the hot paths permanently and the virtual-time results are
// bit-identical whether observability is on or off. Spans never charge
// cycles; they only attribute cycles that Charge/Work/SpinUntil (and the
// spinlock contention model) already account.

// SpanSink receives completed spans and instant events from procs. The
// engine dispatches procs one at a time, so implementations need no
// locking for same-engine use.
type SpanSink interface {
	// SpanEnd reports one completed span: its slash-joined hierarchical
	// path ("unmap/inval/inval-wait"), the busy cycles attributed
	// exclusively to it (self) and inclusively (total, self plus
	// children), and its wall-clock interval in virtual time.
	SpanEnd(p *Proc, path string, self, total, start, end uint64)
	// SpanInstant reports a point event (a fault, a drop) at virtual
	// time at.
	SpanInstant(p *Proc, name string, at uint64)
}

// spanFrame is one open span on a proc's stack.
type spanFrame struct {
	path  string // full slash-joined path
	start uint64 // p.clock at enter
	busy  uint64 // p.busy at enter
	child uint64 // busy cycles consumed by already-completed children
}

// SetObserver installs a span sink on the engine. It must be called before
// Spawn: procs capture the sink at spawn time. A nil sink disables
// observation for subsequently spawned procs.
func (e *Engine) SetObserver(s SpanSink) { e.obs = s }

// Observed reports whether a span sink is attached to this proc. Hot paths
// use it to skip span-name construction when observability is off.
func (p *Proc) Observed() bool { return p.obs != nil }

// SpanEnter opens a span named name, nested inside the proc's currently
// open span (if any). Callers must pair it with SpanExit on the same proc;
// the pairing is positional, like a lock. No-op without a sink.
func (p *Proc) SpanEnter(name string) {
	if p.obs == nil {
		return
	}
	path := name
	if n := len(p.spans); n > 0 {
		path = p.spans[n-1].path + "/" + name
	}
	p.spans = append(p.spans, spanFrame{path: path, start: p.clock, busy: p.busy})
}

// SpanExit closes the innermost open span, attributing the busy cycles
// accumulated since SpanEnter (minus those claimed by nested children) to
// it, and reports it to the sink. No-op without a sink.
func (p *Proc) SpanExit() {
	if p.obs == nil || len(p.spans) == 0 {
		return
	}
	n := len(p.spans) - 1
	f := p.spans[n]
	p.spans = p.spans[:n]
	total := p.busy - f.busy
	self := total - f.child
	if n > 0 {
		p.spans[n-1].child += total
	}
	p.obs.SpanEnd(p, f.path, self, total, f.start, p.clock)
}

// SpanInstant reports a point event at the proc's current virtual time.
// No-op without a sink.
func (p *Proc) SpanInstant(name string) {
	if p.obs == nil {
		return
	}
	p.obs.SpanInstant(p, name, p.clock)
}

// ChargeSpan is Charge wrapped in a single-purpose span: the charged
// cycles are attributed to span (self-only, no children). It is the
// one-liner for instrumenting leaf cost sites.
func (p *Proc) ChargeSpan(span, tag string, c uint64) {
	if p.obs == nil {
		p.Charge(tag, c)
		return
	}
	p.SpanEnter(span)
	p.Charge(tag, c)
	p.SpanExit()
}

// WorkSpan is Work (Charge + yield) wrapped in a span.
func (p *Proc) WorkSpan(span, tag string, c uint64) {
	if p.obs == nil {
		p.Work(tag, c)
		return
	}
	p.SpanEnter(span)
	p.Work(tag, c)
	p.SpanExit()
}
