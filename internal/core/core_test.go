package core

import (
	"bytes"
	"encoding/binary"
	"testing"

	"repro/internal/cycles"
	"repro/internal/dmaapi"
	"repro/internal/iommu"
	"repro/internal/mem"
	"repro/internal/shadow"
	"repro/internal/sim"
)

var _ dmaapi.Mapper = (*ShadowMapper)(nil)

type rig struct {
	env *dmaapi.Env
	k   *mem.Kmalloc
	s   *ShadowMapper
}

func newRig(t *testing.T, cores int, opts ...Option) *rig {
	t.Helper()
	eng := sim.NewEngine()
	m := mem.New(2)
	u := iommu.New(eng, m, cycles.Default())
	env := &dmaapi.Env{Eng: eng, Mem: m, IOMMU: u, Costs: cycles.Default(), Dev: 1, Cores: cores}
	s, err := NewShadowMapper(env, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{env: env, k: mem.NewKmalloc(m, nil), s: s}
}

func (r *rig) run(t *testing.T, fn func(p *sim.Proc)) {
	t.Helper()
	r.env.Eng.Spawn("t", 0, 0, fn)
	r.env.Eng.Run(1 << 40)
	r.env.Eng.Stop()
}

func (r *rig) alloc(t *testing.T, size int) mem.Buf {
	t.Helper()
	b, err := r.k.Alloc(0, size)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestTxCopyInDeviceSeesData(t *testing.T) {
	r := newRig(t, 1)
	buf := r.alloc(t, 1500)
	payload := bytes.Repeat([]byte("tx"), 750)
	if err := r.env.Mem.Write(buf.Addr, payload); err != nil {
		t.Fatal(err)
	}
	r.run(t, func(p *sim.Proc) {
		addr, err := r.s.Map(p, buf, dmaapi.ToDevice)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 1500)
		if res := r.env.IOMMU.DMARead(r.env.Dev, addr, got); res.Fault != nil {
			t.Fatal(res.Fault)
		}
		if !bytes.Equal(got, payload) {
			t.Error("device read wrong data from shadow buffer")
		}
		// The OS buffer itself is NEVER device-visible: its physical
		// address used as an IOVA must fault.
		if res := r.env.IOMMU.DMARead(r.env.Dev, iommu.IOVA(buf.Addr), got); res.Fault == nil {
			t.Error("OS buffer must not be mapped (byte granularity!)")
		}
		if err := r.s.Unmap(p, addr, buf.Size, dmaapi.ToDevice); err != nil {
			t.Fatal(err)
		}
	})
	if r.s.Stats().BytesCopied != 1500 {
		t.Errorf("bytes copied = %d", r.s.Stats().BytesCopied)
	}
}

func TestRxCopyOutOnUnmap(t *testing.T) {
	r := newRig(t, 1)
	buf := r.alloc(t, 1500)
	r.env.Mem.Fill(buf, 0xAA)
	pkt := bytes.Repeat([]byte("rx"), 750)
	r.run(t, func(p *sim.Proc) {
		addr, err := r.s.Map(p, buf, dmaapi.FromDevice)
		if err != nil {
			t.Fatal(err)
		}
		if res := r.env.IOMMU.DMAWrite(r.env.Dev, addr, pkt); res.Fault != nil {
			t.Fatal(res.Fault)
		}
		// Before unmap the OS buffer is untouched (device wrote only the
		// shadow buffer).
		snap, _ := r.env.Mem.Snapshot(buf)
		if !bytes.Equal(snap, bytes.Repeat([]byte{0xAA}, 1500)) {
			t.Error("device write leaked into OS buffer before unmap")
		}
		if err := r.s.Unmap(p, addr, buf.Size, dmaapi.FromDevice); err != nil {
			t.Fatal(err)
		}
		snap, _ = r.env.Mem.Snapshot(buf)
		if !bytes.Equal(snap, pkt) {
			t.Error("unmap did not copy device data to OS buffer")
		}
	})
}

func TestNoInvalidationsEver(t *testing.T) {
	r := newRig(t, 1)
	buf := r.alloc(t, 1500)
	r.run(t, func(p *sim.Proc) {
		for i := 0; i < 500; i++ {
			addr, err := r.s.Map(p, buf, dmaapi.FromDevice)
			if err != nil {
				t.Fatal(err)
			}
			if err := r.s.Unmap(p, addr, buf.Size, dmaapi.FromDevice); err != nil {
				t.Fatal(err)
			}
		}
		if p.TaggedCycles(cycles.TagInvalidate) != 0 {
			t.Error("DMA shadowing must never pay invalidation costs on the pool path")
		}
	})
	if r.env.IOMMU.Queue.Submitted != 0 {
		t.Errorf("invalidations submitted = %d, want 0", r.env.IOMMU.Queue.Submitted)
	}
}

func TestNoVulnerabilityWindow(t *testing.T) {
	// After unmap, a malicious device replaying the IOVA can still hit the
	// (still-mapped) shadow buffer — but never the OS buffer. Compare
	// with the deferred baselines, where the replay corrupts OS memory.
	r := newRig(t, 1)
	buf := r.alloc(t, 1500)
	r.run(t, func(p *sim.Proc) {
		addr, _ := r.s.Map(p, buf, dmaapi.FromDevice)
		r.env.IOMMU.DMAWrite(r.env.Dev, addr, []byte("packet-1"))
		if err := r.s.Unmap(p, addr, buf.Size, dmaapi.FromDevice); err != nil {
			t.Fatal(err)
		}
		snapBefore, _ := r.env.Mem.Snapshot(buf)
		// Replay attack after unmap.
		r.env.IOMMU.DMAWrite(r.env.Dev, addr, []byte("EVIL-OVERWRITE"))
		snapAfter, _ := r.env.Mem.Snapshot(buf)
		if !bytes.Equal(snapBefore, snapAfter) {
			t.Error("post-unmap device write reached the OS buffer: window exists")
		}
	})
}

func TestSlackBytesInShadowClassAreQuarantined(t *testing.T) {
	// A 1500 B mapping uses a 4 KiB shadow buffer; device writes beyond
	// 1500 land in shadow slack and must never reach adjacent OS data.
	r := newRig(t, 1)
	buf := r.alloc(t, 1500)
	neighbour := r.alloc(t, 100) // co-located on the same slab page, likely
	r.env.Mem.Fill(neighbour, 0x55)
	r.run(t, func(p *sim.Proc) {
		addr, _ := r.s.Map(p, buf, dmaapi.FromDevice)
		evil := bytes.Repeat([]byte{0xEE}, 4096)
		r.env.IOMMU.DMAWrite(r.env.Dev, addr, evil) // fills whole shadow class
		if err := r.s.Unmap(p, addr, buf.Size, dmaapi.FromDevice); err != nil {
			t.Fatal(err)
		}
		snap, _ := r.env.Mem.Snapshot(neighbour)
		if !bytes.Equal(snap, bytes.Repeat([]byte{0x55}, 100)) {
			t.Error("device overflow escaped the shadow buffer")
		}
	})
}

func TestCopyHintLimitsCopyOut(t *testing.T) {
	// Hint mimics the prototype: read the packet length from the (device-
	// written, untrusted) shadow buffer header.
	hint := func(m *mem.Memory, sh mem.Buf, mapped int) int {
		hdr := make([]byte, 2)
		if err := m.Read(sh.Addr, hdr); err != nil {
			return mapped
		}
		return int(binary.BigEndian.Uint16(hdr))
	}
	r := newRig(t, 1, WithHint(hint))
	buf := r.alloc(t, 1500)
	r.env.Mem.Fill(buf, 0xAA)
	r.run(t, func(p *sim.Proc) {
		addr, _ := r.s.Map(p, buf, dmaapi.FromDevice)
		pkt := make([]byte, 300)
		binary.BigEndian.PutUint16(pkt, 300)
		for i := 2; i < 300; i++ {
			pkt[i] = 0xBB
		}
		r.env.IOMMU.DMAWrite(r.env.Dev, addr, pkt)
		if err := r.s.Unmap(p, addr, buf.Size, dmaapi.FromDevice); err != nil {
			t.Fatal(err)
		}
		snap, _ := r.env.Mem.Snapshot(buf)
		if !bytes.Equal(snap[:300], pkt) {
			t.Error("hinted copy-out missed packet bytes")
		}
		for i := 300; i < 1500; i++ {
			if snap[i] != 0xAA {
				t.Error("bytes past the hint length should not be copied")
				break
			}
		}
	})
	if saved := r.s.Stats().CopyHintBytesSaved; saved != 1200 {
		t.Errorf("hint saved %d bytes, want 1200", saved)
	}
}

func TestHostileHintClamped(t *testing.T) {
	hint := func(m *mem.Memory, sh mem.Buf, mapped int) int { return mapped * 10 }
	r := newRig(t, 1, WithHint(hint))
	buf := r.alloc(t, 1000)
	r.run(t, func(p *sim.Proc) {
		addr, _ := r.s.Map(p, buf, dmaapi.FromDevice)
		if err := r.s.Unmap(p, addr, buf.Size, dmaapi.FromDevice); err != nil {
			t.Fatalf("oversize hint must be clamped, got %v", err)
		}
	})
}

func TestBidirectionalCopiesBothWays(t *testing.T) {
	r := newRig(t, 1)
	buf := r.alloc(t, 512)
	r.env.Mem.Write(buf.Addr, []byte("request-data"))
	r.run(t, func(p *sim.Proc) {
		addr, _ := r.s.Map(p, buf, dmaapi.Bidirectional)
		got := make([]byte, 12)
		r.env.IOMMU.DMARead(r.env.Dev, addr, got)
		if string(got) != "request-data" {
			t.Error("device did not see request")
		}
		r.env.IOMMU.DMAWrite(r.env.Dev, addr, []byte("replied-data"))
		r.s.Unmap(p, addr, buf.Size, dmaapi.Bidirectional)
		snap, _ := r.env.Mem.Snapshot(buf)
		if string(snap[:12]) != "replied-data" {
			t.Error("reply not copied out")
		}
	})
}

func TestHybridHugeBuffer(t *testing.T) {
	r := newRig(t, 1)
	// 256 KiB buffer, deliberately misaligned by 100 bytes.
	base, err := r.env.Mem.AllocPages(0, 65)
	if err != nil {
		t.Fatal(err)
	}
	buf := mem.Buf{Addr: base + 100, Size: 256 * 1024}
	payload := make([]byte, buf.Size)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	r.env.Mem.Write(buf.Addr, payload)
	r.run(t, func(p *sim.Proc) {
		addr, err := r.s.Map(p, buf, dmaapi.ToDevice)
		if err != nil {
			t.Fatal(err)
		}
		// The device sees the whole buffer contiguously at one IOVA.
		got := make([]byte, buf.Size)
		if res := r.env.IOMMU.DMARead(r.env.Dev, addr, got); res.Fault != nil {
			t.Fatalf("hybrid read fault at byte %d: %v", res.Done, res.Fault)
		}
		if !bytes.Equal(got, payload) {
			t.Error("hybrid mapping returned wrong data")
		}
		// Sub-page head: co-located data before the buffer must NOT be
		// reachable. addr-100 .. addr-1 is in the head shadow page.
		head := make([]byte, 100)
		if res := r.env.IOMMU.DMARead(r.env.Dev, addr-100, head); res.Fault != nil {
			t.Fatalf("head page read: %v", res.Fault)
		}
		osHead := make([]byte, 100)
		r.env.Mem.Read(base, osHead)
		if bytes.Equal(head, osHead) && !bytes.Equal(osHead, make([]byte, 100)) {
			t.Error("head co-located bytes leaked through hybrid mapping")
		}
		if err := r.s.Unmap(p, addr, buf.Size, dmaapi.ToDevice); err != nil {
			t.Fatal(err)
		}
		// Strict invalidation: the range is dead immediately.
		if res := r.env.IOMMU.DMARead(r.env.Dev, addr, got[:16]); res.Fault == nil {
			t.Error("hybrid mapping must be revoked after unmap")
		}
	})
	st := r.s.Stats()
	if st.HybridMaps != 1 {
		t.Errorf("hybrid maps = %d", st.HybridMaps)
	}
	// Only head+tail copied, not the 256 KiB body.
	if st.BytesCopied >= uint64(buf.Size) {
		t.Errorf("hybrid copied %d bytes; should copy only sub-page head/tail", st.BytesCopied)
	}
}

func TestHybridFromDeviceCopyOut(t *testing.T) {
	r := newRig(t, 1)
	base, _ := r.env.Mem.AllocPages(0, 40)
	buf := mem.Buf{Addr: base + 1000, Size: 130 * 1024}
	r.run(t, func(p *sim.Proc) {
		addr, err := r.s.Map(p, buf, dmaapi.FromDevice)
		if err != nil {
			t.Fatal(err)
		}
		data := make([]byte, buf.Size)
		for i := range data {
			data[i] = byte(i ^ 0x5A)
		}
		if res := r.env.IOMMU.DMAWrite(r.env.Dev, addr, data); res.Fault != nil {
			t.Fatalf("hybrid write fault: %v", res.Fault)
		}
		if err := r.s.Unmap(p, addr, buf.Size, dmaapi.FromDevice); err != nil {
			t.Fatal(err)
		}
		snap, _ := r.env.Mem.Snapshot(buf)
		if !bytes.Equal(snap, data) {
			t.Error("hybrid copy-out incomplete (head/tail/middle mismatch)")
		}
	})
}

func TestHybridAlignedBufferHasNoShadowPages(t *testing.T) {
	r := newRig(t, 1)
	base, _ := r.env.Mem.AllocPages(0, 32)
	buf := mem.Buf{Addr: base, Size: 128 * 1024} // perfectly aligned
	r.run(t, func(p *sim.Proc) {
		addr, err := r.s.Map(p, buf, dmaapi.ToDevice)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.s.Unmap(p, addr, buf.Size, dmaapi.ToDevice); err != nil {
			t.Fatal(err)
		}
	})
	if r.s.Stats().BytesCopied != 0 {
		t.Errorf("aligned hybrid should copy nothing, copied %d", r.s.Stats().BytesCopied)
	}
}

func TestCoherentAlloc(t *testing.T) {
	r := newRig(t, 1)
	r.run(t, func(p *sim.Proc) {
		addr, buf, err := r.s.AllocCoherent(p, 8192)
		if err != nil {
			t.Fatal(err)
		}
		if buf.Addr.Offset() != 0 {
			t.Error("coherent buffer must be page aligned")
		}
		if res := r.env.IOMMU.DMAWrite(r.env.Dev, addr, []byte("descriptor")); res.Fault != nil {
			t.Fatal(res.Fault)
		}
		got := make([]byte, 10)
		r.env.Mem.Read(buf.Addr, got)
		if string(got) != "descriptor" {
			t.Error("coherent buffer not shared")
		}
		if err := r.s.FreeCoherent(p, addr, buf); err != nil {
			t.Fatal(err)
		}
		if res := r.env.IOMMU.DMAWrite(r.env.Dev, addr, []byte("x")); res.Fault == nil {
			t.Error("freed coherent buffer must fault")
		}
	})
}

func TestSGShadowing(t *testing.T) {
	r := newRig(t, 1)
	bufs := []mem.Buf{r.alloc(t, 700), r.alloc(t, 1500), r.alloc(t, 64)}
	for i, b := range bufs {
		r.env.Mem.Fill(b, byte(i+1))
	}
	r.run(t, func(p *sim.Proc) {
		addrs, err := r.s.MapSG(p, bufs, dmaapi.ToDevice)
		if err != nil {
			t.Fatal(err)
		}
		for i, a := range addrs {
			got := make([]byte, bufs[i].Size)
			if res := r.env.IOMMU.DMARead(r.env.Dev, a, got); res.Fault != nil {
				t.Fatal(res.Fault)
			}
			if got[0] != byte(i+1) {
				t.Errorf("SG element %d wrong data", i)
			}
		}
		if err := r.s.UnmapSG(p, addrs, []int{700, 1500, 64}, dmaapi.ToDevice); err != nil {
			t.Fatal(err)
		}
	})
}

func TestContractViolations(t *testing.T) {
	r := newRig(t, 1)
	buf := r.alloc(t, 1000)
	r.run(t, func(p *sim.Proc) {
		if _, err := r.s.Map(p, mem.Buf{}, dmaapi.ToDevice); err == nil {
			t.Error("empty map should fail")
		}
		addr, _ := r.s.Map(p, buf, dmaapi.FromDevice)
		if err := r.s.Unmap(p, addr, buf.Size, dmaapi.ToDevice); err == nil {
			t.Error("direction mismatch should fail")
		}
		if err := r.s.Unmap(p, addr, 999, dmaapi.FromDevice); err == nil {
			t.Error("size mismatch should fail")
		}
		if err := r.s.Unmap(p, addr, buf.Size, dmaapi.FromDevice); err != nil {
			t.Fatal(err)
		}
		if err := r.s.Unmap(p, addr, buf.Size, dmaapi.FromDevice); err == nil {
			t.Error("double unmap should fail")
		}
	})
}

func TestPollutionChargedForBigCopies(t *testing.T) {
	r := newRig(t, 1)
	big, _ := r.env.Mem.AllocPages(0, 16)
	buf := mem.Buf{Addr: big, Size: 64 * 1024}
	r.run(t, func(p *sim.Proc) {
		before := p.TaggedCycles(cycles.TagOther)
		addr, _ := r.s.Map(p, buf, dmaapi.ToDevice)
		after := p.TaggedCycles(cycles.TagOther)
		if after <= before {
			t.Error("64 KiB copy should charge cache pollution under 'other'")
		}
		r.s.Unmap(p, addr, buf.Size, dmaapi.ToDevice)
	})
}

func TestStaleShadowDataReadableByDesign(t *testing.T) {
	// Paper §5.2, Security: "DMA shadowing allows a device compromised at
	// some point in time to read data from buffers used at earlier points
	// in time. This does not constitute a security violation" — the
	// attacker model assumes the device is always compromised, so the OS
	// never places sensitive data in shadow buffers. This test documents
	// the behaviour (and would flag a change to it, e.g. zeroing on
	// release, which would alter the performance story).
	r := newRig(t, 1)
	buf := r.alloc(t, 1500)
	r.env.Mem.Write(buf.Addr, []byte("earlier-tx-payload"))
	r.run(t, func(p *sim.Proc) {
		addr, _ := r.s.Map(p, buf, dmaapi.ToDevice)
		r.s.Unmap(p, addr, buf.Size, dmaapi.ToDevice)
		// The shadow buffer was released but stays mapped; the device
		// can still read the stale copy of the earlier payload.
		got := make([]byte, 18)
		if res := r.env.IOMMU.DMARead(r.env.Dev, addr, got); res.Fault != nil {
			t.Fatalf("stale read faulted: %v", res.Fault)
		}
		if string(got) != "earlier-tx-payload" {
			t.Errorf("expected stale data to remain readable, got %q", got)
		}
	})
}

func TestPerDeviceIsolation(t *testing.T) {
	// Each device gets its own shadow pool and its own IOMMU domain
	// (paper §5.3: "Each device is associated with a unique shadow
	// buffer pool"). A second compromised device must not be able to use
	// the first device's shadow IOVAs.
	eng := sim.NewEngine()
	m := mem.New(2)
	u := iommu.New(eng, m, cycles.Default())
	env1 := &dmaapi.Env{Eng: eng, Mem: m, IOMMU: u, Costs: cycles.Default(), Dev: 1, Cores: 1}
	env2 := &dmaapi.Env{Eng: eng, Mem: m, IOMMU: u, Costs: cycles.Default(), Dev: 2, Cores: 1}
	m1, err := NewShadowMapper(env1)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := NewShadowMapper(env2)
	if err != nil {
		t.Fatal(err)
	}
	k := mem.NewKmalloc(m, nil)
	eng.Spawn("drv", 0, 0, func(p *sim.Proc) {
		buf, _ := k.Alloc(0, 1500)
		m.Write(buf.Addr, []byte("device-1 data"))
		addr1, err := m1.Map(p, buf, dmaapi.ToDevice)
		if err != nil {
			t.Error(err)
			return
		}
		// Device 1 reads its mapping fine.
		got := make([]byte, 13)
		if res := u.DMARead(1, addr1, got); res.Fault != nil {
			t.Errorf("device 1 read failed: %v", res.Fault)
		}
		// Device 2 cannot use device 1's IOVA.
		if res := u.DMARead(2, addr1, got); res.Fault == nil {
			t.Error("device 2 must not reach device 1's shadow buffers")
		}
		// And the pools are independent: same-shaped mappings on both
		// devices get their own shadow buffers.
		addr2, err := m2.Map(p, buf, dmaapi.ToDevice)
		if err != nil {
			t.Error(err)
			return
		}
		if res := u.DMARead(2, addr2, got); res.Fault != nil {
			t.Errorf("device 2 read of its own mapping failed: %v", res.Fault)
		}
		m1.Unmap(p, addr1, buf.Size, dmaapi.ToDevice)
		m2.Unmap(p, addr2, buf.Size, dmaapi.ToDevice)
	})
	eng.Run(1 << 40)
	eng.Stop()
}

func TestCustomPoolConfig(t *testing.T) {
	cfg := shadow.Config{
		SizeClasses:  []int{2048, 65536},
		MaxPerClass:  64,
		Cores:        1,
		Domains:      1,
		DomainOfCore: func(int) int { return 0 },
	}
	r := newRig(t, 1, WithPoolConfig(cfg))
	buf := r.alloc(t, 1500)
	r.run(t, func(p *sim.Proc) {
		addr, err := r.s.Map(p, buf, dmaapi.FromDevice)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.s.Unmap(p, addr, buf.Size, dmaapi.FromDevice); err != nil {
			t.Fatal(err)
		}
	})
	if r.s.Pool().MaxClass() != 65536 {
		t.Error("custom config not applied")
	}
}
