package core

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/dmaapi"
	"repro/internal/shadow"
	"repro/internal/sim"
)

// tinyPool hard-bounds the shadow pool to `perClass` buffers per class so
// tests can exhaust it deterministically.
func tinyPool(t *testing.T, perClass uint64, opts ...Option) *rig {
	t.Helper()
	return newRig(t, 1, append([]Option{WithPoolConfig(shadow.Config{
		SizeClasses:     []int{4096},
		MaxPerClass:     perClass,
		Cores:           1,
		Domains:         2,
		DomainOfCore:    func(int) int { return 0 },
		DisableFallback: true,
	})}, opts...)...)
}

func TestDegradeRetrySelfHeals(t *testing.T) {
	r := newRig(t, 1)
	buf := r.alloc(t, 3000)
	r.run(t, func(p *sim.Proc) {
		// A one-shot allocation failure: the first grow fails, the retry
		// rung's re-acquire succeeds. The caller never sees an error.
		n := 0
		r.env.Mem.AllocFail = func(domain, pages int) bool {
			n++
			return n == 1
		}
		addr, err := r.s.Map(p, buf, dmaapi.ToDevice)
		r.env.Mem.AllocFail = nil
		if err != nil {
			t.Fatalf("transient exhaustion should self-heal: %v", err)
		}
		st := r.s.Stats()
		if st.DegradedRetries == 0 || st.DegradedSpills != 0 {
			t.Errorf("retries=%d spills=%d, want retry rung only", st.DegradedRetries, st.DegradedSpills)
		}
		// The healed mapping is an ordinary pool mapping: full round-trip.
		if err := r.s.Unmap(p, addr, buf.Size, dmaapi.ToDevice); err != nil {
			t.Fatal(err)
		}
		if acct := r.s.Accounting(); !acct.Zero() {
			t.Errorf("leak after healed map: %+v", acct)
		}
	})
}

func TestDegradeSpillRoundTrip(t *testing.T) {
	r := tinyPool(t, 1, WithDegrade(DegradeConfig{MaxRetries: 0, MaxSpills: 8}))
	hold := r.alloc(t, 1500) // occupies the pool's only buffer
	buf := r.alloc(t, 1500)
	payload := bytes.Repeat([]byte("sp"), 750)
	if err := r.env.Mem.Write(buf.Addr, payload); err != nil {
		t.Fatal(err)
	}
	r.run(t, func(p *sim.Proc) {
		holdAddr, err := r.s.Map(p, hold, dmaapi.ToDevice)
		if err != nil {
			t.Fatal(err)
		}
		addr, err := r.s.Map(p, buf, dmaapi.ToDevice)
		if err != nil {
			t.Fatalf("exhausted pool should spill, not fail: %v", err)
		}
		if r.s.Stats().DegradedSpills != 1 {
			t.Fatalf("spills = %d, want 1", r.s.Stats().DegradedSpills)
		}
		// A spill is zero-copy: the device reads the OS buffer itself.
		got := make([]byte, 1500)
		if res := r.env.IOMMU.DMARead(r.env.Dev, addr, got); res.Fault != nil {
			t.Fatal(res.Fault)
		}
		if !bytes.Equal(got, payload) {
			t.Error("device read wrong data through spill mapping")
		}
		if err := r.s.SyncForDevice(p, addr, buf.Size, dmaapi.ToDevice); err != nil {
			t.Fatal(err)
		}
		// Spill unmap strictly invalidates: the device must fault on the
		// torn-down IOVA afterwards.
		if err := r.s.Unmap(p, addr, buf.Size, dmaapi.ToDevice); err != nil {
			t.Fatal(err)
		}
		if res := r.env.IOMMU.DMARead(r.env.Dev, addr, got); res.Fault == nil {
			t.Error("torn-down spill IOVA must fault")
		}
		if err := r.s.Unmap(p, holdAddr, hold.Size, dmaapi.ToDevice); err != nil {
			t.Fatal(err)
		}
	})
}

func TestDegradeBackpressureAtMaxSpills(t *testing.T) {
	r := tinyPool(t, 1, WithDegrade(DegradeConfig{MaxRetries: 0, MaxSpills: 1}))
	hold := r.alloc(t, 1500)
	b1 := r.alloc(t, 1500)
	b2 := r.alloc(t, 1500)
	r.run(t, func(p *sim.Proc) {
		if _, err := r.s.Map(p, hold, dmaapi.ToDevice); err != nil {
			t.Fatal(err)
		}
		a1, err := r.s.Map(p, b1, dmaapi.ToDevice) // rung 2: the one allowed spill
		if err != nil {
			t.Fatal(err)
		}
		_, err = r.s.Map(p, b2, dmaapi.ToDevice) // rung 3: table full
		if !errors.Is(err, dmaapi.ErrBackpressure) {
			t.Fatalf("full spill table should backpressure, got %v", err)
		}
		st := r.s.Stats()
		if st.BackpressureFails != 1 || st.DegradedSpills != 1 {
			t.Errorf("backpressure=%d spills=%d, want 1/1", st.BackpressureFails, st.DegradedSpills)
		}
		// Backpressure is recoverable: free the spill, the next map spills
		// again instead of failing.
		if err := r.s.Unmap(p, a1, b1.Size, dmaapi.ToDevice); err != nil {
			t.Fatal(err)
		}
		if _, err := r.s.Map(p, b2, dmaapi.ToDevice); err != nil {
			t.Fatalf("map after spill slot freed: %v", err)
		}
	})
}

func TestDegradeDisabledFailsHard(t *testing.T) {
	r := tinyPool(t, 1, WithDegrade(DegradeConfig{Disable: true}))
	hold := r.alloc(t, 1500)
	buf := r.alloc(t, 1500)
	r.run(t, func(p *sim.Proc) {
		if _, err := r.s.Map(p, hold, dmaapi.ToDevice); err != nil {
			t.Fatal(err)
		}
		_, err := r.s.Map(p, buf, dmaapi.ToDevice)
		if !errors.Is(err, shadow.ErrPoolExhausted) {
			t.Fatalf("disabled ladder should surface ErrPoolExhausted, got %v", err)
		}
		if st := r.s.Stats(); st.DegradedRetries != 0 || st.DegradedSpills != 0 {
			t.Errorf("disabled ladder must not run: %+v", st)
		}
	})
}

func TestSpillUnmapInvalidation(t *testing.T) {
	// With proper unmap the device faults on the torn-down spill IOVA;
	// with the spillnoinval bug switch the stale IOTLB entry stays live —
	// the classic deferred-invalidation vulnerability window, reintroduced
	// deliberately for the fuzzer's oracle to catch.
	for _, skip := range []bool{false, true} {
		r := tinyPool(t, 1, WithDegrade(DegradeConfig{MaxRetries: 0, MaxSpills: 8, SkipSpillInval: skip}))
		hold := r.alloc(t, 1500)
		buf := r.alloc(t, 1500)
		r.run(t, func(p *sim.Proc) {
			if _, err := r.s.Map(p, hold, dmaapi.ToDevice); err != nil {
				t.Fatal(err)
			}
			addr, err := r.s.Map(p, buf, dmaapi.FromDevice)
			if err != nil {
				t.Fatal(err)
			}
			// Warm the IOTLB through the spill mapping.
			if res := r.env.IOMMU.DMAWrite(r.env.Dev, addr, make([]byte, 64)); res.Fault != nil {
				t.Fatal(res.Fault)
			}
			if err := r.s.Unmap(p, addr, buf.Size, dmaapi.FromDevice); err != nil {
				t.Fatal(err)
			}
			res := r.env.IOMMU.DMAWrite(r.env.Dev, addr, make([]byte, 64))
			if skip && res.Fault != nil {
				t.Error("spillnoinval: stale IOTLB entry should still translate (bug window)")
			}
			if !skip && res.Fault == nil {
				t.Error("spill unmap must strictly invalidate; post-unmap DMA succeeded")
			}
		})
	}
}
