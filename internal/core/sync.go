package core

import (
	"fmt"

	"repro/internal/dmaapi"
	"repro/internal/iommu"
	"repro/internal/mem"
	"repro/internal/shadow"
	"repro/internal/sim"
)

// dma_sync_single_for_cpu / for_device: partial ownership transfers on a
// live mapping. Under DMA shadowing these are partial copies between the
// OS buffer and its shadow buffer — the same moments the full copies
// happen at map/unmap time (§5.2), just without releasing the shadow
// buffer. Drivers with long-lived mappings (e.g. recycled RX buffers)
// rely on these.

// SyncForCPU implements dmaapi.Mapper: copy the device's writes out of the
// shadow buffer, keeping the mapping live.
func (s *ShadowMapper) SyncForCPU(p *sim.Proc, addr iommu.IOVA, size int, dir dmaapi.Dir) error {
	if hm := s.lookupHybrid(p, addr); hm != nil {
		return s.syncHybrid(p, hm, size, dir, true)
	}
	if !shadow.IsShadow(addr) {
		if sp := s.lookupSpill(p, addr); sp != nil {
			return s.syncSpill(p, sp, size)
		}
	}
	meta, err := s.pool.Find(p, addr)
	if err != nil {
		return err
	}
	osBuf := meta.OSBuf()
	if osBuf.Size == 0 {
		return fmt.Errorf("copy: sync of unacquired shadow %#x", uint64(addr))
	}
	if size > osBuf.Size {
		return fmt.Errorf("copy: sync size %d exceeds mapping %d", size, osBuf.Size)
	}
	if dir == dmaapi.FromDevice || dir == dmaapi.Bidirectional {
		return s.copyBytes(p, meta.Shadow().Addr, osBuf.Addr, size)
	}
	return nil
}

// SyncForDevice implements dmaapi.Mapper: refresh the shadow buffer from
// the OS buffer, keeping the mapping live.
func (s *ShadowMapper) SyncForDevice(p *sim.Proc, addr iommu.IOVA, size int, dir dmaapi.Dir) error {
	if hm := s.lookupHybrid(p, addr); hm != nil {
		return s.syncHybrid(p, hm, size, dir, false)
	}
	if !shadow.IsShadow(addr) {
		if sp := s.lookupSpill(p, addr); sp != nil {
			return s.syncSpill(p, sp, size)
		}
	}
	meta, err := s.pool.Find(p, addr)
	if err != nil {
		return err
	}
	osBuf := meta.OSBuf()
	if osBuf.Size == 0 {
		return fmt.Errorf("copy: sync of unacquired shadow %#x", uint64(addr))
	}
	if size > osBuf.Size {
		return fmt.Errorf("copy: sync size %d exceeds mapping %d", size, osBuf.Size)
	}
	if dir == dmaapi.ToDevice || dir == dmaapi.Bidirectional {
		return s.copyBytes(p, osBuf.Addr, meta.Shadow().Addr, size)
	}
	return nil
}

func (s *ShadowMapper) lookupHybrid(p *sim.Proc, addr iommu.IOVA) *hybridMapping {
	if shadow.IsShadow(addr) {
		return nil
	}
	s.hyLock.Lock(p)
	hm := s.hybrids[addr]
	s.hyLock.Unlock(p)
	return hm
}

// syncHybrid refreshes the shadowed head/tail of a huge-buffer mapping;
// the zero-copy middle needs no data movement.
func (s *ShadowMapper) syncHybrid(p *sim.Proc, hm *hybridMapping, size int, dir dmaapi.Dir, forCPU bool) error {
	if size > hm.osBuf.Size {
		return fmt.Errorf("copy: hybrid sync size %d exceeds mapping %d", size, hm.osBuf.Size)
	}
	relevant := (forCPU && (dir == dmaapi.FromDevice || dir == dmaapi.Bidirectional)) ||
		(!forCPU && (dir == dmaapi.ToDevice || dir == dmaapi.Bidirectional))
	if !relevant {
		return nil
	}
	off := hm.osBuf.Addr.Offset()
	if hm.headLen > 0 {
		shadowAt := hm.headPage + mem.Phys(off)
		osAt := hm.osBuf.Addr
		if forCPU {
			if err := s.copyBytes(p, shadowAt, osAt, hm.headLen); err != nil {
				return err
			}
		} else if err := s.copyBytes(p, osAt, shadowAt, hm.headLen); err != nil {
			return err
		}
	}
	if hm.tailLen > 0 {
		shadowAt := hm.tailPage
		osAt := hm.osBuf.End() - mem.Phys(hm.tailLen)
		if forCPU {
			if err := s.copyBytes(p, shadowAt, osAt, hm.tailLen); err != nil {
				return err
			}
		} else if err := s.copyBytes(p, osAt, shadowAt, hm.tailLen); err != nil {
			return err
		}
	}
	return nil
}
