package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cycles"
	"repro/internal/dmaapi"
	"repro/internal/iommu"
	"repro/internal/mem"
	"repro/internal/sim"
)

// ExampleShadowMapper shows the complete DMA-shadowing flow: map a buffer,
// let the device DMA, unmap — with no IOTLB invalidation ever issued.
func ExampleShadowMapper() {
	eng := sim.NewEngine()
	m := mem.New(1)
	u := iommu.New(eng, m, cycles.Default())
	env := &dmaapi.Env{Eng: eng, Mem: m, IOMMU: u, Costs: cycles.Default(), Dev: 1, Cores: 1}
	mapper, _ := core.NewShadowMapper(env)
	k := mem.NewKmalloc(m, nil)

	eng.Spawn("driver", 0, 0, func(p *sim.Proc) {
		buf, _ := k.Alloc(0, 1500)
		m.Write(buf.Addr, []byte("hello device"))

		addr, _ := mapper.Map(p, buf, dmaapi.ToDevice)
		got := make([]byte, 12)
		u.DMARead(1, addr, got)
		fmt.Printf("device sees: %s\n", got)

		mapper.Unmap(p, addr, buf.Size, dmaapi.ToDevice)
		fmt.Printf("IOTLB invalidations issued: %d\n", u.Queue.Submitted)
	})
	eng.Run(1 << 30)
	eng.Stop()
	// Output:
	// device sees: hello device
	// IOTLB invalidations issued: 0
}
