package core

import (
	"fmt"

	"repro/internal/cycles"
	"repro/internal/dmaapi"
	"repro/internal/iommu"
	"repro/internal/mem"
	"repro/internal/sim"
)

// Huge-buffer hybrid (paper §5.5): copying a buffer much larger than the
// largest shadow class would cost more than an IOTLB invalidation, but huge
// buffers have low map/unmap rates, so zero-copy with strict invalidation
// is affordable. To keep byte granularity, only the sub-page head and tail
// of the OS buffer are shadowed (copied); the page-aligned middle is mapped
// directly. The whole buffer occupies one contiguous IOVA range from the
// external scalable allocator, so devices see a single DMA address.

func (s *ShadowMapper) mapHybrid(p *sim.Proc, buf mem.Buf, dir dmaapi.Dir) (iommu.IOVA, error) {
	env := s.env
	offset := buf.Addr.Offset()
	pages := dmaapi.PagesOf(uint64(buf.Addr), buf.Size)

	headLen := 0
	if offset != 0 {
		headLen = mem.PageSize - offset
	}
	end := buf.End()
	tailLen := end.Offset() // 0 if the buffer ends on a page boundary
	if headLen+tailLen > buf.Size {
		// Degenerate: can't happen for buffers > one page, which hybrid
		// maps always are (MaxClass >= PageSize).
		return 0, fmt.Errorf("copy: hybrid map of sub-page buffer")
	}

	p.ChargeSpan("iova-alloc", cycles.TagIOVA, env.Costs.MagazineAlloc)
	base, err := s.extAlloc.Alloc(p.Core(), pages)
	if err != nil {
		return 0, err
	}
	hm := &hybridMapping{base: base, osBuf: buf, dir: dir, pages: pages, headLen: headLen, tailLen: tailLen}

	perm := dir.Perm()
	dom := env.DomainOfCore(p.Core())
	cursor := base
	// unwind releases everything a partially built mapping holds — the
	// IOVA range, any page-table entries installed so far, and the
	// head/tail shadow pages — so a mid-map failure (e.g. allocation
	// pressure) leaks nothing.
	unwind := func() {
		if cursor > base {
			_ = env.IOMMU.Unmap(env.Dev, base, int(cursor-base))
		}
		if hm.headPage != 0 {
			s.freeShadowPage(p, hm.headPage)
		}
		if hm.tailPage != 0 {
			s.freeShadowPage(p, hm.tailPage)
		}
		_ = s.extAlloc.Free(p.Core(), base, pages)
	}
	// Head: a shadow page covering the sub-page prefix, at the same
	// in-page offset so IOVA arithmetic is seamless.
	if headLen > 0 {
		pg, err := s.allocShadowPage(p, dom)
		if err != nil {
			unwind()
			return 0, err
		}
		hm.headPage = pg
		if err := env.IOMMU.Map(env.Dev, cursor, pg, mem.PageSize, perm); err != nil {
			unwind()
			return 0, err
		}
		cursor += mem.PageSize
		if dir != dmaapi.FromDevice {
			if err := s.copyBytes(p, buf.Addr, pg+mem.Phys(offset), headLen); err != nil {
				unwind()
				return 0, err
			}
		}
	}
	// Middle: zero-copy map of the whole OS pages.
	middlePages := pages
	if headLen > 0 {
		middlePages--
	}
	if tailLen > 0 {
		middlePages--
	}
	if middlePages > 0 {
		start := buf.Addr.PageBase()
		if headLen > 0 {
			start += mem.PageSize
		}
		p.ChargeSpan("ptes", cycles.TagPTMgmt, env.Costs.PTMap+env.Costs.PTPerPage*uint64(middlePages-1))
		if err := env.IOMMU.Map(env.Dev, cursor, start, middlePages*mem.PageSize, perm); err != nil {
			unwind()
			return 0, err
		}
		cursor += iommu.IOVA(middlePages * mem.PageSize)
	}
	// Tail: a shadow page covering the sub-page suffix.
	if tailLen > 0 {
		pg, err := s.allocShadowPage(p, dom)
		if err != nil {
			unwind()
			return 0, err
		}
		hm.tailPage = pg
		if err := env.IOMMU.Map(env.Dev, cursor, pg, mem.PageSize, perm); err != nil {
			unwind()
			return 0, err
		}
		cursor += mem.PageSize
		if dir != dmaapi.FromDevice {
			if err := s.copyBytes(p, end-mem.Phys(tailLen), pg, tailLen); err != nil {
				unwind()
				return 0, err
			}
		}
	}

	s.hyLock.Lock(p)
	s.hybrids[base+iommu.IOVA(offset)] = hm
	s.hyLock.Unlock(p)
	s.stats.Maps++
	s.stats.HybridMaps++
	s.stats.BytesMapped += uint64(buf.Size)
	return base + iommu.IOVA(offset), nil
}

func (s *ShadowMapper) unmapHybrid(p *sim.Proc, addr iommu.IOVA, size int, dir dmaapi.Dir) error {
	env := s.env
	s.hyLock.Lock(p)
	hm := s.hybrids[addr]
	delete(s.hybrids, addr)
	s.hyLock.Unlock(p)
	if hm == nil {
		return fmt.Errorf("copy: hybrid unmap of unknown %#x", uint64(addr))
	}
	if hm.dir != dir || hm.osBuf.Size != size {
		return fmt.Errorf("copy: hybrid unmap mismatch (dir %v size %d vs map %v %d)", dir, size, hm.dir, hm.osBuf.Size)
	}
	// Copy the device-written sub-page head/tail back out.
	if dir != dmaapi.ToDevice {
		if hm.headLen > 0 {
			off := hm.osBuf.Addr.Offset()
			if err := s.copyBytes(p, hm.headPage+mem.Phys(off), hm.osBuf.Addr, hm.headLen); err != nil {
				return err
			}
		}
		if hm.tailLen > 0 {
			if err := s.copyBytes(p, hm.tailPage, hm.osBuf.End()-mem.Phys(hm.tailLen), hm.tailLen); err != nil {
				return err
			}
		}
	}
	// Destroy the mapping: this path DOES invalidate the IOTLB (strictly),
	// which is fine precisely because huge-buffer DMA rates are low.
	p.ChargeSpan("ptes", cycles.TagPTMgmt, env.Costs.PTUnmap+env.Costs.PTPerPage*uint64(hm.pages-1))
	if err := env.IOMMU.Unmap(env.Dev, hm.base, hm.pages*mem.PageSize); err != nil {
		return err
	}
	if p.Observed() {
		p.SpanEnter("inval")
	}
	q := env.IOMMU.Queue
	q.Lock.Lock(p)
	done := q.SubmitPages(p, env.Dev, hm.base.Page(), uint64(hm.pages))
	q.WaitRecover(p, done)
	q.Lock.Unlock(p)
	if p.Observed() {
		p.SpanExit()
	}

	if hm.headPage != 0 {
		s.freeShadowPage(p, hm.headPage)
	}
	if hm.tailPage != 0 {
		s.freeShadowPage(p, hm.tailPage)
	}
	p.ChargeSpan("iova-free", cycles.TagIOVA, env.Costs.MagazineAlloc)
	if err := s.extAlloc.Free(p.Core(), hm.base, hm.pages); err != nil {
		return err
	}
	s.stats.Unmaps++
	return nil
}

// copyBytes moves n bytes between physical addresses, charging the copy.
// mem.Copy moves the bytes inside simulated memory directly, so the host
// side allocates nothing per operation.
func (s *ShadowMapper) copyBytes(p *sim.Proc, from, to mem.Phys, n int) error {
	if err := s.env.Mem.Copy(to, from, n); err != nil {
		return err
	}
	if p.Observed() {
		p.SpanEnter("copy")
		s.copyCost(p, n, s.env.Mem.DomainOf(from), s.env.Mem.DomainOf(to))
		p.SpanExit()
	} else {
		s.copyCost(p, n, s.env.Mem.DomainOf(from), s.env.Mem.DomainOf(to))
	}
	s.stats.BytesCopied += uint64(n)
	return nil
}

// allocShadowPage takes a head/tail shadow page from the per-core cache or
// the system.
func (s *ShadowMapper) allocShadowPage(p *sim.Proc, domain int) (mem.Phys, error) {
	core := p.Core()
	if n := len(s.pageCache[core]); n > 0 {
		pg := s.pageCache[core][n-1]
		s.pageCache[core] = s.pageCache[core][:n-1]
		return pg, nil
	}
	p.ChargeSpan("pool-grow", cycles.TagCopyMgmt, s.env.Costs.ShadowGrow)
	return s.env.Mem.AllocPages(domain, 1)
}

func (s *ShadowMapper) freeShadowPage(p *sim.Proc, pg mem.Phys) {
	core := p.Core()
	if len(s.pageCache[core]) < 16 {
		s.pageCache[core] = append(s.pageCache[core], pg)
		return
	}
	_ = s.env.Mem.FreePages(pg, 1)
}
