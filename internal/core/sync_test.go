package core

import (
	"bytes"
	"testing"

	"repro/internal/dmaapi"
	"repro/internal/mem"
	"repro/internal/sim"
)

func TestSyncForCPUCopiesOutWithoutReleasing(t *testing.T) {
	r := newRig(t, 1)
	buf := r.alloc(t, 1500)
	r.env.Mem.Fill(buf, 0xAA)
	r.run(t, func(p *sim.Proc) {
		addr, _ := r.s.Map(p, buf, dmaapi.FromDevice)
		r.env.IOMMU.DMAWrite(r.env.Dev, addr, []byte("first-burst"))
		// The driver peeks at the data mid-mapping.
		if err := r.s.SyncForCPU(p, addr, buf.Size, dmaapi.FromDevice); err != nil {
			t.Fatal(err)
		}
		snap, _ := r.env.Mem.Snapshot(buf)
		if !bytes.Equal(snap[:11], []byte("first-burst")) {
			t.Error("sync_for_cpu did not copy device data out")
		}
		// Mapping is still live: the device keeps writing.
		r.env.IOMMU.DMAWrite(r.env.Dev, addr, []byte("SECOND-BURST"))
		if err := r.s.SyncForCPU(p, addr, buf.Size, dmaapi.FromDevice); err != nil {
			t.Fatal(err)
		}
		snap, _ = r.env.Mem.Snapshot(buf)
		if !bytes.Equal(snap[:12], []byte("SECOND-BURST")) {
			t.Error("second sync_for_cpu missed newer device data")
		}
		if err := r.s.Unmap(p, addr, buf.Size, dmaapi.FromDevice); err != nil {
			t.Fatal(err)
		}
	})
}

func TestSyncForDeviceRefreshesShadow(t *testing.T) {
	r := newRig(t, 1)
	buf := r.alloc(t, 1000)
	r.env.Mem.Write(buf.Addr, []byte("version-1"))
	r.run(t, func(p *sim.Proc) {
		addr, _ := r.s.Map(p, buf, dmaapi.ToDevice)
		// CPU updates the buffer mid-mapping and hands it back.
		r.env.Mem.Write(buf.Addr, []byte("version-2"))
		got := make([]byte, 9)
		r.env.IOMMU.DMARead(r.env.Dev, addr, got)
		if string(got) != "version-1" {
			t.Error("device should still see the mapped-time snapshot")
		}
		if err := r.s.SyncForDevice(p, addr, buf.Size, dmaapi.ToDevice); err != nil {
			t.Fatal(err)
		}
		r.env.IOMMU.DMARead(r.env.Dev, addr, got)
		if string(got) != "version-2" {
			t.Error("sync_for_device did not refresh the shadow buffer")
		}
		r.s.Unmap(p, addr, buf.Size, dmaapi.ToDevice)
	})
}

func TestSyncErrors(t *testing.T) {
	r := newRig(t, 1)
	buf := r.alloc(t, 1000)
	r.run(t, func(p *sim.Proc) {
		addr, _ := r.s.Map(p, buf, dmaapi.FromDevice)
		if err := r.s.SyncForCPU(p, addr, 5000, dmaapi.FromDevice); err == nil {
			t.Error("oversize sync should fail")
		}
		r.s.Unmap(p, addr, buf.Size, dmaapi.FromDevice)
		if err := r.s.SyncForCPU(p, addr, buf.Size, dmaapi.FromDevice); err == nil {
			t.Error("sync after unmap should fail")
		}
		if err := r.s.SyncForCPU(p, 0xdead, 10, dmaapi.FromDevice); err == nil {
			t.Error("sync of unknown IOVA should fail")
		}
	})
}

func TestHybridSyncCoversHeadAndTail(t *testing.T) {
	r := newRig(t, 1)
	base, _ := r.env.Mem.AllocPages(0, 40)
	buf := mem.Buf{Addr: base + 700, Size: 130 * 1024}
	r.run(t, func(p *sim.Proc) {
		addr, err := r.s.Map(p, buf, dmaapi.FromDevice)
		if err != nil {
			t.Fatal(err)
		}
		payload := make([]byte, buf.Size)
		for i := range payload {
			payload[i] = byte(i * 3)
		}
		if res := r.env.IOMMU.DMAWrite(r.env.Dev, addr, payload); res.Fault != nil {
			t.Fatal(res.Fault)
		}
		if err := r.s.SyncForCPU(p, addr, buf.Size, dmaapi.FromDevice); err != nil {
			t.Fatal(err)
		}
		snap, _ := r.env.Mem.Snapshot(buf)
		if !bytes.Equal(snap, payload) {
			t.Error("hybrid sync_for_cpu incomplete (head/tail not copied)")
		}
		if err := r.s.Unmap(p, addr, buf.Size, dmaapi.FromDevice); err != nil {
			t.Fatal(err)
		}
	})
}
