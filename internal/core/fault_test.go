package core

import (
	"errors"
	"testing"

	"repro/internal/dmaapi"
	"repro/internal/mem"
	"repro/internal/sim"
)

// Fault injection against the shadow mapper: allocation failures strike
// inside pool growth and the hybrid head/tail path, and every partial
// construction must unwind to exactly the prior accounting state.

func TestShadowSGUnwindsUnderAllocFail(t *testing.T) {
	r := newRig(t, 1)
	// Disable the degradation ladder: this test is about the unwind of a
	// hard pool failure, which the ladder would otherwise absorb (the
	// retry rung re-acquires after the one-shot injected failure).
	r.s.degrade = DegradeConfig{Disable: true}
	// Buffers large enough that each SG element needs a fresh pool grow
	// (nothing free-listed yet), so the injected failure lands mid-list.
	bufs := []mem.Buf{r.alloc(t, 3000), r.alloc(t, 3000), r.alloc(t, 3000)}
	r.run(t, func(p *sim.Proc) {
		// Fail the SECOND page allocation: element 0 grows its shadow
		// buffer, element 1's grow fails mid-scatter-list.
		n := 0
		r.env.Mem.AllocFail = func(domain, pages int) bool {
			n++
			return n == 2
		}
		_, err := r.s.MapSG(p, bufs, dmaapi.ToDevice)
		r.env.Mem.AllocFail = nil
		if err == nil {
			t.Fatal("SG map should fail when pool growth hits allocation failure")
		}
		if !errors.Is(err, mem.ErrInjectedAllocFail) {
			t.Fatalf("error does not unwrap to injected failure: %v", err)
		}
		if acct := r.s.Accounting(); !acct.Zero() {
			t.Fatalf("mid-SG failure leaked shadow state: %+v", acct)
		}
		// The element-0 shadow buffer it did grow went back to the free
		// list; the same SG list must now map without further growth.
		addrs, err := r.s.MapSG(p, bufs, dmaapi.ToDevice)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.s.UnmapSG(p, addrs, []int{3000, 3000, 3000}, dmaapi.ToDevice); err != nil {
			t.Fatal(err)
		}
		if acct := r.s.Accounting(); !acct.Zero() {
			t.Fatalf("accounting not restored after SG round trip: %+v", acct)
		}
	})
}

func TestHybridMapUnwindsUnderAllocFail(t *testing.T) {
	r := newRig(t, 1)
	// > MaxClass (64 KiB) and page-misaligned on both ends, so the hybrid
	// path needs the IOVA range, a head page, and a tail page. Kmalloc's
	// whole-page fallback is page-aligned, so carve a misaligned window
	// out of a larger allocation.
	backing := r.alloc(t, 80*1024)
	buf := mem.Buf{Addr: backing.Addr + 123, Size: 70*1024 + 500}
	r.run(t, func(p *sim.Proc) {
		for failAt := 1; failAt <= 2; failAt++ {
			n := 0
			r.env.Mem.AllocFail = func(domain, pages int) bool {
				n++
				return n == failAt
			}
			_, err := r.s.Map(p, buf, dmaapi.Bidirectional)
			r.env.Mem.AllocFail = nil
			if err == nil {
				t.Fatalf("failAt=%d: hybrid map should fail", failAt)
			}
			if acct := r.s.Accounting(); !acct.Zero() {
				t.Fatalf("failAt=%d: hybrid unwind leaked: %+v", failAt, acct)
			}
		}
		// And with no failure the same buffer maps fine.
		addr, err := r.s.Map(p, buf, dmaapi.Bidirectional)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.s.Unmap(p, addr, buf.Size, dmaapi.Bidirectional); err != nil {
			t.Fatal(err)
		}
		if acct := r.s.Accounting(); !acct.Zero() {
			t.Fatalf("accounting not zero after hybrid round trip: %+v", acct)
		}
	})
}

func TestShadowDoubleUnmapAndNeverMapped(t *testing.T) {
	r := newRig(t, 1)
	buf := r.alloc(t, 2000)
	r.run(t, func(p *sim.Proc) {
		addr, err := r.s.Map(p, buf, dmaapi.FromDevice)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.s.Unmap(p, addr, buf.Size, dmaapi.FromDevice); err != nil {
			t.Fatal(err)
		}
		if err := r.s.Unmap(p, addr, buf.Size, dmaapi.FromDevice); err == nil {
			t.Fatal("double unmap of released shadow buffer succeeded")
		}
		// A shadow-looking IOVA nothing handed out, and a hybrid-region
		// IOVA with no hybrid mapping: both must fail gracefully.
		if err := r.s.Unmap(p, addr+1<<20, buf.Size, dmaapi.FromDevice); err == nil {
			t.Fatal("unmap of never-acquired shadow IOVA succeeded")
		}
		if err := r.s.Unmap(p, 1<<34|0x5000, mem.PageSize, dmaapi.FromDevice); err == nil {
			t.Fatal("unmap of never-mapped hybrid IOVA succeeded")
		}
		if acct := r.s.Accounting(); !acct.Zero() {
			t.Fatalf("failed unmaps perturbed accounting: %+v", acct)
		}
	})
}
