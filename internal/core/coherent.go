package core

import (
	"fmt"

	"repro/internal/cycles"
	"repro/internal/iommu"
	"repro/internal/mem"
	"repro/internal/sim"
)

// Coherent allocations (descriptor rings, mailboxes) use "the standard DMA
// API implementation with strict protection" (paper §5.2): they are
// infrequent, page-granular by construction (so already byte-safe), and
// shared intentionally between CPU and device.

// AllocCoherent implements dmaapi.Mapper.
func (s *ShadowMapper) AllocCoherent(p *sim.Proc, size int) (iommu.IOVA, mem.Buf, error) {
	if size <= 0 {
		return 0, mem.Buf{}, fmt.Errorf("copy: coherent alloc of %d bytes", size)
	}
	env := s.env
	pages := (size + mem.PageSize - 1) / mem.PageSize
	domain := env.DomainOfCore(p.Core())
	phys, err := env.Mem.AllocPages(domain, pages)
	if err != nil {
		return 0, mem.Buf{}, err
	}
	p.ChargeSpan("iova-alloc", cycles.TagIOVA, env.Costs.MagazineAlloc)
	base, err := s.extAlloc.Alloc(p.Core(), pages)
	if err != nil {
		return 0, mem.Buf{}, err
	}
	p.ChargeSpan("ptes", cycles.TagPTMgmt, env.Costs.PTMap+env.Costs.PTPerPage*uint64(pages-1))
	if err := env.IOMMU.Map(env.Dev, base, phys, pages*mem.PageSize, iommu.PermRW); err != nil {
		return 0, mem.Buf{}, err
	}
	s.stats.CoherentAllocs++
	s.coherent++
	return base, mem.Buf{Addr: phys, Size: size}, nil
}

// FreeCoherent implements dmaapi.Mapper, strictly invalidating.
func (s *ShadowMapper) FreeCoherent(p *sim.Proc, addr iommu.IOVA, buf mem.Buf) error {
	env := s.env
	pages := (buf.Size + mem.PageSize - 1) / mem.PageSize
	p.ChargeSpan("ptes", cycles.TagPTMgmt, env.Costs.PTUnmap)
	if err := env.IOMMU.Unmap(env.Dev, addr, pages*mem.PageSize); err != nil {
		return err
	}
	if p.Observed() {
		p.SpanEnter("inval")
	}
	q := env.IOMMU.Queue
	q.Lock.Lock(p)
	done := q.SubmitPages(p, env.Dev, addr.Page(), uint64(pages))
	q.WaitRecover(p, done)
	q.Lock.Unlock(p)
	if p.Observed() {
		p.SpanExit()
	}
	if err := s.extAlloc.Free(p.Core(), addr, pages); err != nil {
		return err
	}
	s.coherent--
	return env.Mem.FreePages(buf.Addr, pages)
}
