package core

import (
	"errors"
	"fmt"

	"repro/internal/cycles"
	"repro/internal/dmaapi"
	"repro/internal/iommu"
	"repro/internal/mem"
	"repro/internal/shadow"
	"repro/internal/sim"
)

// isExhausted reports whether err is the pool-pressure signal the ladder
// reacts to; any other acquire failure stays a hard error.
func isExhausted(err error) bool { return errors.Is(err, shadow.ErrPoolExhausted) }

// Graceful degradation under shadow-pool pressure (the resilience ladder).
// Before this, shadow.ErrPoolExhausted was a hard Map failure: one dry pool
// and the datapath stopped. Now exhaustion is a policy decision with three
// rungs, each trading a little performance for continued service:
//
//	rung 1  bounded retry: spin a short doubling backoff and re-acquire —
//	        transient pressure (a concurrent Trim, a burst) usually clears.
//	rung 2  strict spill: map the OS buffer itself, page-granular, through
//	        the IOMMU — the slow path the paper's copy strategy exists to
//	        avoid (per-map IOVA allocation, PTE writes, and a strict
//	        invalidation at unmap), but it keeps data flowing with strict
//	        protection; only the sub-page byte-granularity guarantee is
//	        given up while degraded.
//	rung 3  backpressure: refuse the map with dmaapi.ErrBackpressure so
//	        the driver sheds load (drops the packet) instead of failing.
//
// All rungs are observable: resilience.* spans in cycle reports and the
// Degraded*/Backpressure counters in dmaapi.Stats.

// DegradeConfig parameterizes the ladder. The zero value (see
// defaultDegrade) keeps the ladder armed with sane bounds; set Disable to
// restore the old hard-failure behaviour.
type DegradeConfig struct {
	// Disable turns the ladder off: pool exhaustion fails the Map.
	Disable bool
	// MaxRetries bounds rung 1's re-acquire attempts.
	MaxRetries int
	// RetryBackoff is rung 1's initial backoff in cycles (doubles per
	// attempt). The wait is a spin: the core is burning cycles for the
	// pool to refill, and the cost must be visible in profiles.
	RetryBackoff uint64
	// MaxSpills bounds concurrent rung-2 spill mappings; beyond it the
	// ladder jumps straight to backpressure.
	MaxSpills int
	// SkipSpillInval is a bug-reintroduction switch for the fuzzer
	// (-inject-bug spillnoinval): spill unmaps skip the strict IOTLB
	// invalidation, opening the classic deferred vulnerability window on
	// the spill path. Never set outside tests.
	SkipSpillInval bool
}

func defaultDegrade() DegradeConfig {
	return DegradeConfig{MaxRetries: 2, RetryBackoff: 4096, MaxSpills: 1 << 16}
}

// WithDegrade overrides the degradation-ladder configuration.
func WithDegrade(cfg DegradeConfig) Option {
	return func(s *ShadowMapper) {
		if cfg.MaxRetries < 0 {
			cfg.MaxRetries = 0
		}
		if cfg.MaxSpills <= 0 {
			cfg.MaxSpills = 1 << 16
		}
		if cfg.RetryBackoff == 0 {
			cfg.RetryBackoff = 4096
		}
		s.degrade = cfg
	}
}

// spillMapping is one rung-2 mapping: the OS buffer mapped directly,
// page-granular, with strict unmap semantics.
type spillMapping struct {
	base  iommu.IOVA // page-aligned start of the IOVA range
	osBuf mem.Buf
	dir   dmaapi.Dir
	pages int
}

// mapDegraded runs the ladder after the pool reported exhaustion.
func (s *ShadowMapper) mapDegraded(p *sim.Proc, buf mem.Buf, dir dmaapi.Dir, cause error) (iommu.IOVA, error) {
	// Rung 1: bounded retry with doubling backoff.
	backoff := s.degrade.RetryBackoff
	for i := 0; i < s.degrade.MaxRetries; i++ {
		s.stats.DegradedRetries++
		if p.Observed() {
			p.SpanEnter("resilience.retry")
		}
		p.SpinUntil(cycles.TagOther, p.Now()+backoff)
		if p.Observed() {
			p.SpanExit()
		}
		backoff *= 2
		meta, err := s.pool.Acquire(p, buf, buf.Size, dir.Perm())
		if err == nil {
			return s.finishPoolMap(p, meta, buf, dir)
		}
		if !isExhausted(err) {
			return 0, err
		}
		cause = err
	}
	// Rung 2: strict per-buffer spill.
	addr, err := s.mapSpill(p, buf, dir)
	if err == nil {
		return addr, nil
	}
	// Rung 3: backpressure — cheap refusal, caller sheds load.
	s.stats.BackpressureFails++
	return 0, fmt.Errorf("copy: ladder exhausted (pool: %v; spill: %v): %w",
		cause, err, dmaapi.ErrBackpressure)
}

// mapSpill installs a rung-2 mapping: the OS buffer's pages mapped
// directly through the IOMMU at a fresh IOVA range from the external
// allocator. The device operates on the OS buffer itself, so data is
// byte-identical to the healthy copy path; what is lost is sub-page
// granularity (siblings on the first/last page become reachable) and the
// zero-invalidation unmap.
func (s *ShadowMapper) mapSpill(p *sim.Proc, buf mem.Buf, dir dmaapi.Dir) (iommu.IOVA, error) {
	env := s.env
	if p.Observed() {
		p.SpanEnter("resilience.spill")
		defer p.SpanExit()
	}
	s.spLock.Lock(p)
	n := len(s.spills)
	s.spLock.Unlock(p)
	if n >= s.degrade.MaxSpills {
		return 0, fmt.Errorf("copy: spill table full (%d live)", n)
	}
	pages := dmaapi.PagesOf(uint64(buf.Addr), buf.Size)
	p.ChargeSpan("iova-alloc", cycles.TagIOVA, env.Costs.MagazineAlloc)
	base, err := s.extAlloc.Alloc(p.Core(), pages)
	if err != nil {
		return 0, err
	}
	p.ChargeSpan("ptes", cycles.TagPTMgmt, env.Costs.PTMap+env.Costs.PTPerPage*uint64(pages-1))
	if err := env.IOMMU.Map(env.Dev, base, buf.Addr.PageBase(), pages*mem.PageSize, dir.Perm()); err != nil {
		_ = s.extAlloc.Free(p.Core(), base, pages)
		return 0, err
	}
	addr := base + iommu.IOVA(buf.Addr.Offset())
	// Spill-table bookkeeping, charged to the resilience span itself.
	p.Charge(cycles.TagOther, env.Costs.ShadowFind)
	s.spLock.Lock(p)
	s.spills[addr] = &spillMapping{base: base, osBuf: buf, dir: dir, pages: pages}
	s.spLock.Unlock(p)
	s.stats.DegradedSpills++
	s.stats.Maps++
	s.stats.BytesMapped += uint64(buf.Size)
	return addr, nil
}

// lookupSpill returns the spill mapping at addr, if any.
func (s *ShadowMapper) lookupSpill(p *sim.Proc, addr iommu.IOVA) *spillMapping {
	if len(s.spills) == 0 {
		return nil
	}
	s.spLock.Lock(p)
	sp := s.spills[addr]
	s.spLock.Unlock(p)
	return sp
}

// unmapSpill tears down a rung-2 mapping: clear the PTEs and strictly
// invalidate (spills are zero-copy, so unlike the pool path the IOTLB
// MUST be flushed before the pages are reused — unless the spillnoinval
// bug switch deliberately reopens that window for the fuzzer).
func (s *ShadowMapper) unmapSpill(p *sim.Proc, addr iommu.IOVA, size int, dir dmaapi.Dir) error {
	env := s.env
	s.spLock.Lock(p)
	sp := s.spills[addr]
	delete(s.spills, addr)
	s.spLock.Unlock(p)
	if sp == nil {
		return fmt.Errorf("copy: spill unmap of unknown %#x", uint64(addr))
	}
	if sp.dir != dir || sp.osBuf.Size != size {
		return fmt.Errorf("copy: spill unmap mismatch (dir %v size %d vs map %v %d)",
			dir, size, sp.dir, sp.osBuf.Size)
	}
	if p.Observed() {
		p.SpanEnter("resilience.spill")
		defer p.SpanExit()
	}
	p.ChargeSpan("ptes", cycles.TagPTMgmt, env.Costs.PTUnmap+env.Costs.PTPerPage*uint64(sp.pages-1))
	if err := env.IOMMU.Unmap(env.Dev, sp.base, sp.pages*mem.PageSize); err != nil {
		return err
	}
	if !s.degrade.SkipSpillInval {
		if p.Observed() {
			p.SpanEnter("inval")
		}
		q := env.IOMMU.Queue
		q.Lock.Lock(p)
		done := q.SubmitPages(p, env.Dev, sp.base.Page(), uint64(sp.pages))
		q.WaitRecover(p, done)
		q.Lock.Unlock(p)
		if p.Observed() {
			p.SpanExit()
		}
	}
	p.ChargeSpan("iova-free", cycles.TagIOVA, env.Costs.MagazineAlloc)
	if err := s.extAlloc.Free(p.Core(), sp.base, sp.pages); err != nil {
		return err
	}
	s.stats.Unmaps++
	return nil
}

// syncSpill: spills are zero-copy, so syncs are cache maintenance only.
func (s *ShadowMapper) syncSpill(p *sim.Proc, sp *spillMapping, size int) error {
	if size > sp.osBuf.Size {
		return fmt.Errorf("copy: spill sync size %d exceeds mapping %d", size, sp.osBuf.Size)
	}
	p.ChargeSpan("sync", cycles.TagOther, s.env.Costs.SyncMaint)
	return nil
}
