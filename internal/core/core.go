// Package core implements the paper's contribution: intra-OS protection via
// DMA shadowing ("copy"). The DMA API is implemented as a layer on top of a
// per-device shadow buffer pool (internal/shadow): dma_map acquires a
// permanently-mapped shadow buffer and copies data into it, dma_unmap
// copies device-written data out and releases the buffer. The device can
// only ever address shadow buffers, so protection is strict (no
// invalidation window — the IOTLB never needs invalidating) and
// byte-granular (OS buffers are never mapped at all).
//
// The two extensions the paper describes are implemented as real code
// paths: optional per-driver copying hints (§5.4) and the huge-buffer
// hybrid that copies only the sub-page head/tail and zero-copy-maps the
// page-aligned middle (§5.5).
package core

import (
	"fmt"

	"repro/internal/cycles"
	"repro/internal/dmaapi"
	"repro/internal/iommu"
	"repro/internal/iova"
	"repro/internal/mem"
	"repro/internal/shadow"
	"repro/internal/sim"
)

// HintFunc is a driver-registered copying hint (§5.4): given the shadow
// buffer a device wrote and the mapped size, it returns how many bytes are
// worth copying out (e.g. the IP datagram length of a received packet).
// The shadow buffer contents are untrusted — the hint must treat them
// defensively and its result is clamped to the mapped size.
type HintFunc func(m *mem.Memory, shadowBuf mem.Buf, mappedSize int) int

// Option configures a ShadowMapper.
type Option func(*ShadowMapper)

// WithPoolConfig overrides the shadow pool configuration (default: the
// paper prototype's 4 KiB + 64 KiB classes, 16 K buffers per class).
func WithPoolConfig(cfg shadow.Config) Option {
	return func(s *ShadowMapper) { s.poolCfg = &cfg }
}

// WithHint registers a copying hint for receive (FromDevice) unmaps.
func WithHint(h HintFunc) Option {
	return func(s *ShadowMapper) { s.hint = h }
}

// ShadowMapper implements dmaapi.Mapper with DMA shadowing.
type ShadowMapper struct {
	env     *dmaapi.Env
	pool    *shadow.Pool
	poolCfg *shadow.Config
	hint    HintFunc

	// Huge-buffer hybrid state (§5.5). Hybrid maps are infrequent by
	// design — huge buffers imply low DMA rates — so a single lock on
	// the tracking table is fine; IOVAs come from the scalable external
	// allocator, as the paper prescribes.
	hyLock    *sim.Spinlock
	hybrids   map[iommu.IOVA]*hybridMapping
	extAlloc  *iova.MagazineAllocator
	pageCache [][]mem.Phys // per-core cache of head/tail shadow pages

	// Degradation-ladder state (see degrade.go): configuration plus the
	// table of live rung-2 spill mappings.
	degrade DegradeConfig
	spLock  *sim.Spinlock
	spills  map[iommu.IOVA]*spillMapping

	coherent int // outstanding coherent allocations
	stats    dmaapi.Stats
}

type hybridMapping struct {
	base     iommu.IOVA // page-aligned start of the IOVA range
	osBuf    mem.Buf
	dir      dmaapi.Dir
	pages    int
	headLen  int // bytes shadowed at the head (0 if page-aligned start)
	tailLen  int // bytes shadowed at the tail (0 if page-aligned end)
	headPage mem.Phys
	tailPage mem.Phys
}

// NewShadowMapper builds the DMA-shadowing mapper for env's device.
func NewShadowMapper(env *dmaapi.Env, opts ...Option) (*ShadowMapper, error) {
	s := &ShadowMapper{
		env:     env,
		hyLock:  env.NewLock("hybrid"),
		hybrids: make(map[iommu.IOVA]*hybridMapping),
		// Hybrid/coherent IOVAs: high end of the MSB-clear half, far
		// from the pool's fallback region (low end).
		extAlloc:  iova.NewMagazine(env.Cores, 1<<34, 1<<35, 64),
		pageCache: make([][]mem.Phys, env.Cores),
		degrade:   defaultDegrade(),
		spLock:    env.NewLock("spill"),
		spills:    make(map[iommu.IOVA]*spillMapping),
	}
	for _, o := range opts {
		o(s)
	}
	cfg := shadow.DefaultConfig(env.Cores, env.Mem.Domains(), env.DomainOfCore)
	if s.poolCfg != nil {
		cfg = *s.poolCfg
	}
	pool, err := shadow.NewPool(env.Eng, env.Mem, env.IOMMU, env.Costs, env.Dev, cfg)
	if err != nil {
		return nil, err
	}
	s.pool = pool
	return s, nil
}

// Name implements Mapper.
func (s *ShadowMapper) Name() string { return "copy" }

// Pool exposes the shadow pool (stats, memory-pressure trimming).
func (s *ShadowMapper) Pool() *shadow.Pool { return s.pool }

// copyCost charges the copy of n bytes between buffers on the given NUMA
// domains, including the cache-pollution surcharge for copies that exceed
// the L1 (which lands in "other", as the paper's Fig 5b attributes it).
func (s *ShadowMapper) copyCost(p *sim.Proc, n, fromDom, toDom int) {
	c := s.env.Costs
	if fromDom == toDom {
		p.Charge(cycles.TagMemcpy, c.Memcpy(n))
	} else {
		p.Charge(cycles.TagMemcpy, c.MemcpyRemote(n))
	}
	if poll := c.Pollution(n); poll > 0 {
		p.Charge(cycles.TagOther, poll)
	}
}

// Map implements Mapper. For data the device will read, the OS buffer is
// copied into the shadow buffer now.
func (s *ShadowMapper) Map(p *sim.Proc, buf mem.Buf, dir dmaapi.Dir) (iommu.IOVA, error) {
	if buf.Size <= 0 {
		return 0, fmt.Errorf("copy: map of %d bytes", buf.Size)
	}
	if p.Observed() {
		p.SpanEnter("map")
		defer p.SpanExit()
	}
	if buf.Size > s.pool.MaxClass() {
		return s.mapHybrid(p, buf, dir)
	}
	meta, err := s.pool.Acquire(p, buf, buf.Size, dir.Perm())
	if err != nil {
		if isExhausted(err) && !s.degrade.Disable {
			return s.mapDegraded(p, buf, dir, err)
		}
		return 0, err
	}
	return s.finishPoolMap(p, meta, buf, dir)
}

// finishPoolMap completes a Map whose shadow buffer was acquired: copy-in
// for device-readable data, then stats. Shared by the fast path and the
// ladder's retry rung.
func (s *ShadowMapper) finishPoolMap(p *sim.Proc, meta *shadow.Meta, buf mem.Buf, dir dmaapi.Dir) (iommu.IOVA, error) {
	if dir == dmaapi.ToDevice || dir == dmaapi.Bidirectional {
		if err := s.copyBytes(p, buf.Addr, meta.Shadow().Addr, buf.Size); err != nil {
			s.pool.Release(p, meta)
			return 0, err
		}
	}
	s.stats.Maps++
	s.stats.BytesMapped += uint64(buf.Size)
	return meta.IOVA(), nil
}

// Unmap implements Mapper. For data the device wrote, the shadow buffer is
// copied back to the OS buffer (honouring the copying hint); the shadow
// buffer then returns to its pool. No IOTLB invalidation ever happens.
func (s *ShadowMapper) Unmap(p *sim.Proc, addr iommu.IOVA, size int, dir dmaapi.Dir) error {
	if p.Observed() {
		p.SpanEnter("unmap")
		defer p.SpanExit()
	}
	if !shadow.IsShadow(addr) {
		s.hyLock.Lock(p)
		_, isHybrid := s.hybrids[addr]
		s.hyLock.Unlock(p)
		if isHybrid {
			return s.unmapHybrid(p, addr, size, dir)
		}
		if sp := s.lookupSpill(p, addr); sp != nil {
			return s.unmapSpill(p, addr, size, dir)
		}
	}
	meta, err := s.pool.Find(p, addr)
	if err != nil {
		return err
	}
	if meta.OSBuf().Size == 0 {
		return fmt.Errorf("copy: unmap of unacquired shadow %#x", uint64(addr))
	}
	if meta.Rights() != dir.Perm() {
		return fmt.Errorf("copy: unmap direction %v does not match mapping rights %v", dir, meta.Rights())
	}
	osBuf := meta.OSBuf()
	if size != osBuf.Size {
		return fmt.Errorf("copy: unmap size %d does not match map size %d", size, osBuf.Size)
	}
	if dir == dmaapi.FromDevice || dir == dmaapi.Bidirectional {
		n := size
		if s.hint != nil {
			if h := s.hint(s.env.Mem, meta.Shadow(), size); h >= 0 && h < n {
				s.stats.CopyHintBytesSaved += uint64(n - h)
				n = h
			}
		}
		if n > 0 {
			if err := s.copyBytes(p, meta.Shadow().Addr, osBuf.Addr, n); err != nil {
				return err
			}
		}
	}
	s.pool.Release(p, meta)
	s.stats.Unmaps++
	return nil
}

// MapSG implements Mapper: each scatter/gather element is shadowed in its
// own shadow buffer (paper §5.2).
func (s *ShadowMapper) MapSG(p *sim.Proc, bufs []mem.Buf, dir dmaapi.Dir) ([]iommu.IOVA, error) {
	addrs := make([]iommu.IOVA, 0, len(bufs))
	for _, b := range bufs {
		a, err := s.Map(p, b, dir)
		if err != nil {
			for i, done := range addrs {
				_ = s.Unmap(p, done, bufs[i].Size, dir)
			}
			return nil, err
		}
		addrs = append(addrs, a)
	}
	return addrs, nil
}

// UnmapSG implements Mapper.
func (s *ShadowMapper) UnmapSG(p *sim.Proc, addrs []iommu.IOVA, sizes []int, dir dmaapi.Dir) error {
	if len(addrs) != len(sizes) {
		return fmt.Errorf("copy: SG unmap length mismatch")
	}
	for i, a := range addrs {
		if err := s.Unmap(p, a, sizes[i], dir); err != nil {
			return err
		}
	}
	return nil
}

// Quiesce implements Mapper: DMA shadowing never defers anything.
func (s *ShadowMapper) Quiesce(p *sim.Proc) {}

// Stats implements Mapper.
func (s *ShadowMapper) Stats() dmaapi.Stats {
	st := s.stats
	ps := s.pool.Stats()
	st.ShadowPoolBytes = ps.TotalBytes()
	st.ShadowPoolBuffers = ps.Acquires - ps.Releases
	st.ShadowGrows = ps.Grows
	st.FallbackMaps = ps.FallbackBuffers
	return st
}

// Accounting implements Mapper. The shadow pool itself is a permanent
// cache and excluded; acquired-but-unreleased shadow buffers and live
// hybrid mappings are the strategy's live state. IOVAPagesHeld covers the
// external allocator only (hybrid middles and coherent buffers) — pool
// IOVAs are permanent.
func (s *ShadowMapper) Accounting() dmaapi.Accounting {
	ps := s.pool.Stats()
	return dmaapi.Accounting{
		LiveMappings:  int(ps.Acquires-ps.Releases) + len(s.hybrids) + len(s.spills),
		LiveCoherent:  s.coherent,
		IOVAPagesHeld: s.extAlloc.Outstanding(),
	}
}
