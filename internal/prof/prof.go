// Package prof is the shared -cpuprofile/-memprofile plumbing of the cmd/*
// tools: a one-call wrapper over runtime/pprof so every binary exposes the
// same profiling workflow (see "Performance & profiling" in README.md).
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath (if non-empty) and arranges for a
// heap profile to be written to memPath (if non-empty) when the returned
// stop function runs. Either path may be empty; stop is always safe to call
// exactly once, typically via defer.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "prof: %v\n", err)
				return
			}
			runtime.GC() // materialize up-to-date allocation stats
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "prof: %v\n", err)
			}
			f.Close()
		}
	}, nil
}
