// Package ssd simulates an NVMe-class solid-state drive and a block-layer
// driver on top of the DMA API. It substantiates the paper's §5.5
// argument: huge DMA buffers come with low operation rates (the paper
// cites Intel datacenter SSDs at up to 850K read / 150K write IOPS against
// the NIC's 1.7M packets/s), so zero-copy mapping with strict invalidation
// is affordable there — which is exactly when the shadow mapper's hybrid
// path engages.
//
// The device is functional: reads and writes move real bytes between a
// simulated flash store and host memory, through the IOMMU.
package ssd

import (
	"repro/internal/cycles"
	"repro/internal/iommu"
	"repro/internal/sim"
)

// Op is a storage command opcode.
type Op uint8

// Commands.
const (
	OpRead Op = iota + 1
	OpWrite
)

// BlockSize is the logical block size.
const BlockSize = 4096

// Config describes the device.
type Config struct {
	Dev        iommu.DeviceID
	Queues     int // submission/completion queue pairs (one per core)
	QueueDepth int
	Costs      *cycles.Costs

	// Performance envelope (defaults follow the paper's §5.5 numbers).
	ReadIOPS      uint64 // max 4K read rate
	WriteIOPS     uint64 // max 4K write rate
	BandwidthMBps uint64 // sequential bandwidth
	ReadLatency   uint64 // flash read latency, cycles
	WriteLatency  uint64 // program latency, cycles
}

func (c *Config) fillDefaults() {
	if c.Queues < 1 {
		c.Queues = 1
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.ReadIOPS == 0 {
		c.ReadIOPS = 850_000
	}
	if c.WriteIOPS == 0 {
		c.WriteIOPS = 150_000
	}
	if c.BandwidthMBps == 0 {
		c.BandwidthMBps = 2800
	}
	if c.ReadLatency == 0 {
		c.ReadLatency = cycles.FromMicros(80)
	}
	if c.WriteLatency == 0 {
		c.WriteLatency = cycles.FromMicros(25)
	}
}

// Command is one submission-queue entry.
type Command struct {
	Op   Op
	LBA  uint64
	Addr iommu.IOVA
	Len  int
	Tag  interface{}
}

// Completion reports a finished command.
type Completion struct {
	Cmd    Command
	Status error // nil on success; IOMMU faults surface here
}

// SSD is the simulated device.
type SSD struct {
	eng *sim.Engine
	u   *iommu.IOMMU
	cfg Config

	queues []*Queue
	flash  map[uint64][]byte // lba -> BlockSize bytes
	// busyTill models the device's internal throughput pipe: ops consume
	// 1/IOPS (or transfer time for big ops), while completion latency is
	// decoupled (the device is internally parallel).
	busyTill uint64

	// Stats
	Reads, Writes          uint64
	BytesRead, BytesWriten uint64
	Faults                 uint64
}

// Queue is one submission/completion queue pair.
type Queue struct {
	dev *SSD
	idx int

	sq          []Command
	outstanding int
	comp        []Completion
	CompCond    *sim.Cond
}

// New creates the device.
func New(eng *sim.Engine, u *iommu.IOMMU, cfg Config) *SSD {
	cfg.fillDefaults()
	d := &SSD{eng: eng, u: u, cfg: cfg, flash: make(map[uint64][]byte)}
	for i := 0; i < cfg.Queues; i++ {
		d.queues = append(d.queues, &Queue{dev: d, idx: i, CompCond: sim.NewCond("ssd-comp")})
	}
	return d
}

// Config returns the device configuration.
func (d *SSD) Config() Config { return d.cfg }

// Queue returns queue pair i.
func (d *SSD) Queue(i int) *Queue { return d.queues[i] }

// Preload writes a block directly into flash (test/workload setup).
func (d *SSD) Preload(lba uint64, data []byte) {
	blk := make([]byte, BlockSize)
	copy(blk, data)
	d.flash[lba] = blk
}

// BlockAt returns the current flash content of a block.
func (d *SSD) BlockAt(lba uint64) []byte {
	if b, ok := d.flash[lba]; ok {
		out := make([]byte, BlockSize)
		copy(out, b)
		return out
	}
	return make([]byte, BlockSize)
}

// Submit posts a command (driver context). It reports false when the
// queue is at its depth limit.
func (q *Queue) Submit(p *sim.Proc, cmd Command) bool {
	if q.outstanding >= q.dev.cfg.QueueDepth {
		return false
	}
	q.outstanding++
	q.sq = append(q.sq, cmd)
	q.dev.eng.Schedule(p.Now(), q.process)
	return true
}

// Outstanding returns the number of submitted, uncompleted commands.
func (q *Queue) Outstanding() int { return q.outstanding }

// HasComp reports whether completions are pending.
func (q *Queue) HasComp() bool { return len(q.comp) > 0 }

// DrainComp takes all pending completions (driver context).
func (q *Queue) DrainComp() []Completion {
	out := q.comp
	q.comp = nil
	return out
}

// process is the device-side engine: it pulls submissions, performs the
// data transfer through the IOMMU, and schedules completions according to
// the device's throughput and latency envelope.
func (q *Queue) process(now uint64) {
	d := q.dev
	for len(q.sq) > 0 {
		cmd := q.sq[0]
		q.sq = q.sq[1:]

		// Throughput occupancy: an op costs the larger of the IOPS slot
		// and the bandwidth transfer time.
		var slot uint64
		if cmd.Op == OpRead {
			slot = cycles.Hz / d.cfg.ReadIOPS
		} else {
			slot = cycles.Hz / d.cfg.WriteIOPS
		}
		xfer := uint64(cmd.Len) * cycles.Hz / (d.cfg.BandwidthMBps * 1_000_000)
		if xfer > slot {
			slot = xfer
		}
		start := now
		if d.busyTill > start {
			start = d.busyTill
		}
		d.busyTill = start + slot

		// Data movement (functional, through the IOMMU).
		var status error
		var lat uint64
		switch cmd.Op {
		case OpRead:
			lat = d.cfg.ReadLatency + xfer
			data := d.readFlash(cmd.LBA, cmd.Len)
			res := d.u.DMAWrite(d.cfg.Dev, cmd.Addr, data)
			if res.Fault != nil {
				status = res.Fault
				d.Faults++
			} else {
				d.Reads++
				d.BytesRead += uint64(cmd.Len)
			}
		case OpWrite:
			lat = d.cfg.WriteLatency + xfer
			data := make([]byte, cmd.Len)
			res := d.u.DMARead(d.cfg.Dev, cmd.Addr, data)
			if res.Fault != nil {
				status = res.Fault
				d.Faults++
			} else {
				d.writeFlash(cmd.LBA, data)
				d.Writes++
				d.BytesWriten += uint64(cmd.Len)
			}
		}
		done := start + lat + d.cfg.Costs.IRQLatency
		c := Completion{Cmd: cmd, Status: status}
		d.eng.Schedule(done, func(at uint64) {
			q.outstanding--
			q.comp = append(q.comp, c)
			q.CompCond.SignalAt(at, 1)
		})
	}
}

func (d *SSD) readFlash(lba uint64, n int) []byte {
	out := make([]byte, n)
	for off := 0; off < n; off += BlockSize {
		if b, ok := d.flash[lba+uint64(off/BlockSize)]; ok {
			copy(out[off:], b)
		}
	}
	return out
}

func (d *SSD) writeFlash(lba uint64, data []byte) {
	for off := 0; off < len(data); off += BlockSize {
		blk := make([]byte, BlockSize)
		copy(blk, data[off:])
		d.flash[lba+uint64(off/BlockSize)] = blk
	}
}
