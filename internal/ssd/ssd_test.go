package ssd

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/cycles"
	"repro/internal/dmaapi"
	"repro/internal/iommu"
	"repro/internal/mem"
	"repro/internal/sim"
)

type rig struct {
	eng    *sim.Engine
	m      *mem.Memory
	u      *iommu.IOMMU
	env    *dmaapi.Env
	dev    *SSD
	k      *mem.Kmalloc
	mapper dmaapi.Mapper
	bd     *BlockDriver
}

func newRig(t *testing.T, system string, queues int) *rig {
	t.Helper()
	eng := sim.NewEngine()
	m := mem.New(1)
	costs := cycles.Default()
	u := iommu.New(eng, m, costs)
	env := &dmaapi.Env{Eng: eng, Mem: m, IOMMU: u, Costs: costs, Dev: 7, Cores: queues}
	var mapper dmaapi.Mapper
	var err error
	switch system {
	case "copy":
		mapper, err = core.NewShadowMapper(env)
	case "noiommu":
		mapper = dmaapi.NewNoIOMMU(env)
	case "strict":
		mapper = dmaapi.NewLinux(env, false)
	}
	if err != nil {
		t.Fatal(err)
	}
	dev := New(eng, u, Config{Dev: 7, Queues: queues, Costs: costs})
	k := mem.NewKmalloc(m, nil)
	return &rig{eng: eng, m: m, u: u, env: env, dev: dev, k: k, mapper: mapper,
		bd: NewBlockDriver(env, mapper, dev, k)}
}

func TestReadWriteRoundTripThroughFlash(t *testing.T) {
	for _, sys := range []string{"noiommu", "copy", "strict"} {
		r := newRig(t, sys, 1)
		q := r.dev.Queue(0)
		buf, _ := r.k.Alloc(0, 8192)
		content := bytes.Repeat([]byte("flash-block-data"), 512) // 8 KiB
		r.eng.Spawn("blk", 0, 0, func(p *sim.Proc) {
			// Write 8 KiB at LBA 10.
			if err := r.m.Write(buf.Addr, content); err != nil {
				t.Error(err)
				return
			}
			addr, err := r.mapper.Map(p, buf, dmaapi.ToDevice)
			if err != nil {
				t.Error(err)
				return
			}
			q.Submit(p, Command{Op: OpWrite, LBA: 10, Addr: addr, Len: 8192, Tag: "w"})
			q.CompCond.WaitUntil(p, q.HasComp)
			c := q.DrainComp()[0]
			if c.Status != nil {
				t.Errorf("%s: write failed: %v", sys, c.Status)
			}
			r.mapper.Unmap(p, addr, buf.Size, dmaapi.ToDevice)

			// Read it back into a scrubbed buffer.
			r.m.Fill(buf, 0)
			addr, err = r.mapper.Map(p, buf, dmaapi.FromDevice)
			if err != nil {
				t.Error(err)
				return
			}
			q.Submit(p, Command{Op: OpRead, LBA: 10, Addr: addr, Len: 8192, Tag: "r"})
			q.CompCond.WaitUntil(p, q.HasComp)
			c = q.DrainComp()[0]
			if c.Status != nil {
				t.Errorf("%s: read failed: %v", sys, c.Status)
			}
			r.mapper.Unmap(p, addr, buf.Size, dmaapi.FromDevice)
			got, _ := r.m.Snapshot(buf)
			if !bytes.Equal(got, content) {
				t.Errorf("%s: flash round trip corrupted data", sys)
			}
		})
		r.eng.Run(1 << 40)
		r.eng.Stop()
		if r.dev.Reads != 1 || r.dev.Writes != 1 {
			t.Errorf("%s: device stats %d/%d", sys, r.dev.Reads, r.dev.Writes)
		}
	}
}

func TestSSDFaultsOnUnmappedBuffer(t *testing.T) {
	r := newRig(t, "strict", 1)
	q := r.dev.Queue(0)
	errs := 0
	r.eng.Spawn("blk", 0, 0, func(p *sim.Proc) {
		q.Submit(p, Command{Op: OpRead, LBA: 0, Addr: 0xdead000, Len: 4096, Tag: nil})
		q.CompCond.WaitUntil(p, q.HasComp)
		for _, c := range q.DrainComp() {
			if c.Status != nil {
				errs++
			}
		}
	})
	r.eng.Run(1 << 40)
	r.eng.Stop()
	if errs != 1 || r.dev.Faults != 1 {
		t.Errorf("errs=%d faults=%d", errs, r.dev.Faults)
	}
}

func TestQueueDepthEnforced(t *testing.T) {
	r := newRig(t, "noiommu", 1)
	r.dev.cfg.QueueDepth = 4
	q := r.dev.Queue(0)
	buf, _ := r.k.Alloc(0, 4096)
	r.eng.Spawn("blk", 0, 0, func(p *sim.Proc) {
		addr, _ := r.mapper.Map(p, buf, dmaapi.FromDevice)
		n := 0
		for q.Submit(p, Command{Op: OpRead, LBA: 0, Addr: addr, Len: 4096}) {
			n++
		}
		if n != 4 {
			t.Errorf("accepted %d commands, want 4", n)
		}
	})
	r.eng.Run(1 << 30)
	r.eng.Stop()
}

func TestWorkloadRunsAndVerifies(t *testing.T) {
	r := newRig(t, "copy", 1)
	// Prefill flash so 100%-read verification is deterministic.
	for lba := uint64(0); lba < 256; lba++ {
		blk := make([]byte, BlockSize)
		for i := range blk {
			blk[i] = byte(lba) ^ byte(i)
		}
		r.dev.Preload(lba, blk)
	}
	var st WorkloadStats
	r.eng.Spawn("blk", 0, 0, func(p *sim.Proc) {
		cfg := WorkloadConfig{IOSize: 4096, ReadPct: 100, Depth: 8, Blocks: 256, Seed: 1, Verify: true}
		if err := r.bd.RunWorkload(p, 0, cfg, &st); err != nil {
			t.Error(err)
		}
	})
	r.eng.Run(cycles.FromMillis(5))
	r.eng.Stop()
	if st.Reads < 100 {
		t.Errorf("reads = %d", st.Reads)
	}
	if st.Errors != 0 {
		t.Errorf("errors = %d", st.Errors)
	}
}

func TestThroughputEnvelopeRespected(t *testing.T) {
	// 4K random reads must not exceed the configured 850K IOPS even with
	// many queues hammering the device.
	r := newRig(t, "noiommu", 4)
	var stats [4]WorkloadStats
	for c := 0; c < 4; c++ {
		c := c
		r.eng.Spawn("blk", c, 0, func(p *sim.Proc) {
			cfg := WorkloadConfig{IOSize: 4096, ReadPct: 100, Depth: 32, Blocks: 4096, Seed: 7}
			_ = r.bd.RunWorkload(p, c, cfg, &stats[c])
		})
	}
	window := cycles.FromMillis(10)
	r.eng.Run(window)
	r.eng.Stop()
	var ops uint64
	for _, s := range stats {
		ops += s.Reads
	}
	iops := cycles.PerSec(ops, window)
	if iops > 900_000 {
		t.Errorf("IOPS = %.0f exceeds the device envelope", iops)
	}
	if iops < 500_000 {
		t.Errorf("IOPS = %.0f too low for a 4-queue read workload", iops)
	}
}

func TestHugeIOUsesHybridPath(t *testing.T) {
	r := newRig(t, "copy", 1)
	var st WorkloadStats
	r.eng.Spawn("blk", 0, 0, func(p *sim.Proc) {
		cfg := WorkloadConfig{IOSize: 256 * 1024, ReadPct: 50, Depth: 4, Blocks: 1024, Seed: 3}
		_ = r.bd.RunWorkload(p, 0, cfg, &st)
	})
	r.eng.Run(cycles.FromMillis(10))
	r.eng.Stop()
	ms := r.mapper.Stats()
	if ms.HybridMaps == 0 {
		t.Error("256 KiB I/O should engage the hybrid path")
	}
	if st.Errors != 0 {
		t.Errorf("errors = %d", st.Errors)
	}
	// Huge buffers are NOT copied wholesale: copied bytes must be far
	// below the bytes transferred.
	if ms.BytesCopied > st.Bytes/10 {
		t.Errorf("copied %d of %d transferred bytes; hybrid should copy only head/tail",
			ms.BytesCopied, st.Bytes)
	}
}
