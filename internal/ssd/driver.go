package ssd

import (
	"fmt"
	"math/rand"

	"repro/internal/cycles"
	"repro/internal/dmaapi"
	"repro/internal/mem"
	"repro/internal/sim"
)

// BlockDriver is the block-layer driver: it owns I/O buffers, maps them
// with whatever protection strategy the machine uses, and drives the SSD's
// queues — the storage analogue of the NIC driver in internal/netstack.
type BlockDriver struct {
	env    *dmaapi.Env
	mapper dmaapi.Mapper
	dev    *SSD
	k      *mem.Kmalloc
}

// NewBlockDriver creates the driver.
func NewBlockDriver(env *dmaapi.Env, mapper dmaapi.Mapper, dev *SSD, k *mem.Kmalloc) *BlockDriver {
	return &BlockDriver{env: env, mapper: mapper, dev: dev, k: k}
}

// WorkloadConfig describes a fio-style random I/O workload on one queue.
type WorkloadConfig struct {
	IOSize  int // bytes per command
	ReadPct int // 0..100
	Depth   int // target outstanding commands
	Blocks  uint64
	Seed    int64
	Verify  bool // check read contents against the flash image
}

// WorkloadStats accumulates results.
type WorkloadStats struct {
	Reads, Writes uint64
	Bytes         uint64
	Errors        uint64
}

type inflight struct {
	buf  mem.Buf
	dir  dmaapi.Dir
	lba  uint64
	data []byte // expected read content / written content
}

// RunWorkload runs random I/O on queue qi until the engine stops it.
func (bd *BlockDriver) RunWorkload(p *sim.Proc, qi int, cfg WorkloadConfig, st *WorkloadStats) error {
	if cfg.IOSize <= 0 {
		cfg.IOSize = 4096
	}
	if cfg.Depth <= 0 {
		cfg.Depth = 32
	}
	if cfg.Blocks == 0 {
		cfg.Blocks = 4096
	}
	q := bd.dev.Queue(qi)
	co := bd.env.Costs
	domain := bd.env.DomainOfCore(p.Core())
	rng := rand.New(rand.NewSource(cfg.Seed + int64(qi)))

	// Buffer pool: one per outstanding command.
	var pool []mem.Buf
	for i := 0; i < cfg.Depth; i++ {
		b, err := bd.k.Alloc(domain, cfg.IOSize)
		if err != nil {
			return err
		}
		pool = append(pool, b)
	}
	blocksPerIO := uint64((cfg.IOSize + BlockSize - 1) / BlockSize)

	complete := func() error {
		for _, c := range q.DrainComp() {
			fl := c.Cmd.Tag.(*inflight)
			p.ChargeSpan("blk/complete", cycles.TagOther, co.BlkComplete)
			if err := bd.mapper.Unmap(p, c.Cmd.Addr, fl.buf.Size, fl.dir); err != nil {
				return err
			}
			if c.Status != nil {
				st.Errors++
			} else {
				if c.Cmd.Op == OpRead {
					st.Reads++
					if cfg.Verify {
						got, err := bd.env.Mem.Snapshot(fl.buf)
						if err != nil {
							return err
						}
						for i := range got {
							if got[i] != fl.data[i] {
								return fmt.Errorf("ssd: read verify failed at lba %d offset %d", c.Cmd.LBA, i)
							}
						}
					}
				} else {
					st.Writes++
				}
				st.Bytes += uint64(c.Cmd.Len)
			}
			pool = append(pool, fl.buf)
		}
		return nil
	}

	for {
		if err := complete(); err != nil {
			return err
		}
		for len(pool) == 0 || q.Outstanding() >= cfg.Depth {
			q.CompCond.WaitUntil(p, q.HasComp)
			p.Sleep(co.SchedLatency)
			if err := complete(); err != nil {
				return err
			}
		}
		buf := pool[len(pool)-1]
		pool = pool[:len(pool)-1]

		lba := (rng.Uint64() % (cfg.Blocks / blocksPerIO)) * blocksPerIO
		isRead := rng.Intn(100) < cfg.ReadPct
		fl := &inflight{buf: buf, lba: lba}
		var cmd Command
		p.ChargeSpan("blk/submit", cycles.TagOther, co.BlkSubmit)
		if isRead {
			fl.dir = dmaapi.FromDevice
			if cfg.Verify {
				fl.data = bd.dev.readFlash(lba, cfg.IOSize)
			}
			addr, err := bd.mapper.Map(p, buf, fl.dir)
			if err != nil {
				return err
			}
			cmd = Command{Op: OpRead, LBA: lba, Addr: addr, Len: cfg.IOSize, Tag: fl}
		} else {
			fl.dir = dmaapi.ToDevice
			fl.data = make([]byte, cfg.IOSize)
			rng.Read(fl.data)
			if err := bd.env.Mem.Write(buf.Addr, fl.data); err != nil {
				return err
			}
			addr, err := bd.mapper.Map(p, buf, fl.dir)
			if err != nil {
				return err
			}
			cmd = Command{Op: OpWrite, LBA: lba, Addr: addr, Len: cfg.IOSize, Tag: fl}
		}
		for !q.Submit(p, cmd) {
			q.CompCond.WaitUntil(p, q.HasComp)
			p.Sleep(co.SchedLatency)
			if err := complete(); err != nil {
				return err
			}
		}
	}
}
