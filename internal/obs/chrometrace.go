package obs

import (
	"encoding/json"
	"io"
	"os"
	"sort"

	"repro/internal/cycles"
	"repro/internal/trace"
)

// Recorder captures the simulated timeline for Chrome trace-event export:
// every completed span becomes a complete ("X") slice on its core's track,
// every instant a point ("i") event. Capacity-bounded so a long run cannot
// exhaust host memory; overflow is counted, not fatal.
type Recorder struct {
	slices   []traceSlice
	instants []traceInstant
	max      int
	// Dropped counts events discarded after the capacity was reached.
	Dropped uint64
}

type traceSlice struct {
	name       string
	core       int
	start, end uint64
}

type traceInstant struct {
	name string
	core int
	at   uint64
}

// DefaultRecorderCap bounds the recorded slice count (~64 B per slice).
const DefaultRecorderCap = 1 << 20

// NewRecorder returns a recorder holding up to max slices (and as many
// instants); max <= 0 selects DefaultRecorderCap.
func NewRecorder(max int) *Recorder {
	if max <= 0 {
		max = DefaultRecorderCap
	}
	return &Recorder{max: max}
}

func (r *Recorder) slice(name string, core int, start, end uint64) {
	if len(r.slices) >= r.max {
		r.Dropped++
		return
	}
	r.slices = append(r.slices, traceSlice{name: name, core: core, start: start, end: end})
}

func (r *Recorder) instant(name string, core int, at uint64) {
	if len(r.instants) >= r.max {
		r.Dropped++
		return
	}
	r.instants = append(r.instants, traceInstant{name: name, core: core, at: at})
}

// chromeEvent is one entry of the Chrome trace-event format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU).
// Perfetto and chrome://tracing both load the JSON-object flavour:
// {"traceEvents": [...]}.
type chromeEvent struct {
	Name  string                 `json:"name"`
	Cat   string                 `json:"cat,omitempty"`
	Phase string                 `json:"ph"`
	TS    float64                `json:"ts"`            // microseconds
	Dur   float64                `json:"dur,omitempty"` // microseconds, ph=X only
	PID   int                    `json:"pid"`
	TID   int                    `json:"tid"`
	Scope string                 `json:"s,omitempty"` // ph=i scope
	Args  map[string]interface{} `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// Process IDs in the exported trace: CPU cores are threads of pid 0, the
// IOMMU trace ring's events land on pid 1.
const (
	chromePIDCores = 0
	chromePIDIOMMU = 1
)

func cyclesToUs(c uint64) float64 { return float64(c) / (cycles.Hz / 1e6) }

// WriteChromeTrace renders the recorded timeline — plus, optionally, the
// IOMMU's trace-ring events as instants on a separate "iommu" process —
// as Chrome trace-event JSON.
func (r *Recorder) WriteChromeTrace(w io.Writer, ring *trace.Tracer) error {
	f := chromeFile{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}

	cores := map[int]bool{}
	for _, s := range r.slices {
		cores[s.core] = true
	}
	for _, in := range r.instants {
		cores[in.core] = true
	}
	coreIDs := make([]int, 0, len(cores))
	for c := range cores {
		coreIDs = append(coreIDs, c)
	}
	sort.Ints(coreIDs)

	f.TraceEvents = append(f.TraceEvents, chromeEvent{
		Name: "process_name", Phase: "M", PID: chromePIDCores,
		Args: map[string]interface{}{"name": "cpu"},
	})
	for _, c := range coreIDs {
		f.TraceEvents = append(f.TraceEvents, chromeEvent{
			Name: "thread_name", Phase: "M", PID: chromePIDCores, TID: c,
			Args: map[string]interface{}{"name": coreName(c)},
		})
	}

	for _, s := range r.slices {
		dur := cyclesToUs(s.end - s.start)
		f.TraceEvents = append(f.TraceEvents, chromeEvent{
			Name: s.name, Cat: "span", Phase: "X",
			TS: cyclesToUs(s.start), Dur: dur,
			PID: chromePIDCores, TID: s.core,
		})
	}
	for _, in := range r.instants {
		f.TraceEvents = append(f.TraceEvents, chromeEvent{
			Name: in.name, Cat: "event", Phase: "i",
			TS: cyclesToUs(in.at), PID: chromePIDCores, TID: in.core,
			Scope: "t",
		})
	}

	if ring.Enabled() {
		f.TraceEvents = append(f.TraceEvents, chromeEvent{
			Name: "process_name", Phase: "M", PID: chromePIDIOMMU,
			Args: map[string]interface{}{"name": "iommu"},
		})
		for _, e := range ring.Events() {
			f.TraceEvents = append(f.TraceEvents, chromeEvent{
				Name: e.Cat, Cat: "iommu", Phase: "i",
				TS: cyclesToUs(e.At), PID: chromePIDIOMMU, TID: 0,
				Scope: "p",
				Args:  map[string]interface{}{"msg": e.Msg},
			})
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(f)
}

// WriteChromeTraceFile is WriteChromeTrace to a new file at path.
func (r *Recorder) WriteChromeTraceFile(path string, ring *trace.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteChromeTrace(f, ring); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func coreName(c int) string {
	// Small, allocation-free itoa for track names.
	if c < 0 {
		return "core?"
	}
	var buf [16]byte
	i := len(buf)
	for {
		i--
		buf[i] = byte('0' + c%10)
		c /= 10
		if c == 0 {
			break
		}
	}
	return "core" + string(buf[i:])
}
