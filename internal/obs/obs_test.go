package obs

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
)

// TestSpanAttribution checks the core invariant: exclusive (self) cycles
// are disjoint across nested spans and sum to the inclusive cost of the
// root span.
func TestSpanAttribution(t *testing.T) {
	eng := sim.NewEngine()
	o := New(false)
	eng.SetObserver(o)
	eng.Spawn("w", 0, 0, func(p *sim.Proc) {
		p.SpanEnter("map")
		p.Charge("other", 10) // map self
		p.SpanEnter("iova-alloc")
		p.Charge("iova", 100)
		p.SpanExit()
		p.SpanEnter("ptes")
		p.Charge("pt", 200)
		p.SpanExit()
		p.Charge("other", 5) // map self again
		p.SpanExit()
	})
	eng.Run(1 << 40)

	pf := o.Prof.Snapshot()
	got := map[string]SpanStat{}
	for _, s := range pf.Spans {
		got[s.Path] = s
	}
	if s := got["map/iova-alloc"]; s.Self != 100 || s.Total != 100 || s.Count != 1 {
		t.Errorf("iova-alloc = %+v", s)
	}
	if s := got["map/ptes"]; s.Self != 200 || s.Total != 200 {
		t.Errorf("ptes = %+v", s)
	}
	if s := got["map"]; s.Self != 15 || s.Total != 315 {
		t.Errorf("map = %+v, want self 15 total 315", s)
	}
	if a := pf.Attributed(); a != 315 {
		t.Errorf("attributed = %d, want 315 (no double counting)", a)
	}
	if len(got["map"].ByCore) != 1 || got["map"].ByCore[0] != 15 {
		t.Errorf("per-core attribution = %v", got["map"].ByCore)
	}
}

// TestSpanCapturesSpinWait checks that cycles accrued by a contended lock
// handoff (busy-wake, not Charge) land inside the enclosing span — this is
// what makes "spin:<lock>" spans measure real contention.
func TestSpanCapturesSpinWait(t *testing.T) {
	eng := sim.NewEngine()
	o := New(false)
	eng.SetObserver(o)
	costs := sim.LockCosts{Uncontended: 10, HandoffBase: 50, HandoffPerWaiter: 20}
	l := sim.NewSpinlock("test", "spin", costs)
	eng.Spawn("a", 0, 0, func(p *sim.Proc) {
		l.Lock(p)
		p.Work("other", 1000) // hold while b arrives
		l.Unlock(p)
	})
	eng.Spawn("b", 1, 0, func(p *sim.Proc) {
		p.Charge("other", 1) // desync so b contends
		l.Lock(p)
		l.Unlock(p)
	})
	eng.Run(1 << 40)

	pf := o.Prof.Snapshot()
	var spin SpanStat
	for _, s := range pf.Spans {
		if s.Path == "spin:test" {
			spin = s
		}
	}
	if spin.Count != 2 {
		t.Fatalf("spin:test count = %d, want 2", spin.Count)
	}
	// a: uncontended acquire (10). b: spun from clock 1 until a's unlock
	// at 1010, plus the handoff penalty 50+20 = 1079 busy cycles.
	want := uint64(10 + 1009 + 70)
	if spin.Self != want {
		t.Errorf("spin:test self = %d, want %d", spin.Self, want)
	}
	if Group("rx/stack/spin:test") != "lock/spin" {
		t.Errorf("Group(spin path) = %q", Group("rx/stack/spin:test"))
	}
}

// TestDisabledPathIsInert: without an observer, span calls must not touch
// clocks or accounting at all.
func TestDisabledPathIsInert(t *testing.T) {
	eng := sim.NewEngine()
	var busy, clock uint64
	eng.Spawn("w", 0, 0, func(p *sim.Proc) {
		p.SpanEnter("x")
		p.ChargeSpan("y", "tag", 7)
		p.SpanInstant("z")
		p.SpanExit()
		p.SpanExit() // extra exits must be harmless
		busy, clock = p.Busy(), p.Now()
	})
	eng.Run(1 << 40)
	if busy != 7 || clock != 7 {
		t.Errorf("busy=%d clock=%d, want 7/7 (spans must not charge)", busy, clock)
	}
	if !testingProcUnobserved(eng) {
		t.Error("proc reports Observed without a sink")
	}
}

func testingProcUnobserved(e *sim.Engine) bool {
	for _, p := range e.Procs() {
		if p.Observed() {
			return false
		}
	}
	return true
}

func TestGroupClassifier(t *testing.T) {
	cases := map[string]string{
		"map/iova-alloc":             "iova",
		"unmap/iova-free":            "iova",
		"map/ptes":                   "pt-mgmt",
		"unmap/inval/inval-wait":     "invalidate",
		"unmap/inval-submit":         "invalidate",
		"map/copy-in":                "copy",
		"unmap/copy-out":             "copy",
		"map/pool-acquire":           "copy-mgmt",
		"unmap/pool-release":         "copy-mgmt",
		"rx/stack":                   "rx",
		"rx/copy-user":               "copy-user",
		"tx/skb":                     "tx",
		"unmap/spin:invq/inval-wait": "lock/spin", // spin wins over leaf
	}
	for path, want := range cases {
		if got := Group(path); got != want {
			t.Errorf("Group(%q) = %q, want %q", path, got, want)
		}
	}
}

// TestChromeTraceSchema validates the exported JSON against the trace-event
// format contract: traceEvents array, ph/ts/pid/tid on every event, dur on
// complete events, metadata naming the tracks.
func TestChromeTraceSchema(t *testing.T) {
	eng := sim.NewEngine()
	o := New(true)
	eng.SetObserver(o)
	ring := trace.New(16)
	ring.Emit(5, trace.CatFault, "dev %d", 3)
	eng.Spawn("w", 2, 0, func(p *sim.Proc) {
		p.SpanEnter("rx")
		p.Charge("other", 240)
		p.SpanInstant("drop")
		p.SpanExit()
	})
	eng.Run(1 << 40)

	var buf bytes.Buffer
	if err := o.Rec.WriteChromeTrace(&buf, ring); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	if len(f.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	var sawSlice, sawInstant, sawThreadName, sawIOMMU bool
	for _, ev := range f.TraceEvents {
		ph, _ := ev["ph"].(string)
		if ph == "" {
			t.Fatalf("event missing ph: %v", ev)
		}
		if _, ok := ev["pid"].(float64); !ok {
			t.Fatalf("event missing pid: %v", ev)
		}
		if _, ok := ev["tid"].(float64); !ok {
			t.Fatalf("event missing tid: %v", ev)
		}
		if _, ok := ev["name"].(string); !ok {
			t.Fatalf("event missing name: %v", ev)
		}
		switch ph {
		case "X":
			if _, ok := ev["dur"].(float64); !ok {
				t.Fatalf("complete event missing dur: %v", ev)
			}
			if ev["name"] == "rx" && ev["tid"].(float64) == 2 {
				sawSlice = true
			}
		case "i":
			if s, _ := ev["s"].(string); s == "" {
				t.Fatalf("instant missing scope: %v", ev)
			}
			if ev["name"] == "drop" {
				sawInstant = true
			}
			if cat, _ := ev["cat"].(string); cat == "iommu" {
				sawIOMMU = true
			}
		case "M":
			if ev["name"] == "thread_name" {
				sawThreadName = true
			}
		}
	}
	if !sawSlice || !sawInstant || !sawThreadName || !sawIOMMU {
		t.Errorf("missing event kinds: slice=%v instant=%v meta=%v iommu=%v",
			sawSlice, sawInstant, sawThreadName, sawIOMMU)
	}
	// duration of the 240-cycle span at 2.4 GHz = 0.1 µs
	for _, ev := range f.TraceEvents {
		if ev["ph"] == "X" && ev["name"] == "rx" {
			if d := ev["dur"].(float64); d < 0.099 || d > 0.101 {
				t.Errorf("dur = %v µs, want 0.1", d)
			}
		}
	}
}

func TestRegistrySnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("iommu.iotlb.hits", 10)
	r.AddCounter("iommu.iotlb.hits", 5)
	r.Gauge("shadow.pool.bytes", 4096)
	r.Observe("lat.us", 1)
	r.Observe("lat.us", 3)
	s := r.Snapshot()
	if s.Counters["iommu.iotlb.hits"] != 15 {
		t.Errorf("counter = %d", s.Counters["iommu.iotlb.hits"])
	}
	if s.Gauges["shadow.pool.bytes"] != 4096 {
		t.Errorf("gauge = %v", s.Gauges["shadow.pool.bytes"])
	}
	if d := s.Distributions["lat.us"]; d.Count != 2 || d.Mean != 2 {
		t.Errorf("dist = %+v", d)
	}
	if s.String() == "" {
		t.Error("empty render")
	}
}

// TestRecorderCap: the recorder drops, not grows, past its bound.
func TestRecorderCap(t *testing.T) {
	r := NewRecorder(2)
	for i := 0; i < 5; i++ {
		r.slice("s", 0, uint64(i), uint64(i+1))
	}
	if len(r.slices) != 2 || r.Dropped != 3 {
		t.Errorf("slices=%d dropped=%d", len(r.slices), r.Dropped)
	}
}
