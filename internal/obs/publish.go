package obs

// Metric publishing: each subsystem keeps its raw counters as the storage
// of record (cheap, lock-free under engine scheduling), and these helpers
// pull them into a Registry under the repo's dotted naming convention
//
//	<subsystem>.<object>.<metric>     e.g. iommu.iotlb.hits
//
// after a run. The registry is therefore a zero-cost abstraction during
// simulation and a single uniform surface at reporting time.

import (
	"repro/internal/dmaapi"
	"repro/internal/iommu"
	"repro/internal/nic"
	"repro/internal/resilience"
	"repro/internal/shadow"
	"repro/internal/sim"
)

// PublishEngine records the scheduler's dispatch statistics.
func PublishEngine(r *Registry, e *sim.Engine) {
	r.Counter("sim.engine.dispatches", e.Dispatches())
	r.Counter("sim.engine.fast_yields", e.FastYields())
	r.Counter("sim.engine.lazy_drops", e.LazyDrops())
}

// PublishLock records one spinlock's contention statistics under
// lock.<name>.*.
func PublishLock(r *Registry, l *sim.Spinlock) {
	p := "lock." + l.Name() + "."
	r.Counter(p+"acquires", l.Acquires)
	r.Counter(p+"contended", l.Contended)
	r.Counter(p+"wait_cycles", l.WaitCycles)
	r.Counter(p+"handoff_cycles", l.HandoffCycles)
	r.Gauge(p+"max_waiters", float64(l.MaxWaiters))
}

// PublishIOMMU records translation, IOTLB, fault and invalidation-queue
// statistics under iommu.*.
func PublishIOMMU(r *Registry, u *iommu.IOMMU) {
	r.Counter("iommu.translations", u.Translations)
	r.Counter("iommu.faults", u.FaultCount)
	t := u.TLB()
	r.Counter("iommu.iotlb.hits", t.Hits)
	r.Counter("iommu.iotlb.misses", t.Misses)
	r.Counter("iommu.iotlb.evictions", t.Evictions)
	r.Counter("iommu.iotlb.invalidations", t.Invalidations)
	r.Counter("iommu.iotlb.ttl_expiries", t.TTLExpiries)
	r.Gauge("iommu.iotlb.hit_rate", t.HitRate())
	r.Counter("iommu.invq.submitted", u.Queue.Submitted)
	r.Counter("iommu.invq.completed", u.Queue.Completed)
	r.Counter("iommu.invq.timeouts", u.Queue.Timeouts)
	r.Counter("iommu.invq.recoveries", u.Queue.Recoveries)
	ring := u.FaultRing()
	r.Gauge("iommu.faultring.len", float64(ring.Len()))
	r.Counter("iommu.faultring.recorded", ring.Recorded())
	r.Counter("iommu.faultring.overflow", ring.Overflow())
	r.Counter("iommu.blocked_dmas", u.BlockedDMAs)
	r.Gauge("iommu.blocked_devices", float64(u.BlockedDevices()))
	PublishLock(r, u.Queue.Lock)
}

// PublishResilience records the fault-domain policy engine's aggregate
// state under resilience.*.
func PublishResilience(r *Registry, s *resilience.Supervisor) {
	r.Counter("resilience.faults_observed", s.FaultsObserved)
	r.Counter("resilience.quarantines", s.Quarantines)
	r.Counter("resilience.readmits", s.Readmits)
	r.Counter("resilience.wiped_pages", s.WipedPages)
	r.Gauge("resilience.quarantined_devices", float64(s.QuarantinedDevices()))
}

// PublishPool records the shadow pool's statistics under shadow.pool.*.
func PublishPool(r *Registry, ps shadow.PoolStats) {
	r.Counter("shadow.pool.acquires", ps.Acquires)
	r.Counter("shadow.pool.releases", ps.Releases)
	r.Counter("shadow.pool.finds", ps.Finds)
	r.Counter("shadow.pool.grows", ps.Grows)
	r.Counter("shadow.pool.cache_hits", ps.CacheHits)
	r.Counter("shadow.pool.list_hits", ps.ListHits)
	r.Counter("shadow.pool.fallback_buffers", ps.FallbackBuffers)
	r.Counter("shadow.pool.trims", ps.Trims)
	r.Gauge("shadow.pool.bytes", float64(ps.TotalBytes()))
}

// PublishNIC records the NIC's datapath counters under nic.*.
func PublishNIC(r *Registry, n *nic.NIC) {
	r.Counter("nic.rx.frames", n.RxFrames)
	r.Counter("nic.rx.bytes", n.RxBytes)
	r.Counter("nic.rx.drops", n.RxDrops)
	r.Counter("nic.rx.nobuf_drops", n.RxNoBufDrops)
	r.Counter("nic.rx.faults", n.RxFaults)
	r.Counter("nic.tx.frames", n.TxFrames)
	r.Counter("nic.tx.bytes", n.TxBytes)
	r.Counter("nic.tx.skbs", n.TxSkbs)
	r.Counter("nic.tx.faults", n.TxFaults)
	r.Counter("nic.rx.quarantine_drops", n.RxQuarantineDrops)
	r.Counter("nic.tx.quarantine_drops", n.TxQuarantineDrops)
}

// FarmStats is the scheduler snapshot of a bench.Farm (the host-side
// work-stealing sweep pool). Defined here so the pool can publish through
// the registry without an import cycle. All values are host-time based
// and informational — they must never enter a benchdiff-gated artifact.
type FarmStats struct {
	// Workers is the pool size (0 for a nil/serial farm).
	Workers int
	// Submitted / Executed count sweep points enqueued and completed.
	Submitted, Executed uint64
	// Steals counts points executed by a worker other than the deque
	// they were dealt to (load imbalance made visible).
	Steals uint64
	// Panics counts points that died and were converted to errors.
	Panics uint64
	// Canceled counts points completed with a context error instead of
	// running (their request was cancelled while they sat queued).
	Canceled uint64
	// QueueHWM is the high-water mark of queued-but-unstarted points.
	QueueHWM int
	// QueueDepth is the number of queued-but-unstarted points at snapshot
	// time; InFlight the number executing. Unlike the historical counters
	// these are live values — the daemon's admission control reads them.
	QueueDepth, InFlight int
	// UtilPct is each worker's busy time as a percentage of the farm's
	// lifetime so far.
	UtilPct []float64
}

// PublishFarm records a sweep pool's scheduler metrics under farm.*.
func PublishFarm(r *Registry, s FarmStats) {
	r.Counter("farm.submitted", s.Submitted)
	r.Counter("farm.executed", s.Executed)
	r.Counter("farm.steals", s.Steals)
	r.Counter("farm.panics", s.Panics)
	r.Counter("farm.canceled", s.Canceled)
	r.Gauge("farm.workers", float64(s.Workers))
	r.Gauge("farm.queue_hwm", float64(s.QueueHWM))
	r.Gauge("farm.queue_depth", float64(s.QueueDepth))
	r.Gauge("farm.inflight", float64(s.InFlight))
	for _, u := range s.UtilPct {
		r.Observe("farm.worker_util_pct", u)
	}
}

// DaemonStats is the service-level snapshot of the simd daemon
// (internal/daemon). Defined here, like FarmStats, so the daemon can
// publish through the registry without an import cycle. All values are
// host-side and informational — never part of a gated artifact.
type DaemonStats struct {
	// Requests counts connections served; Runs artifacts computed;
	// CacheHits requests served straight from the result store.
	Requests, Runs, CacheHits uint64
	// Degraded counts reduced-window previews served under overload;
	// Overloads typed rejections when every ladder rung was exhausted.
	Degraded, Overloads uint64
	// Retries counts backoff re-attempts after transient failures;
	// PanicsRecovered panics caught by the per-request barrier.
	Retries, PanicsRecovered uint64
	// Canceled / Deadlines count requests ended by client disconnect and
	// deadline expiry respectively.
	Canceled, Deadlines uint64
	// BadRequests / InternalErrors count typed failure responses.
	BadRequests, InternalErrors uint64
	// CorruptRecomputed counts store entries that failed verification and
	// were quarantined-then-recomputed.
	CorruptRecomputed uint64
	// Executing / Waiting are the live admission-control occupancy.
	Executing, Waiting int
	// Store mirror of the result store's counters.
	StoreHits, StoreMisses, StorePuts uint64
	StoreCorrupt, StoreReadErrors     uint64
	UptimeMs                          int64
}

// PublishDaemon records the daemon's service metrics under daemon.*.
func PublishDaemon(r *Registry, s DaemonStats) {
	r.Counter("daemon.requests", s.Requests)
	r.Counter("daemon.runs", s.Runs)
	r.Counter("daemon.cache_hits", s.CacheHits)
	r.Counter("daemon.degraded", s.Degraded)
	r.Counter("daemon.overloads", s.Overloads)
	r.Counter("daemon.retries", s.Retries)
	r.Counter("daemon.panics_recovered", s.PanicsRecovered)
	r.Counter("daemon.canceled", s.Canceled)
	r.Counter("daemon.deadlines", s.Deadlines)
	r.Counter("daemon.bad_requests", s.BadRequests)
	r.Counter("daemon.internal_errors", s.InternalErrors)
	r.Counter("daemon.store.corrupt_recomputed", s.CorruptRecomputed)
	r.Counter("daemon.store.hits", s.StoreHits)
	r.Counter("daemon.store.misses", s.StoreMisses)
	r.Counter("daemon.store.puts", s.StorePuts)
	r.Counter("daemon.store.corrupt", s.StoreCorrupt)
	r.Counter("daemon.store.read_errors", s.StoreReadErrors)
	r.Gauge("daemon.executing", float64(s.Executing))
	r.Gauge("daemon.waiting", float64(s.Waiting))
	r.Gauge("daemon.uptime_ms", float64(s.UptimeMs))
}

// PublishMapper records one protection strategy's DMA-API statistics under
// dma.<strategy>.*.
func PublishMapper(r *Registry, name string, st dmaapi.Stats) {
	p := "dma." + name + "."
	r.Counter(p+"maps", st.Maps)
	r.Counter(p+"unmaps", st.Unmaps)
	r.Counter(p+"bytes_mapped", st.BytesMapped)
	r.Counter(p+"coherent_allocs", st.CoherentAllocs)
	r.Counter(p+"deferred_flushes", st.DeferredFlushes)
	r.Gauge(p+"deferred_queue_peak", float64(st.DeferredQueuePeak))
	if st.Maps > 0 || st.FallbackMaps > 0 {
		r.Counter(p+"fallback_maps", st.FallbackMaps)
		r.Counter(p+"hybrid_maps", st.HybridMaps)
		r.Counter(p+"bytes_copied", st.BytesCopied)
		r.Counter(p+"copy_hint_bytes_saved", st.CopyHintBytesSaved)
		r.Gauge(p+"shadow_pool_bytes", float64(st.ShadowPoolBytes))
		r.Gauge(p+"shadow_pool_buffers", float64(st.ShadowPoolBuffers))
	}
	if st.DegradedRetries+st.DegradedSpills+st.BackpressureFails > 0 {
		r.Counter(p+"resilience.retries", st.DegradedRetries)
		r.Counter(p+"resilience.spills", st.DegradedSpills)
		r.Counter(p+"resilience.backpressure", st.BackpressureFails)
	}
}
