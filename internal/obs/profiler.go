package obs

import (
	"fmt"
	"sort"
	"strings"
)

// SpanStat is the accumulated cost of one span path.
type SpanStat struct {
	// Path is the slash-joined hierarchical span name, e.g.
	// "unmap/inval/inval-wait" or "rx/stack/spin:iova".
	Path  string `json:"path"`
	Count uint64 `json:"count"`
	// Self is the exclusive busy-cycle cost: cycles accumulated inside
	// this span but not inside any child span. Summing Self over all
	// paths never double-counts a cycle.
	Self uint64 `json:"self_cycles"`
	// Total is the inclusive cost (Self plus all children).
	Total uint64 `json:"total_cycles"`
	// ByCore is the exclusive cost split by simulated core index.
	ByCore []uint64 `json:"by_core,omitempty"`
}

// Profiler accumulates span costs. It is single-engine state: the sim
// engine dispatches one proc at a time, so no locking is needed.
type Profiler struct {
	spans    map[string]*SpanStat
	instants map[string]uint64
}

// NewProfiler returns an empty profiler.
func NewProfiler() *Profiler {
	return &Profiler{
		spans:    make(map[string]*SpanStat),
		instants: make(map[string]uint64),
	}
}

func (pr *Profiler) add(path string, core int, self, total uint64) {
	st := pr.spans[path]
	if st == nil {
		st = &SpanStat{Path: path}
		pr.spans[path] = st
	}
	st.Count++
	st.Self += self
	st.Total += total
	if core >= 0 {
		for len(st.ByCore) <= core {
			st.ByCore = append(st.ByCore, 0)
		}
		st.ByCore[core] += self
	}
}

func (pr *Profiler) instant(name string) { pr.instants[name]++ }

// Profile is an immutable snapshot of a profiler, suitable for JSON
// embedding in benchmark artifacts.
type Profile struct {
	// Spans is sorted by Self descending.
	Spans    []SpanStat        `json:"spans"`
	Instants map[string]uint64 `json:"instants,omitempty"`
	// TotalBusy is the denominator for attribution: the sum of Busy()
	// over the workload's CPU procs, filled in by the harness.
	TotalBusy uint64 `json:"total_busy_cycles"`
}

// Snapshot captures the current totals.
func (pr *Profiler) Snapshot() Profile {
	p := Profile{Spans: make([]SpanStat, 0, len(pr.spans))}
	for _, st := range pr.spans {
		p.Spans = append(p.Spans, *st)
	}
	sort.Slice(p.Spans, func(i, j int) bool {
		if p.Spans[i].Self != p.Spans[j].Self {
			return p.Spans[i].Self > p.Spans[j].Self
		}
		return p.Spans[i].Path < p.Spans[j].Path
	})
	if len(pr.instants) > 0 {
		p.Instants = make(map[string]uint64, len(pr.instants))
		for k, v := range pr.instants {
			p.Instants[k] = v
		}
	}
	return p
}

// Attributed returns the busy cycles covered by named spans. Self cycles
// are disjoint by construction, so this is a plain sum.
func (p Profile) Attributed() uint64 {
	var sum uint64
	for _, st := range p.Spans {
		sum += st.Self
	}
	return sum
}

// Coverage returns Attributed/TotalBusy as a fraction (0 when TotalBusy is
// unknown). The acceptance bar for the paper-figure workloads is ≥ 0.95.
func (p Profile) Coverage() float64 {
	if p.TotalBusy == 0 {
		return 0
	}
	return float64(p.Attributed()) / float64(p.TotalBusy)
}

// GroupStat is the cost of one breakdown category.
type GroupStat struct {
	Group  string `json:"group"`
	Cycles uint64 `json:"cycles"`
	Count  uint64 `json:"count"`
}

// Group folds a span path into the paper's breakdown vocabulary:
//
//	lock/spin    any "spin:<lock>" segment (contended + uncontended)
//	invalidate   IOTLB invalidation submit/wait
//	copy         data copies to/from shadow or bounce buffers
//	copy-mgmt    shadow-pool management (acquire/find/release/grow)
//	iova         IOVA allocator work
//	pt-mgmt      page-table construction/teardown
//	copy-user    the stack's copy_to_user/copy_from_user
//	<first seg>  everything else (rx, tx, map, unmap residue, ...)
func Group(path string) string {
	rest := path
	for rest != "" {
		seg := rest
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			seg, rest = rest[:i], rest[i+1:]
		} else {
			rest = ""
		}
		if strings.HasPrefix(seg, "spin:") {
			return "lock/spin"
		}
	}
	last := path
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		last = path[i+1:]
	}
	switch {
	case strings.HasPrefix(last, "resilience"):
		return "resilience"
	case strings.HasPrefix(last, "inval"):
		return "invalidate"
	case last == "copy" || last == "copy-in" || last == "copy-out" || last == "bounce":
		return "copy"
	case strings.HasPrefix(last, "pool-"):
		return "copy-mgmt"
	case strings.HasPrefix(last, "iova-"):
		return "iova"
	case last == "ptes":
		return "pt-mgmt"
	case last == "copy-user":
		return "copy-user"
	}
	if i := strings.IndexByte(path, '/'); i >= 0 {
		return path[:i]
	}
	return path
}

// Groups aggregates the profile's exclusive cycles by breakdown category,
// sorted by cycles descending.
func (p Profile) Groups() []GroupStat {
	m := make(map[string]*GroupStat)
	for _, st := range p.Spans {
		g := m[Group(st.Path)]
		if g == nil {
			g = &GroupStat{Group: Group(st.Path)}
			m[g.Group] = g
		}
		g.Cycles += st.Self
		g.Count += st.Count
	}
	out := make([]GroupStat, 0, len(m))
	for _, g := range m {
		out = append(out, *g)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cycles != out[j].Cycles {
			return out[i].Cycles > out[j].Cycles
		}
		return out[i].Group < out[j].Group
	})
	return out
}

// GroupCycles returns the exclusive cycles attributed to one category.
func (p Profile) GroupCycles(group string) uint64 {
	var sum uint64
	for _, st := range p.Spans {
		if Group(st.Path) == group {
			sum += st.Self
		}
	}
	return sum
}

// String renders the profile as a text table (self-cycle order), for the
// -cyclereport human output.
func (p Profile) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-40s %12s %14s %14s\n", "span", "count", "self-cycles", "total-cycles")
	for _, st := range p.Spans {
		fmt.Fprintf(&b, "%-40s %12d %14d %14d\n", st.Path, st.Count, st.Self, st.Total)
	}
	if p.TotalBusy > 0 {
		fmt.Fprintf(&b, "%-40s %12s %14d   (%.1f%% of %d busy)\n",
			"attributed", "", p.Attributed(), 100*p.Coverage(), p.TotalBusy)
	}
	return b.String()
}
