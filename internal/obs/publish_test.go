package obs

import (
	"testing"

	"repro/internal/cycles"
	"repro/internal/dmaapi"
	"repro/internal/iommu"
	"repro/internal/mem"
	"repro/internal/nic"
	"repro/internal/shadow"
	"repro/internal/sim"
)

// TestPublishNaming pins the dotted naming convention end to end: each
// Publish helper pulls its subsystem's raw counters into the registry
// under <subsystem>.<object>.<metric> names.
func TestPublishNaming(t *testing.T) {
	r := NewRegistry()
	eng := sim.NewEngine()
	costs := cycles.Default()
	m := mem.New(1)
	u := iommu.New(eng, m, costs)

	PublishEngine(r, eng)
	PublishIOMMU(r, u)
	PublishNIC(r, nic.New(eng, u, nic.Config{
		Dev: 1, Queues: 1, RingSize: 8, MTU: 1500, Costs: costs,
	}))
	PublishPool(r, shadow.PoolStats{Acquires: 7, Releases: 5})
	PublishMapper(r, "copy", dmaapi.Stats{
		Maps: 3, Unmaps: 3, BytesCopied: 4096, FallbackMaps: 1,
	})
	PublishMapper(r, "noiommu", dmaapi.Stats{}) // no maps: shadow-only metrics suppressed

	l := sim.NewSpinlock("iova", "sw", sim.LockCosts{Uncontended: 4})
	eng.Spawn("w", 0, 0, func(p *sim.Proc) {
		l.Lock(p)
		l.Unlock(p)
	})
	eng.Run(1 << 20)
	eng.Stop()
	PublishLock(r, l)

	s := r.Snapshot()
	for _, name := range []string{
		"sim.engine.dispatches",
		"iommu.translations",
		"iommu.iotlb.hits",
		"iommu.invq.submitted",
		"nic.rx.frames",
		"nic.tx.bytes",
		"shadow.pool.acquires",
		"dma.copy.maps",
		"dma.copy.bytes_copied",
		"lock.iova.acquires",
	} {
		if _, ok := s.Counters[name]; !ok {
			t.Errorf("counter %q not published", name)
		}
	}
	for _, name := range []string{"iommu.iotlb.hit_rate", "shadow.pool.bytes"} {
		if _, ok := s.Gauges[name]; !ok {
			t.Errorf("gauge %q not published", name)
		}
	}
	if s.Counters["shadow.pool.acquires"] != 7 {
		t.Errorf("shadow.pool.acquires = %d, want 7", s.Counters["shadow.pool.acquires"])
	}
	if s.Counters["dma.copy.bytes_copied"] != 4096 {
		t.Errorf("dma.copy.bytes_copied = %d, want 4096", s.Counters["dma.copy.bytes_copied"])
	}
	if _, ok := s.Counters["dma.noiommu.bytes_copied"]; ok {
		t.Error("shadow-only metrics published for a mapper with zero maps")
	}
	if s.Counters["lock.iova.acquires"] != 1 {
		t.Errorf("lock.iova.acquires = %d, want 1", s.Counters["lock.iova.acquires"])
	}
	if got := s.String(); got == "" {
		t.Error("Snapshot.String() empty")
	}
}

func TestPublishFarm(t *testing.T) {
	r := NewRegistry()
	PublishFarm(r, FarmStats{
		Workers:   4,
		Submitted: 100,
		Executed:  100,
		Steals:    7,
		Panics:    1,
		QueueHWM:  42,
		UtilPct:   []float64{90, 80, 70, 60},
	})
	s := r.Snapshot()
	for name, want := range map[string]uint64{
		"farm.submitted": 100,
		"farm.executed":  100,
		"farm.steals":    7,
		"farm.panics":    1,
	} {
		if s.Counters[name] != want {
			t.Errorf("%s = %d, want %d", name, s.Counters[name], want)
		}
	}
	if s.Gauges["farm.workers"] != 4 || s.Gauges["farm.queue_hwm"] != 42 {
		t.Errorf("farm gauges wrong: %v", s.Gauges)
	}
}
