// Package obs is the simulation-time observability layer: it explains
// *where the virtual cycles went*, in the same vocabulary the paper uses
// for its breakdown figures (Figs. 5, 6, 8a, 9).
//
// Three cooperating pieces:
//
//   - Profiler — a cycle-attribution profiler fed by hierarchical spans
//     (sim.SpanSink). Subsystems open spans around their cost sites
//     ("map/iova-alloc", "unmap/inval/inval-wait", "spin:iova", ...) and
//     the profiler accumulates exclusive ("self") and inclusive busy
//     cycles per span path and per core. Group() folds paths into the
//     paper's breakdown categories (iova, pt-mgmt, invalidate, lock/spin,
//     copy, copy-mgmt, ...).
//
//   - Registry — a metrics registry (counters, gauges, distributions
//     summarized via internal/stats) that unifies the ad-hoc counters
//     scattered through iommu, shadow, iova, nic and the engine under
//     dotted "subsystem.metric" names (see publish.go).
//
//   - Recorder — captures the same spans as timeline slices and writes
//     Chrome trace-event JSON (chrometrace.go) loadable in Perfetto or
//     chrome://tracing: per-core tracks, spans as slices, faults and
//     invalidations from the internal/trace ring as instants.
//
// Everything is opt-in per engine: sim procs carry span hooks that are a
// single nil check when no Observer is installed, spans never charge
// cycles, and therefore virtual-time results are bit-identical with
// observability on or off (ci/baseline.json is the proof). See
// doc/OBSERVABILITY.md for the user guide and span taxonomy.
package obs

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/trace"
)

// Observer bundles the pieces and implements sim.SpanSink, fanning each
// completed span out to the profiler and (when tracing) the recorder.
// Install with eng.SetObserver(o) before spawning procs. An Observer is
// per-engine state (the engine dispatches one proc at a time); never share
// one across concurrently-running machines.
type Observer struct {
	Prof *Profiler
	Rec  *Recorder // nil unless a timeline trace was requested
	Reg  *Registry
	// Ring, when the harness sets it, is the IOMMU's event ring; its
	// faults/invalidations are exported alongside the span timeline.
	Ring *trace.Tracer
}

// New returns an Observer with a profiler and registry; pass trace=true to
// also record the timeline for Chrome trace export.
func New(trace bool) *Observer {
	o := &Observer{Prof: NewProfiler(), Reg: NewRegistry()}
	if trace {
		o.Rec = NewRecorder(0)
	}
	return o
}

// SpanEnd implements sim.SpanSink.
func (o *Observer) SpanEnd(p *sim.Proc, path string, self, total, start, end uint64) {
	o.Prof.add(path, p.Core(), self, total)
	if o.Rec != nil {
		o.Rec.slice(path, p.Core(), start, end)
	}
}

// SpanInstant implements sim.SpanSink.
func (o *Observer) SpanInstant(p *sim.Proc, name string, at uint64) {
	o.Prof.instant(name)
	if o.Rec != nil {
		o.Rec.instant(name, p.Core(), at)
	}
}

// WriteTraceFile writes the recorded timeline (and the IOMMU ring, if Ring
// is set) as Chrome trace-event JSON at path.
func (o *Observer) WriteTraceFile(path string) error {
	if o.Rec == nil {
		return fmt.Errorf("obs: no timeline recorded (construct the Observer with New(true))")
	}
	return o.Rec.WriteChromeTraceFile(path, o.Ring)
}
