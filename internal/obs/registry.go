package obs

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/stats"
)

// Registry is a metrics registry with three kinds of series, all named by
// dotted "subsystem.object.metric" strings (e.g. "iommu.iotlb.hits",
// "shadow.pool.bytes", "lock.iova.wait_cycles"):
//
//   - counters: monotonically published uint64 totals
//   - gauges: point-in-time float64 levels
//   - distributions: float64 samples, summarized via internal/stats
//
// Subsystems keep their raw fields as the storage of record; the registry
// is the uniform *aggregation* surface they publish snapshots into (pull
// model — see publish.go), so that every tool renders and serializes
// metrics the same way.
type Registry struct {
	counters map[string]uint64
	gauges   map[string]float64
	dists    map[string][]float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]uint64),
		gauges:   make(map[string]float64),
		dists:    make(map[string][]float64),
	}
}

// Counter sets the counter name to total v (publishing is snapshot-style:
// the caller owns the running total).
func (r *Registry) Counter(name string, v uint64) { r.counters[name] = v }

// AddCounter increments the counter name by v.
func (r *Registry) AddCounter(name string, v uint64) { r.counters[name] += v }

// Gauge sets the gauge name to v.
func (r *Registry) Gauge(name string, v float64) { r.gauges[name] = v }

// Observe appends one sample to the distribution name.
func (r *Registry) Observe(name string, v float64) {
	r.dists[name] = append(r.dists[name], v)
}

// CounterValue returns a counter's current value (0 if absent).
func (r *Registry) CounterValue(name string) uint64 { return r.counters[name] }

// Snapshot is an immutable, JSON-friendly view of a registry.
type Snapshot struct {
	Counters      map[string]uint64        `json:"counters,omitempty"`
	Gauges        map[string]float64       `json:"gauges,omitempty"`
	Distributions map[string]stats.Summary `json:"distributions,omitempty"`
}

// Snapshot summarizes the registry.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{}
	if len(r.counters) > 0 {
		s.Counters = make(map[string]uint64, len(r.counters))
		for k, v := range r.counters {
			s.Counters[k] = v
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges))
		for k, v := range r.gauges {
			s.Gauges[k] = v
		}
	}
	if len(r.dists) > 0 {
		s.Distributions = make(map[string]stats.Summary, len(r.dists))
		for k, v := range r.dists {
			s.Distributions[k] = stats.Summarize(v)
		}
	}
	return s
}

// String renders the snapshot as sorted "name value" lines.
func (s Snapshot) String() string {
	var b strings.Builder
	names := make([]string, 0, len(s.Counters))
	for k := range s.Counters {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Fprintf(&b, "%-44s %d\n", k, s.Counters[k])
	}
	names = names[:0]
	for k := range s.Gauges {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Fprintf(&b, "%-44s %g\n", k, s.Gauges[k])
	}
	names = names[:0]
	for k := range s.Distributions {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		d := s.Distributions[k]
		fmt.Fprintf(&b, "%-44s n=%d mean=%.2f p50=%.2f p99=%.2f max=%.2f\n",
			k, d.Count, d.Mean, d.P50, d.P99, d.Max)
	}
	return b.String()
}
