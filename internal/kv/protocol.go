package kv

import (
	"fmt"
)

// Wire protocol (one request or response per TCP segment):
//
//	[0:2]  BE16 total message length (the generic length header the
//	       copying hint parses)
//	[2]    opcode (request) or status (response)
//	GET request:  [3] keyLen, [4:4+keyLen] key
//	SET request:  [3] keyLen, [4:4+keyLen] key, [.. +2] BE16 valLen, value
//	GET response: [3:5] BE16 valLen, value  (status = StatusOK/StatusMiss)
//	SET response: nothing beyond the status byte

// Opcodes and statuses.
const (
	OpGet      = 1
	OpSet      = 2
	StatusOK   = 0
	StatusMiss = 1
)

// EncodeGet builds a GET request.
func EncodeGet(key string) []byte {
	n := 4 + len(key)
	b := make([]byte, n)
	putLen(b, n)
	b[2] = OpGet
	b[3] = byte(len(key))
	copy(b[4:], key)
	return b
}

// EncodeSet builds a SET request.
func EncodeSet(key string, value []byte) []byte {
	n := 4 + len(key) + 2 + len(value)
	b := make([]byte, n)
	putLen(b, n)
	b[2] = OpSet
	b[3] = byte(len(key))
	copy(b[4:], key)
	off := 4 + len(key)
	b[off] = byte(len(value) >> 8)
	b[off+1] = byte(len(value))
	copy(b[off+2:], value)
	return b
}

// GetResponseSize returns the wire size of a GET response carrying valLen
// bytes.
func GetResponseSize(valLen int) int { return 5 + valLen }

// SetResponseSize is the wire size of a SET acknowledgement.
const SetResponseSize = 3

// EncodeGetResponse builds a GET response.
func EncodeGetResponse(value []byte, hit bool) []byte {
	if !hit {
		b := make([]byte, 5)
		putLen(b, 5)
		b[2] = StatusMiss
		return b
	}
	n := GetResponseSize(len(value))
	b := make([]byte, n)
	putLen(b, n)
	b[2] = StatusOK
	b[3] = byte(len(value) >> 8)
	b[4] = byte(len(value))
	copy(b[5:], value)
	return b
}

// EncodeSetResponse builds a SET acknowledgement.
func EncodeSetResponse() []byte {
	b := make([]byte, SetResponseSize)
	putLen(b, SetResponseSize)
	b[2] = StatusOK
	return b
}

func putLen(b []byte, n int) {
	b[0] = byte(n >> 8)
	b[1] = byte(n)
}

// Request is a decoded client request.
type Request struct {
	Op    byte
	Key   string
	Value []byte
}

// DecodeRequest parses a request frame.
func DecodeRequest(b []byte) (Request, error) {
	if len(b) < 4 {
		return Request{}, fmt.Errorf("kv: short request (%d bytes)", len(b))
	}
	total := int(b[0])<<8 | int(b[1])
	if total > len(b) {
		return Request{}, fmt.Errorf("kv: truncated request (%d of %d bytes)", len(b), total)
	}
	op := b[2]
	kl := int(b[3])
	if 4+kl > total {
		return Request{}, fmt.Errorf("kv: bad key length %d", kl)
	}
	r := Request{Op: op, Key: string(b[4 : 4+kl])}
	switch op {
	case OpGet:
		return r, nil
	case OpSet:
		off := 4 + kl
		if off+2 > total {
			return Request{}, fmt.Errorf("kv: SET missing value length")
		}
		vl := int(b[off])<<8 | int(b[off+1])
		if off+2+vl > total {
			return Request{}, fmt.Errorf("kv: SET truncated value (%d)", vl)
		}
		r.Value = b[off+2 : off+2+vl]
		return r, nil
	}
	return Request{}, fmt.Errorf("kv: unknown opcode %d", op)
}

// DecodeResponse parses a response frame, returning status and value.
func DecodeResponse(b []byte) (status byte, value []byte, err error) {
	if len(b) < 3 {
		return 0, nil, fmt.Errorf("kv: short response")
	}
	status = b[2]
	if len(b) >= 5 {
		vl := int(b[3])<<8 | int(b[4])
		if 5+vl <= len(b) {
			value = b[5 : 5+vl]
		}
	}
	return status, value, nil
}
