package kv

import (
	"repro/internal/cycles"
	"repro/internal/netstack"
	"repro/internal/sim"
)

// ServerConfig parameterizes one memcached instance.
type ServerConfig struct {
	// OpCycles is the CPU cost of the key-value operation proper (hash
	// lookup, LRU, item handling). Default ~4us, putting per-request
	// service time in real memcached territory.
	OpCycles uint64
	// KeySpace and sizes used for prepopulation.
	KeySpace  int
	KeySize   int
	ValueSize int
}

// DefaultServerConfig matches the paper's memslap setup (64 B keys, 1 KiB
// values).
func DefaultServerConfig() ServerConfig {
	return ServerConfig{OpCycles: 9600, KeySpace: 2048, KeySize: 64, ValueSize: 1024}
}

// ServerStats accumulates one instance's results.
type ServerStats struct {
	Requests uint64
	GetOps   uint64
	SetOps   uint64
	Errors   uint64
	Tx       netstack.TxStats
}

// Prepopulate fills the store with the benchmark key space so GETs hit
// (memslap warms the cache before measuring).
func Prepopulate(st *Store, domain int, cfg ServerConfig) error {
	val := make([]byte, cfg.ValueSize)
	for i := range val {
		val[i] = byte(i)
	}
	for i := 0; i < cfg.KeySpace; i++ {
		if err := st.Set(domain, Key(i, cfg.KeySize), val); err != nil {
			return err
		}
	}
	return nil
}

// RunServer runs one memcached instance on one core: receive a request
// frame, execute it against the store, transmit the response.
func RunServer(p *sim.Proc, drv *netstack.Driver, store *Store, qi int, cfg ServerConfig, st *ServerStats) error {
	if err := drv.SetupQueue(p, qi); err != nil {
		return err
	}
	q := drv.NIC().Queue(qi)
	pool, err := drv.NewTxPool(p, 32)
	if err != nil {
		return err
	}
	co := costsOf(drv)
	domain := domainOf(drv, p)
	for {
		if !q.HasRx() {
			q.RxCond.WaitUntil(p, q.HasRx)
			p.Sleep(co.SchedLatency)
		}
		p.ChargeSpan("rx/irq", cycles.TagOther, co.InterruptEntry)
		for _, c := range q.DrainRx() {
			payload, err := drv.HandleRxRaw(p, qi, c)
			if err != nil {
				return err
			}
			req, err := DecodeRequest(payload)
			if err != nil {
				st.Errors++
				continue
			}
			st.Requests++
			p.ChargeSpan("kv/op", cycles.TagOther, cfg.OpCycles)
			var resp []byte
			switch req.Op {
			case OpGet:
				st.GetOps++
				val, hit, err := store.Get(req.Key)
				if err != nil {
					return err
				}
				resp = EncodeGetResponse(val, hit)
			case OpSet:
				st.SetOps++
				if err := store.Set(domain, req.Key, req.Value); err != nil {
					return err
				}
				resp = EncodeSetResponse()
			}
			if err := drv.SendMessageData(p, q, pool, resp, &st.Tx); err != nil {
				return err
			}
		}
	}
}

func costsOf(drv *netstack.Driver) *cycles.Costs {
	return drv.Env().Costs
}

func domainOf(drv *netstack.Driver, p *sim.Proc) int {
	return drv.Env().DomainOfCore(p.Core())
}
