package kv

import (
	"repro/internal/cycles"
	"repro/internal/nic"
	"repro/internal/sim"
)

// ClientConfig parameterizes one memslap-style load generator.
type ClientConfig struct {
	KeySpace  int
	KeySize   int
	ValueSize int
	GetRatio  int // percent of GETs (memslap default: 90)
	Window    int // outstanding requests per connection
}

// DefaultClientConfig matches the paper's memslap configuration.
func DefaultClientConfig() ClientConfig {
	return ClientConfig{KeySpace: 2048, KeySize: 64, ValueSize: 1024, GetRatio: 90, Window: 24}
}

// Client is a remote memslap instance bound to one server queue. Like the
// netperf traffic source it is not a simulated CPU; it respects the wire,
// receive credits and a bounded request window.
type Client struct {
	eng *sim.Engine
	src *nic.Source
	cfg ClientConfig
	qi  int

	expected    []int // FIFO of expected response sizes
	respAcc     int
	outstanding int

	// Stats
	Transactions uint64
	Gets, Sets   uint64
}

// mix is a deterministic integer hash for op/key selection.
func mix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

func (c *Client) isGet(seq int) bool {
	return int(mix(uint64(seq))%100) < c.cfg.GetRatio
}

func (c *Client) keyOf(seq int) string {
	return Key(int(mix(uint64(seq)*31+7)%uint64(c.cfg.KeySpace)), c.cfg.KeySize)
}

func (c *Client) requestBytes(seq int) []byte {
	if c.isGet(seq) {
		return EncodeGet(c.keyOf(seq))
	}
	val := make([]byte, c.cfg.ValueSize)
	for i := range val {
		val[i] = byte(seq + i)
	}
	return EncodeSet(c.keyOf(seq), val)
}

func (c *Client) responseSize(seq int) int {
	if c.isGet(seq) {
		return GetResponseSize(c.cfg.ValueSize)
	}
	return SetResponseSize
}

// NewClient builds the load generator for server queue qi.
func NewClient(eng *sim.Engine, n *nic.NIC, qi int, costs *cycles.Costs, cfg ClientConfig) *Client {
	c := &Client{eng: eng, cfg: cfg, qi: qi}
	c.src = nic.NewSource(eng, n.Queue(qi), costs, 0, n.Config().MTU, false)
	c.src.SetSizeFn(func(seq int) int { return len(c.requestBytes(seq)) })
	c.src.SetPayload(func(seq, frameIdx int, b []byte) {
		req := c.requestBytes(seq)
		copy(b, req[frameIdx*n.Config().MTU:])
	})
	prev := n.TxDeliveredHook
	n.TxDeliveredHook = func(q int, at uint64, bytes int) {
		if prev != nil {
			prev(q, at, bytes)
		}
		if q == qi {
			c.onResponseBytes(at, bytes)
		}
	}
	return c
}

// Start launches the client at time t with a full request window.
func (c *Client) Start(t uint64) {
	c.eng.Schedule(t, func(now uint64) {
		for i := 0; i < c.cfg.Window; i++ {
			c.issue(now)
		}
	})
}

func (c *Client) issue(now uint64) {
	seq := int(c.Gets + c.Sets)
	if c.isGet(seq) {
		c.Gets++
	} else {
		c.Sets++
	}
	c.expected = append(c.expected, c.responseSize(seq))
	c.outstanding++
	c.src.EnqueueMessage(now)
}

func (c *Client) onResponseBytes(at uint64, b int) {
	c.respAcc += b
	for len(c.expected) > 0 && c.respAcc >= c.expected[0] {
		c.respAcc -= c.expected[0]
		c.expected = c.expected[1:]
		c.outstanding--
		c.Transactions++
		c.issue(at)
	}
}
