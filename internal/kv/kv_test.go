package kv

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/cycles"
	"repro/internal/dmaapi"
	"repro/internal/iommu"
	"repro/internal/mem"
	"repro/internal/netstack"
	"repro/internal/nic"
	"repro/internal/sim"
)

func TestProtocolRoundTrip(t *testing.T) {
	g := EncodeGet("hello")
	req, err := DecodeRequest(g)
	if err != nil {
		t.Fatal(err)
	}
	if req.Op != OpGet || req.Key != "hello" || req.Value != nil {
		t.Errorf("GET decode: %+v", req)
	}
	s := EncodeSet("k", []byte("value-bytes"))
	req, err = DecodeRequest(s)
	if err != nil {
		t.Fatal(err)
	}
	if req.Op != OpSet || req.Key != "k" || !bytes.Equal(req.Value, []byte("value-bytes")) {
		t.Errorf("SET decode: %+v", req)
	}
	// Responses.
	rv := EncodeGetResponse([]byte("vvv"), true)
	status, val, err := DecodeResponse(rv)
	if err != nil || status != StatusOK || !bytes.Equal(val, []byte("vvv")) {
		t.Errorf("GET response decode: %d %q %v", status, val, err)
	}
	status, _, _ = DecodeResponse(EncodeGetResponse(nil, false))
	if status != StatusMiss {
		t.Error("miss response wrong")
	}
	status, _, _ = DecodeResponse(EncodeSetResponse())
	if status != StatusOK {
		t.Error("set ack wrong")
	}
}

func TestProtocolPropertyRoundTrip(t *testing.T) {
	f := func(rawKey []byte, value []byte, isGet bool) bool {
		if len(rawKey) == 0 || len(rawKey) > 200 {
			return true
		}
		if len(value) > 1400 {
			value = value[:1400]
		}
		key := string(rawKey)
		var b []byte
		if isGet {
			b = EncodeGet(key)
		} else {
			b = EncodeSet(key, value)
		}
		req, err := DecodeRequest(b)
		if err != nil {
			return false
		}
		if req.Key != key {
			return false
		}
		if !isGet && !bytes.Equal(req.Value, value) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{1},
		{0, 10, 9, 200},             // key length beyond total
		{0, 4, 9, 0},                // unknown opcode
		{0, 6, OpSet, 1, 'k'},       // SET missing value length
		{0, 9, OpSet, 1, 'k', 0, 9}, // SET truncated value
	}
	for i, c := range cases {
		if _, err := DecodeRequest(c); err == nil {
			t.Errorf("case %d should fail: %v", i, c)
		}
	}
}

func TestStoreSetGetReplace(t *testing.T) {
	m := mem.New(1)
	k := mem.NewKmalloc(m, nil)
	s := NewStore(m, k)
	if err := s.Set(0, "a", []byte("one")); err != nil {
		t.Fatal(err)
	}
	v, hit, err := s.Get("a")
	if err != nil || !hit || string(v) != "one" {
		t.Fatalf("get: %q %v %v", v, hit, err)
	}
	// Same-size replace reuses the allocation.
	if err := s.Set(0, "a", []byte("two")); err != nil {
		t.Fatal(err)
	}
	v, _, _ = s.Get("a")
	if string(v) != "two" {
		t.Error("replace failed")
	}
	// Different-size replace reallocates.
	if err := s.Set(0, "a", []byte("three-is-longer")); err != nil {
		t.Fatal(err)
	}
	v, _, _ = s.Get("a")
	if string(v) != "three-is-longer" {
		t.Error("resize replace failed")
	}
	if _, hit, _ := s.Get("missing"); hit {
		t.Error("phantom hit")
	}
	if s.Len() != 1 {
		t.Errorf("len = %d", s.Len())
	}
}

func TestKeyFixedWidth(t *testing.T) {
	for _, i := range []int{0, 7, 123456} {
		k := Key(i, 64)
		if len(k) != 64 {
			t.Errorf("Key(%d) len = %d", i, len(k))
		}
	}
	if Key(1, 64) == Key(2, 64) {
		t.Error("keys must differ")
	}
}

func TestEndToEndMemcached(t *testing.T) {
	eng := sim.NewEngine()
	m := mem.New(2)
	costs := cycles.Default()
	u := iommu.New(eng, m, costs)
	env := &dmaapi.Env{Eng: eng, Mem: m, IOMMU: u, Costs: costs, Dev: 1, Cores: 1}
	mapper, err := core.NewShadowMapper(env, core.WithHint(netstack.PacketLenHint))
	if err != nil {
		t.Fatal(err)
	}
	n := nic.New(eng, u, nic.Config{Dev: 1, Queues: 1, RingSize: 64, MTU: 1500, TSO: true, Costs: costs})
	k := mem.NewKmalloc(m, nil)
	drv := netstack.NewDriver(env, mapper, n, k, 2048)

	store := NewStore(m, k)
	scfg := DefaultServerConfig()
	scfg.KeySpace = 64
	if err := Prepopulate(store, 0, scfg); err != nil {
		t.Fatal(err)
	}
	var st ServerStats
	eng.Spawn("server", 0, 0, func(p *sim.Proc) {
		if err := RunServer(p, drv, store, 0, scfg, &st); err != nil {
			t.Error(err)
		}
	})
	ccfg := DefaultClientConfig()
	ccfg.KeySpace = 64
	client := NewClient(eng, n, 0, costs, ccfg)
	client.Start(cycles.FromMicros(100))
	eng.Run(cycles.FromMillis(5))
	eng.Stop()

	if client.Transactions < 50 {
		t.Fatalf("transactions = %d", client.Transactions)
	}
	if st.Errors != 0 {
		t.Errorf("server decode errors = %d (shadow copies corrupted requests?)", st.Errors)
	}
	if st.GetOps == 0 || st.SetOps == 0 {
		t.Errorf("mix broken: %d gets %d sets", st.GetOps, st.SetOps)
	}
	ratio := float64(st.GetOps) / float64(st.GetOps+st.SetOps)
	if ratio < 0.8 || ratio > 0.97 {
		t.Errorf("GET ratio = %.2f, want ~0.9", ratio)
	}
	// Store hit rate should be ~100% (prepopulated key space).
	if store.Hits*10 < store.Gets*9 {
		t.Errorf("hit rate too low: %d/%d", store.Hits, store.Gets)
	}
}

// FuzzDecodeRequest ensures the request parser never panics and never
// accepts malformed frames (it parses device-delivered, untrusted bytes).
func FuzzDecodeRequest(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeGet("some-key"))
	f.Add(EncodeSet("k", []byte("value")))
	f.Add([]byte{0, 4, 9, 200})
	f.Add([]byte{0xff, 0xff, OpSet, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeRequest(data)
		if err != nil {
			return
		}
		// Anything accepted must re-encode consistently.
		var re []byte
		switch req.Op {
		case OpGet:
			re = EncodeGet(req.Key)
		case OpSet:
			re = EncodeSet(req.Key, req.Value)
		default:
			t.Fatalf("accepted unknown op %d", req.Op)
		}
		req2, err := DecodeRequest(re)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if req2.Op != req.Op || req2.Key != req.Key || !bytes.Equal(req2.Value, req.Value) {
			t.Fatal("decode/encode not a fixed point")
		}
	})
}
