// Package kv implements the memcached workload of the paper's Figure 11: a
// small in-memory key-value store served over the simulated network
// datapath, driven by a memslap-style load generator (64-byte keys, 1 KiB
// values, 90%/10% GET/SET), one instance per core.
package kv

import (
	"repro/internal/mem"
)

// Store is an in-memory key-value store whose values live in simulated
// physical memory (so GET responses carry real bytes through the DMA
// datapath).
type Store struct {
	m     *mem.Memory
	k     *mem.Kmalloc
	table map[string]mem.Buf

	// Stats
	Gets, Hits, Sets uint64
}

// NewStore creates a store over the machine's memory.
func NewStore(m *mem.Memory, k *mem.Kmalloc) *Store {
	return &Store{m: m, k: k, table: make(map[string]mem.Buf)}
}

// Set stores value under key, replacing any previous value.
func (s *Store) Set(domain int, key string, value []byte) error {
	s.Sets++
	if old, ok := s.table[key]; ok {
		if old.Size == len(value) {
			return s.m.Write(old.Addr, value)
		}
		if err := s.k.Free(old); err != nil {
			return err
		}
		delete(s.table, key)
	}
	buf, err := s.k.Alloc(domain, len(value))
	if err != nil {
		return err
	}
	if err := s.m.Write(buf.Addr, value); err != nil {
		return err
	}
	s.table[key] = buf
	return nil
}

// Get returns the value stored under key.
func (s *Store) Get(key string) ([]byte, bool, error) {
	s.Gets++
	buf, ok := s.table[key]
	if !ok {
		return nil, false, nil
	}
	s.Hits++
	val := make([]byte, buf.Size)
	if err := s.m.Read(buf.Addr, val); err != nil {
		return nil, false, err
	}
	return val, true, nil
}

// Len returns the number of stored keys.
func (s *Store) Len() int { return len(s.table) }

// Key builds the canonical fixed-width benchmark key for index i:
// "key-" + 10 zero-padded digits, '.'-padded/truncated to keySize. One
// allocation — the load generator calls this per request.
func Key(i, keySize int) string {
	if i < 0 {
		i = 0
	}
	var head [14]byte // "key-" + 10 digits
	copy(head[:], "key-")
	for j := 13; j >= 4; j-- {
		head[j] = byte('0' + i%10)
		i /= 10
	}
	b := make([]byte, keySize)
	n := copy(b, head[:])
	for j := n; j < keySize; j++ {
		b[j] = '.'
	}
	return string(b)
}
