package trace

import (
	"strings"
	"testing"
)

func TestNilAndZeroTracersAreNoOps(t *testing.T) {
	var nilT *Tracer
	nilT.Emit(0, CatMap, "x") // must not panic
	if nilT.Events() != nil {
		t.Error("nil tracer should have no events")
	}
	var zero Tracer
	zero.Emit(0, CatMap, "x")
	if zero.Events() != nil || zero.Emitted != 0 {
		t.Error("zero tracer should be disabled")
	}
}

func TestRingKeepsMostRecent(t *testing.T) {
	tr := New(4)
	for i := 0; i < 10; i++ {
		tr.Emit(uint64(i*100), CatMap, "event-%d", i)
	}
	ev := tr.Events()
	if len(ev) != 4 {
		t.Fatalf("len = %d", len(ev))
	}
	if ev[0].Msg != "event-6" || ev[3].Msg != "event-9" {
		t.Errorf("wrong window: %v .. %v", ev[0].Msg, ev[3].Msg)
	}
	for i := 1; i < len(ev); i++ {
		if ev[i].Seq <= ev[i-1].Seq {
			t.Error("events out of order")
		}
	}
	if tr.Emitted != 10 {
		t.Errorf("emitted = %d", tr.Emitted)
	}
}

func TestFilter(t *testing.T) {
	tr := New(8)
	tr.SetFilter(CatFault)
	tr.Emit(1, CatMap, "m")
	tr.Emit(2, CatFault, "f")
	tr.Emit(3, CatInval, "i")
	ev := tr.Events()
	if len(ev) != 1 || ev[0].Cat != CatFault {
		t.Errorf("filter broken: %v", ev)
	}
	if tr.Dropped != 2 {
		t.Errorf("dropped = %d", tr.Dropped)
	}
	tr.SetFilter() // reset
	tr.Emit(4, CatMap, "m2")
	if len(tr.Events()) != 2 {
		t.Error("reset filter broken")
	}
}

func TestDumpFormat(t *testing.T) {
	tr := New(8)
	tr.Emit(2400, CatFault, "dev %d iova %#x", 1, 0x5000)
	var b strings.Builder
	tr.Dump(&b)
	out := b.String()
	if !strings.Contains(out, "1.000us") || !strings.Contains(out, "fault") ||
		!strings.Contains(out, "dev 1 iova 0x5000") {
		t.Errorf("dump format: %q", out)
	}
}

func TestDumpFrequency(t *testing.T) {
	tr := New(4)
	tr.Emit(4800, CatMap, "m")
	var b strings.Builder
	tr.Dump(&b)
	// 4800 cycles at the simulation's 2.4 GHz clock is 2 us.
	if !strings.Contains(b.String(), "2.000us") {
		t.Errorf("default-frequency dump: %q", b.String())
	}
	// At 1.2 GHz the same timestamp is 4 us — Dump must honour the
	// configured clock, not a hard-coded 2400 cycles/us.
	tr.SetHz(1.2e9)
	b.Reset()
	tr.Dump(&b)
	if !strings.Contains(b.String(), "4.000us") {
		t.Errorf("overridden-frequency dump: %q", b.String())
	}
	tr.SetHz(0) // reset to the simulation clock
	b.Reset()
	tr.Dump(&b)
	if !strings.Contains(b.String(), "2.000us") {
		t.Errorf("reset-frequency dump: %q", b.String())
	}
}
