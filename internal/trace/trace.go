// Package trace provides a lightweight ring-buffer event tracer for the
// simulation. The IOMMU emits mapping, invalidation and fault events into
// it, giving the same visibility a kernel developer gets from the
// intel-iommu tracepoints — invaluable when debugging why a DMA faulted or
// which strategy left a stale mapping behind.
package trace

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/cycles"
)

// Standard event categories.
const (
	CatMap    = "map"
	CatUnmap  = "unmap"
	CatInval  = "inval"
	CatFault  = "fault"
	CatDMA    = "dma"
	CatCustom = "custom"
)

// Event is one trace record.
type Event struct {
	At  uint64 // virtual time, cycles
	Cat string
	Msg string
	Seq uint64 // tie-breaker for identical timestamps
}

// Tracer is a fixed-capacity ring of events. The zero value is a disabled
// tracer: Emit is a cheap no-op, so instrumentation can stay in place.
type Tracer struct {
	ring    []Event
	next    int
	wrapped bool
	seq     uint64
	filter  map[string]bool // nil = accept all
	hz      float64         // 0 = the simulation's cycles.Hz

	// Stats
	Emitted, Dropped uint64
}

// New creates a tracer holding the most recent `capacity` events.
func New(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Tracer{ring: make([]Event, capacity)}
}

// Enabled reports whether the tracer records anything.
func (t *Tracer) Enabled() bool { return t != nil && t.ring != nil }

// SetFilter restricts recording to the given categories (nil resets).
func (t *Tracer) SetFilter(cats ...string) {
	if len(cats) == 0 {
		t.filter = nil
		return
	}
	t.filter = make(map[string]bool, len(cats))
	for _, c := range cats {
		t.filter[c] = true
	}
}

// Emit records an event. Safe to call on a nil or zero tracer.
func (t *Tracer) Emit(at uint64, cat, format string, args ...interface{}) {
	if !t.Enabled() {
		return
	}
	if t.filter != nil && !t.filter[cat] {
		t.Dropped++
		return
	}
	t.seq++
	t.Emitted++
	if t.next == len(t.ring) {
		t.next = 0
		t.wrapped = true
	}
	t.ring[t.next] = Event{At: at, Cat: cat, Msg: fmt.Sprintf(format, args...), Seq: t.seq}
	t.next++
}

// Events returns the recorded events in chronological order.
func (t *Tracer) Events() []Event {
	if !t.Enabled() {
		return nil
	}
	var out []Event
	if t.wrapped {
		out = append(out, t.ring[t.next:]...)
	}
	out = append(out, t.ring[:t.next]...)
	// Defensive: the ring is already ordered, but sorting by seq keeps
	// the contract explicit.
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// SetHz overrides the clock frequency used to render timestamps (for
// traces captured under a non-default cost model). Zero restores the
// simulation's cycles.Hz.
func (t *Tracer) SetHz(hz float64) { t.hz = hz }

// Dump writes the trace as text, one event per line. Timestamps are
// converted with the simulation clock (cycles.Hz), not a hard-coded rate.
func (t *Tracer) Dump(w io.Writer) {
	hz := t.hz
	if hz <= 0 {
		hz = cycles.Hz
	}
	cyclesPerUs := hz / 1e6
	for _, e := range t.Events() {
		us := float64(e.At) / cyclesPerUs
		fmt.Fprintf(w, "%12.3fus %-6s %s\n", us, e.Cat, e.Msg)
	}
}
