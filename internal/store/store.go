// Package store is the daemon's crash-safe result cache: a
// content-addressed map from (tool, seed, config, code-fingerprint) to a
// finished benchmark artifact. It exists so a warm simd never recomputes
// a sweep whose inputs have not changed, and it is built for the failure
// modes a long-running cache actually meets:
//
//   - torn writes: entries are written to a tmp file and renamed into
//     place, so a crash mid-Put leaves at most garbage in tmp/, never a
//     half-entry at a live key;
//   - bit rot / truncation: every entry carries a sha256 of its payload
//     in a header line, verified on every Get;
//   - corruption: a failed verification quarantines the entry (atomic
//     rename into quarantine/) and reports ErrCorrupt, so the caller
//     recomputes and re-Puts — a corrupt cache degrades to a cold cache,
//     it never serves bad bytes. Concurrent readers during the
//     quarantine either still see the old file (and reach the same
//     verdict) or miss cleanly.
//
// Keys are sha256 hex of the canonical-JSON request descriptor (see Key),
// which includes a fingerprint of the serving binary — a rebuilt simd
// never serves artifacts computed by different code.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
)

// ErrMiss reports that no entry exists for the key.
var ErrMiss = errors.New("store: miss")

// ErrCorrupt reports that the entry at the key failed verification and
// has been quarantined; the caller should recompute and Put again.
var ErrCorrupt = errors.New("store: entry corrupt (quarantined)")

// header is the first line of every entry file, before the raw payload.
type header struct {
	Schema int    `json:"schema"`
	Key    string `json:"key"`
	SHA256 string `json:"sha256"`
	Size   int    `json:"size"`
}

// Stats are the store's operation counters (all atomic; safe to read
// while the daemon serves).
type Stats struct {
	Hits, Misses, Puts  uint64
	Corrupt, ReadErrors uint64
}

// Store is one on-disk cache rooted at a directory.
type Store struct {
	root string

	hits, misses, puts  atomic.Uint64
	corrupt, readErrors atomic.Uint64
	seq                 atomic.Uint64 // tmp/quarantine name uniquifier
	gets                atomic.Uint64 // for the injection knobs

	// Fault-injection knobs (chaos suite / simd -inject). CorruptEvery=N
	// flips one payload byte of every Nth entry on disk before reading
	// it back, exercising the real quarantine path; FailReadEvery=N makes
	// every Nth Get fail with a synthetic I/O error (retryable).
	CorruptEvery  int
	FailReadEvery int
}

// Open creates (if needed) and opens a store rooted at dir.
func Open(dir string) (*Store, error) {
	for _, d := range []string{dir, filepath.Join(dir, "entries"), filepath.Join(dir, "tmp"), filepath.Join(dir, "quarantine")} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("store: open: %w", err)
		}
	}
	return &Store{root: dir}, nil
}

// Root returns the store's directory.
func (s *Store) Root() string { return s.root }

// Key derives the content address for a request: sha256 over the
// canonical JSON of the descriptor. Include everything that changes the
// result — tool name, seed, normalized config, and the code fingerprint —
// and nothing that doesn't (deadlines, cache-control flags).
func Key(desc any) (string, error) {
	b, err := json.Marshal(desc)
	if err != nil {
		return "", fmt.Errorf("store: key: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// BinaryFingerprint hashes the running executable's bytes, so cache keys
// change whenever the serving code does. Falls back to "dev" when the
// binary cannot be read (e.g. `go run` tmp binaries already deleted).
func BinaryFingerprint() string {
	exe, err := os.Executable()
	if err != nil {
		return "dev"
	}
	b, err := os.ReadFile(exe)
	if err != nil {
		return "dev"
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:8])
}

func (s *Store) entryPath(key string) string {
	return filepath.Join(s.root, "entries", key[:2], key)
}

// Put stores payload under key atomically: full write to tmp/, fsync-free
// rename into entries/. A concurrent Get never observes a partial entry.
func (s *Store) Put(key string, payload []byte) error {
	if err := validKey(key); err != nil {
		return err
	}
	hdr := header{Schema: 1, Key: key, SHA256: payloadSum(payload), Size: len(payload)}
	hb, err := json.Marshal(hdr)
	if err != nil {
		return fmt.Errorf("store: put: %w", err)
	}
	tmp := filepath.Join(s.root, "tmp", fmt.Sprintf("%s.%d.%d", key[:8], os.Getpid(), s.seq.Add(1)))
	data := append(append(hb, '\n'), payload...)
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("store: put: %w", err)
	}
	dst := s.entryPath(key)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: put: %w", err)
	}
	if err := os.Rename(tmp, dst); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: put: %w", err)
	}
	s.puts.Add(1)
	return nil
}

// Get returns the payload stored under key. It returns ErrMiss when the
// key is absent, a retryable I/O error when the read fails, and
// ErrCorrupt — after quarantining the entry — when verification fails.
func (s *Store) Get(key string) ([]byte, error) {
	if err := validKey(key); err != nil {
		return nil, err
	}
	n := s.gets.Add(1)
	if s.FailReadEvery > 0 && n%uint64(s.FailReadEvery) == 0 {
		s.readErrors.Add(1)
		return nil, fmt.Errorf("store: injected read failure (get %d)", n)
	}
	if s.CorruptEvery > 0 && n%uint64(s.CorruptEvery) == 0 {
		s.injectCorruption(key)
	}
	data, err := os.ReadFile(s.entryPath(key))
	if errors.Is(err, os.ErrNotExist) {
		s.misses.Add(1)
		return nil, ErrMiss
	}
	if err != nil {
		s.readErrors.Add(1)
		return nil, fmt.Errorf("store: get: %w", err)
	}
	payload, verr := verify(key, data)
	if verr != nil {
		s.corrupt.Add(1)
		s.quarantine(key)
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, verr)
	}
	s.hits.Add(1)
	return payload, nil
}

// verify checks an entry's header and payload checksum.
func verify(key string, data []byte) ([]byte, error) {
	nl := -1
	for i, b := range data {
		if b == '\n' {
			nl = i
			break
		}
	}
	if nl < 0 {
		return nil, errors.New("no header line")
	}
	var hdr header
	if err := json.Unmarshal(data[:nl], &hdr); err != nil {
		return nil, fmt.Errorf("bad header: %v", err)
	}
	if hdr.Schema != 1 {
		return nil, fmt.Errorf("unknown schema %d", hdr.Schema)
	}
	if hdr.Key != key {
		return nil, fmt.Errorf("key mismatch: entry claims %s", hdr.Key)
	}
	payload := data[nl+1:]
	if len(payload) != hdr.Size {
		return nil, fmt.Errorf("truncated: %d bytes, header says %d", len(payload), hdr.Size)
	}
	if got := payloadSum(payload); got != hdr.SHA256 {
		return nil, fmt.Errorf("checksum mismatch: %s != %s", got, hdr.SHA256)
	}
	return payload, nil
}

// quarantine moves a corrupt entry out of the live tree. The rename is
// atomic; if a concurrent reader already moved it (or re-Put raced in a
// fresh entry), losing the race is fine — the live key is healthy either
// way, so errors are ignored.
func (s *Store) quarantine(key string) {
	dst := filepath.Join(s.root, "quarantine",
		fmt.Sprintf("%s.%d.%d", key, os.Getpid(), s.seq.Add(1)))
	_ = os.Rename(s.entryPath(key), dst)
}

// injectCorruption flips one payload byte of the on-disk entry (chaos
// knob) so the normal Get path discovers real corruption.
func (s *Store) injectCorruption(key string) { _ = s.CorruptEntry(key) }

// CorruptEntry flips one byte of the on-disk entry for key — the chaos
// suite's bit-rot simulator. The next Get detects and quarantines it.
func (s *Store) CorruptEntry(key string) error {
	path := s.entryPath(key)
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(data) == 0 {
		return fmt.Errorf("store: empty entry %s", key)
	}
	data[len(data)-1] ^= 0x01
	return os.WriteFile(path, data, 0o644)
}

// QuarantinedCount reports how many entries sit in quarantine/ right now.
func (s *Store) QuarantinedCount() int {
	ents, err := os.ReadDir(filepath.Join(s.root, "quarantine"))
	if err != nil {
		return 0
	}
	return len(ents)
}

// Stats snapshots the operation counters.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:       s.hits.Load(),
		Misses:     s.misses.Load(),
		Puts:       s.puts.Load(),
		Corrupt:    s.corrupt.Load(),
		ReadErrors: s.readErrors.Load(),
	}
}

func payloadSum(payload []byte) string {
	sum := sha256.Sum256(payload)
	return hex.EncodeToString(sum[:])
}

func validKey(key string) error {
	if len(key) < 8 || strings.ContainsAny(key, "/\\.") {
		return fmt.Errorf("store: invalid key %q", key)
	}
	return nil
}
