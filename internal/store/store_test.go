package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func open(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func put(t *testing.T, s *Store, payload string) string {
	t.Helper()
	key, err := Key(map[string]string{"payload": payload})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(key, []byte(payload)); err != nil {
		t.Fatal(err)
	}
	return key
}

func TestStoreRoundTrip(t *testing.T) {
	s := open(t)
	key := put(t, s, "artifact bytes")
	got, err := s.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "artifact bytes" {
		t.Fatalf("got %q", got)
	}
	if st := s.Stats(); st.Hits != 1 || st.Puts != 1 {
		t.Errorf("stats = %+v, want 1 hit 1 put", st)
	}
}

func TestStoreMiss(t *testing.T) {
	s := open(t)
	key, _ := Key("never stored")
	if _, err := s.Get(key); !errors.Is(err, ErrMiss) {
		t.Fatalf("err = %v, want ErrMiss", err)
	}
	if st := s.Stats(); st.Misses != 1 {
		t.Errorf("misses = %d, want 1", st.Misses)
	}
}

func TestStoreRejectsBadKeys(t *testing.T) {
	s := open(t)
	for _, key := range []string{"", "short", "../../../../etc/passwd", "a/b/ccccccc"} {
		if err := s.Put(key, []byte("x")); err == nil {
			t.Errorf("Put(%q) accepted", key)
		}
		if _, err := s.Get(key); err == nil || errors.Is(err, ErrMiss) {
			t.Errorf("Get(%q) err = %v, want invalid-key error", key, err)
		}
	}
}

// corruptOnDisk rewrites the entry file for key through fn.
func corruptOnDisk(t *testing.T, s *Store, key string, fn func([]byte) []byte) {
	t.Helper()
	path := s.entryPath(key)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, fn(data), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestStoreTruncatedEntryQuarantined(t *testing.T) {
	s := open(t)
	key := put(t, s, "a payload long enough to truncate meaningfully")
	corruptOnDisk(t, s, key, func(d []byte) []byte { return d[:len(d)-10] })

	if _, err := s.Get(key); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	if n := s.QuarantinedCount(); n != 1 {
		t.Fatalf("quarantined = %d, want 1", n)
	}
	// The live key must now be a clean miss, and a re-Put must heal it.
	if _, err := s.Get(key); !errors.Is(err, ErrMiss) {
		t.Fatalf("post-quarantine err = %v, want ErrMiss", err)
	}
	if err := s.Put(key, []byte("a payload long enough to truncate meaningfully")); err != nil {
		t.Fatal(err)
	}
	if got, err := s.Get(key); err != nil || !bytes.Contains(got, []byte("payload")) {
		t.Fatalf("after re-Put: %q, %v", got, err)
	}
}

func TestStoreBitFlippedChecksumQuarantined(t *testing.T) {
	s := open(t)
	key := put(t, s, "checksummed artifact")
	corruptOnDisk(t, s, key, func(d []byte) []byte {
		d[len(d)-1] ^= 0x40 // flip a payload bit; header sha no longer matches
		return d
	})
	if _, err := s.Get(key); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	if st := s.Stats(); st.Corrupt != 1 {
		t.Errorf("corrupt counter = %d, want 1", st.Corrupt)
	}
}

func TestStoreHeaderDamageQuarantined(t *testing.T) {
	for name, fn := range map[string]func([]byte) []byte{
		"garbage-header": func(d []byte) []byte { return append([]byte("not json\n"), d...) },
		"no-newline":     func(d []byte) []byte { return bytes.ReplaceAll(d, []byte("\n"), []byte(" ")) },
		"wrong-key": func(d []byte) []byte {
			return bytes.Replace(d, []byte(`"key":"`), []byte(`"key":"0`), 1)
		},
	} {
		t.Run(name, func(t *testing.T) {
			s := open(t)
			key := put(t, s, "victim of header damage")
			corruptOnDisk(t, s, key, fn)
			if _, err := s.Get(key); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("err = %v, want ErrCorrupt", err)
			}
		})
	}
}

// TestStoreConcurrentReadersDuringQuarantine hammers one corrupted key
// from many readers while another goroutine recomputes-and-re-Puts, as
// the daemon does. Every Get must land in one of three legal outcomes —
// corrupt (quarantined now), miss (quarantined already), or the healthy
// re-Put payload — and never partial or stale bytes. Runs under
// `make race-smoke`.
func TestStoreConcurrentReadersDuringQuarantine(t *testing.T) {
	const readers = 8
	const rounds = 20
	s := open(t)
	good := []byte("the one true artifact")
	key, err := Key("concurrent-quarantine")
	if err != nil {
		t.Fatal(err)
	}

	for round := 0; round < rounds; round++ {
		if err := s.Put(key, good); err != nil {
			t.Fatal(err)
		}
		corruptOnDisk(t, s, key, func(d []byte) []byte {
			d[len(d)-1] ^= 0xFF
			return d
		})

		var wg sync.WaitGroup
		errc := make(chan error, readers+1)
		for r := 0; r < readers; r++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				got, err := s.Get(key)
				switch {
				case err == nil:
					if !bytes.Equal(got, good) {
						errc <- fmt.Errorf("served wrong bytes: %q", got)
					}
				case errors.Is(err, ErrCorrupt), errors.Is(err, ErrMiss):
					// legal: this reader saw the corrupt entry or the gap
				default:
					errc <- fmt.Errorf("unexpected error: %v", err)
				}
			}()
		}
		// The recompute path: one writer heals the key concurrently.
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := s.Put(key, good); err != nil {
				errc <- err
			}
		}()
		wg.Wait()
		close(errc)
		for err := range errc {
			t.Fatal(err)
		}
		// After the dust settles the key must serve the good payload.
		got, err := s.Get(key)
		if err != nil || !bytes.Equal(got, good) {
			t.Fatalf("round %d settled state: %q, %v", round, got, err)
		}
	}
}

func TestStoreInjectedReadFailure(t *testing.T) {
	s := open(t)
	key := put(t, s, "flaky medium")
	s.FailReadEvery = 2
	var failures, hits int
	for i := 0; i < 10; i++ {
		_, err := s.Get(key)
		switch {
		case err == nil:
			hits++
		case errors.Is(err, ErrCorrupt), errors.Is(err, ErrMiss):
			t.Fatalf("injected I/O failure misclassified: %v", err)
		default:
			failures++
		}
	}
	if failures == 0 || hits == 0 {
		t.Fatalf("failures=%d hits=%d, want both nonzero", failures, hits)
	}
}

func TestStoreInjectedCorruptionHeals(t *testing.T) {
	s := open(t)
	key := put(t, s, "bit-rot victim")
	s.CorruptEvery = 1 // every Get finds a freshly flipped byte
	if _, err := s.Get(key); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	s.CorruptEvery = 0
	if err := s.Put(key, []byte("bit-rot victim")); err != nil {
		t.Fatal(err)
	}
	if got, err := s.Get(key); err != nil || string(got) != "bit-rot victim" {
		t.Fatalf("healed read: %q, %v", got, err)
	}
}

func TestStorePutIsAtomic(t *testing.T) {
	s := open(t)
	key := put(t, s, "v1")
	// Overwrite with a different payload; tmp+rename means readers see
	// either v1 or v2, never a blend. Spot-check the tmp dir drains.
	if err := s.Put(key, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "v2" {
		t.Fatalf("got %q", got)
	}
	ents, err := os.ReadDir(filepath.Join(s.Root(), "tmp"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("tmp dir not drained: %d files", len(ents))
	}
}

func TestBinaryFingerprintStable(t *testing.T) {
	a, b := BinaryFingerprint(), BinaryFingerprint()
	if a != b || a == "" {
		t.Fatalf("fingerprint unstable: %q vs %q", a, b)
	}
}
