package tenant

import (
	"testing"

	"repro/internal/iommu"
)

// TestIsolationMatrixCells pins the acceptance matrix cell by cell:
// both protection schemes contain every hostile program (zero sentinel
// corruption, violations observed, hostile quarantined) while the
// unprotected baseline loses every cell — silently, with no violations
// to observe.
func TestIsolationMatrixCells(t *testing.T) {
	_, results, err := Matrix(MatrixConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		name := r.Attack + "/" + r.Scheme
		switch r.Scheme {
		case SchemeUnprotected:
			if !r.Breached {
				t.Errorf("%s: want BREACH, got contained", name)
			}
			if r.Metrics["corrupted_bytes"] == 0 {
				t.Errorf("%s: breach with no corrupted bytes", name)
			}
			if r.Metrics["violations"] != 0 {
				// Nothing validates descriptors here; a "violation"
				// would mean the baseline grew an arbiter by accident.
				t.Errorf("%s: unprotected observed %v violations", name, r.Metrics["violations"])
			}
		case SchemeCapability, SchemeShadowCopy:
			if r.Breached {
				t.Errorf("%s: want contained, got BREACH (%v corrupted bytes)",
					name, r.Metrics["corrupted_bytes"])
			}
			if r.Metrics["corrupted_bytes"] != 0 {
				t.Errorf("%s: corrupted_bytes = %v, want 0", name, r.Metrics["corrupted_bytes"])
			}
			if r.Metrics["violations"] == 0 {
				t.Errorf("%s: hostile program produced no violations", name)
			}
			if r.Metrics["quarantines"] < 1 {
				t.Errorf("%s: hostile tenant never quarantined", name)
			}
		}
		// Isolation must not cost the benign tenants their datapath: at
		// MTU frames every scheme should hold most of its 3/4 wire share.
		if g := r.Metrics["goodput_gbps"]; g < 25 {
			t.Errorf("%s: benign goodput %.1f Gb/s, want >= 25", name, g)
		}
	}
}

// TestQuarantineIsTenantGranular checks the resilience reuse: the
// hostile tenant's pseudo device is blocked, the shared NIC is not, and
// the victim keeps receiving.
func TestQuarantineIsTenantGranular(t *testing.T) {
	m, err := NewMachine(Config{
		Scheme: SchemeCapability, Attack: AttackScan, Tenants: 4, WindowMs: 1, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Run()
	if !m.U.Blocked(tenantDev(0)) && m.Sup.Stats(tenantDev(0)).Quarantines == 0 {
		t.Fatalf("hostile tenant was never quarantined")
	}
	if m.U.Blocked(nicDev) {
		t.Fatalf("shared NIC quarantined: tenant fault bled into device fault domain")
	}
	for _, tt := range m.tenants[1:] {
		if m.U.Blocked(tenantDev(tt.ID)) {
			t.Errorf("benign tenant %d quarantined", tt.ID)
		}
		if tt.Stats.Frames == 0 {
			t.Errorf("benign tenant %d starved (0 frames)", tt.ID)
		}
	}
	if h := m.tenants[0]; h.Stats.BlockDrops == 0 {
		t.Errorf("no hostile frames were dropped at the root post-quarantine")
	}
}

// TestReplayRevocation checks the capability-scheme revocation
// machinery directly: after revoke, the stale descriptor fails both the
// epoch check and (defense in depth) translation.
func TestReplayRevocation(t *testing.T) {
	m, err := NewMachine(Config{
		Scheme: SchemeCapability, Attack: AttackReplay, Tenants: 2, WindowMs: 1, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := m.tenants[0]
	if len(h.grants) != 2 {
		t.Fatalf("replay setup: hostile has %d grants, want 2", len(h.grants))
	}
	scratch := h.grants[1]
	epoch0 := scratch.Epoch
	m.Run()
	if scratch.Live {
		t.Errorf("scratch grant still live after revocation")
	}
	if scratch.Epoch == epoch0 {
		t.Errorf("revocation did not bump the grant epoch")
	}
	if m.spill.Size == 0 {
		t.Fatalf("revoked page was not reused for victim data")
	}
	if _, _, f := m.U.Translate(nicDev, iommu.IOVA(m.replayed.Addr), iommu.PermWrite); f == nil {
		t.Errorf("stale window still translates after revoke")
	}
	if _, bytes := m.VictimCorruption(); bytes != 0 {
		t.Errorf("replayed descriptor corrupted %d bytes of reused memory", bytes)
	}
	if h.Stats.Frames == 0 {
		t.Errorf("pre-revocation deliveries should have landed legitimately")
	}
}

// TestSweepAtScale runs one 1024-queue point per protected scheme: the
// isolation verdict must hold at three orders of magnitude more tenants
// than the matrix cells, with per-tenant quarantine still O(1).
func TestSweepAtScale(t *testing.T) {
	for _, scheme := range []string{SchemeCapability, SchemeShadowCopy} {
		m, err := NewMachine(Config{
			Scheme: scheme, Attack: AttackOverrun, Tenants: 1024,
			WindowMs: 1, Seed: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		m.Run()
		r := m.Collect()
		if r.Breached {
			t.Errorf("%s: breached at 1024 tenants", scheme)
		}
		if r.Metrics["quarantines"] < 1 {
			t.Errorf("%s: hostile not quarantined at 1024 tenants", scheme)
		}
		if r.Metrics["goodput_gbps"] < 25 {
			t.Errorf("%s: goodput %.1f at 1024 tenants, want >= 25", scheme, r.Metrics["goodput_gbps"])
		}
	}
}

// TestAdjacency pins the physical layout the ring-overrun program
// depends on: tenant i's region ends exactly where tenant i+1's
// sentinel page begins.
func TestAdjacency(t *testing.T) {
	m, err := NewMachine(Config{Scheme: SchemeShadowCopy, Tenants: 8, WindowMs: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { m.Run() }() // drain the engine cleanly
	for i := 0; i < 7; i++ {
		if m.tenants[i].Region.End() != m.tenants[i+1].Private.Addr {
			t.Fatalf("tenant %d region end %#x != tenant %d private %#x",
				i, m.tenants[i].Region.End(), i+1, m.tenants[i+1].Private.Addr)
		}
	}
}
