// Package tenant models a DPDK-style userspace kernel-bypass datapath:
// applications own per-tenant RX queue pairs on one shared NIC and post
// descriptors directly, with no kernel and no per-packet syscall in the
// way. The protection question therefore shifts from the paper's "how
// does the kernel map/unmap DMA buffers" to "how do nontrusting tenants
// share one device safely" (ROADMAP item 2; CAPIO and
// Beadle-Scott-Criswell in PAPERS.md).
//
// Three schemes share one machine model:
//
//   - unprotected: the shared queue baseline. Descriptors carry raw
//     physical addresses and the device (in IOMMU passthrough) executes
//     them verbatim — any tenant can DMA anywhere.
//   - capability: CAPIO-style capability-checked descriptors. Each
//     tenant's memory is granted once, at registration, into a private
//     IOVA window of the shared device's domain; descriptors carry
//     (window address, length, grant epoch) and a trusted arbiter
//     validates them against the posting tenant's grant table before the
//     DMA is issued. Revocation bumps the epoch and unmaps the window,
//     so stale (replayed) descriptors fail validation.
//   - shadow-copy: the paper's copy design scoped per tenant. Tenant
//     memory is never device-visible; the device writes into per-tenant
//     shadow rings (mapped once, permanently — no per-packet map/unmap)
//     and trusted datapath cores bounds-check the tenant-posted
//     destination and copy frames out at Costs.Memcpy rates.
//
// A hostile tenant mounted from the attack-program library (arbitrary
// scan, ring overrun, stale-descriptor replay — internal/campaign's
// payload taxonomy at tenant granularity) provides the isolation ground
// truth: every benign tenant owns a sentinel-filled private page
// (campaign.SentinelByte), and a scheme is breached iff a sentinel byte
// changes. Violating tenants are quarantined by internal/resilience at
// tenant granularity: each tenant is a pseudo iommu.DeviceID, rejected
// descriptors feed Supervisor.Observe, and the datapath drops a blocked
// tenant's traffic at the root.
//
// Matrix (isolation cells) and Sweep (goodput vs tenant count, up to
// thousands of queues) fan independent per-cell machines across
// bench.Farm; cmd/tenantbench emits the deterministic artifact gated in
// CI by `make tenant-smoke` against ci/tenant-baseline.json.
package tenant

import (
	"fmt"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/cycles"
	"repro/internal/iommu"
	"repro/internal/mem"
	"repro/internal/netstack"
	"repro/internal/nic"
	"repro/internal/resilience"
	"repro/internal/sim"
)

// Scheme names (the "system" axis of the tenant tables).
const (
	SchemeUnprotected = "unprotected"
	SchemeCapability  = "capability"
	SchemeShadowCopy  = "shadow-copy"
)

// Schemes returns the protection schemes in canonical table order.
func Schemes() []string {
	return []string{SchemeUnprotected, SchemeCapability, SchemeShadowCopy}
}

// IsScheme reports whether name is a known protection scheme.
func IsScheme(name string) bool {
	for _, s := range Schemes() {
		if s == name {
			return true
		}
	}
	return false
}

const (
	// nicDev is the one shared NIC all tenant queues hang off.
	nicDev = iommu.DeviceID(1)
	// tenantDevBase maps tenant IDs onto pseudo device IDs so the
	// resilience supervisor and the IOMMU's root block bit quarantine at
	// tenant granularity without any changes to either package.
	tenantDevBase = iommu.DeviceID(0x1000)

	// capWinBase/capWinStride lay out the per-tenant capability windows
	// in the shared device's IOVA space: tenant i owns
	// [capWinBase+i*stride, +stride). Deterministic by design — a hostile
	// tenant can (and does, in the arbitrary-scan program) compute its
	// neighbour's window; the arbiter, not secrecy, is the defense.
	capWinBase   = iommu.IOVA(0x10_0000_0000)
	capWinStride = uint64(1 << 21)
	// shadowWinBase maps the per-tenant shadow rings (trusted memory,
	// permanent grants) clear of the capability windows.
	shadowWinBase = iommu.IOVA(0x20_0000_0000)

	// Userspace per-frame datapath costs. These are tenant-model
	// constants rather than cycles.Costs fields (the cost-model
	// fingerprint pins every committed baseline): a kernel-bypass app
	// pays no syscall, no skb, no protocol stack — just a poll-mode
	// descriptor read plus buffer bookkeeping, and a posted-write
	// doorbell on repost (cf. Costs.RxParse=360 for the kernel path).
	consumeCycles = 180
	repostCycles  = 96
	// validateCycles is the arbiter's per-descriptor bounds + epoch
	// check in the capability scheme (CAPIO-style range compare, ~50 ns),
	// paid as device-side latency before the DMA is issued.
	validateCycles = 120
)

func tenantDev(id int) iommu.DeviceID { return tenantDevBase + iommu.DeviceID(id) }

// Config assembles one tenant machine.
type Config struct {
	Scheme  string
	Tenants int
	// Attack names the hostile program tenant 0 mounts against tenant 1
	// ("" = all tenants benign). See Attacks().
	Attack string
	// WindowMs is the simulated run length.
	WindowMs float64
	// FrameSize is the ingress payload per frame (default 1500).
	FrameSize int
	// RingSize is the per-tenant descriptor ring depth (default 8).
	RingSize int
	// BufSize is the per-RX-buffer size (default 2048).
	BufSize int
	// DatapathCores is the number of trusted datapath procs that poll
	// completions, run tenant consume/repost, and (shadow-copy) copy
	// frames out (default 2).
	DatapathCores int
	Seed          int64
	Costs         *cycles.Costs
	// Hint is the shadow-copy §5.4 copying hint (default
	// netstack.PacketLenHint, parsing the wire format's length header).
	Hint core.HintFunc
}

func (c *Config) normalize() error {
	if !IsScheme(c.Scheme) {
		return fmt.Errorf("tenant: unknown scheme %q", c.Scheme)
	}
	if c.Tenants <= 0 {
		c.Tenants = 16
	}
	if c.Attack != "" {
		if _, err := findProgram(c.Attack); err != nil {
			return err
		}
		if c.Tenants < 2 {
			return fmt.Errorf("tenant: attack %q needs >= 2 tenants", c.Attack)
		}
	}
	if c.WindowMs <= 0 {
		c.WindowMs = 1
	}
	if c.FrameSize <= 0 {
		c.FrameSize = 1500
	}
	if c.RingSize <= 0 {
		c.RingSize = 8
	}
	if c.BufSize < c.FrameSize {
		c.BufSize = 2048
	}
	if c.DatapathCores <= 0 {
		c.DatapathCores = 2
	}
	if c.Costs == nil {
		c.Costs = cycles.Default()
	}
	if c.Hint == nil {
		c.Hint = netstack.PacketLenHint
	}
	return nil
}

// AppDesc is what a tenant posts on its queue: a buffer address in the
// scheme's descriptor address space (raw physical for unprotected and
// shadow-copy destinations, capability-window IOVA for capability), a
// length, and the grant epoch the capability was issued under.
type AppDesc struct {
	Addr  uint64
	Len   int
	Epoch uint32
}

// Grant is one registered memory region in a tenant's grant table: the
// physical region, its descriptor-space base, and the epoch/liveness the
// arbiter (capability) or copy engine (shadow-copy) validates against.
type Grant struct {
	Region mem.Buf
	Base   uint64 // descriptor address-space base (== Region.Addr except capability)
	Epoch  uint32
	Live   bool
}

func (g *Grant) contains(addr uint64, n int) bool {
	return g.Live && addr >= g.Base && n >= 0 &&
		addr+uint64(n) <= g.Base+uint64(g.Region.Size)
}

// TenantStats is the per-tenant accounting the sweep reports.
type TenantStats struct {
	Frames     uint64 // frames delivered to the application
	Bytes      uint64 // goodput bytes
	Violations uint64 // descriptors rejected by arbiter / copy engine
	NoBufDrops uint64 // frames dropped for lack of a posted descriptor/slot
	BlockDrops uint64 // frames dropped while the tenant was quarantined
	DMAFaults  uint64 // device DMAs that faulted (defense in depth)
}

// Tenant is one queue-pair owner: a contiguous registered region laid
// out [private page | RX buffers], a descriptor ring, and a grant table.
// Regions are physically adjacent in tenant order, so tenant i's last RX
// buffer borders tenant i+1's private page — the ring-overrun target.
type Tenant struct {
	ID      int
	Hostile bool

	Region  mem.Buf
	Private mem.Buf   // sentinel-filled page: the isolation oracle
	bufs    []mem.Buf // RX buffers inside Region

	ring   *nic.Ring[AppDesc]
	grants []*Grant

	// shadow-copy state: the device-visible slot ring (free slot
	// indexes) and its backing area.
	shadowArea mem.Buf
	freeSlots  *nic.Ring[int]

	Stats TenantStats
}

// mainGrant returns the registration-time grant covering Region.
func (t *Tenant) mainGrant() *Grant { return t.grants[0] }

func (t *Tenant) findGrant(addr uint64, n int, epoch uint32, checkEpoch bool) *Grant {
	for _, g := range t.grants {
		if g.contains(addr, n) && (!checkEpoch || g.Epoch == epoch) {
			return g
		}
	}
	return nil
}

// Machine is one assembled multi-tenant datapath: engine, memory, IOMMU,
// the shared NIC wire, the per-tenant supervisor, datapath procs, and
// the scheme under test.
type Machine struct {
	cfg Config

	Eng  *sim.Engine
	Mem  *mem.Memory
	U    *iommu.IOMMU
	Wire *nic.Wire
	Sup  *resilience.Supervisor

	scheme  scheme
	tenants []*Tenant
	benign  []*Tenant
	procs   []*dpQueue

	hostile   *program
	hostileT  *Tenant
	victimID  int
	replayed  AppDesc // stale descriptor the replay program keeps reposting
	spill     mem.Buf // victim-owned page reallocated from the hostile's revoked grant
	attackSeq uint64

	payload []byte // shared ingress frame: 2-byte length header + zero fill

	// Machine-wide counters.
	FramesOnWire uint64
	rr           int
}

// NewMachine assembles a machine; Run drives it for the window.
func NewMachine(cfg Config) (*Machine, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	m := &Machine{
		cfg:      cfg,
		Eng:      sim.NewEngine(),
		Mem:      mem.New(1),
		victimID: 1,
	}
	m.U = iommu.New(m.Eng, m.Mem, cfg.Costs)
	m.Wire = nic.NewWire(cfg.Costs)
	m.Sup = resilience.Attach(m.U, m.Eng, tenantPolicy())
	m.scheme = newScheme(cfg.Scheme)

	// The simulated wire format: 2-byte big-endian length header (the
	// stand-in IP total length PacketLenHint parses) over a zero fill.
	m.payload = make([]byte, cfg.FrameSize)
	m.payload[0] = byte(cfg.FrameSize >> 8)
	m.payload[1] = byte(cfg.FrameSize)

	// Tenant regions, allocated back-to-back so neighbours are
	// physically adjacent (the ring-overrun attack depends on it).
	bufArea := cfg.RingSize * cfg.BufSize
	pages := 1 + (bufArea+mem.PageSize-1)/mem.PageSize
	for i := 0; i < cfg.Tenants; i++ {
		base, err := m.Mem.AllocPages(0, pages)
		if err != nil {
			return nil, fmt.Errorf("tenant %d region: %w", i, err)
		}
		t := &Tenant{
			ID:      i,
			Region:  mem.Buf{Addr: base, Size: pages * mem.PageSize},
			Private: mem.Buf{Addr: base, Size: mem.PageSize},
			ring:    nic.NewRingOf[AppDesc](cfg.RingSize),
		}
		for b := 0; b < cfg.RingSize; b++ {
			t.bufs = append(t.bufs, mem.Buf{
				Addr: base + mem.Phys(mem.PageSize+b*cfg.BufSize),
				Size: cfg.BufSize,
			})
		}
		if err := m.Mem.Fill(t.Private, campaign.SentinelByte(i)); err != nil {
			return nil, err
		}
		m.tenants = append(m.tenants, t)
	}
	if cfg.Attack != "" {
		m.tenants[0].Hostile = true
		m.hostileT = m.tenants[0]
		p, _ := findProgram(cfg.Attack)
		m.hostile = p
	}
	for _, t := range m.tenants {
		if !t.Hostile {
			m.benign = append(m.benign, t)
		}
	}

	// Register every tenant with the scheme (grants, windows, shadow
	// rings), then arm the queues.
	for _, t := range m.tenants {
		if err := m.scheme.attach(m, t); err != nil {
			return nil, err
		}
	}
	for _, t := range m.benign {
		for _, buf := range t.bufs {
			t.ring.Post(AppDesc{
				Addr:  m.scheme.descAddr(t, buf.Addr),
				Len:   buf.Size,
				Epoch: t.mainGrant().Epoch,
			})
		}
	}
	if m.hostile != nil {
		if err := m.hostile.setup(m, m.hostileT); err != nil {
			return nil, err
		}
	}
	m.spawnDatapath()
	return m, nil
}

// tenantPolicy is the per-tenant quarantine policy: tighter than the
// device default (a tenant emitting rejected descriptors is hostile or
// broken, not "background faulting"), with a short cooldown so sweeps
// exercise the readmit → re-quarantine cycle inside one window.
func tenantPolicy() resilience.Policy {
	return resilience.Policy{
		FaultBurst:  8,
		RefillEvery: cycles.FromMicros(10),
		Cooldown:    cycles.FromMillis(1),
		MaxReadmits: -1,
	}
}

// violation records a rejected descriptor and feeds the tenant's pseudo
// device into the resilience supervisor: quarantine at tenant
// granularity with zero changes to the fault-domain engine.
func (m *Machine) violation(t *Tenant, d AppDesc, now uint64, reason string) {
	t.Stats.Violations++
	m.Sup.Observe(iommu.Fault{
		Dev:    tenantDev(t.ID),
		Addr:   iommu.IOVA(d.Addr),
		Want:   iommu.PermWrite,
		Reason: reason,
		At:     now,
	})
}

// Run drives the machine for the configured window and tears it down.
func (m *Machine) Run() {
	m.startIngress()
	m.Eng.Run(cycles.FromMillis(m.cfg.WindowMs))
	m.Eng.Stop()
}

// VictimCorruption audits every benign tenant's private page (and the
// replay spill page, if the hostile program created one) against its
// sentinel: the ground-truth isolation verdict.
func (m *Machine) VictimCorruption() (tenants int, bytes int) {
	audit := func(buf mem.Buf, want byte) int {
		snap, err := m.Mem.Snapshot(buf)
		if err != nil {
			return buf.Size // unauditable counts as corrupted
		}
		n := 0
		for _, b := range snap {
			if b != want {
				n++
			}
		}
		return n
	}
	for _, t := range m.benign {
		if n := audit(t.Private, campaign.SentinelByte(t.ID)); n > 0 {
			tenants++
			bytes += n
		}
	}
	if m.spill.Size > 0 {
		if n := audit(m.spill, campaign.SentinelByte(m.victimID)); n > 0 {
			tenants++
			bytes += n
		}
	}
	return tenants, bytes
}

// Result is one cell's outcome: the isolation verdict plus the metrics
// both tables report.
type Result struct {
	Scheme   string
	Attack   string
	Tenants  int
	Breached bool
	Metrics  map[string]float64
}

// Collect summarizes the run.
func (m *Machine) Collect() Result {
	window := cycles.FromMillis(m.cfg.WindowMs)
	var agg, victim TenantStats
	for _, t := range m.benign {
		agg.Frames += t.Stats.Frames
		agg.Bytes += t.Stats.Bytes
		agg.NoBufDrops += t.Stats.NoBufDrops
		agg.DMAFaults += t.Stats.DMAFaults
	}
	victim = m.tenants[m.victimID].Stats
	corruptTenants, corruptBytes := m.VictimCorruption()

	var busy uint64
	for _, q := range m.procs {
		busy += q.proc.Busy()
	}
	cpuPct := 0.0
	if window > 0 && len(m.procs) > 0 {
		cpuPct = 100 * float64(busy) / float64(window*uint64(len(m.procs)))
	}

	res := Result{
		Scheme:   m.cfg.Scheme,
		Attack:   m.cfg.Attack,
		Tenants:  m.cfg.Tenants,
		Breached: corruptBytes > 0,
		Metrics: map[string]float64{
			"goodput_gbps":     cycles.Gbps(agg.Bytes, window),
			"frames":           float64(agg.Frames),
			"nobuf_drops":      float64(agg.NoBufDrops),
			"dma_faults":       float64(agg.DMAFaults),
			"datapath_cpu_pct": cpuPct,
			"corrupted_bytes":  float64(corruptBytes),
			"corrupt_tenants":  float64(corruptTenants),
			"victim_gbps":      cycles.Gbps(victim.Bytes, window),
			"wire_util_pct":    100 * m.Wire.Utilization(window),
		},
	}
	if m.hostileT != nil {
		h := m.hostileT
		res.Metrics["success"] = b2f(res.Breached)
		res.Metrics["violations"] = float64(h.Stats.Violations)
		res.Metrics["hostile_frames"] = float64(h.Stats.Frames)
		res.Metrics["block_drops"] = float64(h.Stats.BlockDrops)
		res.Metrics["quarantines"] = float64(m.Sup.Stats(tenantDev(h.ID)).Quarantines)
	}
	return res
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
