package tenant

import (
	"fmt"

	"repro/internal/bench"
	"repro/internal/report"
)

// Window lengths for the two table kinds, in simulated milliseconds.
// Matrix cells need only long enough for every attack phase (the replay
// revocation fires ~30 µs in) plus quarantine/readmit cycles; sweep
// cells run longer so goodput is wire-dominated, not warmup-dominated.
const (
	MatrixWindowMs = 1.0
	SweepWindowMs  = 2.0
)

// MatrixTenants is the per-cell tenant count for isolation cells: small,
// because the verdict is scheme behaviour, not scale (Sweep covers scale).
const MatrixTenants = 16

// MatrixConfig parameterizes the isolation matrix.
type MatrixConfig struct {
	Seed    int64
	Schemes []string // default Schemes()
	Attacks []string // default Attacks()
	// Farm fans the cells across workers; nil runs serially. Cells are
	// independent machines seeded by bench.PointSeed, so the artifact is
	// byte-identical at any -parallel setting.
	Farm *bench.Farm
}

// Matrix mounts every hostile program against every scheme (one fresh
// machine per cell, hostile tenant 0 vs victim tenant 1 of 16) and
// renders the isolation matrix. Results come back in canonical
// attack-major, scheme-minor order regardless of farm scheduling.
func Matrix(cfg MatrixConfig) (*bench.Table, []Result, error) {
	attacks, schemes, err := normalizeAxes(cfg.Attacks, cfg.Schemes)
	if err != nil {
		return nil, nil, err
	}
	n := len(attacks) * len(schemes)
	results := make([]Result, n)
	err = cfg.Farm.Map(n, func(i int) error {
		m, err := NewMachine(Config{
			Scheme:   schemes[i%len(schemes)],
			Attack:   attacks[i/len(schemes)],
			Tenants:  MatrixTenants,
			WindowMs: MatrixWindowMs,
			Seed:     bench.PointSeed(cfg.Seed, i),
		})
		if err != nil {
			return err
		}
		m.Run()
		results[i] = m.Collect()
		return nil
	})
	if err != nil {
		return nil, results, err
	}

	tb := &bench.Table{
		Name: "tenantmatrix",
		Title: fmt.Sprintf("Hostile-tenant isolation matrix (%d attacks x %d schemes, %d tenants, seed %d)",
			len(attacks), len(schemes), MatrixTenants, cfg.Seed),
		Note:    "BREACH = a benign tenant's sentinel memory was corrupted; ok = the scheme contained the hostile tenant.",
		Columns: append([]string{"attack"}, schemes...),
	}
	for ai, attack := range attacks {
		cells := []string{attack}
		for si := range schemes {
			if results[ai*len(schemes)+si].Breached {
				cells = append(cells, "BREACH")
			} else {
				cells = append(cells, "ok")
			}
		}
		tb.AddRow(cells...)
	}
	for si, s := range schemes {
		for ai, attack := range attacks {
			tb.Point(s, attack, results[ai*len(schemes)+si].Metrics)
		}
	}
	return tb, results, nil
}

// SweepConfig parameterizes the isolation-vs-throughput sweep.
type SweepConfig struct {
	Seed    int64
	Schemes []string // default Schemes()
	// TenantCounts defaults to {16, 256, 1024}: per-tenant state must
	// stay O(1) out to thousands of queues.
	TenantCounts []int
	// FrameSizes defaults to {1500, 256, 128}: MTU frames are wire-bound
	// for every scheme; 256 B exposes the copy engine's per-frame CPU as
	// utilization; 128 B saturates the datapath cores, where copy loses
	// goodput and the unquarantined hostile flood costs the unprotected
	// baseline CPU it never gets back.
	FrameSizes []int
	Farm       *bench.Farm
}

// Sweep measures benign goodput, victim goodput, and datapath CPU for
// every scheme x tenant-count x frame-size point with the arbitrary-scan
// hostile tenant mounted throughout — throughput numbers that are only
// comparable because the isolation matrix pins who is actually safe.
func Sweep(cfg SweepConfig) (*bench.Table, []Result, error) {
	_, schemes, err := normalizeAxes(nil, cfg.Schemes)
	if err != nil {
		return nil, nil, err
	}
	counts := cfg.TenantCounts
	if len(counts) == 0 {
		counts = []int{16, 256, 1024}
	}
	frames := cfg.FrameSizes
	if len(frames) == 0 {
		frames = []int{1500, 256, 128}
	}

	type point struct {
		count, frame int
	}
	var pts []point
	for _, f := range frames {
		for _, c := range counts {
			pts = append(pts, point{count: c, frame: f})
		}
	}
	n := len(pts) * len(schemes)
	results := make([]Result, n)
	err = cfg.Farm.Map(n, func(i int) error {
		pt := pts[i/len(schemes)]
		m, err := NewMachine(Config{
			Scheme:    schemes[i%len(schemes)],
			Attack:    AttackScan,
			Tenants:   pt.count,
			FrameSize: pt.frame,
			WindowMs:  SweepWindowMs,
			Seed:      bench.PointSeed(cfg.Seed, i),
		})
		if err != nil {
			return err
		}
		m.Run()
		results[i] = m.Collect()
		return nil
	})
	if err != nil {
		return nil, results, err
	}

	tb := &bench.Table{
		Name: "tenantsweep",
		Title: fmt.Sprintf("Isolation vs throughput: benign goodput (Gb/s) under a hostile tenant, seed %d",
			cfg.Seed),
		Note:    "Hostile tenant mounted (arbitrary-scan flood, 1/4 of wire share) at every point; corrupted_bytes in the series is the isolation check at scale.",
		Columns: append([]string{"tenants x frame"}, schemes...),
	}
	tb.SetWinner("goodput_gbps", false)
	for pi, pt := range pts {
		label := fmt.Sprintf("N=%d/%dB", pt.count, pt.frame)
		cells := []string{label}
		for si := range schemes {
			r := results[pi*len(schemes)+si]
			cells = append(cells, fmt.Sprintf("%.1f", r.Metrics["goodput_gbps"]))
		}
		tb.AddRow(cells...)
		for si, s := range schemes {
			tb.Point(s, label, results[pi*len(schemes)+si].Metrics)
		}
	}
	return tb, results, nil
}

func normalizeAxes(attacks, schemes []string) ([]string, []string, error) {
	if len(attacks) == 0 {
		attacks = Attacks()
	}
	if len(schemes) == 0 {
		schemes = Schemes()
	}
	for _, a := range attacks {
		if _, err := findProgram(a); err != nil {
			return nil, nil, err
		}
	}
	for _, s := range schemes {
		if !IsScheme(s) {
			return nil, nil, fmt.Errorf("tenant: unknown scheme %q", s)
		}
	}
	return attacks, schemes, nil
}

// BenchConfig parameterizes the full tenantbench artifact: the isolation
// matrix plus the throughput sweep.
type BenchConfig struct {
	Seed         int64
	Schemes      []string
	Attacks      []string
	TenantCounts []int
	FrameSizes   []int
	Farm         *bench.Farm
}

// Bench produces the deterministic tenantbench artifact: experiments
// "tenantmatrix" and "tenantsweep". Byte-identical at any farm width.
func Bench(cfg BenchConfig) (*report.Artifact, []*bench.Table, error) {
	mt, _, err := Matrix(MatrixConfig{
		Seed: cfg.Seed, Schemes: cfg.Schemes, Attacks: cfg.Attacks, Farm: cfg.Farm,
	})
	if err != nil {
		return nil, nil, err
	}
	st, _, err := Sweep(SweepConfig{
		Seed: cfg.Seed, Schemes: cfg.Schemes,
		TenantCounts: cfg.TenantCounts, FrameSizes: cfg.FrameSizes, Farm: cfg.Farm,
	})
	if err != nil {
		return nil, nil, err
	}
	art := report.New("tenantbench", SweepWindowMs, nil)
	art.Add(mt.Experiment())
	art.Add(st.Experiment())
	return art, []*bench.Table{mt, st}, nil
}
