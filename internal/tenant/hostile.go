package tenant

import (
	"fmt"

	"repro/internal/campaign"
	"repro/internal/cycles"
	"repro/internal/mem"
)

// Attack program names: the hostile-tenant scenarios, each the
// tenant-granularity form of an internal/campaign payload (see
// doc/TENANCY.md for the mapping).
const (
	AttackScan    = "arbitrary-scan" // campaign arbitrary-scan: DMA straight at victim memory
	AttackOverrun = "ring-overrun"   // campaign ring-corrupt: length lie overruns into the neighbour
	AttackReplay  = "stale-replay"   // campaign replay-window/magazine-reuse: revoked grant, stale descriptor
)

// Attacks returns the hostile programs in canonical matrix-row order.
func Attacks() []string { return []string{AttackScan, AttackOverrun, AttackReplay} }

// program is one hostile tenant behaviour. setup runs at machine build
// (extra grants, scheduled phase changes); refill is called whenever the
// hostile queue runs empty — a spinning attacker keeping its descriptor
// ring topped up. Both are ordinary tenant operations: the attacker has
// no powers a legitimate DPDK app lacks.
type program struct {
	name   string
	setup  func(m *Machine, h *Tenant) error
	refill func(m *Machine, h *Tenant, now uint64)
}

var programs = []*program{scanProgram(), overrunProgram(), replayProgram()}

func findProgram(name string) (*program, error) {
	for _, p := range programs {
		if p.name == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("tenant: unknown attack %q (have %v)", name, Attacks())
}

// scanProgram posts descriptors aimed directly at the victim's private
// memory. The addresses are honestly obtainable: raw physical addresses
// under unprotected/shadow-copy (regions are allocated in tenant order),
// and the victim's deterministic capability window under capability.
func scanProgram() *program {
	return &program{
		name:  AttackScan,
		setup: func(m *Machine, h *Tenant) error { return nil },
		refill: func(m *Machine, h *Tenant, now uint64) {
			v := m.tenants[m.victimID]
			base := m.scheme.descAddr(v, v.Private.Addr)
			for !h.ring.Full() {
				off := (m.attackSeq * 256) % uint64(mem.PageSize-1024)
				m.attackSeq++
				h.ring.Post(AppDesc{
					Addr:  base + off,
					Len:   1024,
					Epoch: h.mainGrant().Epoch,
				})
			}
		},
	}
}

// overrunProgram posts a descriptor whose base lies inside the hostile
// tenant's own region but whose length is a lie: the DMA runs off the
// end of the region into the physically adjacent victim private page.
func overrunProgram() *program {
	return &program{
		name:  AttackOverrun,
		setup: func(m *Machine, h *Tenant) error { return nil },
		refill: func(m *Machine, h *Tenant, now uint64) {
			base := m.scheme.descAddr(h, h.Region.End()-256)
			for !h.ring.Full() {
				h.ring.Post(AppDesc{
					Addr:  base,
					Len:   256 + mem.PageSize, // overruns the grant by a full page
					Epoch: h.mainGrant().Epoch,
				})
			}
		},
	}
}

// replayProgram registers a scratch page, posts a (then-valid)
// descriptor for it, deregisters the grant — whereupon the freed page is
// immediately reused for victim data, the buffer-recycling reality the
// campaign sentinels model — and keeps replaying the stale descriptor.
func replayProgram() *program {
	p := &program{name: AttackReplay}
	p.setup = func(m *Machine, h *Tenant) error {
		base, err := m.Mem.AllocPages(0, 1)
		if err != nil {
			return err
		}
		scratch := mem.Buf{Addr: base, Size: mem.PageSize}
		g, err := m.scheme.grant(m, h, scratch)
		if err != nil {
			return err
		}
		m.replayed = AppDesc{
			Addr:  g.Base,
			Len:   mem.PageSize,
			Epoch: g.Epoch,
		}
		h.ring.Post(m.replayed)
		// Revocation fires at a seed-jittered point early in the run;
		// free + victim-realloc happen atomically in virtual time, so
		// no frame can land in the gap.
		revokeAt := cycles.FromMicros(30 + float64(uint64(m.cfg.Seed)&7))
		m.Eng.Schedule(revokeAt, func(now uint64) {
			m.scheme.revoke(m, h, g)
			if err := m.Mem.FreePages(scratch.Addr, 1); err != nil {
				return
			}
			// The allocator's free list is LIFO: the victim's next
			// allocation reuses the very frame the hostile tenant still
			// holds a descriptor for.
			spill, err := m.Mem.AllocPages(0, 1)
			if err != nil {
				return
			}
			m.spill = mem.Buf{Addr: spill, Size: mem.PageSize}
			_ = m.Mem.Fill(m.spill, campaign.SentinelByte(m.victimID))
		})
		return nil
	}
	p.refill = func(m *Machine, h *Tenant, now uint64) {
		for !h.ring.Full() {
			h.ring.Post(m.replayed)
		}
	}
	return p
}
