package tenant

import (
	"fmt"

	"repro/internal/sim"
)

// dpJob is one received-frame completion handed from the device to a
// datapath proc: the owning tenant, the consumed zero-copy descriptor
// (unprotected/capability) or shadow slot (shadow-copy), and the frame
// length landed by the DMA.
type dpJob struct {
	t    *Tenant
	d    AppDesc
	slot int
	n    int
}

// dpQueue is one trusted datapath core's completion queue. The device
// (engine context) appends; the proc drains in poll order. Tenants hash
// onto queues by ID, so one tenant's completions stay ordered.
type dpQueue struct {
	proc *sim.Proc
	cond *sim.Cond
	jobs []dpJob
	head int
}

func (m *Machine) spawnDatapath() {
	for i := 0; i < m.cfg.DatapathCores; i++ {
		q := &dpQueue{cond: sim.NewCond(fmt.Sprintf("tenant.dp%d", i))}
		m.procs = append(m.procs, q)
	}
	for i, q := range m.procs {
		q := q
		q.proc = m.Eng.Spawn(fmt.Sprintf("tenant-dp%d", i), i, 0, func(p *sim.Proc) {
			for {
				q.cond.WaitUntil(p, func() bool { return q.head < len(q.jobs) })
				j := q.jobs[q.head]
				q.jobs[q.head] = dpJob{}
				q.head++
				if q.head == len(q.jobs) {
					// Queue drained: recycle the backing array.
					q.jobs = q.jobs[:0]
					q.head = 0
				}
				m.scheme.complete(m, q, j)
			}
		})
	}
}

// enqueue hands a completion to the owning tenant's datapath queue at
// virtual time `at` (DMA + validation latency after frame arrival).
func (m *Machine) enqueue(t *Tenant, j dpJob, at uint64) {
	q := m.procs[t.ID%len(m.procs)]
	m.Eng.Schedule(at, func(when uint64) {
		q.jobs = append(q.jobs, j)
		q.cond.SignalAt(when, 1)
	})
}

// startIngress runs the shared 40 Gb/s wire at line rate: frames arrive
// back-to-back, round-robin across benign tenants, with the hostile
// tenant (when mounted) taking every 4th frame — an elephant flow that
// keeps attack descriptors executing and, post-quarantine, models flood
// traffic still occupying wire share.
func (m *Machine) startIngress() {
	var next func(now uint64)
	seq := 0
	next = func(now uint64) {
		t := m.pickTarget(seq)
		seq++
		end := m.Wire.Reserve(now, m.cfg.FrameSize)
		m.Eng.Schedule(end, func(when uint64) {
			m.deliverFrame(t, when)
			next(when)
		})
	}
	m.Eng.Schedule(0, next)
}

func (m *Machine) pickTarget(seq int) *Tenant {
	if m.hostileT != nil && seq%4 == 3 {
		return m.hostileT
	}
	t := m.benign[m.rr%len(m.benign)]
	m.rr++
	return t
}

// deliverFrame is the device-side arrival path: quarantined tenants are
// dropped at the root (one map lookup — the cheap containment the
// resilience engine provides), everything else goes through the scheme.
func (m *Machine) deliverFrame(t *Tenant, now uint64) {
	m.FramesOnWire++
	if m.U.Blocked(tenantDev(t.ID)) {
		t.Stats.BlockDrops++
		return
	}
	m.scheme.deliver(m, t, now)
}
