package tenant

import (
	"fmt"

	"repro/internal/cycles"
	"repro/internal/dmaapi"
	"repro/internal/iommu"
	"repro/internal/mem"
	"repro/internal/nic"
)

// scheme is one protection design for sharing the NIC across
// nontrusting tenants. attach/grant/revoke manage the tenant's grant
// table (registration-time, off the per-packet path in every scheme);
// deliver executes one arriving frame in engine context; complete runs
// the application side of one completion on a datapath proc.
type scheme interface {
	name() string
	attach(m *Machine, t *Tenant) error
	// grant registers an extra region (the replay program's scratch
	// page) and returns its grant-table entry.
	grant(m *Machine, t *Tenant, buf mem.Buf) (*Grant, error)
	// revoke deregisters a grant: epoch bump + window unmap under
	// capability, liveness drop under the others.
	revoke(m *Machine, t *Tenant, g *Grant)
	// descAddr translates a physical address inside t's main region
	// into the scheme's descriptor address space.
	descAddr(t *Tenant, p mem.Phys) uint64
	deliver(m *Machine, t *Tenant, now uint64)
	complete(m *Machine, q *dpQueue, j dpJob)
}

func newScheme(name string) scheme {
	switch name {
	case SchemeUnprotected:
		return &unprotected{}
	case SchemeCapability:
		return &capability{}
	case SchemeShadowCopy:
		return &shadowCopy{}
	}
	panic(fmt.Sprintf("tenant: unknown scheme %q", name)) // caught by normalize
}

// popDesc is the zero-copy dequeue path: the hostile tenant's program
// keeps its own ring topped up (a spinning attacker app); benign rings
// refill via repost on the datapath procs.
func popDesc(m *Machine, t *Tenant, now uint64) (AppDesc, bool) {
	if t.Hostile && t.ring.Len() == 0 {
		m.hostile.refill(m, t, now)
	}
	d, ok := t.ring.Pop()
	if !ok {
		t.Stats.NoBufDrops++
	}
	return d, ok
}

// appComplete is the shared application half of a zero-copy completion:
// poll-mode consume plus descriptor repost, charged on the datapath proc.
func appComplete(m *Machine, q *dpQueue, j dpJob) {
	p := q.proc
	t := j.t
	p.SpanEnter("tenant.consume")
	p.Charge("tenant consume", consumeCycles)
	t.Stats.Frames++
	t.Stats.Bytes += uint64(j.n)
	if !t.Hostile {
		// The app is done with the buffer: repost the same descriptor.
		p.Charge("tenant repost", repostCycles)
		t.ring.Post(j.d)
	}
	p.SpanExit()
}

// unprotected is the shared-queue baseline: IOMMU passthrough,
// descriptors carry raw physical addresses, nothing validates them.
type unprotected struct{}

func (s *unprotected) name() string { return SchemeUnprotected }

func (s *unprotected) attach(m *Machine, t *Tenant) error {
	m.U.SetPassthrough(nicDev, true)
	t.grants = append(t.grants, &Grant{
		Region: t.Region, Base: uint64(t.Region.Addr), Live: true,
	})
	return nil
}

func (s *unprotected) grant(m *Machine, t *Tenant, buf mem.Buf) (*Grant, error) {
	g := &Grant{Region: buf, Base: uint64(buf.Addr), Live: true}
	t.grants = append(t.grants, g)
	return g, nil
}

func (s *unprotected) revoke(m *Machine, t *Tenant, g *Grant) {
	// Nothing enforces grants here: revocation is bookkeeping only,
	// which is exactly the stale-descriptor hole the replay program hits.
	g.Live = false
}

func (s *unprotected) descAddr(t *Tenant, p mem.Phys) uint64 { return uint64(p) }

func (s *unprotected) deliver(m *Machine, t *Tenant, now uint64) {
	d, ok := popDesc(m, t, now)
	if !ok {
		return
	}
	n := min(len(m.payload), d.Len)
	res := m.U.DMAWrite(nicDev, iommu.IOVA(d.Addr), m.payload[:n])
	if res.Fault != nil {
		t.Stats.DMAFaults++
		return
	}
	m.enqueue(t, dpJob{t: t, d: d, n: n}, now+res.Latency)
}

func (s *unprotected) complete(m *Machine, q *dpQueue, j dpJob) { appComplete(m, q, j) }

// capability is the CAPIO-style design: per-tenant IOVA windows granted
// at registration, descriptors validated by a trusted arbiter against
// the posting tenant's grant table (bounds + epoch) before DMA.
type capability struct{}

func (s *capability) name() string { return SchemeCapability }

func (t *Tenant) winTop() uint64 {
	top := uint64(capWinBase) + uint64(t.ID)*capWinStride
	for _, g := range t.grants {
		if end := g.Base + uint64(g.Region.Size); end > top {
			top = end
		}
	}
	return top
}

func (s *capability) attach(m *Machine, t *Tenant) error {
	return s.mapGrant(m, t, t.Region)
}

func (s *capability) mapGrant(m *Machine, t *Tenant, buf mem.Buf) error {
	base := iommu.IOVA(t.winTop())
	if err := m.U.Map(nicDev, base, buf.Addr, buf.Size, dmaapi.FromDevice.Perm()); err != nil {
		return fmt.Errorf("capability window tenant %d: %w", t.ID, err)
	}
	t.grants = append(t.grants, &Grant{
		Region: buf, Base: uint64(base), Live: true,
	})
	return nil
}

func (s *capability) grant(m *Machine, t *Tenant, buf mem.Buf) (*Grant, error) {
	if err := s.mapGrant(m, t, buf); err != nil {
		return nil, err
	}
	return t.grants[len(t.grants)-1], nil
}

func (s *capability) revoke(m *Machine, t *Tenant, g *Grant) {
	g.Live = false
	g.Epoch++ // stale capabilities fail the epoch check from now on
	_ = m.U.Unmap(nicDev, iommu.IOVA(g.Base), g.Region.Size)
	// Defense in depth: even if a stale descriptor slipped past the
	// arbiter, the translation is gone and the IOTLB entry shot down.
	m.U.TLB().InvalidatePages(nicDev, iommu.IOVA(g.Base).Page(),
		uint64((g.Region.Size+mem.PageSize-1)/mem.PageSize))
}

func (s *capability) descAddr(t *Tenant, p mem.Phys) uint64 {
	g := t.mainGrant()
	return g.Base + uint64(p-g.Region.Addr)
}

func (s *capability) deliver(m *Machine, t *Tenant, now uint64) {
	d, ok := popDesc(m, t, now)
	if !ok {
		return
	}
	// The trusted arbiter validates before any DMA is issued: the
	// descriptor must lie wholly inside one of the *posting* tenant's
	// live grants and carry that grant's current epoch.
	if g := t.findGrant(d.Addr, d.Len, d.Epoch, true); g == nil {
		m.violation(t, d, now, "capability reject: descriptor outside live grant/epoch")
		return
	}
	n := min(len(m.payload), d.Len)
	res := m.U.DMAWrite(nicDev, iommu.IOVA(d.Addr), m.payload[:n])
	if res.Fault != nil {
		t.Stats.DMAFaults++
		return
	}
	m.enqueue(t, dpJob{t: t, d: d, n: n}, now+validateCycles+res.Latency)
}

func (s *capability) complete(m *Machine, q *dpQueue, j dpJob) { appComplete(m, q, j) }

// shadowCopy is the paper's copy design scoped per tenant: the device
// only ever sees permanently-mapped per-tenant shadow rings; trusted
// datapath cores bounds-check the tenant-posted destination and copy
// frames out. Tenant memory is never device-visible, so there is no
// per-packet map/unmap and no IOTLB invalidation on the hot path.
type shadowCopy struct{}

func (s *shadowCopy) name() string { return SchemeShadowCopy }

func (s *shadowCopy) attach(m *Machine, t *Tenant) error {
	slots := m.cfg.RingSize
	area := slots * m.cfg.BufSize
	pages := (area + mem.PageSize - 1) / mem.PageSize
	base, err := m.Mem.AllocPages(0, pages)
	if err != nil {
		return fmt.Errorf("shadow ring tenant %d: %w", t.ID, err)
	}
	t.shadowArea = mem.Buf{Addr: base, Size: pages * mem.PageSize}
	iova := shadowWinBase + iommu.IOVA(uint64(t.ID)*capWinStride)
	if err := m.U.Map(nicDev, iova, base, t.shadowArea.Size, dmaapi.FromDevice.Perm()); err != nil {
		return fmt.Errorf("shadow map tenant %d: %w", t.ID, err)
	}
	t.freeSlots = nic.NewRingOf[int](slots)
	for i := 0; i < slots; i++ {
		t.freeSlots.Post(i)
	}
	t.grants = append(t.grants, &Grant{
		Region: t.Region, Base: uint64(t.Region.Addr), Live: true,
	})
	return nil
}

func (s *shadowCopy) grant(m *Machine, t *Tenant, buf mem.Buf) (*Grant, error) {
	g := &Grant{Region: buf, Base: uint64(buf.Addr), Live: true}
	t.grants = append(t.grants, g)
	return g, nil
}

func (s *shadowCopy) revoke(m *Machine, t *Tenant, g *Grant) {
	g.Live = false
	g.Epoch++
}

func (s *shadowCopy) descAddr(t *Tenant, p mem.Phys) uint64 { return uint64(p) }

func (s *shadowCopy) slotBuf(m *Machine, t *Tenant, slot int) mem.Buf {
	return mem.Buf{
		Addr: t.shadowArea.Addr + mem.Phys(slot*m.cfg.BufSize),
		Size: m.cfg.BufSize,
	}
}

func (s *shadowCopy) slotIOVA(m *Machine, t *Tenant, slot int) iommu.IOVA {
	return shadowWinBase + iommu.IOVA(uint64(t.ID)*capWinStride+uint64(slot*m.cfg.BufSize))
}

func (s *shadowCopy) deliver(m *Machine, t *Tenant, now uint64) {
	slot, ok := t.freeSlots.Pop()
	if !ok {
		t.Stats.NoBufDrops++
		return
	}
	n := min(len(m.payload), m.cfg.BufSize)
	res := m.U.DMAWrite(nicDev, s.slotIOVA(m, t, slot), m.payload[:n])
	if res.Fault != nil {
		t.Stats.DMAFaults++
		t.freeSlots.Post(slot)
		return
	}
	m.enqueue(t, dpJob{t: t, slot: slot, n: n}, now+res.Latency)
}

// complete is the trusted copy engine: validate the tenant-posted
// destination against the tenant's live grants, clamp with the §5.4
// copying hint, pay the memcpy, recycle the shadow slot.
func (s *shadowCopy) complete(m *Machine, q *dpQueue, j dpJob) {
	p := q.proc
	t := j.t
	p.SpanEnter("tenant.copyout")
	p.Charge("tenant consume", consumeCycles)
	d, ok := popDesc(m, t, p.Now())
	if ok {
		if g := t.findGrant(d.Addr, d.Len, d.Epoch, false); g == nil {
			m.violation(t, d, p.Now(), "copy-out reject: destination outside live grant")
		} else {
			n := min(j.n, d.Len)
			slot := s.slotBuf(m, t, j.slot)
			if h := m.cfg.Hint(m.Mem, slot, n); h < n {
				n = h
			}
			p.ChargeSpan("memcpy", cycles.TagMemcpy, m.cfg.Costs.Memcpy(n))
			if err := m.Mem.Copy(mem.Phys(d.Addr), slot.Addr, n); err == nil {
				t.Stats.Frames++
				t.Stats.Bytes += uint64(n)
			}
			if !t.Hostile {
				p.Charge("tenant repost", repostCycles)
				t.ring.Post(d)
			}
		}
	}
	t.freeSlots.Post(j.slot)
	p.SpanExit()
}
