package tenant

import (
	"bytes"
	"runtime"
	"testing"

	"repro/internal/bench"
)

func benchBytes(t *testing.T, parallel int) []byte {
	t.Helper()
	cfg := BenchConfig{
		Seed:         1,
		TenantCounts: []int{16, 64},
		FrameSizes:   []int{1500, 128},
	}
	if parallel != 1 {
		farm := bench.NewFarm(parallel)
		defer farm.Close()
		cfg.Farm = farm
	}
	art, _, err := Bench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := art.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTenantArtifactDeterminism is the farm contract for tenantbench:
// cells are independent machines in canonical order, so the JSON
// artifact must be byte-identical at any -parallel setting. Runs under
// `make race-smoke`, so it doubles as the cross-engine data-race check
// for concurrent tenant queue posting.
func TestTenantArtifactDeterminism(t *testing.T) {
	serial := benchBytes(t, 1)
	for _, par := range []int{4, runtime.GOMAXPROCS(0)} {
		if got := benchBytes(t, par); !bytes.Equal(serial, got) {
			t.Fatalf("artifact differs at -parallel %d (%d vs %d bytes)",
				par, len(serial), len(got))
		}
	}
}

// TestTenantFarmPostingRace fans full hostile cells — every scheme, the
// scan flood, per-tenant rings hammered from datapath procs and the
// hostile refill path — across a maximal farm under -race.
func TestTenantFarmPostingRace(t *testing.T) {
	farm := bench.NewFarm(0) // GOMAXPROCS workers
	defer farm.Close()
	if _, _, err := Matrix(MatrixConfig{Seed: 5, Farm: farm}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Sweep(SweepConfig{
		Seed: 5, TenantCounts: []int{16, 128}, FrameSizes: []int{256}, Farm: farm,
	}); err != nil {
		t.Fatal(err)
	}
}
