package shadow

import (
	"testing"
	"testing/quick"

	"repro/internal/cycles"
	"repro/internal/iommu"
	"repro/internal/mem"
	"repro/internal/sim"
)

func TestEncodingRoundTripProperty(t *testing.T) {
	enc, err := newEncoding([]int{4096, 65536})
	if err != nil {
		t.Fatal(err)
	}
	f := func(core uint8, rights uint8, class uint8, index uint32) bool {
		c := int(core) % 128
		r := int(rights) % 3
		cl := int(class) % 2
		ix := uint64(index) % enc.maxIndex(cl)
		v := enc.encode(c, r, cl, ix)
		if !IsShadow(v) {
			return false
		}
		d, err := enc.decode(v)
		if err != nil {
			return false
		}
		return d.core == c && d.rights == r && d.class == cl && d.index == ix && d.offset == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestEncodingOffsetWithinBuffer(t *testing.T) {
	enc, _ := newEncoding([]int{4096, 65536})
	base := enc.encode(3, 1, 1, 7) // 64 KiB class
	d, err := enc.decode(base + 40000)
	if err != nil {
		t.Fatal(err)
	}
	if d.index != 7 || d.offset != 40000 {
		t.Errorf("decoded index=%d offset=%d", d.index, d.offset)
	}
}

func TestEncodingMatchesPaperLayout(t *testing.T) {
	// Paper Fig 2: 7 bits core @40, 2 bits rights @38, 1 bit size class
	// @37, 37 bits metadata index (low log2C bits are the offset).
	enc, _ := newEncoding([]int{4096, 65536})
	v := uint64(enc.encode(5, 2, 1, 9))
	if v>>47&1 != 1 {
		t.Error("MSB must be set")
	}
	if v>>40&0x7f != 5 {
		t.Error("core field wrong")
	}
	if v>>38&0x3 != 2 {
		t.Error("rights field wrong")
	}
	if v>>37&0x1 != 1 {
		t.Error("class field wrong")
	}
	if v&(1<<37-1) != 9<<16 {
		t.Error("index field wrong")
	}
	// Max index for 64 KiB class is 2^(37-16) = 2^21.
	if enc.maxIndex(1) != 1<<21 {
		t.Errorf("maxIndex = %d", enc.maxIndex(1))
	}
}

func TestEncodingRejectsBadClasses(t *testing.T) {
	if _, err := newEncoding(nil); err == nil {
		t.Error("empty classes should fail")
	}
	if _, err := newEncoding([]int{1000}); err == nil {
		t.Error("non-power-of-two class should fail")
	}
	enc, _ := newEncoding([]int{4096})
	if _, err := enc.decode(iommu.IOVA(0x1234)); err == nil {
		t.Error("decoding non-shadow IOVA should fail")
	}
}

// ---- pool tests ----

type poolRig struct {
	eng  *sim.Engine
	mem  *mem.Memory
	u    *iommu.IOMMU
	pool *Pool
}

func newRig(t *testing.T, cfg Config) *poolRig {
	t.Helper()
	eng := sim.NewEngine()
	m := mem.New(cfg.Domains)
	u := iommu.New(eng, m, cycles.Default())
	pool, err := NewPool(eng, m, u, cycles.Default(), 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &poolRig{eng: eng, mem: m, u: u, pool: pool}
}

func defaultCfg(cores int) Config {
	return Config{
		SizeClasses:  []int{4096, 65536},
		MaxPerClass:  16384,
		Cores:        cores,
		Domains:      1,
		DomainOfCore: func(int) int { return 0 },
	}
}

func (r *poolRig) run(t *testing.T, fn func(p *sim.Proc)) {
	t.Helper()
	r.runOn(t, 0, fn)
	r.eng.Run(1 << 40)
	r.eng.Stop()
}

func (r *poolRig) runOn(t *testing.T, core int, fn func(p *sim.Proc)) {
	t.Helper()
	r.eng.Spawn("t", core, 0, fn)
}

func TestPoolAcquireFindRelease(t *testing.T) {
	r := newRig(t, defaultCfg(1))
	osBuf := mem.Buf{Addr: 0x1234, Size: 1500}
	r.run(t, func(p *sim.Proc) {
		m, err := r.pool.Acquire(p, osBuf, 1500, iommu.PermWrite)
		if err != nil {
			t.Fatal(err)
		}
		if m.Shadow().Size != 4096 {
			t.Errorf("1500 B request should use the 4 KiB class, got %d", m.Shadow().Size)
		}
		// The shadow buffer is mapped for the device with exactly the
		// requested rights.
		if _, _, f := r.u.Translate(1, m.IOVA(), iommu.PermWrite); f != nil {
			t.Errorf("shadow buffer not device-writable: %v", f)
		}
		if _, _, f := r.u.Translate(1, m.IOVA(), iommu.PermRead); f == nil {
			t.Error("write-only shadow buffer must not be device-readable")
		}
		// O(1) find by IOVA returns the same metadata + OS buffer.
		got, err := r.pool.Find(p, m.IOVA())
		if err != nil {
			t.Fatal(err)
		}
		if got != m || got.OSBuf() != osBuf {
			t.Error("find returned wrong metadata")
		}
		r.pool.Release(p, m)
		if got.OSBuf() != (mem.Buf{}) {
			t.Error("release must disassociate the OS buffer")
		}
	})
}

func TestPoolReuseAndMappingNeverChanges(t *testing.T) {
	r := newRig(t, defaultCfg(1))
	r.run(t, func(p *sim.Proc) {
		m1, _ := r.pool.Acquire(p, mem.Buf{Addr: 1, Size: 100}, 2048, iommu.PermWrite)
		iova1, shadow1 := m1.IOVA(), m1.Shadow().Addr
		r.pool.Release(p, m1)
		m2, _ := r.pool.Acquire(p, mem.Buf{Addr: 2, Size: 100}, 2048, iommu.PermWrite)
		if m2 != m1 || m2.IOVA() != iova1 || m2.Shadow().Addr != shadow1 {
			t.Error("released buffer should be reused with identical IOVA and mapping")
		}
		base := r.u.Queue.Submitted
		for i := 0; i < 50; i++ {
			m, _ := r.pool.Acquire(p, mem.Buf{Addr: 3, Size: 100}, 2048, iommu.PermWrite)
			r.pool.Release(p, m)
		}
		if r.u.Queue.Submitted != base {
			t.Error("pool reuse must never invalidate the IOTLB")
		}
	})
}

func TestPoolSegregatesRights(t *testing.T) {
	r := newRig(t, defaultCfg(1))
	r.run(t, func(p *sim.Proc) {
		mr, _ := r.pool.Acquire(p, mem.Buf{Addr: 1, Size: 10}, 1000, iommu.PermRead)
		mw, _ := r.pool.Acquire(p, mem.Buf{Addr: 2, Size: 10}, 1000, iommu.PermWrite)
		mrw, _ := r.pool.Acquire(p, mem.Buf{Addr: 3, Size: 10}, 1000, iommu.PermRW)
		if mr.Rights() != iommu.PermRead || mw.Rights() != iommu.PermWrite || mrw.Rights() != iommu.PermRW {
			t.Error("rights classes wrong")
		}
		// Released buffers return to their own rights list.
		r.pool.Release(p, mr)
		again, _ := r.pool.Acquire(p, mem.Buf{Addr: 4, Size: 10}, 1000, iommu.PermWrite)
		if again == mr {
			t.Error("write acquire must not return a read-rights buffer")
		}
	})
}

func TestPoolSameRightsPerPageGuarantee(t *testing.T) {
	// With sub-page classes, chunks sharing a physical page must all have
	// the same rights (the pool's byte-granularity guarantee, Table 2).
	cfg := defaultCfg(1)
	cfg.SizeClasses = []int{256, 4096, 65536}
	r := newRig(t, cfg)
	r.run(t, func(p *sim.Proc) {
		byPage := map[uint64]iommu.Perm{}
		for i := 0; i < 64; i++ {
			rights := []iommu.Perm{iommu.PermRead, iommu.PermWrite, iommu.PermRW}[i%3]
			m, err := r.pool.Acquire(p, mem.Buf{Addr: 1, Size: 1}, 200, rights)
			if err != nil {
				t.Fatal(err)
			}
			pfn := m.Shadow().Addr.PFN()
			if prev, ok := byPage[pfn]; ok && prev != m.Rights() {
				t.Fatalf("page %#x holds both %v and %v shadow buffers", pfn, prev, m.Rights())
			}
			byPage[pfn] = m.Rights()
		}
	})
}

func TestPoolChunkingSharesPhysicalPage(t *testing.T) {
	cfg := defaultCfg(1)
	cfg.SizeClasses = []int{512, 4096}
	r := newRig(t, cfg)
	r.run(t, func(p *sim.Proc) {
		m1, _ := r.pool.Acquire(p, mem.Buf{Addr: 1, Size: 1}, 512, iommu.PermWrite)
		m2, _ := r.pool.Acquire(p, mem.Buf{Addr: 2, Size: 1}, 512, iommu.PermWrite)
		if m1.Shadow().Addr.PFN() != m2.Shadow().Addr.PFN() {
			t.Error("sub-page chunks should share a physical page")
		}
		if m1.IOVA() == m2.IOVA() {
			t.Error("chunks must have distinct IOVAs")
		}
		// Each chunk's IOVA translates to its own chunk.
		ph1, _, f1 := r.u.Translate(1, m1.IOVA(), iommu.PermWrite)
		ph2, _, f2 := r.u.Translate(1, m2.IOVA(), iommu.PermWrite)
		if f1 != nil || f2 != nil {
			t.Fatalf("chunk translation faulted: %v %v", f1, f2)
		}
		if ph1 != m1.Shadow().Addr || ph2 != m2.Shadow().Addr {
			t.Error("chunk IOVAs translate to wrong physical addresses")
		}
		st := r.pool.Stats()
		if st.CacheHits != 1 {
			t.Errorf("second chunk should come from the private cache, hits=%d", st.CacheHits)
		}
		if st.Grows != 1 {
			t.Errorf("grows = %d, want 1", st.Grows)
		}
	})
}

func TestPoolStickyCrossCoreRelease(t *testing.T) {
	r := newRig(t, defaultCfg(2))
	var m0 *Meta
	done := make(chan struct{}, 1)
	r.runOn(t, 0, func(p *sim.Proc) {
		m0, _ = r.pool.Acquire(p, mem.Buf{Addr: 1, Size: 10}, 4096, iommu.PermWrite)
		done <- struct{}{}
	})
	r.eng.Run(1 << 30)
	// Core 1 releases core 0's buffer; it must go back to core 0's list.
	r.runOn(t, 1, func(p *sim.Proc) {
		r.pool.Release(p, m0)
		m1, _ := r.pool.Acquire(p, mem.Buf{Addr: 2, Size: 10}, 4096, iommu.PermWrite)
		if m1 == m0 {
			t.Error("core 1 must not acquire core 0's sticky buffer")
		}
	})
	r.eng.Run(1 << 31)
	r.runOn(t, 0, func(p *sim.Proc) {
		m2, _ := r.pool.Acquire(p, mem.Buf{Addr: 3, Size: 10}, 4096, iommu.PermWrite)
		if m2 != m0 {
			t.Error("core 0 should get its sticky buffer back")
		}
	})
	r.eng.Run(1 << 32)
	r.eng.Stop()
	<-done
}

func TestPoolFallbackPath(t *testing.T) {
	cfg := defaultCfg(1)
	cfg.MaxPerClass = 2 // force fallback quickly
	r := newRig(t, cfg)
	r.run(t, func(p *sim.Proc) {
		var metas []*Meta
		for i := 0; i < 5; i++ {
			m, err := r.pool.Acquire(p, mem.Buf{Addr: 1, Size: 10}, 4096, iommu.PermWrite)
			if err != nil {
				t.Fatal(err)
			}
			metas = append(metas, m)
		}
		fb := 0
		for _, m := range metas {
			if m.Fallback() {
				fb++
				if IsShadow(m.IOVA()) {
					t.Error("fallback IOVA must have MSB clear")
				}
			}
			// Find must work for both paths.
			got, err := r.pool.Find(p, m.IOVA())
			if err != nil || got != m {
				t.Errorf("find failed for %#x: %v", uint64(m.IOVA()), err)
			}
			// And the buffer must be device-accessible either way.
			if _, _, f := r.u.Translate(1, m.IOVA(), iommu.PermWrite); f != nil {
				t.Errorf("fallback buffer not mapped: %v", f)
			}
		}
		if fb != 3 {
			t.Errorf("fallback buffers = %d, want 3", fb)
		}
		if r.pool.Stats().FallbackBuffers != 3 {
			t.Errorf("stats fallback = %d", r.pool.Stats().FallbackBuffers)
		}
	})
}

func TestPoolTable2API(t *testing.T) {
	r := newRig(t, defaultCfg(1))
	osBuf := mem.Buf{Addr: 0x42000, Size: 900}
	r.run(t, func(p *sim.Proc) {
		iovaAddr, err := r.pool.AcquireShadow(p, osBuf, 900, iommu.PermRW)
		if err != nil {
			t.Fatal(err)
		}
		got, err := r.pool.FindShadow(p, iovaAddr)
		if err != nil {
			t.Fatal(err)
		}
		if got != osBuf {
			t.Errorf("FindShadow = %+v, want %+v", got, osBuf)
		}
		if err := r.pool.ReleaseShadow(p, iovaAddr); err != nil {
			t.Fatal(err)
		}
	})
}

func TestPoolErrors(t *testing.T) {
	r := newRig(t, defaultCfg(1))
	r.run(t, func(p *sim.Proc) {
		if _, err := r.pool.Acquire(p, mem.Buf{}, 0, iommu.PermRead); err == nil {
			t.Error("zero-size acquire should fail")
		}
		if _, err := r.pool.Acquire(p, mem.Buf{}, 1<<20, iommu.PermRead); err != ErrTooBig {
			t.Errorf("oversize acquire should return ErrTooBig, got %v", err)
		}
		if _, err := r.pool.Acquire(p, mem.Buf{}, 100, iommu.Perm(0)); err == nil {
			t.Error("invalid rights should fail")
		}
		if _, err := r.pool.Find(p, iommu.IOVA(1<<47|1<<40)); err == nil {
			t.Error("find of never-allocated shadow IOVA should fail")
		}
		if _, err := r.pool.Find(p, iommu.IOVA(0x5000)); err == nil {
			t.Error("find of unknown fallback IOVA should fail")
		}
	})
}

func TestPoolMemoryAccountingAndTrim(t *testing.T) {
	r := newRig(t, defaultCfg(1))
	r.run(t, func(p *sim.Proc) {
		var metas []*Meta
		for i := 0; i < 8; i++ {
			m, _ := r.pool.Acquire(p, mem.Buf{Addr: 1, Size: 10}, 65536, iommu.PermWrite)
			metas = append(metas, m)
		}
		st := r.pool.Stats()
		if st.BytesByClass[1] != 8*65536 {
			t.Errorf("64K class bytes = %d", st.BytesByClass[1])
		}
		if st.TotalBytes() != 8*65536 {
			t.Errorf("total = %d", st.TotalBytes())
		}
		for _, m := range metas {
			r.pool.Release(p, m)
		}
		freed := r.pool.Trim(p, 0)
		if freed != 8*65536 {
			t.Errorf("trim freed %d", freed)
		}
		if r.pool.Stats().TotalBytes() != 0 {
			t.Errorf("footprint after trim = %d", r.pool.Stats().TotalBytes())
		}
		// Trimmed buffers' IOVAs must no longer translate.
		for _, m := range metas {
			if _, _, f := r.u.Translate(1, m.IOVA(), iommu.PermWrite); f == nil {
				t.Error("trimmed buffer still mapped")
			}
		}
		// And the pool still works afterwards.
		if _, err := r.pool.Acquire(p, mem.Buf{Addr: 1, Size: 10}, 65536, iommu.PermWrite); err != nil {
			t.Errorf("acquire after trim failed: %v", err)
		}
	})
}

func TestPoolManyCoresConcurrent(t *testing.T) {
	const cores = 8
	r := newRig(t, defaultCfg(cores))
	for c := 0; c < cores; c++ {
		r.runOn(t, c, func(p *sim.Proc) {
			var live []*Meta
			for i := 0; i < 200; i++ {
				m, err := r.pool.Acquire(p, mem.Buf{Addr: 1, Size: 10}, 1500, iommu.PermWrite)
				if err != nil {
					t.Error(err)
					return
				}
				if m.core != p.Core() {
					t.Error("acquired buffer from another core's list")
					return
				}
				live = append(live, m)
				p.Work("w", 50)
				if len(live) > 16 {
					r.pool.Release(p, live[0])
					live = live[1:]
				}
			}
		})
	}
	r.eng.Run(1 << 40)
	r.eng.Stop()
	st := r.pool.Stats()
	if st.Acquires != cores*200 {
		t.Errorf("acquires = %d", st.Acquires)
	}
}

func TestPoolConfigValidation(t *testing.T) {
	eng := sim.NewEngine()
	m := mem.New(1)
	u := iommu.New(eng, m, cycles.Default())
	bad := []Config{
		{SizeClasses: []int{}, Cores: 1, Domains: 1},
		{SizeClasses: []int{4096, 4096}, Cores: 1, Domains: 1},
		{SizeClasses: []int{4096}, Cores: 0, Domains: 1},
		{SizeClasses: []int{4096}, Cores: 500, Domains: 1},
		{SizeClasses: []int{3000}, Cores: 1, Domains: 1},
	}
	for i, cfg := range bad {
		if _, err := NewPool(eng, m, u, cycles.Default(), 1, cfg); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
}

// FuzzIOVADecode ensures decoding arbitrary IOVAs never panics and that
// every accepted decode re-encodes to the same base IOVA.
func FuzzIOVADecode(f *testing.F) {
	f.Add(uint64(0))
	f.Add(uint64(1) << 47)
	f.Add(^uint64(0))
	f.Add(uint64(0x804000001000))
	f.Fuzz(func(t *testing.T, raw uint64) {
		enc, _ := newEncoding([]int{4096, 65536})
		v := iommu.IOVA(raw & (1<<48 - 1))
		d, err := enc.decode(v)
		if err != nil {
			return
		}
		back := enc.encode(d.core, d.rights, d.class, d.index)
		if uint64(back)+uint64(d.offset) != uint64(v) {
			t.Fatalf("decode(%#x) -> %+v does not re-encode (got %#x + %d)",
				raw, d, uint64(back), d.offset)
		}
	})
}
