// Package shadow implements the paper's shadow DMA buffer pool (§5.3): a
// fast, scalable, NUMA-aware segregated free-list allocator of permanently
// IOMMU-mapped buffers, with the IOVA metadata encoding of Figure 2 and the
// fallback path for metadata-array exhaustion.
package shadow

import (
	"fmt"
	"math/bits"

	"repro/internal/iommu"
)

// IOVA layout (paper Figure 2, generalized to >2 size classes):
//
//	bit 47      : 1  => this IOVA encodes shadow-buffer metadata
//	bits 40..46 : owner core id (7 bits)
//	bits 38..39 : access rights (r / w / rw)
//	bits 37-..37: size class (1 bit for two classes, more if configured)
//	bits 0..    : metadata index << log2(classSize) | offset-in-buffer
//
// The half of the IOVA space with bit 47 clear is the fallback region,
// allocated by an external scalable IOVA allocator with an external hash
// table for metadata (paper §5.3, "IOVA encodings").
const (
	shadowFlagShift = 47
	coreShift       = 40
	coreBits        = 7
	rightsShift     = 38
	rightsBits      = 2
)

// rightsIndex maps a permission to its free-list rights class.
func rightsIndex(r iommu.Perm) (int, error) {
	switch r {
	case iommu.PermRead:
		return 0, nil
	case iommu.PermWrite:
		return 1, nil
	case iommu.PermRW:
		return 2, nil
	}
	return 0, fmt.Errorf("shadow: invalid rights %v", r)
}

// rightsOf is the inverse of rightsIndex.
var rightsOf = [3]iommu.Perm{iommu.PermRead, iommu.PermWrite, iommu.PermRW}

// encoding precomputes the field layout for a configured set of size
// classes.
type encoding struct {
	classBits  int
	classShift int
	log2Class  []int // per class index
}

func newEncoding(classes []int) (*encoding, error) {
	if len(classes) == 0 {
		return nil, fmt.Errorf("shadow: no size classes")
	}
	cb := bits.Len(uint(len(classes) - 1))
	if cb == 0 {
		cb = 1
	}
	e := &encoding{classBits: cb, classShift: rightsShift - cb}
	for _, c := range classes {
		if c <= 0 || c&(c-1) != 0 {
			return nil, fmt.Errorf("shadow: size class %d not a power of two", c)
		}
		e.log2Class = append(e.log2Class, bits.TrailingZeros(uint(c)))
	}
	return e, nil
}

// maxIndex returns the largest metadata index encodable for a class.
func (e *encoding) maxIndex(class int) uint64 {
	return uint64(1) << (e.classShift - e.log2Class[class])
}

// encode builds a shadow IOVA. offset is the byte offset within the shadow
// buffer (zero for the buffer's base IOVA).
func (e *encoding) encode(core, rights, class int, index uint64) iommu.IOVA {
	v := uint64(1) << shadowFlagShift
	v |= uint64(core) << coreShift
	v |= uint64(rights) << rightsShift
	v |= uint64(class) << e.classShift
	v |= index << e.log2Class[class]
	return iommu.IOVA(v)
}

// decoded holds the fields extracted from a shadow IOVA.
type decoded struct {
	core   int
	rights int
	class  int
	index  uint64
	offset int
}

// IsShadow reports whether an IOVA lies in the shadow (metadata-encoding)
// half of the address space.
func IsShadow(v iommu.IOVA) bool {
	return uint64(v)>>shadowFlagShift&1 == 1
}

// decode extracts the metadata fields from a shadow IOVA. When decoding we
// "first identify the appropriate size class and then extract the metadata
// index" (paper §5.3), because the class determines how many low bits are
// buffer offset.
func (e *encoding) decode(v iommu.IOVA) (decoded, error) {
	if !IsShadow(v) {
		return decoded{}, fmt.Errorf("shadow: %#x is not a shadow IOVA", uint64(v))
	}
	d := decoded{
		core:   int(uint64(v) >> coreShift & (1<<coreBits - 1)),
		rights: int(uint64(v) >> rightsShift & (1<<rightsBits - 1)),
		class:  int(uint64(v) >> e.classShift & (1<<e.classBits - 1)),
	}
	if d.class >= len(e.log2Class) {
		return decoded{}, fmt.Errorf("shadow: IOVA %#x encodes unknown class %d", uint64(v), d.class)
	}
	if d.rights >= len(rightsOf) {
		return decoded{}, fmt.Errorf("shadow: IOVA %#x encodes unknown rights %d", uint64(v), d.rights)
	}
	lc := e.log2Class[d.class]
	d.offset = int(uint64(v) & (1<<lc - 1))
	d.index = uint64(v) & (1<<e.classShift - 1) >> lc
	return d, nil
}
