package shadow

import (
	"math/rand"
	"testing"

	"repro/internal/iommu"
	"repro/internal/mem"
	"repro/internal/sim"
)

// TestPoolRandomizedInvariants drives random acquire/find/release/trim
// traffic across multiple cores and checks the pool's global invariants
// after every step:
//
//  1. live IOVAs are unique and Find is a correct inverse of Acquire,
//  2. every page backing shadow buffers holds only same-rights buffers,
//  3. a live shadow buffer is always device-accessible with exactly its
//     rights,
//  4. footprint accounting matches the allocations made.
func TestPoolRandomizedInvariants(t *testing.T) {
	cfg := Config{
		SizeClasses:  []int{512, 4096, 65536},
		MaxPerClass:  64, // small, to exercise the fallback path too
		Cores:        4,
		Domains:      2,
		DomainOfCore: func(c int) int { return c / 2 },
	}
	r := newRig(t, cfg)
	rights := []iommu.Perm{iommu.PermRead, iommu.PermWrite, iommu.PermRW}

	type liveBuf struct {
		m *Meta
	}
	live := make(map[iommu.IOVA]*liveBuf)
	pageRights := map[uint64]iommu.Perm{}

	for core := 0; core < cfg.Cores; core++ {
		core := core
		r.runOn(t, core, func(p *sim.Proc) {
			rng := rand.New(rand.NewSource(int64(100 + core)))
			var mine []*Meta
			for step := 0; step < 400; step++ {
				if len(mine) > 0 && rng.Intn(100) < 45 {
					i := rng.Intn(len(mine))
					m := mine[i]
					mine[i] = mine[len(mine)-1]
					mine = mine[:len(mine)-1]
					delete(live, m.IOVA())
					r.pool.Release(p, m)
					continue
				}
				size := 1 + rng.Intn(60000)
				rt := rights[rng.Intn(3)]
				m, err := r.pool.Acquire(p, mem.Buf{Addr: 0x1000, Size: size}, size, rt)
				if err != nil {
					t.Errorf("core %d: acquire(%d): %v", core, size, err)
					return
				}
				// Invariant 1: IOVA uniqueness among live buffers.
				if _, dup := live[m.IOVA()]; dup {
					t.Errorf("duplicate live IOVA %#x", uint64(m.IOVA()))
					return
				}
				live[m.IOVA()] = &liveBuf{m: m}
				mine = append(mine, m)
				// Find is an inverse of Acquire.
				got, err := r.pool.Find(p, m.IOVA())
				if err != nil || got != m {
					t.Errorf("find(%#x) = %v, %v", uint64(m.IOVA()), got, err)
					return
				}
				// Invariant 2: same rights per physical page.
				for pfn := m.Shadow().Addr.PFN(); pfn <= (m.Shadow().End() - 1).PFN(); pfn++ {
					if prev, ok := pageRights[pfn]; ok && prev != m.Rights() {
						t.Errorf("page %#x holds %v and %v buffers", pfn, prev, m.Rights())
						return
					}
					pageRights[pfn] = m.Rights()
				}
				// Invariant 3: device access matches rights exactly.
				if _, _, f := r.u.Translate(1, m.IOVA(), m.Rights()); f != nil {
					t.Errorf("live shadow buffer inaccessible: %v", f)
					return
				}
				if m.Rights() != iommu.PermRW {
					other := iommu.PermRead
					if m.Rights() == iommu.PermRead {
						other = iommu.PermWrite
					}
					if _, _, f := r.u.Translate(1, m.IOVA(), other); f == nil {
						t.Errorf("shadow buffer accessible with wrong rights")
						return
					}
				}
				p.Work("think", uint64(rng.Intn(500)))
			}
		})
	}
	r.eng.Run(1 << 50)
	r.eng.Stop()

	// Invariant 4: footprint accounting is consistent.
	st := r.pool.Stats()
	if st.TotalBytes() == 0 {
		t.Error("pool should have grown")
	}
	if st.Grows == 0 || st.Acquires == 0 || st.Releases == 0 {
		t.Errorf("stats look wrong: %+v", st)
	}
	if st.FallbackBuffers == 0 {
		t.Error("MaxPerClass=64 should have forced fallback allocations")
	}
	// Each grow of class c allocates max(classSize, PageSize) bytes;
	// verify the sum matches BytesByClass.
	var total uint64
	for _, b := range st.BytesByClass {
		total += b
	}
	if total != st.TotalBytes() {
		t.Errorf("footprint accounting inconsistent: %d vs %d", total, st.TotalBytes())
	}
}

// TestPoolFallbackAndPrimaryCoexist checks Find across a mixed population
// of encoded and fallback IOVAs after heavy churn.
func TestPoolFallbackAndPrimaryCoexist(t *testing.T) {
	cfg := defaultCfg(1)
	cfg.MaxPerClass = 8
	r := newRig(t, cfg)
	r.run(t, func(p *sim.Proc) {
		var metas []*Meta
		for i := 0; i < 50; i++ {
			m, err := r.pool.Acquire(p, mem.Buf{Addr: 1, Size: 8}, 4096, iommu.PermRW)
			if err != nil {
				t.Fatal(err)
			}
			metas = append(metas, m)
		}
		primary, fallback := 0, 0
		for _, m := range metas {
			if m.Fallback() {
				fallback++
			} else {
				primary++
			}
			got, err := r.pool.Find(p, m.IOVA())
			if err != nil || got != m {
				t.Fatalf("find failed for %v-path IOVA %#x", m.Fallback(), uint64(m.IOVA()))
			}
		}
		if primary != 8 || fallback != 42 {
			t.Errorf("primary=%d fallback=%d, want 8/42", primary, fallback)
		}
		// Release all and re-acquire: both kinds must be reusable.
		for _, m := range metas {
			r.pool.Release(p, m)
		}
		for i := 0; i < 50; i++ {
			if _, err := r.pool.Acquire(p, mem.Buf{Addr: 1, Size: 8}, 4096, iommu.PermRW); err != nil {
				t.Fatal(err)
			}
		}
		if r.pool.Stats().Grows != 50 {
			t.Errorf("reacquire should reuse, grows = %d", r.pool.Stats().Grows)
		}
	})
}
