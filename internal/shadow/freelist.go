package shadow

import (
	"repro/internal/iommu"
	"repro/internal/mem"
	"repro/internal/sim"
)

// Meta is a shadow buffer's metadata structure (paper Fig 2). While the
// buffer is free, Meta doubles as a node of its free list; while acquired,
// it records the OS buffer being shadowed so find_shadow can locate it.
// Metadata lives on the kernel side only — it is never IOMMU-mapped, so the
// device cannot touch it.
type Meta struct {
	core   int // owner core (the list it always returns to — stickiness)
	rights int
	class  int
	index  uint64
	isFB   bool // allocated through the fallback path

	iova   iommu.IOVA
	shadow mem.Buf // the permanently mapped shadow buffer
	osBuf  mem.Buf // associated OS buffer while acquired

	acquired bool
	next     *Meta
}

// IOVA returns the shadow buffer's base IOVA.
func (m *Meta) IOVA() iommu.IOVA { return m.iova }

// Shadow returns the shadow buffer.
func (m *Meta) Shadow() mem.Buf { return m.shadow }

// OSBuf returns the OS buffer currently associated with the shadow buffer.
func (m *Meta) OSBuf() mem.Buf { return m.osBuf }

// Rights returns the device access rights of the shadow buffer.
func (m *Meta) Rights() iommu.Perm { return rightsOf[m.rights] }

// Fallback reports whether the buffer was allocated via the fallback path.
func (m *Meta) Fallback() bool { return m.isFB }

// freeList is one segregated free list: buffers of one (core, class,
// rights) triple. Acquires pop the head and are performed only by the
// owner core, with no lock; releases append at the tail under a small tail
// lock that is co-located with the tail pointer (paper §5.3, "Free list
// synchronization"). Head and tail live on distinct cache lines so owner
// acquires do not bounce the releasers' line.
type freeList struct {
	tailLock *sim.Spinlock
	head     *Meta
	tail     *Meta
	size     int
}

// pop removes the head buffer (owner core only, lockless).
func (l *freeList) pop() *Meta {
	m := l.head
	if m == nil {
		return nil
	}
	l.head = m.next
	if l.head == nil {
		l.tail = nil
	}
	m.next = nil
	l.size--
	return m
}

// push appends a buffer at the tail, under the tail lock. If the list was
// empty the head is updated too — safe because an owner that found the
// list empty has already gone off to allocate a fresh buffer (paper §5.3).
func (l *freeList) push(p *sim.Proc, m *Meta) {
	l.tailLock.Lock(p)
	m.next = nil
	if l.tail == nil {
		l.head = m
		l.tail = m
	} else {
		l.tail.next = m
		l.tail = m
	}
	l.size++
	l.tailLock.Unlock(p)
}

// drain removes and returns every free buffer (memory-pressure trimming).
func (l *freeList) drain(p *sim.Proc) []*Meta {
	l.tailLock.Lock(p)
	var all []*Meta
	for m := l.head; m != nil; {
		next := m.next
		m.next = nil
		all = append(all, m)
		m = next
	}
	l.head, l.tail, l.size = nil, nil, 0
	l.tailLock.Unlock(p)
	return all
}
