package shadow

import (
	"runtime"
	"sync"
	"testing"

	"repro/internal/cycles"
	"repro/internal/iommu"
	"repro/internal/mem"
	"repro/internal/sim"
)

// TestPoolGrowTrimInterleaved interleaves growth (acquires past the
// free-list supply) with trims (memory-pressure reclaim) across cores,
// in one simulation. Trim destroys mappings of free buffers while other
// cores are acquiring; the invariants: no acquire ever fails, every
// live buffer stays device-accessible, and the footprint accounting
// never underflows.
func TestPoolGrowTrimInterleaved(t *testing.T) {
	const cores = 4
	cfg := Config{
		SizeClasses:  []int{4096, 65536},
		MaxPerClass:  16384,
		Cores:        cores,
		Domains:      2,
		DomainOfCore: func(c int) int { return c / 2 },
	}
	r := newRig(t, cfg)
	for c := 0; c < cores; c++ {
		core := c
		r.runOn(t, core, func(p *sim.Proc) {
			var live []*Meta
			for i := 0; i < 300; i++ {
				size := 1000
				if i%3 == 0 {
					size = 5000 // 64 KiB class: the one Trim reclaims
				}
				m, err := r.pool.Acquire(p, mem.Buf{Addr: 1, Size: size}, size, iommu.PermWrite)
				if err != nil {
					t.Errorf("core %d: acquire: %v", core, err)
					return
				}
				// A live buffer must be translatable with its rights even
				// if another core just trimmed its free siblings.
				if _, _, fault := r.u.Translate(1, m.IOVA(), iommu.PermWrite); fault != nil {
					t.Errorf("core %d: live shadow buffer not mapped: %v", core, fault)
					return
				}
				live = append(live, m)
				p.Work("w", 30)
				if len(live) > 8 {
					r.pool.Release(p, live[0])
					live = live[1:]
				}
				if i%50 == 49 {
					r.pool.Trim(p, core) // reclaim this core's free buffers
					p.Work("w", 100)
				}
			}
			for _, m := range live {
				r.pool.Release(p, m)
			}
			r.pool.Trim(p, core)
		})
	}
	r.eng.Run(1 << 40)
	r.eng.Stop()

	st := r.pool.Stats()
	if st.Acquires != cores*300 {
		t.Errorf("acquires = %d, want %d", st.Acquires, cores*300)
	}
	if st.Acquires != st.Releases {
		t.Errorf("acquires %d != releases %d after teardown", st.Acquires, st.Releases)
	}
	if st.Trims == 0 || st.Grows == 0 {
		t.Errorf("test exercised nothing: grows=%d trims=%d", st.Grows, st.Trims)
	}
	for class, b := range st.BytesByClass {
		if int64(b) < 0 {
			t.Errorf("class %d footprint underflowed: %d", class, b)
		}
	}
	// After a final trim on every core, all 64 KiB-class buffers were
	// free and must have been reclaimed.
	if got := st.BytesByClass[1]; got != 0 {
		t.Errorf("64 KiB class holds %d bytes after full trim", got)
	}
}

// TestPoolInstancesParallelHost runs independent pool instances in real
// goroutines (one simulation each) doing grow/trim churn. The simulated
// world is single-threaded per engine, so any data race this catches —
// under `go test -race` — is hidden shared state in the package itself.
func TestPoolInstancesParallelHost(t *testing.T) {
	workers := runtime.GOMAXPROCS(0)
	if workers > 8 {
		workers = 8
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			eng := sim.NewEngine()
			mm := mem.New(1)
			u := iommu.New(eng, mm, cycles.Default())
			pool, err := NewPool(eng, mm, u, cycles.Default(), 1, defaultCfg(2))
			if err != nil {
				t.Errorf("worker %d: %v", seed, err)
				return
			}
			r := &poolRig{eng: eng, mem: mm, u: u, pool: pool}
			for c := 0; c < 2; c++ {
				core := c
				r.runOn(t, core, func(p *sim.Proc) {
					var live []*Meta
					for i := 0; i < 100; i++ {
						size := 512 + (i+seed)%4096
						m, err := r.pool.Acquire(p, mem.Buf{Addr: 1, Size: size}, size, iommu.PermRW)
						if err != nil {
							t.Errorf("worker %d: %v", seed, err)
							return
						}
						live = append(live, m)
						p.Work("w", 20)
						if len(live) > 4 {
							r.pool.Release(p, live[0])
							live = live[1:]
						}
						if i%25 == 24 {
							r.pool.Trim(p, core)
						}
					}
					for _, m := range live {
						r.pool.Release(p, m)
					}
				})
			}
			r.eng.Run(1 << 40)
			r.eng.Stop()
			if st := r.pool.Stats(); st.Acquires != st.Releases {
				t.Errorf("worker %d: acquires %d != releases %d", seed, st.Acquires, st.Releases)
			}
		}(w)
	}
	wg.Wait()
}
