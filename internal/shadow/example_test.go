package shadow_test

import (
	"fmt"

	"repro/internal/cycles"
	"repro/internal/iommu"
	"repro/internal/mem"
	"repro/internal/shadow"
	"repro/internal/sim"
)

// ExamplePool demonstrates the paper's Table 2 API: acquire_shadow,
// find_shadow, release_shadow.
func ExamplePool() {
	eng := sim.NewEngine()
	m := mem.New(1)
	u := iommu.New(eng, m, cycles.Default())
	cfg := shadow.DefaultConfig(1, 1, func(int) int { return 0 })
	pool, _ := shadow.NewPool(eng, m, u, cycles.Default(), 1, cfg)

	eng.Spawn("driver", 0, 0, func(p *sim.Proc) {
		osBuf := mem.Buf{Addr: 0x1000, Size: 1500}
		addr, _ := pool.AcquireShadow(p, osBuf, 1500, iommu.PermWrite)
		fmt.Printf("shadow IOVA has MSB set: %v\n", shadow.IsShadow(addr))

		found, _ := pool.FindShadow(p, addr)
		fmt.Printf("find_shadow returns the OS buffer: %v\n", found == osBuf)

		pool.ReleaseShadow(p, addr)
		fmt.Printf("pool footprint: %d KB\n", pool.Stats().TotalBytes()/1024)
	})
	eng.Run(1 << 30)
	eng.Stop()
	// Output:
	// shadow IOVA has MSB set: true
	// find_shadow returns the OS buffer: true
	// pool footprint: 4 KB
}
