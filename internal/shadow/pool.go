package shadow

import (
	"fmt"

	"repro/internal/cycles"
	"repro/internal/iommu"
	"repro/internal/iova"
	"repro/internal/mem"
	"repro/internal/sim"
)

// Config parameterizes a shadow buffer pool.
type Config struct {
	// SizeClasses are the shadow buffer sizes, ascending powers of two.
	// The paper's prototype uses {4 KiB, 64 KiB}.
	SizeClasses []int
	// MaxPerClass bounds the metadata array of each (NUMA domain, class);
	// beyond it the fallback path kicks in. The paper uses "a more
	// practical bound of 16K buffers".
	MaxPerClass uint64
	// Cores is the number of CPU cores (≤128, per the 7-bit core field).
	Cores int
	// Domains is the number of NUMA domains.
	Domains int
	// DomainOfCore maps a core to its NUMA domain.
	DomainOfCore func(core int) int
	// DisableFallback hard-bounds the pool: when the metadata array of a
	// (domain, class) is exhausted, Acquire fails with ErrPoolExhausted
	// instead of spilling into the hash-table fallback path. This turns
	// pool pressure into a typed, policy-visible condition — the
	// degradation ladder in internal/core reacts to it — and gives tests
	// and chaos scenarios a deterministic way to starve the pool.
	DisableFallback bool
}

// DefaultConfig returns the paper prototype's configuration.
func DefaultConfig(cores, domains int, domainOf func(int) int) Config {
	return Config{
		SizeClasses:  []int{4096, 65536},
		MaxPerClass:  16384,
		Cores:        cores,
		Domains:      domains,
		DomainOfCore: domainOf,
	}
}

// PoolStats counts pool activity and footprint.
type PoolStats struct {
	Acquires, Releases, Finds uint64
	Grows                     uint64
	CacheHits                 uint64
	ListHits                  uint64
	FallbackBuffers           uint64
	Trims                     uint64
	// BytesByClass is the memory currently backing shadow buffers, per
	// size class (the §6 "memory consumption" measurement).
	BytesByClass []uint64
}

// TotalBytes returns the pool's total shadow-buffer footprint.
func (s PoolStats) TotalBytes() uint64 {
	var t uint64
	for _, b := range s.BytesByClass {
		t += b
	}
	return t
}

// Pool is a per-device shadow DMA buffer pool (paper Table 2 / §5.3).
type Pool struct {
	eng   *sim.Engine
	mem   *mem.Memory
	u     *iommu.IOMMU
	costs *cycles.Costs
	dev   iommu.DeviceID

	cfg Config
	enc *encoding

	// lists[core][class][rights]
	lists [][][3]*freeList
	// cache[core][class][rights]: private per-core cache of chunk
	// remainders (never contended, no lock).
	cache [][][3][]*Meta

	domains []*domainState
	fb      *fallbackState

	stats PoolStats
}

type domainState struct {
	lock  *sim.Spinlock // protects the next-unused metadata index and spare
	metas [][]*Meta     // [class] append-only metadata arrays
	// spare[class] holds index-span bases reclaimed by Trim or by grow's
	// failure unwind, available for reuse. Spans per class have a fixed
	// length (the class's chunks-per-page), so any spare base fits any
	// later reservation of the same class.
	spare [][]uint64
	arena metaArena
}

// metaArena carves Meta structs out of chunked slabs instead of
// allocating each individually: a 128-core machine creates hundreds of
// thousands of Metas during warm-up, and slab-backed headers keep them
// dense in the host heap. Pointers are stable — chunks are never
// reallocated — and the modeled free-list semantics are untouched (a Meta
// is a Meta regardless of where its storage lives).
type metaArena struct {
	chunk []Meta
	used  int
}

const metaChunk = 512

func (a *metaArena) alloc() *Meta {
	if a.used == len(a.chunk) {
		a.chunk = make([]Meta, metaChunk)
		a.used = 0
	}
	m := &a.chunk[a.used]
	a.used++
	return m
}

// reserve claims a span of `chunks` metadata indices for one class,
// preferring reclaimed spans. ok is false when the class is exhausted
// (caller must take the fallback path).
func (ds *domainState) reserve(proc *sim.Proc, class int, chunks, maxPerClass, maxIndex uint64) (base uint64, ok bool) {
	ds.lock.Lock(proc)
	defer ds.lock.Unlock(proc)
	if n := len(ds.spare[class]); n > 0 {
		base = ds.spare[class][n-1]
		ds.spare[class] = ds.spare[class][:n-1]
		return base, true
	}
	base = uint64(len(ds.metas[class]))
	if base+chunks > maxPerClass || base+chunks > maxIndex {
		return 0, false
	}
	for i := uint64(0); i < chunks; i++ {
		ds.metas[class] = append(ds.metas[class], nil) // installed by grow
	}
	return base, true
}

// unreserve returns a reserved span, clearing its slots. A span still at
// the array tail is truncated away; otherwise it is parked on the spare
// list for the next reservation.
func (ds *domainState) unreserve(proc *sim.Proc, class int, base, chunks uint64) {
	ds.lock.Lock(proc)
	defer ds.lock.Unlock(proc)
	for i := uint64(0); i < chunks; i++ {
		ds.metas[class][base+i] = nil
	}
	if uint64(len(ds.metas[class])) == base+chunks {
		ds.metas[class] = ds.metas[class][:base]
		return
	}
	ds.spare[class] = append(ds.spare[class], base)
}

type fallbackState struct {
	lock  *sim.Spinlock
	table map[iommu.IOVA]*Meta
	alloc *iova.MagazineAllocator
	arena metaArena // guarded by lock
}

// lockCosts builds the pool's spinlocks from the cost model.
func lockCosts(c *cycles.Costs) sim.LockCosts {
	return sim.LockCosts{
		Uncontended:      c.LockUncontended,
		HandoffBase:      c.LockHandoffBase,
		HandoffPerWaiter: c.LockHandoffPerWaiter,
	}
}

// NewPool creates the shadow buffer pool for one device.
func NewPool(eng *sim.Engine, m *mem.Memory, u *iommu.IOMMU, costs *cycles.Costs, dev iommu.DeviceID, cfg Config) (*Pool, error) {
	// Validate ordering before newEncoding consumes the classes: the
	// encoding derives per-class bit layouts and must see a sane config.
	for i := 1; i < len(cfg.SizeClasses); i++ {
		if cfg.SizeClasses[i] <= cfg.SizeClasses[i-1] {
			return nil, fmt.Errorf("shadow: size classes must ascend")
		}
	}
	enc, err := newEncoding(cfg.SizeClasses)
	if err != nil {
		return nil, err
	}
	if cfg.Cores < 1 || cfg.Cores > 1<<coreBits {
		return nil, fmt.Errorf("shadow: %d cores outside [1,%d]", cfg.Cores, 1<<coreBits)
	}
	if cfg.MaxPerClass == 0 {
		cfg.MaxPerClass = 16384
	}
	if cfg.DomainOfCore == nil {
		cfg.DomainOfCore = func(int) int { return 0 }
	}
	if cfg.Domains < 1 {
		cfg.Domains = 1
	}
	p := &Pool{
		eng: eng, mem: m, u: u, costs: costs, dev: dev,
		cfg: cfg, enc: enc,
	}
	p.stats.BytesByClass = make([]uint64, len(cfg.SizeClasses))
	p.lists = make([][][3]*freeList, cfg.Cores)
	p.cache = make([][][3][]*Meta, cfg.Cores)
	for c := 0; c < cfg.Cores; c++ {
		p.lists[c] = make([][3]*freeList, len(cfg.SizeClasses))
		p.cache[c] = make([][3][]*Meta, len(cfg.SizeClasses))
		for cl := range cfg.SizeClasses {
			for r := 0; r < 3; r++ {
				p.lists[c][cl][r] = &freeList{
					tailLock: sim.NewSpinlock(
						fmt.Sprintf("shpool-c%d-s%d-r%d", c, cl, r),
						cycles.TagSpinlock, lockCosts(costs)),
				}
			}
		}
	}
	p.domains = make([]*domainState, cfg.Domains)
	for d := range p.domains {
		p.domains[d] = &domainState{
			lock:  sim.NewSpinlock(fmt.Sprintf("shmeta-d%d", d), cycles.TagSpinlock, lockCosts(costs)),
			metas: make([][]*Meta, len(cfg.SizeClasses)),
			spare: make([][]uint64, len(cfg.SizeClasses)),
		}
	}
	// Fallback IOVAs come from the MSB-clear half of the space, via an
	// external scalable allocator [42].
	p.fb = &fallbackState{
		lock:  sim.NewSpinlock("shfb", cycles.TagSpinlock, lockCosts(costs)),
		table: make(map[iommu.IOVA]*Meta),
		alloc: iova.NewMagazine(cfg.Cores, 1, 1<<(shadowFlagShift-mem.PageShift), 64),
	}
	return p, nil
}

// Stats returns a snapshot of the pool counters.
func (p *Pool) Stats() PoolStats { return p.stats }

// MaxClass returns the largest shadow buffer size the pool serves; larger
// DMA buffers must use the huge-buffer hybrid (§5.5).
func (p *Pool) MaxClass() int { return p.cfg.SizeClasses[len(p.cfg.SizeClasses)-1] }

// ErrTooBig is returned when the requested size exceeds the largest class.
var ErrTooBig = fmt.Errorf("shadow: buffer exceeds largest size class")

// ErrPoolExhausted is returned when the pool cannot produce a shadow
// buffer: backing memory allocation failed, the fallback IOVA space ran
// dry, or the metadata arrays filled with DisableFallback set. It wraps
// the underlying cause, so errors.Is works on both this sentinel and the
// cause (e.g. mem.ErrInjectedAllocFail). Callers treat it as a pressure
// signal, not a fatal error — see the degradation ladder in internal/core.
var ErrPoolExhausted = fmt.Errorf("shadow: pool exhausted")

// classFor returns the smallest class index fitting size.
func (p *Pool) classFor(size int) (int, error) {
	for i, c := range p.cfg.SizeClasses {
		if size <= c {
			return i, nil
		}
	}
	return 0, ErrTooBig
}

// Acquire takes a shadow buffer of at least size bytes with the given
// device rights from the calling core's pool, associating it with osBuf.
// It returns the buffer's metadata; the IOVA to hand to the device is
// meta.IOVA(). (Table 2: acquire_shadow.)
func (p *Pool) Acquire(proc *sim.Proc, osBuf mem.Buf, size int, rights iommu.Perm) (*Meta, error) {
	if size <= 0 {
		return nil, fmt.Errorf("shadow: acquire of %d bytes", size)
	}
	class, err := p.classFor(size)
	if err != nil {
		return nil, err
	}
	ri, err := rightsIndex(rights)
	if err != nil {
		return nil, err
	}
	core := proc.Core()
	if core < 0 || core >= p.cfg.Cores {
		return nil, fmt.Errorf("shadow: core %d out of range", core)
	}
	proc.ChargeSpan("pool-acquire", cycles.TagCopyMgmt, p.costs.ShadowAcquire)

	// 1) Private cache (chunk remainders) — no synchronization at all.
	if stack := p.cache[core][class][ri]; len(stack) > 0 {
		m := stack[len(stack)-1]
		p.cache[core][class][ri] = stack[:len(stack)-1]
		p.stats.CacheHits++
		return p.take(m, osBuf), nil
	}
	// 2) Owner free list head — lockless.
	if m := p.lists[core][class][ri].pop(); m != nil {
		p.stats.ListHits++
		return p.take(m, osBuf), nil
	}
	// 3) Grow: allocate, map and encode fresh shadow buffers.
	m, err := p.grow(proc, core, class, ri)
	if err != nil {
		return nil, err
	}
	return p.take(m, osBuf), nil
}

func (p *Pool) take(m *Meta, osBuf mem.Buf) *Meta {
	// Counted here, the single success point: a failed grow must not
	// inflate Acquires, or Acquires-Releases "leaks" phantom buffers.
	p.stats.Acquires++
	m.acquired = true
	m.osBuf = osBuf
	return m
}

// grow allocates one page-quantity of shadow buffers on the core's NUMA
// domain, maps them permanently in the IOMMU, and returns one (caching the
// remaining chunks privately). Paper §5.3, "Shadow buffer allocation".
func (p *Pool) grow(proc *sim.Proc, core, class, ri int) (*Meta, error) {
	proc.ChargeSpan("pool-grow", cycles.TagCopyMgmt, p.costs.ShadowGrow)
	p.stats.Grows++
	domain := p.cfg.DomainOfCore(core)
	classSize := p.cfg.SizeClasses[class]

	bytes := classSize
	if bytes < mem.PageSize {
		bytes = mem.PageSize
	}
	pages := bytes / mem.PageSize
	phys, err := p.mem.AllocPages(domain, pages)
	if err != nil {
		return nil, fmt.Errorf("%w: grow class %d: %w", ErrPoolExhausted, class, err)
	}

	chunks := bytes / classSize // >1 only for sub-page classes
	ds := p.domains[domain]

	// Reserve metadata indices (lock-protected next-unused index; grows
	// are infrequent so this lock is uncontended — paper footnote 5).
	base, reserved := ds.reserve(proc, class, uint64(chunks), p.cfg.MaxPerClass, p.enc.maxIndex(class))

	var metas []*Meta
	if !reserved {
		if p.cfg.DisableFallback {
			_ = p.mem.FreePages(phys, pages)
			return nil, fmt.Errorf("%w: class %d metadata full (fallback disabled)",
				ErrPoolExhausted, class)
		}
		metas, err = p.growFallback(proc, core, class, ri, phys, chunks)
		if err != nil {
			_ = p.mem.FreePages(phys, pages)
			return nil, err
		}
	} else {
		// Map the new buffers permanently, BEFORE installing metadata:
		// on failure nothing is visible and the reservation unwinds.
		// Chunked sub-page buffers of one physical page occupy
		// consecutive indices, so their IOVAs tile whole IOVA pages that
		// map to the same physical page — and every IOVA page holds only
		// same-rights shadow buffers (the byte-granularity guarantee).
		first := p.enc.encode(core, ri, class, base)
		span := chunks * classSize
		if err := p.u.Map(p.dev, first, phys, span, rightsOf[ri]); err != nil {
			ds.unreserve(proc, class, base, uint64(chunks))
			_ = p.mem.FreePages(phys, pages)
			return nil, err
		}
		metas = make([]*Meta, chunks)
		for i := 0; i < chunks; i++ {
			idx := base + uint64(i)
			m := ds.arena.alloc()
			*m = Meta{
				core: core, rights: ri, class: class, index: idx,
				iova:   p.enc.encode(core, ri, class, idx),
				shadow: mem.Buf{Addr: phys + mem.Phys(i*classSize), Size: classSize},
			}
			ds.metas[class][idx] = m
			metas[i] = m
		}
	}
	p.stats.BytesByClass[class] += uint64(bytes)

	// One buffer is returned; the rest go to the private cache.
	p.cache[core][class][ri] = append(p.cache[core][class][ri], metas[1:]...)
	return metas[0], nil
}

// growFallback services a grow when the metadata array is exhausted: IOVAs
// come from the external allocator and metadata goes to the hash table
// (paper §5.3, fallback half of the IOVA space).
func (p *Pool) growFallback(proc *sim.Proc, core, class, ri int, phys mem.Phys, chunks int) ([]*Meta, error) {
	classSize := p.cfg.SizeClasses[class]
	span := chunks * classSize
	pages := (span + mem.PageSize - 1) / mem.PageSize
	proc.ChargeSpan("pool-grow", cycles.TagCopyMgmt, p.costs.MagazineAlloc)
	base, err := p.fb.alloc.Alloc(core, pages)
	if err != nil {
		return nil, fmt.Errorf("%w: fallback iova: %w", ErrPoolExhausted, err)
	}
	if err := p.u.Map(p.dev, base, phys, span, rightsOf[ri]); err != nil {
		// Return the IOVA range, or the allocator leaks it forever.
		_ = p.fb.alloc.Free(core, base, pages)
		return nil, err
	}
	metas := make([]*Meta, chunks)
	p.fb.lock.Lock(proc)
	for i := 0; i < chunks; i++ {
		m := p.fb.arena.alloc()
		*m = Meta{
			core: core, rights: ri, class: class, isFB: true,
			iova:   base + iommu.IOVA(i*classSize),
			shadow: mem.Buf{Addr: phys + mem.Phys(i*classSize), Size: classSize},
		}
		p.fb.table[m.iova] = m
		metas[i] = m
	}
	p.fb.lock.Unlock(proc)
	p.stats.FallbackBuffers += uint64(chunks)
	return metas, nil
}

// Find locates the metadata of the shadow buffer whose base IOVA is addr,
// in O(1) via the IOVA encoding (Table 2: find_shadow).
func (p *Pool) Find(proc *sim.Proc, addr iommu.IOVA) (*Meta, error) {
	proc.ChargeSpan("pool-find", cycles.TagCopyMgmt, p.costs.ShadowFind)
	p.stats.Finds++
	if !IsShadow(addr) {
		// Fallback half: external hash table.
		p.fb.lock.Lock(proc)
		m := p.fb.table[addr]
		p.fb.lock.Unlock(proc)
		if m == nil {
			return nil, fmt.Errorf("shadow: no fallback buffer at %#x", uint64(addr))
		}
		return m, nil
	}
	d, err := p.enc.decode(addr)
	if err != nil {
		return nil, err
	}
	if d.core >= p.cfg.Cores {
		return nil, fmt.Errorf("shadow: IOVA %#x encodes core %d out of range", uint64(addr), d.core)
	}
	ds := p.domains[p.cfg.DomainOfCore(d.core)]
	if d.class >= len(ds.metas) || d.index >= uint64(len(ds.metas[d.class])) {
		return nil, fmt.Errorf("shadow: IOVA %#x has no metadata", uint64(addr))
	}
	m := ds.metas[d.class][d.index]
	if m == nil {
		return nil, fmt.Errorf("shadow: IOVA %#x metadata reserved but unset", uint64(addr))
	}
	return m, nil
}

// Release returns a shadow buffer to its owner core's free list. Shadow
// buffers are sticky: wherever they are released, they go home, keeping
// them NUMA-local and their IOMMU mapping unchanged forever (Table 2:
// release_shadow).
func (p *Pool) Release(proc *sim.Proc, m *Meta) {
	proc.ChargeSpan("pool-release", cycles.TagCopyMgmt, p.costs.ShadowRelease)
	p.stats.Releases++
	m.acquired = false
	m.osBuf = mem.Buf{}
	p.lists[m.core][m.class][m.rights].push(proc, m)
}

// AcquireShadow is the exact Table 2 API: it returns the IOVA directly.
func (p *Pool) AcquireShadow(proc *sim.Proc, osBuf mem.Buf, size int, rights iommu.Perm) (iommu.IOVA, error) {
	m, err := p.Acquire(proc, osBuf, size, rights)
	if err != nil {
		return 0, err
	}
	return m.iova, nil
}

// FindShadow is the exact Table 2 API: it returns the OS buffer associated
// with the shadow buffer at addr.
func (p *Pool) FindShadow(proc *sim.Proc, addr iommu.IOVA) (mem.Buf, error) {
	m, err := p.Find(proc, addr)
	if err != nil {
		return mem.Buf{}, err
	}
	return m.osBuf, nil
}

// ReleaseShadow is the exact Table 2 API, releasing by IOVA.
func (p *Pool) ReleaseShadow(proc *sim.Proc, addr iommu.IOVA) error {
	m, err := p.Find(proc, addr)
	if err != nil {
		return err
	}
	p.Release(proc, m)
	return nil
}

// Trim releases the free shadow buffers of page-or-larger classes on one
// core back to the system under memory pressure: their mappings are
// destroyed with a strict IOTLB invalidation (paper §5.3, "Memory
// consumption"). Sub-page chunked classes are skipped because sibling
// chunks may still be live.
func (p *Pool) Trim(proc *sim.Proc, core int) (freed uint64) {
	p.stats.Trims++
	for class, classSize := range p.cfg.SizeClasses {
		if classSize < mem.PageSize {
			continue
		}
		for ri := 0; ri < 3; ri++ {
			for _, m := range p.lists[core][class][ri].drain(proc) {
				pages := classSize / mem.PageSize
				if err := p.u.Unmap(p.dev, m.iova, classSize); err != nil {
					// Still mapped and still usable: push it back on
					// the free list instead of stranding it forever
					// unreachable (drained but never re-listed).
					p.lists[core][class][ri].push(proc, m)
					continue
				}
				q := p.u.Queue
				q.Lock.Lock(proc)
				done := q.SubmitPages(proc, p.dev, m.iova.Page(), uint64(pages))
				q.WaitRecover(proc, done)
				q.Lock.Unlock(proc)
				// Once unmapped the buffer has left the pool whatever
				// FreePages says, so the footprint shrinks either way;
				// only pages actually returned count as freed.
				p.stats.BytesByClass[class] -= uint64(classSize)
				if err := p.mem.FreePages(m.shadow.Addr, pages); err == nil {
					freed += uint64(classSize)
				}
				if m.isFB {
					p.fb.lock.Lock(proc)
					delete(p.fb.table, m.iova)
					p.fb.lock.Unlock(proc)
					_ = p.fb.alloc.Free(core, m.iova, pages)
				} else {
					// Recycle the metadata index so a later grow can
					// reuse it (a nil-and-forget slot is a slow leak of
					// the bounded per-class index space).
					ds := p.domains[p.cfg.DomainOfCore(m.core)]
					ds.unreserve(proc, m.class, m.index, 1)
				}
			}
		}
	}
	return freed
}
