package shadow

import (
	"strings"
	"testing"

	"repro/internal/cycles"
	"repro/internal/iommu"
	"repro/internal/mem"
	"repro/internal/sim"
)

// The grow/trim error paths are driven by making the simulated IOMMU and
// memory fail for real: Map fails on an already-mapped page, Unmap on an
// unmapped one, FreePages on a double free. The tests pre-arrange those
// conditions externally and assert the pool unwinds without leaking pages,
// metadata indices, fallback IOVAs or footprint accounting.

func TestNewPoolValidatesClassOrderFirst(t *testing.T) {
	eng := sim.NewEngine()
	m := mem.New(1)
	u := iommu.New(eng, m, cycles.Default())
	cfg := defaultCfg(1)
	cfg.SizeClasses = []int{65536, 4096} // descending
	_, err := NewPool(eng, m, u, cycles.Default(), 1, cfg)
	if err == nil {
		t.Fatal("descending size classes must be rejected")
	}
	if !strings.Contains(err.Error(), "ascend") {
		t.Errorf("want the ordering error, got: %v", err)
	}
	eng.Stop()
}

func TestGrowMapFailureUnwinds(t *testing.T) {
	r := newRig(t, defaultCfg(1))
	r.run(t, func(p *sim.Proc) {
		ri, err := rightsIndex(iommu.PermWrite)
		if err != nil {
			t.Fatal(err)
		}
		// Occupy the exact IOVA the first grow of the 64 KiB class will
		// encode, so its Map fails.
		predicted := r.pool.enc.encode(0, ri, 1, 0)
		ph, err := r.mem.AllocPages(0, 16)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.u.Map(1, predicted, ph, 65536, iommu.PermWrite); err != nil {
			t.Fatal(err)
		}
		before := r.mem.InUseBytes(0)

		if _, err := r.pool.Acquire(p, mem.Buf{}, 65536, iommu.PermWrite); err == nil {
			t.Fatal("acquire must fail while the IOVA is occupied")
		}
		if got := r.mem.InUseBytes(0); got != before {
			t.Errorf("pages leaked on failed grow: in-use %d -> %d", before, got)
		}
		if got := r.pool.Stats().BytesByClass[1]; got != 0 {
			t.Errorf("BytesByClass over-counted on failure: %d", got)
		}
		if got := len(r.pool.domains[0].metas[1]); got != 0 {
			t.Errorf("reservation not unwound: %d metadata slots", got)
		}

		// Clear the obstruction: the same index must be reusable.
		if err := r.u.Unmap(1, predicted, 65536); err != nil {
			t.Fatal(err)
		}
		m, err := r.pool.Acquire(p, mem.Buf{}, 65536, iommu.PermWrite)
		if err != nil {
			t.Fatalf("acquire after clearing: %v", err)
		}
		if m.index != 0 || m.iova != predicted {
			t.Errorf("index 0 not reused: index=%d", m.index)
		}
		if got := r.pool.Stats().BytesByClass[1]; got != 65536 {
			t.Errorf("BytesByClass after success = %d", got)
		}
	})
}

func TestGrowFallbackMapFailureUnwinds(t *testing.T) {
	cfg := defaultCfg(1)
	cfg.MaxPerClass = 1 // second 64 KiB grow exhausts metadata -> fallback
	r := newRig(t, cfg)
	r.run(t, func(p *sim.Proc) {
		m1, err := r.pool.Acquire(p, mem.Buf{}, 65536, iommu.PermWrite)
		if err != nil {
			t.Fatal(err)
		}
		if m1.isFB {
			t.Fatal("first buffer should use the encoded half")
		}
		m2, err := r.pool.Acquire(p, mem.Buf{}, 65536, iommu.PermWrite)
		if err != nil {
			t.Fatal(err)
		}
		if !m2.isFB {
			t.Fatal("second buffer must take the fallback path")
		}
		fbIOVA := m2.iova

		// Trim returns m2's pages and its IOVA to the magazine; the
		// magazine is LIFO, so the next fallback grow re-allocates
		// fbIOVA — which we now occupy to make its Map fail.
		r.pool.Release(p, m2)
		if freed := r.pool.Trim(p, 0); freed != 65536 {
			t.Fatalf("trim freed %d", freed)
		}
		ph, err := r.mem.AllocPages(0, 16)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.u.Map(1, fbIOVA, ph, 65536, iommu.PermWrite); err != nil {
			t.Fatal(err)
		}
		before := r.mem.InUseBytes(0)
		if _, err := r.pool.Acquire(p, mem.Buf{}, 65536, iommu.PermWrite); err == nil {
			t.Fatal("fallback acquire must fail while the IOVA is occupied")
		}
		if got := r.mem.InUseBytes(0); got != before {
			t.Errorf("pages leaked on failed fallback grow: %d -> %d", before, got)
		}

		// The failed grow must have returned fbIOVA to the magazine:
		// after clearing the obstruction, the next grow gets it again.
		if err := r.u.Unmap(1, fbIOVA, 65536); err != nil {
			t.Fatal(err)
		}
		m3, err := r.pool.Acquire(p, mem.Buf{}, 65536, iommu.PermWrite)
		if err != nil {
			t.Fatalf("acquire after clearing: %v", err)
		}
		if !m3.isFB || m3.iova != fbIOVA {
			t.Errorf("fallback IOVA leaked: got %#x, want %#x", uint64(m3.iova), uint64(fbIOVA))
		}
	})
}

func TestTrimUnmapFailurePushesBack(t *testing.T) {
	r := newRig(t, defaultCfg(1))
	r.run(t, func(p *sim.Proc) {
		m1, err := r.pool.Acquire(p, mem.Buf{}, 65536, iommu.PermWrite)
		if err != nil {
			t.Fatal(err)
		}
		r.pool.Release(p, m1)
		// Make Trim's Unmap fail by unmapping externally first.
		if err := r.u.Unmap(1, m1.iova, 65536); err != nil {
			t.Fatal(err)
		}
		grows := r.pool.Stats().Grows
		if freed := r.pool.Trim(p, 0); freed != 0 {
			t.Fatalf("trim freed %d despite unmap failure", freed)
		}
		if got := r.pool.Stats().BytesByClass[1]; got != 65536 {
			t.Errorf("footprint must be unchanged when the buffer survives: %d", got)
		}
		// The buffer must still be reachable: the next acquire takes it
		// off the free list instead of growing.
		m2, err := r.pool.Acquire(p, mem.Buf{}, 65536, iommu.PermWrite)
		if err != nil {
			t.Fatal(err)
		}
		if m2 != m1 {
			t.Error("drained buffer was not pushed back onto the free list")
		}
		if r.pool.Stats().Grows != grows {
			t.Error("acquire grew instead of reusing the surviving buffer")
		}
	})
}

func TestTrimFreePagesFailureAccounting(t *testing.T) {
	r := newRig(t, defaultCfg(1))
	r.run(t, func(p *sim.Proc) {
		m1, err := r.pool.Acquire(p, mem.Buf{}, 65536, iommu.PermWrite)
		if err != nil {
			t.Fatal(err)
		}
		r.pool.Release(p, m1)
		// Make Trim's FreePages fail (double free) while its Unmap still
		// succeeds.
		if err := r.mem.FreePages(m1.shadow.Addr, 16); err != nil {
			t.Fatal(err)
		}
		if freed := r.pool.Trim(p, 0); freed != 0 {
			t.Fatalf("freed %d despite FreePages failure", freed)
		}
		// The buffer left the pool at the successful unmap, so the
		// footprint must shrink even though the pages weren't returned.
		if got := r.pool.Stats().BytesByClass[1]; got != 0 {
			t.Errorf("BytesByClass = %d after the buffer left the pool", got)
		}
		if got := len(r.pool.domains[0].metas[1]); got != 0 {
			t.Errorf("metadata index not recycled: %d slots", got)
		}
	})
}

func TestTrimRecyclesMetadataIndices(t *testing.T) {
	r := newRig(t, defaultCfg(1))
	r.run(t, func(p *sim.Proc) {
		// Tail case: trim the only buffer; the array truncates and the
		// next grow reuses index 0.
		m1, err := r.pool.Acquire(p, mem.Buf{}, 65536, iommu.PermWrite)
		if err != nil {
			t.Fatal(err)
		}
		r.pool.Release(p, m1)
		if freed := r.pool.Trim(p, 0); freed != 65536 {
			t.Fatalf("trim freed %d", freed)
		}
		if got := len(r.pool.domains[0].metas[1]); got != 0 {
			t.Fatalf("tail index not truncated: %d slots", got)
		}

		// Spare case: with a later index still live, a trimmed inner
		// index parks on the spare list and is handed out next.
		a, err := r.pool.Acquire(p, mem.Buf{}, 65536, iommu.PermWrite) // index 0
		if err != nil {
			t.Fatal(err)
		}
		b, err := r.pool.Acquire(p, mem.Buf{}, 65536, iommu.PermWrite) // index 1
		if err != nil {
			t.Fatal(err)
		}
		if a.index != 0 || b.index != 1 {
			t.Fatalf("unexpected indices %d,%d", a.index, b.index)
		}
		r.pool.Release(p, a)
		if freed := r.pool.Trim(p, 0); freed != 65536 {
			t.Fatalf("trim freed %d", freed)
		}
		c, err := r.pool.Acquire(p, mem.Buf{}, 65536, iommu.PermWrite)
		if err != nil {
			t.Fatal(err)
		}
		if c.index != 0 {
			t.Errorf("spare index not reused: got %d", c.index)
		}
		if _, err := r.pool.Find(p, c.iova); err != nil {
			t.Errorf("recycled buffer not findable: %v", err)
		}
	})
}
