package report

import (
	"fmt"
	"math"
	"strings"
)

// DiffOptions tunes the artifact comparison.
type DiffOptions struct {
	// Tol is the default relative tolerance: a metric whose relative
	// change exceeds it is reported. Zero means exact comparison.
	Tol float64
	// MetricTol overrides Tol per metric name.
	MetricTol map[string]float64
	// TieMargin suppresses winner-flip reports when the two contenders
	// are within this relative margin in BOTH artifacts (a near-tie
	// trading places is noise, not a claim flip). Default 0 = any
	// inversion counts.
	TieMargin float64
	// AbsFloor suppresses changes whose absolute magnitude is below it
	// (guards tiny denominators: 0.001us -> 0.002us is a 100% change
	// of nothing). Default 0.
	AbsFloor float64
	// IgnoreMissing downgrades "present in A, absent in B" findings
	// from failures to notes.
	IgnoreMissing bool
}

// Change is one metric that moved beyond tolerance.
type Change struct {
	Experiment string  `json:"experiment"`
	System     string  `json:"system"`
	Label      string  `json:"label"`
	Metric     string  `json:"metric"`
	A          float64 `json:"a"`
	B          float64 `json:"b"`
	Rel        float64 `json:"rel"` // signed relative change (B-A)/|A|
}

func (c Change) String() string {
	return fmt.Sprintf("%s [%s @ %s] %s: %.4g -> %.4g (%+.1f%%)",
		c.Experiment, c.System, c.Label, c.Metric, c.A, c.B, 100*c.Rel)
}

// Flip is a who-wins inversion on an experiment's claim metric.
type Flip struct {
	Experiment string  `json:"experiment"`
	Label      string  `json:"label"`
	Metric     string  `json:"metric"`
	WinnerA    string  `json:"winner_a"`
	WinnerB    string  `json:"winner_b"`
	ValueA     float64 `json:"value_a"` // old winner's value in A
	ValueB     float64 `json:"value_b"` // new winner's value in B
}

func (f Flip) String() string {
	return fmt.Sprintf("%s [@ %s] %s winner flips: %q -> %q (%.4g -> %.4g)",
		f.Experiment, f.Label, f.Metric, f.WinnerA, f.WinnerB, f.ValueA, f.ValueB)
}

// DiffReport is the outcome of comparing two artifacts.
type DiffReport struct {
	Changes []Change `json:"changes,omitempty"`
	Flips   []Flip   `json:"flips,omitempty"`
	// Missing lists experiments/series/points/metrics present in A but
	// absent from B (a shrinking evaluation is itself a regression).
	Missing []string `json:"missing,omitempty"`
	// Notes are informational findings that never fail the gate.
	Notes []string `json:"notes,omitempty"`
	// Compared counts individual metric comparisons performed.
	Compared int `json:"compared"`

	ignoreMissing bool
}

// OK reports whether the comparison passed the gate.
func (r *DiffReport) OK() bool {
	if len(r.Changes) > 0 || len(r.Flips) > 0 {
		return false
	}
	return r.ignoreMissing || len(r.Missing) == 0
}

// String renders the report for terminals/CI logs.
func (r *DiffReport) String() string {
	var b strings.Builder
	for _, f := range r.Flips {
		fmt.Fprintf(&b, "CLAIM FLIP  %s\n", f)
	}
	for _, c := range r.Changes {
		fmt.Fprintf(&b, "CHANGE      %s\n", c)
	}
	for _, m := range r.Missing {
		fmt.Fprintf(&b, "MISSING     %s\n", m)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	verdict := "PASS"
	if !r.OK() {
		verdict = "FAIL"
	}
	fmt.Fprintf(&b, "%s: %d metrics compared, %d beyond tolerance, %d claim flips, %d missing\n",
		verdict, r.Compared, len(r.Changes), len(r.Flips), len(r.Missing))
	return b.String()
}

// Diff compares artifact B (candidate) against A (baseline).
func Diff(a, b *Artifact, opt DiffOptions) (*DiffReport, error) {
	if a.Schema != b.Schema {
		return nil, fmt.Errorf("report: schema mismatch: %d vs %d", a.Schema, b.Schema)
	}
	r := &DiffReport{ignoreMissing: opt.IgnoreMissing}
	if a.CostModel.Fingerprint != b.CostModel.Fingerprint {
		r.Notes = append(r.Notes, fmt.Sprintf(
			"cost-model fingerprints differ (%s vs %s): metric shifts may reflect recalibration, not code",
			a.CostModel.Fingerprint, b.CostModel.Fingerprint))
	}
	if a.WindowMs != b.WindowMs && a.WindowMs != 0 && b.WindowMs != 0 {
		r.Notes = append(r.Notes, fmt.Sprintf(
			"windows differ (%.3g ms vs %.3g ms): comparison may be noisy", a.WindowMs, b.WindowMs))
	}
	for i := range a.Experiments {
		ea := &a.Experiments[i]
		eb := b.Experiment(ea.Name)
		if eb == nil {
			r.Missing = append(r.Missing, fmt.Sprintf("experiment %q", ea.Name))
			continue
		}
		diffExperiment(r, ea, eb, opt)
	}
	for i := range b.Experiments {
		if a.Experiment(b.Experiments[i].Name) == nil {
			r.Notes = append(r.Notes, fmt.Sprintf("experiment %q is new in B", b.Experiments[i].Name))
		}
	}
	diffAttacks(r, a, b)
	return r, nil
}

// hostTimeMetric reports whether a metric name records host wall-clock
// time rather than simulated time. Host time varies run to run (machine
// load, parallelism, CPU count), so such metrics are informational and
// must never enter the comparison on either side — exactly like the
// structural Experiment.WallMs and Artifact.CreatedAt fields, which the
// diff never reads.
func hostTimeMetric(name string) bool {
	switch name {
	case "wall_ms", "wall_us", "wall_s", "host_ms", "elapsed_ms", "created_at":
		return true
	}
	return strings.HasPrefix(name, "wall_") || strings.HasPrefix(name, "host_") ||
		strings.HasPrefix(name, "farm.")
}

func diffExperiment(r *DiffReport, ea, eb *Experiment, opt DiffOptions) {
	for i := range ea.Series {
		sa := &ea.Series[i]
		sb := findSeries(eb, sa.System)
		if sb == nil {
			r.Missing = append(r.Missing, fmt.Sprintf("experiment %q series %q", ea.Name, sa.System))
			continue
		}
		for j := range sa.Points {
			pa := &sa.Points[j]
			pb := sb.point(pa.Label)
			if pb == nil {
				r.Missing = append(r.Missing, fmt.Sprintf("experiment %q %s point %q",
					ea.Name, sa.System, pa.Label))
				continue
			}
			for _, metric := range sortedKeys(pa.Metrics) {
				if hostTimeMetric(metric) {
					continue
				}
				va := pa.Metrics[metric]
				vb, ok := pb.Metrics[metric]
				if !ok {
					r.Missing = append(r.Missing, fmt.Sprintf("experiment %q %s @ %s metric %q",
						ea.Name, sa.System, pa.Label, metric))
					continue
				}
				r.Compared++
				if beyond(va, vb, tolFor(metric, opt), opt.AbsFloor) {
					rel := math.Inf(1)
					if va != 0 {
						rel = (vb - va) / math.Abs(va)
					}
					r.Changes = append(r.Changes, Change{
						Experiment: ea.Name, System: sa.System, Label: pa.Label,
						Metric: metric, A: va, B: vb, Rel: rel,
					})
				}
			}
		}
	}
	diffWinner(r, ea, eb, opt)
}

// beyond reports whether va -> vb exceeds the relative tolerance.
func beyond(va, vb, tol, absFloor float64) bool {
	d := math.Abs(vb - va)
	if d == 0 {
		return false
	}
	if d <= absFloor {
		return false
	}
	scale := math.Max(math.Abs(va), math.Abs(vb))
	if scale == 0 {
		return false
	}
	return d > tol*scale
}

func tolFor(metric string, opt DiffOptions) float64 {
	if t, ok := opt.MetricTol[metric]; ok {
		return t
	}
	return opt.Tol
}

func findSeries(e *Experiment, system string) *Series {
	for i := range e.Series {
		if e.Series[i].System == system {
			return &e.Series[i]
		}
	}
	return nil
}

// diffWinner detects per-point who-wins inversions on the experiment's
// declared claim metric.
func diffWinner(r *DiffReport, ea, eb *Experiment, opt DiffOptions) {
	w := ea.Winner
	if w == nil || w.Metric == "" {
		return
	}
	for _, label := range ea.labels() {
		winA, runnerUpA, okA := winnerAt(ea, label, w)
		winB, _, okB := winnerAt(eb, label, w)
		if !okA || !okB || winA == winB {
			continue
		}
		// A near-tie trading places is noise, not a flip: require the
		// inversion to exceed the tie margin in both artifacts.
		if opt.TieMargin > 0 {
			if withinMargin(valueAt(ea, winA, label, w.Metric), runnerUpA, opt.TieMargin) {
				continue
			}
			va, aok := lookupValue(eb, winA, label, w.Metric)
			vb, bok := lookupValue(eb, winB, label, w.Metric)
			if aok && bok && withinMargin(va, vb, opt.TieMargin) {
				continue
			}
		}
		va, _ := lookupValue(ea, winA, label, w.Metric)
		vb, _ := lookupValue(eb, winB, label, w.Metric)
		r.Flips = append(r.Flips, Flip{
			Experiment: ea.Name, Label: label, Metric: w.Metric,
			WinnerA: winA, WinnerB: winB, ValueA: va, ValueB: vb,
		})
	}
}

func withinMargin(a, b, margin float64) bool {
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale == 0 {
		return true
	}
	return math.Abs(a-b) <= margin*scale
}

// winnerAt returns the winning system and the runner-up's value at one
// point label, per the winner spec. ok is false with <2 contenders.
func winnerAt(e *Experiment, label string, w *Winner) (system string, runnerUp float64, ok bool) {
	type entry struct {
		sys string
		v   float64
	}
	var entries []entry
	for i := range e.Series {
		if p := e.Series[i].point(label); p != nil {
			if v, present := p.Metrics[w.Metric]; present {
				entries = append(entries, entry{e.Series[i].System, v})
			}
		}
	}
	if len(entries) < 2 {
		return "", 0, false
	}
	better := func(x, y float64) bool {
		if w.LowerIsBetter {
			return x < y
		}
		return x > y
	}
	best, second := entries[0], entries[1]
	if better(second.v, best.v) {
		best, second = second, best
	}
	for _, en := range entries[2:] {
		switch {
		case better(en.v, best.v):
			second = best
			best = en
		case better(en.v, second.v):
			second = en
		}
	}
	return best.sys, second.v, true
}

func valueAt(e *Experiment, system, label, metric string) float64 {
	v, _ := lookupValue(e, system, label, metric)
	return v
}

func lookupValue(e *Experiment, system, label, metric string) (float64, bool) {
	s := findSeries(e, system)
	if s == nil {
		return 0, false
	}
	p := s.point(label)
	if p == nil {
		return 0, false
	}
	v, ok := p.Metrics[metric]
	return v, ok
}

// diffAttacks compares the attack matrices: any verdict change is a
// claim flip (security properties must never silently change).
func diffAttacks(r *DiffReport, a, b *Artifact) {
	if len(a.Attacks) == 0 {
		return
	}
	bySystem := make(map[string]AttackVerdict, len(b.Attacks))
	for _, v := range b.Attacks {
		bySystem[v.System] = v
	}
	for _, va := range a.Attacks {
		vb, ok := bySystem[va.System]
		if !ok {
			r.Missing = append(r.Missing, fmt.Sprintf("attack verdict for %q", va.System))
			continue
		}
		for _, f := range []struct {
			name string
			a, b bool
		}{
			{"sub_page_protect", va.SubPageProtect, vb.SubPageProtect},
			{"no_vuln_window", va.NoVulnWindow, vb.NoVulnWindow},
			{"single_core_perf", va.SingleCorePerf, vb.SingleCorePerf},
			{"multi_core_perf", va.MultiCorePerf, vb.MultiCorePerf},
		} {
			r.Compared++
			if f.a != f.b {
				r.Flips = append(r.Flips, Flip{
					Experiment: "table1", Label: va.System, Metric: f.name,
					WinnerA: fmt.Sprintf("%v", f.a), WinnerB: fmt.Sprintf("%v", f.b),
				})
			}
		}
	}
}
