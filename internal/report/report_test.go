package report

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/cycles"
)

func sampleArtifact() *Artifact {
	a := New("test", 1, nil)
	a.Add(Experiment{
		Name:   "fig3",
		Title:  "Figure 3",
		Winner: &Winner{Metric: "gbps"},
		Series: []Series{
			{System: "no iommu", Points: []Point{
				{Label: "1KB", Metrics: map[string]float64{"gbps": 10, "cpu_pct": 90}},
				{Label: "64KB", Metrics: map[string]float64{"gbps": 17.5, "cpu_pct": 99}},
			}},
			{System: "copy", Points: []Point{
				{Label: "1KB", Metrics: map[string]float64{"gbps": 9, "cpu_pct": 92}},
				{Label: "64KB", Metrics: map[string]float64{"gbps": 16, "cpu_pct": 99}},
			}},
			{System: "identity+", Points: []Point{
				{Label: "1KB", Metrics: map[string]float64{"gbps": 5, "cpu_pct": 99}},
				{Label: "64KB", Metrics: map[string]float64{"gbps": 8, "cpu_pct": 99}},
			}},
		},
	})
	a.Attacks = []AttackVerdict{
		{System: "copy", SubPageProtect: true, NoVulnWindow: true, SingleCorePerf: true, MultiCorePerf: true},
		{System: "strict", SubPageProtect: false, NoVulnWindow: true},
	}
	return a
}

func clone(t *testing.T, a *Artifact) *Artifact {
	t.Helper()
	var buf bytes.Buffer
	if err := a.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	b, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestArtifactRoundTrip(t *testing.T) {
	a := sampleArtifact()
	b := clone(t, a)
	if b.Schema != SchemaVersion || b.Tool != "test" || len(b.Experiments) != 1 {
		t.Fatalf("round trip lost data: %+v", b)
	}
	if b.CostModel.Fingerprint != Fingerprint(cycles.Default()) {
		t.Error("fingerprint changed across round trip")
	}
	if len(b.Attacks) != 2 {
		t.Error("attack verdicts lost")
	}
}

func TestValidateRejectsBadArtifacts(t *testing.T) {
	cases := []func(*Artifact){
		func(a *Artifact) { a.Schema = 99 },
		func(a *Artifact) { a.Tool = "" },
		func(a *Artifact) { a.CostModel.Fingerprint = "" },
		func(a *Artifact) { a.Experiments[0].Name = "" },
		func(a *Artifact) { a.Add(Experiment{Name: "fig3"}) }, // duplicate
		func(a *Artifact) { a.Experiments[0].Winner.Metric = "" },
		func(a *Artifact) { a.Experiments[0].Series[0].System = "" },
		func(a *Artifact) { a.Experiments[0].Series[0].Points[0].Label = "" },
		func(a *Artifact) { a.Experiments[0].Series[0].Points[0].Metrics["gbps"] = math.NaN() },
		func(a *Artifact) { a.Attacks[0].System = "" },
	}
	for i, mutate := range cases {
		a := sampleArtifact()
		mutate(a)
		if err := a.Validate(); err == nil {
			t.Errorf("case %d: bad artifact passed validation", i)
		}
	}
	if err := sampleArtifact().Validate(); err != nil {
		t.Errorf("good artifact rejected: %v", err)
	}
}

func TestFingerprintTracksCostModel(t *testing.T) {
	a := Fingerprint(cycles.Default())
	c := cycles.Default()
	c.IOTLBInvalidateHW++
	if Fingerprint(c) == a {
		t.Error("fingerprint must change when a constant changes")
	}
	if Fingerprint(cycles.Default()) != a {
		t.Error("fingerprint must be deterministic")
	}
}

func TestDiffIdenticalPasses(t *testing.T) {
	a := sampleArtifact()
	b := clone(t, a)
	r, err := Diff(a, b, DiffOptions{Tol: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !r.OK() {
		t.Fatalf("identical artifacts must pass:\n%s", r)
	}
	if r.Compared == 0 {
		t.Error("no metrics compared")
	}
}

// TestDiffIgnoresHostTime builds two artifacts that differ ONLY in host
// wall-clock records — Artifact.CreatedAt, Experiment.WallMs, and a
// wall_ms metric smuggled into a point — and asserts zero drift. Host
// time varies with machine load and -parallel, so letting it into the
// gate would make every baseline comparison flaky.
func TestDiffIgnoresHostTime(t *testing.T) {
	mkArtifact := func(created string, wallMs, metricWall float64) *Artifact {
		a := sampleArtifact()
		a.CreatedAt = created
		a.Experiments[0].WallMs = wallMs
		for i := range a.Experiments[0].Series {
			for j := range a.Experiments[0].Series[i].Points {
				a.Experiments[0].Series[i].Points[j].Metrics["wall_ms"] = metricWall
			}
		}
		return a
	}
	a := mkArtifact("2026-01-01T00:00:00Z", 120, 3.5)
	b := mkArtifact("2026-06-30T12:34:56Z", 987, 99.9)
	r, err := Diff(a, clone(t, b), DiffOptions{Tol: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !r.OK() || len(r.Changes) != 0 || len(r.Flips) != 0 {
		t.Fatalf("wall-time-only differences must not drift:\n%s", r)
	}
	// A host-time metric missing from B must not count as a regression
	// either (older artifacts predate the metric).
	c := clone(t, b)
	for i := range c.Experiments[0].Series {
		for j := range c.Experiments[0].Series[i].Points {
			delete(c.Experiments[0].Series[i].Points[j].Metrics, "wall_ms")
		}
	}
	r, err = Diff(a, c, DiffOptions{Tol: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !r.OK() || len(r.Missing) != 0 {
		t.Fatalf("missing host-time metric must not fail the gate:\n%s", r)
	}
	// Sanity: the skip is surgical — a real metric moving still fails.
	d := clone(t, b)
	d.Experiments[0].Series[0].Points[0].Metrics["gbps"] = 1
	if r, _ := Diff(a, d, DiffOptions{Tol: 0}); r.OK() {
		t.Fatal("real metric change must still fail")
	}
}

func TestDiffFlagsRegression(t *testing.T) {
	a := sampleArtifact()
	b := clone(t, a)
	b.Experiments[0].Series[1].Points[1].Metrics["gbps"] = 12 // copy 16 -> 12
	r, err := Diff(a, b, DiffOptions{Tol: 0.10})
	if err != nil {
		t.Fatal(err)
	}
	if r.OK() || len(r.Changes) != 1 {
		t.Fatalf("25%% regression must fail:\n%s", r)
	}
	c := r.Changes[0]
	if c.Experiment != "fig3" || c.System != "copy" || c.Metric != "gbps" || c.Rel >= 0 {
		t.Errorf("wrong change: %+v", c)
	}
	// Same delta within tolerance passes.
	b.Experiments[0].Series[1].Points[1].Metrics["gbps"] = 15.5
	r, _ = Diff(a, b, DiffOptions{Tol: 0.10})
	if !r.OK() {
		t.Fatalf("3%% move within 10%% tolerance must pass:\n%s", r)
	}
}

func TestDiffPerMetricTolerance(t *testing.T) {
	a := sampleArtifact()
	b := clone(t, a)
	b.Experiments[0].Series[0].Points[0].Metrics["cpu_pct"] = 80 // ~11% move
	r, _ := Diff(a, b, DiffOptions{Tol: 0.05, MetricTol: map[string]float64{"cpu_pct": 0.20}})
	if !r.OK() {
		t.Fatalf("cpu_pct override should allow the move:\n%s", r)
	}
	r, _ = Diff(a, b, DiffOptions{Tol: 0.05})
	if r.OK() {
		t.Fatal("without override the move must fail")
	}
}

func TestDiffFlagsWinnerFlip(t *testing.T) {
	a := sampleArtifact()
	b := clone(t, a)
	// copy overtakes no-iommu at 64KB without either metric moving
	// beyond a generous tolerance.
	b.Experiments[0].Series[0].Points[1].Metrics["gbps"] = 15.9
	b.Experiments[0].Series[1].Points[1].Metrics["gbps"] = 16.1
	r, err := Diff(a, b, DiffOptions{Tol: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Flips) != 1 || r.OK() {
		t.Fatalf("winner flip must fail the gate:\n%s", r)
	}
	f := r.Flips[0]
	if f.WinnerA != "no iommu" || f.WinnerB != "copy" || f.Label != "64KB" {
		t.Errorf("wrong flip: %+v", f)
	}
	// With a tie margin the near-tie inversion is suppressed.
	r, _ = Diff(a, b, DiffOptions{Tol: 0.25, TieMargin: 0.05})
	if len(r.Flips) != 0 {
		t.Errorf("near-tie flip should be suppressed by TieMargin:\n%s", r)
	}
}

func TestDiffLowerIsBetterWinner(t *testing.T) {
	a := New("test", 1, nil)
	a.Add(Experiment{
		Name:   "fig9",
		Winner: &Winner{Metric: "lat_us", LowerIsBetter: true},
		Series: []Series{
			{System: "copy", Points: []Point{{Label: "64B", Metrics: map[string]float64{"lat_us": 20}}}},
			{System: "strict", Points: []Point{{Label: "64B", Metrics: map[string]float64{"lat_us": 30}}}},
		},
	})
	b := clone(t, a)
	b.Experiments[0].Series[0].Points[0].Metrics["lat_us"] = 35
	r, _ := Diff(a, b, DiffOptions{Tol: 10}) // huge tol: only the flip should fire
	if len(r.Flips) != 1 || r.Flips[0].WinnerB != "strict" {
		t.Fatalf("lower-is-better flip not detected:\n%s", r)
	}
}

func TestDiffMissingAndNew(t *testing.T) {
	a := sampleArtifact()
	b := clone(t, a)
	b.Experiments = nil
	b.Add(Experiment{Name: "other"})
	r, err := Diff(a, b, DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r.OK() || len(r.Missing) == 0 {
		t.Fatalf("missing experiment must fail:\n%s", r)
	}
	r, _ = Diff(a, b, DiffOptions{IgnoreMissing: true})
	if !r.OK() {
		t.Fatalf("IgnoreMissing must downgrade:\n%s", r)
	}
}

func TestDiffAttackVerdictChangeIsFlip(t *testing.T) {
	a := sampleArtifact()
	b := clone(t, a)
	b.Attacks[0].NoVulnWindow = false
	r, err := Diff(a, b, DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r.OK() || len(r.Flips) != 1 || r.Flips[0].Metric != "no_vuln_window" {
		t.Fatalf("attack verdict change must be a flip:\n%s", r)
	}
}

func TestDiffFingerprintMismatchNoted(t *testing.T) {
	a := sampleArtifact()
	b := clone(t, a)
	b.CostModel.Fingerprint = "deadbeef"
	r, err := Diff(a, b, DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range r.Notes {
		if strings.Contains(n, "fingerprint") {
			found = true
		}
	}
	if !found {
		t.Error("fingerprint mismatch must be noted")
	}
}

func TestDiffSchemaMismatchErrors(t *testing.T) {
	a := sampleArtifact()
	b := sampleArtifact()
	b.Schema = 2
	if _, err := Diff(a, b, DiffOptions{}); err == nil {
		t.Error("schema mismatch must error")
	}
}

func TestDiffAbsFloor(t *testing.T) {
	a := sampleArtifact()
	b := clone(t, a)
	// Tiny absolute wiggle on a tiny value: 100% relative change.
	a.Experiments[0].Series[0].Points[0].Metrics["other_us"] = 0.001
	b.Experiments[0].Series[0].Points[0].Metrics["other_us"] = 0.002
	r, _ := Diff(a, b, DiffOptions{Tol: 0.10, AbsFloor: 0.01})
	if !r.OK() {
		t.Fatalf("sub-floor change must be ignored:\n%s", r)
	}
	r, _ = Diff(a, b, DiffOptions{Tol: 0.10})
	if r.OK() {
		t.Fatal("without floor the change must be flagged")
	}
}
