// Package report defines the versioned, machine-readable benchmark
// artifact every cmd/* tool can emit, and the comparison engine behind
// cmd/benchdiff. The text tables (report.txt) are for humans; artifacts
// are for machines — diffable records of run metadata, the cost-model
// fingerprint, per-experiment metric series and attack-matrix verdicts,
// so a PR that shifts a crossover point or regresses a hot path fails a
// gate instead of silently rewriting prose.
package report

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	"repro/internal/cycles"
)

// SchemaVersion is bumped whenever the artifact layout changes
// incompatibly. benchdiff refuses to compare mismatched schemas.
const SchemaVersion = 1

// Artifact is one benchmark run's complete machine-readable record.
type Artifact struct {
	// Schema is the artifact format version (SchemaVersion).
	Schema int `json:"schema"`
	// Tool is the producing command ("reproduce", "netbench", ...).
	Tool string `json:"tool"`
	// CreatedAt is an RFC3339 wall-clock stamp. Informational only:
	// benchdiff never compares it.
	CreatedAt string `json:"created_at,omitempty"`
	// WindowMs is the simulated window per data point.
	WindowMs float64 `json:"window_ms,omitempty"`
	// CostModel identifies the cycle-cost calibration of the run.
	CostModel CostModel `json:"cost_model"`
	// Experiments holds one entry per table/figure produced.
	Experiments []Experiment `json:"experiments"`
	// Attacks holds the Table 1 security verdicts, when the run
	// included the attack matrix.
	Attacks []AttackVerdict `json:"attacks,omitempty"`
}

// CostModel fingerprints the cycle-cost calibration so artifacts from
// different calibrations are never silently compared.
type CostModel struct {
	Hz          uint64 `json:"hz"`
	Fingerprint string `json:"fingerprint"`
}

// Experiment is one figure/table: the human-readable rendering (columns
// and rows) plus the structured numeric series benchdiff consumes.
type Experiment struct {
	// Name is the stable machine-readable id ("fig3", "storage", ...).
	Name    string     `json:"name"`
	Title   string     `json:"title,omitempty"`
	Note    string     `json:"note,omitempty"`
	Columns []string   `json:"columns,omitempty"`
	Rows    [][]string `json:"rows,omitempty"`
	// Winner, when set, declares which metric decides "who wins" at
	// each point — the per-figure claim benchdiff guards against flips.
	Winner *Winner  `json:"winner,omitempty"`
	Series []Series `json:"series,omitempty"`
	// WallMs is the host wall-clock time spent producing this experiment,
	// in milliseconds. Informational only (profiling aid): benchdiff
	// never compares it — virtual-time metrics live in Series.
	WallMs float64 `json:"wall_ms,omitempty"`
}

// Winner declares the claim-deciding metric of an experiment.
type Winner struct {
	Metric string `json:"metric"`
	// LowerIsBetter is true for latencies and per-op costs.
	LowerIsBetter bool `json:"lower_is_better,omitempty"`
}

// Series is one system's measurements across an experiment's points.
type Series struct {
	System string  `json:"system"`
	Points []Point `json:"points"`
}

// Point is one x-axis position (a message size, an I/O size, a pattern)
// with its named metrics.
type Point struct {
	Label   string             `json:"label"`
	Metrics map[string]float64 `json:"metrics"`
}

// AttackVerdict is one row of the paper's Table 1, decided by running
// real attacks (see internal/attack).
type AttackVerdict struct {
	System          string  `json:"system"`
	SubPageProtect  bool    `json:"sub_page_protect"`
	NoVulnWindow    bool    `json:"no_vuln_window"`
	SingleCorePerf  bool    `json:"single_core_perf"`
	MultiCorePerf   bool    `json:"multi_core_perf"`
	SingleCoreRatio float64 `json:"single_core_ratio"`
	MultiCoreRatio  float64 `json:"multi_core_ratio"`
}

// New starts an artifact for a tool run. A nil costs means the default
// calibration.
func New(tool string, windowMs float64, costs *cycles.Costs) *Artifact {
	if costs == nil {
		costs = cycles.Default()
	}
	return &Artifact{
		Schema:   SchemaVersion,
		Tool:     tool,
		WindowMs: windowMs,
		CostModel: CostModel{
			Hz:          cycles.Hz,
			Fingerprint: Fingerprint(costs),
		},
	}
}

// Add appends an experiment.
func (a *Artifact) Add(e Experiment) { a.Experiments = append(a.Experiments, e) }

// Fingerprint returns a stable hash of a cost model (plus the simulated
// frequency), so two artifacts are comparable only when every calibration
// constant matched.
func Fingerprint(c *cycles.Costs) string {
	if c == nil {
		c = cycles.Default()
	}
	// encoding/json marshals struct fields in declaration order, so the
	// byte stream (and thus the hash) is stable for a given schema.
	b, err := json.Marshal(c)
	if err != nil {
		return "unhashable"
	}
	h := sha256.New()
	fmt.Fprintf(h, "hz=%d;", uint64(cycles.Hz))
	h.Write(b)
	return fmt.Sprintf("%x", h.Sum(nil)[:12])
}

// Validate checks the artifact is structurally sound: right schema
// version, named experiments, labeled points, finite metrics.
func (a *Artifact) Validate() error {
	if a.Schema != SchemaVersion {
		return fmt.Errorf("report: schema %d, this build understands %d", a.Schema, SchemaVersion)
	}
	if a.Tool == "" {
		return fmt.Errorf("report: missing tool")
	}
	if a.CostModel.Fingerprint == "" {
		return fmt.Errorf("report: missing cost-model fingerprint")
	}
	seen := make(map[string]bool)
	for i, e := range a.Experiments {
		if e.Name == "" {
			return fmt.Errorf("report: experiment %d has no name", i)
		}
		if seen[e.Name] {
			return fmt.Errorf("report: duplicate experiment %q", e.Name)
		}
		seen[e.Name] = true
		if e.Winner != nil && e.Winner.Metric == "" {
			return fmt.Errorf("report: experiment %q: winner without metric", e.Name)
		}
		for _, s := range e.Series {
			if s.System == "" {
				return fmt.Errorf("report: experiment %q: series without system", e.Name)
			}
			for _, p := range s.Points {
				if p.Label == "" {
					return fmt.Errorf("report: experiment %q/%s: point without label", e.Name, s.System)
				}
				for k, v := range p.Metrics {
					if math.IsNaN(v) || math.IsInf(v, 0) {
						return fmt.Errorf("report: experiment %q/%s/%s: metric %q is %v",
							e.Name, s.System, p.Label, k, v)
					}
				}
			}
		}
	}
	for _, v := range a.Attacks {
		if v.System == "" {
			return fmt.Errorf("report: attack verdict without system")
		}
	}
	return nil
}

// Encode writes the artifact as indented JSON (after validating it).
func (a *Artifact) Encode(w io.Writer) error {
	if err := a.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(a)
}

// WriteFile validates and writes the artifact to path.
func (a *Artifact) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := a.Encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Decode reads and validates an artifact.
func Decode(r io.Reader) (*Artifact, error) {
	var a Artifact
	dec := json.NewDecoder(r)
	if err := dec.Decode(&a); err != nil {
		return nil, fmt.Errorf("report: bad artifact: %w", err)
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return &a, nil
}

// Load reads and validates an artifact file.
func Load(path string) (*Artifact, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	a, err := Decode(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return a, nil
}

// Experiment returns the named experiment, or nil.
func (a *Artifact) Experiment(name string) *Experiment {
	for i := range a.Experiments {
		if a.Experiments[i].Name == name {
			return &a.Experiments[i]
		}
	}
	return nil
}

// point returns the labeled point of a series, or nil.
func (s *Series) point(label string) *Point {
	for i := range s.Points {
		if s.Points[i].Label == label {
			return &s.Points[i]
		}
	}
	return nil
}

// labels returns every point label of an experiment, in first-seen order.
func (e *Experiment) labels() []string {
	var out []string
	seen := make(map[string]bool)
	for _, s := range e.Series {
		for _, p := range s.Points {
			if !seen[p.Label] {
				seen[p.Label] = true
				out = append(out, p.Label)
			}
		}
	}
	return out
}

// sortedKeys returns a map's keys in sorted order (stable reports).
func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
