package iova

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"repro/internal/iommu"
	"repro/internal/mem"
)

func TestTreeAllocTopDown(t *testing.T) {
	a := NewTree(0, 1024)
	v1, err := a.Alloc(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	v2, _ := a.Alloc(0, 1)
	// Linux allocates top-down: first allocation gets the highest pages.
	if v1.Page() != 1023 || v2.Page() != 1022 {
		t.Errorf("got pages %d, %d; want 1023, 1022", v1.Page(), v2.Page())
	}
	if a.Outstanding() != 2 {
		t.Errorf("outstanding = %d", a.Outstanding())
	}
}

func TestTreeFreeCoalesces(t *testing.T) {
	a := NewTree(0, 100)
	v1, _ := a.Alloc(0, 10)
	v2, _ := a.Alloc(0, 10)
	v3, _ := a.Alloc(0, 10)
	if err := a.Free(0, v1, 10); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(0, v3, 10); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(0, v2, 10); err != nil {
		t.Fatal(err)
	}
	if a.FreePages() != 100 {
		t.Errorf("free pages = %d, want 100", a.FreePages())
	}
	// After full coalescing a single 100-page alloc must succeed.
	if _, err := a.Alloc(0, 100); err != nil {
		t.Errorf("coalescing failed: %v", err)
	}
}

func TestTreeExhaustion(t *testing.T) {
	a := NewTree(0, 10)
	if _, err := a.Alloc(0, 11); err == nil {
		t.Error("oversize alloc should fail")
	}
	v, _ := a.Alloc(0, 10)
	if _, err := a.Alloc(0, 1); err == nil {
		t.Error("alloc from empty should fail")
	}
	if a.Failed != 2 {
		t.Errorf("failed = %d", a.Failed)
	}
	a.Free(0, v, 10)
	if _, err := a.Alloc(0, 10); err != nil {
		t.Error("space should be reusable")
	}
}

func TestTreeFreeErrors(t *testing.T) {
	a := NewTree(0, 100)
	v, _ := a.Alloc(0, 4)
	if err := a.Free(0, v+mem.PageSize, 3); err == nil {
		t.Error("free of non-start should fail")
	}
	if err := a.Free(0, v, 3); err == nil {
		t.Error("free with wrong size should fail")
	}
	if err := a.Free(0, v, 4); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(0, v, 4); err == nil {
		t.Error("double free should fail")
	}
	if _, err := a.Alloc(0, 0); err == nil {
		t.Error("zero alloc should fail")
	}
}

// TestTreeRandomizedAgainstReference drives random alloc/free traffic and
// checks the allocator never hands out overlapping ranges and never loses
// pages.
func TestTreeRandomizedAgainstReference(t *testing.T) {
	const totalPages = 4096
	a := NewTree(0, totalPages)
	rng := rand.New(rand.NewSource(1))
	type alloc struct {
		addr iommu.IOVA
		n    int
	}
	var live []alloc
	owned := map[uint64]bool{}
	for step := 0; step < 20000; step++ {
		if len(live) == 0 || rng.Intn(100) < 55 {
			n := 1 + rng.Intn(16)
			addr, err := a.Alloc(0, n)
			if err != nil {
				// Must only fail when genuinely fragmented/full.
				if a.FreePages() >= uint64(totalPages)*3/4 {
					t.Fatalf("spurious alloc failure with %d free", a.FreePages())
				}
				continue
			}
			for p := addr.Page(); p < addr.Page()+uint64(n); p++ {
				if owned[p] {
					t.Fatalf("page %d double-allocated", p)
				}
				owned[p] = true
			}
			live = append(live, alloc{addr, n})
		} else {
			i := rng.Intn(len(live))
			al := live[i]
			if err := a.Free(0, al.addr, al.n); err != nil {
				t.Fatal(err)
			}
			for p := al.addr.Page(); p < al.addr.Page()+uint64(al.n); p++ {
				delete(owned, p)
			}
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		if got := a.FreePages() + uint64(len(owned)); got != totalPages {
			t.Fatalf("page conservation violated: free=%d owned=%d", a.FreePages(), len(owned))
		}
	}
	for _, al := range live {
		if err := a.Free(0, al.addr, al.n); err != nil {
			t.Fatal(err)
		}
	}
	if a.FreePages() != totalPages {
		t.Errorf("leak: %d free pages at end", a.FreePages())
	}
	// Everything coalesced back into one extent.
	if _, err := a.Alloc(0, totalPages); err != nil {
		t.Errorf("final full alloc failed: %v", err)
	}
}

func TestMagazineCachesPerCore(t *testing.T) {
	m := NewMagazine(2, 0, 1<<20, 8)
	v, err := m.Alloc(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Stats().CacheMisses; got != 1 {
		t.Errorf("misses = %d", got)
	}
	if err := m.Free(0, v, 1); err != nil {
		t.Fatal(err)
	}
	v2, _ := m.Alloc(0, 1)
	if v2 != v {
		t.Error("same-core alloc should hit the magazine")
	}
	if got := m.Stats().CacheHits; got != 1 {
		t.Errorf("hits = %d", got)
	}
	// A different core does not see core 0's magazine.
	m.Free(0, v2, 1)
	v3, _ := m.Alloc(1, 1)
	if v3 == v {
		t.Error("cross-core alloc should not hit core 0's magazine")
	}
}

func TestMagazineSpills(t *testing.T) {
	m := NewMagazine(1, 0, 1<<20, 4)
	var addrs []iommu.IOVA
	for i := 0; i < 8; i++ {
		v, err := m.Alloc(0, 2)
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, v)
	}
	for _, v := range addrs {
		if err := m.Free(0, v, 2); err != nil {
			t.Fatal(err)
		}
	}
	if m.Stats().Spills == 0 {
		t.Error("overflowing the magazine should spill to the backend")
	}
	// Spilled ranges went back to the shared tree.
	if m.Backend().Outstanding() == 0 && m.Outstanding() != 0 {
		t.Error("backend lost the spilled ranges")
	}
	if m.Outstanding() != 0 {
		t.Errorf("outstanding = %d, want 0", m.Outstanding())
	}
}

func TestMagazineSizeSegregation(t *testing.T) {
	m := NewMagazine(1, 0, 1<<20, 8)
	v1, _ := m.Alloc(0, 1)
	m.Free(0, v1, 1)
	// A 2-page alloc must not reuse the cached 1-page range.
	v2, _ := m.Alloc(0, 2)
	if v2 == v1 {
		t.Error("magazine must segregate by size")
	}
	if m.Outstanding() != 2 {
		t.Errorf("outstanding = %d, want 2", m.Outstanding())
	}
}

// TestMagazineStatsRace exercises the stats counters from concurrent
// goroutines, mimicking the bench Farm running one engine per OS thread
// while an observer snapshots allocator stats. Each goroutine stays on its
// own core's magazine (the backend tree is not thread-safe and a warm
// magazine never touches it), so the only shared state is the counters —
// which is exactly what `go test -race` must find clean.
func TestMagazineStatsRace(t *testing.T) {
	const cores = 4
	m := NewMagazine(cores, 0, 1<<20, 8)
	// Warm each core's magazine serially: one miss, then the range parks
	// in the per-core stack so the concurrent loops below are hit-only.
	warm := make([]iommu.IOVA, cores)
	for c := 0; c < cores; c++ {
		v, err := m.Alloc(c, 1)
		if err != nil {
			t.Fatal(err)
		}
		warm[c] = v
		if err := m.Free(c, v, 1); err != nil {
			t.Fatal(err)
		}
	}
	const iters = 5000
	done := make(chan error, cores)
	stop := make(chan struct{})
	for c := 0; c < cores; c++ {
		c := c
		go func() {
			for i := 0; i < iters; i++ {
				v, err := m.Alloc(c, 1)
				if err != nil {
					done <- err
					return
				}
				if v != warm[c] {
					done <- fmt.Errorf("core %d: alloc missed its magazine", c)
					return
				}
				if err := m.Free(c, v, 1); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	// Concurrent stats reader — the access pattern the race detector
	// flagged when the counters were plain uint64 fields.
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				_ = m.Stats()
			}
		}
	}()
	for c := 0; c < cores; c++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	s := m.Stats()
	if s.CacheHits != cores*iters {
		t.Errorf("hits = %d, want %d", s.CacheHits, cores*iters)
	}
	if s.CacheMisses != cores {
		t.Errorf("misses = %d, want %d", s.CacheMisses, cores)
	}
}

func TestMagazineBadCore(t *testing.T) {
	m := NewMagazine(1, 0, 100, 4)
	if _, err := m.Alloc(5, 1); err == nil {
		t.Error("bad core should fail")
	}
	if err := m.Free(-1, 0, 1); err == nil {
		t.Error("bad core should fail")
	}
}

func BenchmarkTreeAllocFree(b *testing.B) {
	a := NewTree(0, 1<<24)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v, err := a.Alloc(0, 1)
		if err != nil {
			b.Fatal(err)
		}
		if err := a.Free(0, v, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMagazineAllocFree(b *testing.B) {
	m := NewMagazine(1, 0, 1<<24, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v, err := m.Alloc(0, 1)
		if err != nil {
			b.Fatal(err)
		}
		if err := m.Free(0, v, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// TestShardedInstancesParallelHost runs independent allocator instances in
// real goroutines doing mixed-size alloc/free churn — the bench Farm's
// usage pattern, where each worker owns a full machine. The sharded
// range-index maps, the extent recycler and the size-segregated magazine
// stacks are all per-instance, so any race `go test -race` finds here is
// hidden shared state in the package itself.
func TestShardedInstancesParallelHost(t *testing.T) {
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			m := NewMagazine(2, 0, 1<<24, 8)
			rng := rand.New(rand.NewSource(seed))
			type held struct {
				addr   iommu.IOVA
				npages int
				core   int
			}
			var live []held
			for i := 0; i < 3000; i++ {
				if len(live) > 0 && (rng.Intn(2) == 0 || len(live) > 64) {
					j := rng.Intn(len(live))
					h := live[j]
					live[j] = live[len(live)-1]
					live = live[:len(live)-1]
					if err := m.Free(h.core, h.addr, h.npages); err != nil {
						t.Errorf("worker %d: free: %v", seed, err)
						return
					}
					continue
				}
				// Mix small (magazine stacks) and large (spill map) sizes.
				npages := 1 + rng.Intn(20)
				if rng.Intn(8) == 0 {
					npages = smallMagSizes + 1 + rng.Intn(16)
				}
				core := rng.Intn(2)
				v, err := m.Alloc(core, npages)
				if err != nil {
					t.Errorf("worker %d: alloc %d pages: %v", seed, npages, err)
					return
				}
				live = append(live, held{v, npages, core})
			}
			for _, h := range live {
				if err := m.Free(h.core, h.addr, h.npages); err != nil {
					t.Errorf("worker %d: final free: %v", seed, err)
					return
				}
			}
			if out := m.Outstanding(); out != 0 {
				t.Errorf("worker %d: %d pages outstanding after full teardown", seed, out)
			}
		}(int64(w + 1))
	}
	wg.Wait()
}
