package iova

import (
	"testing"

	"repro/internal/iommu"
	"repro/internal/mem"
)

// Table-driven edge cases for the IOVA allocators: address-space
// wraparound at the top of the 48-bit space, exhaustion and recovery,
// and reuse of coalesced adjacent ranges. Each step scripts one
// operation against one allocator and states the exact expected outcome.
type iovaStep struct {
	op      string // "alloc", "free", "outstanding"
	core    int
	npages  int
	addr    iommu.IOVA // for free; for alloc: expected address (checkAddr)
	wantErr bool
	check   bool   // alloc: verify returned address equals addr
	want    uint64 // outstanding: expected value
}

func TestAllocatorEdgeCases(t *testing.T) {
	const top = uint64(1) << (iommu.IOVABits - mem.PageShift) // 1<<36 pages
	page := func(pg uint64) iommu.IOVA { return iommu.IOVA(pg << mem.PageShift) }

	cases := []struct {
		name  string
		make  func() Allocator
		steps []iovaStep
	}{
		{
			// The allocator's range ends exactly at the top of the
			// 48-bit IOVA space: page arithmetic must not wrap.
			name: "tree wraparound at top of IOVA space",
			make: func() Allocator { return NewTree(top-8, top) },
			steps: []iovaStep{
				{op: "alloc", npages: 4, addr: page(top - 4), check: true}, // top-down
				{op: "alloc", npages: 4, addr: page(top - 8), check: true},
				{op: "alloc", npages: 1, wantErr: true}, // full
				{op: "free", addr: page(top - 4), npages: 4},
				{op: "alloc", npages: 4, addr: page(top - 4), check: true}, // reused, no wrap
				{op: "outstanding", want: 8},
			},
		},
		{
			name: "tree exhaustion and full recovery",
			make: func() Allocator { return NewTree(16, 32) },
			steps: []iovaStep{
				{op: "alloc", npages: 8, addr: page(24), check: true},
				{op: "alloc", npages: 8, addr: page(16), check: true},
				{op: "alloc", npages: 1, wantErr: true},
				{op: "free", addr: page(16), npages: 8},
				{op: "alloc", npages: 9, wantErr: true}, // half free, but only 8 contiguous
				{op: "free", addr: page(24), npages: 8},
				// Freeing both halves coalesces into one 16-page extent:
				// a full-range allocation must succeed again.
				{op: "alloc", npages: 16, addr: page(16), check: true},
				{op: "outstanding", want: 16},
			},
		},
		{
			name: "tree adjacent-range coalescing and reuse",
			make: func() Allocator { return NewTree(0, 64) },
			steps: []iovaStep{
				{op: "alloc", npages: 16, addr: page(48), check: true},
				{op: "alloc", npages: 16, addr: page(32), check: true},
				{op: "alloc", npages: 16, addr: page(16), check: true},
				// Free the middle, then its lower neighbour: they must
				// coalesce with each other (and with [0,16) still free
				// below) so a 48-page allocation fits.
				{op: "free", addr: page(32), npages: 16},
				{op: "free", addr: page(16), npages: 16},
				{op: "alloc", npages: 48, addr: page(0), check: true},
				{op: "outstanding", want: 64},
			},
		},
		{
			name: "tree rejects foreign and double frees",
			make: func() Allocator { return NewTree(0, 16) },
			steps: []iovaStep{
				{op: "alloc", npages: 4, addr: page(12), check: true},
				{op: "free", addr: page(8), npages: 4, wantErr: true},  // never allocated
				{op: "free", addr: page(12), npages: 2, wantErr: true}, // size mismatch
				{op: "free", addr: page(12), npages: 4},
				{op: "free", addr: page(12), npages: 4, wantErr: true}, // double free
			},
		},
		{
			// The magazine layer caches frees per core; the same range
			// must come straight back on the freeing core.
			name: "magazine adjacent reuse through per-core cache",
			make: func() Allocator { return NewMagazine(2, 0, 64, 4) },
			steps: []iovaStep{
				{op: "alloc", core: 0, npages: 4, addr: page(60), check: true},
				{op: "free", core: 0, addr: page(60), npages: 4},
				{op: "alloc", core: 0, npages: 4, addr: page(60), check: true}, // cache hit
				{op: "free", core: 0, addr: page(60), npages: 4},
				// A different size class misses the magazine and carves a
				// fresh range from the backend below the cached one.
				{op: "alloc", core: 0, npages: 2, addr: page(58), check: true},
				{op: "outstanding", want: 2},
			},
		},
		{
			name: "magazine exhaustion accounts for cached ranges",
			make: func() Allocator { return NewMagazine(1, 0, 8, 64) },
			steps: []iovaStep{
				{op: "alloc", npages: 8, addr: page(0), check: true},
				{op: "alloc", npages: 1, wantErr: true},
				{op: "free", addr: page(0), npages: 8},
				{op: "outstanding", want: 0}, // cached in the magazine, but free to callers
				{op: "alloc", npages: 8, addr: page(0), check: true},
				{op: "outstanding", want: 8},
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := tc.make()
			for i, s := range tc.steps {
				switch s.op {
				case "alloc":
					got, err := a.Alloc(s.core, s.npages)
					if (err != nil) != s.wantErr {
						t.Fatalf("step %d: alloc(%d) err=%v, wantErr=%v", i, s.npages, err, s.wantErr)
					}
					if err == nil && s.check && got != s.addr {
						t.Fatalf("step %d: alloc(%d) = %#x, want %#x", i, s.npages, uint64(got), uint64(s.addr))
					}
				case "free":
					err := a.Free(s.core, s.addr, s.npages)
					if (err != nil) != s.wantErr {
						t.Fatalf("step %d: free(%#x,%d) err=%v, wantErr=%v", i, uint64(s.addr), s.npages, err, s.wantErr)
					}
				case "outstanding":
					if got := a.Outstanding(); got != s.want {
						t.Fatalf("step %d: outstanding = %d, want %d", i, got, s.want)
					}
				}
			}
		})
	}
}

// TestTreeWraparoundStress brute-forces alloc/free cycles pinned to the
// very top of the IOVA space, where any off-by-one in the extent
// arithmetic would overflow uint64 page numbers.
func TestTreeWraparoundStress(t *testing.T) {
	const top = uint64(1) << (iommu.IOVABits - mem.PageShift)
	tr := NewTree(top-128, top)
	var held []struct {
		a iommu.IOVA
		n int
	}
	for round := 0; round < 200; round++ {
		n := round%7 + 1
		a, err := tr.Alloc(0, n)
		if err != nil {
			// Exhausted: free everything and keep going.
			for _, h := range held {
				if err := tr.Free(0, h.a, h.n); err != nil {
					t.Fatal(err)
				}
			}
			held = held[:0]
			continue
		}
		if a.Page() < top-128 || a.Page()+uint64(n) > top {
			t.Fatalf("allocation [%#x,+%d) escaped the arena", uint64(a), n)
		}
		held = append(held, struct {
			a iommu.IOVA
			n int
		}{a, n})
	}
	for _, h := range held {
		if err := tr.Free(0, h.a, h.n); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Outstanding() != 0 {
		t.Fatalf("outstanding = %d after freeing all", tr.Outstanding())
	}
	if got := tr.FreePages(); got != 128 {
		t.Fatalf("free pages = %d, want 128 (lost or duplicated extents)", got)
	}
}
