package iova

import (
	"fmt"
	"sync/atomic"

	"repro/internal/iommu"
)

// MagazineAllocator is a scalable IOVA allocator in the style of Peleg et
// al. (USENIX ATC'15): each core keeps per-size magazines of recently freed
// ranges, so the common alloc/free path never touches the shared backend
// tree (and thus never contends on its lock). It is what the shadow pool's
// fallback path and the huge-buffer hybrid use.
type MagazineAllocator struct {
	backend *TreeAllocator
	cap     int
	// mags[core] holds that core's per-size stacks of cached ranges.
	mags []coreMag

	// Stats. Atomic: inside one engine the simulator's park/resume
	// handshake orders all accesses, but the bench Farm runs many
	// engines on real OS threads, and a stats reader (obs publishing,
	// sweep-end merges) must be able to observe any allocator without a
	// data race. Plain uint64 increments here were the counters the race
	// detector flagged first (see TestMagazineStatsRace).
	cacheHits, cacheMisses, spills atomic.Uint64
}

// smallMagSizes is the largest npages served by the direct-indexed
// per-core stacks. Nearly every datapath allocation is a handful of pages
// (a 1500-byte buffer is one page; TSO aggregates stay under 64 KiB), so
// the hot path is an array index instead of a map lookup per alloc/free.
const smallMagSizes = 16

// coreMag is one core's magazine set: direct-indexed stacks for small
// range sizes, a lazily created map for anything bigger.
type coreMag struct {
	small [smallMagSizes][]iommu.IOVA // index npages-1
	large map[int][]iommu.IOVA
}

// MagazineStats is a coherent snapshot of the allocator's counters.
type MagazineStats struct {
	CacheHits, CacheMisses, Spills uint64
}

// Stats snapshots the magazine counters (safe from any goroutine).
func (m *MagazineAllocator) Stats() MagazineStats {
	return MagazineStats{
		CacheHits:   m.cacheHits.Load(),
		CacheMisses: m.cacheMisses.Load(),
		Spills:      m.spills.Load(),
	}
}

// NewMagazine creates a magazine allocator over a fresh backend tree
// covering [loPage, hiPage), with per-core-per-size capacity cap.
func NewMagazine(cores int, loPage, hiPage uint64, cap int) *MagazineAllocator {
	if cores < 1 {
		cores = 1
	}
	if cap < 1 {
		cap = 64
	}
	return &MagazineAllocator{
		backend: NewTree(loPage, hiPage),
		cap:     cap,
		mags:    make([]coreMag, cores),
	}
}

// Backend exposes the shared tree (for stats/tests).
func (m *MagazineAllocator) Backend() *TreeAllocator { return m.backend }

// Outstanding implements Allocator. Ranges sitting in magazines count as
// outstanding in the backend but are free from the caller's perspective;
// we report the caller's view.
func (m *MagazineAllocator) Outstanding() uint64 {
	cached := uint64(0)
	for i := range m.mags {
		cm := &m.mags[i]
		for n := range cm.small {
			cached += uint64(n+1) * uint64(len(cm.small[n]))
		}
		for n, stack := range cm.large {
			cached += uint64(n) * uint64(len(stack))
		}
	}
	return m.backend.Outstanding() - cached
}

// Alloc implements Allocator.
func (m *MagazineAllocator) Alloc(core, npages int) (iommu.IOVA, error) {
	if core < 0 || core >= len(m.mags) {
		return 0, fmt.Errorf("iova: bad core %d", core)
	}
	cm := &m.mags[core]
	if npages >= 1 && npages <= smallMagSizes {
		if stack := cm.small[npages-1]; len(stack) > 0 {
			addr := stack[len(stack)-1]
			cm.small[npages-1] = stack[:len(stack)-1]
			m.cacheHits.Add(1)
			return addr, nil
		}
	} else if stack := cm.large[npages]; len(stack) > 0 {
		addr := stack[len(stack)-1]
		cm.large[npages] = stack[:len(stack)-1]
		m.cacheHits.Add(1)
		return addr, nil
	}
	m.cacheMisses.Add(1)
	return m.backend.Alloc(core, npages)
}

// Free implements Allocator: the range goes into the core's magazine; when
// the magazine overflows, half of it spills back to the shared backend.
func (m *MagazineAllocator) Free(core int, addr iommu.IOVA, npages int) error {
	if core < 0 || core >= len(m.mags) {
		return fmt.Errorf("iova: bad core %d", core)
	}
	cm := &m.mags[core]
	var stack []iommu.IOVA
	if npages >= 1 && npages <= smallMagSizes {
		stack = append(cm.small[npages-1], addr)
	} else {
		if cm.large == nil {
			cm.large = make(map[int][]iommu.IOVA)
		}
		stack = append(cm.large[npages], addr)
	}
	if len(stack) > m.cap {
		m.spills.Add(1)
		spill := len(stack) / 2
		for _, a := range stack[:spill] {
			if err := m.backend.Free(core, a, npages); err != nil {
				return err
			}
		}
		stack = append(stack[:0], stack[spill:]...)
	}
	if npages >= 1 && npages <= smallMagSizes {
		cm.small[npages-1] = stack
	} else {
		cm.large[npages] = stack
	}
	return nil
}
