// Package iova implements I/O virtual address allocators: a Linux-style
// extent-tree allocator serialized by one lock (the baseline the paper's
// related work [38,42] targets), and a scalable per-core magazine allocator
// in the style of Peleg et al. (USENIX ATC'15), used by the shadow pool's
// fallback path and the huge-buffer hybrid.
package iova

import (
	"fmt"

	"repro/internal/iommu"
	"repro/internal/mem"
)

// Allocator hands out IOVA ranges in whole pages.
type Allocator interface {
	// Alloc returns the IOVA of a fresh range of npages pages. core
	// identifies the calling CPU (used by scalable allocators).
	Alloc(core, npages int) (iommu.IOVA, error)
	// Free returns a range to the allocator.
	Free(core int, addr iommu.IOVA, npages int) error
	// Outstanding returns the number of currently allocated pages.
	Outstanding() uint64
}

// TreeAllocator is an AVL tree of free extents augmented with the maximum
// extent size per subtree, allocating top-down (highest addresses first)
// like Linux's IOVA allocator. It is not internally locked: like the kernel
// allocator it relies on a caller-held spinlock, whose cost the DMA-API
// layer charges.
type TreeAllocator struct {
	root   *extent
	lo, hi uint64 // free page-number range covered, [lo, hi)

	// The allocated-range index (start page -> pages) is sharded by a
	// hash of the start page: per-core magazine misses from different
	// simulated cores land in different small maps instead of rehashing
	// one monolithic one. Sharding is pure host-side bookkeeping — it
	// records allocations, never chooses them — so allocation order and
	// addresses are bit-identical to the single-map layout.
	allocMap [allocShards]map[uint64]int

	// freeExt chains recycled AVL nodes (through left) so steady-state
	// alloc/free churn stops hitting the host heap.
	freeExt *extent

	// Stats
	Allocs, Frees, Failed uint64
	outstanding           uint64
}

const (
	allocShardBits = 4
	allocShards    = 1 << allocShardBits
)

func allocShard(page uint64) uint64 {
	return (page * 0x9e3779b97f4a7c15) >> (64 - allocShardBits)
}

type extent struct {
	start, size uint64
	left, right *extent
	height      int
	maxSize     uint64
}

// NewTree creates an allocator managing IOVA pages [loPage, hiPage).
func NewTree(loPage, hiPage uint64) *TreeAllocator {
	if hiPage <= loPage {
		panic("iova: empty range")
	}
	t := &TreeAllocator{lo: loPage, hi: hiPage}
	for i := range t.allocMap {
		t.allocMap[i] = make(map[uint64]int)
	}
	t.root = t.insert(t.root, loPage, hiPage-loPage)
	return t
}

// Outstanding implements Allocator.
func (t *TreeAllocator) Outstanding() uint64 { return t.outstanding }

// Alloc implements Allocator: it carves npages from the highest-addressed
// free extent that fits.
func (t *TreeAllocator) Alloc(_ int, npages int) (iommu.IOVA, error) {
	if npages <= 0 {
		return 0, fmt.Errorf("iova: alloc of %d pages", npages)
	}
	n := uint64(npages)
	e := t.findHighestFit(t.root, n)
	if e == nil {
		t.Failed++
		return 0, fmt.Errorf("iova: out of space for %d pages", npages)
	}
	// Take from the high end of the extent (top-down allocation).
	start := e.start + e.size - n
	if e.size == n {
		t.root = t.remove(t.root, e.start)
	} else {
		e.size -= n
		t.fixupPath(t.root, e.start)
	}
	t.allocMap[allocShard(start)][start] = npages
	t.Allocs++
	t.outstanding += n
	return iommu.IOVA(start << mem.PageShift), nil
}

// Free implements Allocator, coalescing the released range with adjacent
// free extents.
func (t *TreeAllocator) Free(_ int, addr iommu.IOVA, npages int) error {
	start := addr.Page()
	shard := t.allocMap[allocShard(start)]
	got, ok := shard[start]
	if !ok {
		return fmt.Errorf("iova: free of unallocated %#x", uint64(addr))
	}
	if got != npages {
		return fmt.Errorf("iova: free size mismatch at %#x: %d vs %d", uint64(addr), npages, got)
	}
	delete(shard, start)
	n := uint64(npages)
	// Coalesce with predecessor (free extent ending at start) and
	// successor (free extent beginning at start+n).
	if pred := t.findEndingAt(t.root, start); pred != nil {
		start = pred.start
		n += pred.size
		t.root = t.remove(t.root, pred.start)
	}
	if succ := t.findStart(t.root, start+n); succ != nil {
		n += succ.size
		t.root = t.remove(t.root, succ.start)
	}
	t.root = t.insert(t.root, start, n)
	t.Frees++
	t.outstanding -= uint64(npages)
	return nil
}

// FreePages returns the total number of free pages (for tests).
func (t *TreeAllocator) FreePages() uint64 {
	var sum func(e *extent) uint64
	sum = func(e *extent) uint64 {
		if e == nil {
			return 0
		}
		return e.size + sum(e.left) + sum(e.right)
	}
	return sum(t.root)
}

// ---- AVL machinery ----

func h(e *extent) int {
	if e == nil {
		return 0
	}
	return e.height
}

func ms(e *extent) uint64 {
	if e == nil {
		return 0
	}
	return e.maxSize
}

func (e *extent) update() {
	e.height = 1 + max(h(e.left), h(e.right))
	e.maxSize = e.size
	if l := ms(e.left); l > e.maxSize {
		e.maxSize = l
	}
	if r := ms(e.right); r > e.maxSize {
		e.maxSize = r
	}
}

func rotRight(y *extent) *extent {
	x := y.left
	y.left = x.right
	x.right = y
	y.update()
	x.update()
	return x
}

func rotLeft(x *extent) *extent {
	y := x.right
	x.right = y.left
	y.left = x
	x.update()
	y.update()
	return y
}

func balance(e *extent) *extent {
	e.update()
	switch bf := h(e.left) - h(e.right); {
	case bf > 1:
		if h(e.left.left) < h(e.left.right) {
			e.left = rotLeft(e.left)
		}
		return rotRight(e)
	case bf < -1:
		if h(e.right.right) < h(e.right.left) {
			e.right = rotRight(e.right)
		}
		return rotLeft(e)
	}
	return e
}

func (t *TreeAllocator) newExtent(start, size uint64) *extent {
	if e := t.freeExt; e != nil {
		t.freeExt = e.left
		*e = extent{start: start, size: size, height: 1, maxSize: size}
		return e
	}
	return &extent{start: start, size: size, height: 1, maxSize: size}
}

func (t *TreeAllocator) recycle(e *extent) {
	e.left, e.right = t.freeExt, nil
	t.freeExt = e
}

func (t *TreeAllocator) insert(e *extent, start, size uint64) *extent {
	if e == nil {
		return t.newExtent(start, size)
	}
	if start < e.start {
		e.left = t.insert(e.left, start, size)
	} else {
		e.right = t.insert(e.right, start, size)
	}
	return balance(e)
}

func (t *TreeAllocator) remove(e *extent, start uint64) *extent {
	if e == nil {
		return nil
	}
	switch {
	case start < e.start:
		e.left = t.remove(e.left, start)
	case start > e.start:
		e.right = t.remove(e.right, start)
	default:
		if e.left == nil {
			r := e.right
			t.recycle(e)
			return r
		}
		if e.right == nil {
			l := e.left
			t.recycle(e)
			return l
		}
		// Replace with in-order successor.
		s := e.right
		for s.left != nil {
			s = s.left
		}
		e.start, e.size = s.start, s.size
		e.right = t.remove(e.right, s.start)
	}
	return balance(e)
}

// findHighestFit returns the highest-addressed free extent of size >= n.
func (t *TreeAllocator) findHighestFit(e *extent, n uint64) *extent {
	for e != nil {
		if ms(e.right) >= n {
			e = e.right
			continue
		}
		if e.size >= n {
			return e
		}
		e = e.left
		if ms(e) < n {
			return nil
		}
	}
	return nil
}

// fixupPath recomputes augmentation along the path to start after an
// in-place size change.
func (t *TreeAllocator) fixupPath(e *extent, start uint64) {
	if e == nil {
		return
	}
	if start < e.start {
		t.fixupPath(e.left, start)
	} else if start > e.start {
		t.fixupPath(e.right, start)
	}
	e.update()
}

func (t *TreeAllocator) findStart(e *extent, start uint64) *extent {
	for e != nil {
		switch {
		case start < e.start:
			e = e.left
		case start > e.start:
			e = e.right
		default:
			return e
		}
	}
	return nil
}

// findEndingAt returns the free extent whose end equals page, if any.
func (t *TreeAllocator) findEndingAt(e *extent, page uint64) *extent {
	// Predecessor by start, then check its end.
	var best *extent
	for e != nil {
		if e.start < page {
			best = e
			e = e.right
		} else {
			e = e.left
		}
	}
	if best != nil && best.start+best.size == page {
		return best
	}
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
