// Package stats provides small statistics helpers (percentiles, mean) for
// benchmark results — latency distributions in particular, where the mean
// alone hides tail behaviour.
package stats

import (
	"math"
	"sort"
)

// Summary describes a sample distribution.
type Summary struct {
	Count         int
	Mean          float64
	Min, Max      float64
	P50, P90, P99 float64
	StdDev        float64
}

// Summarize computes a Summary of the samples (which it does not modify).
func Summarize(samples []float64) Summary {
	if len(samples) == 0 {
		return Summary{}
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	var sum, sq float64
	for _, v := range s {
		sum += v
		sq += v * v
	}
	n := float64(len(s))
	mean := sum / n
	variance := sq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return Summary{
		Count:  len(s),
		Mean:   mean,
		Min:    s[0],
		Max:    s[len(s)-1],
		P50:    Percentile(s, 50),
		P90:    Percentile(s, 90),
		P99:    Percentile(s, 99),
		StdDev: math.Sqrt(variance),
	}
}

// Percentile returns the p-th percentile (0-100) of sorted samples using
// linear interpolation between closest ranks.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// SummarizeUint64 converts cycle samples with a scale divisor (e.g. cycles
// per microsecond) and summarizes them.
func SummarizeUint64(samples []uint64, scale float64) Summary {
	fs := make([]float64, len(samples))
	for i, v := range samples {
		fs[i] = float64(v) / scale
	}
	return Summarize(fs)
}
