package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.Count != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Errorf("summary: %+v", s)
	}
	if math.Abs(s.StdDev-math.Sqrt(2)) > 1e-9 {
		t.Errorf("stddev = %v", s.StdDev)
	}
	if (Summary{}) != Summarize(nil) {
		t.Error("empty input should give zero summary")
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	in := []float64{5, 1, 3}
	Summarize(in)
	if in[0] != 5 || in[1] != 1 || in[2] != 3 {
		t.Error("input mutated")
	}
}

func TestPercentileInterpolation(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 10}, {100, 40}, {50, 25}, {25, 17.5}, {-5, 10}, {150, 40},
	}
	for _, c := range cases {
		if got := Percentile(sorted, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("P%.0f = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile should be 0")
	}
}

func TestPercentileMonotonicProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(100)
		s := make([]float64, n)
		for i := range s {
			s[i] = r.Float64() * 1000
		}
		sort.Float64s(s)
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 7 {
			v := Percentile(s, p)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	_ = rng
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSummarizeUint64Scale(t *testing.T) {
	s := SummarizeUint64([]uint64{2400, 4800}, 2400)
	if s.Mean != 1.5 || s.Min != 1 || s.Max != 2 {
		t.Errorf("scaled: %+v", s)
	}
}
