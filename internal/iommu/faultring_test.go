package iommu

import (
	"errors"
	"testing"

	"repro/internal/mem"
	"repro/internal/sim"
)

// The regression this file guards: fault storage used to be an unbounded
// slice, so a hostile device firing faults grew host memory without limit.
// The ring must stay at its fixed capacity no matter how many faults land.
func TestFaultRingBoundedUnderMillionFaults(t *testing.T) {
	_, _, u := setup()
	const n = 1_000_000
	for i := 0; i < n; i++ {
		// Unmapped IOVA, distinct per fault: straight through fault().
		u.fault(9, IOVA(uint64(i)<<mem.PageShift), PermWrite, "storm")
	}
	ring := u.FaultRing()
	if ring.Len() != DefaultFaultRingCap {
		t.Fatalf("ring len = %d, want capacity %d", ring.Len(), DefaultFaultRingCap)
	}
	if got := len(u.Faults()); got != DefaultFaultRingCap {
		t.Fatalf("Faults() len = %d, want %d", got, DefaultFaultRingCap)
	}
	if ring.Recorded() != n {
		t.Errorf("recorded = %d, want %d", ring.Recorded(), n)
	}
	if want := uint64(n - DefaultFaultRingCap); ring.Overflow() != want {
		t.Errorf("overflow = %d, want %d", ring.Overflow(), want)
	}
	// Overwrite-oldest: the snapshot holds the newest capacity-many
	// faults, oldest first.
	snap := ring.Snapshot()
	first := uint64(n - DefaultFaultRingCap)
	if snap[0].Addr.Page() != first {
		t.Errorf("oldest retained fault page = %#x, want %#x", snap[0].Addr.Page(), first)
	}
	if snap[len(snap)-1].Addr.Page() != n-1 {
		t.Errorf("newest retained fault page = %#x, want %#x", snap[len(snap)-1].Addr.Page(), uint64(n-1))
	}
	if u.FaultCount != n {
		t.Errorf("FaultCount = %d, want %d", u.FaultCount, n)
	}
}

func TestFaultRingConsume(t *testing.T) {
	r := NewFaultRing(4)
	for i := 0; i < 6; i++ {
		r.Push(Fault{Addr: IOVA(i)})
	}
	// 6 pushed into 4 slots: 2 overflowed, ring holds 2..5.
	got := r.Consume(3)
	if len(got) != 3 || got[0].Addr != 2 || got[2].Addr != 4 {
		t.Fatalf("consume(3) = %+v", got)
	}
	if r.Len() != 1 {
		t.Fatalf("len after consume = %d", r.Len())
	}
	// max <= 0 drains everything.
	rest := r.Consume(0)
	if len(rest) != 1 || rest[0].Addr != 5 {
		t.Fatalf("drain = %+v", rest)
	}
	if r.Len() != 0 || len(r.Consume(10)) != 0 {
		t.Error("ring should be empty")
	}
	// Counters survive consumption.
	if r.Recorded() != 6 || r.Overflow() != 2 {
		t.Errorf("recorded=%d overflow=%d, want 6/2", r.Recorded(), r.Overflow())
	}
}

func TestSetFaultRingCap(t *testing.T) {
	_, _, u := setup()
	u.SetFaultRingCap(2)
	for i := 0; i < 5; i++ {
		u.fault(1, IOVA(uint64(i)<<mem.PageShift), PermRead, "x")
	}
	if got := len(u.Faults()); got != 2 {
		t.Fatalf("faults retained = %d, want 2", got)
	}
	if u.FaultRing().Overflow() != 3 {
		t.Errorf("overflow = %d, want 3", u.FaultRing().Overflow())
	}
}

func TestBlockRejectsAtRootWithoutFaultRecord(t *testing.T) {
	_, m, u := setup()
	phys, _ := m.AllocPages(0, 1)
	if err := u.Map(3, 0x5000, phys, mem.PageSize, PermRW); err != nil {
		t.Fatal(err)
	}
	// Warm the IOTLB, then block: the block must win over a cached entry.
	if _, _, f := u.Translate(3, 0x5000, PermRead); f != nil {
		t.Fatal(f)
	}
	hooked := 0
	u.FaultHook = func(Fault) { hooked++ }
	u.Block(3)
	if !u.Blocked(3) || u.BlockedDevices() != 1 {
		t.Fatal("device should be blocked")
	}
	faultsBefore, recBefore := u.FaultCount, u.FaultRing().Recorded()
	_, _, f := u.Translate(3, 0x5000, PermRead)
	if f == nil || f.Reason != "device quarantined" {
		t.Fatalf("blocked translate fault = %+v", f)
	}
	// Containment must be cheap and quiet: no fault record, no hook, no
	// fault-rate feedback for the policy engine to chase.
	if u.FaultCount != faultsBefore || u.FaultRing().Recorded() != recBefore || hooked != 0 {
		t.Error("blocked DMA must not record faults or fire the hook")
	}
	if u.BlockedDMAs != 1 {
		t.Errorf("BlockedDMAs = %d, want 1", u.BlockedDMAs)
	}
	// Other devices are untouched.
	if u.Blocked(4) {
		t.Error("unrelated device reported blocked")
	}
	u.Unblock(3)
	if u.Blocked(3) || u.BlockedDevices() != 0 {
		t.Fatal("unblock should clear the bit")
	}
	if _, _, f := u.Translate(3, 0x5000, PermRead); f != nil {
		t.Fatalf("translate after unblock: %v", f)
	}
}

func TestWipeDomainAndUnmapDebt(t *testing.T) {
	_, m, u := setup()
	phys, _ := m.AllocPages(0, 4)
	if err := u.Map(5, 0x10000, phys, 4*mem.PageSize, PermRW); err != nil {
		t.Fatal(err)
	}
	if n := u.WipeDomain(5); n != 4 {
		t.Fatalf("wiped %d pages, want 4", n)
	}
	if _, _, f := u.Translate(5, 0x10000, PermRead); f == nil {
		t.Fatal("translate after wipe should fault")
	}
	// The mapping owner tears down what the wipe already destroyed: the
	// wipe debt absorbs exactly the wiped pages...
	if err := u.Unmap(5, 0x10000, 4*mem.PageSize); err != nil {
		t.Fatalf("unmap of wiped range should be tolerated: %v", err)
	}
	// ...and not a page more: a genuine double-unmap still errors.
	if err := u.Unmap(5, 0x10000, mem.PageSize); err == nil {
		t.Fatal("double unmap beyond the wipe debt must fail")
	}
}

func TestInvQueueTimeoutAndRecover(t *testing.T) {
	eng, _, u := setup()
	q := u.Queue
	q.StallCycles = 100_000
	q.Timeout = 2048
	q.RetryBackoff = 512
	q.MaxRetries = 2
	var waited uint64
	var err error
	eng.Spawn("drv", 0, 0, func(p *sim.Proc) {
		start := p.Now()
		t0 := q.SubmitGlobal(p)
		err = q.WaitForErr(p, t0)
		waited = p.Now() - start
	})
	eng.Run(1 << 40)
	eng.Stop()
	if !errors.Is(err, ErrInvTimeout) {
		t.Fatalf("WaitForErr under stall = %v, want ErrInvTimeout", err)
	}
	if waited > 10_000 {
		t.Errorf("timed-out wait consumed %d cycles; deadline not honoured", waited)
	}
	if q.Timeouts != 1 {
		t.Errorf("Timeouts = %d, want 1", q.Timeouts)
	}

	// WaitRecover: bounded retries, then drain-and-recover. After the
	// recovery the queue must be usable again at normal latency.
	eng2, _, u2 := setupFresh()
	q2 := u2.Queue
	q2.StallCycles = 100_000
	q2.Timeout = 2048
	q2.RetryBackoff = 512
	q2.MaxRetries = 2
	var recoverAt, afterAt uint64
	eng2.Spawn("drv", 0, 0, func(p *sim.Proc) {
		t0 := q2.SubmitGlobal(p)
		q2.WaitRecover(p, t0)
		recoverAt = p.Now()
		q2.StallCycles = 0
		t1 := q2.SubmitGlobal(p)
		q2.WaitRecover(p, t1)
		afterAt = p.Now()
	})
	eng2.Run(1 << 40)
	eng2.Stop()
	if q2.Timeouts == 0 || q2.Recoveries != 1 {
		t.Fatalf("timeouts=%d recoveries=%d, want >0/1", q2.Timeouts, q2.Recoveries)
	}
	if recoverAt > 20_000 {
		t.Errorf("recovery completed at %d; retries/recovery should bound the stall", recoverAt)
	}
	if afterAt-recoverAt > 10_000 {
		t.Errorf("post-recovery wait took %d cycles; hw head not reset", afterAt-recoverAt)
	}
}

func TestInvQueueZeroTimeoutWaitsForever(t *testing.T) {
	eng, _, u := setup()
	q := u.Queue
	q.StallCycles = 50_000
	var done uint64
	eng.Spawn("drv", 0, 0, func(p *sim.Proc) {
		t0 := q.SubmitGlobal(p)
		q.WaitRecover(p, t0) // Timeout 0: identical to WaitFor
		done = p.Now()
	})
	eng.Run(1 << 40)
	eng.Stop()
	if done < 50_000 {
		t.Fatalf("zero-timeout wait finished at %d, should ride out the stall", done)
	}
	if q.Timeouts != 0 || q.Recoveries != 0 {
		t.Errorf("timeouts=%d recoveries=%d, want 0/0 with Timeout=0", q.Timeouts, q.Recoveries)
	}
}

func setupFresh() (*sim.Engine, *mem.Memory, *IOMMU) { return setup() }
