// Package iommu simulates an Intel VT-d style I/O memory management unit:
// per-device protection domains backed by 4-level radix page tables, an
// IOTLB that caches translations, and a cyclic invalidation queue processed
// asynchronously by a simulated hardware engine.
//
// Every DMA a device issues is translated through this package, so the
// security properties the paper discusses — page-granularity protection,
// the deferred-invalidation vulnerability window, shadow-buffer containment
// — are emergent behaviours of the page table + IOTLB state, not scripted
// outcomes.
package iommu

import (
	"fmt"

	"repro/internal/cycles"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/trace"
)

// DeviceID identifies a DMA-capable device (BDF in real hardware).
type DeviceID uint16

// IOVA is an I/O virtual address. x86 IOVAs are 48 bits wide (paper §5.3).
type IOVA uint64

// IOVABits is the width of the IOVA space.
const IOVABits = 48

// Page returns the IOVA page number.
func (v IOVA) Page() uint64 { return uint64(v) >> mem.PageShift }

// Offset returns the offset within the IOVA page.
func (v IOVA) Offset() int { return int(uint64(v) & (mem.PageSize - 1)) }

// Perm is a device access permission.
type Perm uint8

// Permission bits. The DMA API's "direction" maps onto these: a buffer the
// device reads (DMA_TO_DEVICE) is mapped PermRead, one it writes
// (DMA_FROM_DEVICE) PermWrite.
const (
	PermRead Perm = 1 << iota
	PermWrite
	PermRW = PermRead | PermWrite
)

func (p Perm) String() string {
	switch p {
	case PermRead:
		return "r"
	case PermWrite:
		return "w"
	case PermRW:
		return "rw"
	}
	return fmt.Sprintf("perm(%d)", uint8(p))
}

// Fault records a blocked DMA.
type Fault struct {
	Dev    DeviceID
	Addr   IOVA
	Want   Perm
	Reason string
	At     uint64 // virtual time
}

func (f Fault) Error() string {
	return fmt.Sprintf("iommu fault: dev %d iova %#x want %s at %d: %s",
		f.Dev, uint64(f.Addr), f.Want, f.At, f.Reason)
}

// IOMMU is the simulated unit.
type IOMMU struct {
	eng   *sim.Engine
	mem   *mem.Memory
	costs *cycles.Costs

	domains     map[DeviceID]*Domain
	passthrough map[DeviceID]bool
	tlb         *IOTLB
	Queue       *InvQueue

	// ring is the fixed-capacity fault recording ring (see faultring.go).
	// A fault storm costs O(DefaultFaultRingCap) memory, never more.
	ring *FaultRing
	// blocked holds quarantined devices whose DMAs fail at the root.
	blocked   map[DeviceID]bool
	FaultHook func(Fault)

	// WalkSerialize, when true, serializes page-table walks through a
	// single hardware page walker: concurrent misses (including faulting
	// walks from a misbehaving device) queue behind each other, so a fault
	// storm degrades innocent devices' translation latency until the storm
	// source is quarantined. Off by default — the paper's experiments model
	// an uncontended walker — and enabled by chaos/containment scenarios.
	WalkSerialize bool
	walkFreeAt    uint64

	// Trace, when set, records map/unmap/invalidation/fault events
	// (tracepoint-style debugging; see internal/trace).
	Trace *trace.Tracer

	// msiGrants holds the interrupt-remapping table: per device, the
	// vectors the OS granted it (see msi.go).
	msiGrants map[DeviceID]map[uint32]bool
	msiStats  MSIStats

	// Stats
	Translations uint64
	FaultCount   uint64
	// BlockedDMAs counts DMAs rejected at the root because the issuing
	// device was quarantined (these are not faults: no record, no hook).
	BlockedDMAs uint64
}

// New creates an IOMMU attached to the machine's memory and engine.
func New(eng *sim.Engine, m *mem.Memory, costs *cycles.Costs) *IOMMU {
	u := &IOMMU{
		eng:         eng,
		mem:         m,
		costs:       costs,
		domains:     make(map[DeviceID]*Domain),
		passthrough: make(map[DeviceID]bool),
		tlb:         NewIOTLB(64, 4),
		ring:        NewFaultRing(DefaultFaultRingCap),
	}
	u.Queue = newInvQueue(eng, u, costs)
	return u
}

// TLB exposes the IOTLB (for stats and tests).
func (u *IOMMU) TLB() *IOTLB { return u.tlb }

// Faults returns a snapshot of the faults currently held in the recording
// ring, oldest first. Unlike the pre-ring behaviour this is bounded: under
// a fault storm older faults are overwritten (see FaultRing.Overflow) and
// FaultCount keeps the true total.
func (u *IOMMU) Faults() []Fault { return u.ring.Snapshot() }

// SetPassthrough disables translation for a device ("no-iommu" mode: IOVA
// is used directly as a physical address, no protection).
func (u *IOMMU) SetPassthrough(dev DeviceID, on bool) {
	u.passthrough[dev] = on
}

// DomainFor returns (creating if needed) the device's protection domain.
func (u *IOMMU) DomainFor(dev DeviceID) *Domain {
	d, ok := u.domains[dev]
	if !ok {
		d = newDomain(dev)
		u.domains[dev] = d
	}
	return d
}

// Map installs a mapping iova→phys of size bytes (rounded out to whole
// pages) with the given device permissions. It fails if any page of the
// range is already mapped (matching the DMA API contract that every map
// gets a fresh IOVA interval).
func (u *IOMMU) Map(dev DeviceID, iova IOVA, phys mem.Phys, size int, perm Perm) error {
	if size <= 0 {
		return fmt.Errorf("iommu: map of %d bytes", size)
	}
	if iova.Offset() != phys.Offset() {
		return fmt.Errorf("iommu: iova/phys offset mismatch (%#x vs %#x)", uint64(iova), uint64(phys))
	}
	d := u.DomainFor(dev)
	first := iova.Page()
	last := (uint64(iova) + uint64(size) - 1) >> mem.PageShift
	// Validate first: mapping must be all-or-nothing.
	for pg := first; pg <= last; pg++ {
		if _, ok := d.lookup(pg); ok {
			return fmt.Errorf("iommu: iova page %#x already mapped", pg)
		}
	}
	pfn := phys.PFN()
	for pg := first; pg <= last; pg++ {
		d.set(pg, pte{pfn: pfn + (pg - first), perm: perm, valid: true})
	}
	d.mappedPages += last - first + 1
	if u.Trace.Enabled() { // guard: the vararg boxing allocates even when tracing is off
		u.Trace.Emit(u.eng.Now(), trace.CatMap, "dev %d iova %#x -> phys %#x size %d perm %s",
			dev, uint64(iova), uint64(phys), size, perm)
	}
	return nil
}

// Unmap clears the page-table entries covering [iova, iova+size). It does
// NOT invalidate the IOTLB — that is the caller's (protection strategy's)
// responsibility, which is precisely the crux of strict vs deferred
// protection.
func (u *IOMMU) Unmap(dev DeviceID, iova IOVA, size int) error {
	d := u.DomainFor(dev)
	first := iova.Page()
	last := (uint64(iova) + uint64(size) - 1) >> mem.PageShift
	var cleared, missing uint64
	firstMissing := uint64(0)
	for pg := first; pg <= last; pg++ {
		if d.clear(pg) {
			cleared++
		} else {
			if missing == 0 {
				firstMissing = pg
			}
			missing++
		}
	}
	d.mappedPages -= cleared
	if missing > 0 {
		// Pages already gone: tolerated only as repayment of a quarantine
		// wipe (WipeDomain) — the mapping owner tearing down an entry the
		// policy engine already destroyed. Anything beyond the debt is a
		// genuine double-unmap bug.
		if missing > d.wipeDebt {
			d.wipeDebt = 0
			return fmt.Errorf("iommu: unmap of unmapped iova page %#x", firstMissing)
		}
		d.wipeDebt -= missing
	}
	if u.Trace.Enabled() {
		u.Trace.Emit(u.eng.Now(), trace.CatUnmap, "dev %d iova %#x size %d", dev, uint64(iova), size)
	}
	return nil
}

// Translate resolves one IOVA for a DMA of the given access type. It
// returns the physical address and the device-side latency (IOTLB hit or
// page walk); on failure it records and returns a fault.
//
// Crucially, the IOTLB is consulted FIRST: a stale cached translation lets
// a DMA through even after the page-table entry was cleared — the deferred
// protection vulnerability window (paper §2.2.1, §4).
func (u *IOMMU) Translate(dev DeviceID, iova IOVA, want Perm) (mem.Phys, uint64, *Fault) {
	u.Translations++
	if u.passthrough[dev] {
		return mem.Phys(iova), 0, nil
	}
	if u.blocked[dev] {
		// Quarantined: rejected at the root port. Zero latency, no fault
		// record, no hook — containment must be cheaper than translation.
		u.BlockedDMAs++
		return 0, 0, &Fault{Dev: dev, Addr: iova, Want: want,
			Reason: "device quarantined", At: u.eng.Now()}
	}
	pg := iova.Page()
	if e, ok := u.tlb.Lookup(dev, pg, u.eng.Now()); ok {
		if e.perm&want != want {
			return 0, 0, u.fault(dev, iova, want, "permission denied (iotlb)")
		}
		return mem.Phys(e.pfn<<mem.PageShift) + mem.Phys(iova.Offset()), 0, nil
	}
	walk := u.walkLatency()
	d, ok := u.domains[dev]
	if !ok {
		return 0, walk, u.fault(dev, iova, want, "no domain")
	}
	e, ok := d.lookup(pg)
	if !ok {
		return 0, walk, u.fault(dev, iova, want, "not present")
	}
	if e.perm&want != want {
		return 0, walk, u.fault(dev, iova, want, "permission denied")
	}
	u.tlb.Insert(dev, pg, e, u.eng.Now())
	return mem.Phys(e.pfn<<mem.PageShift) + mem.Phys(iova.Offset()), walk, nil
}

// walkLatency is the device-side cost of one page-table walk. With
// WalkSerialize the single hardware walker is occupied for IOTLBWalk
// cycles per miss, so concurrent misses — a hostile device's fault storm
// included — queue behind each other and the observed latency grows.
func (u *IOMMU) walkLatency() uint64 {
	w := u.costs.IOTLBWalk
	if !u.WalkSerialize {
		return w
	}
	now := u.eng.Now()
	start := u.walkFreeAt
	if now > start {
		start = now
	}
	u.walkFreeAt = start + w
	return start + w - now
}

func (u *IOMMU) fault(dev DeviceID, iova IOVA, want Perm, reason string) *Fault {
	u.FaultCount++
	f := Fault{Dev: dev, Addr: iova, Want: want, Reason: reason, At: u.eng.Now()}
	u.ring.Push(f)
	if u.Trace.Enabled() {
		u.Trace.Emit(f.At, trace.CatFault, "dev %d iova %#x want %s: %s", dev, uint64(iova), want, reason)
	}
	if u.FaultHook != nil {
		u.FaultHook(f)
	}
	return &f
}

// DMAResult reports the outcome of a device DMA burst.
type DMAResult struct {
	Done    int    // bytes transferred before any fault
	Latency uint64 // device-side latency (translations + PCIe)
	Fault   *Fault
}

// DMARead performs a device read (device <- memory) of len(b) bytes from
// iova, stopping at the first faulting page.
func (u *IOMMU) DMARead(dev DeviceID, iova IOVA, b []byte) DMAResult {
	return u.dma(dev, iova, b, false)
}

// DMAWrite performs a device write (device -> memory) of len(b) bytes to
// iova, stopping at the first faulting page.
func (u *IOMMU) DMAWrite(dev DeviceID, iova IOVA, b []byte) DMAResult {
	return u.dma(dev, iova, b, true)
}

func (u *IOMMU) dma(dev DeviceID, iova IOVA, b []byte, write bool) DMAResult {
	res := DMAResult{Latency: u.costs.DMALatency}
	want := PermRead
	if write {
		want = PermWrite
	}
	for res.Done < len(b) {
		at := iova + IOVA(res.Done)
		phys, lat, fault := u.Translate(dev, at, want)
		res.Latency += lat
		if fault != nil {
			res.Fault = fault
			return res
		}
		n := mem.PageSize - at.Offset()
		if n > len(b)-res.Done {
			n = len(b) - res.Done
		}
		var err error
		if write {
			err = u.mem.Write(phys, b[res.Done:res.Done+n])
		} else {
			err = u.mem.Read(phys, b[res.Done:res.Done+n])
		}
		if err != nil {
			// Translated to an unallocated frame (e.g. freed memory):
			// the bus aborts the transaction.
			res.Fault = u.fault(dev, at, want, "bus error: "+err.Error())
			return res
		}
		res.Done += n
	}
	return res
}
