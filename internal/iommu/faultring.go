package iommu

import (
	"repro/internal/trace"
)

// Fault recording ring and device quarantine: the recovery-side face of the
// IOMMU. Real VT-d hardware logs blocked DMAs into a small bank of fault
// recording registers; when software does not drain them fast enough the
// Primary Fault Overflow bit is set and further faults are dropped, not
// accumulated. We model that here with a fixed-capacity ring so a fault
// storm from a hostile device costs O(capacity) memory instead of growing
// an unbounded slice (the pre-ring behaviour), plus a per-device block bit
// that fails a quarantined device's DMAs at the root — before any
// translation work — so containment is cheap.

// DefaultFaultRingCap is the default fault recording ring capacity. VT-d
// implementations expose a handful of fault recording registers; we keep a
// somewhat deeper software-visible ring so tests and the policy engine can
// inspect a useful window of recent faults.
const DefaultFaultRingCap = 256

// FaultRing is a fixed-capacity ring of recorded faults with VT-d style
// overflow semantics: once full, new faults overwrite the oldest and the
// overflow counter advances. Memory use is bounded by the capacity forever.
type FaultRing struct {
	buf      []Fault
	head     int // index of the oldest recorded fault
	n        int // live entries (≤ cap)
	recorded uint64
	overflow uint64
}

// NewFaultRing creates a ring with the given capacity (minimum 1).
func NewFaultRing(capacity int) *FaultRing {
	if capacity < 1 {
		capacity = 1
	}
	return &FaultRing{buf: make([]Fault, capacity)}
}

// Push records a fault, overwriting the oldest entry when full.
func (r *FaultRing) Push(f Fault) {
	r.recorded++
	if r.n < len(r.buf) {
		r.buf[(r.head+r.n)%len(r.buf)] = f
		r.n++
		return
	}
	// Full: drop the oldest (overflow), record the newest.
	r.buf[r.head] = f
	r.head = (r.head + 1) % len(r.buf)
	r.overflow++
}

// Len returns the number of faults currently held.
func (r *FaultRing) Len() int { return r.n }

// Cap returns the ring capacity.
func (r *FaultRing) Cap() int { return len(r.buf) }

// Recorded returns the total number of faults ever pushed.
func (r *FaultRing) Recorded() uint64 { return r.recorded }

// Overflow returns how many faults were lost to overwrite because the ring
// was full (the Primary Fault Overflow analogue).
func (r *FaultRing) Overflow() uint64 { return r.overflow }

// Snapshot returns the held faults oldest-first without consuming them.
func (r *FaultRing) Snapshot() []Fault {
	out := make([]Fault, 0, r.n)
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(r.head+i)%len(r.buf)])
	}
	return out
}

// Consume removes and returns up to max faults, oldest-first (the software
// fault handler draining the recording registers). max <= 0 drains all.
func (r *FaultRing) Consume(max int) []Fault {
	if max <= 0 || max > r.n {
		max = r.n
	}
	out := make([]Fault, 0, max)
	for i := 0; i < max; i++ {
		out = append(out, r.buf[r.head])
		r.head = (r.head + 1) % len(r.buf)
		r.n--
	}
	return out
}

// FaultRing exposes the IOMMU's fault recording ring.
func (u *IOMMU) FaultRing() *FaultRing { return u.ring }

// SetFaultRingCap replaces the ring with an empty one of the given
// capacity (for tests and chaos scenarios; resets held faults and
// overflow, not FaultCount).
func (u *IOMMU) SetFaultRingCap(capacity int) {
	u.ring = NewFaultRing(capacity)
}

// Block quarantines a device: every subsequent DMA it issues is rejected
// at the root port with zero translation latency — no page walk, no fault
// record, no FaultHook (the device is already contained; feeding its
// rejections back into fault-rate policy would be a feedback loop). Any
// cached translations are dropped immediately: quarantine is a synchronous
// software action (context-entry update + invalidation by the host), not a
// queued one, so no stale IOTLB entry can outlive it.
func (u *IOMMU) Block(dev DeviceID) {
	if u.blocked == nil {
		u.blocked = make(map[DeviceID]bool)
	}
	u.blocked[dev] = true
	u.tlb.InvalidateDevice(dev)
	u.Trace.Emit(u.eng.Now(), trace.CatFault, "dev %d blocked (quarantine)", dev)
}

// Unblock lifts a device's quarantine (readmission after cool-down).
func (u *IOMMU) Unblock(dev DeviceID) {
	delete(u.blocked, dev)
	u.Trace.Emit(u.eng.Now(), trace.CatFault, "dev %d unblocked (readmitted)", dev)
}

// Blocked reports whether the device is quarantined.
func (u *IOMMU) Blocked(dev DeviceID) bool { return u.blocked[dev] }

// DetachDevice models the OS side of a surprise hot-unplug: the device's
// passthrough bypass (if any) is revoked, its domain's page tables are
// torn down, and its cached translations are dropped. A DMA the removed
// (or ghost) device still issues afterwards faults — there is no bypass
// and no translation state left. Returns the number of pages wiped;
// mapping owners' later unmaps of wiped pages are tolerated via the
// domain's wipe debt, as for WipeDomain.
func (u *IOMMU) DetachDevice(dev DeviceID) uint64 {
	delete(u.passthrough, dev)
	n := u.WipeDomain(dev)
	u.Trace.Emit(u.eng.Now(), trace.CatUnmap, "dev %d detached (hot-unplug)", dev)
	return n
}

// BlockedDevices returns the number of currently quarantined devices.
func (u *IOMMU) BlockedDevices() int { return len(u.blocked) }

// WipeDomain tears down every mapping of the device's domain (quarantine
// with TeardownMappings: a fresh page-table root) and drops its cached
// translations. It returns the number of pages wiped. The wipe leaves a
// "debt": owners of the torn-down mappings will still call Unmap during
// their own teardown, and those unmaps of already-wiped pages are
// tolerated up to the debt instead of erroring.
func (u *IOMMU) WipeDomain(dev DeviceID) uint64 {
	d := u.DomainFor(dev)
	n := d.mappedPages
	d.resetRoot()
	d.mappedPages = 0
	d.wipeDebt += n
	u.tlb.InvalidateDevice(dev)
	u.Trace.Emit(u.eng.Now(), trace.CatUnmap, "dev %d domain wiped (%d pages)", dev, n)
	return n
}
