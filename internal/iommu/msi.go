package iommu

// Message-signaled interrupts. A device raises an interrupt by DMA-writing
// a vector number to the interrupt doorbell window (0xFEExxxxx on x86).
// That makes interrupt delivery an ATTACK SURFACE exactly like any other
// DMA: a hostile device can spam doorbell writes at vectors it was never
// granted — an interrupt storm aimed at another device's handlers.
//
// VT-d closes it with interrupt remapping: when translation is active,
// doorbell writes are matched against per-device granted vectors and
// everything else is blocked. Translation-free designs (no-iommu,
// swiotlb's bounce buffering) pass the raw write through to the
// interrupt controller — the spurious vector is delivered.
//
// The model is accounting-only: MSI writes cost no simulated time and
// publish no gated metrics, so wiring them into the NIC's interrupt
// paths changes no benchmark artifact. internal/campaign's
// interrupt-storm payload reads the counters for ground truth.

// MSIBase is the doorbell window base address (x86 0xFEE00000).
const MSIBase IOVA = 0xFEE00000

// MSIResult reports the outcome of one doorbell write.
type MSIResult struct {
	Delivered bool   // reached the interrupt controller
	Vector    uint32 // vector carried by the write
	Granted   bool   // the OS had granted this device the vector
}

// MSIStats are the interrupt-remapping counters. Spurious counts
// deliveries of ungranted vectors — each one is a breach: only
// translation-free designs ever increment it.
type MSIStats struct {
	Writes    uint64
	Delivered uint64
	Blocked   uint64
	Spurious  uint64
}

// GrantMSI programs an interrupt-remapping table entry: dev may signal
// vector. The NIC grants one vector per queue at attach time.
func (u *IOMMU) GrantMSI(dev DeviceID, vector uint32) {
	if u.msiGrants == nil {
		u.msiGrants = make(map[DeviceID]map[uint32]bool)
	}
	g := u.msiGrants[dev]
	if g == nil {
		g = make(map[uint32]bool)
		u.msiGrants[dev] = g
	}
	g[vector] = true
}

// MSIWrite models a device's doorbell write carrying data (vector in the
// low byte). With translation active the write passes interrupt
// remapping: ungranted vectors are blocked. Passthrough devices bypass
// remapping entirely — the raw write reaches the interrupt controller,
// granted or not.
func (u *IOMMU) MSIWrite(dev DeviceID, addr IOVA, data uint32) MSIResult {
	vector := data & 0xFF
	granted := u.msiGrants[dev][vector]
	res := MSIResult{Vector: vector, Granted: granted}
	u.msiStats.Writes++
	if u.blocked[dev] {
		// Quarantined at the root port: nothing gets through, interrupts
		// included.
		u.msiStats.Blocked++
		return res
	}
	if u.passthrough[dev] {
		res.Delivered = true
		u.msiStats.Delivered++
		if !granted {
			u.msiStats.Spurious++
		}
		return res
	}
	if !granted {
		u.msiStats.Blocked++
		return res
	}
	res.Delivered = true
	u.msiStats.Delivered++
	return res
}

// MSIStats snapshots the interrupt-remapping counters.
func (u *IOMMU) MSIStats() MSIStats { return u.msiStats }
