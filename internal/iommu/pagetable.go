package iommu

// Domain is a per-device protection domain: a 4-level radix page table
// translating 48-bit IOVAs to physical frames, as in Intel VT-d
// second-level translation.
type Domain struct {
	dev         DeviceID
	root        *ptNode
	mappedPages uint64
	// wipeDebt counts pages destroyed by a quarantine WipeDomain whose
	// owners have not yet unmapped them; those later unmaps are tolerated
	// (see IOMMU.Unmap) instead of erroring as double-unmaps.
	wipeDebt uint64
}

const (
	ptLevels    = 4
	ptFanout    = 512 // 9 bits per level
	ptLevelBits = 9
)

type pte struct {
	pfn   uint64
	perm  Perm
	valid bool
}

type ptNode struct {
	children [ptFanout]*ptNode // interior levels
	ptes     [ptFanout]pte     // leaf level only
}

func newDomain(dev DeviceID) *Domain {
	return &Domain{dev: dev, root: &ptNode{}}
}

// Dev returns the owning device.
func (d *Domain) Dev() DeviceID { return d.dev }

// MappedPages returns the number of currently mapped IOVA pages.
func (d *Domain) MappedPages() uint64 { return d.mappedPages }

// indices decomposes an IOVA page number into the per-level radix indices,
// most significant level first.
func indices(page uint64) [ptLevels]int {
	var ix [ptLevels]int
	for l := ptLevels - 1; l >= 0; l-- {
		ix[ptLevels-1-l] = int((page >> (uint(l) * ptLevelBits)) & (ptFanout - 1))
	}
	return ix
}

// lookup walks the page table for an IOVA page.
func (d *Domain) lookup(page uint64) (pte, bool) {
	ix := indices(page)
	n := d.root
	for l := 0; l < ptLevels-1; l++ {
		n = n.children[ix[l]]
		if n == nil {
			return pte{}, false
		}
	}
	e := n.ptes[ix[ptLevels-1]]
	return e, e.valid
}

// set installs a leaf PTE, allocating interior nodes on demand.
func (d *Domain) set(page uint64, e pte) {
	ix := indices(page)
	n := d.root
	for l := 0; l < ptLevels-1; l++ {
		next := n.children[ix[l]]
		if next == nil {
			next = &ptNode{}
			n.children[ix[l]] = next
		}
		n = next
	}
	n.ptes[ix[ptLevels-1]] = e
}

// clear removes a leaf PTE, reporting whether it was present. Interior
// nodes are retained (as Linux retains page-table pages until a flush).
func (d *Domain) clear(page uint64) bool {
	ix := indices(page)
	n := d.root
	for l := 0; l < ptLevels-1; l++ {
		n = n.children[ix[l]]
		if n == nil {
			return false
		}
	}
	if !n.ptes[ix[ptLevels-1]].valid {
		return false
	}
	n.ptes[ix[ptLevels-1]] = pte{}
	return true
}
