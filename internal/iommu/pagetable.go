package iommu

// Domain is a per-device protection domain: a 4-level radix page table
// translating 48-bit IOVAs to physical frames, as in Intel VT-d
// second-level translation.
type Domain struct {
	dev         DeviceID
	root        *ptNode
	mappedPages uint64
	// wipeDebt counts pages destroyed by a quarantine WipeDomain whose
	// owners have not yet unmapped them; those later unmaps are tolerated
	// (see IOMMU.Unmap) instead of erroring as double-unmaps.
	wipeDebt uint64

	// Last-leaf cache: datapath map/unmap/translate traffic is strongly
	// clustered (a queue's buffers tile a few leaf nodes), so remembering
	// the last leaf visited turns most walks into one compare. leafKey is
	// page >> ptLevelBits, unique per leaf node. The cache is host-side
	// only — it changes which pointers are chased, never the PTE values
	// observed.
	leaf    *ptNode
	leafKey uint64
}

const (
	ptLevels    = 4
	ptFanout    = 512 // 9 bits per level
	ptLevelBits = 9
)

type pte struct {
	pfn   uint64
	perm  Perm
	valid bool
}

// ptNode is one radix node. Interior nodes populate children; leaf nodes
// populate ptes. The role-specific slices are allocated on first use so a
// node only ever pays for the array its level needs (a combined
// fixed-array struct made every node ~16 KiB, which at 128 queues of
// mapped rings dominated the simulator's resident set).
type ptNode struct {
	children []*ptNode
	ptes     []pte
}

func newDomain(dev DeviceID) *Domain {
	return &Domain{dev: dev, root: &ptNode{}}
}

// Dev returns the owning device.
func (d *Domain) Dev() DeviceID { return d.dev }

// MappedPages returns the number of currently mapped IOVA pages.
func (d *Domain) MappedPages() uint64 { return d.mappedPages }

// resetRoot replaces the page table with an empty one (quarantine wipe),
// dropping the leaf cache with it.
func (d *Domain) resetRoot() {
	d.root = &ptNode{}
	d.leaf = nil
	d.leafKey = 0
}

// leafFor walks to the leaf node covering page, optionally creating the
// path. It returns nil when the path is absent and create is false.
func (d *Domain) leafFor(page uint64, create bool) *ptNode {
	key := page >> ptLevelBits
	if d.leaf != nil && d.leafKey == key {
		return d.leaf
	}
	n := d.root
	for l := ptLevels - 1; l >= 1; l-- {
		idx := int((page >> (uint(l) * ptLevelBits)) & (ptFanout - 1))
		if n.children == nil {
			if !create {
				return nil
			}
			n.children = make([]*ptNode, ptFanout)
		}
		next := n.children[idx]
		if next == nil {
			if !create {
				return nil
			}
			next = &ptNode{}
			n.children[idx] = next
		}
		n = next
	}
	if n.ptes == nil {
		if !create {
			return nil
		}
		n.ptes = make([]pte, ptFanout)
	}
	d.leaf, d.leafKey = n, key
	return n
}

// lookup walks the page table for an IOVA page.
func (d *Domain) lookup(page uint64) (pte, bool) {
	n := d.leafFor(page, false)
	if n == nil {
		return pte{}, false
	}
	e := n.ptes[page&(ptFanout-1)]
	return e, e.valid
}

// set installs a leaf PTE, allocating interior nodes on demand.
func (d *Domain) set(page uint64, e pte) {
	d.leafFor(page, true).ptes[page&(ptFanout-1)] = e
}

// clear removes a leaf PTE, reporting whether it was present. Interior
// nodes are retained (as Linux retains page-table pages until a flush).
func (d *Domain) clear(page uint64) bool {
	n := d.leafFor(page, false)
	if n == nil {
		return false
	}
	if !n.ptes[page&(ptFanout-1)].valid {
		return false
	}
	n.ptes[page&(ptFanout-1)] = pte{}
	return true
}
