package iommu

import (
	"repro/internal/cycles"
	"repro/internal/sim"
	"repro/internal/trace"
)

// InvQueue models the IOMMU invalidation queue: a cyclic buffer of commands
// that the IOMMU hardware processes serially and asynchronously. Submission
// is serialized by a single spinlock (Queue.Lock), which the paper
// identifies as the scalability bottleneck of strict protection (§2.2.1):
// under concurrent invalidations the lock, not the hardware, dominates.
type InvQueue struct {
	eng   *sim.Engine
	u     *IOMMU
	costs *cycles.Costs

	// Lock serializes access to the queue registers. Callers must hold
	// it across Submit calls (and, for strict protection, across the
	// completion wait — as Linux's intel-iommu driver does).
	Lock *sim.Spinlock

	// StallCycles, when non-zero, adds that many cycles of extra hardware
	// latency to every submitted invalidation — a fault-injection hook
	// modeling a stalled/backlogged invalidation queue (internal/dmafuzz).
	// It widens the deferred vulnerability window and lengthens strict
	// waits, but never changes completion ordering.
	StallCycles uint64

	hwFreeAt uint64

	// Stats
	Submitted uint64
	Completed uint64
}

func newInvQueue(eng *sim.Engine, u *IOMMU, costs *cycles.Costs) *InvQueue {
	return &InvQueue{
		eng:   eng,
		u:     u,
		costs: costs,
		Lock: sim.NewSpinlock("invq", cycles.TagSpinlock, sim.LockCosts{
			Uncontended:      costs.LockUncontended,
			HandoffBase:      costs.LockHandoffBase,
			HandoffPerWaiter: costs.LockHandoffPerWaiter,
		}),
	}
}

// submit queues one invalidation command whose effect runs when the
// hardware gets to it, and returns the completion time. Caller holds Lock.
func (q *InvQueue) submit(p *sim.Proc, effect func()) uint64 {
	p.ChargeSpan("inval-submit", cycles.TagInvalidate, q.costs.InvSubmit)
	start := q.hwFreeAt
	if p.Now() > start {
		start = p.Now()
	}
	done := start + q.costs.IOTLBInvalidateHW + q.StallCycles
	q.hwFreeAt = done
	q.Submitted++
	q.u.Trace.Emit(p.Now(), trace.CatInval, "submitted, hw completes at %d", done)
	q.eng.Schedule(done, func(uint64) {
		effect()
		q.Completed++
	})
	return done
}

// SubmitPages queues a page-selective invalidation (PSI) for npages IOVA
// pages of dev starting at page, returning its completion time.
func (q *InvQueue) SubmitPages(p *sim.Proc, dev DeviceID, page, npages uint64) uint64 {
	return q.submit(p, func() { q.u.tlb.InvalidatePages(dev, page, npages) })
}

// SubmitDevice queues a device-selective invalidation.
func (q *InvQueue) SubmitDevice(p *sim.Proc, dev DeviceID) uint64 {
	return q.submit(p, func() { q.u.tlb.InvalidateDevice(dev) })
}

// SubmitGlobal queues a global invalidation (used by the batched deferred
// flush, as in Linux).
func (q *InvQueue) SubmitGlobal(p *sim.Proc) uint64 {
	return q.submit(p, func() { q.u.tlb.InvalidateAll() })
}

// WaitFor busy-waits (wait-descriptor polling) until the hardware reaches
// completion time t. The spin is accounted as IOTLB-invalidation time (and
// attributed to an "inval-wait" span when profiling).
func (q *InvQueue) WaitFor(p *sim.Proc, t uint64) {
	if p.Observed() {
		p.SpanEnter("inval-wait")
		defer p.SpanExit()
	}
	p.SpinUntil(cycles.TagInvalidate, t)
}

// SubmitGlobalAt queues a global invalidation from timer/interrupt context
// (no CPU-cost accounting — the work happens off the measured cores),
// returning its completion time.
func (q *InvQueue) SubmitGlobalAt(now uint64) uint64 {
	start := q.hwFreeAt
	if now > start {
		start = now
	}
	done := start + q.costs.IOTLBInvalidateHW + q.StallCycles
	q.hwFreeAt = done
	q.Submitted++
	q.eng.Schedule(done, func(uint64) {
		q.u.tlb.InvalidateAll()
		q.Completed++
	})
	return done
}
