package iommu

import (
	"errors"

	"repro/internal/cycles"
	"repro/internal/sim"
	"repro/internal/trace"
)

// ErrInvTimeout is the invalidation-time-out error (the VT-d ITE fault):
// a wait-descriptor poll gave up because the hardware did not reach the
// requested completion within the queue's Timeout budget. Callers match it
// with errors.Is and either retry (bounded backoff) or invoke Recover.
var ErrInvTimeout = errors.New("iommu: invalidation wait timed out (ITE)")

// InvQueue models the IOMMU invalidation queue: a cyclic buffer of commands
// that the IOMMU hardware processes serially and asynchronously. Submission
// is serialized by a single spinlock (Queue.Lock), which the paper
// identifies as the scalability bottleneck of strict protection (§2.2.1):
// under concurrent invalidations the lock, not the hardware, dominates.
type InvQueue struct {
	eng   *sim.Engine
	u     *IOMMU
	costs *cycles.Costs

	// Lock serializes access to the queue registers. Callers must hold
	// it across Submit calls (and, for strict protection, across the
	// completion wait — as Linux's intel-iommu driver does).
	Lock *sim.Spinlock

	// StallCycles, when non-zero, adds that many cycles of extra hardware
	// latency to every submitted invalidation — a fault-injection hook
	// modeling a stalled/backlogged invalidation queue (internal/dmafuzz).
	// It widens the deferred vulnerability window and lengthens strict
	// waits, but never changes completion ordering.
	StallCycles uint64

	// Timeout, when non-zero, bounds how many cycles a WaitForErr /
	// WaitRecover poll will spin past "now" before surfacing ErrInvTimeout
	// (the ITE condition). Zero (the default) means wait forever — the
	// pre-recovery behaviour, bit-identical to WaitFor.
	Timeout uint64
	// RetryBackoff is WaitRecover's initial inter-retry backoff (doubles
	// per retry); MaxRetries bounds the retries before Recover runs.
	RetryBackoff uint64
	MaxRetries   int

	hwFreeAt uint64

	// Stats
	Submitted  uint64
	Completed  uint64
	Timeouts   uint64 // ITE conditions surfaced by WaitForErr
	Recoveries uint64 // queue drains performed by Recover
}

func newInvQueue(eng *sim.Engine, u *IOMMU, costs *cycles.Costs) *InvQueue {
	return &InvQueue{
		eng:          eng,
		u:            u,
		costs:        costs,
		RetryBackoff: costs.IOTLBInvalidateHW,
		MaxRetries:   3,
		Lock: sim.NewSpinlock("invq", cycles.TagSpinlock, sim.LockCosts{
			Uncontended:      costs.LockUncontended,
			HandoffBase:      costs.LockHandoffBase,
			HandoffPerWaiter: costs.LockHandoffPerWaiter,
		}),
	}
}

// submit queues one invalidation command whose effect runs when the
// hardware gets to it, and returns the completion time. Caller holds Lock.
func (q *InvQueue) submit(p *sim.Proc, effect func()) uint64 {
	p.ChargeSpan("inval-submit", cycles.TagInvalidate, q.costs.InvSubmit)
	start := q.hwFreeAt
	if p.Now() > start {
		start = p.Now()
	}
	done := start + q.costs.IOTLBInvalidateHW + q.StallCycles
	q.hwFreeAt = done
	q.Submitted++
	if q.u.Trace.Enabled() {
		q.u.Trace.Emit(p.Now(), trace.CatInval, "submitted, hw completes at %d", done)
	}
	q.eng.Schedule(done, func(uint64) {
		effect()
		q.Completed++
	})
	return done
}

// SubmitPages queues a page-selective invalidation (PSI) for npages IOVA
// pages of dev starting at page, returning its completion time.
func (q *InvQueue) SubmitPages(p *sim.Proc, dev DeviceID, page, npages uint64) uint64 {
	return q.submit(p, func() { q.u.tlb.InvalidatePages(dev, page, npages) })
}

// SubmitDevice queues a device-selective invalidation.
func (q *InvQueue) SubmitDevice(p *sim.Proc, dev DeviceID) uint64 {
	return q.submit(p, func() { q.u.tlb.InvalidateDevice(dev) })
}

// SubmitGlobal queues a global invalidation (used by the batched deferred
// flush, as in Linux).
func (q *InvQueue) SubmitGlobal(p *sim.Proc) uint64 {
	return q.submit(p, func() { q.u.tlb.InvalidateAll() })
}

// WaitFor busy-waits (wait-descriptor polling) until the hardware reaches
// completion time t. The spin is accounted as IOTLB-invalidation time (and
// attributed to an "inval-wait" span when profiling).
func (q *InvQueue) WaitFor(p *sim.Proc, t uint64) {
	if p.Observed() {
		p.SpanEnter("inval-wait")
		defer p.SpanExit()
	}
	p.SpinUntil(cycles.TagInvalidate, t)
}

// WaitForErr is WaitFor with the ITE deadline applied: if the requested
// completion time lies within Timeout cycles of now (or Timeout is zero)
// it waits to completion and returns nil; otherwise it spins out the full
// Timeout budget — the wait descriptor really is polled that long — and
// returns ErrInvTimeout.
func (q *InvQueue) WaitForErr(p *sim.Proc, t uint64) error {
	if q.Timeout == 0 || t <= p.Now()+q.Timeout {
		q.WaitFor(p, t)
		return nil
	}
	q.WaitFor(p, p.Now()+q.Timeout)
	q.Timeouts++
	if q.u.Trace.Enabled() {
		q.u.Trace.Emit(p.Now(), trace.CatInval, "ITE: completion %d still pending", t)
	}
	return ErrInvTimeout
}

// Recover models the DMAR driver's IQE/ITE handler: the stuck queue is
// drained (the hardware head is reset to now, abandoning backlogged
// commands) and a synchronous conservative global invalidation stands in
// for whatever was abandoned — protection is preserved by
// over-invalidation, exactly the safe direction to err in.
func (q *InvQueue) Recover(p *sim.Proc) {
	p.ChargeSpan("resilience.invq-recover", cycles.TagInvalidate, q.costs.IOTLBInvalidateHW)
	q.u.tlb.InvalidateAll()
	if q.hwFreeAt > p.Now() {
		q.hwFreeAt = p.Now()
	}
	q.Recoveries++
	q.u.Trace.Emit(p.Now(), trace.CatInval, "IQE/ITE recovery: queue drained, global invalidate")
}

// WaitRecover waits for completion time t with full ITE handling: on
// timeout it retries with doubling backoff up to MaxRetries times (the
// deadline is re-measured from the retry's "now", so a slow-but-finite
// stall still completes), then gives up and runs Recover. It never fails;
// with Timeout == 0 it is exactly WaitFor. This is the wait every
// protection strategy uses.
func (q *InvQueue) WaitRecover(p *sim.Proc, t uint64) {
	if q.Timeout == 0 {
		q.WaitFor(p, t)
		return
	}
	backoff := q.RetryBackoff
	for attempt := 0; ; attempt++ {
		if q.WaitForErr(p, t) == nil {
			return
		}
		if attempt >= q.MaxRetries {
			q.Recover(p)
			return
		}
		if p.Observed() {
			p.SpanEnter("resilience.inv-retry")
		}
		p.SpinUntil(cycles.TagInvalidate, p.Now()+backoff)
		if p.Observed() {
			p.SpanExit()
		}
		backoff *= 2
	}
}

// SubmitGlobalAt queues a global invalidation from timer/interrupt context
// (no CPU-cost accounting — the work happens off the measured cores),
// returning its completion time.
func (q *InvQueue) SubmitGlobalAt(now uint64) uint64 {
	start := q.hwFreeAt
	if now > start {
		start = now
	}
	done := start + q.costs.IOTLBInvalidateHW + q.StallCycles
	q.hwFreeAt = done
	q.Submitted++
	q.eng.Schedule(done, func(uint64) {
		q.u.tlb.InvalidateAll()
		q.Completed++
	})
	return done
}
