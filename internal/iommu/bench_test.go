package iommu

import (
	"testing"

	"repro/internal/mem"
)

// BenchmarkDMACopy64K measures a 64 KiB device write through the full
// translation path: 16 per-page IOTLB lookups plus the memory copy.
func BenchmarkDMACopy64K(b *testing.B) {
	_, m, u := setup()
	const pages = 16
	phys, err := m.AllocPages(0, pages)
	if err != nil {
		b.Fatal(err)
	}
	iova := IOVA(0x1000_0000)
	if err := u.Map(1, iova, phys, pages*mem.PageSize, PermRW); err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, pages*mem.PageSize)
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := u.DMAWrite(1, iova, buf); res.Fault != nil {
			b.Fatal(res.Fault)
		}
	}
}

// BenchmarkIOTLBInvalidate1Page measures the indexed small-invalidation
// path against a warm TLB.
func BenchmarkIOTLBInvalidate1Page(b *testing.B) {
	tlb := NewIOTLB(64, 4)
	for p := uint64(0); p < 128; p++ {
		tlb.Insert(1, p, pte{pfn: p, perm: PermRW, valid: true}, 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tlb.InvalidatePages(1, uint64(i)&127, 1)
	}
}
