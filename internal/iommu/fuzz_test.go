package iommu_test

import (
	"testing"

	"repro/internal/cycles"
	"repro/internal/dmafuzz"
	"repro/internal/iommu"
	"repro/internal/mem"
	"repro/internal/sim"
)

// FuzzTranslate drives random map/unmap/translate/invalidate sequences
// through the IOMMU and checks every outcome against a flat model page
// table. Unmaps optionally skip IOTLB invalidation; a translate may then
// also be answered by the recorded stale entry — the deferred-protection
// window the paper builds on — but never by anything else.
//
// Each fuzzed page always maps to the same physical page, so a
// successful translation has exactly one legal answer regardless of
// whether it came from the page table or a stale IOTLB entry.
func FuzzTranslate(f *testing.F) {
	// Seeds: structured op streams from the dmafuzz generator's binary
	// corpus format, plus a couple of hand-rolled byte patterns.
	f.Add(dmafuzz.Generate(1, 64).Encode())
	f.Add(dmafuzz.Generate(2, 256).Encode())
	f.Add([]byte{0, 1, 2, 1, 1, 1, 2, 1, 0, 3, 2, 2, 1, 2, 3})
	f.Add([]byte{0, 0, 255, 0, 0, 254, 2, 0, 128})

	f.Fuzz(func(t *testing.T, data []byte) {
		eng := sim.NewEngine()
		m := mem.New(1)
		u := iommu.New(eng, m, cycles.Default())
		const dev = iommu.DeviceID(1)
		const nPages = 32
		base := iommu.IOVA(1) << 30

		phys := make([]mem.Phys, nPages)
		for i := range phys {
			p, err := m.AllocPages(0, 1)
			if err != nil {
				t.Fatal(err)
			}
			phys[i] = p
		}

		type entry struct {
			perm iommu.Perm
		}
		model := map[uint64]entry{} // iova page index -> live mapping
		stale := map[uint64]entry{} // cleared without IOTLB invalidation

		perms := []iommu.Perm{iommu.PermRead, iommu.PermWrite, iommu.PermRW}
		for i := 0; i+2 < len(data); i += 3 {
			op, pg, arg := data[i]%4, uint64(data[i+1])%nPages, data[i+2]
			iova := base + iommu.IOVA(pg<<mem.PageShift)
			perm := perms[arg%3]
			switch op {
			case 0: // map
				_, mapped := model[pg]
				err := u.Map(dev, iova, phys[pg], mem.PageSize, perm)
				if mapped && err == nil {
					t.Fatalf("page %d: double map succeeded", pg)
				}
				if !mapped {
					if err != nil {
						t.Fatalf("page %d: map failed: %v", pg, err)
					}
					model[pg] = entry{perm: perm}
				}
			case 1: // unmap; arg bit 0 chooses strict vs deferred
				_, mapped := model[pg]
				err := u.Unmap(dev, iova, mem.PageSize)
				if (err == nil) != mapped {
					t.Fatalf("page %d: unmap err=%v, model mapped=%v", pg, err, mapped)
				}
				if err == nil {
					if arg&1 == 0 {
						u.TLB().InvalidateDevice(dev)
						stale = map[uint64]entry{}
					} else {
						stale[pg] = model[pg]
					}
					delete(model, pg)
				}
			case 2: // translate at a random in-page offset
				off := iommu.IOVA(arg) * 16 % mem.PageSize
				want := perms[arg%3]
				got, _, fault := u.Translate(dev, iova+off, want)
				live, isLive := model[pg]
				st, isStale := stale[pg]
				if fault == nil {
					okLive := isLive && live.perm&want == want
					okStale := isStale && st.perm&want == want
					if !okLive && !okStale {
						t.Fatalf("page %d: translate %s succeeded with no live or stale grant", pg, want)
					}
					if wantPhys := phys[pg] + mem.Phys(off); got != wantPhys {
						t.Fatalf("page %d: translate = %#x, want %#x", pg, uint64(got), uint64(wantPhys))
					}
				} else {
					// A fault is only legal if the live table denies it
					// (absent or insufficient rights) or a stale IOTLB
					// entry with narrower rights could have answered.
					liveDenies := !isLive || live.perm&want != want
					staleDenies := isStale && st.perm&want != want
					if !liveDenies && !staleDenies {
						t.Fatalf("page %d: translate %s faulted against a live grant: %v", pg, want, fault)
					}
				}
			case 3: // full invalidation: stale entries are gone for sure
				u.TLB().InvalidateDevice(dev)
				stale = map[uint64]entry{}
			}
		}

		// Coherent finish: after a full invalidation the IOMMU must agree
		// exactly with the model on every page.
		u.TLB().InvalidateDevice(dev)
		for pg := uint64(0); pg < nPages; pg++ {
			iova := base + iommu.IOVA(pg<<mem.PageShift)
			e, mapped := model[pg]
			got, _, fault := u.Translate(dev, iova, iommu.PermRead)
			wantOK := mapped && e.perm&iommu.PermRead != 0
			if wantOK != (fault == nil) {
				t.Fatalf("final page %d: fault=%v, model mapped=%v perm=%v", pg, fault, mapped, e.perm)
			}
			if fault == nil && got != phys[pg] {
				t.Fatalf("final page %d: phys %#x want %#x", pg, uint64(got), uint64(phys[pg]))
			}
		}
	})
}
