package iommu

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/cycles"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/trace"
)

func setup() (*sim.Engine, *mem.Memory, *IOMMU) {
	eng := sim.NewEngine()
	m := mem.New(1)
	u := New(eng, m, cycles.Default())
	return eng, m, u
}

func TestMapTranslateUnmap(t *testing.T) {
	_, m, u := setup()
	phys, _ := m.AllocPages(0, 2)
	iova := IOVA(0x1000_0000)
	if err := u.Map(1, iova, phys, 2*mem.PageSize, PermRW); err != nil {
		t.Fatal(err)
	}
	got, _, fault := u.Translate(1, iova+5000, PermRead)
	if fault != nil {
		t.Fatal(fault)
	}
	if got != phys+5000 {
		t.Errorf("translate = %#x, want %#x", uint64(got), uint64(phys+5000))
	}
	if err := u.Unmap(1, iova, 2*mem.PageSize); err != nil {
		t.Fatal(err)
	}
	u.TLB().InvalidateDevice(1)
	if _, _, fault := u.Translate(1, iova, PermRead); fault == nil {
		t.Error("translate after unmap+invalidate should fault")
	}
}

func TestPermissionEnforcement(t *testing.T) {
	_, m, u := setup()
	phys, _ := m.AllocPages(0, 1)
	if err := u.Map(1, 0x2000, phys, 100, PermRead); err != nil {
		t.Fatal(err)
	}
	if _, _, fault := u.Translate(1, 0x2000, PermRead); fault != nil {
		t.Error("read should be allowed")
	}
	if _, _, fault := u.Translate(1, 0x2000, PermWrite); fault == nil {
		t.Error("write to read-only mapping should fault")
	}
	// Permission check must also apply on the IOTLB hit path.
	if _, _, fault := u.Translate(1, 0x2000, PermWrite); fault == nil {
		t.Error("write via cached entry should fault")
	}
}

func TestPageGranularityExposesWholePage(t *testing.T) {
	// The sub-page weakness (paper §4): mapping 100 bytes maps the whole
	// 4 KiB page, so the device can reach co-located data.
	_, m, u := setup()
	phys, _ := m.AllocPages(0, 1)
	secret := []byte("co-located secret")
	if err := m.Write(phys+2000, secret); err != nil {
		t.Fatal(err)
	}
	// Map only the first 100 bytes of the page.
	if err := u.Map(1, 0x5000, phys, 100, PermRead); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(secret))
	res := u.DMARead(1, 0x5000+2000, got)
	if res.Fault != nil {
		t.Fatalf("unexpected fault: %v", res.Fault)
	}
	if !bytes.Equal(got, secret) {
		t.Error("device should be able to read the whole mapped page")
	}
}

func TestDoubleMapAndBadUnmap(t *testing.T) {
	_, m, u := setup()
	phys, _ := m.AllocPages(0, 1)
	if err := u.Map(1, 0x3000, phys, 100, PermRW); err != nil {
		t.Fatal(err)
	}
	if err := u.Map(1, 0x3000, phys, 100, PermRW); err == nil {
		t.Error("double map should fail")
	}
	if err := u.Unmap(1, 0x9000, 100); err == nil {
		t.Error("unmap of unmapped should fail")
	}
	if err := u.Map(1, 0x4001, phys, 100, PermRW); err == nil {
		t.Error("offset mismatch should fail")
	}
	if err := u.Map(1, 0x4000, phys, 0, PermRW); err == nil {
		t.Error("zero-size map should fail")
	}
}

func TestIOTLBWindowAfterUnmap(t *testing.T) {
	// The deferred-protection vulnerability window: after Unmap (PTE
	// cleared) but before IOTLB invalidation, a previously-used
	// translation still works.
	_, m, u := setup()
	phys, _ := m.AllocPages(0, 1)
	iova := IOVA(0x7000)
	if err := u.Map(1, iova, phys, mem.PageSize, PermRW); err != nil {
		t.Fatal(err)
	}
	// Device uses the mapping: loads the IOTLB.
	buf := make([]byte, 8)
	if res := u.DMAWrite(1, iova, []byte("AAAABBBB")); res.Fault != nil {
		t.Fatal(res.Fault)
	}
	// OS unmaps but does not invalidate (deferred).
	if err := u.Unmap(1, iova, mem.PageSize); err != nil {
		t.Fatal(err)
	}
	if !u.TLB().Cached(1, iova.Page()) {
		t.Fatal("translation should still be cached")
	}
	// The device can still write! (the window)
	if res := u.DMAWrite(1, iova, []byte("EVILEVIL")); res.Fault != nil {
		t.Errorf("window write should succeed, got fault: %v", res.Fault)
	}
	if err := m.Read(phys, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, []byte("EVILEVIL")) {
		t.Error("window write did not land")
	}
	// After invalidation the window closes.
	u.TLB().InvalidatePages(1, iova.Page(), 1)
	if res := u.DMAWrite(1, iova, []byte("again")); res.Fault == nil {
		t.Error("write after invalidation should fault")
	}
}

func TestDMAReadWriteRoundTrip(t *testing.T) {
	_, m, u := setup()
	phys, _ := m.AllocPages(0, 4)
	iova := IOVA(0x10000)
	if err := u.Map(1, iova, phys, 4*mem.PageSize, PermRW); err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 3*mem.PageSize)
	rand.New(rand.NewSource(7)).Read(data)
	if res := u.DMAWrite(1, iova+100, data); res.Fault != nil || res.Done != len(data) {
		t.Fatalf("write: %+v", res)
	}
	got := make([]byte, len(data))
	if res := u.DMARead(1, iova+100, got); res.Fault != nil || res.Done != len(got) {
		t.Fatalf("read: %+v", res)
	}
	if !bytes.Equal(got, data) {
		t.Error("DMA round trip corrupted data")
	}
}

func TestDMAPartialFault(t *testing.T) {
	_, m, u := setup()
	phys, _ := m.AllocPages(0, 1)
	iova := IOVA(0x20000)
	if err := u.Map(1, iova, phys, mem.PageSize, PermRW); err != nil {
		t.Fatal(err)
	}
	// DMA of 2 pages: first page mapped, second not.
	data := make([]byte, 2*mem.PageSize)
	res := u.DMAWrite(1, iova, data)
	if res.Fault == nil {
		t.Fatal("expected fault on second page")
	}
	if res.Done != mem.PageSize {
		t.Errorf("Done = %d, want %d", res.Done, mem.PageSize)
	}
	if u.FaultCount == 0 || len(u.Faults()) == 0 {
		t.Error("fault should be recorded")
	}
}

func TestPassthroughMode(t *testing.T) {
	_, m, u := setup()
	phys, _ := m.AllocPages(0, 1)
	u.SetPassthrough(9, true)
	got, lat, fault := u.Translate(9, IOVA(phys), PermRW)
	if fault != nil || got != phys || lat != 0 {
		t.Errorf("passthrough translate: %#x %d %v", uint64(got), lat, fault)
	}
	u.SetPassthrough(9, false)
	if _, _, fault := u.Translate(9, IOVA(phys), PermRW); fault == nil {
		t.Error("translation should fault once passthrough is off")
	}
}

func TestFaultHookFires(t *testing.T) {
	_, _, u := setup()
	var seen []Fault
	u.FaultHook = func(f Fault) { seen = append(seen, f) }
	u.Translate(3, 0xdead000, PermRead)
	if len(seen) != 1 || seen[0].Dev != 3 {
		t.Errorf("hook: %+v", seen)
	}
	if seen[0].Error() == "" {
		t.Error("fault should format")
	}
}

func TestPageTableManyRandomPages(t *testing.T) {
	d := newDomain(1)
	rng := rand.New(rand.NewSource(99))
	ref := map[uint64]uint64{}
	for i := 0; i < 5000; i++ {
		pg := rng.Uint64() & ((1 << (IOVABits - mem.PageShift)) - 1)
		pfn := rng.Uint64()
		d.set(pg, pte{pfn: pfn, perm: PermRW, valid: true})
		ref[pg] = pfn
	}
	for pg, pfn := range ref {
		e, ok := d.lookup(pg)
		if !ok || e.pfn != pfn {
			t.Fatalf("lookup(%#x) = %+v ok=%v, want pfn %#x", pg, e, ok, pfn)
		}
	}
	// Clear half, verify.
	i := 0
	for pg := range ref {
		if i%2 == 0 {
			if !d.clear(pg) {
				t.Fatalf("clear(%#x) failed", pg)
			}
			delete(ref, pg)
		}
		i++
	}
	for pg, pfn := range ref {
		e, ok := d.lookup(pg)
		if !ok || e.pfn != pfn {
			t.Fatalf("post-clear lookup(%#x) failed", pg)
		}
	}
}

func TestIOTLBEviction(t *testing.T) {
	tlb := NewIOTLB(1, 2) // one set, two ways
	tlb.Insert(1, 10, pte{pfn: 100, valid: true}, 0)
	tlb.Insert(1, 20, pte{pfn: 200, valid: true}, 0)
	tlb.Lookup(1, 10, 0) // make page 10 MRU
	tlb.Insert(1, 30, pte{pfn: 300, valid: true}, 0)
	if tlb.Cached(1, 20) {
		t.Error("LRU entry (20) should have been evicted")
	}
	if !tlb.Cached(1, 10) || !tlb.Cached(1, 30) {
		t.Error("MRU and new entries should remain")
	}
	if tlb.Evictions != 1 {
		t.Errorf("evictions = %d", tlb.Evictions)
	}
}

func TestIOTLBInvalidateScopes(t *testing.T) {
	tlb := NewIOTLB(8, 4)
	tlb.Insert(1, 10, pte{pfn: 1, valid: true}, 0)
	tlb.Insert(1, 11, pte{pfn: 2, valid: true}, 0)
	tlb.Insert(2, 10, pte{pfn: 3, valid: true}, 0)
	tlb.InvalidatePages(1, 10, 1)
	if tlb.Cached(1, 10) || !tlb.Cached(1, 11) || !tlb.Cached(2, 10) {
		t.Error("page-selective invalidation scope wrong")
	}
	tlb.InvalidateDevice(1)
	if tlb.Cached(1, 11) || !tlb.Cached(2, 10) {
		t.Error("device-selective invalidation scope wrong")
	}
	tlb.InvalidateAll()
	if tlb.Cached(2, 10) {
		t.Error("global invalidation scope wrong")
	}
}

func TestIOTLBInvalidateStatsDeltas(t *testing.T) {
	// Each Invalidate* call counts exactly once regardless of how many
	// entries it drops or which scan strategy it uses, and invalidated
	// entries become misses on the next lookup.
	// Small set count so a multi-page range crosses sets, with enough
	// ways that all 16 inserted entries fit without evictions.
	tlb := NewIOTLB(4, 8)
	load := func() {
		for p := uint64(0); p < 8; p++ {
			tlb.Insert(1, p, pte{pfn: 100 + p, valid: true}, 0)
			tlb.Insert(2, p, pte{pfn: 200 + p, valid: true}, 0)
		}
	}

	// 1-page invalidation: indexed path (npages < sets).
	load()
	inv, misses := tlb.Invalidations, tlb.Misses
	tlb.InvalidatePages(1, 3, 1)
	if got := tlb.Invalidations - inv; got != 1 {
		t.Errorf("1-page invalidation counted %d times", got)
	}
	if tlb.Cached(1, 3) {
		t.Error("1-page invalidation left the entry cached")
	}
	if !tlb.Cached(2, 3) {
		t.Error("1-page invalidation leaked to another device")
	}
	if _, ok := tlb.Lookup(1, 3, 0); ok || tlb.Misses != misses+1 {
		t.Error("invalidated page should miss")
	}

	// Multi-page range crossing sets, still on the indexed path.
	load()
	inv = tlb.Invalidations
	tlb.InvalidatePages(1, 1, 3) // pages 1..3 hash to different sets
	if got := tlb.Invalidations - inv; got != 1 {
		t.Errorf("multi-page invalidation counted %d times", got)
	}
	for p := uint64(1); p <= 3; p++ {
		if tlb.Cached(1, p) {
			t.Errorf("page %d still cached after range invalidation", p)
		}
		if !tlb.Cached(2, p) {
			t.Errorf("device 2 page %d dropped by device 1 invalidation", p)
		}
	}
	if !tlb.Cached(1, 0) {
		t.Error("page outside the range was dropped")
	}

	// Range >= sets: full-scan path, same observable behavior.
	load()
	inv = tlb.Invalidations
	tlb.InvalidatePages(1, 0, 8)
	if got := tlb.Invalidations - inv; got != 1 {
		t.Errorf("large-range invalidation counted %d times", got)
	}
	for p := uint64(0); p < 8; p++ {
		if tlb.Cached(1, p) {
			t.Errorf("page %d survived large-range invalidation", p)
		}
	}

	// Whole-device invalidation.
	load()
	inv = tlb.Invalidations
	tlb.InvalidateDevice(2)
	if got := tlb.Invalidations - inv; got != 1 {
		t.Errorf("device invalidation counted %d times", got)
	}
	for p := uint64(0); p < 8; p++ {
		if tlb.Cached(2, p) {
			t.Errorf("device 2 page %d survived device invalidation", p)
		}
		if !tlb.Cached(1, p) {
			t.Errorf("device 1 page %d dropped by device 2 invalidation", p)
		}
	}
}

func TestInvQueueAsyncCompletion(t *testing.T) {
	eng, m, u := setup()
	c := cycles.Default()
	phys, _ := m.AllocPages(0, 1)
	iova := IOVA(0x8000)
	if err := u.Map(1, iova, phys, mem.PageSize, PermRW); err != nil {
		t.Fatal(err)
	}
	u.Translate(1, iova, PermRead) // cache it
	var doneAt, submitAt uint64
	eng.Spawn("core0", 0, 0, func(p *sim.Proc) {
		u.Queue.Lock.Lock(p)
		submitAt = p.Now()
		doneAt = u.Queue.SubmitPages(p, 1, iova.Page(), 1)
		u.Queue.Lock.Unlock(p)
		// Invalidation is asynchronous: entry still cached right after
		// submission.
		if !u.TLB().Cached(1, iova.Page()) {
			t.Error("entry invalidated synchronously")
		}
	})
	eng.Run(10_000_000)
	if doneAt < submitAt+c.IOTLBInvalidateHW {
		t.Errorf("completion %d too early (submit %d)", doneAt, submitAt)
	}
	if u.TLB().Cached(1, iova.Page()) {
		t.Error("entry should be invalidated after hw processes the command")
	}
	if u.Queue.Submitted != 1 || u.Queue.Completed != 1 {
		t.Errorf("queue stats: %d/%d", u.Queue.Submitted, u.Queue.Completed)
	}
}

func TestInvQueueSerializesHardware(t *testing.T) {
	eng, _, u := setup()
	c := cycles.Default()
	var times []uint64
	eng.Spawn("core0", 0, 0, func(p *sim.Proc) {
		u.Queue.Lock.Lock(p)
		for i := 0; i < 3; i++ {
			times = append(times, u.Queue.SubmitGlobal(p))
		}
		u.Queue.Lock.Unlock(p)
	})
	eng.Run(100_000_000)
	// Hardware processes commands serially: completions must be spaced
	// by at least the hw invalidation latency.
	for i := 1; i < len(times); i++ {
		if times[i] < times[i-1]+c.IOTLBInvalidateHW {
			t.Errorf("completions not serialized: %v", times)
		}
	}
}

func TestStrictWaitAccountsBusySpin(t *testing.T) {
	eng, m, u := setup()
	phys, _ := m.AllocPages(0, 1)
	if err := u.Map(1, 0x6000, phys, 100, PermRW); err != nil {
		t.Fatal(err)
	}
	var p0 *sim.Proc
	p0 = eng.Spawn("core0", 0, 0, func(p *sim.Proc) {
		u.Queue.Lock.Lock(p)
		done := u.Queue.SubmitPages(p, 1, 6, 1)
		u.Queue.WaitFor(p, done)
		u.Queue.Lock.Unlock(p)
	})
	eng.Run(10_000_000)
	inval := p0.TaggedCycles(cycles.TagInvalidate)
	c := cycles.Default()
	if inval < c.IOTLBInvalidateHW {
		t.Errorf("invalidation spin = %d, want >= %d", inval, c.IOTLBInvalidateHW)
	}
}

func TestTraceRecordsIOMMUEvents(t *testing.T) {
	eng, m, u := setup()
	u.Trace = trace.New(64)
	phys, _ := m.AllocPages(0, 1)
	if err := u.Map(1, 0x9000, phys, 100, PermRead); err != nil {
		t.Fatal(err)
	}
	u.Translate(1, 0x9000, PermWrite) // fault
	if err := u.Unmap(1, 0x9000, 100); err != nil {
		t.Fatal(err)
	}
	eng.Spawn("c", 0, 0, func(p *sim.Proc) {
		u.Queue.Lock.Lock(p)
		u.Queue.SubmitGlobal(p)
		u.Queue.Lock.Unlock(p)
	})
	eng.Run(1 << 30)
	eng.Stop()
	cats := map[string]int{}
	for _, e := range u.Trace.Events() {
		cats[e.Cat]++
	}
	for _, want := range []string{trace.CatMap, trace.CatUnmap, trace.CatFault, trace.CatInval} {
		if cats[want] == 0 {
			t.Errorf("no %q events recorded (got %v)", want, cats)
		}
	}
	var b strings.Builder
	u.Trace.Dump(&b)
	if !strings.Contains(b.String(), "iova 0x9000") {
		t.Error("dump missing event detail")
	}
}
