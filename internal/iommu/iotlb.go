package iommu

// IOTLB is a set-associative cache of IOVA-page translations, tagged by
// device. Entries persist until explicitly invalidated (or evicted), which
// is what makes deferred protection exploitable: a cleared page-table entry
// is still reachable through a stale IOTLB entry until the batched
// invalidation runs.
type IOTLB struct {
	sets int
	ways int
	data [][]iotlbEntry
	tick uint64

	// ttl, when non-zero, makes entries self-invalidate ttl cycles after
	// insertion — the hardware proposal of Basu et al. (self-invalidated
	// mappings, paper §7 "Hardware solutions"), which bounds the
	// deferred-protection window without any software invalidation.
	ttl uint64

	// Stats
	Hits, Misses, Evictions, Invalidations, TTLExpiries uint64
}

type iotlbEntry struct {
	valid      bool
	dev        DeviceID
	iovaPage   uint64
	e          pte
	lastUse    uint64
	insertedAt uint64 // virtual time, for TTL self-invalidation
}

// NewIOTLB creates an IOTLB with the given geometry (sets must be a power
// of two).
func NewIOTLB(sets, ways int) *IOTLB {
	if sets&(sets-1) != 0 || sets <= 0 {
		panic("iommu: IOTLB sets must be a power of two")
	}
	t := &IOTLB{sets: sets, ways: ways, data: make([][]iotlbEntry, sets)}
	for i := range t.data {
		t.data[i] = make([]iotlbEntry, ways)
	}
	return t
}

func (t *IOTLB) set(dev DeviceID, page uint64) []iotlbEntry {
	h := page ^ uint64(dev)*0x9e3779b97f4a7c15
	return t.data[h&uint64(t.sets-1)]
}

// SetTTL enables hardware self-invalidation: entries become invalid ttl
// cycles after insertion. Zero disables.
func (t *IOTLB) SetTTL(ttl uint64) { t.ttl = ttl }

// TTL returns the self-invalidation period (0 = disabled).
func (t *IOTLB) TTL() uint64 { return t.ttl }

// Lookup finds a cached translation at virtual time now.
func (t *IOTLB) Lookup(dev DeviceID, page uint64, now uint64) (pte, bool) {
	t.tick++
	set := t.set(dev, page)
	for i := range set {
		if set[i].valid && set[i].dev == dev && set[i].iovaPage == page {
			if t.ttl != 0 && now >= set[i].insertedAt+t.ttl {
				set[i].valid = false
				t.TTLExpiries++
				break
			}
			set[i].lastUse = t.tick
			t.Hits++
			return set[i].e, true
		}
	}
	t.Misses++
	return pte{}, false
}

// Insert caches a translation at virtual time now, evicting the LRU way if
// the set is full.
func (t *IOTLB) Insert(dev DeviceID, page uint64, e pte, now uint64) {
	t.tick++
	set := t.set(dev, page)
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lastUse < set[victim].lastUse {
			victim = i
		}
	}
	if set[victim].valid {
		t.Evictions++
	}
	set[victim] = iotlbEntry{valid: true, dev: dev, iovaPage: page, e: e, lastUse: t.tick, insertedAt: now}
}

// HitRate returns the fraction of lookups served from the cache.
func (t *IOTLB) HitRate() float64 {
	total := t.Hits + t.Misses
	if total == 0 {
		return 0
	}
	return float64(t.Hits) / float64(total)
}

// invalidateMatching drops every cached entry the predicate matches. It is
// the shared full-scan core of the Invalidate* entry points; small ranged
// invalidations take an indexed path instead (see InvalidatePages).
func (t *IOTLB) invalidateMatching(match func(*iotlbEntry) bool) {
	for s := range t.data {
		set := t.data[s]
		for i := range set {
			if set[i].valid && match(&set[i]) {
				set[i].valid = false
			}
		}
	}
}

// InvalidatePages drops cached translations for npages IOVA pages of a
// device starting at page.
func (t *IOTLB) InvalidatePages(dev DeviceID, page, npages uint64) {
	t.Invalidations++
	if npages < uint64(t.sets) {
		// Small invalidation (the common case: strict per-unmap flushes
		// are 1–16 pages): each target page can only live in its own hash
		// set, so probe those sets directly instead of sweeping all
		// sets×ways entries. Above sets pages, the full sweep touches
		// fewer entries than per-page probing would.
		for p := page; p < page+npages; p++ {
			set := t.set(dev, p)
			for i := range set {
				if set[i].valid && set[i].dev == dev && set[i].iovaPage == p {
					set[i].valid = false
				}
			}
		}
		return
	}
	t.invalidateMatching(func(e *iotlbEntry) bool {
		return e.dev == dev && e.iovaPage >= page && e.iovaPage < page+npages
	})
}

// InvalidateDevice drops all cached translations of a device.
func (t *IOTLB) InvalidateDevice(dev DeviceID) {
	t.Invalidations++
	t.invalidateMatching(func(e *iotlbEntry) bool { return e.dev == dev })
}

// InvalidateAll drops every cached translation (global invalidation).
func (t *IOTLB) InvalidateAll() {
	t.Invalidations++
	t.invalidateMatching(func(*iotlbEntry) bool { return true })
}

// Cached reports whether a translation is currently cached (for tests).
func (t *IOTLB) Cached(dev DeviceID, page uint64) bool {
	set := t.set(dev, page)
	for i := range set {
		if set[i].valid && set[i].dev == dev && set[i].iovaPage == page {
			return true
		}
	}
	return false
}
