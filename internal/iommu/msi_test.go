package iommu

import (
	"testing"

	"repro/internal/cycles"
	"repro/internal/mem"
	"repro/internal/sim"
)

func msiTestIOMMU() *IOMMU {
	eng := sim.NewEngine()
	return New(eng, mem.New(1), cycles.Default())
}

func TestMSIRemapFiltersUngrantedVectors(t *testing.T) {
	u := msiTestIOMMU()
	const dev DeviceID = 1
	u.GrantMSI(dev, 33)

	if res := u.MSIWrite(dev, MSIBase, 33); !res.Delivered || !res.Granted {
		t.Errorf("granted vector not delivered: %+v", res)
	}
	if res := u.MSIWrite(dev, MSIBase, 0xE0); res.Delivered {
		t.Errorf("ungranted vector delivered through remapping: %+v", res)
	}
	st := u.MSIStats()
	if st.Writes != 2 || st.Delivered != 1 || st.Blocked != 1 || st.Spurious != 0 {
		t.Errorf("stats = %+v, want 2 writes / 1 delivered / 1 blocked / 0 spurious", st)
	}
}

func TestMSIPassthroughDeliversRawDoorbellWrites(t *testing.T) {
	u := msiTestIOMMU()
	const dev DeviceID = 1
	u.SetPassthrough(dev, true)

	res := u.MSIWrite(dev, MSIBase, 0xE0)
	if !res.Delivered || res.Granted {
		t.Errorf("passthrough doorbell write: %+v, want delivered+ungranted", res)
	}
	if st := u.MSIStats(); st.Spurious != 1 {
		t.Errorf("spurious = %d, want 1 (the breach the storm payload measures)", st.Spurious)
	}
}

func TestMSIQuarantineBlocksInterrupts(t *testing.T) {
	u := msiTestIOMMU()
	const dev DeviceID = 1
	u.GrantMSI(dev, 33)
	u.Block(dev)

	if res := u.MSIWrite(dev, MSIBase, 33); res.Delivered {
		t.Errorf("quarantined device's interrupt delivered: %+v", res)
	}
	if st := u.MSIStats(); st.Blocked != 1 {
		t.Errorf("blocked = %d, want 1", st.Blocked)
	}
}

func TestMSIVectorIsLowByte(t *testing.T) {
	u := msiTestIOMMU()
	const dev DeviceID = 1
	u.GrantMSI(dev, 33)
	if res := u.MSIWrite(dev, MSIBase, 0xFF00+33); !res.Delivered || res.Vector != 33 {
		t.Errorf("high data bits changed the vector: %+v", res)
	}
}
