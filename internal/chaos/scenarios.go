package chaos

import (
	"fmt"
	"math/rand"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/cycles"
	"repro/internal/dmaapi"
	"repro/internal/iommu"
	"repro/internal/mem"
	"repro/internal/netstack"
	"repro/internal/resilience"
	"repro/internal/shadow"
)

// Scenario is one named chaos experiment.
type Scenario struct {
	Name  string
	Title string
	Run   func(Config) (*bench.Table, error)
}

// scenarioOut is one variant's result, merged in canonical variant order
// after all of a scenario's farm tasks finish.
type scenarioOut struct {
	gbps float64
	ms   map[string]float64
}

// Scenarios lists every chaos experiment, in report order.
var Scenarios = []Scenario{
	{"faultstorm", "Fault storm from a hostile device", FaultStorm},
	{"iovascan", "IOVA-scanning device (reconnaissance)", IOVAScan},
	{"queuestall", "Invalidation-queue stall (ITE recovery)", QueueStall},
	{"poolsqueeze", "Shadow-pool exhaustion (degradation ladder)", PoolSqueeze},
}

// Find returns the named scenario.
func Find(name string) (Scenario, error) {
	for _, s := range Scenarios {
		if s.Name == name {
			return s, nil
		}
	}
	return Scenario{}, fmt.Errorf("chaos: unknown scenario %q", name)
}

// scheduleStorm fires bursts of DMA writes from the attacker device to
// unmapped IOVAs: every write misses the IOTLB, occupies the (serialized)
// page walker and records a fault — the cheapest way a hostile device
// spends the host's shared IOMMU resources.
func scheduleStorm(mc *machine, rng *rand.Rand, start, end, period uint64, burst int) {
	junk := make([]byte, 64)
	var tick func(now uint64)
	tick = func(now uint64) {
		if now >= end {
			return
		}
		for i := 0; i < burst; i++ {
			iova := iommu.IOVA((uint64(rng.Intn(1 << 20))) << mem.PageShift)
			mc.u.DMAWrite(AttackDev, iova, junk)
		}
		mc.eng.Schedule(now+period, tick)
	}
	mc.eng.Schedule(start, tick)
}

// FaultStorm: device A floods the IOMMU with faulting DMAs while device B
// (the victim NIC) runs an RX stream. With resilience, the token bucket
// quarantines A quickly (its DMAs then die at the root port for a map
// lookup, freeing the walker), the cool-down readmits it, and the still-
// running storm re-quarantines it — goodput stays near baseline. Without
// resilience, A's misses monopolize the serialized page walker and B's
// goodput collapses.
func FaultStorm(cfg Config) (*bench.Table, error) {
	cfg = cfg.norm()
	window := cycles.FromMillis(cfg.WindowMs)
	attackStart := window / 5
	pol := cfg.Policy
	if pol == (resilience.Policy{}) {
		pol = chaosPolicy()
	}

	t := &bench.Table{
		Name:  "chaos-faultstorm",
		Title: "Chaos: fault storm from device A, RX goodput of device B (" + cfg.System + ")",
		Note: fmt.Sprintf("storm: 16 faulting DMAs per 1000 cycles from t=%.0fus; seed %d",
			cycles.Micros(attackStart), cfg.Seed),
		Columns: []string{"variant", "gbps", "contain%", "faults", "blocked", "quar", "readm", "t-quar us", "ring ovfl"},
	}
	t.SetWinner("gbps", false)

	variants := []struct {
		name              string
		attack, resilient bool
	}{
		{"baseline", false, true},
		{"resilience", true, true},
		{"unprotected", true, false},
	}
	outs := make([]scenarioOut, len(variants))
	err := cfg.Farm.Map(len(variants), func(i int) error {
		v := variants[i]
		mc, err := newMachine(cfg, variant{resilient: v.resilient, policy: pol})
		if err != nil {
			return fmt.Errorf("faultstorm/%s: %w", v.name, err)
		}
		rs := mc.runVictim(cfg, window, func(mc *machine) {
			if v.attack {
				rng := rand.New(rand.NewSource(cfg.Seed))
				scheduleStorm(mc, rng, attackStart, window, 1000, 16)
			}
		})
		outs[i] = scenarioOut{gbps: rs.Gbps, ms: mc.metrics(rs, attackStart)}
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Containment is relative to the baseline variant's goodput, so it can
	// only be computed after the merge — variants run concurrently.
	baseGbps := outs[0].gbps
	for i, v := range variants {
		ms := outs[i].ms
		contain := 0.0
		if baseGbps > 0 {
			contain = 100 * outs[i].gbps / baseGbps
		}
		ms["containment_pct"] = contain
		t.Point(v.name, cfg.System, ms)
		t.AddRow(v.name, fmtGbps(outs[i].gbps), fmt.Sprintf("%.1f", contain),
			fmt.Sprintf("%.0f", ms["faults"]), fmt.Sprintf("%.0f", ms["blocked_dmas"]),
			fmt.Sprintf("%.0f", ms["quarantines"]), fmt.Sprintf("%.0f", ms["readmits"]),
			fmt.Sprintf("%.1f", ms["time_to_quarantine_us"]), fmt.Sprintf("%.0f", ms["faultring_overflow"]))
	}
	return t, nil
}

// scanner counts the attacker's view of an IOVA sweep.
type scanner struct {
	attempts, hits, faults, blocked uint64
}

// scheduleScan sweeps the attacker cyclically across a page range that
// contains a small window of its own mappings: hits tell the scanner
// where live DMA windows are (reconnaissance), misses fault.
func scheduleScan(mc *machine, sc *scanner, base iommu.IOVA, span int, start, end, period uint64, burst int) {
	junk := make([]byte, 16)
	cursor := 0
	var tick func(now uint64)
	tick = func(now uint64) {
		if now >= end {
			return
		}
		for i := 0; i < burst; i++ {
			iova := base + iommu.IOVA(uint64(cursor)<<mem.PageShift)
			cursor = (cursor + 1) % span
			sc.attempts++
			res := mc.u.DMAWrite(AttackDev, iova, junk)
			switch {
			case res.Fault == nil:
				sc.hits++
			case res.Fault.Reason == "device quarantined":
				sc.blocked++
			default:
				sc.faults++
			}
		}
		mc.eng.Schedule(now+period, tick)
	}
	mc.eng.Schedule(start, tick)
}

// IOVAScan: a compromised device sweeps a 512-page IOVA range looking for
// mapped windows (4 pages of its own mappings stand in for them). The
// policy here is permanent quarantine (NoReadmit): a scanning device gets
// a handful of probes before its bucket drains, bounding reconnaissance;
// unprotected, it scans forever and keeps hitting.
func IOVAScan(cfg Config) (*bench.Table, error) {
	cfg = cfg.norm()
	window := cycles.FromMillis(cfg.WindowMs)
	attackStart := window / 5
	pol := cfg.Policy
	if pol == (resilience.Policy{}) {
		pol = chaosPolicy()
		pol.Cooldown = resilience.NoReadmit // scanners don't get a second chance
	}
	const (
		scanBase = iommu.IOVA(0x4000 << mem.PageShift)
		scanSpan = 512 // pages swept
		winPages = 4   // mapped window inside the swept range
	)

	t := &bench.Table{
		Name:  "chaos-iovascan",
		Title: "Chaos: IOVA-scanning device vs RX goodput (" + cfg.System + ")",
		Note: fmt.Sprintf("scan: 8 probes per 2000 cycles over %d pages (%d mapped) from t=%.0fus; seed %d",
			scanSpan, winPages, cycles.Micros(attackStart), cfg.Seed),
		Columns: []string{"variant", "gbps", "probes", "hits", "scan faults", "blocked", "quar"},
	}
	t.SetWinner("gbps", false)

	variants := []struct {
		name              string
		attack, resilient bool
	}{
		{"baseline", false, true},
		{"resilience", true, true},
		{"unprotected", true, false},
	}
	outs := make([]scenarioOut, len(variants))
	err := cfg.Farm.Map(len(variants), func(i int) error {
		v := variants[i]
		mc, err := newMachine(cfg, variant{resilient: v.resilient, policy: pol})
		if err != nil {
			return fmt.Errorf("iovascan/%s: %w", v.name, err)
		}
		// The attacker's own live window: a normally-operating device has
		// some mappings; the scanner hunts for exactly such windows.
		phys, err := mc.mem.AllocPages(0, winPages)
		if err != nil {
			return err
		}
		off := (scanSpan / 2) << mem.PageShift
		if err := mc.u.Map(AttackDev, scanBase+iommu.IOVA(off), phys,
			winPages*mem.PageSize, iommu.PermRead|iommu.PermWrite); err != nil {
			return err
		}
		sc := &scanner{}
		rs := mc.runVictim(cfg, window, func(mc *machine) {
			if v.attack {
				scheduleScan(mc, sc, scanBase, scanSpan, attackStart, window, 2000, 8)
			}
		})
		ms := mc.metrics(rs, attackStart)
		ms["scan_attempts"] = float64(sc.attempts)
		ms["scan_hits"] = float64(sc.hits)
		ms["scan_faults"] = float64(sc.faults)
		ms["scan_blocked"] = float64(sc.blocked)
		outs[i] = scenarioOut{gbps: rs.Gbps, ms: ms}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, v := range variants {
		ms := outs[i].ms
		t.Point(v.name, cfg.System, ms)
		t.AddRow(v.name, fmtGbps(outs[i].gbps),
			fmt.Sprintf("%.0f", ms["scan_attempts"]), fmt.Sprintf("%.0f", ms["scan_hits"]),
			fmt.Sprintf("%.0f", ms["scan_faults"]), fmt.Sprintf("%.0f", ms["scan_blocked"]),
			fmt.Sprintf("%.0f", ms["quarantines"]))
	}
	return t, nil
}

// QueueStall: the invalidation queue's hardware head stalls mid-run
// (invqueue.StallCycles). With an ITE deadline armed (InvQueue.Timeout),
// waiters time out, retry briefly and then drain-and-recover, keeping
// unmap latency bounded; with Timeout=0 (stock behavior) every strict
// unmap eats the full stall and goodput collapses for the phase.
func QueueStall(cfg Config) (*bench.Table, error) {
	cfg = cfg.norm()
	window := cycles.FromMillis(cfg.WindowMs)
	phaseStart, phaseEnd := window/5, 3*window/5
	const stall = 50000 // cycles of extra hardware latency per invalidation

	t := &bench.Table{
		Name:  "chaos-queuestall",
		Title: "Chaos: invalidation-queue stall, RX goodput (" + cfg.System + ")",
		Note: fmt.Sprintf("stall: +%d cycles/invalidation during t=[%.0f,%.0f]us; ITE timeout 2048, 1 retry; seed %d",
			stall, cycles.Micros(phaseStart), cycles.Micros(phaseEnd), cfg.Seed),
		Columns: []string{"variant", "gbps", "timeouts", "recoveries", "frames"},
	}
	t.SetWinner("gbps", false)

	variants := []struct {
		name         string
		stallOn, ite bool
	}{
		{"baseline", false, true},
		{"resilience", true, true},
		{"unprotected", true, false},
	}
	outs := make([]scenarioOut, len(variants))
	err := cfg.Farm.Map(len(variants), func(i int) error {
		v := variants[i]
		mc, err := newMachine(cfg, variant{resilient: true, policy: chaosPolicy()})
		if err != nil {
			return fmt.Errorf("queuestall/%s: %w", v.name, err)
		}
		if v.ite {
			mc.u.Queue.Timeout = 2048
			mc.u.Queue.MaxRetries = 1
		}
		rs := mc.runVictim(cfg, window, func(mc *machine) {
			if v.stallOn {
				mc.eng.Schedule(phaseStart, func(uint64) { mc.u.Queue.StallCycles = stall })
				mc.eng.Schedule(phaseEnd, func(uint64) { mc.u.Queue.StallCycles = 0 })
			}
		})
		outs[i] = scenarioOut{gbps: rs.Gbps, ms: mc.metrics(rs, phaseStart)}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, v := range variants {
		ms := outs[i].ms
		t.Point(v.name, cfg.System, ms)
		t.AddRow(v.name, fmtGbps(outs[i].gbps),
			fmt.Sprintf("%.0f", ms["invq_timeouts"]), fmt.Sprintf("%.0f", ms["invq_recoveries"]),
			fmt.Sprintf("%.0f", ms["frames"]))
	}
	return t, nil
}

// squeezeMapper builds the copy strategy over a deliberately tiny,
// hard-bounded shadow pool (DisableFallback), so pool pressure surfaces
// as shadow.ErrPoolExhausted and the degradation ladder carries the load.
func squeezeMapper(ladder bool) func(env *dmaapi.Env) (dmaapi.Mapper, error) {
	return func(env *dmaapi.Env) (dmaapi.Mapper, error) {
		pool := shadow.Config{
			SizeClasses:     []int{4096, 65536},
			MaxPerClass:     48,
			Cores:           env.Cores,
			Domains:         env.Mem.Domains(),
			DomainOfCore:    env.DomainOfCore,
			DisableFallback: true,
		}
		opts := []core.Option{core.WithHint(netstack.PacketLenHint), core.WithPoolConfig(pool)}
		if ladder {
			// One short retry before spilling: under a hard-bounded pool
			// the retry only pays off when a concurrent release races in.
			opts = append(opts, core.WithDegrade(core.DegradeConfig{MaxRetries: 1, RetryBackoff: 2048}))
		} else {
			opts = append(opts, core.WithDegrade(core.DegradeConfig{Disable: true}))
		}
		return core.NewShadowMapper(env, opts...)
	}
}

// PoolSqueeze: the copy strategy's shadow pool is starved (48 buffers per
// class/domain against 256 ring buffers per queue) and a mid-run
// allocation-failure phase (mem.AllocFail) blocks pool growth outright.
// With the degradation ladder armed, maps retry then spill to strict
// per-buffer mappings and the stream keeps flowing — the cost shows up as
// resilience.* cycles in the profile, not as datapath failure. With the
// ladder disabled, the first hard exhaustion kills the datapath.
func PoolSqueeze(cfg Config) (*bench.Table, error) {
	cfg = cfg.norm()
	cfg.System = bench.SysCopy // the scenario is about the copy strategy's pool
	if cfg.RingSize == 256 {
		cfg.RingSize = 96 // shallow rings keep bring-up well inside the window
	}
	window := cycles.FromMillis(cfg.WindowMs)

	t := &bench.Table{
		Name:  "chaos-poolsqueeze",
		Title: "Chaos: shadow-pool exhaustion, RX goodput (copy + degradation ladder)",
		Note: fmt.Sprintf("pool: 48 bufs/class hard-bounded; alloc failures injected for window/3 after bring-up; seed %d",
			cfg.Seed),
		Columns: []string{"variant", "gbps", "retries", "spills", "backpressure", "dead", "resil cycles"},
	}
	t.SetWinner("gbps", false)

	variants := []struct {
		name            string
		squeeze, ladder bool
	}{
		{"baseline", false, true},
		{"resilience", true, true},
		{"unprotected", true, false},
	}
	outs := make([]scenarioOut, len(variants))
	err := cfg.Farm.Map(len(variants), func(i int) error {
		sv := variants[i]
		v := variant{resilient: true, policy: chaosPolicy(), observe: true}
		if sv.squeeze {
			v.mapperFn = squeezeMapper(sv.ladder)
		}
		mc, err := newMachine(cfg, v)
		if err != nil {
			return fmt.Errorf("poolsqueeze/%s: %w", sv.name, err)
		}
		rs := mc.runVictim(cfg, window, func(mc *machine) {
			if sv.squeeze {
				// Anchor the pressure phase on actual bring-up completion
				// so the injected failures hit pool growth, never the
				// driver's own setup kmallocs.
				mc.onSetupDone = func(now uint64) {
					mc.eng.Schedule(now+window/10, func(uint64) {
						mc.mem.AllocFail = func(domain, pages int) bool { return true }
					})
					mc.eng.Schedule(now+window/10+window/3, func(uint64) { mc.mem.AllocFail = nil })
				}
			}
		})
		outs[i] = scenarioOut{gbps: rs.Gbps, ms: mc.metrics(rs, 0)}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, sv := range variants {
		ms := outs[i].ms
		t.Point(sv.name, cfg.System, ms)
		t.AddRow(sv.name, fmtGbps(outs[i].gbps),
			fmt.Sprintf("%.0f", ms["degraded_retries"]), fmt.Sprintf("%.0f", ms["degraded_spills"]),
			fmt.Sprintf("%.0f", ms["backpressure_fails"]+ms["backpressure_drops"]),
			fmt.Sprintf("%.0f", ms["datapath_dead"]), fmt.Sprintf("%.0f", ms["resilience_cycles"]))
	}
	return t, nil
}
