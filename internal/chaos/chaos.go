// Package chaos assembles fault-injection scenarios for the resilience
// stack: a victim machine (NIC + driver + protection strategy, the same
// assembly internal/bench uses) shares its IOMMU with a misbehaving
// device or an injected pressure source, and each scenario measures how
// goodput and recovery behave with the fault-domain machinery enabled
// versus disabled.
//
// Every scenario runs three variants of the same seeded workload:
//
//	baseline     no attack/pressure — the goodput yardstick
//	resilience   attack/pressure with quarantine + degradation armed
//	unprotected  the same attack with the resilience machinery off
//
// All time is virtual and every input is derived from Config.Seed, so a
// scenario's metrics are bit-deterministic and can be regression-gated
// with cmd/benchdiff (see ci/chaos-baseline.json and `make chaos-smoke`).
package chaos

import (
	"fmt"

	"repro/internal/bench"
	"repro/internal/cycles"
	"repro/internal/dmaapi"
	"repro/internal/iommu"
	"repro/internal/mem"
	"repro/internal/netstack"
	"repro/internal/nic"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/sim"
)

// Device IDs: the victim NIC is device 1 (as in internal/bench); the
// misbehaving device sits next to it on the same IOMMU.
const (
	VictimDev iommu.DeviceID = 1
	AttackDev iommu.DeviceID = 2
)

// Config parameterizes one scenario run. Zero fields take defaults.
type Config struct {
	Seed     int64
	WindowMs float64 // simulated window per variant (default 2 ms)
	Cores    int     // victim cores / NIC queues (default 2)
	MsgSize  int     // victim message size (default 1500)
	RingSize int     // NIC descriptor ring depth (default 256)
	System   string  // victim protection strategy (default "strict")
	Costs    *cycles.Costs
	// Policy is the fault-domain policy for the resilient variants; zero
	// fields take scenario-appropriate defaults (scenarios may override).
	Policy resilience.Policy
	// Farm, when non-nil, runs a scenario's three variants as parallel
	// farm tasks. Each variant builds its own engine and machine, so the
	// variants share no state; a nil Farm runs them serially (bench.Farm's
	// nil receiver) with identical results — the merge is in canonical
	// variant order either way.
	Farm *bench.Farm
}

func (c Config) norm() Config {
	if c.WindowMs <= 0 {
		c.WindowMs = 2
	}
	if c.Cores <= 0 {
		c.Cores = 2
	}
	if c.MsgSize <= 0 {
		c.MsgSize = 1500
	}
	if c.RingSize <= 0 {
		c.RingSize = 256
	}
	if c.System == "" {
		c.System = bench.SysLinuxStrict
	}
	if c.Costs == nil {
		c.Costs = cycles.Default()
	}
	return c
}

// chaosPolicy is the default fault-domain policy for chaos windows: the
// bench windows are short (milliseconds), so the bucket is shallow and the
// cool-down brief enough that quarantine AND readmission both happen
// inside the window.
func chaosPolicy() resilience.Policy {
	return resilience.Policy{
		FaultBurst:  32,
		RefillEvery: cycles.FromMicros(5),
		Cooldown:    cycles.FromMicros(200),
		MaxReadmits: -1,
	}
}

// machine is one assembled victim machine plus the shared IOMMU the
// attacker rides on.
type machine struct {
	eng    *sim.Engine
	mem    *mem.Memory
	u      *iommu.IOMMU
	env    *dmaapi.Env
	mapper dmaapi.Mapper
	nic    *nic.NIC
	drv    *netstack.Driver
	obs    *obs.Observer
	sup    *resilience.Supervisor // nil in unprotected variants

	// onSetupDone, when set (by a scenario's arm callback), fires once in
	// proc context when the last queue finishes SetupQueue — the anchor
	// for pressure phases that must not race driver bring-up.
	onSetupDone func(now uint64)
}

// variant selects how one scenario run is armed.
type variant struct {
	// mapperFn overrides the victim's protection strategy construction
	// (nil means bench.NewMapper(cfg.System)).
	mapperFn func(env *dmaapi.Env) (dmaapi.Mapper, error)
	// resilient attaches the fault-domain supervisor.
	resilient bool
	policy    resilience.Policy
	// observe installs the cycle-attribution profiler (needed by
	// scenarios that report resilience.* span cycles).
	observe bool
}

func newMachine(cfg Config, v variant) (*machine, error) {
	eng := sim.NewEngine()
	m := mem.New(2)
	u := iommu.New(eng, m, cfg.Costs)
	// One hardware page-walker, as on real IOMMUs: concurrent misses
	// serialize, which is exactly the shared resource a fault storm
	// exhausts. Applied to every variant so baselines are comparable.
	u.WalkSerialize = true
	var o *obs.Observer
	if v.observe {
		o = obs.New(false)
		eng.SetObserver(o) // must precede Spawn: procs copy the sink
	}
	env := &dmaapi.Env{Eng: eng, Mem: m, IOMMU: u, Costs: cfg.Costs, Dev: VictimDev, Cores: cfg.Cores}
	var mapper dmaapi.Mapper
	var err error
	if v.mapperFn != nil {
		mapper, err = v.mapperFn(env)
	} else {
		mapper, err = bench.NewMapper(cfg.System, env)
	}
	if err != nil {
		return nil, err
	}
	n := nic.New(eng, u, nic.Config{
		Dev: VictimDev, Queues: cfg.Cores, RingSize: cfg.RingSize, MTU: 1500, TSO: true, Costs: cfg.Costs,
	})
	k := mem.NewKmalloc(m, nil)
	drv := netstack.NewDriver(env, mapper, n, k, 2048)
	// The host services IOMMU fault records in interrupt context: ~0.6 us
	// per record (read, log, clear). This is the CPU a fault storm steals
	// until quarantine cuts it off at the root.
	drv.FaultServiceCost = 1500
	mc := &machine{eng: eng, mem: m, u: u, env: env, mapper: mapper, nic: n, drv: drv, obs: o}
	if v.resilient {
		mc.sup = resilience.Attach(u, eng, v.policy)
	}
	return mc, nil
}

// runStats is the victim-side outcome of one variant run.
type runStats struct {
	Gbps     float64
	Frames   uint64
	Bytes    uint64
	Busy     uint64
	SetupErr error // non-nil when queue setup failed (hard pool exhaustion)
	RunErr   error // non-nil when the datapath died mid-run
	Profile  *obs.Profile
}

// runVictim spawns the RX stream workload (bench's runRx shape), lets
// `arm` schedule attack/pressure events, and runs the window.
func (mc *machine) runVictim(cfg Config, window uint64, arm func(*machine)) runStats {
	stats := make([]netstack.RxStats, cfg.Cores)
	var setupErr, runErr error
	var procs []*sim.Proc
	setupsLeft := cfg.Cores
	for c := 0; c < cfg.Cores; c++ {
		c := c
		pr := mc.eng.Spawn(fmt.Sprintf("rx%d", c), c, 0, func(p *sim.Proc) {
			if err := mc.drv.SetupQueue(p, c); err != nil {
				setupErr = err
				return
			}
			setupsLeft--
			if setupsLeft == 0 && mc.onSetupDone != nil {
				mc.onSetupDone(p.Now())
			}
			if err := mc.drv.RunRxStream(p, c, cfg.MsgSize, &stats[c]); err != nil {
				runErr = err
			}
		})
		procs = append(procs, pr)
		src := nic.NewSource(mc.eng, mc.nic.Queue(c), cfg.Costs, cfg.MsgSize, 1500, true)
		src.Start(0)
	}
	if arm != nil {
		arm(mc)
	}
	mc.eng.Run(window)
	rs := runStats{SetupErr: setupErr, RunErr: runErr}
	for i := range stats {
		rs.Bytes += stats[i].Bytes
		rs.Frames += stats[i].Frames
	}
	for _, p := range procs {
		rs.Busy += p.Busy()
	}
	rs.Gbps = cycles.Gbps(rs.Bytes, window)
	if mc.obs != nil {
		pr := mc.obs.Prof.Snapshot()
		pr.TotalBusy = rs.Busy
		rs.Profile = &pr
	}
	mc.eng.Stop()
	return rs
}

// metrics flattens the run into the benchdiff-gated metric map.
func (mc *machine) metrics(rs runStats, attackStart uint64) map[string]float64 {
	ms := map[string]float64{
		"gbps":                float64(rs.Gbps),
		"frames":              float64(rs.Frames),
		"faults":              float64(mc.u.FaultCount),
		"blocked_dmas":        float64(mc.u.BlockedDMAs),
		"faultring_overflow":  float64(mc.u.FaultRing().Overflow()),
		"rx_nobuf_drops":      float64(mc.nic.RxNoBufDrops),
		"rx_quarantine_drops": float64(mc.nic.RxQuarantineDrops),
		"invq_timeouts":       float64(mc.u.Queue.Timeouts),
		"invq_recoveries":     float64(mc.u.Queue.Recoveries),
		"backpressure_drops":  float64(mc.drv.BackpressureDrops),
		"faults_serviced":     float64(mc.drv.FaultsServiced),
	}
	st := mc.mapper.Stats()
	ms["degraded_retries"] = float64(st.DegradedRetries)
	ms["degraded_spills"] = float64(st.DegradedSpills)
	ms["backpressure_fails"] = float64(st.BackpressureFails)
	if rs.SetupErr != nil || rs.RunErr != nil {
		ms["datapath_dead"] = 1
	} else {
		ms["datapath_dead"] = 0
	}
	if mc.sup != nil {
		ds := mc.sup.Stats(AttackDev)
		ms["quarantines"] = float64(ds.Quarantines)
		ms["readmits"] = float64(ds.Readmits)
		if ds.Quarantines > 0 && ds.QuarantinedAt >= attackStart {
			ms["time_to_quarantine_us"] = cycles.Micros(ds.QuarantinedAt - attackStart)
		}
	}
	if rs.Profile != nil {
		ms["resilience_cycles"] = float64(rs.Profile.GroupCycles("resilience"))
	}
	return ms
}

// fmtGbps renders a goodput cell.
func fmtGbps(g float64) string { return fmt.Sprintf("%.2f", g) }
