package chaos

import (
	"reflect"
	"testing"

	"repro/internal/bench"
)

// variantMetrics pulls the metric map one scenario variant reported.
func variantMetrics(t *testing.T, tb *bench.Table, variant string) map[string]float64 {
	t.Helper()
	for _, s := range tb.Series {
		if s.System == variant && len(s.Points) > 0 {
			return s.Points[0].Metrics
		}
	}
	t.Fatalf("table %s has no variant %q", tb.Name, variant)
	return nil
}

// The ISSUE's headline acceptance test: under a seeded fault storm from
// the attacker device, the victim's goodput with resilience armed stays
// within 10% of the no-attack baseline, and the quarantine both engages
// and lifts (cool-down readmission) inside the window.
func TestFaultStormContainment(t *testing.T) {
	tb, err := FaultStorm(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	base := variantMetrics(t, tb, "baseline")
	res := variantMetrics(t, tb, "resilience")
	raw := variantMetrics(t, tb, "unprotected")

	if base["gbps"] <= 0 {
		t.Fatalf("baseline produced no traffic: %v", base)
	}
	if res["gbps"] < 0.9*base["gbps"] {
		t.Errorf("containment failed: resilience %.2f Gbps < 90%% of baseline %.2f Gbps",
			res["gbps"], base["gbps"])
	}
	if res["quarantines"] < 1 {
		t.Error("quarantine never engaged under the storm")
	}
	if res["readmits"] < 1 {
		t.Error("quarantine never lifted (no cool-down readmission)")
	}
	if res["blocked_dmas"] == 0 {
		t.Error("no DMAs rejected at the root while quarantined")
	}
	// The unprotected machine pays for every fault in the IRQ path and
	// must end up measurably worse than the protected one.
	if raw["gbps"] >= res["gbps"] {
		t.Errorf("unprotected %.2f Gbps >= resilience %.2f Gbps; the storm did no damage",
			raw["gbps"], res["gbps"])
	}
	if raw["faults"] <= res["faults"] {
		t.Errorf("quarantine should shed faults: unprotected %v <= resilience %v",
			raw["faults"], res["faults"])
	}
	// Bounded fault memory: the unprotected ring overflows (and that is
	// all that happens — the machine survives).
	if raw["faultring_overflow"] == 0 {
		t.Error("a storm this size must overflow the bounded ring")
	}
}

func TestFaultStormDeterminism(t *testing.T) {
	a, err := FaultStorm(Config{Seed: 7, WindowMs: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := FaultStorm(Config{Seed: 7, WindowMs: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []string{"baseline", "resilience", "unprotected"} {
		ma, mb := variantMetrics(t, a, v), variantMetrics(t, b, v)
		if !reflect.DeepEqual(ma, mb) {
			t.Errorf("%s: same seed, different metrics:\n  %v\n  %v", v, ma, mb)
		}
	}
}

func TestFindScenario(t *testing.T) {
	for _, sc := range Scenarios {
		got, err := Find(sc.Name)
		if err != nil || got.Name != sc.Name {
			t.Errorf("Find(%q) = %v, %v", sc.Name, got.Name, err)
		}
	}
	if _, err := Find("nope"); err == nil {
		t.Error("Find must reject unknown scenarios")
	}
}

// TestScenariosFarmParallelMatchSerial runs every scenario once serially
// (nil Farm) and once with the three variants fanned across a 4-worker
// farm, and requires identical metric maps: the farm must not change a
// single number, only when the work happens.
func TestScenariosFarmParallelMatchSerial(t *testing.T) {
	farm := bench.NewFarm(4)
	defer farm.Close()
	for _, sc := range Scenarios {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			serial, err := sc.Run(Config{Seed: 7, WindowMs: 1})
			if err != nil {
				t.Fatal(err)
			}
			parallel, err := sc.Run(Config{Seed: 7, WindowMs: 1, Farm: farm})
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range []string{"baseline", "resilience", "unprotected"} {
				ms, mp := variantMetrics(t, serial, v), variantMetrics(t, parallel, v)
				if !reflect.DeepEqual(ms, mp) {
					t.Errorf("%s: serial and farm runs disagree:\n  serial:   %v\n  parallel: %v", v, ms, mp)
				}
			}
			if !reflect.DeepEqual(serial.Rows, parallel.Rows) {
				t.Errorf("rendered rows disagree:\n  serial:   %v\n  parallel: %v", serial.Rows, parallel.Rows)
			}
		})
	}
}

func TestIOVAScanBounded(t *testing.T) {
	tb, err := IOVAScan(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res := variantMetrics(t, tb, "resilience")
	raw := variantMetrics(t, tb, "unprotected")
	if raw["scan_hits"] == 0 {
		t.Fatal("unprotected scanner found nothing; the scenario lost its teeth")
	}
	if res["scan_hits"] >= raw["scan_hits"] {
		t.Errorf("quarantine should bound reconnaissance: resilience hits %v >= unprotected %v",
			res["scan_hits"], raw["scan_hits"])
	}
	if res["scan_blocked"] == 0 || res["quarantines"] < 1 {
		t.Errorf("scanner was never quarantined: blocked=%v quarantines=%v",
			res["scan_blocked"], res["quarantines"])
	}
}

func TestQueueStallRecovery(t *testing.T) {
	tb, err := QueueStall(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	base := variantMetrics(t, tb, "baseline")
	res := variantMetrics(t, tb, "resilience")
	raw := variantMetrics(t, tb, "unprotected")
	if res["invq_timeouts"] == 0 || res["invq_recoveries"] == 0 {
		t.Errorf("ITE path never exercised: timeouts=%v recoveries=%v",
			res["invq_timeouts"], res["invq_recoveries"])
	}
	if raw["invq_timeouts"] != 0 {
		t.Errorf("unprotected (Timeout=0) must never time out, got %v", raw["invq_timeouts"])
	}
	if res["gbps"] <= raw["gbps"] {
		t.Errorf("ITE recovery should beat riding out the stall: %.2f <= %.2f",
			res["gbps"], raw["gbps"])
	}
	if res["gbps"] >= base["gbps"] {
		t.Errorf("a real stall must cost something: resilience %.2f >= baseline %.2f",
			res["gbps"], base["gbps"])
	}
}

func TestPoolSqueezeGracefulDegradation(t *testing.T) {
	tb, err := PoolSqueeze(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	base := variantMetrics(t, tb, "baseline")
	res := variantMetrics(t, tb, "resilience")
	raw := variantMetrics(t, tb, "unprotected")
	if base["datapath_dead"] != 0 {
		t.Fatal("baseline died; the squeeze scenario is broken")
	}
	// The acceptance bar: pool exhaustion no longer kills the datapath.
	if res["datapath_dead"] != 0 {
		t.Error("datapath died despite the degradation ladder")
	}
	if res["gbps"] <= 0 {
		t.Error("no goodput under pressure; degradation is not graceful")
	}
	if res["degraded_spills"] == 0 && res["degraded_retries"] == 0 {
		t.Error("ladder never engaged; the squeeze missed the pool")
	}
	if res["resilience_cycles"] == 0 {
		t.Error("ladder work invisible to the profiler (no resilience.* span cycles)")
	}
	// Without the ladder the same pressure is fatal.
	if raw["datapath_dead"] != 1 {
		t.Error("unprotected variant survived; exhaustion should be a hard failure there")
	}
}
