package campaign

import (
	"bytes"
	"fmt"

	"repro/internal/iommu"
	"repro/internal/mem"
	"repro/internal/sim"
)

// discovery is the DICE-flavored attacker: it is handed NO addresses.
// It infers live DMA windows by scanning the two address regions a
// malicious device can cheaply guess — low physical memory (where
// identity-mapped and translation-free designs put DMA buffers) and the
// top of the Linux IOVA space (the tree allocator hands out highest
// pages first) — and classifies each landed probe by translation
// latency (an IOTLB hit costs no walk, so stale-TLB windows answer
// "fast"). A second sweep after 30us separates windows that stay open
// until a software flush (defer) from ones that self-close (selfinval's
// TTL).
type discovery struct {
	probes     int
	landed     []probeHit
	fastLanded int
	openAfter  int
	corrupted  []int
}

// probeHit is one probe write that the IOMMU let through.
type probeHit struct {
	addr    iommu.IOVA
	latency uint64
}

// DiscoveryScanPages is how many pages each scan region covers. The low
// region starts at the first allocatable physical page; the high region
// ends at the top of a 48-bit/4-level Linux IOVA space. 192 pages
// comfortably covers every buffer a single-queue victim touches.
const DiscoveryScanPages = 192

// linuxIOVATopPage mirrors the Linux-style allocators' address-space
// ceiling (48-bit space, 4 KiB pages, top bit reserved — see
// dmaapi.NewLinux). Discovery hardcodes it the way a real attacker
// hardcodes knowledge of the victim kernel's allocator layout.
const linuxIOVATopPage = uint64(1) << (48 - mem.PageShift - 1)

func (d *discovery) Name() string  { return "window-discovery" }
func (d *discovery) Title() string { return "infer live DMA windows by probing, untold" }

func (d *discovery) Identify(p *sim.Proc, t *Target) error {
	// The victim just processes traffic. Unlike every other payload, the
	// attacker does NOT read t.Observed — it must find windows itself.
	return t.RunTraffic(p, 16)
}

func (d *discovery) Deliver(p *sim.Proc, t *Target) error {
	pattern := bytes.Repeat([]byte{0xD1}, mem.PageSize)
	probe := func(pg uint64) {
		d.probes++
		addr := iommu.IOVA(pg << mem.PageShift)
		res := t.Mach.IOMMU.DMAWrite(t.Dev(), addr, pattern)
		if res.Fault != nil {
			return
		}
		d.landed = append(d.landed, probeHit{addr: addr, latency: res.Latency})
		if res.Latency <= t.Mach.Env.Costs.DMALatency {
			// No page-walk component: a passthrough or stale-IOTLB window.
			d.fastLanded++
		}
	}
	// Region A: low physical pages (page 0 is reserved as nil).
	for pg := uint64(1); pg <= DiscoveryScanPages; pg++ {
		probe(pg)
	}
	// Region B: the top of the Linux-style IOVA space.
	for pg := linuxIOVATopPage - DiscoveryScanPages + 1; pg <= linuxIOVATopPage; pg++ {
		probe(pg)
	}
	// Re-probe every found window after 30us: still open, or self-closed?
	sleepUs(p, 30)
	for _, h := range d.landed {
		if res := t.Mach.IOMMU.DMAWrite(t.Dev(), h.addr, pattern); res.Fault == nil {
			d.openAfter++
		}
	}
	return nil
}

func (d *discovery) Verify(p *sim.Proc, t *Target, r *Result) error {
	var err error
	if d.corrupted, err = t.CorruptedStale(); err != nil {
		return err
	}
	r.Success = len(d.corrupted) > 0
	r.Metrics["probes"] = float64(d.probes)
	r.Metrics["probes_landed"] = float64(len(d.landed))
	r.Metrics["fast_landed"] = float64(d.fastLanded)
	r.Metrics["windows_corrupting"] = float64(len(d.corrupted))
	r.Metrics["open_after_30us"] = float64(d.openAfter)
	if r.Success {
		r.Detail = fmt.Sprintf("blind scan corrupted %d victim buffers (%d/%d probes landed)",
			len(d.corrupted), len(d.landed), d.probes)
	} else {
		r.Detail = "blind scan found no window into OS memory"
	}
	return nil
}

func (d *discovery) Cleanup(p *sim.Proc, t *Target) error { return nil }

// CorruptedRecords exposes which victim records the blind scan reached
// (for the discovery-vs-told coverage test).
func (d *discovery) CorruptedRecords() []int { return d.corrupted }
