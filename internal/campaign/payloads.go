package campaign

import (
	"bytes"
	"fmt"

	"repro/internal/cycles"
	"repro/internal/dmaapi"
	"repro/internal/iommu"
	"repro/internal/mem"
	"repro/internal/resilience"
	"repro/internal/sim"
)

// builders constructs fresh payload instances, in the canonical matrix
// row order. Payload instances are single-use, so the registry stores
// constructors, not values.
var builders = []func() Payload{
	func() Payload { return &subPageHarvest{} },
	func() Payload { return &arbitraryScan{} },
	func() Payload { return NewReplayWindow(2, true) },
	func() Payload { return &discovery{} },
	func() Payload { return &ringCorrupt{} },
	func() Payload { return &faultStorm{} },
	func() Payload { return &hotplugSurprise{} },
	func() Payload { return &atsSpoof{} },
	func() Payload { return &magazineReuse{} },
	func() Payload { return &staleRead{} },
	func() Payload { return &interruptStorm{} },
}

// Payloads returns the canonical payload names in matrix row order.
func Payloads() []string {
	out := make([]string, len(builders))
	for i, b := range builders {
		out[i] = b().Name()
	}
	return out
}

// Find constructs a fresh instance of the named payload.
func Find(name string) (Payload, error) {
	for _, b := range builders {
		if pl := b(); pl.Name() == name {
			return pl, nil
		}
	}
	return nil, fmt.Errorf("campaign: unknown payload %q", name)
}

// ---- subpage-harvest -------------------------------------------------

// subPageHarvest reads kernel data co-located on the page of a mapped
// DMA buffer: page-granular protection cannot isolate sub-page
// neighbours (the paper's §4 "no sub-page protection" weakness).
type subPageHarvest struct {
	dmaBuf, secBuf mem.Buf
	addr           iommu.IOVA
	mapped         bool
	leaked         []byte
}

func (a *subPageHarvest) Name() string { return "subpage-harvest" }
func (a *subPageHarvest) Title() string {
	return "read a co-located kernel secret through a mapped buffer's page"
}

func (a *subPageHarvest) Identify(p *sim.Proc, t *Target) error {
	var err error
	if a.dmaBuf, a.secBuf, err = t.colocatedPair(256); err != nil {
		return err
	}
	if a.addr, err = t.Mach.Mapper.Map(p, a.dmaBuf, dmaapi.ToDevice); err != nil {
		return err
	}
	a.mapped = true
	return nil
}

func (a *subPageHarvest) Deliver(p *sim.Proc, t *Target) error {
	// The device knows only a.addr; it aims at the secret's offset
	// within the same (presumed-mapped) page.
	target := a.addr - iommu.IOVA(a.addr.Offset()) + iommu.IOVA(a.secBuf.Addr.Offset())
	got := make([]byte, len(Secret))
	res := t.Mach.IOMMU.DMARead(t.Dev(), target, got)
	if leakEquals(got, res.Fault) {
		a.leaked = got
	}
	return nil
}

func (a *subPageHarvest) Verify(p *sim.Proc, t *Target, r *Result) error {
	r.Success = a.leaked != nil
	r.Leaked = a.leaked
	r.Metrics["leaked_bytes"] = float64(len(a.leaked))
	if r.Success {
		r.Detail = "co-located secret exfiltrated through the mapped page"
	} else {
		r.Detail = "sub-page probe denied or returned garbage"
	}
	return nil
}

func (a *subPageHarvest) Cleanup(p *sim.Proc, t *Target) error {
	if !a.mapped {
		return nil
	}
	if err := t.Mach.Mapper.Unmap(p, a.addr, a.dmaBuf.Size, dmaapi.ToDevice); err != nil {
		return err
	}
	t.Mach.Mapper.Quiesce(p)
	return nil
}

// ---- arbitrary-scan --------------------------------------------------

// arbitraryScan DMAs to an address the OS never authorized at all: the
// physical address of a fresh kernel allocation, used directly as an
// IOVA. Only translation-free designs let it through.
type arbitraryScan struct {
	kernel  mem.Buf
	content []byte
	got     []byte
	fault   *iommu.Fault
}

func (a *arbitraryScan) Name() string { return "arbitrary-scan" }
func (a *arbitraryScan) Title() string {
	return "DMA-read a never-mapped kernel allocation by physical address"
}

func (a *arbitraryScan) Identify(p *sim.Proc, t *Target) error {
	var err error
	if a.kernel, err = t.Mach.Kmal.Alloc(0, 4096); err != nil {
		return err
	}
	a.content = []byte("unmapped kernel memory")
	return t.Mach.Mem.Write(a.kernel.Addr, a.content)
}

func (a *arbitraryScan) Deliver(p *sim.Proc, t *Target) error {
	a.got = make([]byte, len(a.content))
	res := t.Mach.IOMMU.DMARead(t.Dev(), iommu.IOVA(a.kernel.Addr), a.got)
	a.fault = res.Fault
	return nil
}

func (a *arbitraryScan) Verify(p *sim.Proc, t *Target, r *Result) error {
	r.Success = a.fault == nil && bytes.Equal(a.got, a.content)
	if r.Success {
		r.Detail = "unauthorized physical read succeeded"
	} else {
		r.Detail = "unauthorized read denied"
	}
	return nil
}

func (a *arbitraryScan) Cleanup(p *sim.Proc, t *Target) error { return nil }

// ---- replay-window ---------------------------------------------------

// ReplayWindow performs the paper's §3 attack: use a mapping
// legitimately, let the OS unmap and reuse the buffer, then replay a
// write to the stale IOVA after DelayUs. With CheckFlush it additionally
// verifies whether draining deferred invalidations closes the window.
// Exported because internal/attack's WindowSweep re-runs it at swept
// delays.
type ReplayWindow struct {
	DelayUs    float64
	CheckFlush bool

	m      *Mapping
	landed bool
	closed bool
}

// NewReplayWindow builds the payload with the given post-unmap delay.
func NewReplayWindow(delayUs float64, checkFlush bool) *ReplayWindow {
	return &ReplayWindow{DelayUs: delayUs, CheckFlush: checkFlush}
}

func (w *ReplayWindow) Name() string { return "replay-window" }
func (w *ReplayWindow) Title() string {
	return "replay a just-unmapped IOVA and corrupt reused OS memory"
}

func (w *ReplayWindow) Identify(p *sim.Proc, t *Target) error {
	var err error
	if w.m, err = t.MapVictim(p, 1500, dmaapi.FromDevice); err != nil {
		return err
	}
	return t.BenignDMA(p, w.m)
}

func (w *ReplayWindow) Deliver(p *sim.Proc, t *Target) error {
	// The OS unmaps and immediately reuses the memory (sentinel fill).
	if err := t.UnmapVictim(p, w.m); err != nil {
		return err
	}
	sleepUs(p, w.DelayUs)
	evil := []byte("EVIL-REPLAYED-DMA-WRITE")
	t.ReplayObserved(p, w.m.Index, evil)
	var err error
	if w.landed, err = t.corrupted(w.m); err != nil {
		return err
	}
	if !w.CheckFlush {
		return nil
	}
	// Restore, drain deferred invalidations, and replay again: does the
	// strategy ever close the window?
	if err := t.restoreSentinel(w.m); err != nil {
		return err
	}
	t.Mach.Mapper.Quiesce(p)
	sleepUs(p, 10) // let invalidation hardware drain
	t.ReplayObserved(p, w.m.Index, evil)
	again, err := t.corrupted(w.m)
	if err != nil {
		return err
	}
	w.closed = !again
	return nil
}

func (w *ReplayWindow) Verify(p *sim.Proc, t *Target, r *Result) error {
	r.Success = w.landed
	r.Metrics["window_hit"] = b2f(w.landed)
	if w.CheckFlush {
		r.Metrics["closed_after_flush"] = b2f(w.closed)
	}
	if w.landed {
		r.Detail = fmt.Sprintf("stale replay landed %.0fus after unmap", w.DelayUs)
	} else {
		r.Detail = "post-unmap replay faulted or landed harmlessly"
	}
	return nil
}

func (w *ReplayWindow) Cleanup(p *sim.Proc, t *Target) error { return nil }

// Landed reports whether the replay corrupted OS memory (for WindowSweep).
func (w *ReplayWindow) Landed() bool { return w.landed }

// ---- ring-corrupt ----------------------------------------------------

// ringCorrupt attacks from the descriptor ring outwards: a coherent
// (permanently mapped) ring is legitimate DMA territory, and the device
// probes page offsets beyond it hoping the mapping is not page-exact.
const ringSentinel = 0x33

type ringCorrupt struct {
	ringIOVA     iommu.IOVA
	ringBuf      mem.Buf
	neighbor     mem.Buf
	allocated    bool
	ringOK       bool
	probesLanded int
}

func (a *ringCorrupt) Name() string { return "ring-corrupt" }
func (a *ringCorrupt) Title() string {
	return "overrun a coherent descriptor ring into neighbouring kernel pages"
}

func (a *ringCorrupt) Identify(p *sim.Proc, t *Target) error {
	var err error
	if a.ringIOVA, a.ringBuf, err = t.Mach.Mapper.AllocCoherent(p, mem.PageSize); err != nil {
		return err
	}
	a.allocated = true
	// The very next kernel allocation is the ring's physical neighbour.
	if a.neighbor, err = t.Mach.Kmal.Alloc(0, mem.PageSize); err != nil {
		return err
	}
	return t.Mach.Mem.Fill(a.neighbor, ringSentinel)
}

func (a *ringCorrupt) Deliver(p *sim.Proc, t *Target) error {
	// Legitimate use first: a completion write into the ring.
	res := t.Mach.IOMMU.DMAWrite(t.Dev(), a.ringIOVA, []byte("ring-status:ok"))
	a.ringOK = res.Fault == nil
	// Then probe successive page offsets past the ring.
	page := bytes.Repeat([]byte{0xEE}, mem.PageSize)
	for k := 1; k <= 8; k++ {
		res := t.Mach.IOMMU.DMAWrite(t.Dev(), a.ringIOVA+iommu.IOVA(k*mem.PageSize), page)
		if res.Fault == nil {
			a.probesLanded++
		}
	}
	return nil
}

func (a *ringCorrupt) Verify(p *sim.Proc, t *Target, r *Result) error {
	snap, err := t.Mach.Mem.Snapshot(a.neighbor)
	if err != nil {
		return err
	}
	corrupted := false
	for _, b := range snap {
		if b != ringSentinel {
			corrupted = true
			break
		}
	}
	r.Success = corrupted
	r.Metrics["ring_dma_ok"] = b2f(a.ringOK)
	r.Metrics["probes_landed"] = float64(a.probesLanded)
	if corrupted {
		r.Detail = "ring overrun corrupted the neighbouring kernel page"
	} else {
		r.Detail = "probes past the ring faulted or landed harmlessly"
	}
	return nil
}

func (a *ringCorrupt) Cleanup(p *sim.Proc, t *Target) error {
	if !a.allocated {
		return nil
	}
	return t.Mach.Mapper.FreeCoherent(p, a.ringIOVA, a.ringBuf)
}

// ---- fault-storm -----------------------------------------------------

// faultStorm floods the IOMMU with DMAs to stale victim addresses for
// ~15 ms. Against a translating design every post-flush replay faults,
// the fault-domain supervisor drains its token bucket and the device is
// quarantined; the attack "succeeds" only if the device finishes the
// storm unquarantined AND corrupted real OS memory along the way.
type faultStorm struct {
	targets   []iommu.IOVA
	stormDMAs int
}

// stormPolicy tolerates a modest fault rate, then quarantines for good:
// the payload measures containment, not recovery.
func stormPolicy() resilience.Policy {
	return resilience.Policy{
		FaultBurst:  16,
		RefillEvery: cycles.FromMicros(50),
		Cooldown:    resilience.NoReadmit,
		MaxReadmits: -1,
	}
}

func (a *faultStorm) Name() string { return "fault-storm" }
func (a *faultStorm) Title() string {
	return "sustained stale-address DMA flood vs the quarantine engine"
}

func (a *faultStorm) Identify(p *sim.Proc, t *Target) error {
	t.ArmSupervisor(stormPolicy())
	if err := t.RunTraffic(p, 16); err != nil {
		return err
	}
	a.targets = append([]iommu.IOVA{}, t.Observed...)
	if len(a.targets) == 0 {
		return fmt.Errorf("no observed addresses to storm")
	}
	return nil
}

func (a *faultStorm) Deliver(p *sim.Proc, t *Target) error {
	evil := []byte("FAULT-STORM-DMA")
	// 96 rounds x 160us spans the 10 ms deferred-flush deadline, so
	// deferred designs are observed transitioning open-window -> fault
	// -> quarantine mid-storm.
	for round := 0; round < 96; round++ {
		for _, addr := range a.targets {
			t.Mach.IOMMU.DMAWrite(t.Dev(), addr, evil)
			a.stormDMAs++
		}
		sleepUs(p, 160)
	}
	return nil
}

func (a *faultStorm) Verify(p *sim.Proc, t *Target, r *Result) error {
	blocked := t.Mach.IOMMU.Blocked(t.Dev())
	corrupted, err := t.CorruptedStale()
	if err != nil {
		return err
	}
	r.Success = !blocked && len(corrupted) > 0
	r.Metrics["storm_dmas"] = float64(a.stormDMAs)
	r.Metrics["corrupted_records"] = float64(len(corrupted))
	r.Metrics["quarantined"] = b2f(blocked)
	if st := t.Sup.Stats(t.Dev()); st.Quarantines > 0 {
		r.Metrics["time_to_quarantine_us"] = cycles.Micros(st.QuarantinedAt)
	}
	switch {
	case r.Success:
		r.Detail = "storm ran to completion unquarantined and corrupted OS memory"
	case blocked:
		r.Detail = "device quarantined mid-storm"
	default:
		r.Detail = "storm finished but never reached OS memory"
	}
	return nil
}

func (a *faultStorm) Cleanup(p *sim.Proc, t *Target) error { return nil }

// ---- hotplug-surprise ------------------------------------------------

// hotplugSurprise models surprise removal: the OS, believing the device
// gone, frees a still-mapped RX buffer and reuses the memory — then a
// ghost of the device (or a spoofed bus peer) writes to the live
// mapping. Only detaching the device at the IOMMU (DetachDevice) closes
// the channel, which the payload verifies as a second act.
type hotplugSurprise struct {
	m           *Mapping
	sensitive   []byte
	landed      bool
	closedAfter bool
}

func (a *hotplugSurprise) Name() string { return "hotplug-surprise" }
func (a *hotplugSurprise) Title() string {
	return "ghost write through a mapping orphaned by surprise removal"
}

func (a *hotplugSurprise) Identify(p *sim.Proc, t *Target) error {
	var err error
	if a.m, err = t.MapVictim(p, 1500, dmaapi.FromDevice); err != nil {
		return err
	}
	return t.BenignDMA(p, a.m)
}

func (a *hotplugSurprise) Deliver(p *sim.Proc, t *Target) error {
	// Surprise removal: the OS frees the buffer without unmapping (it
	// believes the device is gone) and the allocator reuses the memory.
	if err := t.Mach.Kmal.Free(a.m.Buf); err != nil {
		return err
	}
	a.sensitive = []byte("dm-crypt:volume-master-key:0xFEEDFACE")
	if err := t.Mach.Mem.Write(a.m.Buf.Addr, a.sensitive); err != nil {
		return err
	}
	// Well past any IOTLB TTL: what matters here is the live page-table
	// entry nobody tore down, not stale cached state.
	sleepUs(p, 30)
	ghost := []byte("GHOST-DEVICE-POST-REMOVAL-WRITE")
	t.ReplayObserved(p, a.m.Index, ghost)
	snap, err := t.Mach.Mem.Snapshot(a.m.Buf)
	if err != nil {
		return err
	}
	a.landed = !bytes.Equal(snap[:len(a.sensitive)], a.sensitive)
	// The fix: detach the device at the IOMMU, then replay again.
	if err := t.Mach.Mem.Write(a.m.Buf.Addr, a.sensitive); err != nil {
		return err
	}
	t.Mach.IOMMU.DetachDevice(t.Dev())
	t.ReplayObserved(p, a.m.Index, ghost)
	snap, err = t.Mach.Mem.Snapshot(a.m.Buf)
	if err != nil {
		return err
	}
	a.closedAfter = bytes.Equal(snap[:len(a.sensitive)], a.sensitive)
	return nil
}

func (a *hotplugSurprise) Verify(p *sim.Proc, t *Target, r *Result) error {
	r.Success = a.landed
	r.Metrics["ghost_write_hit"] = b2f(a.landed)
	r.Metrics["closed_after_detach"] = b2f(a.closedAfter)
	if a.landed {
		r.Detail = "orphaned mapping let the ghost device corrupt reused memory"
	} else {
		r.Detail = "ghost write never reached the reused memory"
	}
	return nil
}

func (a *hotplugSurprise) Cleanup(p *sim.Proc, t *Target) error {
	// Driver teardown finally runs; unmapping pages wiped by the detach
	// is tolerated via the domain's wipe debt.
	if a.m == nil || !a.m.Live {
		return nil
	}
	a.m.Live = false
	a.m.UnmappedAt = p.Now()
	return t.Mach.Mapper.Unmap(p, a.m.IOVA, a.m.Buf.Size, a.m.Dir)
}

// ---- ats-spoof -------------------------------------------------------

// atsSpoof models a device abusing PCIe Address Translation Services:
// it marks its request "pre-translated" by aiming a raw physical
// address at memory it was never given. Designs whose IOVAs coincide
// with physical addresses (passthrough and identity mapping) cannot
// tell the spoof from a legitimate access.
type atsSpoof struct {
	m      *Mapping
	secBuf mem.Buf
	leaked []byte
}

func (a *atsSpoof) Name() string { return "ats-spoof" }
func (a *atsSpoof) Title() string {
	return "pre-translated (raw physical) read against a live neighbour mapping"
}

func (a *atsSpoof) Identify(p *sim.Proc, t *Target) error {
	dmaBuf, secBuf, err := t.colocatedPair(256)
	if err != nil {
		return err
	}
	a.secBuf = secBuf
	a.m, err = t.MapVictimBuf(p, dmaBuf, dmaapi.FromDevice)
	return err
}

func (a *atsSpoof) Deliver(p *sim.Proc, t *Target) error {
	got := make([]byte, len(Secret))
	res := t.Mach.IOMMU.DMARead(t.Dev(), iommu.IOVA(a.secBuf.Addr), got)
	if leakEquals(got, res.Fault) {
		a.leaked = got
	}
	return nil
}

func (a *atsSpoof) Verify(p *sim.Proc, t *Target, r *Result) error {
	r.Success = a.leaked != nil
	r.Leaked = a.leaked
	r.Metrics["leaked_bytes"] = float64(len(a.leaked))
	if r.Success {
		r.Detail = "raw-physical read bypassed translation and leaked the secret"
	} else {
		r.Detail = "spoofed pre-translated access denied"
	}
	return nil
}

func (a *atsSpoof) Cleanup(p *sim.Proc, t *Target) error {
	if a.m == nil {
		return nil
	}
	if err := t.UnmapVictim(p, a.m); err != nil {
		return err
	}
	t.Mach.Mapper.Quiesce(p)
	return nil
}

// ---- magazine-reuse --------------------------------------------------

// magazineReuse probes the allocator-recycling race: map/unmap cycles
// watch how quickly IOVA space is re-handed out, then the device
// replays the freshest stale address immediately — inside any deferred
// or TTL window, and possibly aimed at whoever got the address next.
type magazineReuse struct {
	last          *Mapping
	reuseDistance int
	landed        bool
}

func (a *magazineReuse) Name() string { return "magazine-reuse" }
func (a *magazineReuse) Title() string {
	return "replay the freshest recycled IOVA inside the reuse window"
}

func (a *magazineReuse) Identify(p *sim.Proc, t *Target) error {
	// Warm the allocator caches and the IOTLB with ordinary traffic.
	return t.RunTraffic(p, 8)
}

func (a *magazineReuse) Deliver(p *sim.Proc, t *Target) error {
	seen := make(map[iommu.IOVA]int)
	for j := 0; j < 8; j++ {
		m, err := t.MapVictim(p, 1500, dmaapi.FromDevice)
		if err != nil {
			return err
		}
		base := m.IOVA - iommu.IOVA(m.IOVA.Offset())
		if prev, ok := seen[base]; ok && a.reuseDistance == 0 {
			a.reuseDistance = j - prev
		} else if !ok {
			seen[base] = j
		}
		if err := t.BenignDMA(p, m); err != nil {
			return err
		}
		if err := t.UnmapVictim(p, m); err != nil {
			return err
		}
		a.last = m
	}
	sleepUs(p, 1)
	t.ReplayObserved(p, a.last.Index, []byte("MAGAZINE-REUSE-RACE-WRITE"))
	var err error
	a.landed, err = t.corrupted(a.last)
	return err
}

func (a *magazineReuse) Verify(p *sim.Proc, t *Target, r *Result) error {
	r.Success = a.landed
	r.Metrics["reuse_distance"] = float64(a.reuseDistance)
	r.Metrics["replay_hit"] = b2f(a.landed)
	if a.landed {
		r.Detail = "freshest recycled address replayed into reused OS memory"
	} else {
		r.Detail = "recycled-address replay faulted or landed harmlessly"
	}
	return nil
}

func (a *magazineReuse) Cleanup(p *sim.Proc, t *Target) error { return nil }

// ---- stale-read ------------------------------------------------------

// staleRead exploits direction-blind permissions: an RX buffer is
// mapped for device WRITES only, but whatever the kernel previously
// kept in that slab slot is still there. A design that grants RW where
// write-only suffices lets the device read it out.
type staleRead struct {
	m     *Mapping
	got   []byte
	fault *iommu.Fault
}

func (a *staleRead) Name() string { return "stale-read" }
func (a *staleRead) Title() string {
	return "read stale kernel data out of a write-only RX mapping"
}

func (a *staleRead) Identify(p *sim.Proc, t *Target) error {
	buf, err := t.Mach.Kmal.Alloc(0, 1500)
	if err != nil {
		return err
	}
	// Stale kernel data left behind in the recycled slab slot.
	if err := t.Mach.Mem.Write(buf.Addr, Secret); err != nil {
		return err
	}
	a.m, err = t.MapVictimBuf(p, buf, dmaapi.FromDevice)
	return err
}

func (a *staleRead) Deliver(p *sim.Proc, t *Target) error {
	a.got = make([]byte, len(Secret))
	res := t.Mach.IOMMU.DMARead(t.Dev(), t.Observed[a.m.Index], a.got)
	a.fault = res.Fault
	return nil
}

func (a *staleRead) Verify(p *sim.Proc, t *Target, r *Result) error {
	r.Success = leakEquals(a.got, a.fault)
	if r.Success {
		r.Leaked = a.got
	}
	r.Metrics["read_denied"] = b2f(a.fault != nil)
	if r.Success {
		r.Detail = "write-only mapping readable: stale kernel data leaked"
	} else {
		r.Detail = "device read of the RX mapping denied or empty"
	}
	return nil
}

func (a *staleRead) Cleanup(p *sim.Proc, t *Target) error {
	if a.m == nil {
		return nil
	}
	if err := t.UnmapVictim(p, a.m); err != nil {
		return err
	}
	t.Mach.Mapper.Quiesce(p)
	return nil
}

// ---- interrupt-storm -------------------------------------------------

// interruptStorm spams message-signaled-interrupt doorbell writes at
// vectors the OS never granted the device — an interrupt flood aimed at
// other devices' handlers. Interrupt remapping (active whenever the
// design translates) blocks every ungranted vector; translation-free
// designs deliver the raw doorbell writes to the interrupt controller.
type interruptStorm struct {
	before iommu.MSIStats
	writes int
}

func (a *interruptStorm) Name() string { return "interrupt-storm" }
func (a *interruptStorm) Title() string {
	return "flood ungranted MSI vectors through the interrupt doorbell"
}

func (a *interruptStorm) Identify(p *sim.Proc, t *Target) error {
	// Behave first: ordinary traffic establishes the device's granted
	// vectors as the baseline the storm then departs from.
	if err := t.RunTraffic(p, 8); err != nil {
		return err
	}
	a.before = t.Mach.IOMMU.MSIStats()
	return nil
}

func (a *interruptStorm) Deliver(p *sim.Proc, t *Target) error {
	// 64 rounds x 8 high vectors (0xE0..0xE7 — nothing the NIC was ever
	// granted), spaced like a real storm rather than one burst.
	for round := 0; round < 64; round++ {
		for v := uint32(0); v < 8; v++ {
			t.Mach.IOMMU.MSIWrite(t.Dev(), iommu.MSIBase, 0xE0+v)
			a.writes++
		}
		sleepUs(p, 5)
	}
	return nil
}

func (a *interruptStorm) Verify(p *sim.Proc, t *Target, r *Result) error {
	st := t.Mach.IOMMU.MSIStats()
	spurious := st.Spurious - a.before.Spurious
	blocked := st.Blocked - a.before.Blocked
	r.Success = spurious >= uint64(a.writes)
	r.Metrics["msi_writes"] = float64(a.writes)
	r.Metrics["spurious_delivered"] = float64(spurious)
	r.Metrics["remap_blocked"] = float64(blocked)
	if r.Success {
		r.Detail = "every ungranted doorbell write reached the interrupt controller"
	} else {
		r.Detail = "interrupt remapping blocked the storm"
	}
	return nil
}

func (a *interruptStorm) Cleanup(p *sim.Proc, t *Target) error { return nil }
