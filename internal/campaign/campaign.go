// Package campaign implements a programmable malicious-device engine: a
// library of DMA attack payloads, each executed in four phases —
// identify / deliver / verify / cleanup — against a live simulated
// machine (IOMMU, page tables, IOTLB, protection strategy). Outcomes are
// observed, never scripted: a payload succeeds or fails according to the
// translation state the strategy actually produced, exactly like
// internal/attack's original three scenarios (which now run on this
// engine).
//
// The package generalizes the paper's Table 1 from 3 attacks x 6
// protection models to a ~10 x 8 success matrix (Matrix, cmd/attackbench)
// that is deterministic per seed and regression-gated in CI against
// ci/attack-baseline.json — any cell flip (a defense newly broken or
// newly effective) fails the build.
//
// Two design points beyond the PASIV-style payload library:
//
//   - Ground truth is sentinel-based: the victim's traffic loop fills
//     every unmapped ("OS-reused") buffer with a per-record sentinel, so
//     "the attack landed" means real OS-visible memory was corrupted —
//     writes that land harmlessly in quarantined shadow buffers or
//     SWIOTLB bounce slots do not count (see victim.go).
//   - The discovery payload (discover.go) is DICE-flavored: the attacker
//     infers live DMA channels by scanning the IOVA space and timing
//     translations instead of being handed addresses.
package campaign

import (
	"fmt"

	"repro/internal/bench"
	"repro/internal/cycles"
	"repro/internal/iommu"
	"repro/internal/resilience"
	"repro/internal/sim"
)

// Secret is the co-located kernel data harvest payloads try to steal
// (shared with internal/attack's Table 1 scenarios).
var Secret = []byte("TLS-PRIVATE-KEY:0xDEADBEEFCAFEBABE")

// Payload is one programmable attack. The four phases run in order, in
// proc context, against a live Target:
//
//	Identify  reconnaissance and victim-side staging: run victim traffic,
//	          stage co-located secrets, arm the fault-domain supervisor.
//	Deliver   mount the attack: the compromised device issues real DMAs
//	          through the simulated IOMMU.
//	Verify    decide success from observed machine state (sentinel
//	          corruption, leaked bytes, quarantine state) and record
//	          per-payload metrics into the Result.
//	Cleanup   release payload-held resources so accounting invariants
//	          hold for whatever runs next on the machine.
//
// A payload instance is single-use: it carries phase state from Identify
// through Cleanup and must not be reused across targets.
type Payload interface {
	// Name is the stable machine-readable payload id ("replay-window").
	Name() string
	// Title is the one-line human description.
	Title() string
	Identify(p *sim.Proc, t *Target) error
	Deliver(p *sim.Proc, t *Target) error
	Verify(p *sim.Proc, t *Target, r *Result) error
	Cleanup(p *sim.Proc, t *Target) error
}

// Result is the observed outcome of one payload against one system.
type Result struct {
	Payload string
	System  string
	// Success means the ATTACK succeeded (the protection was breached).
	Success bool
	// Detail is a short human-readable account of what happened.
	Detail string
	// Leaked holds bytes the device exfiltrated, when the payload steals
	// data (harvest/spoof/stale-read payloads).
	Leaked []byte
	// Metrics are the benchdiff-gated per-cell numbers. Every payload
	// records at least "success" (0/1); most add probe/fault/timing
	// counts. All values derive from virtual time and deterministic
	// state, never host wall-clock.
	Metrics map[string]float64
	Err     error
}

// Target is one assembled victim machine under attack: the compromised
// device is the machine's own NIC (device 1), as in internal/attack.
type Target struct {
	Mach   *bench.Machine
	System string
	Seed   int64

	// Log is the OS-side ground truth: every victim mapping with its
	// lifetime and sentinel state. Payloads use it in Verify (it is the
	// oracle); discovery-mode payloads must not read IOVAs from it
	// during Identify/Deliver.
	Log *VictimLog

	// Observed is the attacker's notebook: every IOVA the device
	// legitimately learned by having an RX descriptor posted to it
	// (nic.RxPostHook). Index i corresponds to Log.Mappings[i] for
	// mappings made through MapVictim/MapVictimBuf.
	Observed []iommu.IOVA

	// Sup is the fault-domain supervisor, nil unless a payload armed it
	// (ArmSupervisor): the success matrix measures the protection model
	// itself; quarantine interaction is per-payload.
	Sup *resilience.Supervisor
}

// NewTarget assembles a quiet single-core machine (no benchmark traffic)
// running the given protection strategy, with the descriptor-observation
// hook installed.
func NewTarget(system string, seed int64) (*Target, error) {
	cfg := bench.DefaultConfig(system, bench.RX, 1, 1500)
	mach, err := bench.NewMachine(cfg)
	if err != nil {
		return nil, err
	}
	t := &Target{Mach: mach, System: system, Seed: seed, Log: &VictimLog{}}
	mach.NIC.RxPostHook = func(q int, addr iommu.IOVA, n int) {
		t.Observed = append(t.Observed, addr)
	}
	return t, nil
}

// Dev is the compromised device's ID (the victim's own NIC).
func (t *Target) Dev() iommu.DeviceID { return t.Mach.Env.Dev }

// ArmSupervisor attaches the fault-domain quarantine engine with the
// given policy (payload-specific: the matrix runs unprotected by
// default so cells measure the protection model, not containment).
func (t *Target) ArmSupervisor(pol resilience.Policy) *resilience.Supervisor {
	t.Sup = resilience.Attach(t.Mach.IOMMU, t.Mach.Eng, pol)
	return t.Sup
}

// Execute runs the four phases of one payload in order on an already
// spawned proc. A phase error aborts the remaining phases (except that
// Cleanup still runs after a Verify error) and is recorded in r.Err.
func Execute(p *sim.Proc, t *Target, pl Payload, r *Result) error {
	r.Payload = pl.Name()
	r.System = t.System
	if r.Metrics == nil {
		r.Metrics = make(map[string]float64)
	}
	phase := func(name string, fn func() error) error {
		if err := fn(); err != nil {
			return fmt.Errorf("%s vs %s: %s phase: %w", pl.Name(), t.System, name, err)
		}
		return nil
	}
	if err := phase("identify", func() error { return pl.Identify(p, t) }); err != nil {
		r.Err = err
		return err
	}
	if err := phase("deliver", func() error { return pl.Deliver(p, t) }); err != nil {
		r.Err = err
		return err
	}
	verifyErr := phase("verify", func() error { return pl.Verify(p, t, r) })
	if err := phase("cleanup", func() error { return pl.Cleanup(p, t) }); err != nil && verifyErr == nil {
		verifyErr = err
	}
	if verifyErr != nil {
		r.Err = verifyErr
		return verifyErr
	}
	return nil
}

// CellWindowMs is the simulated window of one campaign cell: long enough
// for the slowest payload (the fault storm spans the 10 ms deferred-flush
// timer to observe delayed containment).
const CellWindowMs = 50

// Run executes one (system, payload) cell on a fresh machine and returns
// its observed Result. Deterministic for a given seed.
func Run(system, payload string, seed int64) (Result, error) {
	pl, err := Find(payload)
	if err != nil {
		return Result{Payload: payload, System: system, Err: err}, err
	}
	t, err := NewTarget(system, seed)
	if err != nil {
		return Result{Payload: payload, System: system, Err: err}, err
	}
	r := Result{Metrics: make(map[string]float64)}
	var execErr error
	t.Mach.Eng.Spawn("campaign", 0, 0, func(p *sim.Proc) {
		execErr = Execute(p, t, pl, &r)
	})
	t.Mach.Eng.Run(cycles.FromMillis(CellWindowMs))
	r.Metrics["success"] = b2f(r.Success)
	r.Metrics["faults"] = float64(t.Mach.IOMMU.FaultCount)
	r.Metrics["blocked_dmas"] = float64(t.Mach.IOMMU.BlockedDMAs)
	t.Mach.Eng.Stop()
	if execErr != nil {
		r.Err = execErr
	}
	return r, r.Err
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
