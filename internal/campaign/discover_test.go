package campaign_test

import (
	"sort"
	"testing"

	"repro/internal/bench"
	"repro/internal/campaign"
	"repro/internal/cycles"
	"repro/internal/sim"
)

// toldAttacker is the oracle the blind scanner is measured against: the
// same victim traffic, but the attacker replays every address it was
// legitimately told (the posted RX descriptors). Returns the indices of
// victim records the replays corrupted.
func toldAttacker(t *testing.T, system string) []int {
	t.Helper()
	tgt, err := campaign.NewTarget(system, 1)
	if err != nil {
		t.Fatalf("NewTarget(%s): %v", system, err)
	}
	var corrupted []int
	var runErr error
	tgt.Mach.Eng.Spawn("told", 0, 0, func(p *sim.Proc) {
		if runErr = tgt.RunTraffic(p, 16); runErr != nil {
			return
		}
		evil := []byte("TOLD-ATTACKER-REPLAY")
		for i := range tgt.Observed {
			tgt.ReplayObserved(p, i, evil)
		}
		corrupted, runErr = tgt.CorruptedStale()
	})
	tgt.Mach.Eng.Run(cycles.FromMillis(campaign.CellWindowMs))
	tgt.Mach.Eng.Stop()
	if runErr != nil {
		t.Fatalf("told attacker on %s: %v", system, runErr)
	}
	return corrupted
}

// blindAttacker runs the window-discovery payload (which never reads the
// descriptor notebook) and returns the victim records its probing
// corrupted.
func blindAttacker(t *testing.T, system string) []int {
	t.Helper()
	tgt, err := campaign.NewTarget(system, 1)
	if err != nil {
		t.Fatalf("NewTarget(%s): %v", system, err)
	}
	pl, err := campaign.Find("window-discovery")
	if err != nil {
		t.Fatal(err)
	}
	var r campaign.Result
	var runErr error
	tgt.Mach.Eng.Spawn("blind", 0, 0, func(p *sim.Proc) {
		runErr = campaign.Execute(p, tgt, pl, &r)
	})
	tgt.Mach.Eng.Run(cycles.FromMillis(campaign.CellWindowMs))
	tgt.Mach.Eng.Stop()
	if runErr != nil {
		t.Fatalf("blind attacker on %s: %v", system, runErr)
	}
	rec, ok := pl.(interface{ CorruptedRecords() []int })
	if !ok {
		t.Fatal("window-discovery payload does not expose CorruptedRecords")
	}
	return rec.CorruptedRecords()
}

// TestDiscoveryMatchesToldAttackerOnDeferredBackends is the discovery
// coverage guarantee: on backends with replay windows, the probe-timing
// attacker — handed no addresses at all — reaches every victim record a
// told-the-address attacker reaches. The eligibility clause keeps the
// pass non-vacuous: the told attacker must itself corrupt at least one
// record on these backends, or the comparison proves nothing.
func TestDiscoveryMatchesToldAttackerOnDeferredBackends(t *testing.T) {
	for _, sys := range []string{bench.SysLinuxDefer, bench.SysIdentityDefer, bench.SysNoIOMMU} {
		told := toldAttacker(t, sys)
		if len(told) == 0 {
			t.Errorf("%s: told-the-address attacker corrupted nothing — vacuous comparison, victim setup broke", sys)
			continue
		}
		blind := blindAttacker(t, sys)
		found := make(map[int]bool, len(blind))
		for _, i := range blind {
			found[i] = true
		}
		var missed []int
		for _, i := range told {
			if !found[i] {
				missed = append(missed, i)
			}
		}
		if len(missed) > 0 {
			sort.Ints(missed)
			t.Errorf("%s: blind discovery missed records %v (told attacker: %v, blind: %v)",
				sys, missed, told, blind)
		}
	}
}

// TestDiscoveryFindsNothingOnSealedBackends: against strict invalidation
// and the copy design the blind scan must corrupt zero records — and for
// the test to mean anything, those backends must also stop the told
// attacker.
func TestDiscoveryFindsNothingOnSealedBackends(t *testing.T) {
	for _, sys := range []string{bench.SysLinuxStrict, bench.SysCopy} {
		if got := blindAttacker(t, sys); len(got) != 0 {
			t.Errorf("%s: blind discovery corrupted records %v, want none", sys, got)
		}
		if got := toldAttacker(t, sys); len(got) != 0 {
			t.Errorf("%s: even the told attacker corrupted %v — backend regressed", sys, got)
		}
	}
}
