package campaign_test

import (
	"bytes"
	"runtime"
	"testing"

	"repro/internal/bench"
	"repro/internal/campaign"
	"repro/internal/report"
)

// campaignArtifact runs a smoke-sized campaign sweep at the given farm
// width and returns the encoded artifact bytes, exactly as
// cmd/attackbench -json would write them.
func campaignArtifact(t *testing.T, parallel int) []byte {
	t.Helper()
	cfg := campaign.MatrixConfig{
		Seed:     1,
		Payloads: []string{"replay-window", "window-discovery", "fault-storm", "magazine-reuse"},
		Systems:  []string{bench.SysLinuxStrict, bench.SysLinuxDefer, bench.SysCopy, bench.SysSelfInval, bench.SysSWIOTLB},
	}
	if parallel != 1 {
		farm := bench.NewFarm(parallel)
		defer farm.Close()
		cfg.Farm = farm
	}
	tb, _, err := campaign.Matrix(cfg)
	if err != nil {
		t.Fatalf("Matrix(parallel=%d): %v", parallel, err)
	}
	art := report.New("attackbench", campaign.CellWindowMs, nil)
	art.Add(tb.Experiment())
	var buf bytes.Buffer
	if err := art.Encode(&buf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	return buf.Bytes()
}

// TestCampaignArtifactDeterminism mirrors TestFarmArtifactDeterminism for
// the attack campaign: every cell is an independent machine seeded by
// bench.PointSeed, so the success-matrix artifact must be byte-identical
// at -parallel 1, 4 and GOMAXPROCS (and race-clean — this test is part of
// make race-smoke).
func TestCampaignArtifactDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run sweep comparison")
	}
	ref := campaignArtifact(t, 1)
	for _, parallel := range []int{4, runtime.GOMAXPROCS(0)} {
		got := campaignArtifact(t, parallel)
		if !bytes.Equal(ref, got) {
			t.Errorf("campaign artifact at parallel=%d differs from serial reference (%d vs %d bytes)",
				parallel, len(got), len(ref))
		}
	}
}
