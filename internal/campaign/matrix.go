package campaign

import (
	"fmt"

	"repro/internal/bench"
)

// MatrixConfig parameterizes a campaign sweep.
type MatrixConfig struct {
	Seed int64
	// Payloads defaults to Payloads() (every registered payload).
	Payloads []string
	// Systems defaults to bench.ExtendedSystems (all 8 backends).
	Systems []string
	// Farm fans the cells across workers; nil runs serially. Cells are
	// independent machines seeded by bench.PointSeed, so the artifact is
	// byte-identical at any -parallel setting.
	Farm *bench.Farm
}

// Matrix runs every payload against every backend (one fresh machine
// per cell) and renders the success matrix as a table: the generalized
// Table 1. Results come back in canonical payload-major, system-minor
// order regardless of farm scheduling.
func Matrix(cfg MatrixConfig) (*bench.Table, []Result, error) {
	pls := cfg.Payloads
	if len(pls) == 0 {
		pls = Payloads()
	}
	systems := cfg.Systems
	if len(systems) == 0 {
		systems = bench.ExtendedSystems
	}
	for _, name := range pls {
		if _, err := Find(name); err != nil {
			return nil, nil, err
		}
	}
	for _, s := range systems {
		if !bench.IsSystem(s) {
			return nil, nil, fmt.Errorf("campaign: unknown system %q", s)
		}
	}

	n := len(pls) * len(systems)
	results := make([]Result, n)
	err := cfg.Farm.Map(n, func(i int) error {
		res, err := Run(systems[i%len(systems)], pls[i/len(systems)], bench.PointSeed(cfg.Seed, i))
		results[i] = res
		return err
	})
	if err != nil {
		return nil, results, err
	}

	tb := &bench.Table{
		Name: "campaign",
		Title: fmt.Sprintf("Attack-campaign success matrix (%d payloads x %d backends, seed %d)",
			len(pls), len(systems), cfg.Seed),
		Note:    "BREACH = the attack reached real OS memory or leaked data; ok = the protection held.",
		Columns: append([]string{"payload"}, systems...),
	}
	for pi, name := range pls {
		cells := []string{name}
		for si := range systems {
			if results[pi*len(systems)+si].Success {
				cells = append(cells, "BREACH")
			} else {
				cells = append(cells, "ok")
			}
		}
		tb.AddRow(cells...)
	}
	for si, s := range systems {
		for pi, name := range pls {
			tb.Point(s, name, results[pi*len(systems)+si].Metrics)
		}
	}
	return tb, results, nil
}
