package campaign_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/campaign"
)

// expectedMatrix is the generalized Table 1: per payload, per backend,
// does the attack breach the protection? This is the security claim the
// whole repo defends — any cell flip is either a new vulnerability or a
// defense silently changing semantics, and must be investigated, not
// re-baselined away.
//
// Backend key order follows bench.ExtendedSystems.
var expectedMatrix = map[string]map[string]bool{
	"subpage-harvest": {
		"no iommu": true, "copy": false, "identity-": true, "identity+": true,
		"defer": true, "strict": true, "swiotlb": false, "selfinval": true,
	},
	"arbitrary-scan": {
		"no iommu": true, "copy": false, "identity-": false, "identity+": false,
		"defer": false, "strict": false, "swiotlb": true, "selfinval": false,
	},
	"replay-window": {
		"no iommu": true, "copy": false, "identity-": true, "identity+": false,
		"defer": true, "strict": false, "swiotlb": false, "selfinval": true,
	},
	"window-discovery": {
		"no iommu": true, "copy": false, "identity-": true, "identity+": false,
		"defer": true, "strict": false, "swiotlb": true, "selfinval": true,
	},
	"ring-corrupt": {
		"no iommu": true, "copy": false, "identity-": false, "identity+": false,
		"defer": false, "strict": false, "swiotlb": true, "selfinval": false,
	},
	"fault-storm": {
		"no iommu": true, "copy": false, "identity-": false, "identity+": false,
		"defer": false, "strict": false, "swiotlb": false, "selfinval": false,
	},
	"hotplug-surprise": {
		"no iommu": true, "copy": false, "identity-": true, "identity+": true,
		"defer": true, "strict": true, "swiotlb": false, "selfinval": true,
	},
	"ats-spoof": {
		"no iommu": true, "copy": false, "identity-": true, "identity+": true,
		"defer": false, "strict": false, "swiotlb": true, "selfinval": true,
	},
	"magazine-reuse": {
		"no iommu": true, "copy": false, "identity-": true, "identity+": false,
		"defer": true, "strict": false, "swiotlb": false, "selfinval": true,
	},
	"stale-read": {
		"no iommu": true, "copy": false, "identity-": true, "identity+": true,
		"defer": false, "strict": false, "swiotlb": false, "selfinval": true,
	},
	// Interrupt remapping rides translation: every translating design
	// filters doorbell writes to granted vectors, so only the two
	// translation-free designs deliver the storm (iommu/msi.go).
	"interrupt-storm": {
		"no iommu": true, "copy": false, "identity-": false, "identity+": false,
		"defer": false, "strict": false, "swiotlb": true, "selfinval": false,
	},
}

// grid renders a success matrix as an aligned text block for diffs.
func grid(payloads, systems []string, cell func(pl, sys string) string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s", "payload")
	for _, s := range systems {
		fmt.Fprintf(&b, " %-10s", s)
	}
	b.WriteString("\n")
	for _, pl := range payloads {
		fmt.Fprintf(&b, "%-18s", pl)
		for _, s := range systems {
			fmt.Fprintf(&b, " %-10s", cell(pl, s))
		}
		b.WriteString("\n")
	}
	return b.String()
}

func mark(breach bool) string {
	if breach {
		return "BREACH"
	}
	return "ok"
}

// TestSuccessMatrixTable1 asserts the full 10x8 success matrix cell by
// cell — the generalized Table 1 — with a readable grid diff on any
// mismatch.
func TestSuccessMatrixTable1(t *testing.T) {
	payloads := campaign.Payloads()
	if len(payloads) < 10 {
		t.Fatalf("payload library shrank: %d payloads (want >= 10): %v", len(payloads), payloads)
	}
	systems := bench.ExtendedSystems
	if len(systems) != 8 {
		t.Fatalf("backend set changed: %d systems (want 8): %v", len(systems), systems)
	}
	tb, results, err := campaign.Matrix(campaign.MatrixConfig{Seed: 1})
	if err != nil {
		t.Fatalf("Matrix: %v", err)
	}
	if len(tb.Rows) != len(payloads) {
		t.Fatalf("table has %d rows, want %d", len(tb.Rows), len(payloads))
	}

	observed := make(map[string]map[string]bool, len(payloads))
	for i, r := range results {
		pl, sys := payloads[i/len(systems)], systems[i%len(systems)]
		if r.Payload != pl || r.System != sys {
			t.Fatalf("result %d out of canonical order: got (%s,%s), want (%s,%s)",
				i, r.Payload, r.System, pl, sys)
		}
		if r.Err != nil {
			t.Fatalf("%s vs %s: %v", pl, sys, r.Err)
		}
		if observed[pl] == nil {
			observed[pl] = make(map[string]bool)
		}
		observed[pl][sys] = r.Success
	}

	var mismatches []string
	for _, pl := range payloads {
		want, ok := expectedMatrix[pl]
		if !ok {
			t.Errorf("payload %q has no expected row — add it to expectedMatrix", pl)
			continue
		}
		for _, sys := range systems {
			if observed[pl][sys] != want[sys] {
				mismatches = append(mismatches,
					fmt.Sprintf("  %s vs %s: got %s, want %s", pl, sys,
						mark(observed[pl][sys]), mark(want[sys])))
			}
		}
	}
	if len(mismatches) > 0 {
		t.Errorf("success matrix diverged in %d cells:\n%s\nobserved:\n%s\nexpected:\n%s",
			len(mismatches), strings.Join(mismatches, "\n"),
			grid(payloads, systems, func(pl, sys string) string { return mark(observed[pl][sys]) }),
			grid(payloads, systems, func(pl, sys string) string { return mark(expectedMatrix[pl][sys]) }))
	}
}

// TestCopyIsTheOnlyUnbreachedColumn asserts the paper's headline claim
// at campaign scale: across all ten payloads, copy is the only backend
// with zero breaches, and "no iommu" loses every cell.
func TestCopyIsTheOnlyUnbreachedColumn(t *testing.T) {
	_, results, err := campaign.Matrix(campaign.MatrixConfig{Seed: 1})
	if err != nil {
		t.Fatalf("Matrix: %v", err)
	}
	systems := bench.ExtendedSystems
	breaches := make(map[string]int)
	for i, r := range results {
		if r.Success {
			breaches[systems[i%len(systems)]]++
		}
	}
	if breaches[bench.SysCopy] != 0 {
		t.Errorf("copy was breached %d times — the paper's central security claim broke", breaches[bench.SysCopy])
	}
	for _, sys := range systems {
		if sys != bench.SysCopy && breaches[sys] == 0 {
			t.Errorf("%s shows zero breaches — either the attacks regressed or the matrix is vacuous", sys)
		}
	}
	if got, want := breaches[bench.SysNoIOMMU], len(campaign.Payloads()); got != want {
		t.Errorf("no iommu breached %d/%d payloads — every attack must succeed without protection", got, want)
	}
}
