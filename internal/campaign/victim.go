package campaign

import (
	"bytes"
	"fmt"

	"repro/internal/cycles"
	"repro/internal/dmaapi"
	"repro/internal/iommu"
	"repro/internal/mem"
	"repro/internal/nic"
	"repro/internal/sim"
)

// Mapping is one victim DMA mapping with its full OS-side lifetime.
type Mapping struct {
	Index      int
	IOVA       iommu.IOVA
	Buf        mem.Buf
	Dir        dmaapi.Dir
	MappedAt   uint64
	UnmappedAt uint64
	Live       bool
}

// VictimLog is the OS-side ground truth of every mapping the victim made.
// Verify phases read it as the oracle; discovery-mode payloads must not
// read addresses from it before Verify.
type VictimLog struct {
	Mappings []*Mapping
}

// Stale returns the unmapped (sentinel-filled) mappings.
func (l *VictimLog) Stale() []*Mapping {
	var out []*Mapping
	for _, m := range l.Mappings {
		if !m.Live {
			out = append(out, m)
		}
	}
	return out
}

// SentinelByte is the byte pattern record (or tenant) i is filled with at
// reuse time, standing in for whatever the OS reuses the memory for. Any
// other value in an audited buffer means a device write reached real OS
// memory it was never granted. Shared with internal/tenant, whose
// per-tenant private pages use the same oracle.
func SentinelByte(i int) byte { return byte(0xA1 + i*37) }

// MapVictimBuf maps a caller-staged buffer for DMA, logs the mapping,
// and posts an RX descriptor for it — the legitimate, device-visible
// channel through which the (compromised) device learns the IOVA.
func (t *Target) MapVictimBuf(p *sim.Proc, buf mem.Buf, dir dmaapi.Dir) (*Mapping, error) {
	addr, err := t.Mach.Mapper.Map(p, buf, dir)
	if err != nil {
		return nil, err
	}
	m := &Mapping{
		Index:    len(t.Log.Mappings),
		IOVA:     addr,
		Buf:      buf,
		Dir:      dir,
		MappedAt: p.Now(),
		Live:     true,
	}
	t.Log.Mappings = append(t.Log.Mappings, m)
	if !t.Mach.NIC.Queue(0).PostRx(p, nic.Desc{Addr: addr, Len: buf.Size, Tag: buf}) {
		return nil, fmt.Errorf("campaign: rx ring full posting mapping %d", m.Index)
	}
	return m, nil
}

// MapVictim kmallocs a buffer and maps it via MapVictimBuf.
func (t *Target) MapVictim(p *sim.Proc, size int, dir dmaapi.Dir) (*Mapping, error) {
	buf, err := t.Mach.Kmal.Alloc(0, size)
	if err != nil {
		return nil, err
	}
	return t.MapVictimBuf(p, buf, dir)
}

// BenignDMA performs the mapping's legitimate device access (a frame
// delivery for FromDevice, a payload fetch for ToDevice) — which, on
// translated backends, caches the translation in the IOTLB exactly as
// real traffic would.
func (t *Target) BenignDMA(p *sim.Proc, m *Mapping) error {
	if m.Dir == dmaapi.ToDevice {
		got := make([]byte, m.Buf.Size)
		if res := t.Mach.IOMMU.DMARead(t.Dev(), m.IOVA, got); res.Fault != nil {
			return fmt.Errorf("benign DMA read of mapping %d: %v", m.Index, res.Fault)
		}
		return nil
	}
	payload := []byte(fmt.Sprintf("frame-%03d:benign-rx-payload", m.Index))
	if res := t.Mach.IOMMU.DMAWrite(t.Dev(), m.IOVA, payload); res.Fault != nil {
		return fmt.Errorf("benign DMA write of mapping %d: %v", m.Index, res.Fault)
	}
	return nil
}

// UnmapVictim unmaps the buffer and models immediate OS reuse of the
// memory: the whole buffer is refilled with the record's sentinel, so
// later device writes through stale state are detectable as corruption
// of real OS data.
func (t *Target) UnmapVictim(p *sim.Proc, m *Mapping) error {
	if err := t.Mach.Mapper.Unmap(p, m.IOVA, m.Buf.Size, m.Dir); err != nil {
		return fmt.Errorf("unmap of mapping %d: %w", m.Index, err)
	}
	m.Live = false
	m.UnmappedAt = p.Now()
	return t.Mach.Mem.Fill(m.Buf, SentinelByte(m.Index))
}

// RunTraffic models a victim driver processing n receive buffers:
// map, deliver one frame, unmap, reuse. Every buffer ends unmapped and
// sentinel-filled, so afterwards Log.Stale() is the complete corruption
// oracle and the IOTLB holds whatever stale state the strategy left.
func (t *Target) RunTraffic(p *sim.Proc, n int) error {
	for i := 0; i < n; i++ {
		m, err := t.MapVictim(p, 1500, dmaapi.FromDevice)
		if err != nil {
			return err
		}
		if err := t.BenignDMA(p, m); err != nil {
			return err
		}
		if err := t.UnmapVictim(p, m); err != nil {
			return err
		}
	}
	return nil
}

// CorruptedStale returns the indices of unmapped mappings whose buffers
// no longer hold their sentinel — i.e. real OS memory a device write
// reached after the unmap. Writes that landed in shadow buffers or
// bounce slots do not show up here, by construction.
func (t *Target) CorruptedStale() ([]int, error) {
	var out []int
	for _, m := range t.Log.Stale() {
		snap, err := t.Mach.Mem.Snapshot(m.Buf)
		if err != nil {
			return nil, err
		}
		want := SentinelByte(m.Index)
		for _, b := range snap {
			if b != want {
				out = append(out, m.Index)
				break
			}
		}
	}
	return out, nil
}

// ReplayObserved issues a device write to the i-th IOVA in the
// attacker's notebook — the told-the-address attacker discovery mode is
// measured against.
func (t *Target) ReplayObserved(p *sim.Proc, i int, payload []byte) iommu.DMAResult {
	return t.Mach.IOMMU.DMAWrite(t.Dev(), t.Observed[i], payload)
}

// restoreSentinel re-fills an unmapped mapping's buffer with its
// sentinel (between probe rounds of multi-shot payloads).
func (t *Target) restoreSentinel(m *Mapping) error {
	return t.Mach.Mem.Fill(m.Buf, SentinelByte(m.Index))
}

// corrupted reports whether one unmapped mapping's buffer lost its
// sentinel.
func (t *Target) corrupted(m *Mapping) (bool, error) {
	snap, err := t.Mach.Mem.Snapshot(m.Buf)
	if err != nil {
		return false, err
	}
	want := SentinelByte(m.Index)
	for _, b := range snap {
		if b != want {
			return true, nil
		}
	}
	return false, nil
}

// colocatedPair stages the classic sub-page layout: two consecutive slab
// allocations sharing one page, the second holding Secret.
func (t *Target) colocatedPair(size int) (dmaBuf, secBuf mem.Buf, err error) {
	dmaBuf, err = t.Mach.Kmal.Alloc(0, size)
	if err != nil {
		return
	}
	secBuf, err = t.Mach.Kmal.Alloc(0, size)
	if err != nil {
		return
	}
	if !mem.SamePage(dmaBuf, secBuf) {
		err = fmt.Errorf("campaign: slab allocations not co-located")
		return
	}
	err = t.Mach.Mem.Write(secBuf.Addr, Secret)
	return
}

// leakEquals reports whether a device read recovered exactly the secret.
func leakEquals(got []byte, fault *iommu.Fault) bool {
	return fault == nil && bytes.Equal(got, Secret)
}

// sleepUs advances the attacking proc's virtual time.
func sleepUs(p *sim.Proc, us float64) { p.Sleep(cycles.FromMicros(us)) }
