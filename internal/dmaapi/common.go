package dmaapi

import (
	"fmt"

	"repro/internal/cycles"
	"repro/internal/iommu"
	"repro/internal/mem"
	"repro/internal/sim"
)

// mapSGLoop implements scatter/gather mapping as a loop over Map, as the
// paper notes SG operations "work analogously" (§2.2 footnote 1).
func mapSGLoop(m Mapper, p *sim.Proc, bufs []mem.Buf, dir Dir) ([]iommu.IOVA, error) {
	addrs := make([]iommu.IOVA, 0, len(bufs))
	for _, b := range bufs {
		a, err := m.Map(p, b, dir)
		if err != nil {
			// Unwind partial progress so SG map is all-or-nothing.
			for i, done := range addrs {
				_ = m.Unmap(p, done, bufs[i].Size, dir)
			}
			return nil, err
		}
		addrs = append(addrs, a)
	}
	return addrs, nil
}

func unmapSGLoop(m Mapper, p *sim.Proc, addrs []iommu.IOVA, sizes []int, dir Dir) error {
	if len(addrs) != len(sizes) {
		return fmt.Errorf("dmaapi: SG unmap length mismatch %d vs %d", len(addrs), len(sizes))
	}
	for i, a := range addrs {
		if err := m.Unmap(p, a, sizes[i], dir); err != nil {
			return err
		}
	}
	return nil
}

// syncMaint charges the cache-maintenance cost of a dma_sync_* call on a
// zero-copy mapping (no data movement is needed: the device already
// operates directly on the OS buffer).
func syncMaint(env *Env, p *sim.Proc) {
	p.ChargeSpan("sync", cycles.TagOther, env.Costs.SyncMaint)
}

// allocCoherentPages allocates whole pages for a coherent buffer on the
// caller's NUMA domain — page quantities guarantee it never shares a page
// with other data (paper §2.2).
func allocCoherentPages(env *Env, p *sim.Proc, size int) (mem.Buf, error) {
	if size <= 0 {
		return mem.Buf{}, fmt.Errorf("dmaapi: coherent alloc of %d bytes", size)
	}
	pages := (size + mem.PageSize - 1) / mem.PageSize
	domain := env.DomainOfCore(p.Core())
	addr, err := env.Mem.AllocPages(domain, pages)
	if err != nil {
		return mem.Buf{}, err
	}
	return mem.Buf{Addr: addr, Size: size}, nil
}

func freeCoherentPages(env *Env, buf mem.Buf) error {
	pages := (buf.Size + mem.PageSize - 1) / mem.PageSize
	return env.Mem.FreePages(buf.Addr, pages)
}

// flushEntry is one deferred unmap awaiting its batched invalidation.
type flushEntry struct {
	free func() // deferred release work (IOVA free), run after the flush
}

// flushQueue batches IOTLB invalidations, as Linux's deferred mode does:
// the IOTLB is invalidated (globally) after `threshold` unmaps or after
// `timeout`, whichever comes first (paper §2.2.1: 250 entries / 10 ms).
// The queue is protected by one global lock — itself a multicore
// bottleneck, which is what [42] pointed out.
type flushQueue struct {
	env       *Env
	lock      *sim.Spinlock
	entries   []flushEntry
	threshold int
	timeout   uint64 // cycles
	timer     *sim.Timer
	stats     *Stats
	freeCost  uint64 // cycles charged per entry's deferred free work
}

func newFlushQueue(env *Env, stats *Stats, threshold int, timeoutMs float64) *flushQueue {
	return &flushQueue{
		env:       env,
		lock:      env.NewLock("flushq"),
		threshold: threshold,
		timeout:   cycles.FromMillis(timeoutMs),
		stats:     stats,
	}
}

// add queues a deferred unmap. Called from proc context; takes the global
// flush-queue lock and, at the high-water mark, performs the flush while
// holding it (as Linux's add_unmap/flush_unmaps do).
func (f *flushQueue) add(p *sim.Proc, e flushEntry) {
	f.lock.Lock(p)
	f.entries = append(f.entries, e)
	if len(f.entries) > f.stats.DeferredQueuePeak {
		f.stats.DeferredQueuePeak = len(f.entries)
	}
	if len(f.entries) == 1 {
		// Arm the 10 ms timer for a low-rate trickle of unmaps.
		f.armTimer()
	}
	if len(f.entries) >= f.threshold {
		f.flushLocked(p)
	}
	f.lock.Unlock(p)
}

func (f *flushQueue) armTimer() {
	if f.timer != nil {
		f.timer.Cancel()
	}
	f.timer = f.env.Eng.ScheduleTimer(f.env.Eng.Now()+f.timeout, f.timerFlush)
}

// flushLocked performs the batched invalidation from proc context with
// full cost accounting. Caller holds f.lock.
func (f *flushQueue) flushLocked(p *sim.Proc) {
	if len(f.entries) == 0 {
		return
	}
	if p.Observed() {
		p.SpanEnter("inval")
	}
	q := f.env.IOMMU.Queue
	q.Lock.Lock(p)
	done := q.SubmitGlobal(p)
	q.WaitRecover(p, done)
	q.Lock.Unlock(p)
	if p.Observed() {
		p.SpanExit()
	}
	if f.freeCost > 0 {
		p.ChargeSpan("iova-free", cycles.TagIOVA, f.freeCost*uint64(len(f.entries)))
	}
	for _, e := range f.entries {
		if e.free != nil {
			e.free()
		}
	}
	f.entries = f.entries[:0]
	f.stats.DeferredFlushes++
	if f.timer != nil {
		f.timer.Cancel()
		f.timer = nil
	}
}

// timerFlush runs in timer (engine) context when the 10 ms deadline
// expires: the invalidation is issued without charging any measured core.
func (f *flushQueue) timerFlush(now uint64) {
	if len(f.entries) == 0 {
		return
	}
	f.env.IOMMU.Queue.SubmitGlobalAt(now)
	for _, e := range f.entries {
		if e.free != nil {
			e.free()
		}
	}
	f.entries = f.entries[:0]
	f.stats.DeferredFlushes++
	f.timer = nil
}

// quiesce drains the queue from proc context.
func (f *flushQueue) quiesce(p *sim.Proc) {
	f.lock.Lock(p)
	f.flushLocked(p)
	f.lock.Unlock(p)
}
