// Package dmaapi implements the OS DMA mapping API (dma_map/dma_unmap,
// scatter-gather variants, and coherent allocations) over the simulated
// IOMMU, together with the baseline protection strategies the paper
// compares against:
//
//   - noiommu:   passthrough, no protection (the upper performance bound)
//   - strict:    Linux-style strict protection (IOVA tree + per-unmap
//     IOTLB invalidation)
//   - defer:     Linux-style deferred protection (batched invalidations)
//   - identity+: identity mappings with strict invalidation (Peleg et al.)
//   - identity-: identity mappings with deferred invalidation
//
// The paper's own strategy — DMA shadowing ("copy") — lives in
// internal/core and implements the same Mapper interface.
package dmaapi

import (
	"fmt"

	"repro/internal/cycles"
	"repro/internal/iommu"
	"repro/internal/mem"
	"repro/internal/sim"
)

// ErrBackpressure is returned by Map when every rung of a mapper's
// pressure-degradation ladder failed (retry, then strict spill): the
// mapping is refused cheaply and the caller should shed load — drop the
// packet, let ring credits run down — and try again later, rather than
// treat the condition as fatal. Matched with errors.Is; see
// doc/RESILIENCE.md for the ladder.
var ErrBackpressure = fmt.Errorf("dmaapi: mapping refused under backpressure")

// Dir is the DMA direction, from the CPU's point of view (as in the Linux
// DMA API).
type Dir uint8

const (
	// ToDevice marks data the device will read (transmit buffers).
	ToDevice Dir = iota + 1
	// FromDevice marks data the device will write (receive buffers).
	FromDevice
	// Bidirectional marks data both sides access.
	Bidirectional
)

// Perm converts the direction into the device permissions it requires.
func (d Dir) Perm() iommu.Perm {
	switch d {
	case ToDevice:
		return iommu.PermRead
	case FromDevice:
		return iommu.PermWrite
	default:
		return iommu.PermRW
	}
}

func (d Dir) String() string {
	switch d {
	case ToDevice:
		return "to-device"
	case FromDevice:
		return "from-device"
	case Bidirectional:
		return "bidirectional"
	}
	return fmt.Sprintf("dir(%d)", uint8(d))
}

// Mapper is the DMA API a driver uses to authorize device DMA. Every
// protection strategy implements it; the driver code is identical across
// strategies — the transparency goal of the paper (§5.1).
type Mapper interface {
	// Name identifies the strategy ("copy", "identity+", ...).
	Name() string

	// Map authorizes a DMA to buf and returns the IOVA the device must
	// use. After Map, the CPU must not touch the buffer.
	Map(p *sim.Proc, buf mem.Buf, dir Dir) (iommu.IOVA, error)

	// Unmap revokes the authorization. For FromDevice/Bidirectional
	// mappings the buffer then holds whatever the device wrote. size and
	// dir must match the Map call.
	Unmap(p *sim.Proc, addr iommu.IOVA, size int, dir Dir) error

	// SyncForCPU transfers ownership of a live mapping to the CPU
	// without destroying it (dma_sync_single_for_cpu): afterwards the
	// CPU observes everything the device wrote so far. Copying
	// strategies copy out here; zero-copy strategies only pay cache
	// maintenance.
	SyncForCPU(p *sim.Proc, addr iommu.IOVA, size int, dir Dir) error

	// SyncForDevice transfers ownership back to the device
	// (dma_sync_single_for_device): afterwards the device observes the
	// CPU's updates to the buffer.
	SyncForDevice(p *sim.Proc, addr iommu.IOVA, size int, dir Dir) error

	// MapSG maps a scatter/gather list, returning one IOVA per element.
	MapSG(p *sim.Proc, bufs []mem.Buf, dir Dir) ([]iommu.IOVA, error)

	// UnmapSG unmaps a scatter/gather list.
	UnmapSG(p *sim.Proc, addrs []iommu.IOVA, sizes []int, dir Dir) error

	// AllocCoherent allocates a buffer that CPU and device share for the
	// lifetime of the driver (descriptor rings, mailboxes). Always
	// page-granular, so it never co-locates with other data (paper §5.2).
	AllocCoherent(p *sim.Proc, size int) (iommu.IOVA, mem.Buf, error)

	// FreeCoherent releases a coherent buffer, strictly invalidating.
	FreeCoherent(p *sim.Proc, addr iommu.IOVA, buf mem.Buf) error

	// Quiesce forces any deferred invalidations to complete now (used at
	// teardown and by tests; Linux equivalent: draining the flush queue).
	Quiesce(p *sim.Proc)

	// Stats returns operation counters.
	Stats() Stats

	// Accounting returns a snapshot of the strategy's live resource
	// state. After every mapping and coherent allocation is released and
	// Quiesce has run, all fields must be zero — the invariant the
	// dmafuzz resource oracle enforces (leaked mappings, IOVAs, or
	// deferred entries show up here).
	Accounting() Accounting
}

// Accounting is a point-in-time snapshot of the resources a Mapper holds
// on behalf of its callers. Permanent caches (shadow pools, bounce-slot
// free lists, IOVA magazines) are deliberately excluded: they are owned
// by the strategy, not by any live mapping.
type Accounting struct {
	// LiveMappings counts streaming mappings not yet unmapped (for
	// identity designs: physical pages with a non-zero mapping refcount).
	LiveMappings int
	// LiveCoherent counts coherent allocations not yet freed.
	LiveCoherent int
	// IOVAPagesHeld counts IOVA pages held from dynamic allocators on
	// behalf of live mappings (zero for strategies without an allocator).
	IOVAPagesHeld uint64
	// DeferredPending counts unmaps queued but not yet flushed.
	DeferredPending int
}

// Zero reports whether no resources are held.
func (a Accounting) Zero() bool {
	return a.LiveMappings == 0 && a.LiveCoherent == 0 &&
		a.IOVAPagesHeld == 0 && a.DeferredPending == 0
}

// Stats counts DMA API activity.
type Stats struct {
	Maps, Unmaps       uint64
	BytesMapped        uint64
	CoherentAllocs     uint64
	DeferredFlushes    uint64
	DeferredQueuePeak  int
	FallbackMaps       uint64 // shadow strategy: fallback-path maps
	HybridMaps         uint64 // shadow strategy: huge-buffer hybrid maps
	BytesCopied        uint64 // shadow strategy: memcpy volume
	ShadowPoolBytes    uint64 // shadow strategy: pool footprint
	ShadowPoolBuffers  uint64
	ShadowGrows        uint64
	CopyHintBytesSaved uint64
	// Degradation-ladder counters (copy strategy under pool pressure;
	// zero unless the ladder is enabled and the pool ran dry).
	DegradedRetries   uint64 // rung 1: bounded acquire retries
	DegradedSpills    uint64 // rung 2: strict per-buffer spill maps
	BackpressureFails uint64 // rung 3: maps refused with ErrBackpressure
}

// Env bundles the simulated machine a Mapper operates on.
type Env struct {
	Eng   *sim.Engine
	Mem   *mem.Memory
	IOMMU *iommu.IOMMU
	Costs *cycles.Costs
	Dev   iommu.DeviceID
	Cores int
}

// DomainOfCore maps a core index to its NUMA domain (cores are split
// evenly across domains, as on the paper's dual-socket machine).
func (e *Env) DomainOfCore(core int) int {
	d := e.Mem.Domains()
	if d <= 1 || e.Cores <= 0 {
		return 0
	}
	per := (e.Cores + d - 1) / d
	dom := core / per
	if dom >= d {
		dom = d - 1
	}
	return dom
}

// NewLock builds a spinlock using the environment's contention model.
func (e *Env) NewLock(name string) *sim.Spinlock {
	return sim.NewSpinlock(name, cycles.TagSpinlock, sim.LockCosts{
		Uncontended:      e.Costs.LockUncontended,
		HandoffBase:      e.Costs.LockHandoffBase,
		HandoffPerWaiter: e.Costs.LockHandoffPerWaiter,
	})
}

// PagesOf returns the number of 4 KiB pages spanned by a buffer of the
// given size starting at addr (page-crossing aware).
func PagesOf(addr uint64, size int) int {
	if size <= 0 {
		return 0
	}
	first := addr >> mem.PageShift
	last := (addr + uint64(size) - 1) >> mem.PageShift
	return int(last - first + 1)
}
