package dmaapi

import (
	"bytes"
	"testing"

	"repro/internal/cycles"
	"repro/internal/iommu"
	"repro/internal/mem"
	"repro/internal/sim"
)

// Tests for the related-work strategies (paper §7): SWIOTLB bounce
// buffering and the Basu et al. self-invalidating IOMMU.

func TestSWIOTLBCopySemantics(t *testing.T) {
	env := newEnv(1)
	m := NewSWIOTLB(env)
	buf := allocBuf(t, env, 1500)
	env.Mem.Write(buf.Addr, []byte("outbound"))
	inProc(t, env, func(p *sim.Proc) {
		addr, err := m.Map(p, buf, ToDevice)
		if err != nil {
			t.Fatal(err)
		}
		if addr == iommu.IOVA(buf.Addr) {
			t.Error("device address must be the bounce slot, not the OS buffer")
		}
		got := make([]byte, 8)
		if res := env.IOMMU.DMARead(env.Dev, addr, got); res.Fault != nil {
			t.Fatal(res.Fault)
		}
		if !bytes.Equal(got, []byte("outbound")) {
			t.Error("bounce buffer missing copied data")
		}
		if err := m.Unmap(p, addr, buf.Size, ToDevice); err != nil {
			t.Fatal(err)
		}
		// FromDevice direction: device writes bounce, unmap copies out.
		addr2, err := m.Map(p, buf, FromDevice)
		if err != nil {
			t.Fatal(err)
		}
		if addr2 != addr {
			t.Error("bounce slot should be reused per core")
		}
		env.IOMMU.DMAWrite(env.Dev, addr2, []byte("inbound!"))
		if err := m.Unmap(p, addr2, buf.Size, FromDevice); err != nil {
			t.Fatal(err)
		}
		snap, _ := env.Mem.Snapshot(mem.Buf{Addr: buf.Addr, Size: 8})
		if !bytes.Equal(snap, []byte("inbound!")) {
			t.Error("unmap did not copy device data out of the bounce slot")
		}
	})
	if m.Stats().BytesCopied != 3000 {
		t.Errorf("bytes copied = %d, want 3000", m.Stats().BytesCopied)
	}
}

func TestSWIOTLBProvidesNoProtection(t *testing.T) {
	// The paper: SWIOTLB "makes no use of the hardware IOMMU and thus
	// provides no protection from DMA attacks".
	env := newEnv(1)
	m := NewSWIOTLB(env)
	buf := allocBuf(t, env, 1000)
	inProc(t, env, func(p *sim.Proc) {
		if _, err := m.Map(p, buf, FromDevice); err != nil {
			t.Fatal(err)
		}
		// The device can DMA straight into the OS buffer — or anywhere.
		if res := env.IOMMU.DMAWrite(env.Dev, iommu.IOVA(buf.Addr), []byte("evil")); res.Fault != nil {
			t.Error("swiotlb device should be unconstrained (passthrough)")
		}
	})
}

func TestSWIOTLBErrors(t *testing.T) {
	env := newEnv(1)
	m := NewSWIOTLB(env)
	buf := allocBuf(t, env, 1000)
	inProc(t, env, func(p *sim.Proc) {
		if _, err := m.Map(p, mem.Buf{}, ToDevice); err == nil {
			t.Error("empty map should fail")
		}
		if _, err := m.Map(p, mem.Buf{Addr: buf.Addr, Size: 1 << 20}, ToDevice); err == nil {
			t.Error("oversize map should fail")
		}
		addr, _ := m.Map(p, buf, ToDevice)
		if err := m.Unmap(p, addr, buf.Size, FromDevice); err == nil {
			t.Error("direction mismatch should fail")
		}
		if err := m.Unmap(p, addr+1, buf.Size, ToDevice); err == nil {
			t.Error("unknown address should fail")
		}
		if err := m.Unmap(p, addr, buf.Size, ToDevice); err != nil {
			t.Fatal(err)
		}
	})
}

func TestSelfInvalBoundedWindow(t *testing.T) {
	env := newEnv(1)
	ttl := cycles.FromMicros(20)
	m := NewSelfInval(env, ttl)
	if m.Name() != "selfinval" {
		t.Fatalf("name = %s", m.Name())
	}
	buf := allocBuf(t, env, 1500)
	inProc(t, env, func(p *sim.Proc) {
		addr, err := m.Map(p, buf, FromDevice)
		if err != nil {
			t.Fatal(err)
		}
		// Device uses the mapping (caches the translation).
		if res := env.IOMMU.DMAWrite(env.Dev, addr, []byte("pkt")); res.Fault != nil {
			t.Fatal(res.Fault)
		}
		if err := m.Unmap(p, addr, buf.Size, FromDevice); err != nil {
			t.Fatal(err)
		}
		// Within the TTL, the stale cached entry still works: the window
		// exists but is bounded.
		p.Sleep(cycles.FromMicros(5))
		if res := env.IOMMU.DMAWrite(env.Dev, addr, []byte("early")); res.Fault != nil {
			t.Errorf("write inside TTL window should land: %v", res.Fault)
		}
		// Past the TTL the entry has self-destructed: no software
		// invalidation was ever needed.
		p.Sleep(cycles.FromMicros(30))
		if res := env.IOMMU.DMAWrite(env.Dev, addr, []byte("late")); res.Fault == nil {
			t.Error("write past TTL must fault (hardware self-invalidation)")
		}
	})
	if env.IOMMU.Queue.Submitted != 0 {
		t.Errorf("selfinval must never submit software invalidations, got %d", env.IOMMU.Queue.Submitted)
	}
	if env.IOMMU.TLB().TTLExpiries == 0 {
		t.Error("TTL expiry should be recorded")
	}
}

func TestSelfInvalRemapWithinTTLWorks(t *testing.T) {
	// A fresh mapping of the same page inside the TTL must be usable:
	// the stale entry maps to the same identity translation, so reuse is
	// coherent (and a page-table walk refreshes the entry when needed).
	env := newEnv(1)
	m := NewSelfInval(env, cycles.FromMicros(20))
	buf := allocBuf(t, env, 1500)
	inProc(t, env, func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			addr, err := m.Map(p, buf, FromDevice)
			if err != nil {
				t.Fatal(err)
			}
			if res := env.IOMMU.DMAWrite(env.Dev, addr, []byte("pkt")); res.Fault != nil {
				t.Fatalf("iteration %d: %v", i, res.Fault)
			}
			if err := m.Unmap(p, addr, buf.Size, FromDevice); err != nil {
				t.Fatal(err)
			}
			p.Sleep(cycles.FromMicros(7))
		}
	})
}

func TestSelfInvalCheaperThanStrict(t *testing.T) {
	perOp := func(mk func(*Env) Mapper) uint64 {
		env := newEnv(1)
		m := mk(env)
		buf := allocBuf(t, env, 1500)
		var busy uint64
		inProc(t, env, func(p *sim.Proc) {
			for i := 0; i < 200; i++ {
				addr, err := m.Map(p, buf, FromDevice)
				if err != nil {
					t.Fatal(err)
				}
				if err := m.Unmap(p, addr, buf.Size, FromDevice); err != nil {
					t.Fatal(err)
				}
			}
			busy = p.Busy()
		})
		return busy
	}
	strict := perOp(func(e *Env) Mapper { return NewIdentity(e, false) })
	self := perOp(func(e *Env) Mapper { return NewSelfInval(e, 0) })
	if self*2 > strict {
		t.Errorf("selfinval (%d cycles) should be far cheaper than identity+ (%d)", self, strict)
	}
}
