package dmaapi

import (
	"fmt"

	"repro/internal/cycles"
	"repro/internal/iommu"
	"repro/internal/mem"
	"repro/internal/sim"
)

// identityShards is the number of refcount-lock shards. Sharding makes the
// identity designs scale on the map path (their whole point, per Peleg et
// al. ATC'15): only the IOTLB invalidation remains serialized.
const identityShards = 256

// identityMode selects the invalidation discipline of an IdentityMapper.
type identityMode int

const (
	identityStrict identityMode = iota
	identityDeferred
	identitySelfInval
)

// IdentityMapper models the identity-mapping designs of Peleg et al.
// (ATC'15), the strongest published baselines the paper compares against
// (identity+ = strict, identity- = deferred), plus the self-invalidating
// hardware proposal of Basu et al. as a third mode. The IOVA of a buffer
// is its physical address, so no IOVA allocator (and no allocator lock) is
// needed; pages are mapped on first use and unmapped when their refcount
// drops to zero.
//
// Identity mappings are inherently page-granular and (because distinct
// buffers share pages) cannot express per-buffer directions, so pages are
// mapped read-write — the "no sub-page protection" row of Table 1.
type IdentityMapper struct {
	env  *Env
	mode identityMode
	ttl  uint64 // self-invalidation period (identitySelfInval only)

	shards [identityShards]*identityShard
	// flushes holds one flush queue per core: the scalable design batches
	// IOTLB invalidations locally on each core instead of on a global,
	// lock-protected list (paper §2.2.1, citing [42]) — at the price of a
	// larger vulnerability window.
	flushes []*flushQueue

	coherent int // outstanding coherent allocations
	stats    Stats
}

type identityShard struct {
	lock *sim.Spinlock
	refs map[uint64]int // pfn -> mapping refcount
}

// NewIdentity creates identity+ (deferred=false) or identity- (deferred=
// true).
func NewIdentity(env *Env, deferred bool) *IdentityMapper {
	mode := identityStrict
	if deferred {
		mode = identityDeferred
	}
	return newIdentity(env, mode, 0)
}

// NewSelfInval creates the hardware-self-invalidation design of Basu et
// al. (paper §7, "Hardware solutions"): mappings self-destruct ttl cycles
// after the IOTLB caches them, so software NEVER issues invalidations —
// strict-protection cost without the invalidation queue, at the price of a
// small bounded vulnerability window (<= ttl) and hardware that "is not
// currently available".
func NewSelfInval(env *Env, ttl uint64) *IdentityMapper {
	if ttl == 0 {
		ttl = cycles.FromMicros(20)
	}
	env.IOMMU.TLB().SetTTL(ttl)
	return newIdentity(env, identitySelfInval, ttl)
}

func newIdentity(env *Env, mode identityMode, ttl uint64) *IdentityMapper {
	m := &IdentityMapper{env: env, mode: mode, ttl: ttl}
	for i := range m.shards {
		m.shards[i] = &identityShard{
			lock: env.NewLock(fmt.Sprintf("ident-%d", i)),
			refs: make(map[uint64]int),
		}
	}
	if mode == identityDeferred {
		cores := env.Cores
		if cores < 1 {
			cores = 1
		}
		for i := 0; i < cores; i++ {
			m.flushes = append(m.flushes, newFlushQueue(env, &m.stats, 250, 10))
		}
	}
	return m
}

// Name implements Mapper.
func (m *IdentityMapper) Name() string {
	switch m.mode {
	case identityDeferred:
		return "identity-"
	case identitySelfInval:
		return "selfinval"
	}
	return "identity+"
}

func (m *IdentityMapper) shard(pfn uint64) *identityShard {
	return m.shards[pfn%identityShards]
}

// Map implements Mapper: it bumps each page's refcount, installing the
// identity PTE on the first reference.
func (m *IdentityMapper) Map(p *sim.Proc, buf mem.Buf, dir Dir) (iommu.IOVA, error) {
	if buf.Size <= 0 {
		return 0, fmt.Errorf("identity: map of %d bytes", buf.Size)
	}
	if p.Observed() {
		p.SpanEnter("map")
		defer p.SpanExit()
	}
	pages := PagesOf(uint64(buf.Addr), buf.Size)
	p.ChargeSpan("ptes", cycles.TagPTMgmt, m.env.Costs.PTMap+m.env.Costs.PTPerPage*uint64(pages-1))
	first := buf.Addr.PFN()
	for pg := first; pg < first+uint64(pages); pg++ {
		s := m.shard(pg)
		s.lock.Lock(p)
		s.refs[pg]++
		if s.refs[pg] == 1 {
			base := iommu.IOVA(pg << mem.PageShift)
			if err := m.env.IOMMU.Map(m.env.Dev, base, mem.Phys(base), mem.PageSize, iommu.PermRW); err != nil {
				s.refs[pg]--
				s.lock.Unlock(p)
				return 0, err
			}
		}
		s.lock.Unlock(p)
	}
	m.stats.Maps++
	m.stats.BytesMapped += uint64(buf.Size)
	return iommu.IOVA(buf.Addr), nil
}

// Unmap implements Mapper: refcounts drop, zero-ref pages are unmapped, and
// the buffer's IOVA range is invalidated — synchronously for identity+,
// batched for identity-.
func (m *IdentityMapper) Unmap(p *sim.Proc, addr iommu.IOVA, size int, dir Dir) error {
	if p.Observed() {
		p.SpanEnter("unmap")
		defer p.SpanExit()
	}
	pages := PagesOf(uint64(addr), size)
	p.ChargeSpan("ptes", cycles.TagPTMgmt, m.env.Costs.PTUnmap+m.env.Costs.PTPerPage*uint64(pages-1))
	first := addr.Page()
	for pg := first; pg < first+uint64(pages); pg++ {
		s := m.shard(pg)
		s.lock.Lock(p)
		ref, ok := s.refs[pg]
		if !ok || ref == 0 {
			s.lock.Unlock(p)
			return fmt.Errorf("identity: unmap of unmapped page %#x", pg)
		}
		s.refs[pg]--
		if s.refs[pg] == 0 {
			delete(s.refs, pg)
			base := iommu.IOVA(pg << mem.PageShift)
			if err := m.env.IOMMU.Unmap(m.env.Dev, base, mem.PageSize); err != nil {
				s.lock.Unlock(p)
				return err
			}
		}
		s.lock.Unlock(p)
	}
	m.stats.Unmaps++
	switch m.mode {
	case identityDeferred:
		m.flushes[p.Core()%len(m.flushes)].add(p, flushEntry{})
	case identitySelfInval:
		// Nothing: stale IOTLB entries self-destruct within m.ttl.
	default:
		// Strict: this buffer's authorization ends NOW; invalidate the
		// range under the (contended) invalidation-queue lock and
		// busy-wait.
		if p.Observed() {
			p.SpanEnter("inval")
		}
		q := m.env.IOMMU.Queue
		q.Lock.Lock(p)
		done := q.SubmitPages(p, m.env.Dev, first, uint64(pages))
		q.WaitRecover(p, done)
		q.Lock.Unlock(p)
		if p.Observed() {
			p.SpanExit()
		}
	}
	return nil
}

// MapSG implements Mapper.
func (m *IdentityMapper) MapSG(p *sim.Proc, bufs []mem.Buf, dir Dir) ([]iommu.IOVA, error) {
	return mapSGLoop(m, p, bufs, dir)
}

// UnmapSG implements Mapper.
func (m *IdentityMapper) UnmapSG(p *sim.Proc, addrs []iommu.IOVA, sizes []int, dir Dir) error {
	return unmapSGLoop(m, p, addrs, sizes, dir)
}

// AllocCoherent implements Mapper.
func (m *IdentityMapper) AllocCoherent(p *sim.Proc, size int) (iommu.IOVA, mem.Buf, error) {
	buf, err := allocCoherentPages(m.env, p, size)
	if err != nil {
		return 0, mem.Buf{}, err
	}
	addr, err := m.Map(p, mem.Buf{Addr: buf.Addr, Size: (size + mem.PageSize - 1) / mem.PageSize * mem.PageSize}, Bidirectional)
	if err != nil {
		return 0, mem.Buf{}, err
	}
	m.stats.CoherentAllocs++
	m.stats.Maps-- // counted as coherent, not streaming
	m.coherent++
	return addr, buf, nil
}

// FreeCoherent implements Mapper.
func (m *IdentityMapper) FreeCoherent(p *sim.Proc, addr iommu.IOVA, buf mem.Buf) error {
	rounded := (buf.Size + mem.PageSize - 1) / mem.PageSize * mem.PageSize
	wasMode := m.mode
	m.mode = identityStrict // coherent teardown always invalidates strictly
	err := m.Unmap(p, addr, rounded, Bidirectional)
	m.mode = wasMode
	if err != nil {
		return err
	}
	m.stats.Unmaps--
	m.coherent--
	return freeCoherentPages(m.env, buf)
}

// Quiesce implements Mapper.
func (m *IdentityMapper) Quiesce(p *sim.Proc) {
	for _, f := range m.flushes {
		f.quiesce(p)
	}
}

// Stats implements Mapper.
func (m *IdentityMapper) Stats() Stats { return m.stats }

// Accounting implements Mapper. Identity designs have no IOVA allocator;
// live state is the set of physical pages with a non-zero mapping refcount
// (coherent pages included, so LiveMappings already covers them — but the
// coherent count is reported separately for the oracle's benefit).
func (m *IdentityMapper) Accounting() Accounting {
	a := Accounting{LiveCoherent: m.coherent}
	for _, s := range m.shards {
		a.LiveMappings += len(s.refs)
	}
	for _, f := range m.flushes {
		a.DeferredPending += len(f.entries)
	}
	return a
}

// SyncForCPU implements Mapper (cache maintenance only; zero copy).
func (m *IdentityMapper) SyncForCPU(p *sim.Proc, addr iommu.IOVA, size int, dir Dir) error {
	syncMaint(m.env, p)
	return nil
}

// SyncForDevice implements Mapper (cache maintenance only; zero copy).
func (m *IdentityMapper) SyncForDevice(p *sim.Proc, addr iommu.IOVA, size int, dir Dir) error {
	syncMaint(m.env, p)
	return nil
}
