package dmaapi

import (
	"fmt"

	"repro/internal/iommu"
	"repro/internal/mem"
	"repro/internal/sim"
)

// NoIOMMU is the unprotected baseline: the IOMMU is disabled (passthrough)
// and the device addresses physical memory directly. It is the performance
// upper bound and is "defenseless against DMA attacks" (paper §6).
type NoIOMMU struct {
	env      *Env
	coherent int // outstanding coherent allocations
	stats    Stats
}

// NewNoIOMMU creates the passthrough mapper and puts the device in
// passthrough mode.
func NewNoIOMMU(env *Env) *NoIOMMU {
	env.IOMMU.SetPassthrough(env.Dev, true)
	return &NoIOMMU{env: env}
}

// Name implements Mapper.
func (n *NoIOMMU) Name() string { return "no iommu" }

// Map implements Mapper: the IOVA is the physical address.
func (n *NoIOMMU) Map(p *sim.Proc, buf mem.Buf, dir Dir) (iommu.IOVA, error) {
	if buf.Size <= 0 {
		return 0, fmt.Errorf("noiommu: map of %d bytes", buf.Size)
	}
	n.stats.Maps++
	n.stats.BytesMapped += uint64(buf.Size)
	return iommu.IOVA(buf.Addr), nil
}

// Unmap implements Mapper (a no-op beyond accounting).
func (n *NoIOMMU) Unmap(p *sim.Proc, addr iommu.IOVA, size int, dir Dir) error {
	n.stats.Unmaps++
	return nil
}

// MapSG implements Mapper.
func (n *NoIOMMU) MapSG(p *sim.Proc, bufs []mem.Buf, dir Dir) ([]iommu.IOVA, error) {
	return mapSGLoop(n, p, bufs, dir)
}

// UnmapSG implements Mapper.
func (n *NoIOMMU) UnmapSG(p *sim.Proc, addrs []iommu.IOVA, sizes []int, dir Dir) error {
	return unmapSGLoop(n, p, addrs, sizes, dir)
}

// AllocCoherent implements Mapper.
func (n *NoIOMMU) AllocCoherent(p *sim.Proc, size int) (iommu.IOVA, mem.Buf, error) {
	buf, err := allocCoherentPages(n.env, p, size)
	if err != nil {
		return 0, mem.Buf{}, err
	}
	n.stats.CoherentAllocs++
	n.coherent++
	return iommu.IOVA(buf.Addr), buf, nil
}

// FreeCoherent implements Mapper.
func (n *NoIOMMU) FreeCoherent(p *sim.Proc, addr iommu.IOVA, buf mem.Buf) error {
	n.coherent--
	return freeCoherentPages(n.env, buf)
}

// Quiesce implements Mapper.
func (n *NoIOMMU) Quiesce(p *sim.Proc) {}

// Stats implements Mapper.
func (n *NoIOMMU) Stats() Stats { return n.stats }

// Accounting implements Mapper. Passthrough holds no per-mapping state;
// only coherent allocations are tracked.
func (n *NoIOMMU) Accounting() Accounting {
	return Accounting{LiveCoherent: n.coherent}
}

// SyncForCPU implements Mapper (cache maintenance only; zero copy).
func (n *NoIOMMU) SyncForCPU(p *sim.Proc, addr iommu.IOVA, size int, dir Dir) error {
	syncMaint(n.env, p)
	return nil
}

// SyncForDevice implements Mapper (cache maintenance only; zero copy).
func (n *NoIOMMU) SyncForDevice(p *sim.Proc, addr iommu.IOVA, size int, dir Dir) error {
	syncMaint(n.env, p)
	return nil
}
