package dmaapi

import (
	"fmt"

	"repro/internal/cycles"
	"repro/internal/iommu"
	"repro/internal/mem"
	"repro/internal/sim"
)

// SWIOTLB models Linux's software I/O TLB (bounce buffering) mode, which
// the paper's related work discusses (§7, "Copying-based protection"):
// DMA buffers are copied to/from a dedicated bounce-buffer arena, exactly
// like DMA shadowing — but "this mode makes no use of the hardware IOMMU
// and thus provides no protection from DMA attacks". Its goal is
// addressing-limited (e.g. 32-bit) devices, not security.
//
// It is included as a baseline to separate the two ingredients of the
// paper's design: copying (which SWIOTLB shares) and IOMMU-enforced
// containment to permanently mapped shadow buffers (which it lacks).
type SWIOTLB struct {
	env *Env
	// Per-core free lists of bounce slots, segregated by the same two
	// size classes the paper's pool uses. No IOMMU mapping exists; the
	// "IOVA" handed to the device is the bounce buffer's physical
	// address, and the device runs in passthrough.
	free     [][2][]mem.Buf
	live     map[iommu.IOVA]bounce
	coherent int // outstanding coherent allocations
	stats    Stats
}

type bounce struct {
	slot  mem.Buf // full-class bounce slot
	osBuf mem.Buf
	dir   Dir
	class int
}

var swiotlbClasses = [2]int{4096, 65536}

// NewSWIOTLB creates the bounce-buffer mapper and disables translation for
// the device (as on a system without an IOMMU).
func NewSWIOTLB(env *Env) *SWIOTLB {
	env.IOMMU.SetPassthrough(env.Dev, true)
	return &SWIOTLB{
		env:  env,
		free: make([][2][]mem.Buf, env.Cores),
		live: make(map[iommu.IOVA]bounce),
	}
}

// Name implements Mapper.
func (s *SWIOTLB) Name() string { return "swiotlb" }

func (s *SWIOTLB) classFor(size int) (int, error) {
	for i, c := range swiotlbClasses {
		if size <= c {
			return i, nil
		}
	}
	return 0, fmt.Errorf("swiotlb: buffer of %d bytes exceeds largest slot", size)
}

// Map implements Mapper: take a bounce slot, copy in if the device reads.
func (s *SWIOTLB) Map(p *sim.Proc, buf mem.Buf, dir Dir) (iommu.IOVA, error) {
	if buf.Size <= 0 {
		return 0, fmt.Errorf("swiotlb: map of %d bytes", buf.Size)
	}
	if p.Observed() {
		p.SpanEnter("map")
		defer p.SpanExit()
	}
	class, err := s.classFor(buf.Size)
	if err != nil {
		return 0, err
	}
	core := p.Core()
	p.ChargeSpan("pool-acquire", cycles.TagCopyMgmt, s.env.Costs.ShadowAcquire)
	var slot mem.Buf
	if stack := s.free[core][class]; len(stack) > 0 {
		slot = stack[len(stack)-1]
		s.free[core][class] = stack[:len(stack)-1]
	} else {
		p.ChargeSpan("pool-grow", cycles.TagCopyMgmt, s.env.Costs.ShadowGrow)
		pages := (swiotlbClasses[class] + mem.PageSize - 1) / mem.PageSize
		addr, err := s.env.Mem.AllocPages(s.env.DomainOfCore(core), pages)
		if err != nil {
			return 0, err
		}
		slot = mem.Buf{Addr: addr, Size: swiotlbClasses[class]}
	}
	if dir == ToDevice || dir == Bidirectional {
		if err := s.env.Mem.Copy(slot.Addr, buf.Addr, buf.Size); err != nil {
			return 0, err
		}
		if p.Observed() {
			p.SpanEnter("bounce")
		}
		p.Charge(cycles.TagMemcpy, s.env.Costs.Memcpy(buf.Size))
		if poll := s.env.Costs.Pollution(buf.Size); poll > 0 {
			p.Charge(cycles.TagOther, poll)
		}
		if p.Observed() {
			p.SpanExit()
		}
		s.stats.BytesCopied += uint64(buf.Size)
	}
	addr := iommu.IOVA(slot.Addr)
	s.live[addr] = bounce{slot: slot, osBuf: buf, dir: dir, class: class}
	s.stats.Maps++
	s.stats.BytesMapped += uint64(buf.Size)
	return addr, nil
}

// Unmap implements Mapper: copy out if the device wrote, release the slot.
func (s *SWIOTLB) Unmap(p *sim.Proc, addr iommu.IOVA, size int, dir Dir) error {
	b, ok := s.live[addr]
	if !ok {
		return fmt.Errorf("swiotlb: unmap of unknown %#x", uint64(addr))
	}
	if b.dir != dir || b.osBuf.Size != size {
		return fmt.Errorf("swiotlb: unmap mismatch")
	}
	delete(s.live, addr)
	if p.Observed() {
		p.SpanEnter("unmap")
		defer p.SpanExit()
	}
	p.ChargeSpan("pool-release", cycles.TagCopyMgmt, s.env.Costs.ShadowFind+s.env.Costs.ShadowRelease)
	if dir == FromDevice || dir == Bidirectional {
		if err := s.env.Mem.Copy(b.osBuf.Addr, b.slot.Addr, size); err != nil {
			return err
		}
		if p.Observed() {
			p.SpanEnter("bounce")
		}
		p.Charge(cycles.TagMemcpy, s.env.Costs.Memcpy(size))
		if poll := s.env.Costs.Pollution(size); poll > 0 {
			p.Charge(cycles.TagOther, poll)
		}
		if p.Observed() {
			p.SpanExit()
		}
		s.stats.BytesCopied += uint64(size)
	}
	s.free[p.Core()][b.class] = append(s.free[p.Core()][b.class], b.slot)
	s.stats.Unmaps++
	return nil
}

// MapSG implements Mapper.
func (s *SWIOTLB) MapSG(p *sim.Proc, bufs []mem.Buf, dir Dir) ([]iommu.IOVA, error) {
	return mapSGLoop(s, p, bufs, dir)
}

// UnmapSG implements Mapper.
func (s *SWIOTLB) UnmapSG(p *sim.Proc, addrs []iommu.IOVA, sizes []int, dir Dir) error {
	return unmapSGLoop(s, p, addrs, sizes, dir)
}

// AllocCoherent implements Mapper.
func (s *SWIOTLB) AllocCoherent(p *sim.Proc, size int) (iommu.IOVA, mem.Buf, error) {
	buf, err := allocCoherentPages(s.env, p, size)
	if err != nil {
		return 0, mem.Buf{}, err
	}
	s.stats.CoherentAllocs++
	s.coherent++
	return iommu.IOVA(buf.Addr), buf, nil
}

// FreeCoherent implements Mapper.
func (s *SWIOTLB) FreeCoherent(p *sim.Proc, addr iommu.IOVA, buf mem.Buf) error {
	s.coherent--
	return freeCoherentPages(s.env, buf)
}

// Quiesce implements Mapper.
func (s *SWIOTLB) Quiesce(p *sim.Proc) {}

// Stats implements Mapper.
func (s *SWIOTLB) Stats() Stats { return s.stats }

// Accounting implements Mapper. Bounce free lists are a permanent cache
// and deliberately excluded; live bounce slots count as mappings.
func (s *SWIOTLB) Accounting() Accounting {
	return Accounting{LiveMappings: len(s.live), LiveCoherent: s.coherent}
}

// SyncForCPU implements Mapper: copy the device's writes out of the bounce
// slot while the mapping stays live.
func (s *SWIOTLB) SyncForCPU(p *sim.Proc, addr iommu.IOVA, size int, dir Dir) error {
	b, ok := s.live[addr]
	if !ok {
		return fmt.Errorf("swiotlb: sync of unknown %#x", uint64(addr))
	}
	if size > b.osBuf.Size {
		return fmt.Errorf("swiotlb: sync size %d exceeds mapping %d", size, b.osBuf.Size)
	}
	if dir == FromDevice || dir == Bidirectional {
		if err := s.env.Mem.Copy(b.osBuf.Addr, b.slot.Addr, size); err != nil {
			return err
		}
		p.ChargeSpan("bounce", cycles.TagMemcpy, s.env.Costs.Memcpy(size))
		s.stats.BytesCopied += uint64(size)
	}
	return nil
}

// SyncForDevice implements Mapper: refresh the bounce slot from the OS
// buffer.
func (s *SWIOTLB) SyncForDevice(p *sim.Proc, addr iommu.IOVA, size int, dir Dir) error {
	b, ok := s.live[addr]
	if !ok {
		return fmt.Errorf("swiotlb: sync of unknown %#x", uint64(addr))
	}
	if size > b.osBuf.Size {
		return fmt.Errorf("swiotlb: sync size %d exceeds mapping %d", size, b.osBuf.Size)
	}
	if dir == ToDevice || dir == Bidirectional {
		if err := s.env.Mem.Copy(b.slot.Addr, b.osBuf.Addr, size); err != nil {
			return err
		}
		p.ChargeSpan("bounce", cycles.TagMemcpy, s.env.Costs.Memcpy(size))
		s.stats.BytesCopied += uint64(size)
	}
	return nil
}
