package dmaapi

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/iommu"
	"repro/internal/mem"
	"repro/internal/sim"
)

// Fault-injection error paths: with page allocations failing mid-flight,
// every mapper must unwind partial state completely — the Accounting()
// counters land back exactly where they started.

// eachMapper runs fn once per IOMMU-backed mapper (noiommu is excluded:
// it has no error paths worth injecting into).
func eachMapper(t *testing.T, fn func(t *testing.T, env *Env, m Mapper)) {
	makers := []struct {
		name string
		mk   func(*Env) Mapper
	}{
		{"strict", func(e *Env) Mapper { return NewLinux(e, false) }},
		{"defer", func(e *Env) Mapper { return NewLinux(e, true) }},
		{"identity+", func(e *Env) Mapper { return NewIdentity(e, false) }},
		{"identity-", func(e *Env) Mapper { return NewIdentity(e, true) }},
		{"swiotlb", func(e *Env) Mapper { return NewSWIOTLB(e) }},
		{"selfinval", func(e *Env) Mapper { return NewSelfInval(e, 0) }},
	}
	for _, mk := range makers {
		t.Run(mk.name, func(t *testing.T) {
			env := newEnv(1)
			fn(t, env, mk.mk(env))
		})
	}
}

func TestCoherentAllocFailureRestoresAccounting(t *testing.T) {
	eachMapper(t, func(t *testing.T, env *Env, m Mapper) {
		inProc(t, env, func(p *sim.Proc) {
			before := m.Accounting()
			env.Mem.AllocFail = func(domain, pages int) bool { return true }
			_, _, err := m.AllocCoherent(p, mem.PageSize)
			env.Mem.AllocFail = nil
			if err == nil {
				t.Fatal("coherent alloc should fail under injected allocation failure")
			}
			if !errors.Is(err, mem.ErrInjectedAllocFail) {
				t.Fatalf("error does not unwrap to the injected failure: %v", err)
			}
			if after := m.Accounting(); after != before {
				t.Fatalf("accounting changed across failed alloc: %+v -> %+v", before, after)
			}
			// The mapper must still work afterwards.
			addr, buf, err := m.AllocCoherent(p, mem.PageSize)
			if err != nil {
				t.Fatalf("alloc after failure: %v", err)
			}
			if err := m.FreeCoherent(p, addr, buf); err != nil {
				t.Fatalf("free after failure: %v", err)
			}
			if !m.Accounting().Zero() {
				t.Fatalf("accounting not zero after free: %+v", m.Accounting())
			}
		})
	})
}

func TestSGMidListFailureUnwindsAccounting(t *testing.T) {
	eachMapper(t, func(t *testing.T, env *Env, m Mapper) {
		good1 := allocBuf(t, env, 1200)
		bad := mem.Buf{Addr: good1.Addr, Size: 0} // invalid: rejected by every mapper
		good2 := allocBuf(t, env, 800)
		inProc(t, env, func(p *sim.Proc) {
			if _, err := m.MapSG(p, []mem.Buf{good1, bad, good2}, ToDevice); err == nil {
				t.Fatal("SG map should fail on the invalid middle element")
			}
			// Deferred mappers legitimately park the unwound element's
			// IOVA in the flush queue; after a quiesce nothing may remain.
			m.Quiesce(p)
			if after := m.Accounting(); !after.Zero() {
				t.Fatalf("mid-list failure leaked state: %+v", after)
			}
			// The same list without the poison element maps and unmaps.
			addrs, err := m.MapSG(p, []mem.Buf{good1, good2}, ToDevice)
			if err != nil {
				t.Fatal(err)
			}
			if err := m.UnmapSG(p, addrs, []int{good1.Size, good2.Size}, ToDevice); err != nil {
				t.Fatal(err)
			}
			m.Quiesce(p)
			if !m.Accounting().Zero() {
				t.Fatalf("accounting not zero after SG round trip: %+v", m.Accounting())
			}
		})
	})
}

func TestDoubleUnmapFailsAndPreservesAccounting(t *testing.T) {
	eachMapper(t, func(t *testing.T, env *Env, m Mapper) {
		buf := allocBuf(t, env, 1500)
		inProc(t, env, func(p *sim.Proc) {
			addr, err := m.Map(p, buf, ToDevice)
			if err != nil {
				t.Fatal(err)
			}
			if err := m.Unmap(p, addr, buf.Size, ToDevice); err != nil {
				t.Fatal(err)
			}
			m.Quiesce(p)
			base := m.Accounting()
			if !base.Zero() {
				t.Fatalf("accounting not zero after unmap: %+v", base)
			}
			if err := m.Unmap(p, addr, buf.Size, ToDevice); err == nil {
				t.Fatal("double unmap succeeded")
			}
			if got := m.Accounting(); got != base {
				t.Fatalf("double unmap perturbed accounting: %+v -> %+v", base, got)
			}
		})
	})
}

func TestUnmapOfNeverMappedIOVAFails(t *testing.T) {
	eachMapper(t, func(t *testing.T, env *Env, m Mapper) {
		inProc(t, env, func(p *sim.Proc) {
			before := m.Accounting()
			// An address nothing ever handed out: high in the IOVA space,
			// not a physical address of any allocation.
			bogus := iommu.IOVA(0x7ead_beef_d000)
			err := m.Unmap(p, bogus, mem.PageSize, ToDevice)
			if err == nil {
				t.Fatal("unmap of never-mapped IOVA succeeded")
			}
			if strings.Contains(err.Error(), "panic") {
				t.Fatalf("ungraceful failure: %v", err)
			}
			if got := m.Accounting(); got != before {
				t.Fatalf("failed unmap perturbed accounting: %+v -> %+v", before, got)
			}
		})
	})
}
