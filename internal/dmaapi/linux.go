package dmaapi

import (
	"fmt"

	"repro/internal/cycles"
	"repro/internal/iommu"
	"repro/internal/iova"
	"repro/internal/mem"
	"repro/internal/sim"
)

// LinuxMapper models the stock Linux intel-iommu DMA API: IOVAs come from a
// globally locked allocator tree, mappings are created per dma_map and
// destroyed per dma_unmap, and the IOTLB is invalidated either synchronously
// (strict) or in batches of 250 / every 10 ms (deferred) — paper §2.2.
type LinuxMapper struct {
	env      *Env
	deferred bool

	// SkipInval is a test-only bug switch: when set, strict unmaps skip
	// the synchronous IOTLB invalidation — deliberately reintroducing the
	// deferred-protection vulnerability window into the strict design.
	// The dmafuzz security oracle must catch this (see doc/FUZZING.md);
	// production code never sets it.
	SkipInval bool

	iovaLock *sim.Spinlock
	alloc    *iova.TreeAllocator
	flush    *flushQueue
	dirs     map[iommu.IOVA]Dir // live mappings, for contract checking
	coherent int                // outstanding coherent allocations

	stats Stats
}

// NewLinux creates the Linux-style mapper. deferred selects batched
// (insecure-window) invalidation; otherwise every unmap invalidates
// synchronously.
func NewLinux(env *Env, deferred bool) *LinuxMapper {
	m := &LinuxMapper{
		env:      env,
		deferred: deferred,
		iovaLock: env.NewLock("iova"),
		// Linux reserves the low 4 GiB-ish region; any large window works.
		alloc: iova.NewTree(1, 1<<(iommu.IOVABits-mem.PageShift-1)),
		dirs:  make(map[iommu.IOVA]Dir),
	}
	if deferred {
		m.flush = newFlushQueue(env, &m.stats, 250, 10)
		m.flush.freeCost = env.Costs.IOVAFree
	}
	return m
}

// Name implements Mapper.
func (m *LinuxMapper) Name() string {
	if m.deferred {
		return "defer"
	}
	return "strict"
}

// Map implements Mapper.
func (m *LinuxMapper) Map(p *sim.Proc, buf mem.Buf, dir Dir) (iommu.IOVA, error) {
	if buf.Size <= 0 {
		return 0, fmt.Errorf("linux: map of %d bytes", buf.Size)
	}
	if p.Observed() {
		p.SpanEnter("map")
		defer p.SpanExit()
	}
	pages := PagesOf(uint64(buf.Addr), buf.Size)
	m.iovaLock.Lock(p)
	p.ChargeSpan("iova-alloc", cycles.TagIOVA, m.env.Costs.IOVAAlloc)
	base, err := m.alloc.Alloc(p.Core(), pages)
	m.iovaLock.Unlock(p)
	if err != nil {
		return 0, err
	}
	p.ChargeSpan("ptes", cycles.TagPTMgmt, m.env.Costs.PTMap+m.env.Costs.PTPerPage*uint64(pages-1))
	if err := m.env.IOMMU.Map(m.env.Dev, base, buf.Addr.PageBase(), pages*mem.PageSize, dir.Perm()); err != nil {
		return 0, err
	}
	addr := base + iommu.IOVA(buf.Addr.Offset())
	m.dirs[addr] = dir
	m.stats.Maps++
	m.stats.BytesMapped += uint64(buf.Size)
	return addr, nil
}

// Unmap implements Mapper.
func (m *LinuxMapper) Unmap(p *sim.Proc, addr iommu.IOVA, size int, dir Dir) error {
	got, ok := m.dirs[addr]
	if !ok {
		return fmt.Errorf("linux: unmap of unmapped iova %#x", uint64(addr))
	}
	if got != dir {
		return fmt.Errorf("linux: unmap direction %v does not match map %v", dir, got)
	}
	delete(m.dirs, addr)
	if p.Observed() {
		p.SpanEnter("unmap")
		defer p.SpanExit()
	}
	pages := PagesOf(uint64(addr), size)
	base := addr - iommu.IOVA(addr.Offset())
	p.ChargeSpan("ptes", cycles.TagPTMgmt, m.env.Costs.PTUnmap+m.env.Costs.PTPerPage*uint64(pages-1))
	if err := m.env.IOMMU.Unmap(m.env.Dev, base, pages*mem.PageSize); err != nil {
		return err
	}
	m.stats.Unmaps++
	if m.deferred {
		core := p.Core()
		m.flush.add(p, flushEntry{free: func() {
			_ = m.alloc.Free(core, base, pages)
		}})
		return nil
	}
	// Strict: synchronous page-selective invalidation under the queue
	// lock, busy-waiting for hardware completion (intel-iommu behaviour).
	if !m.SkipInval {
		if p.Observed() {
			p.SpanEnter("inval")
		}
		q := m.env.IOMMU.Queue
		q.Lock.Lock(p)
		done := q.SubmitPages(p, m.env.Dev, base.Page(), uint64(pages))
		q.WaitRecover(p, done)
		q.Lock.Unlock(p)
		if p.Observed() {
			p.SpanExit()
		}
	}
	m.iovaLock.Lock(p)
	p.ChargeSpan("iova-free", cycles.TagIOVA, m.env.Costs.IOVAFree)
	err := m.alloc.Free(p.Core(), base, pages)
	m.iovaLock.Unlock(p)
	return err
}

// MapSG implements Mapper.
func (m *LinuxMapper) MapSG(p *sim.Proc, bufs []mem.Buf, dir Dir) ([]iommu.IOVA, error) {
	return mapSGLoop(m, p, bufs, dir)
}

// UnmapSG implements Mapper.
func (m *LinuxMapper) UnmapSG(p *sim.Proc, addrs []iommu.IOVA, sizes []int, dir Dir) error {
	return unmapSGLoop(m, p, addrs, sizes, dir)
}

// AllocCoherent implements Mapper.
func (m *LinuxMapper) AllocCoherent(p *sim.Proc, size int) (iommu.IOVA, mem.Buf, error) {
	buf, err := allocCoherentPages(m.env, p, size)
	if err != nil {
		return 0, mem.Buf{}, err
	}
	pages := (size + mem.PageSize - 1) / mem.PageSize
	m.iovaLock.Lock(p)
	p.ChargeSpan("iova-alloc", cycles.TagIOVA, m.env.Costs.IOVAAlloc)
	base, err := m.alloc.Alloc(p.Core(), pages)
	m.iovaLock.Unlock(p)
	if err != nil {
		_ = freeCoherentPages(m.env, buf)
		return 0, mem.Buf{}, err
	}
	p.ChargeSpan("ptes", cycles.TagPTMgmt, m.env.Costs.PTMap+m.env.Costs.PTPerPage*uint64(pages-1))
	if err := m.env.IOMMU.Map(m.env.Dev, base, buf.Addr, pages*mem.PageSize, iommu.PermRW); err != nil {
		return 0, mem.Buf{}, err
	}
	m.stats.CoherentAllocs++
	m.coherent++
	return base, buf, nil
}

// FreeCoherent implements Mapper: coherent buffers are always strictly
// invalidated (infrequent, not performance critical — paper §5.2).
func (m *LinuxMapper) FreeCoherent(p *sim.Proc, addr iommu.IOVA, buf mem.Buf) error {
	pages := (buf.Size + mem.PageSize - 1) / mem.PageSize
	p.ChargeSpan("ptes", cycles.TagPTMgmt, m.env.Costs.PTUnmap)
	if err := m.env.IOMMU.Unmap(m.env.Dev, addr, pages*mem.PageSize); err != nil {
		return err
	}
	if p.Observed() {
		p.SpanEnter("inval")
	}
	q := m.env.IOMMU.Queue
	q.Lock.Lock(p)
	done := q.SubmitPages(p, m.env.Dev, addr.Page(), uint64(pages))
	q.WaitRecover(p, done)
	q.Lock.Unlock(p)
	if p.Observed() {
		p.SpanExit()
	}
	m.iovaLock.Lock(p)
	err := m.alloc.Free(p.Core(), addr, pages)
	m.iovaLock.Unlock(p)
	if err != nil {
		return err
	}
	m.coherent--
	return freeCoherentPages(m.env, buf)
}

// Quiesce implements Mapper.
func (m *LinuxMapper) Quiesce(p *sim.Proc) {
	if m.flush != nil {
		m.flush.quiesce(p)
	}
}

// Stats implements Mapper.
func (m *LinuxMapper) Stats() Stats { return m.stats }

// Accounting implements Mapper.
func (m *LinuxMapper) Accounting() Accounting {
	a := Accounting{
		LiveMappings:  len(m.dirs),
		LiveCoherent:  m.coherent,
		IOVAPagesHeld: m.alloc.Outstanding(),
	}
	if m.flush != nil {
		a.DeferredPending = len(m.flush.entries)
	}
	return a
}

// SyncForCPU implements Mapper (cache maintenance only; zero copy).
func (m *LinuxMapper) SyncForCPU(p *sim.Proc, addr iommu.IOVA, size int, dir Dir) error {
	if _, ok := m.dirs[addr]; !ok {
		return fmt.Errorf("linux: sync of unmapped iova %#x", uint64(addr))
	}
	syncMaint(m.env, p)
	return nil
}

// SyncForDevice implements Mapper (cache maintenance only; zero copy).
func (m *LinuxMapper) SyncForDevice(p *sim.Proc, addr iommu.IOVA, size int, dir Dir) error {
	if _, ok := m.dirs[addr]; !ok {
		return fmt.Errorf("linux: sync of unmapped iova %#x", uint64(addr))
	}
	syncMaint(m.env, p)
	return nil
}
