package dmaapi

import (
	"testing"

	"repro/internal/iommu"
	"repro/internal/mem"
	"repro/internal/sim"
)

// Error-path coverage: the DMA API must fail cleanly, without leaking
// partial state.

func TestSGMapUnwindsOnMidListFailure(t *testing.T) {
	env := newEnv(1)
	m := NewSWIOTLB(env)
	ok1 := allocBuf(t, env, 1000)
	tooBig := mem.Buf{Addr: ok1.Addr, Size: 1 << 20} // exceeds swiotlb slots
	ok2 := allocBuf(t, env, 1000)
	inProc(t, env, func(p *sim.Proc) {
		if _, err := m.MapSG(p, []mem.Buf{ok1, tooBig, ok2}, ToDevice); err == nil {
			t.Fatal("SG map should fail on the oversize element")
		}
		// The successful first element must have been unwound: its slot
		// is free again and no live mapping remains.
		if len(m.live) != 0 {
			t.Errorf("SG unwind left %d live mappings", len(m.live))
		}
		// A fresh map must succeed and reuse the recycled slot.
		addr, err := m.Map(p, ok1, ToDevice)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Unmap(p, addr, ok1.Size, ToDevice); err != nil {
			t.Fatal(err)
		}
	})
}

func TestZeroSizeMapsFailEverywhere(t *testing.T) {
	makers := map[string]func(*Env) Mapper{
		"noiommu":   func(e *Env) Mapper { return NewNoIOMMU(e) },
		"strict":    func(e *Env) Mapper { return NewLinux(e, false) },
		"defer":     func(e *Env) Mapper { return NewLinux(e, true) },
		"identity+": func(e *Env) Mapper { return NewIdentity(e, false) },
		"identity-": func(e *Env) Mapper { return NewIdentity(e, true) },
		"swiotlb":   func(e *Env) Mapper { return NewSWIOTLB(e) },
		"selfinval": func(e *Env) Mapper { return NewSelfInval(e, 0) },
	}
	for name, mk := range makers {
		env := newEnv(1)
		m := mk(env)
		inProc(t, env, func(p *sim.Proc) {
			if _, err := m.Map(p, mem.Buf{}, ToDevice); err == nil {
				t.Errorf("%s: zero-size map should fail", name)
			}
			if _, _, err := m.AllocCoherent(p, 0); err == nil {
				t.Errorf("%s: zero-size coherent alloc should fail", name)
			}
		})
	}
}

func TestIdentityUnmapOfNeverMappedPageFails(t *testing.T) {
	env := newEnv(1)
	m := NewIdentity(env, false)
	inProc(t, env, func(p *sim.Proc) {
		if err := m.Unmap(p, iommu.IOVA(0x123000), 100, FromDevice); err == nil {
			t.Error("unmap of never-mapped page should fail")
		}
	})
}

func TestDeferredTimerRearmsAcrossBatches(t *testing.T) {
	// Regression: after a threshold flush cancels the timer, a later
	// trickle of unmaps must re-arm it (otherwise the window would stay
	// open indefinitely for low-rate devices).
	env := newEnv(1)
	m := NewLinux(env, true)
	bufs := make([]mem.Buf, 251)
	for i := range bufs {
		bufs[i] = allocBuf(t, env, 2048)
	}
	var lateAddr iommu.IOVA
	env.Eng.Spawn("t", 0, 0, func(p *sim.Proc) {
		// 250 unmaps: threshold flush fires and cancels the timer.
		for i := 0; i < 250; i++ {
			a, err := m.Map(p, bufs[i], FromDevice)
			if err != nil {
				t.Error(err)
				return
			}
			if err := m.Unmap(p, a, bufs[i].Size, FromDevice); err != nil {
				t.Error(err)
				return
			}
		}
		// One more unmap: a new timer must cover it.
		a, _ := m.Map(p, bufs[250], FromDevice)
		env.IOMMU.DMAWrite(env.Dev, a, []byte("pkt"))
		_ = m.Unmap(p, a, bufs[250].Size, FromDevice)
		lateAddr = a
	})
	env.Eng.Run(cyclesFromMillis(11))
	env.Eng.Stop()
	if m.Stats().DeferredFlushes < 2 {
		t.Fatalf("flushes = %d, want threshold flush + timer flush", m.Stats().DeferredFlushes)
	}
	if res := env.IOMMU.DMAWrite(env.Dev, lateAddr, []byte("late")); res.Fault == nil {
		t.Error("late unmap's window should be closed by the re-armed timer")
	}
}

func TestSyncOnZeroCopyMappersValidatesAddress(t *testing.T) {
	env := newEnv(1)
	m := NewLinux(env, false)
	buf := allocBuf(t, env, 1000)
	inProc(t, env, func(p *sim.Proc) {
		if err := m.SyncForCPU(p, 0xdead000, 100, FromDevice); err == nil {
			t.Error("sync of unmapped IOVA should fail")
		}
		addr, _ := m.Map(p, buf, FromDevice)
		if err := m.SyncForCPU(p, addr, buf.Size, FromDevice); err != nil {
			t.Errorf("sync of live mapping failed: %v", err)
		}
		if err := m.SyncForDevice(p, addr, buf.Size, FromDevice); err != nil {
			t.Errorf("sync-for-device failed: %v", err)
		}
		m.Unmap(p, addr, buf.Size, FromDevice)
	})
}

// cyclesFromMillis avoids importing cycles in this file's top-level scope
// twice (it is already imported elsewhere in the package tests).
func cyclesFromMillis(ms float64) uint64 { return uint64(ms * 2_400_000) }
