package dmaapi

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/cycles"
	"repro/internal/iommu"
	"repro/internal/mem"
	"repro/internal/sim"
)

func newEnv(cores int) *Env {
	eng := sim.NewEngine()
	m := mem.New(2)
	u := iommu.New(eng, m, cycles.Default())
	return &Env{Eng: eng, Mem: m, IOMMU: u, Costs: cycles.Default(), Dev: 1, Cores: cores}
}

// inProc runs fn as a single simulated core and drives the engine to
// completion (plus slack for async hardware effects).
func inProc(t *testing.T, env *Env, fn func(p *sim.Proc)) {
	t.Helper()
	env.Eng.Spawn("test", 0, 0, fn)
	env.Eng.Run(1 << 40)
	env.Eng.Stop()
}

func allocBuf(t *testing.T, env *Env, size int) mem.Buf {
	t.Helper()
	k := NewKmallocFor(env)
	b, err := k.Alloc(0, size)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// NewKmallocFor is a tiny helper so tests share one allocator per env.
var kmallocs = map[*Env]*mem.Kmalloc{}

func NewKmallocFor(env *Env) *mem.Kmalloc {
	k, ok := kmallocs[env]
	if !ok {
		k = mem.NewKmalloc(env.Mem, nil)
		kmallocs[env] = k
	}
	return k
}

func TestNoIOMMUPassthrough(t *testing.T) {
	env := newEnv(1)
	m := NewNoIOMMU(env)
	buf := allocBuf(t, env, 1500)
	inProc(t, env, func(p *sim.Proc) {
		addr, err := m.Map(p, buf, FromDevice)
		if err != nil {
			t.Fatal(err)
		}
		if addr != iommu.IOVA(buf.Addr) {
			t.Errorf("noiommu IOVA should equal phys")
		}
		res := env.IOMMU.DMAWrite(env.Dev, addr, []byte("data"))
		if res.Fault != nil {
			t.Fatal(res.Fault)
		}
		if err := m.Unmap(p, addr, buf.Size, FromDevice); err != nil {
			t.Fatal(err)
		}
		// No protection: the device can still write after unmap, and can
		// write anywhere allocated.
		if res := env.IOMMU.DMAWrite(env.Dev, addr, []byte("more")); res.Fault != nil {
			t.Error("noiommu should never fault")
		}
	})
}

func TestStrictProtectsImmediately(t *testing.T) {
	env := newEnv(1)
	m := NewLinux(env, false)
	buf := allocBuf(t, env, 1500)
	inProc(t, env, func(p *sim.Proc) {
		addr, err := m.Map(p, buf, FromDevice)
		if err != nil {
			t.Fatal(err)
		}
		if res := env.IOMMU.DMAWrite(env.Dev, addr, []byte("pkt")); res.Fault != nil {
			t.Fatal(res.Fault)
		}
		if err := m.Unmap(p, addr, buf.Size, FromDevice); err != nil {
			t.Fatal(err)
		}
		// Strict protection: by the time Unmap returns, the invalidation
		// has completed — no window.
		if res := env.IOMMU.DMAWrite(env.Dev, addr, []byte("evil")); res.Fault == nil {
			t.Error("device access after strict unmap must fault")
		}
	})
}

func TestStrictDirectionEnforced(t *testing.T) {
	env := newEnv(1)
	m := NewLinux(env, false)
	buf := allocBuf(t, env, 1500)
	inProc(t, env, func(p *sim.Proc) {
		addr, err := m.Map(p, buf, ToDevice) // device may only read
		if err != nil {
			t.Fatal(err)
		}
		if res := env.IOMMU.DMAWrite(env.Dev, addr, []byte("evil")); res.Fault == nil {
			t.Error("device write to a to-device mapping must fault")
		}
		if res := env.IOMMU.DMARead(env.Dev, addr, make([]byte, 16)); res.Fault != nil {
			t.Errorf("device read should work: %v", res.Fault)
		}
		if err := m.Unmap(p, addr, buf.Size, ToDevice); err != nil {
			t.Fatal(err)
		}
	})
}

func TestDeferredLeavesWindowThenCloses(t *testing.T) {
	env := newEnv(1)
	m := NewLinux(env, true)
	buf := allocBuf(t, env, 1500)
	inProc(t, env, func(p *sim.Proc) {
		addr, err := m.Map(p, buf, FromDevice)
		if err != nil {
			t.Fatal(err)
		}
		// Device uses the mapping (loads the IOTLB).
		if res := env.IOMMU.DMAWrite(env.Dev, addr, []byte("pkt")); res.Fault != nil {
			t.Fatal(res.Fault)
		}
		if err := m.Unmap(p, addr, buf.Size, FromDevice); err != nil {
			t.Fatal(err)
		}
		// THE WINDOW: unmap returned, but the device can still write.
		if res := env.IOMMU.DMAWrite(env.Dev, addr, []byte("evil")); res.Fault != nil {
			t.Errorf("deferred window should be open: %v", res.Fault)
		}
		m.Quiesce(p)
		p.Sleep(cycles.FromMicros(5)) // let the hw drain
		if res := env.IOMMU.DMAWrite(env.Dev, addr, []byte("evil")); res.Fault == nil {
			t.Error("window must close after flush")
		}
	})
	if m.Stats().DeferredFlushes == 0 {
		t.Error("flush should be recorded")
	}
}

func TestDeferredFlushAtThreshold(t *testing.T) {
	env := newEnv(1)
	m := NewLinux(env, true)
	bufs := make([]mem.Buf, 250)
	for i := range bufs {
		bufs[i] = allocBuf(t, env, 2048)
	}
	inProc(t, env, func(p *sim.Proc) {
		for _, b := range bufs {
			addr, err := m.Map(p, b, FromDevice)
			if err != nil {
				t.Fatal(err)
			}
			if err := m.Unmap(p, addr, b.Size, FromDevice); err != nil {
				t.Fatal(err)
			}
		}
	})
	s := m.Stats()
	if s.DeferredFlushes != 1 {
		t.Errorf("flushes = %d, want exactly 1 (threshold 250)", s.DeferredFlushes)
	}
	if s.DeferredQueuePeak != 250 {
		t.Errorf("queue peak = %d, want 250", s.DeferredQueuePeak)
	}
}

func TestDeferredTimerFlush(t *testing.T) {
	env := newEnv(1)
	m := NewLinux(env, true)
	buf := allocBuf(t, env, 1500)
	var addr iommu.IOVA
	env.Eng.Spawn("test", 0, 0, func(p *sim.Proc) {
		a, err := m.Map(p, buf, FromDevice)
		if err != nil {
			t.Fatal(err)
		}
		env.IOMMU.DMAWrite(env.Dev, a, []byte("pkt"))
		if err := m.Unmap(p, a, buf.Size, FromDevice); err != nil {
			t.Fatal(err)
		}
		addr = a
	})
	// Run past the 10 ms timer (plus hw latency).
	env.Eng.Run(cycles.FromMillis(11))
	env.Eng.Stop()
	if m.Stats().DeferredFlushes != 1 {
		t.Fatalf("timer flush did not run")
	}
	if res := env.IOMMU.DMAWrite(env.Dev, addr, []byte("late")); res.Fault == nil {
		t.Error("window must close after the 10 ms timer flush")
	}
}

func TestIdentityIOVAIsPhysAndRefcounts(t *testing.T) {
	env := newEnv(1)
	m := NewIdentity(env, false)
	k := NewKmallocFor(env)
	// Two buffers co-located on one slab page.
	a, _ := k.Alloc(0, 2048)
	b, _ := k.Alloc(0, 2048)
	if !mem.SamePage(a, b) {
		t.Fatal("expected same-page buffers")
	}
	inProc(t, env, func(p *sim.Proc) {
		va, err := m.Map(p, a, FromDevice)
		if err != nil {
			t.Fatal(err)
		}
		if va != iommu.IOVA(a.Addr) {
			t.Error("identity IOVA must equal phys")
		}
		vb, err := m.Map(p, b, FromDevice)
		if err != nil {
			t.Fatal(err)
		}
		// Unmapping a must keep the page mapped for b (refcount).
		if err := m.Unmap(p, va, a.Size, FromDevice); err != nil {
			t.Fatal(err)
		}
		if res := env.IOMMU.DMAWrite(env.Dev, vb, []byte("ok")); res.Fault != nil {
			t.Errorf("page must stay mapped while b lives: %v", res.Fault)
		}
		if err := m.Unmap(p, vb, b.Size, FromDevice); err != nil {
			t.Fatal(err)
		}
		if res := env.IOMMU.DMAWrite(env.Dev, vb, []byte("no")); res.Fault == nil {
			t.Error("page must be unmapped after last ref drops (strict)")
		}
		if err := m.Unmap(p, vb, b.Size, FromDevice); err == nil {
			t.Error("double unmap should fail")
		}
	})
}

func TestIdentityDeferredWindow(t *testing.T) {
	env := newEnv(1)
	m := NewIdentity(env, true)
	buf := allocBuf(t, env, 1500)
	inProc(t, env, func(p *sim.Proc) {
		addr, _ := m.Map(p, buf, FromDevice)
		env.IOMMU.DMAWrite(env.Dev, addr, []byte("pkt"))
		m.Unmap(p, addr, buf.Size, FromDevice)
		if res := env.IOMMU.DMAWrite(env.Dev, addr, []byte("evil")); res.Fault != nil {
			t.Error("identity- must have the deferred window")
		}
		m.Quiesce(p)
		p.Sleep(cycles.FromMicros(5))
		if res := env.IOMMU.DMAWrite(env.Dev, addr, []byte("evil")); res.Fault == nil {
			t.Error("identity- window must close after flush")
		}
	})
}

func TestSGMapUnmapRoundTrip(t *testing.T) {
	env := newEnv(1)
	m := NewLinux(env, false)
	bufs := []mem.Buf{allocBuf(t, env, 512), allocBuf(t, env, 2048), allocBuf(t, env, 100)}
	inProc(t, env, func(p *sim.Proc) {
		addrs, err := m.MapSG(p, bufs, ToDevice)
		if err != nil {
			t.Fatal(err)
		}
		if len(addrs) != 3 {
			t.Fatalf("got %d addrs", len(addrs))
		}
		for i, a := range addrs {
			if res := env.IOMMU.DMARead(env.Dev, a, make([]byte, bufs[i].Size)); res.Fault != nil {
				t.Errorf("SG element %d unreadable: %v", i, res.Fault)
			}
		}
		sizes := []int{bufs[0].Size, bufs[1].Size, bufs[2].Size}
		if err := m.UnmapSG(p, addrs, sizes, ToDevice); err != nil {
			t.Fatal(err)
		}
		if err := m.UnmapSG(p, addrs, []int{1}, ToDevice); err == nil {
			t.Error("length mismatch should fail")
		}
	})
}

func TestCoherentAllocIsPageGranularAndShared(t *testing.T) {
	for _, deferred := range []bool{false, true} {
		env := newEnv(1)
		m := NewLinux(env, deferred)
		inProc(t, env, func(p *sim.Proc) {
			addr, buf, err := m.AllocCoherent(p, 100)
			if err != nil {
				t.Fatal(err)
			}
			if buf.Addr.Offset() != 0 {
				t.Error("coherent buffer must be page aligned")
			}
			// Device and CPU can both access it.
			if res := env.IOMMU.DMAWrite(env.Dev, addr, []byte("ring")); res.Fault != nil {
				t.Fatal(res.Fault)
			}
			got := make([]byte, 4)
			if err := env.Mem.Read(buf.Addr, got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, []byte("ring")) {
				t.Error("CPU should see device write via coherent buffer")
			}
			if err := m.FreeCoherent(p, addr, buf); err != nil {
				t.Fatal(err)
			}
			if res := env.IOMMU.DMAWrite(env.Dev, addr, []byte("x")); res.Fault == nil {
				t.Error("coherent buffer must be protected after free")
			}
		})
	}
}

func TestUnmapContractViolations(t *testing.T) {
	env := newEnv(1)
	m := NewLinux(env, false)
	buf := allocBuf(t, env, 1500)
	inProc(t, env, func(p *sim.Proc) {
		addr, _ := m.Map(p, buf, FromDevice)
		if err := m.Unmap(p, addr, buf.Size, ToDevice); err == nil {
			t.Error("direction mismatch should fail")
		}
		if err := m.Unmap(p, addr+0x100000, buf.Size, FromDevice); err == nil {
			t.Error("unknown IOVA should fail")
		}
		if err := m.Unmap(p, addr, buf.Size, FromDevice); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Map(p, mem.Buf{}, FromDevice); err == nil {
			t.Error("empty map should fail")
		}
	})
}

func TestStrictChargesInvalidationAndDeferredDoesNot(t *testing.T) {
	run := func(deferred bool) uint64 {
		env := newEnv(1)
		m := NewLinux(env, deferred)
		buf := allocBuf(t, env, 1500)
		var inval uint64
		inProc(t, env, func(p *sim.Proc) {
			for i := 0; i < 100; i++ {
				addr, err := m.Map(p, buf, FromDevice)
				if err != nil {
					t.Fatal(err)
				}
				if err := m.Unmap(p, addr, buf.Size, FromDevice); err != nil {
					t.Fatal(err)
				}
			}
			inval = p.TaggedCycles(cycles.TagInvalidate)
		})
		return inval
	}
	strict, deferred := run(false), run(true)
	c := cycles.Default()
	if strict < 100*c.IOTLBInvalidateHW {
		t.Errorf("strict invalidation cycles = %d, want >= %d", strict, 100*c.IOTLBInvalidateHW)
	}
	if deferred > strict/10 {
		t.Errorf("deferred invalidation cycles = %d should be far below strict %d", deferred, strict)
	}
}

func TestPagesOfProperty(t *testing.T) {
	f := func(off uint16, size uint16) bool {
		addr := uint64(off) % mem.PageSize
		n := int(size)
		if n == 0 {
			return PagesOf(addr, n) == 0
		}
		want := 0
		first := addr >> mem.PageShift
		last := (addr + uint64(n) - 1) >> mem.PageShift
		want = int(last - first + 1)
		return PagesOf(addr, n) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if PagesOf(0, mem.PageSize) != 1 || PagesOf(1, mem.PageSize) != 2 {
		t.Error("boundary cases wrong")
	}
}

func TestDomainOfCore(t *testing.T) {
	env := newEnv(16)
	if env.DomainOfCore(0) != 0 || env.DomainOfCore(7) != 0 {
		t.Error("cores 0-7 should be domain 0")
	}
	if env.DomainOfCore(8) != 1 || env.DomainOfCore(15) != 1 {
		t.Error("cores 8-15 should be domain 1")
	}
	env1 := newEnv(1)
	if env1.DomainOfCore(0) != 0 {
		t.Error("single core should be domain 0")
	}
}

func TestStatsCounters(t *testing.T) {
	env := newEnv(1)
	m := NewLinux(env, false)
	buf := allocBuf(t, env, 1000)
	inProc(t, env, func(p *sim.Proc) {
		addr, _ := m.Map(p, buf, ToDevice)
		m.Unmap(p, addr, buf.Size, ToDevice)
	})
	s := m.Stats()
	if s.Maps != 1 || s.Unmaps != 1 || s.BytesMapped != 1000 {
		t.Errorf("stats: %+v", s)
	}
}
