package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cycles"
	"repro/internal/dmaapi"
	"repro/internal/iommu"
	"repro/internal/mem"
	"repro/internal/netstack"
	"repro/internal/nic"
	"repro/internal/sim"
	"repro/internal/ssd"
)

// Mixed-I/O extension study: a NIC and an NVMe-class SSD behind the SAME
// IOMMU. The invalidation queue (and its lock) is per-IOMMU, not
// per-device, so under strict zero-copy protection the storage traffic's
// invalidations contend with the NIC's — an interference channel that DMA
// shadowing eliminates entirely (it never invalidates).

// MixedResult reports one mixed run.
type MixedResult struct {
	System   string
	NetGbps  float64
	BlkIOPS  float64
	NetCPU   float64
	Errors   uint64
	InvWaits uint64 // contended acquisitions of the invalidation-queue lock
}

// RunMixed runs netCores of RX traffic (16 KiB messages) concurrently with
// blkCores of 4 KiB random I/O, both devices behind one IOMMU.
func RunMixed(system string, netCores, blkCores int, windowMs float64) (MixedResult, error) {
	costs := cycles.Default()
	eng := sim.NewEngine()
	m := mem.New(2)
	u := iommu.New(eng, m, costs)
	totalCores := netCores + blkCores

	newMapperFor := func(dev iommu.DeviceID, hint bool) (dmaapi.Mapper, *dmaapi.Env, error) {
		env := &dmaapi.Env{Eng: eng, Mem: m, IOMMU: u, Costs: costs, Dev: dev, Cores: totalCores}
		if system == SysCopy {
			var opts []core.Option
			if hint {
				opts = append(opts, core.WithHint(netstack.PacketLenHint))
			}
			mp, err := core.NewShadowMapper(env, opts...)
			return mp, env, err
		}
		mp, err := NewMapper(system, env)
		return mp, env, err
	}
	netMapper, netEnv, err := newMapperFor(1, true)
	if err != nil {
		return MixedResult{}, err
	}
	blkMapper, blkEnv, err := newMapperFor(2, false)
	if err != nil {
		return MixedResult{}, err
	}

	n := nic.New(eng, u, nic.Config{Dev: 1, Queues: netCores, RingSize: 256, MTU: 1500, TSO: true, Costs: costs})
	k := mem.NewKmalloc(m, nil)
	drv := netstack.NewDriver(netEnv, netMapper, n, k, 2048)
	dev := ssd.New(eng, u, ssd.Config{Dev: 2, Queues: blkCores, Costs: costs})
	bd := ssd.NewBlockDriver(blkEnv, blkMapper, dev, k)

	netStats := make([]netstack.RxStats, netCores)
	blkStats := make([]ssd.WorkloadStats, blkCores)
	var procs []*sim.Proc
	var runErr error
	for c := 0; c < netCores; c++ {
		c := c
		pr := eng.Spawn(fmt.Sprintf("rx%d", c), c, 0, func(p *sim.Proc) {
			if err := drv.SetupQueue(p, c); err != nil {
				runErr = err
				return
			}
			if err := drv.RunRxStream(p, c, 16384, &netStats[c]); err != nil {
				runErr = err
			}
		})
		procs = append(procs, pr)
		src := nic.NewSource(eng, n.Queue(c), costs, 16384, 1500, true)
		src.Start(0)
	}
	for c := 0; c < blkCores; c++ {
		c := c
		eng.Spawn(fmt.Sprintf("blk%d", c), netCores+c, 0, func(p *sim.Proc) {
			wcfg := ssd.WorkloadConfig{IOSize: 4096, ReadPct: 70, Depth: 32, Seed: 11}
			if err := bd.RunWorkload(p, c, wcfg, &blkStats[c]); err != nil {
				runErr = err
			}
		})
	}
	window := cycles.FromMillis(windowMs)
	eng.Run(window)
	var netBusy uint64
	for _, p := range procs {
		netBusy += p.Busy()
	}
	contended := u.Queue.Lock.Contended
	eng.Stop()
	if runErr != nil {
		return MixedResult{}, runErr
	}
	var netBytes uint64
	for _, s := range netStats {
		netBytes += s.Bytes
	}
	var blkOps, blkErrs uint64
	for _, s := range blkStats {
		blkOps += s.Reads + s.Writes
		blkErrs += s.Errors
	}
	return MixedResult{
		System:   system,
		NetGbps:  cycles.Gbps(netBytes, window),
		BlkIOPS:  cycles.PerSec(blkOps, window),
		NetCPU:   100 * float64(netBusy) / (float64(window) * float64(netCores)),
		Errors:   blkErrs,
		InvWaits: contended,
	}, nil
}

// MixedStudy is the extension table: network throughput with and without a
// busy SSD behind the same IOMMU.
func MixedStudy(opt Options) (*Table, error) {
	t := &Table{
		Name:  "mixed",
		Title: "Mixed-I/O study (extension): NIC + SSD behind one IOMMU (4+4 cores)",
		Columns: []string{"system", "net-only Gb/s", "net+ssd Gb/s", "net loss%",
			"ssd KIOPS", "invq contention"},
	}
	t.SetWinner("net_both_gbps", false)
	systems := opt.systems()
	results := make([]MixedResult, len(systems)*2) // [2i]=alone, [2i+1]=both
	err := opt.farm().Map(len(results), func(i int) error {
		sys := systems[i/2]
		blkCores := 0
		if i%2 == 1 {
			blkCores = 4
		}
		r, err := RunMixed(sys, 4, blkCores, opt.window())
		if err != nil {
			return fmt.Errorf("%s (4+%d cores): %w", sys, blkCores, err)
		}
		results[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, sys := range systems {
		alone, both := results[2*i], results[2*i+1]
		loss := 0.0
		if alone.NetGbps > 0 {
			loss = 100 * (1 - both.NetGbps/alone.NetGbps)
		}
		t.AddRow(sys, f2(alone.NetGbps), f2(both.NetGbps), f1(loss),
			f1(both.BlkIOPS/1e3), fmt.Sprintf("%d", both.InvWaits))
		t.Point(sys, "4+4 cores", map[string]float64{
			"net_alone_gbps": alone.NetGbps,
			"net_both_gbps":  both.NetGbps,
			"loss_pct":       loss,
			"blk_kiops":      both.BlkIOPS / 1e3,
			"invq_contended": float64(both.InvWaits),
		})
	}
	return t, nil
}
