// Package bench assembles complete simulated machines (memory, IOMMU, NIC,
// driver, workload procs) and runs the paper's evaluation workloads,
// producing throughput / CPU / latency / per-packet-breakdown results for
// every protection strategy. The experiment functions regenerate each
// figure of the paper (see DESIGN.md §4 for the index).
package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cycles"
	"repro/internal/dmaapi"
	"repro/internal/iommu"
	"repro/internal/mem"
	"repro/internal/netstack"
	"repro/internal/nic"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// System names, matching the paper's figure legends.
const (
	SysNoIOMMU        = "no iommu"
	SysCopy           = "copy"
	SysIdentityDefer  = "identity-"
	SysIdentityStrict = "identity+"
	SysLinuxStrict    = "strict"
	SysLinuxDefer     = "defer"
)

// FigureSystems is the four-system comparison used by Figures 3–10.
var FigureSystems = []string{SysNoIOMMU, SysCopy, SysIdentityDefer, SysIdentityStrict}

// AllSystems adds the stock-Linux baselines (Figure 1 / Table 1).
var AllSystems = []string{SysNoIOMMU, SysCopy, SysIdentityDefer, SysIdentityStrict, SysLinuxDefer, SysLinuxStrict}

// Related-work systems beyond the paper's own evaluation (§7): Linux's
// SWIOTLB bounce buffering (copying without protection) and the Basu et
// al. self-invalidating IOMMU hardware proposal.
const (
	SysSWIOTLB   = "swiotlb"
	SysSelfInval = "selfinval"
)

// ExtendedSystems is AllSystems plus the related-work designs.
var ExtendedSystems = append(append([]string{}, AllSystems...), SysSWIOTLB, SysSelfInval)

// IsSystem reports whether name is a known protection backend.
func IsSystem(name string) bool {
	for _, s := range ExtendedSystems {
		if s == name {
			return true
		}
	}
	return false
}

// Direction selects the workload.
type Direction int

// Workload directions.
const (
	RX Direction = iota // netperf TCP_STREAM, evaluated machine receives
	TX                  // netperf TCP_STREAM, evaluated machine transmits
	RR                  // netperf TCP_RR request/response
)

func (d Direction) String() string {
	switch d {
	case RX:
		return "RX"
	case TX:
		return "TX"
	case RR:
		return "RR"
	}
	return "?"
}

// Config describes one benchmark run.
type Config struct {
	System    string
	Direction Direction
	Cores     int
	MsgSize   int
	WindowMs  float64 // simulated duration (default 20 ms)
	RingSize  int     // default 256
	TSO       bool    // default true (set via DefaultConfig)
	MTU       int     // default 1500
	Costs     *cycles.Costs
	// NoHint disables the copy strategy's packet-length copying hint
	// (required for non-network workloads, e.g. storage).
	NoHint bool
	// RemoteBufs places DMA buffers on the far NUMA domain (ablation of
	// the shadow pool's NUMA stickiness).
	RemoteBufs bool
	// Obs, when non-nil, installs the observability layer on the machine's
	// engine: spans feed its profiler (Result.Profile), counters are
	// published into its registry after the run, and — if it records a
	// timeline — the IOMMU gets an event ring for trace export. Must not
	// be shared across concurrently-running machines.
	Obs *obs.Observer
}

// DefaultConfig fills a Config with the paper's methodology defaults.
func DefaultConfig(system string, dir Direction, cores, msgSize int) Config {
	return Config{
		System:    system,
		Direction: dir,
		Cores:     cores,
		MsgSize:   msgSize,
		WindowMs:  20,
		RingSize:  256,
		TSO:       true,
		MTU:       1500,
		Costs:     cycles.Default(),
	}
}

// Result is the outcome of one run.
type Result struct {
	Config        Config
	Gbps          float64
	CPUPct        float64            // average utilization across the cores used
	PerOp         map[string]float64 // per-DMA-op component times, microseconds
	Ops           uint64             // RX: frames; TX: skbs; RR: transactions
	Messages      uint64
	LatencyUs     float64 // RR only: mean round trip
	LatencyP99Us  float64 // RR only: 99th percentile round trip
	Transactions  uint64  // RR only
	MapperStats   dmaapi.Stats
	PoolBytes     uint64 // copy only: shadow pool footprint
	RxDrops       uint64
	Faults        uint64
	IOTLBHitRate  float64
	Invalidations uint64
	// Profile is the cycle-attribution snapshot (nil unless Config.Obs was
	// set); TotalBusy is the workload procs' summed busy cycles.
	Profile *obs.Profile
}

// NewMapper instantiates a protection strategy by name.
func NewMapper(name string, env *dmaapi.Env) (dmaapi.Mapper, error) {
	switch name {
	case SysNoIOMMU:
		return dmaapi.NewNoIOMMU(env), nil
	case SysCopy:
		return core.NewShadowMapper(env, core.WithHint(netstack.PacketLenHint))
	case SysIdentityDefer:
		return dmaapi.NewIdentity(env, true), nil
	case SysIdentityStrict:
		return dmaapi.NewIdentity(env, false), nil
	case SysLinuxStrict:
		return dmaapi.NewLinux(env, false), nil
	case SysLinuxDefer:
		return dmaapi.NewLinux(env, true), nil
	case SysSWIOTLB:
		return dmaapi.NewSWIOTLB(env), nil
	case SysSelfInval:
		return dmaapi.NewSelfInval(env, 0), nil
	}
	return nil, fmt.Errorf("bench: unknown system %q", name)
}

// Machine bundles one assembled evaluation machine.
type Machine struct {
	Eng    *sim.Engine
	Mem    *mem.Memory
	IOMMU  *iommu.IOMMU
	Env    *dmaapi.Env
	Mapper dmaapi.Mapper
	NIC    *nic.NIC
	Kmal   *mem.Kmalloc
	Driver *netstack.Driver
	Obs    *obs.Observer // nil unless Config.Obs was set
}

// NewMachine assembles the evaluated machine for a config.
func NewMachine(cfg Config) (*Machine, error) {
	if cfg.Costs == nil {
		cfg.Costs = cycles.Default()
	}
	eng := sim.NewEngine()
	m := mem.New(2) // dual socket, as in the paper
	u := iommu.New(eng, m, cfg.Costs)
	if cfg.Obs != nil {
		// Must precede every Spawn: procs copy the span sink at creation.
		eng.SetObserver(cfg.Obs)
		if cfg.Obs.Rec != nil {
			u.Trace = trace.New(1 << 16)
			cfg.Obs.Ring = u.Trace
		}
	}
	env := &dmaapi.Env{Eng: eng, Mem: m, IOMMU: u, Costs: cfg.Costs, Dev: 1, Cores: cfg.Cores}
	var mapper dmaapi.Mapper
	var err error
	if cfg.NoHint && cfg.System == SysCopy {
		mapper, err = core.NewShadowMapper(env)
	} else {
		mapper, err = NewMapper(cfg.System, env)
	}
	if err != nil {
		return nil, err
	}
	n := nic.New(eng, u, nic.Config{
		Dev:      1,
		Queues:   cfg.Cores,
		RingSize: cfg.RingSize,
		MTU:      cfg.MTU,
		TSO:      cfg.TSO,
		Costs:    cfg.Costs,
	})
	k := mem.NewKmalloc(m, nil)
	drv := netstack.NewDriver(env, mapper, n, k, 2048)
	drv.RemoteBufs = cfg.RemoteBufs
	return &Machine{Eng: eng, Mem: m, IOMMU: u, Env: env, Mapper: mapper, NIC: n, Kmal: k, Driver: drv, Obs: cfg.Obs}, nil
}

// Run executes one benchmark configuration.
func Run(cfg Config) (Result, error) {
	if cfg.WindowMs <= 0 {
		cfg.WindowMs = 20
	}
	if cfg.RingSize == 0 {
		cfg.RingSize = 256
	}
	if cfg.MTU == 0 {
		cfg.MTU = 1500
	}
	if cfg.Costs == nil {
		cfg.Costs = cycles.Default()
	}
	mach, err := NewMachine(cfg)
	if err != nil {
		return Result{}, err
	}
	switch cfg.Direction {
	case RX:
		return runRx(mach, cfg)
	case TX:
		return runTx(mach, cfg)
	case RR:
		return runRR(mach, cfg)
	}
	return Result{}, fmt.Errorf("bench: bad direction %v", cfg.Direction)
}

func runRx(mach *Machine, cfg Config) (Result, error) {
	stats := make([]netstack.RxStats, cfg.Cores)
	var setupErr, runErr error
	var procs []*sim.Proc
	for c := 0; c < cfg.Cores; c++ {
		c := c
		pr := mach.Eng.Spawn(fmt.Sprintf("rx%d", c), c, 0, func(p *sim.Proc) {
			if err := mach.Driver.SetupQueue(p, c); err != nil {
				setupErr = err
				return
			}
			if err := mach.Driver.RunRxStream(p, c, cfg.MsgSize, &stats[c]); err != nil {
				runErr = err
			}
		})
		procs = append(procs, pr)
		src := nic.NewSource(mach.Eng, mach.NIC.Queue(c), cfg.Costs, cfg.MsgSize, cfg.MTU, true)
		src.Start(0)
	}
	window := cycles.FromMillis(cfg.WindowMs)
	mach.Eng.Run(window)
	res := collect(mach, cfg, procs, window)
	mach.Eng.Stop()
	if setupErr != nil {
		return res, setupErr
	}
	if runErr != nil {
		return res, runErr
	}
	var bytes, frames, msgs uint64
	for _, s := range stats {
		bytes += s.Bytes
		frames += s.Frames
		msgs += s.Messages
	}
	res.Gbps = cycles.Gbps(bytes, window)
	res.Ops = frames
	res.Messages = msgs
	finishPerOp(&res)
	return res, nil
}

func runTx(mach *Machine, cfg Config) (Result, error) {
	stats := make([]netstack.TxStats, cfg.Cores)
	var runErr error
	var procs []*sim.Proc
	for c := 0; c < cfg.Cores; c++ {
		c := c
		pr := mach.Eng.Spawn(fmt.Sprintf("tx%d", c), c, 0, func(p *sim.Proc) {
			if err := mach.Driver.RunTxStream(p, c, cfg.MsgSize, &stats[c]); err != nil {
				runErr = err
			}
		})
		procs = append(procs, pr)
	}
	window := cycles.FromMillis(cfg.WindowMs)
	mach.Eng.Run(window)
	res := collect(mach, cfg, procs, window)
	mach.Eng.Stop()
	if runErr != nil {
		return res, runErr
	}
	var bytes, skbs, msgs uint64
	for _, s := range stats {
		bytes += s.Bytes
		skbs += s.Skbs
		msgs += s.Messages
	}
	res.Gbps = cycles.Gbps(bytes, window)
	res.Ops = skbs
	res.Messages = msgs
	finishPerOp(&res)
	return res, nil
}

func runRR(mach *Machine, cfg Config) (Result, error) {
	var st netstack.RRServerStats
	var setupErr, runErr error
	pr := mach.Eng.Spawn("rr", 0, 0, func(p *sim.Proc) {
		if err := mach.Driver.SetupQueue(p, 0); err != nil {
			setupErr = err
			return
		}
		if err := mach.Driver.RunRRServer(p, 0, cfg.MsgSize, &st); err != nil {
			runErr = err
		}
	})
	client := netstack.NewRRClient(mach.Eng, mach.NIC, 0, cfg.Costs, cfg.MsgSize)
	client.Start(cycles.FromMicros(100)) // after queue setup settles
	window := cycles.FromMillis(cfg.WindowMs)
	mach.Eng.Run(window)
	res := collect(mach, cfg, []*sim.Proc{pr}, window)
	mach.Eng.Stop()
	if setupErr != nil {
		return res, setupErr
	}
	if runErr != nil {
		return res, runErr
	}
	res.LatencyUs = cycles.Micros(client.MeanLatency())
	res.LatencyP99Us = stats.SummarizeUint64(client.Samples, cycles.Hz/1e6).P99
	res.Transactions = client.Transactions
	res.Ops = client.Transactions
	res.Messages = st.Rx.Messages
	res.Gbps = cycles.Gbps(st.Rx.Bytes+st.Tx.Bytes, window)
	finishPerOp(&res)
	return res, nil
}

// collect gathers CPU and component accounting from the worker procs.
func collect(mach *Machine, cfg Config, procs []*sim.Proc, window uint64) Result {
	res := Result{
		Config: cfg,
		PerOp:  make(map[string]float64),
	}
	var busy uint64
	for _, p := range procs {
		busy += p.Busy()
		for tag, c := range p.Tagged() {
			res.PerOp[tag] += cycles.Micros(c) // temporarily total us; divided later
		}
	}
	res.CPUPct = 100 * float64(busy) / (float64(window) * float64(len(procs)))
	if res.CPUPct > 100 {
		res.CPUPct = 100
	}
	res.MapperStats = mach.Mapper.Stats()
	res.PoolBytes = res.MapperStats.ShadowPoolBytes
	res.RxDrops = mach.NIC.RxDrops
	res.Faults = mach.IOMMU.FaultCount
	res.IOTLBHitRate = mach.IOMMU.TLB().HitRate()
	res.Invalidations = mach.IOMMU.Queue.Submitted
	if o := mach.Obs; o != nil {
		pr := o.Prof.Snapshot()
		pr.TotalBusy = busy
		res.Profile = &pr
		if o.Reg != nil {
			obs.PublishEngine(o.Reg, mach.Eng)
			obs.PublishIOMMU(o.Reg, mach.IOMMU)
			obs.PublishNIC(o.Reg, mach.NIC)
			obs.PublishMapper(o.Reg, mach.Mapper.Name(), res.MapperStats)
			if sm, ok := mach.Mapper.(*core.ShadowMapper); ok {
				obs.PublishPool(o.Reg, sm.Pool().Stats())
			}
		}
	}
	return res
}

// finishPerOp converts the accumulated per-tag totals into per-operation
// microseconds, folding the IOVA-allocator time into "other" as the
// paper's breakdowns do.
func finishPerOp(res *Result) {
	if res.Ops == 0 {
		res.PerOp = map[string]float64{}
		return
	}
	if v, ok := res.PerOp[cycles.TagIOVA]; ok {
		res.PerOp[cycles.TagOther] += v
		delete(res.PerOp, cycles.TagIOVA)
	}
	for k := range res.PerOp {
		res.PerOp[k] /= float64(res.Ops)
	}
}
