package bench

import (
	"fmt"

	"repro/internal/cycles"
	"repro/internal/kv"
	"repro/internal/obs"
	"repro/internal/sim"
)

// KVResult is the outcome of one memcached run.
type KVResult struct {
	System         string
	TransactionsPS float64
	CPUPct         float64
	GetPct         float64
	Errors         uint64
}

// RunMemcached reproduces one bar of Figure 11: 16 memcached instances
// (one per core) under memslap load (64 B keys, 1 KiB values, 90%/10%
// GET/SET), reporting aggregated transaction throughput and CPU.
func RunMemcached(system string, cores int, windowMs float64) (KVResult, error) {
	r, _, err := runMemcached(system, cores, windowMs, nil)
	return r, err
}

// runMemcached is RunMemcached with an optional observer installed on the
// machine; when o is non-nil the returned profile carries the servers'
// cycle attribution (TotalBusy = summed server-proc busy cycles).
func runMemcached(system string, cores int, windowMs float64, o *obs.Observer) (KVResult, *obs.Profile, error) {
	cfg := DefaultConfig(system, RX, cores, 1024)
	cfg.WindowMs = windowMs
	cfg.Obs = o
	mach, err := NewMachine(cfg)
	if err != nil {
		return KVResult{}, nil, err
	}
	scfg := kv.DefaultServerConfig()
	ccfg := kv.DefaultClientConfig()
	stores := make([]*kv.Store, cores)
	stats := make([]kv.ServerStats, cores)
	clients := make([]*kv.Client, cores)
	var procs []*sim.Proc
	var runErr error
	for c := 0; c < cores; c++ {
		c := c
		stores[c] = kv.NewStore(mach.Mem, mach.Kmal)
		if err := kv.Prepopulate(stores[c], mach.Env.DomainOfCore(c), scfg); err != nil {
			return KVResult{}, nil, err
		}
		pr := mach.Eng.Spawn(fmt.Sprintf("memcached%d", c), c, 0, func(p *sim.Proc) {
			if err := kv.RunServer(p, mach.Driver, stores[c], c, scfg, &stats[c]); err != nil {
				runErr = err
			}
		})
		procs = append(procs, pr)
		clients[c] = kv.NewClient(mach.Eng, mach.NIC, c, cfg.Costs, ccfg)
		clients[c].Start(cycles.FromMicros(200))
	}
	window := cycles.FromMillis(windowMs)
	mach.Eng.Run(window)
	var busy uint64
	for _, p := range procs {
		busy += p.Busy()
	}
	var prof *obs.Profile
	if o != nil {
		pr := o.Prof.Snapshot()
		pr.TotalBusy = busy
		prof = &pr
	}
	mach.Eng.Stop()
	if runErr != nil {
		return KVResult{}, nil, runErr
	}
	var tx, gets, sets, errors uint64
	for c := 0; c < cores; c++ {
		tx += clients[c].Transactions
		gets += clients[c].Gets
		sets += clients[c].Sets
		errors += stats[c].Errors
	}
	res := KVResult{
		System:         system,
		TransactionsPS: cycles.PerSec(tx, window),
		CPUPct:         100 * float64(busy) / (float64(window) * float64(cores)),
		Errors:         errors,
	}
	if gets+sets > 0 {
		res.GetPct = 100 * float64(gets) / float64(gets+sets)
	}
	return res, prof, nil
}

// Fig11 reproduces Figure 11 across the four systems.
func Fig11(opt Options) (*Table, error) {
	t := &Table{
		Name:    "fig11",
		Title:   "Figure 11: memcached aggregated throughput (16 instances, memslap 90/10 GET/SET)",
		Columns: []string{"system", "Mtx/s", "cpu%"},
	}
	t.SetWinner("mtx_per_sec", false)
	systems := opt.systems()
	results := make([]KVResult, len(systems))
	err := opt.farm().Map(len(systems), func(i int) error {
		r, err := RunMemcached(systems[i], 16, opt.window())
		if err != nil {
			return fmt.Errorf("%s: %w", systems[i], err)
		}
		results[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, sys := range systems {
		r := results[i]
		t.AddRow(sys, fmt.Sprintf("%.2f", r.TransactionsPS/1e6), f1(r.CPUPct))
		t.Point(sys, "16 cores", map[string]float64{
			"mtx_per_sec": r.TransactionsPS / 1e6,
			"cpu_pct":     r.CPUPct,
		})
	}
	return t, nil
}
