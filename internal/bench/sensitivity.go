package bench

import (
	"fmt"

	"repro/internal/cycles"
)

// Sensitivity analysis: the reproduction's conclusions come from a cost
// model fit to the paper's published microcosts, so we verify that the
// paper's qualitative claims are robust to calibration error — each key
// constant is perturbed by ±25% and the claims re-evaluated. A claim that
// flips under a small perturbation would mean the reproduction's shape
// depends on a lucky constant rather than on the design.

// Claim is a machine-checkable qualitative statement from the paper.
type Claim struct {
	Name string
	// Holds evaluates the claim from the four-system measurements at
	// single-core and 16-core RX.
	Holds func(single, multi map[string]Result) bool
}

// PaperClaims are the headline statements the sensitivity analysis guards.
var PaperClaims = []Claim{
	{
		Name: "copy beats identity- (1 core)",
		Holds: func(s, _ map[string]Result) bool {
			return s[SysCopy].Gbps >= s[SysIdentityDefer].Gbps*0.98
		},
	},
	{
		Name: "copy >= 0.65x no-iommu (1 core)",
		Holds: func(s, _ map[string]Result) bool {
			return s[SysCopy].Gbps >= s[SysNoIOMMU].Gbps*0.65
		},
	},
	{
		Name: "copy >= 1.5x identity+ (1 core)",
		Holds: func(s, _ map[string]Result) bool {
			return s[SysCopy].Gbps >= s[SysIdentityStrict].Gbps*1.5
		},
	},
	{
		Name: "identity+ collapses (16 cores)",
		Holds: func(_, m map[string]Result) bool {
			return m[SysIdentityStrict].Gbps <= m[SysCopy].Gbps*0.5
		},
	},
	{
		Name: "copy holds wire rate (16 cores)",
		Holds: func(_, m map[string]Result) bool {
			return m[SysCopy].Gbps >= m[SysNoIOMMU].Gbps*0.95
		},
	},
}

// Perturbation scales one cost-model constant.
type Perturbation struct {
	Name  string
	Apply func(c *cycles.Costs, scale float64)
}

// Perturbations are the constants most likely to carry calibration error.
var Perturbations = []Perturbation{
	{"iotlb invalidation", func(c *cycles.Costs, s float64) {
		c.IOTLBInvalidateHW = uint64(float64(c.IOTLBInvalidateHW) * s)
	}},
	{"memcpy per byte", func(c *cycles.Costs, s float64) {
		c.MemcpyPerByte = uint64(float64(c.MemcpyPerByte) * s)
	}},
	{"lock contention", func(c *cycles.Costs, s float64) {
		c.LockHandoffPerWaiter = uint64(float64(c.LockHandoffPerWaiter) * s)
		c.LockHandoffBase = uint64(float64(c.LockHandoffBase) * s)
	}},
	{"page table mgmt", func(c *cycles.Costs, s float64) {
		c.PTMap = uint64(float64(c.PTMap) * s)
		c.PTUnmap = uint64(float64(c.PTUnmap) * s)
	}},
	{"baseline pkt cost", func(c *cycles.Costs, s float64) {
		c.PktOther = uint64(float64(c.PktOther) * s)
		c.PktPerByte = uint64(float64(c.PktPerByte) * s)
	}},
}

// SensitivityScales are the perturbation factors applied to each constant.
var SensitivityScales = []float64{0.75, 1.25}

// claimPointCores are the core counts each claim set is measured at.
var claimPointCores = []int{1, 16}

// Sensitivity evaluates every paper claim under every perturbation,
// returning the robustness matrix and the number of claim violations.
// The full (perturbation x scale x system x cores) grid — 88 machines —
// is flattened into individual farm points and the matrix reassembled in
// canonical row order, so this (previously fully serial, and the slowest
// section of the suite) scales with the worker count.
func Sensitivity(opt Options) (*Table, int, error) {
	type rowSpec struct {
		name  string
		scale float64
		costs *cycles.Costs
	}
	rows := []rowSpec{{"(baseline)", 1.0, cycles.Default()}}
	for _, pert := range Perturbations {
		for _, scale := range SensitivityScales {
			costs := cycles.Default()
			pert.Apply(costs, scale)
			rows = append(rows, rowSpec{pert.Name, scale, costs})
		}
	}

	perRow := len(FigureSystems) * len(claimPointCores)
	results := make([]Result, len(rows)*perRow)
	err := opt.farm().Map(len(results), func(i int) error {
		row := rows[i/perRow]
		sys := FigureSystems[(i%perRow)/len(claimPointCores)]
		cores := claimPointCores[i%len(claimPointCores)]
		cfg := DefaultConfig(sys, RX, cores, 16384)
		cfg.WindowMs = opt.window()
		c := *row.costs // private copy: cost models must never be shared
		cfg.Costs = &c
		r, e := Run(cfg)
		if e != nil {
			return fmt.Errorf("%s x%.2f %s/%d cores: %w", row.name, row.scale, sys, cores, e)
		}
		results[i] = r
		return nil
	})
	if err != nil {
		return nil, 0, err
	}

	t := &Table{
		Name:    "sensitivity",
		Title:   "Sensitivity analysis: paper claims under +/-25% cost-model perturbation",
		Columns: []string{"perturbation", "scale"},
	}
	for _, c := range PaperClaims {
		t.Columns = append(t.Columns, c.Name)
	}
	violations := 0
	for ri, spec := range rows {
		single := make(map[string]Result)
		multi := make(map[string]Result)
		for si, sys := range FigureSystems {
			for ci, cores := range claimPointCores {
				r := results[ri*perRow+si*len(claimPointCores)+ci]
				if cores == 1 {
					single[sys] = r
				} else {
					multi[sys] = r
				}
			}
		}
		row := []string{spec.name, fmt.Sprintf("%.2f", spec.scale)}
		series := fmt.Sprintf("%s x%.2f", spec.name, spec.scale)
		for _, c := range PaperClaims {
			holds := c.Holds(single, multi)
			if holds {
				row = append(row, "holds")
			} else {
				row = append(row, "FLIPS")
				violations++
			}
			v := 0.0
			if holds {
				v = 1.0
			}
			t.Point(series, c.Name, map[string]float64{"holds": v})
		}
		t.AddRow(row...)
	}
	return t, violations, nil
}
