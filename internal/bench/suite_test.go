package bench

import (
	"errors"
	"path/filepath"
	"testing"

	"repro/internal/report"
)

func TestTablePointAndExperiment(t *testing.T) {
	tbl := &Table{Name: "x", Title: "X"}
	tbl.SetWinner("gbps", false)
	tbl.Point("copy", "1KB", map[string]float64{"gbps": 1, "bad": nan()})
	tbl.Point("copy", "64KB", map[string]float64{"gbps": 2})
	tbl.Point("strict", "1KB", map[string]float64{"gbps": 0.5})
	e := tbl.Experiment()
	if e.Name != "x" || e.Winner == nil || e.Winner.Metric != "gbps" {
		t.Fatalf("experiment conversion lost fields: %+v", e)
	}
	if len(e.Series) != 2 || len(e.Series[0].Points) != 2 {
		t.Fatalf("series shape wrong: %+v", e.Series)
	}
	if _, ok := e.Series[0].Points[0].Metrics["bad"]; ok {
		t.Error("non-finite metric must be dropped")
	}
	a := report.New("test", 1, nil)
	a.Add(e)
	if err := a.Validate(); err != nil {
		t.Errorf("artifact from table must validate: %v", err)
	}
}

func nan() float64 {
	z := 0.0
	return z / z
}

// TestRunSuiteParallel drives real (tiny) sections through the bounded
// worker pool; `go test -race` makes this a data-race check on the
// concurrent section execution.
func TestRunSuiteParallel(t *testing.T) {
	opt := Options{WindowMs: 0.25, Sizes: []int{1024}, Systems: []string{SysNoIOMMU, SysCopy}}
	sections := []Section{
		{"fig3", Fig3},
		{"fig4", Fig4},
		{"fig9", func(o Options) (*Table, error) { tb, _, err := Fig9(o); return tb, err }},
	}
	tables, err := RunSuite(sections, opt, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 3 {
		t.Fatalf("got %d tables", len(tables))
	}
	for i, tb := range tables {
		if tb == nil {
			t.Fatalf("table %d is nil", i)
		}
		if tb.Name != sections[i].Name {
			t.Errorf("table %d out of order: %q", i, tb.Name)
		}
		if len(tb.Series) == 0 {
			t.Errorf("table %q has no structured series", tb.Name)
		}
	}
	a := Artifact("test", opt.WindowMs, nil, tables)
	if err := a.Validate(); err != nil {
		t.Errorf("suite artifact must validate: %v", err)
	}
}

func TestRunSuitePropagatesErrors(t *testing.T) {
	boom := errors.New("boom")
	bang := errors.New("bang")
	sections := []Section{
		{"ok", func(o Options) (*Table, error) { return &Table{Title: "t"}, nil }},
		{"bad", func(o Options) (*Table, error) { return nil, boom }},
		{"worse", func(o Options) (*Table, error) { return nil, bang }},
	}
	tables, err := RunSuite(sections, Options{WindowMs: 0.1}, 2)
	// Every section failure survives the errors.Join aggregation...
	if !errors.Is(err, boom) || !errors.Is(err, bang) {
		t.Fatalf("errors not aggregated: %v", err)
	}
	// ...and the completed tables still come back (nil slots mark the
	// failures), so callers can write a partial diagnostic artifact.
	if len(tables) != 3 {
		t.Fatalf("got %d tables, want 3", len(tables))
	}
	if tables[0] == nil || tables[0].Name != "ok" {
		t.Errorf("completed section lost on partial failure: %+v", tables[0])
	}
	if tables[1] != nil || tables[2] != nil {
		t.Errorf("failed sections must have nil tables: %v %v", tables[1], tables[2])
	}
	if a := Artifact("test", 0.1, nil, tables); len(a.Experiments) != 1 {
		t.Errorf("partial artifact should carry the 1 completed experiment, got %d", len(a.Experiments))
	}
}

// TestRunSuiteFullSweep drives every real section — including the
// wrapper closures Suite builds (breakdowns, apimicro, sensitivity) —
// through a shared farm at a tiny window, and validates the artifact.
func TestRunSuiteFullSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite sweep")
	}
	farm := NewFarm(4)
	defer farm.Close()
	opt := Options{WindowMs: 0.2, Sizes: []int{1024}, Systems: []string{SysNoIOMMU, SysCopy}, Farm: farm}
	sections := Suite(true)
	tables, err := RunSuite(sections, opt, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, tb := range tables {
		if tb == nil {
			t.Fatalf("section %q produced no table", sections[i].Name)
		}
	}
	a := Artifact("test", opt.WindowMs, nil, tables)
	if err := a.Validate(); err != nil {
		t.Errorf("full-suite artifact must validate: %v", err)
	}
	if s := farm.Stats(); s.Executed == 0 || s.Executed != s.Submitted {
		t.Errorf("farm did not drain: %+v", s)
	}
}

func TestWriteArtifact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.json")
	tbl := &Table{Name: "x", Title: "X"}
	tbl.Point("copy", "1KB", map[string]float64{"gbps": 1})
	if err := WriteArtifact(path, "test", 1, nil, tbl); err != nil {
		t.Fatal(err)
	}
	a, err := report.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Experiments) != 1 || a.CreatedAt == "" {
		t.Errorf("artifact round trip lost data: %+v", a)
	}
}

func TestSuiteCoversAllSections(t *testing.T) {
	with := Suite(true)
	without := Suite(false)
	if len(with) != len(without)+1 {
		t.Errorf("sensitivity toggle broken: %d vs %d", len(with), len(without))
	}
	seen := map[string]bool{}
	for _, s := range with {
		if seen[s.Name] {
			t.Errorf("duplicate section %q", s.Name)
		}
		seen[s.Name] = true
		if s.Run == nil {
			t.Errorf("section %q has no runner", s.Name)
		}
	}
	for _, want := range []string{"fig1", "fig3", "fig9", "memory", "storage", "sensitivity"} {
		if !seen[want] {
			t.Errorf("suite is missing %q", want)
		}
	}
}
