package bench

import (
	"fmt"
	"sync"

	"repro/internal/cycles"
)

// MessageSizes is the x-axis of Figures 3, 4, 6, 7 and 9.
var MessageSizes = []int{64, 256, 1024, 4096, 16384, 65536}

// Options tunes experiment execution (shorter windows for tests).
type Options struct {
	WindowMs float64
	Sizes    []int
	Systems  []string
	// Costs overrides the cost model (e.g. loaded from JSON); nil uses
	// the paper-calibrated defaults.
	Costs *cycles.Costs
	// Farm is the worker pool sweep points are submitted through. Nil
	// uses a shared process-wide pool sized GOMAXPROCS, so standalone
	// experiment calls still parallelize; RunSuite and the cmd/* drivers
	// thread an explicitly-sized pool through here (-parallel).
	Farm *Farm
}

// sharedFarm is the lazily-created default pool for Options without an
// explicit Farm. It is never closed: idle workers cost nothing.
var sharedFarm struct {
	once sync.Once
	f    *Farm
}

func (o Options) farm() *Farm {
	if o.Farm != nil {
		return o.Farm
	}
	sharedFarm.once.Do(func() { sharedFarm.f = NewFarm(0) })
	return sharedFarm.f
}

// applyTo copies the option overrides into a run config.
func (o Options) applyTo(cfg *Config) {
	cfg.WindowMs = o.window()
	if o.Costs != nil {
		c := *o.Costs
		cfg.Costs = &c
	}
}

func (o Options) window() float64 {
	if o.WindowMs <= 0 {
		return 20
	}
	return o.WindowMs
}

func (o Options) sizes() []int {
	if len(o.Sizes) == 0 {
		return MessageSizes
	}
	return o.Sizes
}

func (o Options) systems() []string {
	if len(o.Systems) == 0 {
		return FigureSystems
	}
	return o.Systems
}

// StreamSweep runs a STREAM experiment over (system, size) and returns the
// results keyed [system][size]. Data points are independent simulations
// submitted through the farm (each on its own engine) and merged in
// canonical point order, so results are bit-deterministic regardless of
// worker count or completion order.
func StreamSweep(dir Direction, cores int, opt Options) (map[string]map[int]Result, error) {
	type point struct {
		sys string
		sz  int
	}
	var pts []point
	for _, sys := range opt.systems() {
		for _, sz := range opt.sizes() {
			pts = append(pts, point{sys, sz})
		}
	}
	results := make([]Result, len(pts))
	err := opt.farm().Map(len(pts), func(i int) error {
		cfg := DefaultConfig(pts[i].sys, dir, cores, pts[i].sz)
		opt.applyTo(&cfg)
		r, err := Run(cfg)
		if err != nil {
			return fmt.Errorf("%s/%s/%d: %w", pts[i].sys, dir, pts[i].sz, err)
		}
		results[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make(map[string]map[int]Result)
	for i, pt := range pts {
		if out[pt.sys] == nil {
			out[pt.sys] = make(map[int]Result)
		}
		out[pt.sys][pt.sz] = results[i]
	}
	return out, nil
}

// streamTable renders a sweep in the paper's four-panel form (throughput,
// relative throughput, CPU, relative CPU), one row per message size, and
// records the structured gbps/rel/cpu_pct series for the artifact.
func streamTable(name, title string, results map[string]map[int]Result, opt Options) *Table {
	t := &Table{
		Name:    name,
		Title:   title,
		Columns: []string{"msg"},
	}
	t.SetWinner("gbps", false)
	systems := opt.systems()
	for _, s := range systems {
		t.Columns = append(t.Columns, s+" Gb/s")
	}
	for _, s := range systems {
		t.Columns = append(t.Columns, s+" rel")
	}
	for _, s := range systems {
		t.Columns = append(t.Columns, s+" cpu%")
	}
	for _, sz := range opt.sizes() {
		base := results[SysNoIOMMU][sz]
		row := []string{sizeLabel(sz)}
		for _, s := range systems {
			row = append(row, f2(results[s][sz].Gbps))
		}
		for _, s := range systems {
			rel := 0.0
			if base.Gbps > 0 {
				rel = results[s][sz].Gbps / base.Gbps
			}
			row = append(row, f2(rel))
		}
		for _, s := range systems {
			row = append(row, f1(results[s][sz].CPUPct))
		}
		t.AddRow(row...)
		for _, s := range systems {
			r := results[s][sz]
			m := map[string]float64{"gbps": r.Gbps, "cpu_pct": r.CPUPct}
			if base.Gbps > 0 {
				m["rel"] = r.Gbps / base.Gbps
			}
			t.Point(s, sizeLabel(sz), m)
		}
	}
	return t
}

// Fig1 reproduces Figure 1: single- vs 16-core RX throughput of all six
// systems with MSS-sized (1500 B) packets.
func Fig1(opt Options) (*Table, error) {
	if len(opt.Systems) == 0 {
		opt.Systems = AllSystems
	}
	t := &Table{
		Name:    "fig1",
		Title:   "Figure 1: IOMMU-based OS protection cost (TCP RX, 1500B packets, Gb/s)",
		Columns: []string{"system", "1 core", "16 cores"},
	}
	t.SetWinner("gbps", false)
	systems := opt.systems()
	coreCounts := []int{1, 16}
	results := make([]Result, len(systems)*len(coreCounts))
	err := opt.farm().Map(len(results), func(i int) error {
		sys, cores := systems[i/len(coreCounts)], coreCounts[i%len(coreCounts)]
		cfg := DefaultConfig(sys, RX, cores, 16384)
		opt.applyTo(&cfg)
		r, err := Run(cfg)
		if err != nil {
			return fmt.Errorf("%s/%d cores: %w", sys, cores, err)
		}
		results[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	for si, sys := range systems {
		row := []string{sys}
		for ci, cores := range coreCounts {
			r := results[si*len(coreCounts)+ci]
			row = append(row, f2(r.Gbps))
			t.Point(sys, fmt.Sprintf("%d cores", cores),
				map[string]float64{"gbps": r.Gbps, "cpu_pct": r.CPUPct})
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Fig1Extended goes where the paper never went: the Figure 1 TCP RX
// workload swept to 64 and 128 simulated cores (the paper stops at 16),
// for every protection model, with the spinlock-attribution column that
// explains the strict models' collapse — at high core counts the
// IOVA-allocator and invalidation-queue locks serialize everything, so
// lock cycles per op is the figure's real story. All 30 points fan out
// across the shared farm; the merge is canonical-order, so the table is
// byte-identical at any worker count.
func Fig1Extended(opt Options) (*Table, error) {
	if len(opt.Systems) == 0 {
		opt.Systems = AllSystems
	}
	coreCounts := []int{1, 4, 16, 64, 128}
	t := &Table{
		Name:  "fig1ext",
		Title: "Figure 1 extended (beyond paper): TCP RX Gb/s at 1-128 cores, 1500B packets",
		Note:  "lock us/op = spinlock wait attributed per frame at 64/128 cores",
		Columns: []string{"system", "1 core", "4 cores", "16 cores", "64 cores", "128 cores",
			"lock us/op @64", "lock us/op @128"},
	}
	t.SetWinner("gbps", false)
	systems := opt.systems()
	results := make([]Result, len(systems)*len(coreCounts))
	err := opt.farm().Map(len(results), func(i int) error {
		sys, cores := systems[i/len(coreCounts)], coreCounts[i%len(coreCounts)]
		cfg := DefaultConfig(sys, RX, cores, 16384)
		opt.applyTo(&cfg)
		r, err := Run(cfg)
		if err != nil {
			return fmt.Errorf("%s/%d cores: %w", sys, cores, err)
		}
		results[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	for si, sys := range systems {
		row := []string{sys}
		var lock64, lock128 float64
		for ci, cores := range coreCounts {
			r := results[si*len(coreCounts)+ci]
			row = append(row, f2(r.Gbps))
			lock := r.PerOp[cycles.TagSpinlock]
			switch cores {
			case 64:
				lock64 = lock
			case 128:
				lock128 = lock
			}
			t.Point(sys, fmt.Sprintf("%d cores", cores), map[string]float64{
				"gbps":           r.Gbps,
				"cpu_pct":        r.CPUPct,
				"spinlock_us_op": lock,
				"iotlb_hit_rate": r.IOTLBHitRate,
				"rx_drops":       float64(r.RxDrops),
			})
		}
		row = append(row, f2(lock64), f2(lock128))
		t.AddRow(row...)
	}
	return t, nil
}

// Fig3 reproduces Figure 3: single-core TCP receive.
func Fig3(opt Options) (*Table, error) {
	res, err := StreamSweep(RX, 1, opt)
	if err != nil {
		return nil, err
	}
	return streamTable("fig3", "Figure 3: single-core TCP receive (RX)", res, opt), nil
}

// Fig4 reproduces Figure 4: single-core TCP transmit.
func Fig4(opt Options) (*Table, error) {
	res, err := StreamSweep(TX, 1, opt)
	if err != nil {
		return nil, err
	}
	return streamTable("fig4", "Figure 4: single-core TCP transmit (TX)", res, opt), nil
}

// Fig6 reproduces Figure 6: 16-core TCP receive.
func Fig6(opt Options) (*Table, error) {
	res, err := StreamSweep(RX, 16, opt)
	if err != nil {
		return nil, err
	}
	return streamTable("fig6", "Figure 6: 16-core TCP receive (RX)", res, opt), nil
}

// Fig7 reproduces Figure 7: 16-core TCP transmit.
func Fig7(opt Options) (*Table, error) {
	res, err := StreamSweep(TX, 16, opt)
	if err != nil {
		return nil, err
	}
	return streamTable("fig7", "Figure 7: 16-core TCP transmit (TX)", res, opt), nil
}

// Breakdown reproduces Figures 5 and 8: the average per-DMA-operation
// processing-time breakdown (microseconds) at 64 KiB messages.
func Breakdown(dir Direction, cores int, opt Options) (*Table, map[string]Result, error) {
	opt.Sizes = []int{65536}
	res, err := StreamSweep(dir, cores, opt)
	if err != nil {
		return nil, nil, err
	}
	fig, figName := "Figure 5", "fig5"
	if cores > 1 {
		fig, figName = "Figure 8", "fig8"
	}
	panel := map[Direction]string{RX: "a", TX: "b"}[dir]
	t := &Table{
		Name: figName + panel,
		Title: fmt.Sprintf("%s%s: per-packet time breakdown, %d-core %s, 64KB messages (us)",
			fig, panel, cores, dir),
		Columns: append([]string{"component"}, opt.systems()...),
	}
	t.SetWinner("total_us", true)
	flat := make(map[string]Result)
	for _, s := range opt.systems() {
		flat[s] = res[s][65536]
	}
	for _, comp := range cycles.Components {
		row := []string{comp}
		for _, s := range opt.systems() {
			row = append(row, f2(flat[s].PerOp[comp]))
		}
		t.AddRow(row...)
	}
	total := []string{"TOTAL"}
	tput := []string{"throughput Gb/s"}
	for _, s := range opt.systems() {
		sum := 0.0
		for _, v := range flat[s].PerOp {
			sum += v
		}
		total = append(total, f2(sum))
		tput = append(tput, f2(flat[s].Gbps))
		metrics := map[string]float64{"total_us": sum, "gbps": flat[s].Gbps}
		for _, comp := range cycles.Components {
			metrics[comp+"_us"] = flat[s].PerOp[comp]
		}
		t.Point(s, "64KB", metrics)
	}
	t.AddRow(total...)
	t.AddRow(tput...)
	return t, flat, nil
}

// Fig9 reproduces Figure 9: TCP request/response latency and CPU.
func Fig9(opt Options) (*Table, map[string]map[int]Result, error) {
	res, err := StreamSweep(RR, 1, opt)
	if err != nil {
		return nil, nil, err
	}
	t := &Table{
		Name:    "fig9",
		Title:   "Figure 9: TCP latency (single-core netperf request/response)",
		Columns: []string{"msg"},
	}
	t.SetWinner("lat_us", true)
	for _, s := range opt.systems() {
		t.Columns = append(t.Columns, s+" us")
	}
	for _, s := range opt.systems() {
		t.Columns = append(t.Columns, s+" p99")
	}
	for _, s := range opt.systems() {
		t.Columns = append(t.Columns, s+" cpu%")
	}
	for _, sz := range opt.sizes() {
		row := []string{sizeLabel(sz)}
		for _, s := range opt.systems() {
			row = append(row, f1(res[s][sz].LatencyUs))
		}
		for _, s := range opt.systems() {
			row = append(row, f1(res[s][sz].LatencyP99Us))
		}
		for _, s := range opt.systems() {
			row = append(row, f1(res[s][sz].CPUPct))
		}
		t.AddRow(row...)
		for _, s := range opt.systems() {
			r := res[s][sz]
			t.Point(s, sizeLabel(sz), map[string]float64{
				"lat_us": r.LatencyUs, "p99_us": r.LatencyP99Us, "cpu_pct": r.CPUPct,
			})
		}
	}
	return t, res, nil
}

// Fig10 reproduces Figure 10: the RR CPU-utilization breakdown at 64 KiB.
func Fig10(opt Options) (*Table, error) {
	opt.Sizes = []int{65536}
	_, res, err := Fig9(opt)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Name:    "fig10",
		Title:   "Figure 10: single-core TCP RR CPU utilization breakdown (64KB messages, % of core)",
		Columns: append([]string{"component"}, opt.systems()...),
	}
	t.SetWinner("cpu_pct", true)
	window := cycles.FromMillis(opt.window())
	perComp := make(map[string]map[string]float64) // [system][component] pct
	for _, s := range opt.systems() {
		perComp[s] = make(map[string]float64)
	}
	for _, comp := range cycles.Components {
		row := []string{comp}
		for _, s := range opt.systems() {
			r := res[s][65536]
			// PerOp is us per transaction; convert to % of the core.
			pct := r.PerOp[comp] * float64(r.Ops) / cycles.Micros(window) * 100
			perComp[s][comp] = pct
			row = append(row, f1(pct))
		}
		t.AddRow(row...)
	}
	cpu := []string{"TOTAL cpu%"}
	lat := []string{"latency us"}
	for _, s := range opt.systems() {
		cpu = append(cpu, f1(res[s][65536].CPUPct))
		lat = append(lat, f1(res[s][65536].LatencyUs))
		metrics := map[string]float64{
			"cpu_pct": res[s][65536].CPUPct,
			"lat_us":  res[s][65536].LatencyUs,
		}
		for comp, pct := range perComp[s] {
			metrics[comp+"_pct"] = pct
		}
		t.Point(s, "64KB", metrics)
	}
	t.AddRow(cpu...)
	t.AddRow(lat...)
	return t, nil
}

// MemoryConsumption reproduces the §6 measurement: shadow pool footprint
// under the 16-core RX and TX workloads, against the worst-case bound.
func MemoryConsumption(opt Options) (*Table, error) {
	t := &Table{
		Name:    "memory",
		Title:   "Memory consumption (paper §6): shadow DMA buffer footprint",
		Columns: []string{"workload", "pool bytes", "pool MB", "in-flight buffers"},
	}
	dirs := []Direction{RX, TX}
	results := make([]Result, len(dirs))
	err := opt.farm().Map(len(dirs), func(i int) error {
		cfg := DefaultConfig(SysCopy, dirs[i], 16, 65536)
		opt.applyTo(&cfg)
		r, err := Run(cfg)
		if err != nil {
			return err
		}
		results[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, dir := range dirs {
		r := results[i]
		label := fmt.Sprintf("16-core %s 64KB", dir)
		t.AddRow(label,
			fmt.Sprintf("%d", r.PoolBytes),
			f2(float64(r.PoolBytes)/(1<<20)),
			fmt.Sprintf("%d", r.MapperStats.ShadowPoolBuffers))
		t.Point(SysCopy, label, map[string]float64{
			"pool_bytes": float64(r.PoolBytes),
			"pool_mb":    float64(r.PoolBytes) / (1 << 20),
			"buffers":    float64(r.MapperStats.ShadowPoolBuffers),
		})
	}
	t.Note = "worst case bound (paper): 2 NUMA domains x (16K x 4KB + 16K x 64KB) = 2.1 GB"
	return t, nil
}
