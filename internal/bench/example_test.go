package bench_test

import (
	"fmt"

	"repro/internal/bench"
)

// ExampleRun measures one benchmark point: single-core receive throughput
// under DMA shadowing.
func ExampleRun() {
	cfg := bench.DefaultConfig(bench.SysCopy, bench.RX, 1, 16384)
	cfg.WindowMs = 5
	r, err := bench.Run(cfg)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("system=%s faults=%d drops=%d saturated=%v\n",
		r.Config.System, r.Faults, r.RxDrops, r.CPUPct > 95)
	// Output:
	// system=copy faults=0 drops=0 saturated=true
}
