package bench

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"math"
	"strings"

	"repro/internal/report"
)

// Table is a formatted experiment result, printable as aligned text. The
// string rows are the human rendering; Series carries the same results as
// structured numeric metrics for machine-readable artifacts and the
// benchdiff regression gate (see internal/report).
type Table struct {
	// Name is the stable machine-readable experiment id ("fig3", ...).
	Name    string
	Title   string
	Note    string
	Columns []string
	Rows    [][]string
	// Winner declares the metric that decides "who wins" per point, so
	// benchdiff can detect claim flips for this figure.
	Winner *report.Winner
	// Series holds per-system numeric results, in insertion order.
	Series []report.Series
	// WallMs is the host wall-clock spent producing the table (stamped by
	// RunSuite; informational, never part of the regression gate).
	WallMs float64
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// SetWinner declares the experiment's claim-deciding metric.
func (t *Table) SetWinner(metric string, lowerIsBetter bool) {
	t.Winner = &report.Winner{Metric: metric, LowerIsBetter: lowerIsBetter}
}

// Point records one structured data point for a system. Non-finite metric
// values are dropped (they would poison the JSON artifact).
func (t *Table) Point(system, label string, metrics map[string]float64) {
	clean := make(map[string]float64, len(metrics))
	for k, v := range metrics {
		if !math.IsNaN(v) && !math.IsInf(v, 0) {
			clean[k] = v
		}
	}
	for i := range t.Series {
		if t.Series[i].System == system {
			t.Series[i].Points = append(t.Series[i].Points, report.Point{Label: label, Metrics: clean})
			return
		}
	}
	t.Series = append(t.Series, report.Series{
		System: system,
		Points: []report.Point{{Label: label, Metrics: clean}},
	})
}

// Experiment converts the table into its artifact form.
func (t *Table) Experiment() report.Experiment {
	return report.Experiment{
		Name:    t.Name,
		Title:   t.Title,
		Note:    t.Note,
		Columns: t.Columns,
		Rows:    t.Rows,
		Winner:  t.Winner,
		Series:  t.Series,
		WallMs:  t.WallMs,
	}
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(&b, "%s\n", t.Note)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// CSV renders the table as RFC-4180 CSV (header row first).
func (t *Table) CSV() string {
	var b strings.Builder
	w := csv.NewWriter(&b)
	_ = w.Write(t.Columns)
	for _, row := range t.Rows {
		_ = w.Write(row)
	}
	w.Flush()
	return b.String()
}

// JSON renders the table as a JSON object: title, columns and rows as
// before, plus the artifact-schema fields (name, winner, series) so every
// cmd/* tool's -format json output speaks the same schema as the
// BENCH_*.json artifacts.
func (t *Table) JSON() (string, error) {
	out, err := json.MarshalIndent(struct {
		Name    string          `json:"name,omitempty"`
		Title   string          `json:"title"`
		Note    string          `json:"note,omitempty"`
		Columns []string        `json:"columns"`
		Rows    [][]string      `json:"rows"`
		Winner  *report.Winner  `json:"winner,omitempty"`
		Series  []report.Series `json:"series,omitempty"`
		WallMs  float64         `json:"wall_ms,omitempty"`
	}{t.Name, t.Title, t.Note, t.Columns, t.Rows, t.Winner, t.Series, t.WallMs}, "", "  ")
	if err != nil {
		return "", err
	}
	return string(out), nil
}

// Render formats the table in the requested format: "text" (default),
// "csv" or "json".
func (t *Table) Render(format string) (string, error) {
	switch format {
	case "", "text":
		return t.String(), nil
	case "csv":
		return t.CSV(), nil
	case "json":
		return t.JSON()
	}
	return "", fmt.Errorf("bench: unknown format %q", format)
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// sizeLabel formats a message size the way the paper's axes do.
func sizeLabel(n int) string {
	switch {
	case n >= 1024 && n%1024 == 0:
		return fmt.Sprintf("%dKB", n/1024)
	default:
		return fmt.Sprintf("%dB", n)
	}
}
