package bench

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"strings"
)

// Table is a formatted experiment result, printable as aligned text.
type Table struct {
	Title   string
	Note    string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(&b, "%s\n", t.Note)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// CSV renders the table as RFC-4180 CSV (header row first).
func (t *Table) CSV() string {
	var b strings.Builder
	w := csv.NewWriter(&b)
	_ = w.Write(t.Columns)
	for _, row := range t.Rows {
		_ = w.Write(row)
	}
	w.Flush()
	return b.String()
}

// JSON renders the table as a JSON object with title, columns and rows.
func (t *Table) JSON() (string, error) {
	out, err := json.MarshalIndent(struct {
		Title   string     `json:"title"`
		Note    string     `json:"note,omitempty"`
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
	}{t.Title, t.Note, t.Columns, t.Rows}, "", "  ")
	if err != nil {
		return "", err
	}
	return string(out), nil
}

// Render formats the table in the requested format: "text" (default),
// "csv" or "json".
func (t *Table) Render(format string) (string, error) {
	switch format {
	case "", "text":
		return t.String(), nil
	case "csv":
		return t.CSV(), nil
	case "json":
		return t.JSON()
	}
	return "", fmt.Errorf("bench: unknown format %q", format)
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// sizeLabel formats a message size the way the paper's axes do.
func sizeLabel(n int) string {
	switch {
	case n >= 1024 && n%1024 == 0:
		return fmt.Sprintf("%dKB", n/1024)
	default:
		return fmt.Sprintf("%dB", n)
	}
}
