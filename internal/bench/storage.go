package bench

import (
	"fmt"

	"repro/internal/cycles"
	"repro/internal/sim"
	"repro/internal/ssd"
)

// StorageResult is the outcome of one SSD benchmark run.
type StorageResult struct {
	System  string
	IOSize  int
	ReadPct int
	IOPS    float64
	GBps    float64
	CPUPct  float64
	Errors  uint64
	// HybridMaps counts copy's §5.5 hybrid mappings (zero for sizes
	// within the largest shadow class).
	HybridMaps uint64
}

// RunStorage runs a fio-style random I/O workload against the simulated
// NVMe-class SSD under one protection strategy — the extension study that
// quantifies the paper's §5.5 claim (low IOPS make zero-copy+strict
// affordable for huge buffers, which is where the hybrid path engages).
func RunStorage(system string, cores, ioSize, readPct int, windowMs float64) (StorageResult, error) {
	cfg := DefaultConfig(system, RX, cores, ioSize)
	cfg.WindowMs = windowMs
	cfg.NoHint = true // the packet-length hint is network-specific
	mach, err := NewMachine(cfg)
	if err != nil {
		return StorageResult{}, err
	}
	dev := ssd.New(mach.Eng, mach.IOMMU, ssd.Config{
		Dev:    mach.Env.Dev,
		Queues: cores,
		Costs:  cfg.Costs,
	})
	bd := ssd.NewBlockDriver(mach.Env, mach.Mapper, dev, mach.Kmal)
	stats := make([]ssd.WorkloadStats, cores)
	var procs []*sim.Proc
	var runErr error
	for c := 0; c < cores; c++ {
		c := c
		pr := mach.Eng.Spawn(fmt.Sprintf("blk%d", c), c, 0, func(p *sim.Proc) {
			wcfg := ssd.WorkloadConfig{IOSize: ioSize, ReadPct: readPct, Depth: 32, Seed: 42}
			if err := bd.RunWorkload(p, c, wcfg, &stats[c]); err != nil {
				runErr = err
			}
		})
		procs = append(procs, pr)
	}
	window := cycles.FromMillis(windowMs)
	mach.Eng.Run(window)
	var busy uint64
	for _, p := range procs {
		busy += p.Busy()
	}
	ms := mach.Mapper.Stats()
	mach.Eng.Stop()
	if runErr != nil {
		return StorageResult{}, runErr
	}
	var ops, bytes, errs uint64
	for _, s := range stats {
		ops += s.Reads + s.Writes
		bytes += s.Bytes
		errs += s.Errors
	}
	return StorageResult{
		System:     system,
		IOSize:     ioSize,
		ReadPct:    readPct,
		IOPS:       cycles.PerSec(ops, window),
		GBps:       float64(bytes) / (float64(window) / cycles.Hz) / 1e9,
		CPUPct:     100 * float64(busy) / (float64(window) * float64(cores)),
		Errors:     errs,
		HybridMaps: ms.HybridMaps,
	}, nil
}

// StorageStudy is the extension experiment table: IOPS/bandwidth/CPU
// across protection strategies and I/O sizes (70/30 random read/write mix,
// 4 queues).
func StorageStudy(opt Options) (*Table, error) {
	t := &Table{
		Name:    "storage",
		Title:   "Storage study (extension, paper §5.5): NVMe-class SSD, 70/30 R/W, 4 queues",
		Columns: []string{"io size", "system", "KIOPS", "GB/s", "cpu%", "hybrid maps"},
	}
	t.SetWinner("kiops", false)
	sizes := []int{4096, 65536, 262144}
	systems := opt.systems()
	results := make([]StorageResult, len(sizes)*len(systems))
	err := opt.farm().Map(len(results), func(i int) error {
		sz, sys := sizes[i/len(systems)], systems[i%len(systems)]
		r, err := RunStorage(sys, 4, sz, 70, opt.window())
		if err != nil {
			return fmt.Errorf("%s/%s: %w", sys, sizeLabel(sz), err)
		}
		results[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	for zi, sz := range sizes {
		for si, sys := range systems {
			r := results[zi*len(systems)+si]
			t.AddRow(sizeLabel(sz), sys, f1(r.IOPS/1e3), f2(r.GBps), f1(r.CPUPct),
				fmt.Sprintf("%d", r.HybridMaps))
			t.Point(sys, sizeLabel(sz), map[string]float64{
				"kiops":       r.IOPS / 1e3,
				"gb_per_sec":  r.GBps,
				"cpu_pct":     r.CPUPct,
				"hybrid_maps": float64(r.HybridMaps),
			})
		}
	}
	return t, nil
}
