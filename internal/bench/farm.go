package bench

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Farm is a work-stealing worker pool for sweep points. Every evaluation
// sweep in this repo — (message size x strategy x core count x seed) grids,
// chaos variant triples, multi-seed fuzzing — is embarrassingly parallel:
// each point is an independent discrete-event simulation on its own
// engine, bit-deterministic in isolation. The Farm fans those points
// across host cores and lets the caller reassemble results in canonical
// point order, so artifacts stay byte-identical regardless of worker
// count or completion order.
//
// Scheduling model: Map distributes point i to worker deque i mod W.
// Workers pop their own deque LIFO and, when empty, steal the oldest task
// from another worker's deque (FIFO), so a straggler point never idles
// the rest of the pool. The submitting goroutine blocks until its whole
// group completes; results land in caller-owned slices indexed by point,
// which is what makes the merge deterministic.
//
// A Farm value is a cheap handle onto a shared worker pool. WithContext
// derives a handle whose Map calls are cancellable: once the context is
// done, that handle's queued-but-unstarted points complete immediately
// with ctx.Err() instead of running, while points from other handles on
// the same pool are untouched. This is how the daemon runs many client
// requests over one pool and cancels exactly one of them.
//
// Contract: task functions must be leaves — they must not call Map on the
// same Farm (sweep coordinators run on ordinary goroutines; only leaf
// simulations run as tasks). A nil *Farm is valid and runs every Map
// serially in submission order with identical semantics, which is the
// degenerate -parallel case and what unit tests use for byte-for-byte
// reference runs.
type Farm struct {
	p   *pool
	ctx context.Context // nil means never cancelled
}

// pool holds the shared worker state behind one or more Farm handles.
type pool struct {
	workers int

	mu      sync.Mutex
	cond    *sync.Cond
	deques  [][]*task
	pending int
	hwm     int
	closed  bool
	wg      sync.WaitGroup

	started   time.Time
	submitted atomic.Uint64
	executed  atomic.Uint64
	stolen    atomic.Uint64
	panics    atomic.Uint64
	canceled  atomic.Uint64
	inflight  atomic.Int64
	busyNs    []atomic.Int64
}

// task is one queued point: fn computes it, grp collects completion, idx
// is the canonical point index within the group, home the deque it was
// dealt to (an executor with a different id counts as a steal).
type task struct {
	fn   func(i int) error
	grp  *group
	idx  int
	home int
}

// group tracks one Map call's outstanding points. ctx, when non-nil,
// cancels the group's not-yet-started points.
type group struct {
	n    int
	done int
	errs []error
	fin  chan struct{}
	ctx  context.Context
}

// NewFarm starts a pool of `parallel` workers (<=0 means GOMAXPROCS).
// Close it when the sweep is finished; an unclosed farm only costs idle
// goroutines.
func NewFarm(parallel int) *Farm {
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	p := &pool{
		workers: parallel,
		deques:  make([][]*task, parallel),
		busyNs:  make([]atomic.Int64, parallel),
		started: time.Now(),
	}
	p.cond = sync.NewCond(&p.mu)
	for w := 0; w < parallel; w++ {
		p.wg.Add(1)
		go p.worker(w)
	}
	return &Farm{p: p}
}

// WithContext returns a handle on the same pool whose Map calls stop
// scheduling new points once ctx is done: every queued point of such a
// Map completes with ctx.Err() without running (points already executing
// finish — simulations are not interruptible mid-point). Valid on a nil
// farm, where it returns a serial handle with the same cancellation
// semantics.
func (f *Farm) WithContext(ctx context.Context) *Farm {
	if f == nil {
		return &Farm{ctx: ctx}
	}
	return &Farm{p: f.p, ctx: ctx}
}

// Workers returns the pool size (0 for a nil/serial farm).
func (f *Farm) Workers() int {
	if f == nil || f.p == nil {
		return 0
	}
	return f.p.workers
}

// Map runs fn(0..n-1) across the pool and blocks until every point has
// finished. Errors (including recovered panics) are aggregated with
// errors.Join in point order; points after a failing one still run, so a
// partially-failed sweep keeps every completed result. A nil or serial
// farm runs the points in order on the calling goroutine with the same
// semantics. When the handle carries a done context, unstarted points
// report ctx.Err() instead of running.
func (f *Farm) Map(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	var ctx context.Context
	if f != nil {
		ctx = f.ctx
	}
	if f == nil || f.p == nil {
		return mapSerial(ctx, n, fn)
	}
	p := f.p
	grp := &group{n: n, errs: make([]error, n), fin: make(chan struct{}), ctx: ctx}
	p.submitted.Add(uint64(n))
	p.mu.Lock()
	if p.closed {
		// Late submission after Close: degrade to serial rather than
		// deadlock on workers that already exited.
		p.mu.Unlock()
		return mapSerial(ctx, n, fn)
	}
	for i := 0; i < n; i++ {
		home := i % p.workers
		p.deques[home] = append(p.deques[home], &task{fn: fn, grp: grp, idx: i, home: home})
	}
	p.pending += n
	if p.pending > p.hwm {
		p.hwm = p.pending
	}
	p.cond.Broadcast()
	p.mu.Unlock()
	<-grp.fin
	return errors.Join(grp.errs...)
}

// mapSerial is the nil/serial/late-submission path: points run in order
// on the calling goroutine, honouring ctx between points.
func mapSerial(ctx context.Context, n int, fn func(i int) error) error {
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		if ctx != nil && ctx.Err() != nil {
			errs[i] = ctx.Err()
			continue
		}
		errs[i] = runPoint(fn, i)
	}
	return errors.Join(errs...)
}

// panicError marks an error that was recovered from a panicking point.
type panicError struct{ msg string }

func (e *panicError) Error() string { return e.msg }

// IsPanic reports whether err (or any error it joins/wraps) was recovered
// from a panicking sweep point. The daemon's retry policy treats these as
// transient: the point is deterministic but the panic may have been
// injected, so one bounded re-run is worthwhile before giving up.
func IsPanic(err error) bool {
	var pe *panicError
	return errors.As(err, &pe)
}

// runPoint executes one point, converting a panic into an error so a bad
// point reports instead of killing the whole sweep.
func runPoint(fn func(i int) error, i int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &panicError{msg: fmt.Sprintf("farm: point %d panicked: %v\n%s", i, r, debug.Stack())}
		}
	}()
	return fn(i)
}

// worker is one pool goroutine: drain own deque LIFO, steal FIFO, sleep.
func (p *pool) worker(w int) {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		t := p.takeLocked(w)
		for t == nil && !p.closed {
			p.cond.Wait()
			t = p.takeLocked(w)
		}
		if t == nil { // closed and drained
			p.mu.Unlock()
			return
		}
		p.pending--
		p.mu.Unlock()

		if t.grp.ctx != nil && t.grp.ctx.Err() != nil {
			// The group's request was cancelled: complete the point with
			// the context error without burning a simulation on it.
			p.canceled.Add(1)
			p.finish(t, t.grp.ctx.Err())
			continue
		}
		if t.home != w {
			p.stolen.Add(1)
		}
		p.inflight.Add(1)
		start := time.Now()
		err := runPoint(t.fn, t.idx)
		p.busyNs[w].Add(int64(time.Since(start)))
		p.inflight.Add(-1)
		p.finish(t, err)
	}
}

// finish records a completed point and releases its group when it was the
// last one.
func (p *pool) finish(t *task, err error) {
	p.executed.Add(1)
	if err != nil && IsPanic(err) {
		p.panics.Add(1)
	}
	p.mu.Lock()
	t.grp.errs[t.idx] = err
	t.grp.done++
	if t.grp.done == t.grp.n {
		close(t.grp.fin)
	}
	p.mu.Unlock()
}

// takeLocked pops a task: back of the worker's own deque first (LIFO —
// cache-warm freshest work), then the front of the next non-empty deque
// (FIFO — steal the oldest, least-contended task). Caller holds p.mu.
func (p *pool) takeLocked(w int) *task {
	if d := p.deques[w]; len(d) > 0 {
		t := d[len(d)-1]
		p.deques[w] = d[:len(d)-1]
		return t
	}
	for off := 1; off < p.workers; off++ {
		v := (w + off) % p.workers
		if d := p.deques[v]; len(d) > 0 {
			t := d[0]
			p.deques[v] = d[1:]
			return t
		}
	}
	return nil
}

// Close stops the workers after the queues drain. Map must not be in
// flight; late Map calls fall back to serial execution.
func (f *Farm) Close() {
	if f == nil || f.p == nil {
		return
	}
	p := f.p
	p.mu.Lock()
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
}

// QueueDepth returns the number of queued-but-unstarted points right now.
// Live (not post-hoc): the daemon's admission control reads it to decide
// whether to shed load before another Map piles onto the pool.
func (f *Farm) QueueDepth() int {
	if f == nil || f.p == nil {
		return 0
	}
	f.p.mu.Lock()
	defer f.p.mu.Unlock()
	return f.p.pending
}

// InFlight returns the number of points executing at this instant.
func (f *Farm) InFlight() int {
	if f == nil || f.p == nil {
		return 0
	}
	return int(f.p.inflight.Load())
}

// Stats snapshots the scheduler metrics (see doc/FARM.md). Host-time
// based, so informational only — never part of a gated artifact.
func (f *Farm) Stats() obs.FarmStats {
	if f == nil || f.p == nil {
		return obs.FarmStats{}
	}
	p := f.p
	p.mu.Lock()
	hwm := p.hwm
	pending := p.pending
	p.mu.Unlock()
	s := obs.FarmStats{
		Workers:    p.workers,
		Submitted:  p.submitted.Load(),
		Executed:   p.executed.Load(),
		Steals:     p.stolen.Load(),
		Panics:     p.panics.Load(),
		Canceled:   p.canceled.Load(),
		QueueHWM:   hwm,
		QueueDepth: pending,
		InFlight:   int(p.inflight.Load()),
	}
	wall := time.Since(p.started)
	if wall > 0 {
		for w := 0; w < p.workers; w++ {
			s.UtilPct = append(s.UtilPct,
				100*float64(p.busyNs[w].Load())/float64(wall))
		}
	}
	return s
}

// Publish pushes the farm.* metrics into an obs registry.
func (f *Farm) Publish(r *obs.Registry) { obs.PublishFarm(r, f.Stats()) }

// PointSeed derives the seed for point index i of a sweep seeded with
// base. It is a splitmix64 step over (base, i), so every point gets an
// independent, well-mixed stream without any shared rand.Rand — the seed
// depends only on (base, i), never on scheduling or completion order.
func PointSeed(base int64, i int) int64 {
	z := uint64(base) + 0x9e3779b97f4a7c15*uint64(i+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}
